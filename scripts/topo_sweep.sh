#!/usr/bin/env bash
# Zone chaos sweep: runs the routing-zone unit tests once as a preflight,
# then reruns the zoned-topology chaos scenario (ChaosTopo.*) across N
# seeds.  Each seed drives the 4-site gateway-ring world through link_down
# reroutes, end-to-end partitions on routed paths, and a host crash, and
# requires the digest to come out bit-identical for 1, 2 and 4 shards — so
# a sweep is N independent checks that multi-hop routing, route-cache
# invalidation and the sharded engine agree.
#
# Usage: scripts/topo_sweep.sh [N] [build-dir]     (defaults: 10, build)
# Env:   SNIPE_CHAOS_BASE_SEED    first seed of the sweep (default 20260807)
#
# Registered as the ctest test "topo_sweep" (label "topo") when CMake is
# configured with -DSNIPE_CHAOS_TOPO=ON; off by default so the tier-1
# suite's runtime stays flat.
set -euo pipefail

cd "$(dirname "$0")/.."
N="${1:-10}"
BUILD_DIR="${2:-build}"
CHAOS_BIN="$BUILD_DIR/tests/chaos_test"
TOPO_BIN="$BUILD_DIR/tests/topo_test"

for bin in "$CHAOS_BIN" "$TOPO_BIN"; do
  if [ ! -x "$bin" ]; then
    echo "topo_sweep: $bin not built (cmake --build $BUILD_DIR)" >&2
    exit 2
  fi
done

# Preflight: the fixed-seed routing-zone unit tests (serialize edges, route
# resolution, cache invalidation, contention) must hold before sweeping.
echo "==== topo sweep: preflight (topo_test) ===="
if ! "$TOPO_BIN" --gtest_brief=1; then
  echo "topo_sweep: routing-zone unit tests failed; reproduce with: $TOPO_BIN" >&2
  exit 1
fi

BASE="${SNIPE_CHAOS_BASE_SEED:-20260807}"
for i in $(seq 0 $((N - 1))); do
  seed=$((BASE + i * 1000003))
  echo "==== topo sweep: seed $seed ($((i + 1))/$N) ===="
  if ! SNIPE_CHAOS_SEED=$seed "$CHAOS_BIN" --gtest_brief=1 \
      --gtest_filter='ChaosTopo.*'; then
    echo "topo_sweep: zoned chaos invariant tripped at seed $seed" >&2
    echo "reproduce with: SNIPE_CHAOS_SEED=$seed $CHAOS_BIN --gtest_filter='ChaosTopo.*'" >&2
    exit 1
  fi
done
echo "topo_sweep: $N seeds clean"
