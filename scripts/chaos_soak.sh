#!/usr/bin/env bash
# Soaks the chaos suite: a long multi-seed run intended for overnight / CI
# nightly use, as opposed to chaos_sweep.sh's quick pre-merge pass.  Beyond
# sweeping more seeds, the soak turns on per-seed digest logging
# (SNIPE_CHAOS_DIGEST_LOG): every replay-checked scenario appends a
# "<seed> <scenario> <digest-fnv1a>" line, so two soaks of the same seed
# range can be diffed to catch *cross-build* determinism drift — a scenario
# whose fingerprint silently changed even though each run still replays
# against itself.
#
# Usage: scripts/chaos_soak.sh [N] [build-dir]      (defaults: 50, build)
# Env:   SNIPE_CHAOS_BASE_SEED    first seed of the soak (default 20260807)
#        SNIPE_CHAOS_DIGEST_LOG   digest log path
#                                 (default <build-dir>/chaos_soak_digests.log)
#
# Registered as the ctest test "chaos_soak" (label "soak") when CMake is
# configured with -DSNIPE_CHAOS_SOAK=ON; off by default so the tier-1
# suite's runtime stays flat.  Select it with `ctest -L soak`.
set -euo pipefail

cd "$(dirname "$0")/.."
N="${1:-50}"
BUILD_DIR="${2:-build}"
BIN="$BUILD_DIR/tests/chaos_test"

if [ ! -x "$BIN" ]; then
  echo "chaos_soak: $BIN not built (cmake --build $BUILD_DIR --target chaos_test)" >&2
  exit 2
fi

BASE="${SNIPE_CHAOS_BASE_SEED:-20260807}"
DIGEST_LOG="${SNIPE_CHAOS_DIGEST_LOG:-$BUILD_DIR/chaos_soak_digests.log}"
: > "$DIGEST_LOG"
echo "chaos_soak: $N seeds from $BASE, digests -> $DIGEST_LOG"

failures=0
for i in $(seq 0 $((N - 1))); do
  seed=$((BASE + i * 1000003))
  echo "==== chaos soak: seed $seed ($((i + 1))/$N) ===="
  if ! SNIPE_CHAOS_SEED=$seed SNIPE_CHAOS_DIGEST_LOG="$DIGEST_LOG" \
       "$BIN" --gtest_brief=1; then
    echo "chaos_soak: invariant tripped at seed $seed (flight-recorder dump above)" >&2
    echo "reproduce with: SNIPE_CHAOS_SEED=$seed $BIN" >&2
    failures=$((failures + 1))
  fi
done

lines=$(wc -l < "$DIGEST_LOG" | tr -d ' ')
if [ "$failures" -gt 0 ]; then
  echo "chaos_soak: $failures/$N seeds FAILED ($lines digest lines in $DIGEST_LOG)" >&2
  exit 1
fi
echo "chaos_soak: $N seeds clean ($lines digest lines in $DIGEST_LOG)"
