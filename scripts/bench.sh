#!/usr/bin/env bash
# Builds the Release tree and runs the data-plane benchmarks, writing
# google-benchmark JSON next to the repo root as BENCH_<name>.json so
# before/after runs can be diffed (tools/compare.py from google-benchmark
# works on these files directly).
#
# Usage: scripts/bench.sh [build-dir]    (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target bench_datapath bench_fig1_bandwidth

for name in bench_datapath bench_fig1_bandwidth; do
  echo "==== $name ===="
  "$BUILD_DIR/bench/$name" --benchmark_out="BENCH_${name}.json" \
    --benchmark_out_format=json
done

echo "Wrote BENCH_bench_datapath.json and BENCH_bench_fig1_bandwidth.json"
