#!/usr/bin/env bash
# Builds the Release tree, runs the data-plane benchmarks, and diffs the
# fresh numbers against the committed baseline in bench/baseline/ instead
# of silently overwriting anything.  Fresh google-benchmark JSON lands at
# the repo root as BENCH_<name>.json (gitignored scratch); the baseline is
# versioned, so the diff shows what *this* checkout changed.
#
# Usage: scripts/bench.sh [build-dir]      (default: build-rel)
#        scripts/bench.sh --bless [dir]    re-run and promote the fresh
#                                          numbers to bench/baseline/
#
# The bench tree must be an un-sanitized Release build: the script
# configures it that way, then *verifies* the resulting CMakeCache.txt and
# refuses to record numbers from anything else (a pre-existing build dir
# can carry Debug flags or a sanitizer preset that -DCMAKE_BUILD_TYPE
# alone does not clear).  The verified build type is stamped into each
# benchmark JSON as context.cmake_build_type — note google-benchmark's own
# "library_build_type" field describes the *benchmark library*, not this
# tree, and reads "debug" even for Release runs on boxes with a debug
# libbenchmark.
#
# Wall-clock counters are machine-dependent: compare runs from the same
# box, and re-bless the baseline when switching machines.
set -euo pipefail

cd "$(dirname "$0")/.."

BLESS=0
if [ "${1:-}" = "--bless" ]; then
  BLESS=1
  shift
fi
BUILD_DIR="${1:-build-rel}"
BASELINE_DIR="bench/baseline"
BENCHES="bench_datapath bench_fig1_bandwidth bench_fileserv bench_incast"

# Refuse non-Release trees instead of silently reconfiguring them: the
# pre-configure check keeps bench.sh from flipping a dev/debug/sanitizer
# tree to Release under the user's feet, and the post-build re-check
# verifies what the benchmarks will actually run from.
assert_release_tree() {
  [ -f "$BUILD_DIR/CMakeCache.txt" ] || return 0
  BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt")"
  SANITIZE="$(sed -n 's/^SNIPE_SANITIZE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt")"
  if [ "$BUILD_TYPE" != "Release" ] || [ -n "$SANITIZE" ]; then
    echo "error: $BUILD_DIR is CMAKE_BUILD_TYPE='$BUILD_TYPE'" \
         "SNIPE_SANITIZE='$SANITIZE' — benchmarks must run from a clean" \
         "Release tree.  Point bench.sh at a dedicated dir (default:" \
         "build-rel) or delete $BUILD_DIR and re-run." >&2
    exit 1
  fi
}

assert_release_tree
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target $BENCHES
assert_release_tree

for name in $BENCHES; do
  echo "==== $name ===="
  "$BUILD_DIR/bench/$name" --benchmark_out="BENCH_${name}.json" \
    --benchmark_out_format=json \
    --benchmark_context=cmake_build_type="$BUILD_TYPE"
done

if [ "$BLESS" = 1 ]; then
  mkdir -p "$BASELINE_DIR"
  for name in $BENCHES; do
    cp "BENCH_${name}.json" "$BASELINE_DIR/${name}.json"
  done
  echo "Blessed: copied fresh results into $BASELINE_DIR/ (commit them)."
  exit 0
fi

for name in $BENCHES; do
  baseline="$BASELINE_DIR/${name}.json"
  if [ ! -f "$baseline" ]; then
    echo "No baseline for $name ($baseline missing) — run scripts/bench.sh --bless"
    continue
  fi
  echo "==== $name vs baseline ===="
  python3 - "$baseline" "BENCH_${name}.json" <<'EOF'
import json, sys

def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        # Keep the headline counters; skip embedded m: metrics to keep the
        # diff readable (they live in the JSON for deeper digs).
        row = {k: v for k, v in b.items()
               if isinstance(v, (int, float)) and not k.startswith(("m:",))
               and k not in ("family_index", "per_family_instance_index",
                             "repetitions", "repetition_index", "threads",
                             "iterations")}
        out[b["name"]] = row
    return out

base, fresh = load(sys.argv[1]), load(sys.argv[2])
for name in fresh:
    if name not in base:
        print(f"  {name}: new benchmark (no baseline)")
        continue
    deltas = []
    for key, new in fresh[name].items():
        old = base[name].get(key)
        if old is None or old == 0:
            continue
        pct = (new - old) / old * 100
        if abs(pct) >= 2:  # hide noise-level movement
            deltas.append(f"{key} {old:.3g} -> {new:.3g} ({pct:+.1f}%)")
    status = "; ".join(deltas) if deltas else "within 2% of baseline"
    print(f"  {name}: {status}")
for name in base:
    if name not in fresh:
        print(f"  {name}: removed (present only in baseline)")

# Exporter-overhead guard (fleet telemetry plane): the paced datapath runs
# as an on/off pair in the same fresh binary, so the comparison is
# same-box, same-build by construction.  The telemetry exporter at its
# default cadence must cost the data plane no more than 2%.  The pass/fail
# signal is the *engine event count* — the simulator is deterministic, so
# that delta is exact and machine-independent; the wall-clock throughput
# delta is printed alongside as informational (single-shot wall times on a
# busy box swing far more than 2% on their own).
def paced(prefix):
    return {n: row for n, row in fresh.items()
            if n.startswith(prefix + "/")}

for off_name, off in paced("BM_SrudpPacedDatapath").items():
    on_name = off_name.replace("BM_SrudpPacedDatapath", "BM_SrudpPacedDatapathExporter")
    on = fresh.get(on_name)
    if on is None:
        continue
    if not off.get("events") or not on.get("events"):
        continue
    ev_pct = (on["events"] - off["events"]) / off["events"] * 100
    beacons = int(on.get("beacons", 0))
    verdict = "within 2% budget" if ev_pct <= 2 else "EXCEEDS 2% BUDGET"
    wall = ""
    key = "sim_MB_per_wall_sec"
    if off.get(key) and on.get(key):
        loss = (off[key] - on[key]) / off[key] * 100
        wall = (f"; wall {key} {off[key]:.3g} -> {on[key]:.3g} "
                f"({loss:+.1f}% loss, informational)")
    print(f"  exporter overhead ({off_name.split('/')[1]}B msgs, {beacons} beacons): "
          f"events {off['events']:.0f} -> {on['events']:.0f} ({ev_pct:+.2f}%) "
          f"— {verdict}{wall}")
EOF
done
