#!/usr/bin/env bash
# Sweeps the chaos suite across N seeds, failing on the first invariant
# trip.  Each seed reruns every scenario in tests/chaos_test.cpp with
# SNIPE_CHAOS_SEED set, so a sweep is N independent adversarial runs; on a
# failure the suite's gtest listener prints the flight-recorder dump (the
# fault and protocol events leading up to the trip) and the failing seed is
# echoed for local reproduction.
#
# Usage: scripts/chaos_sweep.sh [N] [build-dir]     (defaults: 10, build)
# Env:   SNIPE_CHAOS_BASE_SEED    first seed of the sweep (default 20260807)
#
# Registered as the ctest test "chaos_sweep" (label "sweep") when CMake is
# configured with -DSNIPE_CHAOS_SWEEP=ON; it is off by default so the
# tier-1 suite's runtime stays flat.
set -euo pipefail

cd "$(dirname "$0")/.."
N="${1:-10}"
BUILD_DIR="${2:-build}"
BIN="$BUILD_DIR/tests/chaos_test"

if [ ! -x "$BIN" ]; then
  echo "chaos_sweep: $BIN not built (cmake --build $BUILD_DIR --target chaos_test)" >&2
  exit 2
fi

BASE="${SNIPE_CHAOS_BASE_SEED:-20260807}"
for i in $(seq 0 $((N - 1))); do
  seed=$((BASE + i * 1000003))
  echo "==== chaos sweep: seed $seed ($((i + 1))/$N) ===="
  if ! SNIPE_CHAOS_SEED=$seed "$BIN" --gtest_brief=1; then
    echo "chaos_sweep: invariant tripped at seed $seed (flight-recorder dump above)" >&2
    echo "reproduce with: SNIPE_CHAOS_SEED=$seed $BIN" >&2
    exit 1
  fi
done
echo "chaos_sweep: $N seeds clean"
