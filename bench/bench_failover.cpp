// T-fail: transparent route/interface failover (§6).
//
// "The system also provided the ability to switch routes/interfaces as
//  links failed without user applications intervention."
//
// Dual-homed hosts stream over the faster interface (ATM); the receiver's
// ATM NIC fails silently mid-stream (a black hole, invisible to the
// sender).  The harness measures time-to-recover — from the failure to the
// first post-failover delivery on Ethernet — and verifies the transfer
// completes with no application involvement or data loss.  Expected shape:
// recovery within a few retransmission timeouts (threshold x RTO), then
// full Ethernet-rate throughput; zero message loss throughout.
#include "bench_util.hpp"
#include "transport/srudp.hpp"

namespace {

using namespace snipe;
using namespace snipe::bench;

void BM_Failover(benchmark::State& state) {
  const int failover_threshold = static_cast<int>(state.range(0));

  double recover_ms = -1, total_s = 0;
  int delivered = 0, switches = 0;

  for (auto _ : state) {
    reset_metrics();
    simnet::World world(7000);
    world.create_network("atm", simnet::atm155());
    world.create_network("eth", simnet::ethernet100());
    auto& a = world.create_host("a");
    auto& b = world.create_host("b");
    for (auto* h : {&a, &b}) {
      world.attach(*h, *world.network("atm"));
      world.attach(*h, *world.network("eth"));
    }
    transport::SrudpConfig cfg;
    cfg.failover_threshold = failover_threshold;
    transport::SrudpEndpoint tx(a, 7001, cfg), rx(b, 7002, cfg);

    const int messages = 200;
    const std::size_t size = 32'768;
    delivered = 0;
    SimTime fail_at = -1, recovered_at = -1;
    rx.set_handler([&](const simnet::Address&, Payload) {
      ++delivered;
      if (fail_at >= 0 && recovered_at < 0 && world.now() > fail_at)
        recovered_at = world.now();
    });
    for (int i = 0; i < messages; ++i) tx.send(rx.address(), Bytes(size, 0x3c));

    // Fail the receiver's ATM NIC once a third of the stream is through.
    world.engine().run_for(duration::milliseconds(30));
    fail_at = world.now();
    b.nic_on("atm")->set_up(false);
    world.engine().run();

    recover_ms = recovered_at >= 0 ? to_seconds(recovered_at - fail_at) * 1e3 : -1;
    total_s = to_seconds(world.now());
    switches = tx.stats().route_switches;
    if (delivered != messages) state.SkipWithError("messages lost in failover");
  }

  state.counters["recover_ms"] = recover_ms;
  state.counters["route_switches"] = switches;
  state.counters["delivered"] = delivered;
  state.counters["sim_total_s"] = total_s;
  embed_metrics(state, "srudp.");
  embed_metrics(state, "multipath.");
  state.SetLabel("threshold=" + std::to_string(failover_threshold));
}

BENCHMARK(BM_Failover)->Arg(1)->Arg(2)->Arg(4)->Iterations(1)->Unit(benchmark::kMillisecond);

// Control: the same failure with the *network* visibly down (the sender can
// see it) — simnet routes around it at send time, so recovery is immediate.
void BM_FailoverVisibleLink(benchmark::State& state) {
  double recover_ms = -1;
  int delivered = 0;
  for (auto _ : state) {
    simnet::World world(7001);
    world.create_network("atm", simnet::atm155());
    world.create_network("eth", simnet::ethernet100());
    auto& a = world.create_host("a");
    auto& b = world.create_host("b");
    for (auto* h : {&a, &b}) {
      world.attach(*h, *world.network("atm"));
      world.attach(*h, *world.network("eth"));
    }
    transport::SrudpEndpoint tx(a, 7001), rx(b, 7002);
    const int messages = 200;
    delivered = 0;
    SimTime fail_at = -1, recovered_at = -1;
    rx.set_handler([&](const simnet::Address&, Payload) {
      ++delivered;
      if (fail_at >= 0 && recovered_at < 0 && world.now() > fail_at)
        recovered_at = world.now();
    });
    for (int i = 0; i < messages; ++i) tx.send(rx.address(), Bytes(32'768, 0x3c));
    world.engine().run_for(duration::milliseconds(30));
    fail_at = world.now();
    world.network("atm")->set_up(false);
    world.engine().run();
    recover_ms = recovered_at >= 0 ? to_seconds(recovered_at - fail_at) * 1e3 : -1;
    if (delivered != messages) state.SkipWithError("messages lost");
  }
  state.counters["recover_ms"] = recover_ms;
  state.counters["delivered"] = delivered;
  state.SetLabel("visible link failure (send-time reroute)");
}

BENCHMARK(BM_FailoverVisibleLink)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
