// T-mcast: the two multicast designs (§5.4 and §6).
//
// 1. The wide-area router-based groups: delivery stays reliable as the
//    group grows and as routers fail (majority send + router relays).
// 2. The "experimental multicast protocol for ethernet": one broadcast
//    serves the whole segment, so sender cost is ~independent of group
//    size, versus unicast fan-out whose cost grows linearly.
//
// Expected shape: router-based delivery is 100% including with one router
// dead; Ethernet-multicast sender fragments stay flat with group size
// while unicast fan-out fragments grow ~linearly.
#include "bench_util.hpp"
#include "core/group.hpp"
#include "core/process.hpp"
#include "rcds/server.hpp"
#include "transport/ethmcast.hpp"
#include "util/uri.hpp"

namespace {

using namespace snipe;
using namespace snipe::bench;

void BM_GroupDelivery(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  const bool kill_router = state.range(1) != 0;
  const int messages = 20;

  double delivery_pct = 0, routers = 0;
  double sim_latency_ms = 0;

  for (auto _ : state) {
    simnet::World world(6000 + static_cast<std::uint64_t>(members));
    auto& lan = world.create_network("lan", simnet::ethernet100());
    auto& wan = world.create_network("wan", simnet::wan_t3());
    auto& rc_host = world.create_host("rc");
    world.attach(rc_host, lan);
    world.attach(rc_host, wan);
    rcds::RcServer rc(rc_host);
    std::vector<simnet::Address> replicas = {rc.address()};

    std::vector<std::unique_ptr<core::SnipeProcess>> procs;
    std::vector<std::unique_ptr<core::MulticastGroup>> groups;
    std::string g = group_urn("bench");
    int delivered = 0;
    std::vector<SimTime> sent_at(messages);
    SimDuration total_latency = 0;
    int latency_samples = 0;
    for (int i = 0; i < members; ++i) {
      auto& h = world.create_host("m" + std::to_string(i));
      world.attach(h, lan);
      world.attach(h, wan);
      procs.push_back(
          std::make_unique<core::SnipeProcess>(h, "m" + std::to_string(i), replicas));
      world.engine().run();
      groups.push_back(std::make_unique<core::MulticastGroup>(*procs.back(), g));
      world.engine().run();
      groups.back()->set_handler([&, i](const std::string&, Bytes body) {
        ByteReader r(body);
        auto seq = r.i64();
        if (seq && i != 0) {
          total_latency += world.now() - sent_at[static_cast<std::size_t>(seq.value())];
          ++latency_samples;
        }
        ++delivered;
      });
    }
    int router_count = 0;
    for (auto& grp : groups) router_count += grp->is_router();

    if (kill_router) {
      // Kill the last member that hosts a router (member 0 is the sender).
      for (int i = members - 1; i > 0; --i) {
        if (groups[static_cast<std::size_t>(i)]->is_router()) {
          world.host("m" + std::to_string(i))->set_up(false);
          break;
        }
      }
    }

    for (int s = 0; s < messages; ++s) {
      ByteWriter w;
      w.i64(s);
      sent_at[static_cast<std::size_t>(s)] = world.now();
      groups[0]->send(std::move(w).take());
      world.engine().run();
    }
    world.engine().run_for(duration::seconds(10));

    int expected_receivers = members - (kill_router ? 1 : 0);
    delivery_pct = 100.0 * delivered / (messages * expected_receivers);
    routers = router_count;
    sim_latency_ms =
        latency_samples > 0 ? to_seconds(total_latency / latency_samples) * 1e3 : 0;
  }

  state.counters["delivery_pct"] = delivery_pct;
  state.counters["routers"] = routers;
  state.counters["sim_latency_ms"] = sim_latency_ms;
  state.SetLabel(std::to_string(members) + " members" +
                 (kill_router ? ", one router killed" : ""));
}

void group_args(benchmark::internal::Benchmark* b) {
  for (std::int64_t members : {3, 8, 16, 32}) b->Args({members, 0});
  b->Args({8, 1});
  b->Args({16, 1});
}

BENCHMARK(BM_GroupDelivery)->Apply(group_args)->Iterations(1)->Unit(benchmark::kMillisecond);

// Ethernet multicast vs unicast fan-out: sender cost per delivered byte.
void BM_EthMcastVsUnicast(benchmark::State& state) {
  const int receivers = static_cast<int>(state.range(0));
  const bool use_multicast = state.range(1) != 0;
  const std::size_t msg_size = 100'000;
  const int messages = 10;

  double sender_fragments = 0, sim_ms = 0;
  int delivered = 0;

  for (auto _ : state) {
    simnet::World world(6100 + static_cast<std::uint64_t>(receivers));
    auto& seg = world.create_network("seg", simnet::ethernet100());
    auto& sender_host = world.create_host("tx");
    world.attach(sender_host, seg);
    delivered = 0;

    if (use_multicast) {
      std::vector<std::unique_ptr<transport::EthMcastEndpoint>> members;
      auto tx =
          std::make_unique<transport::EthMcastEndpoint>(sender_host, "seg", "grp", 9000);
      for (int i = 0; i < receivers; ++i) {
        auto& h = world.create_host("rx" + std::to_string(i));
        world.attach(h, seg);
        members.push_back(
            std::make_unique<transport::EthMcastEndpoint>(h, "seg", "grp", 9000));
        members.back()->set_handler(
            [&](const simnet::Address&, Payload) { ++delivered; });
      }
      SimTime start = world.now();
      for (int m = 0; m < messages; ++m) tx->send(Bytes(msg_size, 0x77));
      world.engine().run();
      sim_ms = to_seconds(world.now() - start) * 1e3;
      sender_fragments = static_cast<double>(tx->stats().fragments_broadcast +
                                             tx->stats().repairs_sent);
    } else {
      transport::SrudpEndpoint tx(sender_host, 9000);
      std::vector<std::unique_ptr<transport::SrudpEndpoint>> members;
      for (int i = 0; i < receivers; ++i) {
        auto& h = world.create_host("rx" + std::to_string(i));
        world.attach(h, seg);
        members.push_back(std::make_unique<transport::SrudpEndpoint>(h, 9001));
        members.back()->set_handler(
            [&](const simnet::Address&, Payload) { ++delivered; });
      }
      SimTime start = world.now();
      for (int m = 0; m < messages; ++m)
        for (auto& rx : members) tx.send(rx->address(), Bytes(msg_size, 0x77));
      world.engine().run();
      sim_ms = to_seconds(world.now() - start) * 1e3;
      sender_fragments = static_cast<double>(tx.stats().fragments_sent);
    }
    if (delivered != receivers * messages) state.SkipWithError("delivery incomplete");
  }

  state.counters["sender_fragments"] = sender_fragments;
  state.counters["sim_ms_total"] = sim_ms;
  state.SetLabel(std::string(use_multicast ? "eth-multicast" : "unicast-fanout") + ", " +
                 std::to_string(receivers) + " receivers");
}

void eth_args(benchmark::internal::Benchmark* b) {
  for (std::int64_t mode : {1, 0})
    for (std::int64_t receivers : {2, 4, 8, 16}) b->Args({receivers, mode});
}

BENCHMARK(BM_EthMcastVsUnicast)->Apply(eth_args)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
