// T-files: file sink/source streaming and closest-replica reads (§3.2,
// §5.9, §6).
//
// "Duplicated file reading/access is supported via location of closest
//  resource daemons."
//
// The harness measures (a) sink-write and source-read streaming rates on a
// LAN, and (b) the benefit of closest-replica selection: a client with a
// LAN-local replica vs one that must cross the WAN.  Expected shape:
// streaming approaches the SRUDP data rate; local-replica reads beat
// WAN-only reads by roughly the bandwidth ratio of the two paths.
#include <memory>

#include "bench_util.hpp"
#include "files/fileserver.hpp"
#include "rcds/server.hpp"

namespace {

using namespace snipe;
using namespace snipe::bench;

void BM_SinkSourceStreaming(benchmark::State& state) {
  const std::size_t file_size = static_cast<std::size_t>(state.range(0));
  double write_MBps = 0, read_MBps = 0;

  for (auto _ : state) {
    simnet::World world(9000);
    auto& lan = world.create_network("lan", simnet::ethernet100());
    for (const char* n : {"rc", "fs", "app"}) world.attach(world.create_host(n), lan);
    rcds::RcServer rc(*world.host("rc"));
    std::vector<simnet::Address> replicas = {rc.address()};
    files::FileServer fs(*world.host("fs"), replicas);
    transport::RpcEndpoint rpc(*world.host("app"), 9200);
    files::FileClient client(rpc, replicas);

    Bytes content(file_size, 0x11);
    SimTime start = world.now();
    bool ok = false;
    client.write(fs.address(), "lifn://bench/file", content,
                 [&](Result<void> r) { ok = r.ok(); });
    world.engine().run();
    double wsecs = to_seconds(world.now() - start);
    if (!ok) {
      state.SkipWithError("write failed");
      return;
    }
    write_MBps = file_size / wsecs / 1e6;

    start = world.now();
    bool read_ok = false;
    client.read("lifn://bench/file", [&](Result<Bytes> r) {
      read_ok = r.ok() && r.value().size() == file_size;
    });
    world.engine().run();
    double rsecs = to_seconds(world.now() - start);
    if (!read_ok) {
      state.SkipWithError("read failed");
      return;
    }
    read_MBps = file_size / rsecs / 1e6;
  }

  state.counters["sim_write_MBps"] = write_MBps;
  state.counters["sim_read_MBps"] = read_MBps;
}

BENCHMARK(BM_SinkSourceStreaming)
    ->Arg(64 << 10)
    ->Arg(1 << 20)
    ->Arg(8 << 20)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ClosestReplica(benchmark::State& state) {
  const bool has_local_replica = state.range(0) != 0;
  double read_MBps = 0;
  const std::size_t file_size = 4 << 20;

  for (auto _ : state) {
    simnet::World world(9001);
    auto& lan = world.create_network("lan", simnet::ethernet100());
    auto& wan = world.create_network("wan", simnet::wan_t3());
    auto attach_both = [&](const std::string& n) -> simnet::Host& {
      auto& h = world.create_host(n);
      world.attach(h, lan);
      world.attach(h, wan);
      return h;
    };
    attach_both("rc");
    attach_both("app");
    attach_both("fs-near");
    // The far server is WAN-only: reads from it cross the slow path.
    auto& far_host = world.create_host("fs-far");
    world.attach(far_host, wan);

    rcds::RcServer rc(*world.host("rc"));
    std::vector<simnet::Address> replicas = {rc.address()};
    files::FileServer near_server(*world.host("fs-near"), replicas);
    files::FileServer far_server(far_host, replicas);

    Bytes content(file_size, 0x22);
    far_server.store_local("lifn://bench/replicated", content);
    if (has_local_replica) near_server.store_local("lifn://bench/replicated", content);
    world.engine().run();

    transport::RpcEndpoint rpc(*world.host("app"), 9200);
    files::FileClient client(rpc, replicas);
    SimTime start = world.now();
    bool ok = false;
    client.read("lifn://bench/replicated",
                [&](Result<Bytes> r) { ok = r.ok() && r.value().size() == file_size; });
    world.engine().run();
    double secs = to_seconds(world.now() - start);
    if (!ok) {
      state.SkipWithError("read failed");
      return;
    }
    read_MBps = file_size / secs / 1e6;
  }

  state.counters["sim_read_MBps"] = read_MBps;
  state.SetLabel(has_local_replica ? "LAN replica available (closest wins)"
                                   : "WAN replica only");
}

BENCHMARK(BM_ClosestReplica)->Arg(1)->Arg(0)->Iterations(1)->Unit(benchmark::kMillisecond);

// Striped many-client saturation: four replicas, each reachable over its
// own 100 Mb/s "plane" network, and three clients attached to every plane.
// With one stripe per read all clients converge on the single closest
// replica and share one plane's bandwidth; at four stripes each read pulls
// from all four replicas over four disjoint planes at once, so aggregate
// goodput should scale well past the single-plane ceiling (ISSUE gate:
// >= 1.5x at 4 stripes).  Eight stripes exceeds the replica count and
// should plateau — extra stripes just split the same four streams finer.
void BM_StripedSaturation(benchmark::State& state) {
  const auto stripe_count = static_cast<std::uint32_t>(state.range(0));
  const std::size_t file_size = 4 << 20;
  constexpr int kClients = 3;
  constexpr int kPlanes = 4;
  double goodput_MBps = 0;

  for (auto _ : state) {
    simnet::World world(9002);
    std::vector<simnet::Network*> planes;
    for (int p = 0; p < kPlanes; ++p)
      planes.push_back(
          &world.create_network("plane" + std::to_string(p), simnet::ethernet100()));
    auto attach_all = [&](const std::string& n) -> simnet::Host& {
      auto& h = world.create_host(n);
      for (auto* plane : planes) world.attach(h, *plane);
      return h;
    };
    attach_all("rc");
    rcds::RcServer rc(*world.host("rc"));
    std::vector<simnet::Address> replicas = {rc.address()};

    // Each file server lives on exactly one plane: a read stripe landing on
    // server p can only travel over plane p.
    std::vector<std::unique_ptr<files::FileServer>> servers;
    Bytes content(file_size, 0x33);
    for (int p = 0; p < kPlanes; ++p) {
      auto& h = world.create_host("fs" + std::to_string(p));
      world.attach(h, *planes[static_cast<std::size_t>(p)]);
      servers.push_back(std::make_unique<files::FileServer>(h, replicas));
      servers.back()->store_local("lifn://bench/striped", content);
    }
    world.engine().run();  // announcements settle

    std::vector<std::unique_ptr<transport::RpcEndpoint>> rpcs;
    std::vector<std::unique_ptr<files::FileClient>> clients;
    files::FileClientConfig ccfg;
    ccfg.stripes = stripe_count;
    for (int c = 0; c < kClients; ++c) {
      auto& h = attach_all("app" + std::to_string(c));
      rpcs.push_back(std::make_unique<transport::RpcEndpoint>(h, 9200));
      clients.push_back(std::make_unique<files::FileClient>(*rpcs.back(), replicas, ccfg));
    }

    SimTime start = world.now();
    int done = 0;
    for (auto& client : clients)
      client->read("lifn://bench/striped", [&](Result<Bytes> r) {
        if (r.ok() && r.value().size() == file_size) ++done;
      });
    world.engine().run();
    double secs = to_seconds(world.now() - start);
    if (done != kClients) {
      state.SkipWithError("striped reads failed");
      return;
    }
    goodput_MBps = static_cast<double>(kClients) * file_size / secs / 1e6;
  }

  state.counters["sim_goodput_MBps"] = goodput_MBps;
  state.counters["stripes"] = stripe_count;
}

BENCHMARK(BM_StripedSaturation)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
