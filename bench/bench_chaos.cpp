// Chaos ablation: what the fault injector costs SRUDP in goodput.
//
// The paper's survivability chapters (§5–6) argue SNIPE keeps working on
// hostile networks; Fig. 1 only measures the friendly ones.  This harness
// quantifies the gap: one 8 MiB SRUDP transfer per case, on a clean link
// versus under increasingly unkind fault profiles (burst loss alone, then
// burst loss + duplication + reordering, then everything + corruption).
// All series are virtual-time and seeded, so a case's numbers are exactly
// reproducible and diffs between runs are real regressions, not noise.
//
// sim_MBps is the headline series; retransmit/duplicate/drop counters ride
// along as m: metrics so the JSON shows *why* goodput fell.
#include <cstdio>

#include "bench_util.hpp"
#include "simnet/fault.hpp"
#include "transport/srudp.hpp"

namespace {

using namespace snipe;
using namespace snipe::bench;

constexpr std::int64_t kTransferBytes = 8 << 20;

/// Fault profile indexed by bench argument; 0 is the clean baseline.
simnet::FaultProfile profile_by_index(int i) {
  simnet::FaultProfile p;
  switch (i) {
    case 0:
      break;  // clean
    case 1:
      p.burst = {0.02, 0.25, 0.0, 0.8};  // ~6% mean loss, in bursts
      break;
    case 2:
      p.burst = {0.02, 0.25, 0.0, 0.8};
      p.duplicate = 0.05;
      p.reorder = 0.1;
      p.reorder_jitter = duration::milliseconds(2);
      break;
    default:
      p.burst = {0.02, 0.25, 0.0, 0.8};
      p.duplicate = 0.05;
      p.reorder = 0.1;
      p.reorder_jitter = duration::milliseconds(2);
      p.corrupt = 0.01;
      break;
  }
  return p;
}

const char* profile_name(int i) {
  switch (i) {
    case 0: return "clean";
    case 1: return "burst";
    case 2: return "burst+dup+reorder";
    default: return "burst+dup+reorder+corrupt";
  }
}

struct ChaosResult {
  int delivered = 0;
  double secs = 0;
};

/// Runs the transfer, returns delivered count + virtual seconds.
ChaosResult run_chaos_transfer(int media_index, int profile_index, std::size_t size,
                               int count, std::uint64_t seed) {
  PairWorld pair(media_by_index(media_index), seed);
  simnet::FaultPlan plan(pair.world, seed * 0x9E3779B97F4A7C15ULL + 1);
  plan.inject("net", profile_by_index(profile_index));
  transport::SrudpEndpoint tx(pair.a(), 7001), rx(pair.b(), 7002);
  ChaosResult result;
  rx.set_handler([&](const simnet::Address&, Payload) { ++result.delivered; });
  SimTime start = pair.world.now();
  for (int i = 0; i < count; ++i) tx.send(rx.address(), Bytes(size, 0x5a));
  pair.world.engine().run();
  result.secs = to_seconds(pair.world.now() - start);
  return result;
}

void BM_Chaos(benchmark::State& state) {
  const int media_index = static_cast<int>(state.range(0));
  const int profile_index = static_cast<int>(state.range(1));
  const std::size_t size = static_cast<std::size_t>(state.range(2));
  const int count = static_cast<int>(std::max<std::int64_t>(1, kTransferBytes / size));

  // Expiry/stall warnings are the expected product of the corrupting
  // profiles; keep the bench output to the numbers.
  LogLevel prior = set_log_level(LogLevel::error);
  ChaosResult result;
  for (auto _ : state) {
    reset_metrics();
    result = run_chaos_transfer(media_index, profile_index, size, count, 42);
  }
  set_log_level(prior);
  if (result.delivered == 0 || result.secs <= 0) {
    state.SkipWithError("nothing delivered");
    return;
  }
  // Goodput counts what actually arrived: this 1998 wire format has no
  // payload checksum, so under the corrupting profile a mangled
  // single-fragment body or a forged STATUS ack can cost a message
  // outright — delivered_frac < 1 is the finding, not a harness error.
  double bytes = static_cast<double>(size) * result.delivered;
  state.counters["sim_MBps"] = bytes / result.secs / 1e6;
  state.counters["delivered_frac"] =
      static_cast<double>(result.delivered) / count;
  state.counters["msg_bytes"] = static_cast<double>(size);
  embed_metrics(state, "srudp.");
  state.SetLabel(std::string(media_name(media_index)) + "/" +
                 profile_name(profile_index));
}

void chaos_args(benchmark::internal::Benchmark* b) {
  for (int media : {1, 4})  // eth100 and the T3 WAN (latency amplifies faults)
    for (int profile : {0, 1, 2, 3})
      for (std::int64_t size : {4096, 65536, 1048576}) b->Args({media, profile, size});
}

BENCHMARK(BM_Chaos)->Apply(chaos_args)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Checksum ablation: SrudpConfig::checksum on/off under rising corruption.
//
// The 1998 wire format had no payload checksum; the data_ck variant is the
// modern fix.  This series isolates its two costs and its one benefit:
// 4 wire bytes + an FNV pass per fragment (visible at corrupt=0) versus
// goodput retained as corruption climbs — a corrupted fragment is detected
// and selectively re-sent instead of poisoning the reassembled message.

ChaosResult run_corruption_transfer(double corrupt_rate, bool checksum,
                                    std::size_t size, int count, std::uint64_t seed) {
  PairWorld pair(media_by_index(1), seed);  // eth100
  simnet::FaultPlan plan(pair.world, seed * 0x9E3779B97F4A7C15ULL + 1);
  simnet::FaultProfile profile;
  profile.corrupt = corrupt_rate;
  plan.inject("net", profile);
  transport::SrudpConfig cfg;
  cfg.checksum = checksum;
  transport::SrudpEndpoint tx(pair.a(), 7001, cfg), rx(pair.b(), 7002, cfg);
  ChaosResult result;
  rx.set_handler([&](const simnet::Address&, Payload) { ++result.delivered; });
  SimTime start = pair.world.now();
  for (int i = 0; i < count; ++i) tx.send(rx.address(), Bytes(size, 0x5a));
  pair.world.engine().run();
  result.secs = to_seconds(pair.world.now() - start);
  return result;
}

void BM_ChecksumAblation(benchmark::State& state) {
  const double corrupt = static_cast<double>(state.range(0)) / 1000.0;  // per mille
  const bool checksum = state.range(1) != 0;
  const std::size_t size = 65536;
  const int count = static_cast<int>(kTransferBytes / size);

  LogLevel prior = set_log_level(LogLevel::error);
  ChaosResult result;
  for (auto _ : state) {
    reset_metrics();
    result = run_corruption_transfer(corrupt, checksum, size, count, 42);
  }
  set_log_level(prior);
  if (result.secs <= 0) {
    state.SkipWithError("nothing ran");
    return;
  }
  double bytes = static_cast<double>(size) * result.delivered;
  state.counters["sim_MBps"] = bytes / result.secs / 1e6;
  state.counters["delivered_frac"] = static_cast<double>(result.delivered) / count;
  embed_metrics(state, "srudp.");
  char label[64];
  std::snprintf(label, sizeof(label), "corrupt=%.1f%%/ck=%s", corrupt * 100,
                checksum ? "on" : "off");
  state.SetLabel(label);
}

void checksum_args(benchmark::internal::Benchmark* b) {
  for (std::int64_t corrupt_permille : {0, 5, 10, 20, 50})
    for (std::int64_t ck : {0, 1}) b->Args({corrupt_permille, ck});
}

BENCHMARK(BM_ChecksumAblation)->Apply(checksum_args)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
