// Data-plane and event-engine throughput harness.
//
// Unlike the figure benches (which report *virtual-time* metrics), this one
// measures the simulator itself: wall-clock events/sec through the engine,
// simulated megabytes moved per wall-clock second through the transport
// stack, and heap allocations per delivered message.  It is the regression
// gate for the zero-copy data plane and the heap-based event queue — the
// ROADMAP north star says simulation should run "as fast as the hardware
// allows", and these counters are how we hold that line per PR.
//
// Wall-clock numbers are machine-dependent; compare runs on the same box.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <new>

#include <optional>

#include "bench_util.hpp"
#include "daemon/telemetry.hpp"
#include "transport/rpc.hpp"
#include "transport/srudp.hpp"
#include "transport/stream.hpp"

// ---------------------------------------------------------------------------
// Allocation counter: global operator new/delete overrides, effective for
// this binary only.  Counts calls, not bytes — the metric of interest is
// "allocations per delivered message", which a zero-copy path should hold
// near-constant regardless of message size.
static std::uint64_t g_alloc_count = 0;

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_alloc_count;
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

using namespace snipe;
using namespace snipe::bench;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Engine microbenches.

/// Pure event churn: a self-rescheduling chain plus a fan of one-shot
/// timers, no payloads.  Measures the queue's push/pop cost.
void BM_EngineEvents(benchmark::State& state) {
  const std::size_t kEvents = 1 << 20;
  double wall = 0;
  for (auto _ : state) {
    simnet::Engine engine(1);
    // Half the events are a serial chain (always-next-event pattern of a
    // busy endpoint), half are scattered one-shots (timer fan-out).
    std::size_t fired = 0;
    std::function<void()> chain = [&] {
      if (++fired < kEvents / 2) engine.schedule(duration::microseconds(1), chain);
    };
    engine.schedule(duration::microseconds(1), chain);
    Rng scatter(7);
    for (std::size_t i = 0; i < kEvents / 2; ++i) {
      engine.schedule(duration::microseconds(1 + scatter.next_below(1000)),
                      [&fired] { ++fired; });
    }
    auto start = Clock::now();
    engine.run();
    wall = seconds_since(start);
    benchmark::DoNotOptimize(fired);
  }
  state.counters["wall_events_per_sec"] = static_cast<double>(kEvents) / wall;
}
BENCHMARK(BM_EngineEvents)->Iterations(1)->Unit(benchmark::kMillisecond);

/// The retransmit-timer pattern: schedule a timer per packet, cancel it
/// when the ack arrives (i.e. almost immediately).  With a linear-scan
/// cancel this is quadratic in outstanding timers; with generation-checked
/// cancellation it is O(1).
void BM_EngineCancelChurn(benchmark::State& state) {
  const std::size_t kOutstanding = static_cast<std::size_t>(state.range(0));
  const std::size_t kRounds = 64;
  double wall = 0;
  for (auto _ : state) {
    simnet::Engine engine(1);
    std::vector<simnet::TimerId> timers(kOutstanding);
    auto start = Clock::now();
    for (std::size_t round = 0; round < kRounds; ++round) {
      for (std::size_t i = 0; i < kOutstanding; ++i)
        timers[i] = engine.schedule(duration::seconds(10), [] {});
      for (std::size_t i = 0; i < kOutstanding; ++i) engine.cancel(timers[i]);
    }
    wall = seconds_since(start);
    engine.clear();
  }
  state.counters["wall_cancels_per_sec"] =
      static_cast<double>(kOutstanding * kRounds) / wall;
}
BENCHMARK(BM_EngineCancelChurn)->Arg(1000)->Arg(10000)->Iterations(1)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Transport data-plane benches.

struct DatapathResult {
  double wall_secs = 0;
  double sim_bytes = 0;
  std::uint64_t events = 0;
  std::uint64_t allocs = 0;
  bool complete = false;
};

/// Moves `count` messages of `size` bytes over SRUDP on the given media and
/// reports wall time, engine events, and allocations for the whole run
/// (send through reassembled delivery).
DatapathResult run_srudp(simnet::MediaModel media, std::size_t size, int count) {
  PairWorld pair(media, 42);
  transport::SrudpEndpoint tx(pair.a(), 7001), rx(pair.b(), 7002);
  int delivered = 0;
  std::uint64_t delivered_bytes = 0;
  rx.set_handler([&](const simnet::Address&, const auto& m) {
    ++delivered;
    delivered_bytes += m.size();
  });
  DatapathResult r;
  Bytes message(size, 0x5a);
  std::uint64_t alloc_start = g_alloc_count;
  auto start = Clock::now();
  for (int i = 0; i < count; ++i) tx.send(rx.address(), Bytes(message));
  pair.world.engine().run();
  r.wall_secs = seconds_since(start);
  r.allocs = g_alloc_count - alloc_start;
  r.events = pair.world.engine().events_run();
  r.sim_bytes = static_cast<double>(delivered_bytes);
  r.complete = delivered == count;
  return r;
}

/// Same transfer over the TCP-like stream.
DatapathResult run_stream(simnet::MediaModel media, std::size_t size, int count) {
  PairWorld pair(media, 42);
  transport::StreamEndpoint client(pair.a(), 8001), server(pair.b(), 8002);
  int delivered = 0;
  std::uint64_t delivered_bytes = 0;
  server.listen([&](std::shared_ptr<transport::StreamConnection> conn) {
    conn->set_message_handler([&, conn](const auto& m) {
      ++delivered;
      delivered_bytes += m.size();
    });
  });
  DatapathResult r;
  Bytes message(size, 0x5a);
  auto conn = client.connect(server.address());
  std::uint64_t alloc_start = g_alloc_count;
  auto start = Clock::now();
  for (int i = 0; i < count; ++i) conn->send_message(Bytes(message));
  pair.world.engine().run();
  r.wall_secs = seconds_since(start);
  r.allocs = g_alloc_count - alloc_start;
  r.events = pair.world.engine().events_run();
  r.sim_bytes = static_cast<double>(delivered_bytes);
  r.complete = delivered == count;
  return r;
}

void report(benchmark::State& state, const DatapathResult& r, int count) {
  if (!r.complete) {
    state.SkipWithError("transfer incomplete");
    return;
  }
  state.counters["wall_events_per_sec"] = static_cast<double>(r.events) / r.wall_secs;
  state.counters["sim_MB_per_wall_sec"] = r.sim_bytes / r.wall_secs / 1e6;
  state.counters["allocs_per_msg"] = static_cast<double>(r.allocs) / count;
  state.counters["events"] = static_cast<double>(r.events);
}

/// The acceptance-gate case: large messages over a fast medium, where
/// payload copies dominate.  range(0) = message bytes.
void BM_SrudpDatapath(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  const int count = static_cast<int>(std::max<std::int64_t>(4, (64 << 20) / state.range(0)));
  DatapathResult r;
  for (auto _ : state) {
    reset_metrics();
    r = run_srudp(simnet::myrinet(), size, count);
    if (!r.complete) {
      state.SkipWithError("transfer incomplete");
      return;
    }
  }
  report(state, r, count);
  state.SetLabel("srudp/myrinet");
}
BENCHMARK(BM_SrudpDatapath)
    ->Arg(4096)
    ->Arg(65536)
    ->Arg(1 << 20)
    ->Arg(4 << 20)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

/// Exporter-overhead gate (fleet telemetry plane): the same SRUDP transfer,
/// but paced across ~6 virtual seconds so the telemetry exporter's default
/// 1 s cadence actually fires mid-run — a burst transfer drains the engine
/// in well under one beacon period and would measure nothing.  When
/// `exporter_on`, a TelemetryExporter on the sender beacons in-band to a
/// TelemetryCollector on the receiver over the same network the data rides.
/// scripts/bench.sh compares the on/off pair and flags the exporter if it
/// costs the data plane more than 2% — judged on the deterministic engine
/// event count, with wall-clock throughput printed as informational.
DatapathResult run_srudp_paced(simnet::MediaModel media, std::size_t size, int count,
                               bool exporter_on, std::uint64_t* beacons) {
  PairWorld pair(media, 42);
  transport::SrudpEndpoint tx(pair.a(), 7001), rx(pair.b(), 7002);
  int delivered = 0;
  std::uint64_t delivered_bytes = 0;
  rx.set_handler([&](const simnet::Address&, const auto& m) {
    ++delivered;
    delivered_bytes += m.size();
  });
  std::optional<transport::RpcEndpoint> coll_rpc, exp_rpc;
  std::optional<daemon::TelemetryCollector> collector;
  std::optional<daemon::TelemetryExporter> exporter;
  if (exporter_on) {
    coll_rpc.emplace(pair.b(), 7200);
    collector.emplace(*coll_rpc);
    exp_rpc.emplace(pair.a(), 7100);
    daemon::TelemetryConfig cfg;
    cfg.collectors = {coll_rpc->address()};
    exporter.emplace(*exp_rpc, cfg);  // default cadence: period = 1 s
    exporter->start();
  }
  DatapathResult r;
  Bytes message(size, 0x5a);
  std::uint64_t alloc_start = g_alloc_count;
  auto start = Clock::now();
  // Bursts of 8 per tick: long enough wall-clock for a stable 2% compare,
  // while the tick spacing still stretches the run past several beacon
  // periods of virtual time.
  for (int i = 0; i < count; ++i) {
    pair.world.engine().schedule(duration::milliseconds(250 * (i / 8)),
                                 [&] { tx.send(rx.address(), Bytes(message)); });
  }
  pair.world.engine().run();
  r.wall_secs = seconds_since(start);
  r.allocs = g_alloc_count - alloc_start;
  r.events = pair.world.engine().events_run();
  r.sim_bytes = static_cast<double>(delivered_bytes);
  r.complete = delivered == count;
  if (beacons != nullptr)
    *beacons = collector.has_value() ? collector->beacons_received() : 0;
  return r;
}

void run_paced_case(benchmark::State& state, bool exporter_on) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  const int count = 192;  // 24 ticks 250 ms apart -> ~6 virtual seconds, ~5 beacons
  DatapathResult r;
  std::uint64_t beacons = 0;
  for (auto _ : state) {
    reset_metrics();
    r = run_srudp_paced(simnet::myrinet(), size, count, exporter_on, &beacons);
    if (!r.complete) {
      state.SkipWithError("transfer incomplete");
      return;
    }
  }
  report(state, r, count);
  state.counters["beacons"] = static_cast<double>(beacons);
  state.SetLabel(exporter_on ? "srudp/myrinet/exporter-on" : "srudp/myrinet/exporter-off");
}

void BM_SrudpPacedDatapath(benchmark::State& state) { run_paced_case(state, false); }
BENCHMARK(BM_SrudpPacedDatapath)->Arg(1 << 20)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_SrudpPacedDatapathExporter(benchmark::State& state) { run_paced_case(state, true); }
BENCHMARK(BM_SrudpPacedDatapathExporter)
    ->Arg(1 << 20)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_StreamDatapath(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  const int count = static_cast<int>(std::max<std::int64_t>(4, (32 << 20) / state.range(0)));
  DatapathResult r;
  for (auto _ : state) {
    reset_metrics();
    r = run_stream(simnet::myrinet(), size, count);
    if (!r.complete) {
      state.SkipWithError("transfer incomplete");
      return;
    }
  }
  report(state, r, count);
  state.SetLabel("stream/myrinet");
}
BENCHMARK(BM_StreamDatapath)
    ->Arg(65536)
    ->Arg(1 << 20)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Sharded-world sweep: the conservative-window parallel engine.

/// Thread-CPU time of the calling thread; the single-shard critical path.
std::uint64_t bench_thread_cpu_ns() {
#if defined(__linux__)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
           static_cast<std::uint64_t>(ts.tv_nsec);
#endif
  return 0;
}

/// Eight sites — worker + gateway on a per-site LAN, gateways ringed over
/// an 18 ms WAN (the lookahead) — partitioned across range(0) shards.  The
/// workload mirrors BM_EngineEvents (half self-rescheduling chain, half
/// pre-scheduled scattered one-shots, ~1M events total, identical for
/// every shard count) with a sparse data plane on top: every 256th chain
/// step sends an intra-site datagram, every 4096th crosses the WAN.
///
/// Two throughput counters, both over the same event total:
///   wall_events_per_sec      events / wall seconds.  On a box with fewer
///                            cores than shards this measures core
///                            contention, not the engine.
///   critpath_events_per_sec  events / critical path, where the critical
///                            path sums each window's slowest shard
///                            (thread-CPU time).  This is what the wall
///                            clock converges to given >= `shards` cores,
///                            and the honest parallelism metric either way.
void BM_ShardedWorld(benchmark::State& state) {
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kSites = 8;
  constexpr std::size_t kChainSteps = 60000;  // per site
  constexpr std::size_t kScatter = 480000;    // pre-scheduled one-shots, total
  double wall = 0;
  double critpath_secs = 0;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t cross = 0;
  for (auto _ : state) {
    simnet::World world(11, shards);
    auto& wan = world.create_network("wan", simnet::wan_t3());
    std::vector<simnet::Host*> workers, gateways;
    for (std::size_t i = 0; i < kSites; ++i) {
      auto& lan = world.create_network("lan" + std::to_string(i), simnet::ethernet100());
      auto& w = world.create_host("w" + std::to_string(i), i % shards);
      auto& g = world.create_host("g" + std::to_string(i), i % shards);
      world.attach(w, lan);
      world.attach(g, lan);
      world.attach(g, wan);
      w.bind(9, [](const simnet::Packet&) {}).value();
      g.bind(9, [](const simnet::Packet&) {}).value();
      workers.push_back(&w);
      gateways.push_back(&g);
    }
    for (std::size_t i = 0; i < kSites; ++i) {
      simnet::Host* w = workers[i];
      simnet::Host* g = gateways[i];
      const simnet::Address site_dst{"g" + std::to_string(i), 9};
      const simnet::Address ring_dst{"g" + std::to_string((i + 1) % kSites), 9};
      // Staggered odd-microsecond periods: sites tick at incommensurate
      // times, so the event total is shard-count-invariant by construction.
      const SimDuration period = duration::microseconds(59 + 2 * static_cast<SimTime>(i));
      auto count = std::make_shared<std::size_t>(0);
      auto step = std::make_shared<std::function<void()>>();
      *step = [w, g, site_dst, ring_dst, period, count, step] {
        std::size_t n = ++*count;
        if (n % 256 == 0) w->send(site_dst, Bytes{1}).value();
        if (n % 4096 == 0) g->send(ring_dst, Bytes{1}).value();
        if (n < kChainSteps) w->engine().schedule(period, [step] { (*step)(); });
      };
      w->engine().schedule(period, [step] { (*step)(); });
    }
    // Scatter span well under the chain runtime: the heap starts deep and
    // drains early, matching BM_EngineEvents' depth profile so the 1-shard
    // number is directly comparable to the unsharded engine baseline.
    Rng scatter(7);
    const SimTime span = duration::milliseconds(50);
    for (std::size_t i = 0; i < kScatter; ++i) {
      workers[i % kSites]->engine().schedule_at(
          1 + static_cast<SimTime>(scatter.next_below(static_cast<std::uint64_t>(span))),
          [] {});
    }
    std::uint64_t cpu0 = bench_thread_cpu_ns();
    auto start = Clock::now();
    world.run_until(duration::seconds(5));
    wall = seconds_since(start);
    std::uint64_t cpu1 = bench_thread_cpu_ns();
    events = world.events_run();
    windows = world.run_stats().windows;
    cross = world.run_stats().cross_shard_packets;
    critpath_secs = shards == 1
                        ? static_cast<double>(cpu1 - cpu0) / 1e9
                        : static_cast<double>(world.run_stats().critical_path_ns) / 1e9;
  }
  state.counters["wall_events_per_sec"] = static_cast<double>(events) / wall;
  if (critpath_secs > 0)
    state.counters["critpath_events_per_sec"] = static_cast<double>(events) / critpath_secs;
  state.counters["events"] = static_cast<double>(events);
  state.counters["windows"] = static_cast<double>(windows);
  state.counters["cross_shard_packets"] = static_cast<double>(cross);
}
BENCHMARK(BM_ShardedWorld)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
