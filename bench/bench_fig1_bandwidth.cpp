// Figure 1: "Bandwidth in MegaBytes/Second offered to SNIPE client
// applications on various media."
//
// The paper's only performance figure compares the comms module's
// protocols (the selective re-send UDP protocol and TCP) on 100 Mb
// Ethernet and 155 Mb ATM.  This harness regenerates the figure's series —
// bandwidth vs message size per (protocol, medium) — and extends it with
// Myrinet and a lossy-WAN sweep as ablations.  Expected shape (paper):
// both protocols approach the media limit for large messages, SNIPE's
// SRUDP delivers slightly more of it than TCP (no handshake, selective
// retransmission, leaner acking), and ATM outruns Ethernet once messages
// amortize per-packet costs.
//
// Metrics are virtual-time: sim_MBps is what Fig. 1's y-axis shows.
#include "bench_util.hpp"
#include "simnet/topo.hpp"
#include "transport/srudp.hpp"
#include "transport/stream.hpp"

namespace {

using namespace snipe;
using namespace snipe::bench;

constexpr std::int64_t kTransferTarget = 16 << 20;  // move ~16 MiB per case

/// Sends `count` messages of `size` bytes over SRUDP, returns virtual secs.
double run_srudp(simnet::MediaModel media, std::size_t size, int count, double loss) {
  PairWorld pair(media, 42);
  pair.world.network("net")->set_extra_loss(loss);
  transport::SrudpEndpoint tx(pair.a(), 7001), rx(pair.b(), 7002);
  int delivered = 0;
  rx.set_handler([&](const simnet::Address&, Payload) { ++delivered; });
  SimTime start = pair.world.now();
  for (int i = 0; i < count; ++i) tx.send(rx.address(), Bytes(size, 0x5a));
  pair.world.engine().run();
  if (delivered != count) return -1;
  return to_seconds(pair.world.now() - start);
}

/// Same transfer over the TCP-like stream (handshake included, as a real
/// TCP connection per transfer would pay it).
double run_stream(simnet::MediaModel media, std::size_t size, int count, double loss) {
  PairWorld pair(media, 42);
  pair.world.network("net")->set_extra_loss(loss);
  transport::StreamEndpoint client(pair.a(), 8001), server(pair.b(), 8002);
  int delivered = 0;
  server.listen([&](std::shared_ptr<transport::StreamConnection> conn) {
    conn->set_message_handler([&delivered, conn](Payload) { ++delivered; });
  });
  SimTime start = pair.world.now();
  auto conn = client.connect(server.address());
  for (int i = 0; i < count; ++i) conn->send_message(Bytes(size, 0x5a));
  pair.world.engine().run();
  if (delivered != count) return -1;
  return to_seconds(pair.world.now() - start);
}

void BM_Fig1(benchmark::State& state) {
  const int protocol = static_cast<int>(state.range(0));  // 0 = SRUDP, 1 = TCP
  const int media_index = static_cast<int>(state.range(1));
  const std::size_t size = static_cast<std::size_t>(state.range(2));
  const int count = static_cast<int>(std::max<std::int64_t>(1, kTransferTarget / size));

  double secs = 0;
  for (auto _ : state) {
    reset_metrics();
    simnet::MediaModel media = media_by_index(media_index);
    secs = protocol == 0 ? run_srudp(media, size, count, 0.0)
                         : run_stream(media, size, count, 0.0);
    if (secs <= 0) {
      state.SkipWithError("transfer incomplete");
      return;
    }
  }
  double bytes = static_cast<double>(size) * count;
  state.counters["sim_MBps"] = bytes / secs / 1e6;
  state.counters["msg_bytes"] = static_cast<double>(size);
  // Retained totals survive the endpoints (destroyed inside run_srudp), so
  // the snapshot still carries the whole transfer: retransmit count, RTT
  // percentiles, delivered bytes.
  if (protocol == 0) embed_metrics(state, "srudp.");
  state.SetLabel(std::string(protocol == 0 ? "SNIPE-srudp" : "TCP") + "/" +
                 media_name(media_index));
}

void fig1_args(benchmark::internal::Benchmark* b) {
  for (int protocol : {0, 1})
    for (int media : {1, 2, 3})  // eth100, atm155, myrinet (Fig. 1 + extension)
      for (std::int64_t size : {256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304})
        b->Args({protocol, media, size});
}

BENCHMARK(BM_Fig1)->Apply(fig1_args)->Iterations(1)->Unit(benchmark::kMillisecond);

// Small-message latency companion (the left edge of Fig. 1's curves).
void BM_Fig1Latency(benchmark::State& state) {
  const int protocol = static_cast<int>(state.range(0));
  const int media_index = static_cast<int>(state.range(1));
  double secs = 0;
  const int rounds = 200;
  for (auto _ : state) {
    simnet::MediaModel media = media_by_index(media_index);
    // One-byte ping-pong: round-trip time / 2.
    PairWorld pair(media, 7);
    int pongs = 0;
    if (protocol == 0) {
      transport::SrudpEndpoint a(pair.a(), 7001), b(pair.b(), 7002);
      b.set_handler([&](const simnet::Address& src, Payload m) { b.send(src, std::move(m)); });
      a.set_handler([&](const simnet::Address&, Payload) {
        if (++pongs < rounds) a.send(b.address(), Bytes{1});
      });
      SimTime start = pair.world.now();
      a.send(b.address(), Bytes{1});
      pair.world.engine().run();
      secs = to_seconds(pair.world.now() - start);
    } else {
      transport::StreamEndpoint client(pair.a(), 8001), server(pair.b(), 8002);
      std::shared_ptr<transport::StreamConnection> sconn;
      server.listen([&](std::shared_ptr<transport::StreamConnection> conn) {
        sconn = conn;
        conn->set_message_handler([&](Payload m) { sconn->send_message(std::move(m)); });
      });
      auto conn = client.connect(server.address());
      conn->set_message_handler([&](Payload m) {
        if (++pongs < rounds) conn->send_message(std::move(m));
      });
      SimTime start = pair.world.now();
      conn->send_message(Bytes{1});
      pair.world.engine().run();
      secs = to_seconds(pair.world.now() - start);
    }
    if (pongs != rounds) {
      state.SkipWithError("ping-pong incomplete");
      return;
    }
  }
  state.counters["sim_rtt_us"] = secs / rounds * 1e6;
  state.SetLabel(std::string(protocol == 0 ? "SNIPE-srudp" : "TCP") + "/" +
                 media_name(media_index));
}

BENCHMARK(BM_Fig1Latency)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 2})
    ->Args({1, 2})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Fig. 1 re-run across a datacenter topology: the same SRUDP size sweep,
// but sender and receiver sit in *different racks* of a fat-tree, so every
// fragment pays four serialize+propagate hops (rack -> uplink -> uplink ->
// rack) through ToR and spine routers instead of one shared segment.  The
// embedded srudp.delivery_ms histogram makes the per-hop latency tax
// visible next to the flat-Fig.-1 rows; goodput converges to the thinnest
// link on the path (the uplinks, equal media here) minus the extra hops'
// framing.
void BM_Fig1Datacenter(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  const int count = static_cast<int>(std::max<std::int64_t>(1, kTransferTarget / size));
  double secs = 0;
  for (auto _ : state) {
    reset_metrics();
    simnet::World world(42);
    simnet::FatTreeOptions opt;  // 2 racks, 2 hosts each, 2 spines, all eth100
    simnet::build_fat_tree(world, "dc", opt);
    transport::SrudpEndpoint tx(*world.host("dc/h0_0"), 7001);
    transport::SrudpEndpoint rx(*world.host("dc/h1_0"), 7002);
    int delivered = 0;
    rx.set_handler([&](const simnet::Address&, Payload) { ++delivered; });
    SimTime start = world.now();
    for (int i = 0; i < count; ++i) tx.send(rx.address(), Bytes(size, 0x5a));
    world.engine().run();
    secs = to_seconds(world.now() - start);
    if (delivered != count) {
      state.SkipWithError("transfer incomplete");
      return;
    }
  }
  double bytes = static_cast<double>(size) * count;
  state.counters["sim_MBps"] = bytes / secs / 1e6;
  state.counters["msg_bytes"] = static_cast<double>(size);
  embed_metrics(state, "srudp.");
  state.SetLabel("SNIPE-srudp/fat-tree-cross-rack");
}

BENCHMARK(BM_Fig1Datacenter)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536)
    ->Arg(262144)
    ->Arg(1048576)
    ->Arg(4194304)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Loss ablation: selective re-send vs cumulative-ack streams under loss —
// the design rationale for SRUDP (DESIGN.md §5.2).
void BM_LossAblation(benchmark::State& state) {
  const int protocol = static_cast<int>(state.range(0));
  const double loss = static_cast<double>(state.range(1)) / 1000.0;
  double secs = 0;
  for (auto _ : state) {
    reset_metrics();
    secs = protocol == 0 ? run_srudp(simnet::wan_t3(), 65536, 64, loss)
                         : run_stream(simnet::wan_t3(), 65536, 64, loss);
    if (secs <= 0) {
      state.SkipWithError("transfer incomplete");
      return;
    }
  }
  state.counters["sim_MBps"] = 64.0 * 65536 / secs / 1e6;
  state.counters["loss_pct"] = loss * 100;
  if (protocol == 0) embed_metrics(state, "srudp.");
  state.SetLabel(protocol == 0 ? "SNIPE-srudp" : "TCP");
}

BENCHMARK(BM_LossAblation)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 10})
    ->Args({1, 10})
    ->Args({0, 30})
    ->Args({1, 30})
    ->Args({0, 50})
    ->Args({1, 50})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
