// Shared helpers for the SNIPE benchmark harnesses.
//
// Every bench runs a deterministic simulation and reports *virtual-time*
// metrics (bandwidth, latency, recovery time) through google-benchmark
// counters; wall-clock time measures only the simulator itself.  Because
// runs are deterministic, each case runs a single iteration.
#pragma once

#include <benchmark/benchmark.h>

#include "simnet/world.hpp"

namespace snipe::bench {

/// Media indexed by bench argument.
inline simnet::MediaModel media_by_index(int i) {
  switch (i) {
    case 0: return simnet::ethernet10();
    case 1: return simnet::ethernet100();
    case 2: return simnet::atm155();
    case 3: return simnet::myrinet();
    case 4: return simnet::wan_t3();
    default: return simnet::internet_lossy();
  }
}

inline const char* media_name(int i) {
  switch (i) {
    case 0: return "eth10";
    case 1: return "eth100";
    case 2: return "atm155";
    case 3: return "myrinet";
    case 4: return "wan_t3";
    default: return "internet";
  }
}

/// Two hosts joined by one network of the given media.
struct PairWorld {
  explicit PairWorld(simnet::MediaModel media, std::uint64_t seed = 1) : world(seed) {
    auto& net = world.create_network("net", std::move(media));
    world.attach(world.create_host("a"), net);
    world.attach(world.create_host("b"), net);
  }
  simnet::Host& a() { return *world.host("a"); }
  simnet::Host& b() { return *world.host("b"); }
  simnet::World world;
};

}  // namespace snipe::bench
