// Shared helpers for the SNIPE benchmark harnesses.
//
// Every bench runs a deterministic simulation and reports *virtual-time*
// metrics (bandwidth, latency, recovery time) through google-benchmark
// counters; wall-clock time measures only the simulator itself.  Because
// runs are deterministic, each case runs a single iteration.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simnet/world.hpp"

namespace snipe::bench {

/// SNIPE_BENCH_METRICS=0 (or "off") disables the metrics registry and the
/// tracer for the whole bench run — the opt-out knob used to measure
/// instrumentation overhead against an uninstrumented baseline.
inline bool metrics_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("SNIPE_BENCH_METRICS");
    bool on = !(env != nullptr &&
                (std::string(env) == "0" || std::string(env) == "off"));
    obs::MetricsRegistry::global().set_enabled(on);
    obs::Tracer::global().set_enabled(on);
    return on;
  }();
  return enabled;
}

/// SNIPE_BENCH_FLOW=1 additionally records causal flow events.  Off by
/// default: flow ids are minted and carried on the wire regardless (the
/// replay contract), so this knob toggles only the per-fragment event
/// recording — the runtime overhead DESIGN.md quantifies with
/// bench_datapath run both ways.
inline bool flow_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("SNIPE_BENCH_FLOW");
    bool on = env != nullptr && std::string(env) != "0" && std::string(env) != "off";
    obs::Tracer::global().set_flow_enabled(on);
    return on;
  }();
  return enabled;
}

/// Clears global metric/trace state so one bench case cannot pollute the
/// next (cases run back-to-back in one process).
inline void reset_metrics() {
  metrics_enabled();
  flow_enabled();
  obs::MetricsRegistry::global().reset();
  obs::Tracer::global().clear();
}

/// Copies the registry snapshot into google-benchmark counters (prefixed
/// "m:"), so --benchmark_out JSON embeds the run's metrics next to the
/// virtual-time results.  `prefix` filters by metric name ("" = all).
inline void embed_metrics(benchmark::State& state, const std::string& prefix = "") {
  if (!metrics_enabled()) return;
  for (const auto& m : obs::MetricsRegistry::global().snapshot()) {
    if (!prefix.empty() && m.name.rfind(prefix, 0) != 0) continue;
    if (m.kind == obs::MetricValue::Kind::histogram) {
      if (m.count == 0) continue;
      state.counters["m:" + m.name + ".count"] = static_cast<double>(m.count);
      state.counters["m:" + m.name + ".p50"] = m.p50;
      state.counters["m:" + m.name + ".p95"] = m.p95;
      state.counters["m:" + m.name + ".p99"] = m.p99;
    } else {
      if (m.value == 0) continue;  // keep the JSON readable
      state.counters["m:" + m.name] = m.value;
    }
  }
}

/// Media indexed by bench argument.
inline simnet::MediaModel media_by_index(int i) {
  switch (i) {
    case 0: return simnet::ethernet10();
    case 1: return simnet::ethernet100();
    case 2: return simnet::atm155();
    case 3: return simnet::myrinet();
    case 4: return simnet::wan_t3();
    default: return simnet::internet_lossy();
  }
}

inline const char* media_name(int i) {
  switch (i) {
    case 0: return "eth10";
    case 1: return "eth100";
    case 2: return "atm155";
    case 3: return "myrinet";
    case 4: return "wan_t3";
    default: return "internet";
  }
}

/// Two hosts joined by one network of the given media.
struct PairWorld {
  explicit PairWorld(simnet::MediaModel media, std::uint64_t seed = 1) : world(seed) {
    auto& net = world.create_network("net", std::move(media));
    world.attach(world.create_host("a"), net);
    world.attach(world.create_host("b"), net);
  }
  simnet::Host& a() { return *world.host("a"); }
  simnet::Host& b() { return *world.host("b"); }
  simnet::World world;
};

}  // namespace snipe::bench
