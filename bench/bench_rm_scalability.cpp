// T-scale: resource-management scalability (§2.2 vs §3.5).
//
// "PVM allows practical scalability to tens of hosts ... The PVM resource
//  manager uses centralized decision making.  This would be a bottleneck
//  for a very large virtual machine."  SNIPE's GRM was "modified to allow
//  for redundant resource management processes".
//
// The harness fires a burst of spawn requests at a pool of hosts managed
// by k resource managers (clients round-robin across them) and sweeps the
// host count.  Expected shape: a single RM's spawn throughput flattens as
// its request queue serializes (and its polling load grows with hosts),
// while 2–4 redundant RMs scale the burst throughput and keep placement
// balanced.  The k=0 column is the no-RM baseline (direct daemon spawns,
// perfect parallelism — PVM's "default built-in allocation" analogue).
#include <cmath>

#include "bench_util.hpp"
#include "daemon/daemon.hpp"
#include "rcds/server.hpp"
#include "rm/resource_manager.hpp"

namespace {

using namespace snipe;
using namespace snipe::bench;

/// A native program that runs forever (load generator).
daemon::TaskFactory forever_factory(simnet::Engine&) {
  return [](const daemon::SpawnRequest&,
            daemon::TaskHandle&) -> Result<std::unique_ptr<daemon::ManagedTask>> {
    class Forever final : public daemon::ManagedTask {
     public:
      void start() override {}
      void kill() override {}
    };
    return std::unique_ptr<daemon::ManagedTask>(new Forever());
  };
}

void BM_RmScalability(benchmark::State& state) {
  const int hosts = static_cast<int>(state.range(0));
  const int rms = static_cast<int>(state.range(1));
  const int spawns = hosts * 4;  // burst size scales with the pool

  double spawn_rate = 0, spread = 0;

  for (auto _ : state) {
    simnet::World world(3000 + static_cast<std::uint64_t>(hosts * 10 + rms));
    auto& lan = world.create_network("lan", simnet::ethernet100());
    auto& rc_host = world.create_host("rc");
    world.attach(rc_host, lan);
    rcds::RcServer rc(rc_host);

    std::vector<std::unique_ptr<daemon::SnipeDaemon>> daemons;
    for (int i = 0; i < hosts; ++i) {
      auto& h = world.create_host("n" + std::to_string(i));
      world.attach(h, lan);
      daemon::DaemonConfig cfg;
      cfg.playground.require_signature = false;
      daemons.push_back(std::make_unique<daemon::SnipeDaemon>(
          h, std::vector<simnet::Address>{rc.address()}, daemon::SnipeDaemon::kDefaultPort,
          cfg));
      daemons.back()->register_program("forever", forever_factory(world.engine()));
    }
    world.engine().run();

    Rng rng(99);
    std::vector<std::unique_ptr<rm::ResourceManager>> managers;
    for (int i = 0; i < rms; ++i) {
      auto& h = world.create_host("rm" + std::to_string(i));
      world.attach(h, lan);
      auto principal =
          crypto::Principal::create("urn:snipe:rm:grm" + std::to_string(i), rng, 256);
      managers.push_back(std::make_unique<rm::ResourceManager>(
          h, std::vector<simnet::Address>{rc.address()}, principal));
      for (int j = 0; j < hosts; ++j)
        managers.back()->manage_host("n" + std::to_string(j), daemons[j]->address());
    }
    world.engine().run_for(duration::seconds(5));  // facts + first polls

    auto& client_host = world.create_host("client");
    world.attach(client_host, lan);
    transport::RpcEndpoint client(client_host, 9000);

    int completed = 0;
    SimTime start = world.now();
    daemon::SpawnRequest req;
    req.program = "forever";
    for (int s = 0; s < spawns; ++s) {
      if (rms == 0) {
        // Baseline: direct round-robin daemon spawns, no management at all.
        client.call(daemons[s % hosts]->address(), daemon::tags::kSpawn, req.encode(),
                    [&](Result<Bytes> r) { completed += r.ok(); });
      } else {
        client.call(managers[s % rms]->address(), rm::tags::kAllocate, req.encode(),
                    [&](Result<Bytes> r) { completed += r.ok(); });
      }
    }
    world.engine().run();
    double secs = to_seconds(world.now() - start);
    spawn_rate = completed / secs;

    // Placement balance: stddev of tasks per host (lower = better).
    double mean = static_cast<double>(completed) / hosts;
    double var = 0;
    for (auto& d : daemons) {
      double diff = static_cast<double>(d->running_tasks()) - mean;
      var += diff * diff;
    }
    spread = hosts > 0 ? std::sqrt(var / hosts) : 0;
    if (completed != spawns) state.SkipWithError("spawns failed");
  }

  state.counters["sim_spawns_per_s"] = spawn_rate;
  state.counters["placement_stddev"] = spread;
  state.SetLabel(std::to_string(rms) + " RM(s), " + std::to_string(hosts) + " hosts");
}

void args(benchmark::internal::Benchmark* b) {
  for (std::int64_t hosts : {8, 32, 64})
    for (std::int64_t rms : {0, 1, 2, 4})
      b->Args({hosts, rms});
}

BENCHMARK(BM_RmScalability)->Apply(args)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
