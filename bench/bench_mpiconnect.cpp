// §6.1: PVMPI vs MPI_Connect point-to-point performance across MPPs.
//
// "Thus PVMPI was modified into MPI Connect, a new system based upon PVMPI
//  that used SNIPE for name resolution and across host communication
//  instead of utilizing PVM.  This system proved easier to maintain (no
//  virtual machine to disappear) and also offered a slightly higher
//  point-to-point communication performance."
//
// The harness runs the same cross-MPP ping-pong three ways — PVMPI (task ->
// pvmd -> pvmd -> task), MPI_Connect (direct over SNIPE), and native MPI
// inside one MPP (the upper bound) — sweeping message sizes.  Expected
// shape: MPI_Connect beats PVMPI at every size (it skips two pvmd hops and
// their store-and-forward serialization); both are far below intra-MPP
// native MPI, which never leaves the myrinet fabric.
#include "bench_util.hpp"
#include "mpi/bridge.hpp"
#include "rcds/server.hpp"

namespace {

using namespace snipe;
using namespace snipe::bench;
using namespace snipe::mpi;

struct TwoMpps {
  explicit TwoMpps(std::uint64_t seed) : world(seed) {
    world.create_network("wan", simnet::wan_t3());
    hosts_a = make_mpp("mppA", 2);
    hosts_b = make_mpp("mppB", 2);
    app_a = std::make_unique<MpiWorld>("appA", hosts_a);
    app_b = std::make_unique<MpiWorld>("appB", hosts_b);
  }

  std::vector<simnet::Host*> make_mpp(const std::string& name, int n) {
    auto& fabric = world.create_network(name + "-fabric", simnet::myrinet());
    std::vector<simnet::Host*> hosts;
    for (int i = 0; i < n; ++i) {
      auto& h = world.create_host(name + "-n" + std::to_string(i));
      world.attach(h, fabric);
      world.attach(h, *world.network("wan"));
      hosts.push_back(&h);
    }
    return hosts;
  }

  simnet::World world;
  std::vector<simnet::Host*> hosts_a, hosts_b;
  std::unique_ptr<MpiWorld> app_a, app_b;
};

constexpr int kRounds = 50;

/// Cross-MPP ping-pong through a bridge; returns seconds per round trip.
double bridge_ping_pong(TwoMpps& mpps, InterPort& a, InterPort& b, std::size_t size) {
  int rounds = 0;
  b.set_handler([&](InterMessage m) { b.send("appA", 0, 0, std::move(m.data)); });
  a.set_handler([&](InterMessage m) {
    if (++rounds < kRounds) a.send("appB", 0, 0, std::move(m.data));
  });
  SimTime start = mpps.world.now();
  a.send("appB", 0, 0, Bytes(size, 0x42));
  mpps.world.engine().run();
  if (rounds != kRounds) return -1;
  return to_seconds(mpps.world.now() - start) / kRounds;
}

void BM_InterMpi(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));  // 0 pvmpi, 1 mpi_connect, 2 native
  const std::size_t size = static_cast<std::size_t>(state.range(1));
  double per_round = -1;

  for (auto _ : state) {
    TwoMpps mpps(1234);
    if (mode == 0) {
      pvm::PvmDaemon master(*mpps.hosts_a[0]);
      pvm::PvmDaemon slave(*mpps.hosts_b[0], master.address());
      mpps.world.engine().run();
      PvmpiPort a(mpps.app_a->rank(0), "appA", master, [](Result<void>) {});
      PvmpiPort b(mpps.app_b->rank(0), "appB", slave, [](Result<void>) {});
      mpps.world.engine().run();
      per_round = bridge_ping_pong(mpps, a, b, size);
    } else if (mode == 1) {
      auto& rc_host = mpps.world.create_host("rc");
      mpps.world.attach(rc_host, *mpps.world.network("wan"));
      rcds::RcServer rc(rc_host);
      MpiConnectPort a(mpps.app_a->rank(0), "appA", {rc.address()}, [](Result<void>) {});
      MpiConnectPort b(mpps.app_b->rank(0), "appB", {rc.address()}, [](Result<void>) {});
      mpps.world.engine().run();
      per_round = bridge_ping_pong(mpps, a, b, size);
    } else {
      // Native intra-MPP ping-pong between ranks 0 and 1 of app A.
      int rounds = 0;
      auto& r0 = mpps.app_a->rank(0);
      auto& r1 = mpps.app_a->rank(1);
      std::function<void(MpiMessage)> at0 = [&](MpiMessage m) {
        if (++rounds < kRounds) {
          r0.send(1, 0, std::move(m.data));
          r0.recv(1, 0, at0);
        }
      };
      std::function<void(MpiMessage)> at1 = [&](MpiMessage m) {
        r1.send(0, 0, std::move(m.data));
        r1.recv(0, 0, at1);
      };
      r1.recv(0, 0, at1);
      r0.recv(1, 0, at0);
      SimTime start = mpps.world.now();
      r0.send(1, 0, Bytes(size, 0x42));
      mpps.world.engine().run();
      per_round = rounds == kRounds
                      ? to_seconds(mpps.world.now() - start) / kRounds
                      : -1;
    }
  }
  if (per_round <= 0) {
    state.SkipWithError("ping-pong incomplete");
    return;
  }
  state.counters["sim_rtt_ms"] = per_round * 1e3;
  state.counters["sim_MBps"] = 2.0 * size / per_round / 1e6;  // both directions
  static const char* names[] = {"PVMPI", "MPI_Connect", "native-MPI"};
  state.SetLabel(names[mode]);
}

void args(benchmark::internal::Benchmark* b) {
  for (int mode : {0, 1, 2})
    for (std::int64_t size : {1, 1024, 16384, 262144, 1048576})
      b->Args({mode, size});
}

BENCHMARK(BM_InterMpi)->Apply(args)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
