// T-spawn: the cost of each spawn path (§5.5, §4).
//
// A spawn can go (a) directly to the host daemon, (b) through a broker/RM
// in active mode, or (c) via a passive reservation followed by a client-
// side spawn; security adds the RM signature + daemon verification.
// Expected shape: direct < active-RM < passive (one extra round trip).
// The authorization variants confirm §4's design point that security adds
// *no additional network round trips* to the active path — the RM signs
// what it was already sending (crypto CPU cost is outside the virtual
// clock, so sim_ms isolates the protocol cost).
#include "bench_util.hpp"
#include "daemon/daemon.hpp"
#include "rcds/server.hpp"
#include "rm/resource_manager.hpp"

namespace {

using namespace snipe;
using namespace snipe::bench;

daemon::TaskFactory noop_factory() {
  return [](const daemon::SpawnRequest&,
            daemon::TaskHandle&) -> Result<std::unique_ptr<daemon::ManagedTask>> {
    class Noop final : public daemon::ManagedTask {
     public:
      void start() override {}
      void kill() override {}
    };
    return std::unique_ptr<daemon::ManagedTask>(new Noop());
  };
}

void BM_SpawnPath(benchmark::State& state) {
  const int path = static_cast<int>(state.range(0));  // 0 direct, 1 active, 2 passive
  const bool secure = state.range(1) != 0;
  const int spawns = 50;

  double per_spawn_ms = 0;

  for (auto _ : state) {
    reset_metrics();
    simnet::World world(8000);
    auto& lan = world.create_network("lan", simnet::ethernet100());
    for (const char* n : {"rc", "node", "rmhost", "client"})
      world.attach(world.create_host(n), lan);
    rcds::RcServer rc(*world.host("rc"));
    std::vector<simnet::Address> replicas = {rc.address()};

    Rng rng(8001);
    auto principal = crypto::Principal::create("urn:snipe:rm:grm", rng);
    daemon::DaemonConfig dcfg;
    dcfg.require_authorization = secure;
    dcfg.trust.trust(principal.uri, principal.keys.pub,
                     crypto::TrustPurpose::grant_resources);
    dcfg.playground.require_signature = false;
    dcfg.host_principal = std::make_shared<crypto::Principal>(
        crypto::Principal::create("snipe://node:7201/daemon", rng));
    daemon::SnipeDaemon d(*world.host("node"), replicas, daemon::SnipeDaemon::kDefaultPort,
                          dcfg);
    d.register_program("noop", noop_factory());
    rm::ResourceManager grm(*world.host("rmhost"), replicas, principal);
    grm.manage_host("node", d.address());
    world.engine().run_for(duration::seconds(5));
    if (path == 3) {
      // §4 session mode: one handshake, then sealed unsigned spawns.
      grm.establish_session("node", [](Result<void> r) { r.value(); });
      world.engine().run();
    }

    transport::RpcEndpoint client(*world.host("client"), 9000);
    int completed = 0;
    SimTime start = world.now();
    for (int s = 0; s < spawns; ++s) {
      daemon::SpawnRequest req;
      req.program = "noop";
      req.name = "t" + std::to_string(s);
      if (path == 0) {
        if (secure) req.authorization = grm.sign_authorization("noop", "node");
        client.call(d.address(), daemon::tags::kSpawn, req.encode(),
                    [&](Result<Bytes> r) { completed += r.ok(); });
      } else if (path == 1 || path == 3) {
        client.call(grm.address(), rm::tags::kAllocate, req.encode(),
                    [&](Result<Bytes> r) { completed += r.ok(); });
      } else {
        client.call(grm.address(), rm::tags::kReserve, req.encode(),
                    [&, req](Result<Bytes> r) mutable {
                      if (!r) return;
                      auto res = rm::Reservation::decode(r.value());
                      if (!res) return;
                      req.authorization = res.value().authorization;
                      client.call(res.value().daemon, daemon::tags::kSpawn, req.encode(),
                                  [&](Result<Bytes> r2) { completed += r2.ok(); });
                    });
      }
      world.engine().run();  // serialize: measure per-operation latency
    }
    double secs = to_seconds(world.now() - start);
    per_spawn_ms = secs / spawns * 1e3;
    if (completed != spawns) state.SkipWithError("spawns failed");
  }

  state.counters["sim_ms_per_spawn"] = per_spawn_ms;
  embed_metrics(state, "rm.");
  embed_metrics(state, "daemon.");
  static const char* names[] = {"direct-daemon", "RM-active", "RM-passive",
                                "RM-active+session"};
  state.SetLabel(std::string(names[path]) + (secure && path != 3 ? " +auth" : ""));
}

void args(benchmark::internal::Benchmark* b) {
  for (std::int64_t path : {0, 1, 2})
    for (std::int64_t secure : {0, 1}) b->Args({path, secure});
  b->Args({3, 1});  // §4 session mode (always "secure")
}

BENCHMARK(BM_SpawnPath)->Apply(args)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
