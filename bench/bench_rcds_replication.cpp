// T-mm: master-master vs single-master metadata replication (§7).
//
// "A major difference between MDS and SNIPE RC servers is MDS is based on
//  LDAP ... The RC servers are based on a true master-master update data
//  model and are inherently more scalable."
//
// The harness drives a mixed read/write workload from clients spread
// across the replicas, sweeping the replica count, in both modes:
// master-master (any replica accepts the write) and single-master (writes
// referred to replica 0, LDAP-style).  Expected shape: master-master write
// throughput grows with replicas (writes land locally) while single-master
// throughput stays flat-to-falling (every write funnels through one node
// and pays a referral round trip); read scaling is similar in both.
#include "bench_util.hpp"
#include "rcds/client.hpp"
#include "rcds/server.hpp"

namespace {

using namespace snipe;
using namespace snipe::bench;

void BM_RcdsReplication(benchmark::State& state) {
  const int replicas = static_cast<int>(state.range(0));
  const bool single_master = state.range(1) != 0;
  const int ops_per_client = 200;

  double write_rate = 0, read_rate = 0;

  for (auto _ : state) {
    reset_metrics();
    simnet::World world(5000 + static_cast<std::uint64_t>(replicas));
    auto& lan = world.create_network("lan", simnet::ethernet100());

    std::vector<std::unique_ptr<rcds::RcServer>> servers;
    std::vector<simnet::Address> addrs;
    for (int i = 0; i < replicas; ++i) {
      auto& h = world.create_host("rc" + std::to_string(i));
      world.attach(h, lan);
      rcds::RcServerConfig cfg;
      cfg.single_master = single_master;
      servers.push_back(
          std::make_unique<rcds::RcServer>(h, rcds::RcServer::kDefaultPort, cfg));
      addrs.push_back(servers.back()->address());
    }
    // In single-master mode peers.front() is the master by convention, so
    // every server lists the same ordered peer set.
    for (auto& s : servers) s->set_peers(addrs);

    // One client co-located per replica, preferring its local replica.
    struct Client {
      std::unique_ptr<transport::RpcEndpoint> rpc;
      std::unique_ptr<rcds::RcClient> rc;
    };
    std::vector<Client> clients;
    for (int i = 0; i < replicas; ++i) {
      auto& h = world.create_host("cl" + std::to_string(i));
      world.attach(h, lan);
      Client c;
      c.rpc = std::make_unique<transport::RpcEndpoint>(h, 9000);
      // Rotate the replica list so each client prefers a different server.
      std::vector<simnet::Address> order;
      for (int j = 0; j < replicas; ++j) order.push_back(addrs[(i + j) % replicas]);
      c.rc = std::make_unique<rcds::RcClient>(*c.rpc, order);
      clients.push_back(std::move(c));
    }

    // Write phase.
    int writes_done = 0;
    SimTime start = world.now();
    for (int i = 0; i < replicas; ++i) {
      for (int op = 0; op < ops_per_client; ++op) {
        clients[i].rc->set("urn:snipe:proc:p" + std::to_string(i * 1000 + op), "proc:state",
                           "running", [&](Result<void> r) { writes_done += r.ok(); });
      }
    }
    world.engine().run();
    double write_secs = to_seconds(world.now() - start);
    write_rate = writes_done / write_secs;

    // Read phase (read your own writes back).
    int reads_done = 0;
    start = world.now();
    for (int i = 0; i < replicas; ++i) {
      for (int op = 0; op < ops_per_client; ++op) {
        clients[i].rc->lookup("urn:snipe:proc:p" + std::to_string(i * 1000 + op),
                              "proc:state", [&](Result<std::vector<std::string>> r) {
                                reads_done += r.ok() && !r.value().empty();
                              });
      }
    }
    world.engine().run();
    double read_secs = to_seconds(world.now() - start);
    read_rate = reads_done / read_secs;

    if (writes_done != replicas * ops_per_client) state.SkipWithError("writes failed");
  }

  state.counters["sim_writes_per_s"] = write_rate;
  state.counters["sim_reads_per_s"] = read_rate;
  embed_metrics(state, "rcds.");
  state.SetLabel(std::string(single_master ? "single-master(LDAP-style)" : "master-master") +
                 ", " + std::to_string(replicas) + " replicas");
}

void args(benchmark::internal::Benchmark* b) {
  for (std::int64_t mode : {0, 1})
    for (std::int64_t replicas : {1, 2, 4, 8, 16})
      b->Args({replicas, mode});
}

BENCHMARK(BM_RcdsReplication)->Apply(args)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
