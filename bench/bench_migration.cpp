// T-migr: message continuity across process migration (§5.6).
//
// "Processes with open communications are guaranteed no loss of data while
//  migration is in progress."
//
// A producer streams sequenced messages at a fixed rate to a consumer that
// migrates to another host mid-stream.  The harness verifies zero loss and
// in-order delivery, and measures the disruption: the largest inter-arrival
// gap caused by the move and how long senders depend on the old
// incarnation's relay before re-resolution through RC takes over.
// Expected shape: loss = 0 always; the gap is bounded by a couple of
// delivery-timeout rounds; with the watcher on the notify list the gap
// shrinks further (the direct notice beats cache expiry).
#include "bench_util.hpp"
#include "core/process.hpp"
#include "rcds/server.hpp"

namespace {

using namespace snipe;
using namespace snipe::bench;

void BM_Migration(benchmark::State& state) {
  const bool use_notify_list = state.range(0) != 0;
  const int rate_hz = static_cast<int>(state.range(1));

  double max_gap_ms = 0, relayed = 0, re_resolutions = 0;
  int lost = -1, out_of_order = -1;

  for (auto _ : state) {
    simnet::World world(4001);
    auto& lan = world.create_network("lan", simnet::ethernet100());
    for (const char* n : {"rc", "src", "dst1", "dst2"})
      world.attach(world.create_host(n), lan);
    rcds::RcServer rc(*world.host("rc"));
    std::vector<simnet::Address> replicas = {rc.address()};

    core::SnipeProcess producer(*world.host("src"), "producer", replicas);
    core::SnipeProcess consumer(*world.host("dst1"), "consumer", replicas);
    if (use_notify_list) consumer.add_to_notify_list(producer.urn());
    world.engine().run();

    std::int64_t expected = 0;
    int ooo = 0;
    SimTime last_arrival = 0;
    SimDuration max_gap = 0;
    consumer.set_message_handler([&](const std::string&, std::uint32_t, Bytes body) {
      ByteReader r(body);
      std::int64_t seq = r.i64().value_or(-1);
      if (seq != expected) ++ooo;
      expected = seq + 1;
      if (last_arrival > 0) max_gap = std::max(max_gap, world.now() - last_arrival);
      last_arrival = world.now();
    });

    // Stream for 20 s; migrate at t = 10 s.
    const int total = rate_hz * 20;
    const SimDuration period = duration::seconds(1) / rate_hz;
    std::int64_t next_seq = 0;
    std::function<void()> produce = [&] {
      if (next_seq >= total) return;
      ByteWriter w;
      w.i64(next_seq++);
      producer.send(consumer.urn(), 1, std::move(w).take(), nullptr);
      world.engine().schedule(period, produce);
    };
    produce();
    world.engine().schedule(duration::seconds(10), [&] {
      consumer.migrate_to(*world.host("dst2"), nullptr);
    });
    world.engine().run();

    lost = static_cast<int>(total - expected);
    out_of_order = ooo;
    max_gap_ms = to_seconds(max_gap) * 1e3;
    relayed = static_cast<double>(consumer.stats().relayed);
    re_resolutions = static_cast<double>(producer.stats().re_resolutions);
    if (lost != 0 || out_of_order != 0) state.SkipWithError("data loss during migration");
  }

  state.counters["lost_msgs"] = lost;
  state.counters["out_of_order"] = out_of_order;
  state.counters["max_gap_ms"] = max_gap_ms;
  state.counters["relayed_msgs"] = relayed;
  state.counters["re_resolutions"] = re_resolutions;
  state.SetLabel(std::string(use_notify_list ? "with" : "without") + " notify-list, " +
                 std::to_string(rate_hz) + " msg/s");
}

void args(benchmark::internal::Benchmark* b) {
  for (std::int64_t notify : {0, 1})
    for (std::int64_t rate : {10, 100, 1000})
      b->Args({notify, rate});
}

BENCHMARK(BM_Migration)->Apply(args)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
