// T-incast: N-to-1 fan-in across an oversubscribed fat-tree (EXPERIMENTS.md
// §T-incast).
//
// N senders spread over the non-receiver racks all push SRUDP traffic at a
// single host in rack 0.  The cluster is deliberately oversubscribed: rack
// segments are 100 Mb Ethernet but every ToR<->spine uplink is 10 Mb, so
// however many senders join, aggregate goodput into rack 0 is capped by
// the spine-side uplinks (spines x 10 Mb), not by the receiver's segment.
// ECMP spreads distinct (src, dst) pairs across spines, so the fan-in
// saturates both planes.  The harness *enforces* the cap — goodput above
// the bottleneck's raw bit rate means the contention model leaked — and
// reports goodput alongside it so the baseline diff shows both.
//
// Metrics are virtual-time: sim_MBps is payload goodput at the receiver.
#include "bench_util.hpp"
#include "simnet/topo.hpp"
#include "transport/srudp.hpp"

namespace {

using namespace snipe;
using namespace snipe::bench;

constexpr std::size_t kMsgBytes = 16384;
constexpr int kMsgsPerSender = 32;  // 512 KiB per sender

void BM_Incast(benchmark::State& state) {
  const int fanin = static_cast<int>(state.range(0));
  double secs = 0;
  double bottleneck_bps = 0;
  for (auto _ : state) {
    reset_metrics();
    simnet::World world(42);
    simnet::FatTreeOptions opt;
    opt.racks = 5;
    opt.hosts_per_rack = 4;
    opt.spines = 2;
    opt.rack_media = simnet::ethernet100();
    opt.uplink_media = simnet::ethernet10();  // 2 x 10 Mb up vs 100 Mb racks
    simnet::build_fat_tree(world, "dc", opt);
    // Everything bound for rack 0 funnels through the spine->ToR0 uplinks;
    // the receiver's shared segment (100 Mb) never binds first.
    bottleneck_bps = static_cast<double>(opt.spines) * opt.uplink_media.bandwidth_bps;

    transport::SrudpEndpoint rx(*world.host("dc/h0_0"), 7000);
    int delivered = 0;
    rx.set_handler([&](const simnet::Address&, Payload) { ++delivered; });

    // Senders fill racks 1..4 in order: fanin 4 exercises one remote rack,
    // fanin 16 all four (and both spine planes via ECMP).
    std::vector<std::unique_ptr<transport::SrudpEndpoint>> senders;
    for (int n = 0; n < fanin; ++n) {
      std::size_t rack = 1 + static_cast<std::size_t>(n) / opt.hosts_per_rack;
      std::size_t slot = static_cast<std::size_t>(n) % opt.hosts_per_rack;
      simnet::Host* h = world.host("dc/h" + std::to_string(rack) + "_" +
                                   std::to_string(slot));
      senders.push_back(std::make_unique<transport::SrudpEndpoint>(*h, 7001));
    }

    SimTime start = world.now();
    for (auto& tx : senders)
      for (int i = 0; i < kMsgsPerSender; ++i)
        tx->send(rx.address(), Bytes(kMsgBytes, 0x5a));
    world.engine().run();
    secs = to_seconds(world.now() - start);
    if (delivered != fanin * kMsgsPerSender) {
      state.SkipWithError("incast incomplete");
      return;
    }
  }
  double bytes = static_cast<double>(kMsgBytes) * kMsgsPerSender * fanin;
  double goodput_bps = bytes * 8 / secs;
  if (goodput_bps > bottleneck_bps) {
    state.SkipWithError("goodput exceeds the bottleneck uplinks — contention leak");
    return;
  }
  state.counters["sim_MBps"] = bytes / secs / 1e6;
  state.counters["bottleneck_MBps"] = bottleneck_bps / 8 / 1e6;
  state.counters["fanin"] = fanin;
  embed_metrics(state, "srudp.");
  state.SetLabel("fat-tree 4+1 racks, 2 spines, 10Mb uplinks");
}

BENCHMARK(BM_Incast)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
