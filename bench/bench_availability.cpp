// T-avail: metadata availability under host churn (§6).
//
// "SNIPE testbeds have been running at the University of Tennessee since
//  autumn 1997 and due to replication have maintained an almost perfect
//  level of availability."
//
// The harness subjects an RC registry of 1..5 replicas to crash/restart
// churn (exponential MTBF/MTTR per replica host) while a client performs
// periodic lookups with replica failover.  Expected shape: availability
// climbs steeply with replication — a single server tracks its own uptime
// (~MTBF/(MTBF+MTTR)), while three replicas are already "almost perfect".
#include "bench_util.hpp"
#include "rcds/client.hpp"
#include "rcds/server.hpp"

namespace {

using namespace snipe;
using namespace snipe::bench;

void BM_Availability(benchmark::State& state) {
  const int replicas = static_cast<int>(state.range(0));
  const double mtbf_s = static_cast<double>(state.range(1));
  const double mttr_s = mtbf_s / 10.0;

  double availability = 0;
  std::uint64_t failovers = 0;

  for (auto _ : state) {
    simnet::World world(2000 + static_cast<std::uint64_t>(replicas));
    auto& lan = world.create_network("lan", simnet::ethernet100());
    std::vector<std::unique_ptr<rcds::RcServer>> servers;
    std::vector<simnet::Address> addrs;
    for (int i = 0; i < replicas; ++i) {
      auto& h = world.create_host("rc" + std::to_string(i));
      world.attach(h, lan);
      rcds::RcServerConfig cfg;
      cfg.anti_entropy_period = duration::seconds(5);
      servers.push_back(std::make_unique<rcds::RcServer>(h, rcds::RcServer::kDefaultPort, cfg));
      addrs.push_back(servers.back()->address());
    }
    for (int i = 0; i < replicas; ++i) {
      std::vector<simnet::Address> peers;
      for (int j = 0; j < replicas; ++j)
        if (j != i) peers.push_back(addrs[j]);
      servers[i]->set_peers(peers);
    }
    auto& client_host = world.create_host("client");
    world.attach(client_host, lan);
    transport::RpcEndpoint rpc(client_host, 9000);
    rcds::RcClientConfig ccfg;
    ccfg.try_timeout = duration::milliseconds(300);
    rcds::RcClient client(rpc, addrs, ccfg);

    // Seed a record, then churn + lookup for 20 simulated minutes.
    client.set("urn:snipe:proc:target", "proc:state", "running", [](Result<void>) {});
    world.engine().run();

    // Churn: per-host independent fail/repair processes.
    Rng churn(4242 + static_cast<std::uint64_t>(replicas));
    struct Churner {
      static void schedule_failure(simnet::World& world, const std::string& host, Rng& rng,
                                   double mtbf_s, double mttr_s) {
        SimDuration up = from_seconds(rng.next_exponential(mtbf_s));
        world.engine().schedule_weak(up, [&world, host, &rng, mtbf_s, mttr_s] {
          world.host(host)->set_up(false);
          SimDuration down = from_seconds(rng.next_exponential(mttr_s));
          world.engine().schedule_weak(down, [&world, host, &rng, mtbf_s, mttr_s] {
            world.host(host)->set_up(true);
            schedule_failure(world, host, rng, mtbf_s, mttr_s);
          });
        });
      }
    };
    for (int i = 0; i < replicas; ++i)
      Churner::schedule_failure(world, "rc" + std::to_string(i), churn, mtbf_s, mttr_s);

    // Periodic lookups.
    int attempts = 0, successes = 0;
    const SimDuration horizon = duration::minutes(20);
    std::function<void()> probe = [&] {
      if (world.now() >= horizon) return;
      ++attempts;
      client.lookup("urn:snipe:proc:target", "proc:state",
                    [&](Result<std::vector<std::string>> r) {
                      if (r.ok() && !r.value().empty()) ++successes;
                    });
      world.engine().schedule_weak(duration::seconds(2), probe);
    };
    probe();
    world.engine().run_until(horizon);
    world.engine().run();  // drain in-flight lookups

    availability = attempts > 0 ? static_cast<double>(successes) / attempts : 0;
    failovers = client.stats().failovers;
  }

  state.counters["availability_pct"] = availability * 100.0;
  state.counters["failovers"] = static_cast<double>(failovers);
  state.SetLabel(std::to_string(replicas) + " replicas, MTBF " +
                 std::to_string(static_cast<int>(mtbf_s)) + "s");
}

void args(benchmark::internal::Benchmark* b) {
  for (std::int64_t replicas : {1, 2, 3, 5})
    for (std::int64_t mtbf : {60, 300})
      b->Args({replicas, mtbf});
}

BENCHMARK(BM_Availability)->Apply(args)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
