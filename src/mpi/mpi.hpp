// A miniature MPI implementation ("vendor MPI" stand-in for §6.1).
//
// PVMPI/MPI_Connect bridge *between* vendor MPI implementations running on
// different MPPs.  To reproduce that experiment we need an MPI to bridge:
// MpiWorld models one MPP's MPI_COMM_WORLD — one rank per host on the
// machine's internal interconnect (typically a myrinet-class network), with
// tag/source matching, wildcard receives, and the collectives the examples
// use.  Message transport is SRUDP on the internal network, standing in
// for the vendor's optimized transport.
//
// The API is callback-based (this is a discrete-event simulation): recv
// posts a request that completes when a matching message arrives.
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "transport/srudp.hpp"

namespace snipe::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

class MpiWorld;

struct MpiMessage {
  int source = 0;
  int tag = 0;
  Bytes data;
};

/// One rank of an MpiWorld.
class MpiRank {
 public:
  using RecvHandler = std::function<void(MpiMessage)>;
  using DoneHandler = std::function<void()>;

  int rank() const { return rank_; }
  int size() const;

  /// Eager reliable send (buffered by the transport; no rendezvous).
  void send(int dst, int tag, Bytes data);

  /// Posts a one-shot receive; completes when a message matching (src,
  /// tag) arrives (wildcards: kAnySource / kAnyTag).  Unexpected messages
  /// queue until matched, MPI-style.
  void recv(int src, int tag, RecvHandler handler);

  /// Linear-tree collectives, enough for the §6.1 workloads.
  void barrier(DoneHandler done);
  void bcast(int root, Bytes data, RecvHandler done);
  /// Sum-reduction of one i64 to root (handler fires at root only).
  void allreduce_sum(std::int64_t value, std::function<void(std::int64_t)> done);
  /// Gathers every rank's contribution at `root`; the handler fires at the
  /// root only, with contributions indexed by rank.
  void gather(int root, Bytes contribution,
              std::function<void(std::vector<Bytes>)> done);
  /// Scatters `pieces[r]` (root only) to each rank r; the handler fires at
  /// every rank with its piece.
  void scatter(int root, std::vector<Bytes> pieces,
               std::function<void(Bytes)> done);

  /// The simnet address of this rank's endpoint (used by the bridges).
  simnet::Address address() const { return endpoint_->address(); }
  transport::SrudpEndpoint& endpoint() { return *endpoint_; }
  MpiWorld& world() { return *world_; }

 private:
  friend class MpiWorld;
  struct PostedRecv {
    int src;
    int tag;
    RecvHandler handler;
  };

  MpiRank(MpiWorld* world, int rank, simnet::Host& host);
  void on_message(const simnet::Address& from, Payload wire);
  bool matches(const PostedRecv& posted, const MpiMessage& msg) const {
    return (posted.src == kAnySource || posted.src == msg.source) &&
           (posted.tag == kAnyTag || posted.tag == msg.tag);
  }

  MpiWorld* world_;
  int rank_;
  std::unique_ptr<transport::SrudpEndpoint> endpoint_;
  std::deque<MpiMessage> unexpected_;
  std::deque<PostedRecv> posted_;
  // collective state
  int barrier_arrivals_ = 0;
  std::vector<DoneHandler> barrier_waiters_;
  std::int64_t reduce_acc_ = 0;
  int reduce_arrivals_ = 0;
  std::vector<Bytes> gather_parts_;
  int gather_arrivals_ = 0;
};

/// One MPP's MPI_COMM_WORLD.
class MpiWorld {
 public:
  /// `hosts`: one rank is created per host (they should share the MPP's
  /// internal network).  `name` is the application name used by bridges.
  MpiWorld(std::string name, const std::vector<simnet::Host*>& hosts);

  const std::string& name() const { return name_; }
  int size() const { return static_cast<int>(ranks_.size()); }
  MpiRank& rank(int r) { return *ranks_.at(static_cast<std::size_t>(r)); }
  simnet::Engine& engine() { return *engine_; }

 private:
  friend class MpiRank;
  std::string name_;
  simnet::Engine* engine_;
  std::vector<std::unique_ptr<MpiRank>> ranks_;
};

}  // namespace snipe::mpi
