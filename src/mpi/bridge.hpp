// PVMPI and MPI_Connect: inter-MPI bridging (§6.1).
//
// Both bridges let rank r of MPI application A exchange tagged messages
// with rank s of application B running on a different MPP, using each
// machine's native MPI internally.  They differ in the substrate:
//
//   * PvmpiPort (PVMPI): each rank enrolls a PVM task with the local pvmd;
//     names resolve through the master pvmd; every message takes the
//     default PVM route, task -> local pvmd -> remote pvmd -> task.  This
//     is the system that "suffered from the need to provide access to a
//     PVM daemon pvmd at all times".
//
//   * MpiConnectPort (MPI_Connect): names resolve through the SNIPE RC
//     registry and messages travel *directly* between the ranks' endpoints
//     over SRUDP — "used SNIPE for name resolution and across host
//     communication instead of utilizing PVM ... no virtual machine to
//     disappear ... slightly higher point-to-point communication
//     performance".
//
// bench_mpiconnect quantifies the difference; both ports share InterPort.
#pragma once

#include "mpi/mpi.hpp"
#include "mpi/pvm.hpp"
#include "rcds/client.hpp"

namespace snipe::mpi {

/// A message from another MPI application.
struct InterMessage {
  std::string src_app;
  int src_rank = 0;
  int tag = 0;
  Bytes data;

  Bytes encode() const;
  static Result<InterMessage> decode(const Bytes& wire);
};

/// Common API of the two bridge implementations.
class InterPort {
 public:
  using Handler = std::function<void(InterMessage)>;
  virtual ~InterPort() = default;
  virtual void send(const std::string& remote_app, int remote_rank, int tag, Bytes data) = 0;
  void set_handler(Handler handler) { handler_ = std::move(handler); }

 protected:
  Handler handler_;
};

/// PVMPI: bridge through PVM-lite.
class PvmpiPort final : public InterPort {
 public:
  /// `daemon` must be the pvmd on this rank's host.  `ready` fires once
  /// the PVM enrollment and name registration complete.
  PvmpiPort(MpiRank& rank, const std::string& app_name, pvm::PvmDaemon& daemon,
            std::function<void(Result<void>)> ready);

  void send(const std::string& remote_app, int remote_rank, int tag, Bytes data) override;

 private:
  static std::string port_name(const std::string& app, int rank) {
    return app + "#" + std::to_string(rank);
  }

  MpiRank& rank_;
  std::string app_name_;
  std::unique_ptr<pvm::PvmTask> task_;
  std::map<std::string, int> tid_cache_;
  std::vector<std::pair<std::string, Bytes>> backlog_;  ///< pre-enrollment sends
  bool enrolled_ = false;
  Logger log_;
};

/// MPI_Connect: bridge through SNIPE.
class MpiConnectPort final : public InterPort {
 public:
  MpiConnectPort(MpiRank& rank, const std::string& app_name,
                 std::vector<simnet::Address> rc_replicas,
                 std::function<void(Result<void>)> ready);

  void send(const std::string& remote_app, int remote_rank, int tag, Bytes data) override;

 private:
  static std::string port_urn(const std::string& app, int rank) {
    return "urn:snipe:proc:mpi-" + app + "-" + std::to_string(rank);
  }
  void resolve(const std::string& urn, std::function<void(Result<simnet::Address>)> done);

  MpiRank& rank_;
  std::string app_name_;
  std::unique_ptr<transport::RpcEndpoint> rpc_;
  std::unique_ptr<rcds::RcClient> rc_;
  std::map<std::string, simnet::Address> address_cache_;
  Logger log_;
};

}  // namespace snipe::mpi
