#include "mpi/bridge.hpp"

#include "util/uri.hpp"

namespace snipe::mpi {

namespace {
constexpr std::uint32_t kInterTag = 170;  ///< MPI_Connect direct delivery
}

Bytes InterMessage::encode() const {
  ByteWriter w;
  w.str(src_app);
  w.i32(src_rank);
  w.i32(tag);
  w.blob(data);
  return std::move(w).take();
}

Result<InterMessage> InterMessage::decode(const Bytes& wire) {
  ByteReader r(wire);
  InterMessage m;
  auto app = r.str();
  if (!app) return app.error();
  m.src_app = app.value();
  auto rank = r.i32();
  if (!rank) return rank.error();
  m.src_rank = rank.value();
  auto tag = r.i32();
  if (!tag) return tag.error();
  m.tag = tag.value();
  auto data = r.blob();
  if (!data) return data.error();
  m.data = std::move(data).take();
  return m;
}

// ---------- PVMPI ----------

PvmpiPort::PvmpiPort(MpiRank& rank, const std::string& app_name, pvm::PvmDaemon& daemon,
                     std::function<void(Result<void>)> ready)
    : rank_(rank),
      app_name_(app_name),
      log_("pvmpi@" + app_name + "#" + std::to_string(rank.rank())) {
  task_ = std::make_unique<pvm::PvmTask>(
      // The PVM task lives on the same host as the MPI rank.
      *rank.endpoint().host().world()->host(rank.address().host), daemon,
      [this, ready = std::move(ready)](Result<int> tid) {
        if (!tid) {
          ready(tid.error());
          return;
        }
        task_->set_handler([this](int, int, Bytes data) {
          auto msg = InterMessage::decode(data);
          if (msg && handler_) handler_(std::move(msg).take());
        });
        task_->register_name(port_name(app_name_, rank_.rank()),
                             [this, ready = std::move(ready)](Result<void> r) {
                               enrolled_ = r.ok();
                               auto backlog = std::move(backlog_);
                               backlog_.clear();
                               for (auto& [name, wire] : backlog) {
                                 // Re-issue sends queued before enrollment.
                                 task_->lookup(name, [this, wire = wire](Result<int> tid) {
                                   if (tid) task_->send(tid.value(), 0, wire);
                                 });
                               }
                               ready(r);
                             });
      });
}

void PvmpiPort::send(const std::string& remote_app, int remote_rank, int tag, Bytes data) {
  InterMessage msg{app_name_, rank_.rank(), tag, std::move(data)};
  Bytes wire = msg.encode();
  std::string name = port_name(remote_app, remote_rank);
  if (!enrolled_) {
    backlog_.emplace_back(name, std::move(wire));
    return;
  }
  auto it = tid_cache_.find(name);
  if (it != tid_cache_.end()) {
    task_->send(it->second, 0, std::move(wire));
    return;
  }
  task_->lookup(name, [this, name, wire = std::move(wire)](Result<int> tid) mutable {
    if (!tid) {
      log_.warn("lookup of ", name, " failed: ", tid.error().to_string());
      return;
    }
    tid_cache_[name] = tid.value();
    task_->send(tid.value(), 0, std::move(wire));
  });
}

// ---------- MPI_Connect ----------

MpiConnectPort::MpiConnectPort(MpiRank& rank, const std::string& app_name,
                               std::vector<simnet::Address> rc_replicas,
                               std::function<void(Result<void>)> ready)
    : rank_(rank),
      app_name_(app_name),
      log_("mpiconnect@" + app_name + "#" + std::to_string(rank.rank())) {
  simnet::Host* host = rank.endpoint().host().world()->host(rank.address().host);
  rpc_ = std::make_unique<transport::RpcEndpoint>(*host, 0);
  rc_ = std::make_unique<rcds::RcClient>(*rpc_, std::move(rc_replicas));
  rpc_->on_notify(kInterTag, [this](const simnet::Address&, const Bytes& body) {
    auto msg = InterMessage::decode(body);
    if (msg && handler_) handler_(std::move(msg).take());
  });
  // Register our endpoint under the port URN in the SNIPE registry: global
  // names with no virtual machine required.
  rc_->set(port_urn(app_name, rank.rank()), rcds::names::kProcAddress,
           "snipe://" + rpc_->address().host + ":" + std::to_string(rpc_->address().port) +
               "/mpi",
           [ready = std::move(ready)](Result<void> r) { ready(r); });
}

void MpiConnectPort::resolve(const std::string& urn,
                             std::function<void(Result<simnet::Address>)> done) {
  auto it = address_cache_.find(urn);
  if (it != address_cache_.end()) {
    done(it->second);
    return;
  }
  rc_->lookup(urn, rcds::names::kProcAddress,
              [this, urn, done = std::move(done)](Result<std::vector<std::string>> r) {
                if (!r) {
                  done(r.error());
                  return;
                }
                if (r.value().empty()) {
                  done(Result<simnet::Address>(Errc::not_found, urn));
                  return;
                }
                auto uri = snipe::parse_uri(r.value().front());
                if (!uri) {
                  done(uri.error());
                  return;
                }
                simnet::Address addr{uri.value().host,
                                     static_cast<std::uint16_t>(uri.value().port)};
                address_cache_[urn] = addr;
                done(addr);
              });
}

void MpiConnectPort::send(const std::string& remote_app, int remote_rank, int tag,
                          Bytes data) {
  InterMessage msg{app_name_, rank_.rank(), tag, std::move(data)};
  Bytes wire = msg.encode();
  resolve(port_urn(remote_app, remote_rank),
          [this, wire = std::move(wire)](Result<simnet::Address> addr) {
            if (!addr) {
              log_.warn("resolve failed: ", addr.error().to_string());
              return;
            }
            // Direct task-to-task delivery over SRUDP: no pvmd hops.
            rpc_->notify(addr.value(), kInterTag, wire);
          });
}

}  // namespace snipe::mpi
