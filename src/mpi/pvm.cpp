#include "mpi/pvm.hpp"

namespace snipe::pvm {

Bytes PvmEnvelope::encode() const {
  ByteWriter w;
  w.i32(src_tid);
  w.i32(dst_tid);
  w.i32(tag);
  w.blob(data);
  return std::move(w).take();
}

Result<PvmEnvelope> PvmEnvelope::decode(const Bytes& wire) {
  ByteReader r(wire);
  PvmEnvelope env;
  auto src = r.i32();
  if (!src) return src.error();
  env.src_tid = src.value();
  auto dst = r.i32();
  if (!dst) return dst.error();
  env.dst_tid = dst.value();
  auto tag = r.i32();
  if (!tag) return tag.error();
  env.tag = tag.value();
  auto data = r.blob();
  if (!data) return data.error();
  env.data = std::move(data).take();
  return env;
}

PvmDaemon::PvmDaemon(simnet::Host& host, std::uint16_t port)
    : rpc_(host, port, {}),
      engine_(host.engine()),
      index_(0),
      log_("pvmd-master@" + host.name()) {
  daemon_table_[0] = address();
  serve();
}

PvmDaemon::PvmDaemon(simnet::Host& host, const simnet::Address& master, std::uint16_t port)
    : rpc_(host, port, {}),
      engine_(host.engine()),
      master_(std::make_unique<simnet::Address>(master)),
      log_("pvmd@" + host.name()) {
  serve();
  ByteWriter w;
  w.str(address().host);
  w.u16(address().port);
  rpc_.call(master, tags::kDaemonJoin, std::move(w).take(), [this](Result<Bytes> r) {
    if (!r) {
      log_.error("failed to join virtual machine: ", r.error().to_string());
      return;
    }
    ByteReader reader(r.value());
    auto index = reader.i32();
    if (index) index_ = index.value();
    log_.debug("joined as daemon ", index_);
  });
}

void PvmDaemon::serve() {
  rpc_.serve(tags::kDaemonJoin,
             [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
               if (!is_master()) return Result<Bytes>(Errc::state_error, "not the master");
               ByteReader r(body);
               auto host = r.str();
               auto port = r.u16();
               if (!host || !port) return Error{Errc::corrupt, "bad join"};
               int index = next_daemon_index_++;
               daemon_table_[index] = simnet::Address{host.value(), port.value()};
               ByteWriter w;
               w.i32(index);
               return std::move(w).take();
             });

  rpc_.serve(tags::kEnroll,
             [this](const simnet::Address& from, const Bytes& body) -> Result<Bytes> {
               ByteReader r(body);
               auto port = r.u16();
               if (!port) return port.error();
               if (index_ < 0) return Result<Bytes>(Errc::state_error, "pvmd not joined yet");
               int tid = (index_ << 16) | next_local_++;
               local_tasks_[tid] = simnet::Address{from.host, port.value()};
               ByteWriter w;
               w.i32(tid);
               return std::move(w).take();
             });

  rpc_.serve(tags::kRegister,
             [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
               if (!is_master())
                 return Result<Bytes>(Errc::state_error, "names live on the master pvmd");
               ByteReader r(body);
               auto name = r.str();
               auto tid = r.i32();
               if (!name || !tid) return Error{Errc::corrupt, "bad register"};
               names_[name.value()] = tid.value();
               ++stats_.names_registered;
               return Bytes{};
             });

  rpc_.serve(tags::kLookup,
             [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
               if (!is_master())
                 return Result<Bytes>(Errc::state_error, "names live on the master pvmd");
               ByteReader r(body);
               auto name = r.str();
               if (!name) return name.error();
               ++stats_.lookups;
               auto it = names_.find(name.value());
               if (it == names_.end()) return Result<Bytes>(Errc::not_found, name.value());
               ByteWriter w;
               w.i32(it->second);
               return std::move(w).take();
             });

  rpc_.serve(tags::kDaemonAddr,
             [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
               if (!is_master()) return Result<Bytes>(Errc::state_error, "not the master");
               ByteReader r(body);
               auto index = r.i32();
               if (!index) return index.error();
               auto it = daemon_table_.find(index.value());
               if (it == daemon_table_.end())
                 return Result<Bytes>(Errc::not_found, "no such daemon");
               ByteWriter w;
               w.str(it->second.host);
               w.u16(it->second.port);
               return std::move(w).take();
             });

  rpc_.on_notify(tags::kRoute,
                 [this](const simnet::Address&, const Bytes& body) { route(body); });
}

void PvmDaemon::resolve_daemon(int index, std::function<void(Result<simnet::Address>)> done) {
  auto it = daemon_table_.find(index);
  if (it != daemon_table_.end()) {
    done(it->second);
    return;
  }
  if (is_master()) {
    done(Result<simnet::Address>(Errc::not_found, "unknown daemon index"));
    return;
  }
  ByteWriter w;
  w.i32(index);
  rpc_.call(*master_, tags::kDaemonAddr, std::move(w).take(),
            [this, index, done = std::move(done)](Result<Bytes> r) {
              if (!r) {
                done(r.error());
                return;
              }
              ByteReader reader(r.value());
              auto host = reader.str();
              auto port = reader.u16();
              if (!host || !port) {
                done(Error{Errc::corrupt, "bad daemon address"});
                return;
              }
              simnet::Address addr{host.value(), port.value()};
              daemon_table_[index] = addr;
              done(addr);
            });
}

void PvmDaemon::route(const Bytes& wire) {
  auto env = PvmEnvelope::decode(wire);
  if (!env) return;
  ++stats_.routed;
  int dst_daemon = env.value().dst_tid >> 16;
  if (dst_daemon == index_) {
    deliver_local(env.value().dst_tid, wire);
    return;
  }
  resolve_daemon(dst_daemon, [this, wire](Result<simnet::Address> addr) {
    if (!addr) {
      log_.warn("cannot route: ", addr.error().to_string());
      return;
    }
    rpc_.notify(addr.value(), tags::kRoute, wire);
  });
}

void PvmDaemon::deliver_local(int tid, const Bytes& wire) {
  auto it = local_tasks_.find(tid);
  if (it == local_tasks_.end()) {
    log_.warn("no local task ", tid);
    return;
  }
  rpc_.notify(it->second, tags::kRoute, wire);
}

PvmTask::PvmTask(simnet::Host& host, PvmDaemon& local_daemon,
                 std::function<void(Result<int>)> ready)
    : rpc_(host, 0, {}), daemon_(local_daemon), log_("pvmtask@" + host.name()) {
  rpc_.on_notify(tags::kRoute, [this](const simnet::Address&, const Bytes& body) {
    auto env = PvmEnvelope::decode(body);
    if (!env) return;
    if (handler_)
      handler_(env.value().src_tid, env.value().tag, std::move(env.value().data));
  });
  ByteWriter w;
  w.u16(rpc_.address().port);
  rpc_.call(daemon_.address(), tags::kEnroll, std::move(w).take(),
            [this, ready = std::move(ready)](Result<Bytes> r) {
              if (!r) {
                ready(r.error());
                return;
              }
              ByteReader reader(r.value());
              auto tid = reader.i32();
              if (!tid) {
                ready(tid.error());
                return;
              }
              tid_ = tid.value();
              ready(tid_);
            });
}

void PvmTask::send(int dst_tid, int tag, Bytes data) {
  // Default PVM route: every message goes through the local pvmd.
  PvmEnvelope env{tid_, dst_tid, tag, std::move(data)};
  rpc_.notify(daemon_.address(), tags::kRoute, env.encode());
}

void PvmTask::register_name(const std::string& name, std::function<void(Result<void>)> done) {
  // Registration always targets the master pvmd ("global registration of
  // well-known services", §2.2) — routed via our daemon's knowledge of it.
  simnet::Address master =
      daemon_.is_master() ? daemon_.address() : *daemon_.master_;
  ByteWriter w;
  w.str(name);
  w.i32(tid_);
  rpc_.call(master, tags::kRegister, std::move(w).take(),
            [done = std::move(done)](Result<Bytes> r) {
              if (!r)
                done(r.error());
              else
                done(ok_result());
            });
}

void PvmTask::lookup(const std::string& name, std::function<void(Result<int>)> done) {
  simnet::Address master =
      daemon_.is_master() ? daemon_.address() : *daemon_.master_;
  ByteWriter w;
  w.str(name);
  rpc_.call(master, tags::kLookup, std::move(w).take(),
            [done = std::move(done)](Result<Bytes> r) {
              if (!r) {
                done(r.error());
                return;
              }
              ByteReader reader(r.value());
              auto tid = reader.i32();
              if (!tid) {
                done(tid.error());
                return;
              }
              done(tid.value());
            });
}

}  // namespace snipe::pvm
