#include "mpi/mpi.hpp"

#include <cassert>

namespace snipe::mpi {

namespace {
constexpr std::uint16_t kRankPortBase = 6000;

Bytes encode_msg(int source, int tag, const Bytes& data) {
  ByteWriter w;
  w.i32(source);
  w.i32(tag);
  w.blob(data);
  return std::move(w).take();
}
}  // namespace

MpiWorld::MpiWorld(std::string name, const std::vector<simnet::Host*>& hosts)
    : name_(std::move(name)) {
  assert(!hosts.empty());
  engine_ = &hosts.front()->engine();
  for (std::size_t i = 0; i < hosts.size(); ++i)
    ranks_.emplace_back(new MpiRank(this, static_cast<int>(i), *hosts[i]));
}

MpiRank::MpiRank(MpiWorld* world, int rank, simnet::Host& host) : world_(world), rank_(rank) {
  endpoint_ = std::make_unique<transport::SrudpEndpoint>(
      host, static_cast<std::uint16_t>(kRankPortBase + rank));
  endpoint_->set_handler([this](const simnet::Address& from, Payload wire) {
    on_message(from, std::move(wire));
  });
}

int MpiRank::size() const { return world_->size(); }

void MpiRank::send(int dst, int tag, Bytes data) {
  assert(dst >= 0 && dst < size());
  endpoint_->send(world_->rank(dst).address(), encode_msg(rank_, tag, data));
}

void MpiRank::on_message(const simnet::Address&, Payload wire) {
  ByteReader r(wire.data(), wire.size());
  auto source = r.i32();
  auto tag = r.i32();
  auto data = r.blob();
  if (!source || !tag || !data) return;
  MpiMessage msg{source.value(), tag.value(), std::move(data).take()};

  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (matches(*it, msg)) {
      auto handler = std::move(it->handler);
      posted_.erase(it);
      handler(std::move(msg));
      return;
    }
  }
  unexpected_.push_back(std::move(msg));
}

void MpiRank::recv(int src, int tag, RecvHandler handler) {
  PostedRecv posted{src, tag, std::move(handler)};
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (matches(posted, *it)) {
      MpiMessage msg = std::move(*it);
      unexpected_.erase(it);
      posted.handler(std::move(msg));
      return;
    }
  }
  posted_.push_back(std::move(posted));
}

namespace {
/// Internal collective tags, outside the user range by convention.
constexpr int kBarrierTag = -1000;
constexpr int kBarrierReleaseTag = -1001;
constexpr int kBcastTag = -1002;
constexpr int kReduceTag = -1003;
constexpr int kReduceResultTag = -1004;
constexpr int kGatherTag = -1005;
constexpr int kScatterTag = -1006;
}  // namespace

void MpiRank::barrier(DoneHandler done) {
  // Linear barrier: everyone reports to rank 0; rank 0 releases everyone.
  if (rank_ == 0) {
    barrier_waiters_.push_back(std::move(done));
    auto check_release = [this] {
      if (barrier_arrivals_ < size() - 1) return;
      barrier_arrivals_ = 0;
      for (int r = 1; r < size(); ++r) send(r, kBarrierReleaseTag, {});
      auto waiters = std::move(barrier_waiters_);
      barrier_waiters_.clear();
      for (auto& w : waiters) w();
    };
    if (size() == 1) {
      check_release();
      return;
    }
    // Collect the size()-1 arrival messages.
    for (int i = 0; i < size() - 1; ++i) {
      recv(kAnySource, kBarrierTag, [this, check_release](MpiMessage) {
        ++barrier_arrivals_;
        check_release();
      });
    }
  } else {
    send(0, kBarrierTag, {});
    recv(0, kBarrierReleaseTag,
         [done = std::move(done)](MpiMessage) { done(); });
  }
}

void MpiRank::bcast(int root, Bytes data, RecvHandler done) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r)
      if (r != root) send(r, kBcastTag, data);
    done(MpiMessage{root, kBcastTag, std::move(data)});
  } else {
    recv(root, kBcastTag, std::move(done));
  }
}

void MpiRank::allreduce_sum(std::int64_t value, std::function<void(std::int64_t)> done) {
  // Reduce to rank 0 then broadcast the result.
  if (rank_ == 0) {
    reduce_acc_ = value;
    reduce_arrivals_ = 0;
    if (size() == 1) {
      done(reduce_acc_);
      return;
    }
    for (int i = 0; i < size() - 1; ++i) {
      recv(kAnySource, kReduceTag, [this, done](MpiMessage msg) {
        ByteReader r(msg.data);
        reduce_acc_ += r.i64().value_or(0);
        if (++reduce_arrivals_ == size() - 1) {
          ByteWriter w;
          w.i64(reduce_acc_);
          for (int dst = 1; dst < size(); ++dst) send(dst, kReduceResultTag, w.bytes());
          done(reduce_acc_);
        }
      });
    }
  } else {
    ByteWriter w;
    w.i64(value);
    send(0, kReduceTag, std::move(w).take());
    recv(0, kReduceResultTag, [done = std::move(done)](MpiMessage msg) {
      ByteReader r(msg.data);
      done(r.i64().value_or(0));
    });
  }
}

void MpiRank::gather(int root, Bytes contribution,
                     std::function<void(std::vector<Bytes>)> done) {
  if (rank_ == root) {
    gather_parts_.assign(static_cast<std::size_t>(size()), Bytes{});
    gather_parts_[static_cast<std::size_t>(root)] = std::move(contribution);
    gather_arrivals_ = 0;
    if (size() == 1) {
      done(std::move(gather_parts_));
      return;
    }
    for (int i = 0; i < size() - 1; ++i) {
      recv(kAnySource, kGatherTag, [this, done](MpiMessage msg) {
        gather_parts_[static_cast<std::size_t>(msg.source)] = std::move(msg.data);
        if (++gather_arrivals_ == size() - 1) done(std::move(gather_parts_));
      });
    }
  } else {
    send(root, kGatherTag, std::move(contribution));
  }
}

void MpiRank::scatter(int root, std::vector<Bytes> pieces,
                      std::function<void(Bytes)> done) {
  if (rank_ == root) {
    assert(pieces.size() == static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r)
      if (r != root) send(r, kScatterTag, pieces[static_cast<std::size_t>(r)]);
    done(std::move(pieces[static_cast<std::size_t>(root)]));
  } else {
    recv(root, kScatterTag,
         [done = std::move(done)](MpiMessage msg) { done(std::move(msg.data)); });
  }
}

}  // namespace snipe::mpi
