// PVM-lite: the slice of PVM that PVMPI depends on (§2.2, §6.1).
//
// PVM routes inter-host task messages through per-host daemons (pvmds) by
// default, and keeps its name service and host table on the *master* pvmd
// — the centralized designs §2.2 criticizes ("PVM can tolerate slave
// failures but not failure of its master host", "centralized decision
// making").  We reproduce the parts PVMPI needs:
//
//   * a master pvmd holding the host table and the global name registry;
//   * slave pvmds that enroll with the master;
//   * tasks that enroll with their local pvmd and get a PVM task id
//     (tid = daemon index << 16 | local index, as in real PVM);
//   * pvm_send routed task -> local pvmd -> destination pvmd -> task
//     (the default store-and-forward route whose extra hops MPI_Connect
//     eliminates — the §6.1 performance comparison);
//   * name registration/lookup against the master.
#pragma once

#include <map>
#include <memory>

#include "transport/rpc.hpp"

namespace snipe::pvm {

namespace tags {
inline constexpr std::uint32_t kDaemonJoin = 160;  ///< slave pvmd -> master
inline constexpr std::uint32_t kEnroll = 161;      ///< task -> local pvmd
inline constexpr std::uint32_t kRegister = 162;    ///< name -> tid (master)
inline constexpr std::uint32_t kLookup = 163;
inline constexpr std::uint32_t kRoute = 164;       ///< routed message hop
inline constexpr std::uint32_t kDaemonAddr = 165;  ///< daemon index -> address
}  // namespace tags

struct PvmStats {
  std::uint64_t routed = 0;          ///< messages this pvmd forwarded
  std::uint64_t names_registered = 0;
  std::uint64_t lookups = 0;
};

class PvmDaemon {
 public:
  static constexpr std::uint16_t kDefaultPort = 7400;

  /// Master constructor (daemon index 0).
  explicit PvmDaemon(simnet::Host& host, std::uint16_t port = kDefaultPort);
  /// Slave constructor: joins the virtual machine at `master`.
  PvmDaemon(simnet::Host& host, const simnet::Address& master,
            std::uint16_t port = kDefaultPort);

  simnet::Address address() const { return rpc_.address(); }
  bool is_master() const { return master_ == nullptr; }
  int daemon_index() const { return index_; }
  bool joined() const { return index_ >= 0; }

  const PvmStats& stats() const { return stats_; }
  transport::RpcEndpoint& rpc() { return rpc_; }

 private:
  friend class PvmTask;
  void serve();
  void route(const Bytes& wire);
  void deliver_local(int tid, const Bytes& wire);
  void resolve_daemon(int index, std::function<void(Result<simnet::Address>)> done);

  transport::RpcEndpoint rpc_;
  simnet::Engine& engine_;
  std::unique_ptr<simnet::Address> master_;  ///< null on the master itself
  int index_ = -1;                           ///< assigned by the master
  int next_local_ = 1;
  std::map<int, simnet::Address> local_tasks_;       ///< local tid -> task port
  std::map<int, simnet::Address> daemon_table_;      ///< index -> pvmd (master: authoritative)
  std::map<std::string, int> names_;                 ///< master-only name registry
  int next_daemon_index_ = 1;                        ///< master-only
  PvmStats stats_;
  Logger log_;
};

/// A PVM task: enrolled with the pvmd on its own host.
class PvmTask {
 public:
  using Handler = std::function<void(int src_tid, int tag, Bytes data)>;

  /// Enrolls with the local daemon; `ready` fires with the assigned tid.
  PvmTask(simnet::Host& host, PvmDaemon& local_daemon,
          std::function<void(Result<int>)> ready);

  int tid() const { return tid_; }
  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// pvm_send: routed through the daemons (the default PVM route).
  void send(int dst_tid, int tag, Bytes data);

  /// pvm_register / pvm_lookup against the master's name table.
  void register_name(const std::string& name, std::function<void(Result<void>)> done);
  void lookup(const std::string& name, std::function<void(Result<int>)> done);

  simnet::Address address() const { return rpc_.address(); }

 private:
  transport::RpcEndpoint rpc_;
  PvmDaemon& daemon_;
  int tid_ = 0;
  Handler handler_;
  Logger log_;
};

/// Wire form of a routed PVM message (constant across all three hops).
struct PvmEnvelope {
  int src_tid = 0;
  int dst_tid = 0;
  int tag = 0;
  Bytes data;

  Bytes encode() const;
  static Result<PvmEnvelope> decode(const Bytes& wire);
};

}  // namespace snipe::pvm
