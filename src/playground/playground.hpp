// Playgrounds: trusted execution of untrusted mobile code (§3.6, §5.8).
//
// "The playground is responsible for downloading the code from a file
//  server, verifying its authenticity and integrity, verifying that the
//  code has the rights needed to access restricted resources, enforcing
//  access restrictions and resource usage quotas, and logging access
//  violations and excess resource use."
//
// The flow implemented here:
//   1. resolve the code LIFN in RC: expected SHA-256, the signer's key
//      certificate, and a SignedSubset binding (LIFN -> hash);
//   2. validate the signer's certificate against the playground's
//      TrustStore for TrustPurpose::sign_mobile_code;
//   3. verify the signed hash binding, fetch the code from the nearest
//      file server replica (content hash re-checked by FileClient);
//   4. instantiate an SVM with the playground's quotas.
//
// VmTask then runs the VM under the event loop with a cycle->time mapping,
// surfaces output, enforces quotas (the VM self-reports quota faults) and
// provides the checkpoint/restart/migrate hooks resource managers use.
#pragma once

#include <functional>

#include "crypto/identity.hpp"
#include "files/fileserver.hpp"
#include "playground/svm.hpp"
#include "rcds/client.hpp"

namespace snipe::playground {

/// Extra RC assertion names used for mobile code.
namespace code_names {
inline constexpr const char* kSignerCert = "code:signercert";  ///< hex(Certificate)
inline constexpr const char* kSignature = "rcds:sig:code";     ///< hex(SignedSubset)
}  // namespace code_names

struct PlaygroundConfig {
  VmQuota quota;
  /// When false the playground runs unsigned code (native-trust mode, for
  /// closed testbeds); the paper's default posture is verification on.
  bool require_signature = true;
};

struct PlaygroundStats {
  std::uint64_t loads_ok = 0;
  std::uint64_t loads_rejected = 0;  ///< failed verification (logged, §3.6)
  std::uint64_t quota_violations = 0;
};

/// Publishes mobile code: stores it on a file server and registers the
/// hash, the signature subset and the signer certificate in RC.  `signer`
/// must hold a certificate from a party the target playgrounds trust.
void publish_code(files::FileClient& files, rcds::RcClient& rc,
                  const simnet::Address& file_server, const std::string& lifn,
                  const Program& program, const crypto::Principal& signer,
                  const crypto::Certificate& signer_cert,
                  std::function<void(Result<void>)> done);

class Playground {
 public:
  /// The playground *borrows* its host component's resolver and file
  /// client rather than owning endpoints of its own: a FileClient claims
  /// its RPC endpoint's data-stream notifications, so exactly one may
  /// exist per endpoint.
  Playground(rcds::RcClient& rc, files::FileClient& files, crypto::TrustStore trust,
             PlaygroundConfig config = {});

  using LoadHandler = std::function<void(Result<Vm>)>;
  /// Downloads, verifies and instantiates the code at `lifn`.
  void load(const std::string& lifn, LoadHandler done);

  const PlaygroundStats& stats() const { return stats_; }
  const PlaygroundConfig& config() const { return config_; }

 private:
  rcds::RcClient& rc_;
  files::FileClient& files_;
  crypto::TrustStore trust_;
  PlaygroundConfig config_;
  PlaygroundStats stats_;
  Logger log_;
};

/// A VM executing on the virtual clock under playground supervision.
class VmTask {
 public:
  using OutputHandler = std::function<void(std::int64_t value)>;
  using ExitHandler = std::function<void(VmStatus status, std::int64_t exit_code)>;
  /// Fired when the program executes `ckpt`; the host snapshots and then
  /// resumes (or migrates) the task.
  using CheckpointHandler = std::function<void(Bytes snapshot)>;

  /// `cycle_time`: virtual nanoseconds per VM cycle; `quantum`: instructions
  /// per scheduling slice.
  VmTask(simnet::Engine& engine, Vm vm, SimDuration cycle_time = 10,
         std::uint64_t quantum = 10'000);
  ~VmTask();

  void set_output_handler(OutputHandler h) { on_output_ = std::move(h); }
  void set_exit_handler(ExitHandler h) { on_exit_ = std::move(h); }
  void set_checkpoint_handler(CheckpointHandler h) { on_checkpoint_ = std::move(h); }

  /// Starts (or resumes) scheduled execution.
  void start();
  /// Suspends scheduling (the signal a daemon delivers on SIGSTOP).
  void suspend();
  void resume() { start(); }
  /// Kills the task (no further slices; exit handler fires with `trapped`).
  void kill();

  void push_input(std::int64_t value);
  /// Synchronous snapshot of the current state (between slices).
  Bytes checkpoint() const { return vm_.snapshot(); }

  VmStatus status() const { return vm_.status(); }
  const Vm& vm() const { return vm_; }
  bool scheduled() const { return timer_.valid(); }

 private:
  void slice();

  simnet::Engine& engine_;
  Vm vm_;
  SimDuration cycle_time_;
  std::uint64_t quantum_;
  simnet::TimerId timer_;
  bool killed_ = false;
  OutputHandler on_output_;
  ExitHandler on_exit_;
  CheckpointHandler on_checkpoint_;
};

}  // namespace snipe::playground
