// A small assembler for SVM mobile code.
//
// Example programs in examples/ and the mobile-code tests are written in
// this text form rather than as raw instruction vectors:
//
//     .globals 2
//     loop:
//       recv            ; wait for a sensor reading
//       dup
//       emit            ; pass it through
//       storeg 0
//       jmp loop
//
// Lines hold one instruction; `label:` defines a jump target; `;` starts a
// comment.  `call f n` is sugar for `push n` + `call f`.
#pragma once

#include <string>

#include "playground/svm.hpp"

namespace snipe::playground {

/// Assembles source text into a Program; errors carry the line number.
Result<Program> assemble(const std::string& source);

}  // namespace snipe::playground
