#include "playground/svm.hpp"

namespace snipe::playground {

const char* vm_status_name(VmStatus s) {
  switch (s) {
    case VmStatus::ready: return "ready";
    case VmStatus::running: return "running";
    case VmStatus::blocked: return "blocked";
    case VmStatus::checkpoint: return "checkpoint";
    case VmStatus::halted: return "halted";
    case VmStatus::trapped: return "trapped";
    case VmStatus::quota: return "quota";
  }
  return "unknown";
}

Bytes Program::encode() const {
  ByteWriter w;
  w.i64(globals);
  w.u32(static_cast<std::uint32_t>(code.size()));
  for (const auto& ins : code) {
    w.u8(static_cast<std::uint8_t>(ins.op));
    w.i64(ins.imm);
  }
  return std::move(w).take();
}

Result<Program> Program::decode(const Bytes& data) {
  ByteReader r(data);
  Program p;
  auto globals = r.i64();
  if (!globals) return globals.error();
  p.globals = globals.value();
  if (p.globals < 0 || p.globals > 1 << 20)
    return Error{Errc::corrupt, "absurd global count"};
  auto count = r.u32();
  if (!count) return count.error();
  if (count.value() > 1 << 22) return Error{Errc::corrupt, "absurd code size"};
  p.code.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto op = r.u8();
    if (!op) return op.error();
    auto imm = r.i64();
    if (!imm) return imm.error();
    p.code.push_back({static_cast<OpCode>(op.value()), imm.value()});
  }
  return p;
}

Vm::Vm(Program program, VmQuota quota) : program_(std::move(program)), quota_(quota) {
  globals_.assign(static_cast<std::size_t>(program_.globals), 0);
}

VmStatus Vm::trap(std::string why) {
  status_ = VmStatus::trapped;
  fault_ = std::move(why);
  return status_;
}

VmStatus Vm::quota_fault(std::string why) {
  status_ = VmStatus::quota;
  fault_ = std::move(why);
  return status_;
}

void Vm::push_input(std::int64_t value) {
  input_.push_back(value);
  if (status_ == VmStatus::blocked) status_ = VmStatus::running;
}

std::vector<std::int64_t> Vm::drain_output() {
  std::vector<std::int64_t> out(output_.begin(), output_.end());
  output_.clear();
  return out;
}

void Vm::acknowledge_checkpoint() {
  if (status_ == VmStatus::checkpoint) status_ = VmStatus::running;
}

VmStatus Vm::run(std::uint64_t quantum) {
  if (status_ == VmStatus::halted || status_ == VmStatus::trapped ||
      status_ == VmStatus::quota || status_ == VmStatus::checkpoint)
    return status_;
  if (status_ == VmStatus::blocked && input_.empty()) return status_;
  status_ = VmStatus::running;

  auto pop2 = [this](std::int64_t& a, std::int64_t& b) {
    if (stack_.size() < 2) return false;
    b = stack_.back();
    stack_.pop_back();
    a = stack_.back();
    stack_.pop_back();
    return true;
  };

  for (std::uint64_t step = 0; step < quantum; ++step) {
    if (cycles_ >= quota_.max_cycles) return quota_fault("cycle budget exhausted");
    if (pc_ < 0 || pc_ >= static_cast<std::int64_t>(program_.code.size()))
      return trap("pc out of range: " + std::to_string(pc_));
    const Instruction ins = program_.code[static_cast<std::size_t>(pc_)];
    ++pc_;
    ++cycles_;

    switch (ins.op) {
      case OpCode::push:
        if (stack_.size() >= quota_.max_stack) return quota_fault("operand stack overflow");
        stack_.push_back(ins.imm);
        break;
      case OpCode::pop:
        if (stack_.empty()) return trap("pop on empty stack");
        stack_.pop_back();
        break;
      case OpCode::dup:
        if (stack_.empty()) return trap("dup on empty stack");
        if (stack_.size() >= quota_.max_stack) return quota_fault("operand stack overflow");
        stack_.push_back(stack_.back());
        break;
      case OpCode::swap: {
        if (stack_.size() < 2) return trap("swap needs two values");
        std::swap(stack_[stack_.size() - 1], stack_[stack_.size() - 2]);
        break;
      }
      case OpCode::add:
      case OpCode::sub:
      case OpCode::mul:
      case OpCode::divi:
      case OpCode::mod:
      case OpCode::eq:
      case OpCode::ne:
      case OpCode::lt:
      case OpCode::le:
      case OpCode::gt:
      case OpCode::ge:
      case OpCode::land:
      case OpCode::lor: {
        std::int64_t a, b;
        if (!pop2(a, b)) return trap("binary op needs two values");
        std::int64_t r = 0;
        switch (ins.op) {
          case OpCode::add: r = a + b; break;
          case OpCode::sub: r = a - b; break;
          case OpCode::mul: r = a * b; break;
          case OpCode::divi:
            if (b == 0) return trap("division by zero");
            r = a / b;
            break;
          case OpCode::mod:
            if (b == 0) return trap("modulo by zero");
            r = a % b;
            break;
          case OpCode::eq: r = a == b; break;
          case OpCode::ne: r = a != b; break;
          case OpCode::lt: r = a < b; break;
          case OpCode::le: r = a <= b; break;
          case OpCode::gt: r = a > b; break;
          case OpCode::ge: r = a >= b; break;
          case OpCode::land: r = (a != 0) && (b != 0); break;
          case OpCode::lor: r = (a != 0) || (b != 0); break;
          default: break;
        }
        stack_.push_back(r);
        break;
      }
      case OpCode::neg:
        if (stack_.empty()) return trap("neg on empty stack");
        stack_.back() = -stack_.back();
        break;
      case OpCode::lnot:
        if (stack_.empty()) return trap("not on empty stack");
        stack_.back() = stack_.back() == 0;
        break;
      case OpCode::loadl: {
        if (frames_.empty()) return trap("loadl outside a function");
        auto& locals = frames_.back().locals;
        if (ins.imm < 0 || ins.imm >= static_cast<std::int64_t>(locals.size()))
          return trap("local index out of range");
        stack_.push_back(locals[static_cast<std::size_t>(ins.imm)]);
        break;
      }
      case OpCode::storel: {
        if (frames_.empty()) return trap("storel outside a function");
        if (stack_.empty()) return trap("storel on empty stack");
        auto& locals = frames_.back().locals;
        if (ins.imm < 0) return trap("local index out of range");
        if (ins.imm >= static_cast<std::int64_t>(locals.size()))
          locals.resize(static_cast<std::size_t>(ins.imm) + 1, 0);
        locals[static_cast<std::size_t>(ins.imm)] = stack_.back();
        stack_.pop_back();
        break;
      }
      case OpCode::loadg:
        if (ins.imm < 0 || ins.imm >= static_cast<std::int64_t>(globals_.size()))
          return trap("global index out of range");
        stack_.push_back(globals_[static_cast<std::size_t>(ins.imm)]);
        break;
      case OpCode::storeg:
        if (stack_.empty()) return trap("storeg on empty stack");
        if (ins.imm < 0 || ins.imm >= static_cast<std::int64_t>(globals_.size()))
          return trap("global index out of range");
        globals_[static_cast<std::size_t>(ins.imm)] = stack_.back();
        stack_.pop_back();
        break;
      case OpCode::jmp:
        pc_ = ins.imm;
        break;
      case OpCode::jz: {
        if (stack_.empty()) return trap("jz on empty stack");
        std::int64_t v = stack_.back();
        stack_.pop_back();
        if (v == 0) pc_ = ins.imm;
        break;
      }
      case OpCode::jnz: {
        if (stack_.empty()) return trap("jnz on empty stack");
        std::int64_t v = stack_.back();
        stack_.pop_back();
        if (v != 0) pc_ = ins.imm;
        break;
      }
      case OpCode::call: {
        if (frames_.size() >= quota_.max_frames) return quota_fault("call depth exceeded");
        if (stack_.empty()) return trap("call needs an argument count");
        std::int64_t nargs = stack_.back();
        stack_.pop_back();
        if (nargs < 0 || static_cast<std::size_t>(nargs) > stack_.size())
          return trap("bad argument count");
        Frame frame;
        frame.return_pc = pc_;
        frame.locals.assign(stack_.end() - nargs, stack_.end());
        stack_.resize(stack_.size() - static_cast<std::size_t>(nargs));
        frame.stack_base = static_cast<std::int64_t>(stack_.size());
        frames_.push_back(std::move(frame));
        pc_ = ins.imm;
        break;
      }
      case OpCode::ret: {
        if (frames_.empty()) return trap("ret outside a function");
        Frame frame = std::move(frames_.back());
        frames_.pop_back();
        std::int64_t result = 0;
        bool has_result = static_cast<std::int64_t>(stack_.size()) > frame.stack_base;
        if (has_result) result = stack_.back();
        stack_.resize(static_cast<std::size_t>(frame.stack_base));
        if (has_result) stack_.push_back(result);
        pc_ = frame.return_pc;
        break;
      }
      case OpCode::emit:
        if (stack_.empty()) return trap("emit on empty stack");
        if (output_.size() >= quota_.max_output) return quota_fault("output quota exceeded");
        output_.push_back(stack_.back());
        stack_.pop_back();
        break;
      case OpCode::recv:
        if (input_.empty()) {
          --pc_;  // re-execute recv when input arrives
          --cycles_;
          status_ = VmStatus::blocked;
          return status_;
        }
        if (stack_.size() >= quota_.max_stack) return quota_fault("operand stack overflow");
        stack_.push_back(input_.front());
        input_.pop_front();
        break;
      case OpCode::halt:
        exit_code_ = stack_.empty() ? 0 : stack_.back();
        status_ = VmStatus::halted;
        return status_;
      case OpCode::work: {
        if (ins.imm < 0) return trap("negative work");
        std::uint64_t extra = static_cast<std::uint64_t>(ins.imm);
        if (cycles_ + extra > quota_.max_cycles) {
          cycles_ = quota_.max_cycles;
          return quota_fault("cycle budget exhausted");
        }
        cycles_ += extra;
        break;
      }
      case OpCode::ckpt:
        status_ = VmStatus::checkpoint;
        return status_;
      case OpCode::self:
        if (stack_.size() >= quota_.max_stack) return quota_fault("operand stack overflow");
        stack_.push_back(instance_id_);
        break;
      case OpCode::trapop:
        return trap("explicit trap");
      default:
        return trap("illegal opcode " + std::to_string(static_cast<int>(ins.op)));
    }
  }
  return status_;  // quantum exhausted, still runnable
}

Bytes Vm::snapshot() const {
  ByteWriter w;
  w.blob(program_.encode());
  w.u64(quota_.max_cycles);
  w.u64(quota_.max_stack);
  w.u64(quota_.max_frames);
  w.u64(quota_.max_output);
  w.i64(pc_);
  w.u32(static_cast<std::uint32_t>(stack_.size()));
  for (auto v : stack_) w.i64(v);
  w.u32(static_cast<std::uint32_t>(frames_.size()));
  for (const auto& f : frames_) {
    w.i64(f.return_pc);
    w.i64(f.stack_base);
    w.u32(static_cast<std::uint32_t>(f.locals.size()));
    for (auto v : f.locals) w.i64(v);
  }
  w.u32(static_cast<std::uint32_t>(globals_.size()));
  for (auto v : globals_) w.i64(v);
  w.u32(static_cast<std::uint32_t>(input_.size()));
  for (auto v : input_) w.i64(v);
  w.u32(static_cast<std::uint32_t>(output_.size()));
  for (auto v : output_) w.i64(v);
  w.u64(cycles_);
  w.u8(static_cast<std::uint8_t>(status_));
  w.i64(exit_code_);
  w.i64(instance_id_);
  return std::move(w).take();
}

Result<Vm> Vm::restore(const Bytes& snapshot) {
  ByteReader r(snapshot);
  auto program_bytes = r.blob();
  if (!program_bytes) return program_bytes.error();
  auto program = Program::decode(program_bytes.value());
  if (!program) return program.error();

  Vm vm;
  vm.program_ = std::move(program).take();
  auto max_cycles = r.u64();
  auto max_stack = r.u64();
  auto max_frames = r.u64();
  auto max_output = r.u64();
  if (!max_cycles || !max_stack || !max_frames || !max_output)
    return Error{Errc::corrupt, "bad quota block"};
  vm.quota_ = VmQuota{max_cycles.value(), static_cast<std::size_t>(max_stack.value()),
                      static_cast<std::size_t>(max_frames.value()),
                      static_cast<std::size_t>(max_output.value())};
  auto pc = r.i64();
  if (!pc) return pc.error();
  vm.pc_ = pc.value();

  auto read_i64_seq = [&r](auto out_inserter) -> Result<void> {
    auto count = r.u32();
    if (!count) return count.error();
    if (count.value() > 1 << 24) return Error{Errc::corrupt, "absurd sequence size"};
    for (std::uint32_t i = 0; i < count.value(); ++i) {
      auto v = r.i64();
      if (!v) return v.error();
      out_inserter(v.value());
    }
    return ok_result();
  };

  if (auto s = read_i64_seq([&](std::int64_t v) { vm.stack_.push_back(v); }); !s)
    return s.error();
  auto frame_count = r.u32();
  if (!frame_count) return frame_count.error();
  if (frame_count.value() > 1 << 20) return Error{Errc::corrupt, "absurd frame count"};
  for (std::uint32_t i = 0; i < frame_count.value(); ++i) {
    Frame f;
    auto rpc = r.i64();
    auto base = r.i64();
    if (!rpc || !base) return Error{Errc::corrupt, "bad frame"};
    f.return_pc = rpc.value();
    f.stack_base = base.value();
    if (auto s = read_i64_seq([&](std::int64_t v) { f.locals.push_back(v); }); !s)
      return s.error();
    vm.frames_.push_back(std::move(f));
  }
  if (auto s = read_i64_seq([&](std::int64_t v) { vm.globals_.push_back(v); }); !s)
    return s.error();
  if (auto s = read_i64_seq([&](std::int64_t v) { vm.input_.push_back(v); }); !s)
    return s.error();
  if (auto s = read_i64_seq([&](std::int64_t v) { vm.output_.push_back(v); }); !s)
    return s.error();
  auto cycles = r.u64();
  auto status = r.u8();
  auto exit_code = r.i64();
  auto instance = r.i64();
  if (!cycles || !status || !exit_code || !instance)
    return Error{Errc::corrupt, "bad VM tail"};
  vm.cycles_ = cycles.value();
  vm.status_ = static_cast<VmStatus>(status.value());
  vm.exit_code_ = exit_code.value();
  vm.instance_id_ = instance.value();
  return vm;
}

}  // namespace snipe::playground
