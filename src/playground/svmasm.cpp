#include "playground/svmasm.hpp"

#include <map>
#include <optional>
#include <sstream>

#include "util/strings.hpp"

namespace snipe::playground {

namespace {

const std::map<std::string, OpCode>& mnemonics() {
  static const std::map<std::string, OpCode> table = {
      {"push", OpCode::push},   {"pop", OpCode::pop},       {"dup", OpCode::dup},
      {"swap", OpCode::swap},   {"add", OpCode::add},       {"sub", OpCode::sub},
      {"mul", OpCode::mul},     {"div", OpCode::divi},      {"mod", OpCode::mod},
      {"neg", OpCode::neg},     {"eq", OpCode::eq},         {"ne", OpCode::ne},
      {"lt", OpCode::lt},       {"le", OpCode::le},         {"gt", OpCode::gt},
      {"ge", OpCode::ge},       {"and", OpCode::land},      {"or", OpCode::lor},
      {"not", OpCode::lnot},    {"loadl", OpCode::loadl},   {"storel", OpCode::storel},
      {"loadg", OpCode::loadg}, {"storeg", OpCode::storeg}, {"jmp", OpCode::jmp},
      {"jz", OpCode::jz},       {"jnz", OpCode::jnz},       {"call", OpCode::call},
      {"ret", OpCode::ret},     {"emit", OpCode::emit},     {"recv", OpCode::recv},
      {"halt", OpCode::halt},   {"work", OpCode::work},     {"ckpt", OpCode::ckpt},
      {"self", OpCode::self},   {"trap", OpCode::trapop},
  };
  return table;
}

bool needs_label_or_number(OpCode op) {
  return op == OpCode::jmp || op == OpCode::jz || op == OpCode::jnz || op == OpCode::call;
}

bool needs_number(OpCode op) {
  return op == OpCode::push || op == OpCode::loadl || op == OpCode::storel ||
         op == OpCode::loadg || op == OpCode::storeg || op == OpCode::work;
}

std::optional<std::int64_t> parse_int(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::size_t pos = 0;
  try {
    std::int64_t v = std::stoll(s, &pos);
    if (pos != s.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace

Result<Program> assemble(const std::string& source) {
  struct Pending {
    std::size_t instruction;
    std::string label;
    int line;
  };
  Program program;
  std::map<std::string, std::int64_t> labels;
  std::vector<Pending> pending;

  std::istringstream in(source);
  std::string raw_line;
  int line_no = 0;
  while (std::getline(in, raw_line)) {
    ++line_no;
    auto comment = raw_line.find(';');
    if (comment != std::string::npos) raw_line = raw_line.substr(0, comment);
    std::string line = trim(raw_line);
    if (line.empty()) continue;

    // Directives.
    if (starts_with(line, ".globals")) {
      auto n = parse_int(trim(line.substr(8)));
      if (!n || *n < 0)
        return Error{Errc::invalid_argument,
                     "line " + std::to_string(line_no) + ": bad .globals count"};
      program.globals = *n;
      continue;
    }

    // Labels (may share a line with an instruction: "loop: recv").
    while (true) {
      auto colon = line.find(':');
      if (colon == std::string::npos) break;
      std::string label = trim(line.substr(0, colon));
      if (label.empty() || label.find(' ') != std::string::npos)
        return Error{Errc::invalid_argument,
                     "line " + std::to_string(line_no) + ": bad label"};
      if (labels.count(label))
        return Error{Errc::invalid_argument,
                     "line " + std::to_string(line_no) + ": duplicate label " + label};
      labels[label] = static_cast<std::int64_t>(program.code.size());
      line = trim(line.substr(colon + 1));
    }
    if (line.empty()) continue;

    std::istringstream parts(line);
    std::string mnemonic, arg1, arg2;
    parts >> mnemonic >> arg1 >> arg2;
    auto it = mnemonics().find(mnemonic);
    if (it == mnemonics().end())
      return Error{Errc::invalid_argument,
                   "line " + std::to_string(line_no) + ": unknown mnemonic " + mnemonic};
    OpCode op = it->second;

    // Sugar: "call f n" == push n; call f.
    if (op == OpCode::call && !arg2.empty()) {
      auto n = parse_int(arg2);
      if (!n)
        return Error{Errc::invalid_argument,
                     "line " + std::to_string(line_no) + ": bad call arg count"};
      program.code.push_back({OpCode::push, *n});
    }

    Instruction ins{op, 0};
    if (needs_number(op)) {
      auto v = parse_int(arg1);
      if (!v)
        return Error{Errc::invalid_argument,
                     "line " + std::to_string(line_no) + ": " + mnemonic +
                         " needs a numeric operand"};
      ins.imm = *v;
    } else if (needs_label_or_number(op)) {
      if (auto v = parse_int(arg1)) {
        ins.imm = *v;
      } else if (!arg1.empty()) {
        pending.push_back({program.code.size(), arg1, line_no});
      } else {
        return Error{Errc::invalid_argument,
                     "line " + std::to_string(line_no) + ": " + mnemonic + " needs a target"};
      }
    } else if (!arg1.empty()) {
      return Error{Errc::invalid_argument,
                   "line " + std::to_string(line_no) + ": " + mnemonic +
                       " takes no operand"};
    }
    program.code.push_back(ins);
  }

  for (const auto& p : pending) {
    auto it = labels.find(p.label);
    if (it == labels.end())
      return Error{Errc::invalid_argument,
                   "line " + std::to_string(p.line) + ": undefined label " + p.label};
    program.code[p.instruction].imm = it->second;
  }
  return program;
}

}  // namespace snipe::playground
