// SVM: the SNIPE mobile-code virtual machine.
//
// The paper expects mobile code "written in a machine-independent language
// such as Java, Python, or Limbo" because such runtimes "may also be able
// to arrange the allocation of program storage, in a way that facilitates
// checkpointing, restart, and migration" (§3.6).  SVM is exactly that: a
// small stack machine whose *entire* execution state — operand stack, call
// frames, globals, pending I/O — serializes to a flat byte string.  A
// checkpoint is `snapshot()`; migration is snapshot + ship + `restore()`.
//
// Resource quotas (§3.6: "enforcing access restrictions and resource usage
// quotas") are enforced per-instruction: cycle budget, stack depth, global
// store size and output volume.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace snipe::playground {

/// Instruction set.  Fixed-width encoding: opcode byte + i64 immediate.
enum class OpCode : std::uint8_t {
  // stack
  push = 1,   ///< push immediate
  pop = 2,
  dup = 3,
  swap = 4,
  // arithmetic / logic (binary ops pop b then a, push a OP b)
  add = 10,
  sub = 11,
  mul = 12,
  divi = 13,  ///< traps on division by zero
  mod = 14,
  neg = 15,
  eq = 16,
  ne = 17,
  lt = 18,
  le = 19,
  gt = 20,
  ge = 21,
  land = 22,
  lor = 23,
  lnot = 24,
  // data movement
  loadl = 30,   ///< push local[imm]
  storel = 31,  ///< local[imm] = pop
  loadg = 32,   ///< push global[imm]
  storeg = 33,  ///< global[imm] = pop
  // control
  jmp = 40,   ///< pc = imm
  jz = 41,    ///< pop; if zero pc = imm
  jnz = 42,   ///< pop; if nonzero pc = imm
  call = 43,  ///< call function at imm; arg count on stack top
  ret = 44,   ///< return, preserving the top of stack as the result
  // environment
  emit = 50,     ///< pop -> output queue (host mailbox)
  recv = 51,     ///< input queue -> push; blocks when empty
  halt = 52,     ///< finish with exit code = pop
  work = 53,     ///< consume imm extra cycles (models computation)
  ckpt = 54,     ///< request a checkpoint (host decides what to do)
  self = 55,     ///< push the VM's instance id (host-assigned)
  trapop = 56,   ///< deliberately trap (for testing fault paths)
};

struct Instruction {
  OpCode op;
  std::int64_t imm = 0;
};

/// A compiled program: instructions + number of globals it needs.
struct Program {
  std::vector<Instruction> code;
  std::int64_t globals = 0;

  Bytes encode() const;
  static Result<Program> decode(const Bytes& data);
};

/// Why the VM stopped running.
enum class VmStatus : std::uint8_t {
  ready = 0,        ///< never started / can continue
  running = 1,      ///< stopped only because the cycle quantum ran out
  blocked = 2,      ///< waiting on `recv` with an empty input queue
  checkpoint = 3,   ///< executed `ckpt`; host should snapshot
  halted = 4,       ///< executed `halt`
  trapped = 5,      ///< runtime fault (bad opcode, div by zero, ...)
  quota = 6,        ///< exceeded a resource quota
};

const char* vm_status_name(VmStatus s);

struct VmQuota {
  std::uint64_t max_cycles = 100'000'000;  ///< lifetime instruction budget
  std::size_t max_stack = 64 * 1024;
  std::size_t max_frames = 1024;
  std::size_t max_output = 1 << 20;  ///< queued, un-drained emits
};

class Vm {
 public:
  Vm() = default;
  Vm(Program program, VmQuota quota);

  /// Executes up to `quantum` instructions; returns why it stopped.
  VmStatus run(std::uint64_t quantum);

  VmStatus status() const { return status_; }
  std::int64_t exit_code() const { return exit_code_; }
  /// Human-readable fault description after `trapped` / `quota`.
  const std::string& fault() const { return fault_; }
  std::uint64_t cycles_used() const { return cycles_; }

  /// Host-side I/O: feed the input queue (unblocks `recv`), drain emits.
  void push_input(std::int64_t value);
  std::vector<std::int64_t> drain_output();
  std::size_t pending_output() const { return output_.size(); }
  /// Clears a `checkpoint` pause so run() can continue.
  void acknowledge_checkpoint();
  void set_instance_id(std::int64_t id) { instance_id_ = id; }

  /// Full-state snapshot: everything needed to resume this VM elsewhere,
  /// including the program itself (the code travels with the state — this
  /// is what makes SNIPE mobile code mobile).
  Bytes snapshot() const;
  static Result<Vm> restore(const Bytes& snapshot);

 private:
  struct Frame {
    std::int64_t return_pc = 0;
    std::int64_t stack_base = 0;  ///< operand stack size at entry (after args)
    std::vector<std::int64_t> locals;
  };

  VmStatus trap(std::string why);
  VmStatus quota_fault(std::string why);
  Result<std::int64_t> pop_value();

  Program program_;
  VmQuota quota_;
  std::int64_t pc_ = 0;
  std::vector<std::int64_t> stack_;
  std::vector<Frame> frames_;
  std::vector<std::int64_t> globals_;
  std::deque<std::int64_t> input_;
  std::deque<std::int64_t> output_;
  std::uint64_t cycles_ = 0;
  VmStatus status_ = VmStatus::ready;
  std::int64_t exit_code_ = 0;
  std::string fault_;
  std::int64_t instance_id_ = 0;
};

}  // namespace snipe::playground
