#include "playground/playground.hpp"

#include "rcds/signed.hpp"

namespace snipe::playground {

void publish_code(files::FileClient& files, rcds::RcClient& rc,
                  const simnet::Address& file_server, const std::string& lifn,
                  const Program& program, const crypto::Principal& signer,
                  const crypto::Certificate& signer_cert,
                  std::function<void(Result<void>)> done) {
  Bytes code = program.encode();
  std::string hash = crypto::digest_hex(crypto::sha256(code));
  auto subset = rcds::SignedSubset::sign(signer, lifn, {{rcds::names::kLifnHash, hash}});

  files.write(file_server, lifn, code,
              [&rc, lifn, subset, signer_cert, done = std::move(done)](Result<void> wrote) {
                if (!wrote) {
                  done(wrote);
                  return;
                }
                rc.apply(lifn,
                         {subset.to_op("code"),
                          rcds::op_set(code_names::kSignerCert,
                                       hex_encode(signer_cert.encode()))},
                         [done](Result<std::vector<rcds::Assertion>> r) {
                           if (!r)
                             done(r.error());
                           else
                             done(ok_result());
                         });
              });
}

Playground::Playground(rcds::RcClient& rc, files::FileClient& files,
                       crypto::TrustStore trust, PlaygroundConfig config)
    : rc_(rc),
      files_(files),
      trust_(std::move(trust)),
      config_(config),
      log_("playground") {}

void Playground::load(const std::string& lifn, LoadHandler done) {
  rc_.get(lifn, [this, lifn, done = std::move(done)](
                    Result<std::vector<rcds::Assertion>> meta) mutable {
    if (!meta) {
      ++stats_.loads_rejected;
      done(meta.error());
      return;
    }
    std::string hash, sig_hex, cert_hex;
    for (const auto& a : meta.value()) {
      if (a.name == rcds::names::kLifnHash) hash = a.value;
      if (a.name == code_names::kSignature) sig_hex = a.value;
      if (a.name == code_names::kSignerCert) cert_hex = a.value;
    }

    if (config_.require_signature) {
      // §5.8: "the playground is responsible for verifying the authenticity
      // and integrity of the program".
      auto reject = [&](const std::string& why) {
        ++stats_.loads_rejected;
        log_.warn("rejecting ", lifn, ": ", why);  // logged access violation
        done(Error{Errc::permission_denied, lifn + ": " + why});
      };
      if (hash.empty() || sig_hex.empty() || cert_hex.empty())
        return reject("missing signature metadata");
      auto cert_bytes = hex_decode(cert_hex);
      if (!cert_bytes) return reject("malformed signer certificate");
      auto cert = crypto::Certificate::decode(cert_bytes.value());
      if (!cert) return reject("undecodable signer certificate");
      if (auto v = trust_.validate(cert.value(), crypto::TrustPurpose::sign_mobile_code); !v)
        return reject(v.error().to_string());
      auto subset = rcds::SignedSubset::from_assertion_value(sig_hex);
      if (!subset) return reject("undecodable code signature");
      if (subset.value().signer != cert.value().subject)
        return reject("signature signer does not match certificate subject");
      if (!subset.value().verify_with(cert.value().subject_key))
        return reject("bad code signature");
      bool binds_hash = subset.value().uri == lifn;
      bool hash_listed = false;
      for (const auto& [n, v] : subset.value().entries)
        if (n == rcds::names::kLifnHash && v == hash) hash_listed = true;
      if (!binds_hash || !hash_listed) return reject("signature does not bind this code");
    }

    // FileClient re-verifies the content hash against RC during the read.
    files_.read(lifn, [this, lifn, done = std::move(done)](Result<Bytes> code) {
      if (!code) {
        ++stats_.loads_rejected;
        done(code.error());
        return;
      }
      auto program = Program::decode(code.value());
      if (!program) {
        ++stats_.loads_rejected;
        done(program.error());
        return;
      }
      ++stats_.loads_ok;
      done(Vm(std::move(program).take(), config_.quota));
    });
  });
}

// ---------- VmTask ----------

VmTask::VmTask(simnet::Engine& engine, Vm vm, SimDuration cycle_time, std::uint64_t quantum)
    : engine_(engine), vm_(std::move(vm)), cycle_time_(cycle_time), quantum_(quantum) {}

VmTask::~VmTask() { engine_.cancel(timer_); }

void VmTask::start() {
  if (killed_ || timer_.valid()) return;
  timer_ = engine_.schedule(0, [this] {
    timer_ = simnet::TimerId{};
    slice();
  });
}

void VmTask::suspend() {
  engine_.cancel(timer_);
  timer_ = simnet::TimerId{};
}

void VmTask::kill() {
  suspend();
  killed_ = true;
  if (on_exit_) on_exit_(VmStatus::trapped, -1);
}

void VmTask::push_input(std::int64_t value) {
  vm_.push_input(value);
  if (!killed_ && !timer_.valid()) start();  // unblock a waiting task
}

void VmTask::slice() {
  if (killed_) return;
  std::uint64_t before = vm_.cycles_used();
  VmStatus status = vm_.run(quantum_);
  std::uint64_t used = vm_.cycles_used() - before;

  // Everything the slice produced becomes visible only after the CPU time
  // it consumed has elapsed on the virtual clock.
  SimDuration charge = static_cast<SimDuration>(used) * cycle_time_;

  timer_ = engine_.schedule(charge, [this, status] {
    timer_ = simnet::TimerId{};
    if (killed_) return;
    for (std::int64_t v : vm_.drain_output())
      if (on_output_) on_output_(v);
    switch (status) {
      case VmStatus::running:
      case VmStatus::ready:
        slice();
        break;
      case VmStatus::blocked:
        // Sleeps until push_input() restarts us — unless input already
        // arrived while this slice's CPU charge was elapsing.
        if (vm_.status() != VmStatus::blocked) slice();
        break;
      case VmStatus::checkpoint:
        vm_.acknowledge_checkpoint();
        if (on_checkpoint_) on_checkpoint_(vm_.snapshot());
        if (!killed_ && !timer_.valid()) start();
        break;
      case VmStatus::halted:
      case VmStatus::trapped:
      case VmStatus::quota:
        if (on_exit_) on_exit_(status, vm_.exit_code());
        break;
    }
  });
}

}  // namespace snipe::playground
