// Consoles and the HTTP gateway (§3.7).
//
// "A SNIPE console is any SNIPE process which communicates with humans."
// There is deliberately no global process list — "there is no SNIPE
// virtual machine apart from the entire Internet" — so a console works by
// querying metadata: the processes a host's daemon started, any process's
// state, and group membership are all RC records.
//
// "A SNIPE process can also function as an HTTP server ... A SNIPE-based
// HTTP server can register a binding between a URN or URL and its current
// location, allowing a web browser to find it even though it may migrate."
// HttpServer + HttpGateway reproduce that: the gateway (the paper's "proxy
// server ... which allows any web browser to resolve the URI of any
// RCDS-registered resource") resolves the service URI through RC on every
// miss, so requests follow the server across migrations.
#pragma once

#include "core/process.hpp"
#include "obs/fleet.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace snipe::core {

/// Health/SLO rollup computed from a metrics snapshot: per-transport
/// delivery latency quantiles (every "*.delivery_ms" histogram), retransmit
/// ratios, and the route-failover count.  A free function over the snapshot
/// so tests can feed it synthetic registries, including an empty one.
std::string health_report(const obs::Snapshot& snapshot);

/// The flow-event trail for one causal trace.  `query` is a flow id (hex
/// "0x..." or decimal) or a message id: when no flow matches the id
/// directly, events whose "msg" argument equals `query` donate their flow
/// id.  A free function over the event list for the same testability
/// reason as health_report.
std::string trace_report(const std::vector<obs::TraceEvent>& events,
                         const std::string& query);

/// Fleet health rollup: one liveness line per known host (beacon counts,
/// beacon age in periods, STALE flag once stale_after_beacons periods pass
/// with nothing received) followed by health_report() over the fleet-merged
/// snapshot — so the fleet rollup's percentiles are exact with respect to
/// the union of every host's histogram buckets.  `now_ns` is the clock the
/// staleness math runs against (the tracer clock: virtual time in a sim).
std::string fleet_health_report(const obs::FleetStore& store, std::int64_t now_ns);

/// A human-facing SNIPE process: metadata queries + commands.
///
/// `interpret` implements the character-based interface: a PVM-console-like
/// command line evaluated against the live registry.  Because "there is no
/// way to list all SNIPE processes" (§3.7), every command starts from a
/// name the operator already has — a URI, URN or host.
///
///   ps <host-url>          processes the daemon on that host started
///   state <urn>            a process's current state
///   meta <uri>             full metadata record, one assertion per line
///   where <urn>            the host a process currently runs on
///   routers <group-urn>    a multicast group's router set
///   metrics [prefix]       scrape the global registry, optionally filtered
///   trace <id>             flow-event trail of one message (flow or msg id)
///   flight [host]          recent flight-recorder events, optionally per host
///   health                 delivery-latency / retransmit / failover rollup
///   topo                   zone tree with per-link utilization + up/down state
///   fleet metrics [prefix] fleet-merged registry scrape (set_fleet first)
///   fleet health           per-host liveness + fleet-merged health rollup
///   fleet flight [host]    fleet flight timeline, merge-sorted by time
///   fleet top [n]          worst-n hosts by retransmit ratio / delivery p99
class Console {
 public:
  explicit Console(SnipeProcess& process) : process_(process) {}

  /// Attaches a collector's fleet store; the `fleet *` verbs answer from it
  /// (and report the lack of one until attached).
  void set_fleet(const obs::FleetStore* fleet) { fleet_ = fleet; }

  /// Evaluates one command line; the reply is human-readable text.
  void interpret(const std::string& line, std::function<void(std::string)> reply);

  /// Full metadata of any URI (host, process, group, LIFN...).
  void query(const std::string& uri,
             std::function<void(Result<std::vector<rcds::Assertion>>)> done) {
    process_.rc().get(uri, std::move(done));
  }

  /// URNs of the processes the daemon on `host_url` has started (§3.7).
  void processes_on_host(const std::string& host_url,
                         std::function<void(Result<std::vector<std::string>>)> done) {
    process_.rc().lookup(host_url, rcds::names::kHostTask, std::move(done));
  }

  /// Current state of a process, from its RC metadata.
  void process_state(const std::string& urn,
                     std::function<void(Result<std::string>)> done) {
    process_.rc().lookup(urn, rcds::names::kProcState,
                         [done = std::move(done)](Result<std::vector<std::string>> r) {
                           if (!r) {
                             done(r.error());
                             return;
                           }
                           if (r.value().empty()) {
                             done(Result<std::string>(Errc::not_found, "no recorded state"));
                             return;
                           }
                           done(r.value().front());
                         });
  }

  /// Sends a command message to any process by URN.
  void command(const std::string& urn, std::uint32_t tag, Bytes body,
               SnipeProcess::DoneHandler done = nullptr) {
    process_.send(urn, tag, std::move(body), std::move(done));
  }

 private:
  SnipeProcess& process_;
  const obs::FleetStore* fleet_ = nullptr;
};

struct HttpRequest {
  std::string method = "GET";
  std::string path = "/";
  Bytes body;

  Bytes encode() const;
  static Result<HttpRequest> decode(const Bytes& data);
};

struct HttpResponse {
  int status = 200;
  Bytes body;

  Bytes encode() const;
  static Result<HttpResponse> decode(const Bytes& data);
};

/// Turns a SnipeProcess into an HTTP server bound to a service URI.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Registers `service_uri -> this process` in RC and serves requests.
  HttpServer(SnipeProcess& process, std::string service_uri, Handler handler);

  /// Re-registration after the underlying process migrates (the address
  /// binding in the process URN is already maintained by SnipeProcess;
  /// the service binding points at the URN so nothing else moves).
  const std::string& service_uri() const { return service_uri_; }
  std::uint64_t requests_served() const { return served_; }

 private:
  SnipeProcess& process_;
  std::string service_uri_;
  Handler handler_;
  std::uint64_t served_ = 0;
};

/// The proxy a "web browser" talks to: resolves RCDS-registered service
/// URIs and forwards HTTP requests to wherever the server currently runs.
class HttpGateway {
 public:
  explicit HttpGateway(SnipeProcess& process) : process_(process) {}

  void request(const std::string& service_uri, HttpRequest request,
               std::function<void(Result<HttpResponse>)> done);

 private:
  /// Tries the service's registered locations in order (§5.7: "Any process
  /// attempting to communicate with that service will then see multiple
  /// service locations from which to choose"); within each location,
  /// re-resolves on failure to follow migrations.
  void try_location(std::vector<std::string> locations, std::size_t index, Bytes wire,
                    std::function<void(Result<HttpResponse>)> done);
  void forward(const std::string& urn, const Bytes& wire, int attempts_left,
               std::function<void(Result<HttpResponse>)> done);

  SnipeProcess& process_;
};

/// Renders an HttpResponse as HTTP/1.0 wire text — the form a real browser
/// or `curl -0` would see if the gateway were bridged to a socket.
std::string to_http_text(const HttpResponse& response);

/// The ops console served over SNIPE's own HTTP machinery: an ordinary
/// SNIPE process that registers a service URI and exports observability
/// data as plain text.  Because it is a normal HttpServer, requests reach
/// it through the HttpGateway and keep working after it migrates.
///
///   GET /metrics[?prefix=srudp.]   registry scrape, optionally filtered
///   GET /health                    health_report() over a live snapshot
///   GET /flight[?host=a]           flight-recorder dump, optionally per host
///   GET /trace?id=<flow-or-msg>    trace_report() for one causal flow
///   GET /topo                      zone tree, per-link utilization, up/down
///
/// With a fleet store attached (set_fleet), the local surface grows its
/// fleet-wide counterpart, answered from collected beacons instead of this
/// process's globals:
///
///   GET /fleet/metrics[?prefix=]   fleet-merged registry scrape
///   GET /fleet/health              per-host liveness + merged health rollup
///   GET /fleet/flight[?host=a]     fleet flight timeline (merge-sorted)
///   GET /fleet/top[?n=5]           worst-n hosts (retransmit / delivery p99)
class OpsGateway {
 public:
  OpsGateway(SnipeProcess& process, std::string service_uri);

  /// Attaches a collector's fleet store; /fleet/* answers 404 until then.
  void set_fleet(const obs::FleetStore* fleet) { fleet_ = fleet; }

  /// The request dispatcher, public so tests can drive it without a
  /// simulated browser in the loop.
  HttpResponse handle(const HttpRequest& request) const;

  const std::string& service_uri() const { return server_.service_uri(); }
  std::uint64_t requests_served() const { return server_.requests_served(); }

 private:
  SnipeProcess& process_;
  HttpServer server_;
  const obs::FleetStore* fleet_ = nullptr;
};

}  // namespace snipe::core
