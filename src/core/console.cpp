#include "core/console.hpp"

#include <sstream>

#include "obs/metrics.hpp"
#include "util/strings.hpp"

namespace snipe::core {

void Console::interpret(const std::string& line, std::function<void(std::string)> reply) {
  std::istringstream parts(trim(line));
  std::string verb, arg;
  parts >> verb >> arg;

  if (verb == "ps" && !arg.empty()) {
    processes_on_host(arg, [reply = std::move(reply), arg](
                               Result<std::vector<std::string>> r) {
      if (!r) {
        reply("ps: " + r.error().to_string());
        return;
      }
      if (r.value().empty()) {
        reply("ps: no tasks recorded for " + arg);
        return;
      }
      reply(join(r.value(), "\n"));
    });
    return;
  }
  if (verb == "state" && !arg.empty()) {
    process_state(arg, [reply = std::move(reply), arg](Result<std::string> r) {
      reply(arg + ": " + (r.ok() ? r.value() : r.error().to_string()));
    });
    return;
  }
  if ((verb == "meta" || verb == "routers") && !arg.empty()) {
    bool routers_only = verb == "routers";
    query(arg, [reply = std::move(reply), routers_only](
                   Result<std::vector<rcds::Assertion>> r) {
      if (!r) {
        reply(r.error().to_string());
        return;
      }
      std::string out;
      for (const auto& a : r.value()) {
        if (routers_only && a.name != rcds::names::kGroupRouter) continue;
        out += a.name + " = " + a.value + "\n";
      }
      reply(out.empty() ? "(no matching metadata)" : out);
    });
    return;
  }
  if (verb == "where" && !arg.empty()) {
    process_.rc().lookup(arg, rcds::names::kProcHost,
                         [reply = std::move(reply), arg](Result<std::vector<std::string>> r) {
                           if (!r || r.value().empty())
                             reply("where: unknown process " + arg);
                           else
                             reply(arg + " is on " + r.value().front());
                         });
    return;
  }
  if (verb == "metrics") {
    // Operator scrape of the whole simulation's registry (optionally
    // filtered by prefix: "metrics srudp.").
    std::string out = obs::MetricsRegistry::global().format_text();
    if (!arg.empty()) {
      std::istringstream lines(out);
      std::string filtered, l;
      while (std::getline(lines, l))
        if (l.rfind(arg, 0) == 0) filtered += l + "\n";
      out = std::move(filtered);
    }
    reply(out.empty() ? "(no metrics recorded)" : out);
    return;
  }
  reply(
      "usage: ps <host-url> | state <urn> | meta <uri> | where <urn> | routers <group> | "
      "metrics [prefix]");
}

Bytes HttpRequest::encode() const {
  ByteWriter w;
  w.str(method);
  w.str(path);
  w.blob(body);
  return std::move(w).take();
}

Result<HttpRequest> HttpRequest::decode(const Bytes& data) {
  ByteReader r(data);
  HttpRequest req;
  auto method = r.str();
  if (!method) return method.error();
  req.method = method.value();
  auto path = r.str();
  if (!path) return path.error();
  req.path = path.value();
  auto body = r.blob();
  if (!body) return body.error();
  req.body = std::move(body).take();
  return req;
}

Bytes HttpResponse::encode() const {
  ByteWriter w;
  w.i32(status);
  w.blob(body);
  return std::move(w).take();
}

Result<HttpResponse> HttpResponse::decode(const Bytes& data) {
  ByteReader r(data);
  HttpResponse res;
  auto status = r.i32();
  if (!status) return status.error();
  res.status = status.value();
  auto body = r.blob();
  if (!body) return body.error();
  res.body = std::move(body).take();
  return res;
}

HttpServer::HttpServer(SnipeProcess& process, std::string service_uri, Handler handler)
    : process_(process), service_uri_(std::move(service_uri)), handler_(std::move(handler)) {
  // "register a binding between a URN or URL and its current location":
  // the service URI points at the process URN; the URN's address metadata
  // is maintained by SnipeProcess (including across migration).
  process_.rc().set(service_uri_, rcds::names::kServiceLocation, process_.urn(),
                    [](Result<void>) {});
  process_.rpc().serve(tags::kHttpRequest,
                       [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
                         auto request = HttpRequest::decode(body);
                         if (!request) return request.error();
                         ++served_;
                         return handler_(request.value()).encode();
                       });
}

void HttpGateway::request(const std::string& service_uri, HttpRequest request,
                          std::function<void(Result<HttpResponse>)> done) {
  process_.rc().lookup(
      service_uri, rcds::names::kServiceLocation,
      [this, wire = request.encode(), done = std::move(done)](
          Result<std::vector<std::string>> r) mutable {
        if (!r) {
          done(r.error());
          return;
        }
        if (r.value().empty()) {
          done(Error{Errc::not_found, "service not registered"});
          return;
        }
        // §5.7: a service may list several locations; try them in order.
        try_location(std::move(r).take(), 0, std::move(wire), std::move(done));
      });
}

void HttpGateway::try_location(std::vector<std::string> locations, std::size_t index,
                               Bytes wire, std::function<void(Result<HttpResponse>)> done) {
  if (index >= locations.size()) {
    done(Error{Errc::unreachable, "all service locations failed"});
    return;
  }
  std::string urn = locations[index];
  forward(urn, wire,
          2, [this, locations = std::move(locations), index, wire,
              done = std::move(done)](Result<HttpResponse> r) mutable {
            if (r.ok() || index + 1 >= locations.size()) {
              done(std::move(r));
              return;
            }
            try_location(std::move(locations), index + 1, std::move(wire), std::move(done));
          });
}

void HttpGateway::forward(const std::string& urn, const Bytes& wire, int attempts_left,
                          std::function<void(Result<HttpResponse>)> done) {
  process_.resolve(urn, [this, urn, wire, attempts_left,
                         done = std::move(done)](Result<simnet::Address> addr) mutable {
    if (!addr) {
      done(addr.error());
      return;
    }
    process_.rpc().call(
        addr.value(), tags::kHttpRequest, wire,
        [this, urn, wire, attempts_left, done = std::move(done)](Result<Bytes> r) mutable {
          if (r.ok()) {
            done(HttpResponse::decode(r.value()));
            return;
          }
          if (attempts_left > 1) {
            // The server may have migrated: drop the cached address and
            // re-resolve through RC (§3.7: the browser finds it "even
            // though it may migrate from one host to another").
            process_.invalidate_resolution(urn);
            forward(urn, wire, attempts_left - 1, std::move(done));
            return;
          }
          done(r.error());
        },
        duration::seconds(2));
  });
}

}  // namespace snipe::core
