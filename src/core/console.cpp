#include "core/console.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string_view>

#include "obs/flight.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace snipe::core {

namespace {

/// Keeps only the lines of `text` starting with `prefix` (the "metrics
/// srudp." filter, shared by the console verb and the /metrics endpoint).
std::string filter_lines(const std::string& text, const std::string& prefix) {
  if (prefix.empty()) return text;
  std::istringstream lines(text);
  std::string filtered, l;
  while (std::getline(lines, l))
    if (l.rfind(prefix, 0) == 0) filtered += l + "\n";
  return filtered;
}

std::string format_ms(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// Ratio of two counters by name, or -1 when the denominator is absent or
/// zero (nothing sent means no meaningful ratio, not a perfect one).
double counter_ratio(const obs::Snapshot& snapshot, const std::string& num,
                     const std::string& den) {
  double n = 0, d = 0;
  for (const auto& m : snapshot) {
    if (m.name == num) n = m.value;
    if (m.name == den) d = m.value;
  }
  return d > 0 ? n / d : -1;
}

}  // namespace

std::string health_report(const obs::Snapshot& snapshot) {
  std::string out;
  // Delivery latency: every transport publishes a "<transport>.delivery_ms"
  // histogram, so the rollup discovers transports instead of listing them.
  for (const auto& m : snapshot) {
    if (m.kind != obs::MetricValue::Kind::histogram) continue;
    constexpr std::string_view suffix = ".delivery_ms";
    if (m.name.size() <= suffix.size() ||
        m.name.compare(m.name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    std::string transport = m.name.substr(0, m.name.size() - suffix.size());
    out += transport + " delivery_ms p50=" + format_ms(m.p50) +
           " p95=" + format_ms(m.p95) + " p99=" + format_ms(m.p99) +
           " n=" + std::to_string(m.count) + "\n";
  }
  double srudp_retx = counter_ratio(snapshot, "srudp.fragments_retransmitted",
                                    "srudp.fragments_sent");
  if (srudp_retx >= 0)
    out += "srudp retransmit_ratio " + format_ms(srudp_retx) + "\n";
  double stream_retx = counter_ratio(snapshot, "stream.segments_retransmitted",
                                     "stream.segments_sent");
  if (stream_retx >= 0)
    out += "stream retransmit_ratio " + format_ms(stream_retx) + "\n";
  for (const auto& m : snapshot)
    if (m.name == "multipath.route_switches")
      out += "route_failovers " + std::to_string(static_cast<std::uint64_t>(m.value)) +
             "\n";
  return out.empty() ? "(no health data)" : out;
}

std::string trace_report(const std::vector<obs::TraceEvent>& events,
                         const std::string& query) {
  // The operator may paste a flow id ("0x9f3...", decimal) or a message id
  // from a log line; a message id resolves through any event carrying a
  // matching "msg" argument.
  std::uint64_t id = 0;
  try {
    id = std::stoull(query, nullptr, query.rfind("0x", 0) == 0 ? 16 : 10);
  } catch (...) {
    id = 0;
  }
  bool direct = false;
  for (const auto& e : events)
    if (e.id != 0 && e.id == id) {
      direct = true;
      break;
    }
  if (!direct) {
    id = 0;
    for (const auto& e : events) {
      if (e.id == 0) continue;
      for (const auto& [k, v] : e.args)
        if (k == "msg" && v == query) {
          id = e.id;
          break;
        }
      if (id != 0) break;
    }
  }
  if (id == 0) return "(no flow events for " + query + ")";

  char idbuf[32];
  std::snprintf(idbuf, sizeof(idbuf), "0x%llx", static_cast<unsigned long long>(id));
  std::string out = "flow " + std::string(idbuf) + ":\n";
  for (const auto& e : events) {
    if (e.id != id) continue;
    out += "  " + format_time(e.ts) + " " + e.name;
    for (const auto& [k, v] : e.args) out += " " + k + "=" + v;
    out += "\n";
  }
  return out;
}

std::string fleet_health_report(const obs::FleetStore& store, std::int64_t now_ns) {
  auto hosts = store.health(now_ns);
  if (hosts.empty()) return "(no fleet telemetry)";
  std::size_t stale_count = 0;
  for (const auto& h : hosts) stale_count += h.stale ? 1 : 0;
  std::string out = "fleet hosts: " + std::to_string(hosts.size()) + " (" +
                    std::to_string(stale_count) + " stale)\n";
  char line[192];
  for (const auto& h : hosts) {
    std::snprintf(line, sizeof(line),
                  "  %-16s beacons=%llu resyncs=%llu last=%s missed=%.1f%s\n",
                  h.host.c_str(), static_cast<unsigned long long>(h.beacons),
                  static_cast<unsigned long long>(h.resyncs),
                  format_time(h.last_arrival).c_str(), h.missed,
                  h.stale ? " STALE" : "");
    out += line;
  }
  // The rollup reuses the local health report over the fleet-merged
  // snapshot: merged sketches make the percentiles exact for the union.
  out += "fleet rollup:\n";
  out += health_report(store.merged_snapshot());
  return out;
}

void Console::interpret(const std::string& line, std::function<void(std::string)> reply) {
  std::istringstream parts(trim(line));
  std::string verb, arg;
  parts >> verb >> arg;

  if (verb == "ps" && !arg.empty()) {
    processes_on_host(arg, [reply = std::move(reply), arg](
                               Result<std::vector<std::string>> r) {
      if (!r) {
        reply("ps: " + r.error().to_string());
        return;
      }
      if (r.value().empty()) {
        reply("ps: no tasks recorded for " + arg);
        return;
      }
      reply(join(r.value(), "\n"));
    });
    return;
  }
  if (verb == "state" && !arg.empty()) {
    process_state(arg, [reply = std::move(reply), arg](Result<std::string> r) {
      reply(arg + ": " + (r.ok() ? r.value() : r.error().to_string()));
    });
    return;
  }
  if ((verb == "meta" || verb == "routers") && !arg.empty()) {
    bool routers_only = verb == "routers";
    query(arg, [reply = std::move(reply), routers_only](
                   Result<std::vector<rcds::Assertion>> r) {
      if (!r) {
        reply(r.error().to_string());
        return;
      }
      std::string out;
      for (const auto& a : r.value()) {
        if (routers_only && a.name != rcds::names::kGroupRouter) continue;
        out += a.name + " = " + a.value + "\n";
      }
      reply(out.empty() ? "(no matching metadata)" : out);
    });
    return;
  }
  if (verb == "where" && !arg.empty()) {
    process_.rc().lookup(arg, rcds::names::kProcHost,
                         [reply = std::move(reply), arg](Result<std::vector<std::string>> r) {
                           if (!r || r.value().empty())
                             reply("where: unknown process " + arg);
                           else
                             reply(arg + " is on " + r.value().front());
                         });
    return;
  }
  if (verb == "metrics") {
    // Operator scrape of the whole simulation's registry (optionally
    // filtered by prefix: "metrics srudp.").
    std::string out = filter_lines(obs::MetricsRegistry::global().format_text(), arg);
    reply(out.empty() ? "(no metrics recorded)" : out);
    return;
  }
  if (verb == "trace" && !arg.empty()) {
    reply(trace_report(obs::Tracer::global().events(), arg));
    return;
  }
  if (verb == "flight") {
    reply(obs::FlightRecorder::global().dump(arg));
    return;
  }
  if (verb == "health") {
    reply(health_report(obs::MetricsRegistry::global().snapshot()));
    return;
  }
  if (verb == "topo") {
    // Where contention and partitions live: the zone tree with per-link
    // utilization and up/down state, straight from the simulated world.
    reply(process_.host().world()->describe_topology());
    return;
  }
  if (verb == "fleet") {
    if (fleet_ == nullptr) {
      reply("fleet: no collector attached to this console");
      return;
    }
    std::string arg2;
    parts >> arg2;
    if (arg == "metrics") {
      std::string out = fleet_->format_metrics(arg2);
      reply(out.empty() ? "(no fleet metrics)" : out);
      return;
    }
    if (arg == "health") {
      reply(fleet_health_report(*fleet_, obs::Tracer::global().now()));
      return;
    }
    if (arg == "flight") {
      reply(fleet_->format_flight(arg2));
      return;
    }
    if (arg == "top") {
      std::size_t n = 5;
      if (!arg2.empty()) {
        char* end = nullptr;
        unsigned long long v = std::strtoull(arg2.c_str(), &end, 10);
        if (end != arg2.c_str() && v > 0) n = static_cast<std::size_t>(v);
      }
      reply(fleet_->format_top(n));
      return;
    }
    reply("usage: fleet metrics [prefix] | fleet health | fleet flight [host] | "
          "fleet top [n]");
    return;
  }
  reply(
      "usage: ps <host-url> | state <urn> | meta <uri> | where <urn> | routers <group> | "
      "metrics [prefix] | trace <id> | flight [host] | health | topo | fleet <sub> [arg]");
}

Bytes HttpRequest::encode() const {
  ByteWriter w;
  w.str(method);
  w.str(path);
  w.blob(body);
  return std::move(w).take();
}

Result<HttpRequest> HttpRequest::decode(const Bytes& data) {
  ByteReader r(data);
  HttpRequest req;
  auto method = r.str();
  if (!method) return method.error();
  req.method = method.value();
  auto path = r.str();
  if (!path) return path.error();
  req.path = path.value();
  auto body = r.blob();
  if (!body) return body.error();
  req.body = std::move(body).take();
  return req;
}

Bytes HttpResponse::encode() const {
  ByteWriter w;
  w.i32(status);
  w.blob(body);
  return std::move(w).take();
}

Result<HttpResponse> HttpResponse::decode(const Bytes& data) {
  ByteReader r(data);
  HttpResponse res;
  auto status = r.i32();
  if (!status) return status.error();
  res.status = status.value();
  auto body = r.blob();
  if (!body) return body.error();
  res.body = std::move(body).take();
  return res;
}

HttpServer::HttpServer(SnipeProcess& process, std::string service_uri, Handler handler)
    : process_(process), service_uri_(std::move(service_uri)), handler_(std::move(handler)) {
  // "register a binding between a URN or URL and its current location":
  // the service URI points at the process URN; the URN's address metadata
  // is maintained by SnipeProcess (including across migration).
  process_.rc().set(service_uri_, rcds::names::kServiceLocation, process_.urn(),
                    [](Result<void>) {});
  process_.rpc().serve(tags::kHttpRequest,
                       [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
                         auto request = HttpRequest::decode(body);
                         if (!request) return request.error();
                         ++served_;
                         return handler_(request.value()).encode();
                       });
}

void HttpGateway::request(const std::string& service_uri, HttpRequest request,
                          std::function<void(Result<HttpResponse>)> done) {
  process_.rc().lookup(
      service_uri, rcds::names::kServiceLocation,
      [this, wire = request.encode(), done = std::move(done)](
          Result<std::vector<std::string>> r) mutable {
        if (!r) {
          done(r.error());
          return;
        }
        if (r.value().empty()) {
          done(Error{Errc::not_found, "service not registered"});
          return;
        }
        // §5.7: a service may list several locations; try them in order.
        try_location(std::move(r).take(), 0, std::move(wire), std::move(done));
      });
}

void HttpGateway::try_location(std::vector<std::string> locations, std::size_t index,
                               Bytes wire, std::function<void(Result<HttpResponse>)> done) {
  if (index >= locations.size()) {
    done(Error{Errc::unreachable, "all service locations failed"});
    return;
  }
  std::string urn = locations[index];
  forward(urn, wire,
          2, [this, locations = std::move(locations), index, wire,
              done = std::move(done)](Result<HttpResponse> r) mutable {
            if (r.ok() || index + 1 >= locations.size()) {
              done(std::move(r));
              return;
            }
            try_location(std::move(locations), index + 1, std::move(wire), std::move(done));
          });
}

void HttpGateway::forward(const std::string& urn, const Bytes& wire, int attempts_left,
                          std::function<void(Result<HttpResponse>)> done) {
  process_.resolve(urn, [this, urn, wire, attempts_left,
                         done = std::move(done)](Result<simnet::Address> addr) mutable {
    if (!addr) {
      done(addr.error());
      return;
    }
    process_.rpc().call(
        addr.value(), tags::kHttpRequest, wire,
        [this, urn, wire, attempts_left, done = std::move(done)](Result<Bytes> r) mutable {
          if (r.ok()) {
            done(HttpResponse::decode(r.value()));
            return;
          }
          if (attempts_left > 1) {
            // The server may have migrated: drop the cached address and
            // re-resolve through RC (§3.7: the browser finds it "even
            // though it may migrate from one host to another").
            process_.invalidate_resolution(urn);
            forward(urn, wire, attempts_left - 1, std::move(done));
            return;
          }
          done(r.error());
        },
        duration::seconds(2));
  });
}

std::string to_http_text(const HttpResponse& response) {
  const char* reason = response.status == 200   ? "OK"
                       : response.status == 400 ? "Bad Request"
                       : response.status == 404 ? "Not Found"
                                                : "Error";
  std::string out = "HTTP/1.0 " + std::to_string(response.status) + " " + reason +
                    "\r\nContent-Type: text/plain\r\nContent-Length: " +
                    std::to_string(response.body.size()) + "\r\n\r\n";
  out.append(response.body.begin(), response.body.end());
  return out;
}

namespace {

/// Splits "/metrics?prefix=srudp." into the path and its query parameters.
/// No percent-decoding: every value the endpoints accept (metric prefixes,
/// host names, flow ids) is plain text already.
std::pair<std::string, std::map<std::string, std::string>> parse_target(
    const std::string& target) {
  auto qpos = target.find('?');
  std::string path = target.substr(0, qpos);
  std::map<std::string, std::string> params;
  if (qpos != std::string::npos) {
    std::istringstream query(target.substr(qpos + 1));
    std::string pair;
    while (std::getline(query, pair, '&')) {
      auto eq = pair.find('=');
      if (eq == std::string::npos)
        params[pair] = "";
      else
        params[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
  }
  return {std::move(path), std::move(params)};
}

HttpResponse text_response(int status, const std::string& text) {
  HttpResponse res;
  res.status = status;
  res.body = to_bytes(text);
  return res;
}

}  // namespace

OpsGateway::OpsGateway(SnipeProcess& process, std::string service_uri)
    : process_(process),
      server_(process, std::move(service_uri),
              [this](const HttpRequest& request) { return handle(request); }) {}

HttpResponse OpsGateway::handle(const HttpRequest& request) const {
  if (request.method != "GET")
    return text_response(400, "only GET is supported\n");
  auto [path, params] = parse_target(request.path);
  if (path == "/metrics") {
    std::string out =
        filter_lines(obs::MetricsRegistry::global().format_text(), params["prefix"]);
    return text_response(200, out.empty() ? "(no metrics recorded)\n" : out);
  }
  if (path == "/health")
    return text_response(200, health_report(obs::MetricsRegistry::global().snapshot()));
  if (path == "/flight")
    return text_response(200, obs::FlightRecorder::global().dump(params["host"]) + "\n");
  if (path == "/trace") {
    auto it = params.find("id");
    if (it == params.end() || it->second.empty())
      return text_response(400, "usage: /trace?id=<flow-or-msg-id>\n");
    return text_response(200, trace_report(obs::Tracer::global().events(), it->second));
  }
  if (path == "/topo")
    return text_response(200, process_.host().world()->describe_topology());
  if (path.rfind("/fleet/", 0) == 0) {
    if (fleet_ == nullptr)
      return text_response(404, "no fleet collector attached\n");
    if (path == "/fleet/metrics") {
      std::string out = fleet_->format_metrics(params["prefix"]);
      return text_response(200, out.empty() ? "(no fleet metrics)\n" : out);
    }
    if (path == "/fleet/health")
      return text_response(200,
                           fleet_health_report(*fleet_, obs::Tracer::global().now()));
    if (path == "/fleet/flight")
      return text_response(200, fleet_->format_flight(params["host"]) + "\n");
    if (path == "/fleet/top") {
      std::size_t n = 5;
      if (auto it = params.find("n"); it != params.end() && !it->second.empty()) {
        char* end = nullptr;
        unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
        if (end != it->second.c_str() && v > 0) n = static_cast<std::size_t>(v);
      }
      return text_response(200, fleet_->format_top(n));
    }
  }
  return text_response(404, "not found: " + path + "\n");
}

}  // namespace snipe::core
