// The SNIPE client library: globally named processes (§3.4, §5.2.3, §5.6).
//
// A SnipeProcess is one endpoint of the metacomputer.  It has a
// distinguished URN, publishes its communication address and host as RC
// metadata, and exchanges tagged messages with any other process by URN —
// "any SNIPE process can potentially communicate ... with any other
// process" (§3.1); there is no virtual machine boundary.
//
// Delivery path: resolve URN -> address through RC (cached), then an
// acknowledged call over SRUDP.  If the destination moved (migration) or
// died, the cached address stops acking; the library re-resolves through
// RC and retries — exactly the paper's §5.6 behaviour ("Any processes that
// do not notice its migration ... will find its new location via the RC
// servers").  Combined with SRUDP's sender-side buffering, "processes with
// open communications are guaranteed no loss of data while migration is in
// progress".
//
// Self-initiated migration (§5.6: "the migrating process initiating its
// own migration") is `migrate_to`: the state moves to a new host, RC is
// updated, every process on the notify list is told directly, and the old
// incarnation lingers briefly as a relay/redirect.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "daemon/daemon.hpp"
#include "rcds/client.hpp"
#include "rm/resource_manager.hpp"
#include "transport/rpc.hpp"

namespace snipe::core {

namespace tags {
inline constexpr std::uint32_t kDeliver = 150;       ///< user message (acked)
inline constexpr std::uint32_t kMigrated = 151;      ///< notify-list migration notice
inline constexpr std::uint32_t kMcastJoin = 152;
inline constexpr std::uint32_t kMcastSend = 153;     ///< origin -> router
inline constexpr std::uint32_t kMcastRelay = 154;    ///< router -> router
inline constexpr std::uint32_t kMcastDeliver = 155;  ///< router -> member
inline constexpr std::uint32_t kHttpRequest = 156;   ///< console gateway
}  // namespace tags

struct ProcessConfig {
  /// Resolution cache entries expire after this long.
  SimDuration resolve_ttl = duration::seconds(30);
  /// Delivery attempts before giving up (each attempt re-resolves).
  int delivery_attempts = 3;
  /// Per-attempt acknowledgement timeout.
  SimDuration delivery_timeout = duration::seconds(2);
  /// How long the old incarnation relays after migration (§5.6: "act as a
  /// relay or redirect for a short period").
  SimDuration relay_grace = duration::seconds(10);
};

struct ProcessStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered_in = 0;
  std::uint64_t re_resolutions = 0;
  std::uint64_t send_failures = 0;
  std::uint64_t relayed = 0;
  std::uint64_t duplicates_dropped = 0;
};

class SnipeProcess {
 public:
  /// (source URN, user tag, payload) delivery callback.
  using MessageHandler =
      std::function<void(const std::string& src_urn, std::uint32_t tag, Bytes body)>;
  using DoneHandler = std::function<void(Result<void>)>;
  using SpawnHandler = std::function<void(Result<daemon::SpawnReply>)>;

  /// Creates the process on `host`, binds an endpoint, registers the URN.
  SnipeProcess(simnet::Host& host, const std::string& name,
               std::vector<simnet::Address> rc_replicas, ProcessConfig config = {});
  ~SnipeProcess();

  const std::string& urn() const { return urn_; }
  simnet::Address address() const { return rpc_->address(); }
  simnet::Host& host() { return *host_; }

  void set_message_handler(MessageHandler handler) { handler_ = std::move(handler); }

  /// Sends a tagged message to another process by URN.  `done` (optional)
  /// fires when the destination acknowledged, or with the final error.
  ///
  /// §5.7 replicated processes: if the destination's registered address is
  /// a multicast group URN (a "pseudo-process ... with the multicast group
  /// listed as the communications URL"), the message is multicast to every
  /// replica through the group's routers instead; members receive it via
  /// their MulticastGroup handler as an encoded UserMessage.
  void send(const std::string& dst_urn, std::uint32_t tag, Bytes body,
            DoneHandler done = nullptr);

  /// Registers `pseudo_urn` as a §5.7 replicated pseudo-process backed by
  /// the multicast group `group_urn`.
  void register_pseudo_process(const std::string& pseudo_urn, const std::string& group_urn,
                               DoneHandler done = nullptr);

  /// Registers `watcher_urn` on this process's notify list (§5.2.3); the
  /// watcher is told directly when this process migrates.
  void add_to_notify_list(const std::string& watcher_urn, DoneHandler done = nullptr);

  /// Spawn helpers (§5.5).  `spawn_via_host` first consults the host's RC
  /// metadata: "If the RC metadata for a host contains a list of brokers,
  /// the request to spawn is sent to one of the brokers for that host."
  void spawn_via_rm(const simnet::Address& rm, daemon::SpawnRequest request,
                    SpawnHandler done);
  void spawn_via_host(const std::string& host_name, daemon::SpawnRequest request,
                      SpawnHandler done);

  /// Self-initiated migration (§5.6).  Moves this process's identity to
  /// `new_host`; completes with the address change done, RC updated,
  /// notify list informed, and this (old) incarnation demoted to a relay
  /// that forwards for `relay_grace` and then falls silent.  The message
  /// handler transfers to the new incarnation.
  void migrate_to(simnet::Host& new_host, DoneHandler done = nullptr);

  /// URN -> current address resolution with caching.
  void resolve(const std::string& urn, std::function<void(Result<simnet::Address>)> done);
  void invalidate_resolution(const std::string& urn) { resolve_cache_.erase(urn); }

  /// Internal: multicast groups register here so one endpoint can serve
  /// many groups (dispatch is by group URN inside the message).
  void register_group(const std::string& group_urn, class MulticastGroup* group);
  void unregister_group(const std::string& group_urn);

  rcds::RcClient& rc() { return *rc_; }
  transport::RpcEndpoint& rpc() { return *rpc_; }
  simnet::Engine& engine() { return *engine_; }
  const ProcessStats& stats() const { return stats_; }

 private:
  friend class MulticastGroup;
  void bind_handlers();
  void register_in_rc();
  void attempt_send(const std::string& dst_urn, Bytes wire, int attempts_left,
                    DoneHandler done, bool resolve_fresh);
  /// §5.7 pseudo-process delivery: pushes `wire` (an encoded UserMessage)
  /// into the group's router mesh without being a member.
  void send_to_group(const std::string& group_urn, Bytes wire, DoneHandler done);

  simnet::Host* host_;
  simnet::Engine* engine_;
  std::string urn_;
  ProcessConfig config_;
  std::unique_ptr<transport::RpcEndpoint> rpc_;
  std::unique_ptr<rcds::RcClient> rc_;
  MessageHandler handler_;
  struct CachedAddress {
    simnet::Address address;
    SimTime expires;
  };
  std::map<std::string, CachedAddress> resolve_cache_;
  std::vector<std::string> notify_list_;  ///< mirrors our RC notify metadata
  std::map<std::string, class MulticastGroup*> groups_;
  std::uint64_t pseudo_seq_ = 1;  ///< msg ids for §5.7 group sends
  ProcessStats stats_;
  Logger log_;
};

/// Wire form of a user message.
struct UserMessage {
  std::string src_urn;
  std::uint32_t tag = 0;
  Bytes body;

  Bytes encode() const;
  static Result<UserMessage> decode(const Bytes& data);
};

}  // namespace snipe::core
