#include "core/group.hpp"

#include <algorithm>
#include <limits>

#include "files/fileserver.hpp"
#include "util/uri.hpp"

namespace snipe::core {

namespace {

struct McastPayload {
  std::string group;
  std::string origin;
  std::uint64_t msg_id = 0;
  Bytes body;

  Bytes encode() const {
    ByteWriter w;
    w.str(group);
    w.str(origin);
    w.u64(msg_id);
    w.blob(body);
    return std::move(w).take();
  }
  static Result<McastPayload> decode(const Bytes& data) {
    ByteReader r(data);
    McastPayload p;
    auto group = r.str();
    if (!group) return group.error();
    p.group = group.value();
    auto origin = r.str();
    if (!origin) return origin.error();
    p.origin = origin.value();
    auto id = r.u64();
    if (!id) return id.error();
    p.msg_id = id.value();
    auto body = r.blob();
    if (!body) return body.error();
    p.body = std::move(body).take();
    return p;
  }
  std::string dedup_key() const { return origin + "#" + std::to_string(msg_id); }
};

}  // namespace

Bytes encode_group_payload(const std::string& group, const std::string& origin,
                           std::uint64_t msg_id, const Bytes& body) {
  return McastPayload{group, origin, msg_id, body}.encode();
}

MulticastGroup::MulticastGroup(SnipeProcess& process, const std::string& group_urn,
                               GroupConfig config, std::function<void(Result<void>)> ready)
    : process_(process),
      group_urn_(group_urn),
      config_(config),
      log_("group@" + process.urn() + "/" + group_urn) {
  process_.register_group(group_urn_, this);
  refresh(std::move(ready));
}

MulticastGroup::~MulticastGroup() {
  process_.engine().cancel(refresh_timer_);
  process_.unregister_group(group_urn_);
}

std::string MulticastGroup::router_url() const {
  auto addr = process_.address();
  return "snipe://" + addr.host + ":" + std::to_string(addr.port) + "/mcast";
}

void MulticastGroup::refresh(std::function<void(Result<void>)> ready) {
  // Periodic re-discovery keeps the router list fresh as routers come and
  // go (§5.2.4's notify list for "the set of multicast routers changes" is
  // modelled as polling the registry on the virtual clock).
  refresh_timer_ = process_.engine().schedule_weak(config_.refresh_period,
                                              [this] { refresh(nullptr); });
  if (!process_.host().up() && ready == nullptr) return;  // host is down
  process_.rc().lookup(
      group_urn_, rcds::names::kGroupRouter,
      [this, ready = std::move(ready)](Result<std::vector<std::string>> r) {
        if (!r) {
          if (ready) ready(r.error());
          return;
        }
        std::vector<simnet::Address> routers;
        for (const auto& url : r.value()) {
          if (auto uri = parse_uri(url); uri.ok())
            routers.push_back(simnet::Address{uri.value().host,
                                              static_cast<std::uint16_t>(uri.value().port)});
        }
        std::sort(routers.begin(), routers.end());
        routers_ = routers;
        // If our process migrated, the router URL we registered points at
        // the old host: move the registration to the new address.
        if (router_ && !registered_router_url_.empty() &&
            registered_router_url_ != router_url()) {
          log_.debug("re-registering router after migration: ", router_url());
          process_.rc().remove(group_urn_, rcds::names::kGroupRouter,
                               registered_router_url_, [](Result<void>) {});
          process_.rc().add(group_urn_, rcds::names::kGroupRouter, router_url(),
                            [](Result<void>) {});
          registered_router_url_ = router_url();
          routers_.push_back(process_.address());
          std::sort(routers_.begin(), routers_.end());
        }
        maybe_elect_self(routers, std::move(ready));
      });
}

void MulticastGroup::maybe_elect_self(const std::vector<simnet::Address>& routers,
                                      std::function<void(Result<void>)> ready) {
  // Election heuristic (§5.4): become a router if the group is short of
  // routers, or if no existing router shares a network with us.
  bool shares_network = false;
  for (const auto& r : routers) {
    if (process_.host().world()->net_distance(process_.host().name(), r.host) <
        simnet::World::kUnreachable)
      shares_network = true;
  }
  bool should_host = !router_ && !left_ &&
                     (static_cast<int>(routers.size()) < config_.desired_routers ||
                      (!routers.empty() && !shares_network));
  bool already_registered =
      std::find(routers_.begin(), routers_.end(), process_.address()) != routers_.end();

  if (should_host && !already_registered) {
    router_ = true;
    registered_router_url_ = router_url();
    routers_.push_back(process_.address());
    std::sort(routers_.begin(), routers_.end());
    log_.debug("electing self as router (", routers.size(), " existing)");
    process_.rc().add(group_urn_, rcds::names::kGroupRouter, router_url(),
                      [this, ready = std::move(ready)](Result<void> r) {
                        if (!r) {
                          if (ready) ready(r);
                          return;
                        }
                        register_with_routers();
                        if (ready) ready(ok_result());
                      });
    return;
  }
  register_with_routers();
  if (ready) ready(ok_result());
}

void MulticastGroup::register_with_routers() {
  if (left_) return;
  ByteWriter w;
  w.str(group_urn_);
  w.str(process_.urn());
  w.str(process_.address().host);
  w.u16(process_.address().port);
  Bytes join = std::move(w).take();
  for (const auto& router : routers_) {
    if (router == process_.address()) {
      // Register with our own router directly.
      router_state_.members[process_.urn()] =
          Member{process_.address(),
                 process_.engine().now() + config_.membership_ttl};
      continue;
    }
    process_.rpc().call(
        router, tags::kMcastJoin, join,
        [this, router](Result<Bytes> r) {
          if (r.ok()) {
            join_failures_.erase(router);
            return;
          }
          // A router that stops answering joins is gone (died, or its
          // process migrated away).  After a few misses, retract its RC
          // registration so the whole group stops addressing it — the
          // §5.2.4 "set of multicast routers changes" event.
          if (++join_failures_[router] < config_.router_prune_after) return;
          join_failures_.erase(router);
          std::string url = "snipe://" + router.host + ":" +
                            std::to_string(router.port) + "/mcast";
          log_.warn("pruning unresponsive router ", url);
          process_.rc().remove(group_urn_, rcds::names::kGroupRouter, url,
                               [](Result<void>) {});
          routers_.erase(std::remove(routers_.begin(), routers_.end(), router),
                         routers_.end());
        },
        duration::seconds(2));
  }
}

Result<Bytes> MulticastGroup::on_join(const simnet::Address& from, const Bytes& body) {
  if (!router_) return Result<Bytes>(Errc::state_error, "not a router");
  ByteReader r(body);
  auto group = r.str();
  auto urn = r.str();
  auto host = r.str();
  auto port = r.u16();
  if (!group || !urn || !host || !port) return Error{Errc::corrupt, "bad join"};
  router_state_.members[urn.value()] =
      Member{simnet::Address{host.value(), port.value()},
             process_.engine().now() + config_.membership_ttl};
  (void)from;
  return Bytes{};
}

void MulticastGroup::send(Bytes body) {
  McastPayload payload{group_urn_, process_.urn(), next_msg_id_++, std::move(body)};
  Bytes wire = payload.encode();
  ++stats_.sent;
  // "any message sent to that group is initially sent to more than half of
  // the routers for that group" (§5.4).
  std::size_t majority = routers_.size() / 2 + 1;
  std::size_t sent = 0;
  for (const auto& router : routers_) {
    if (sent >= majority) break;
    ++sent;
    if (router == process_.address()) {
      on_mcast(wire, /*is_relay=*/false);
    } else {
      process_.rpc().notify(router, tags::kMcastSend, wire);
    }
  }
  if (routers_.empty()) log_.warn("no routers known for ", group_urn_);
}

void MulticastGroup::on_mcast(const Bytes& body, bool is_relay) {
  if (!router_) return;
  auto payload = McastPayload::decode(body);
  if (!payload) return;
  if (!router_state_.seen.insert(payload.value().dedup_key()).second) {
    ++stats_.duplicates_dropped;
    return;
  }
  // Deliver to every *live* member registered with this router.
  // Memberships are soft state: entries that were not refreshed within the
  // TTL belong to dead or departed members and are dropped rather than
  // accumulating undeliverable retransmission traffic.
  for (auto it = router_state_.members.begin(); it != router_state_.members.end();) {
    if (it->second.expires <= process_.engine().now()) {
      log_.debug("expiring membership of ", it->first);
      it = router_state_.members.erase(it);
      continue;
    }
    ++stats_.router_forwards;
    if (it->second.address == process_.address()) {
      on_deliver(body);
    } else {
      process_.rpc().notify(it->second.address, tags::kMcastDeliver, body);
    }
    ++it;
  }
  // ... and relay to the other routers so members registered elsewhere get
  // it too (their routers dedup).
  if (!is_relay) {
    for (const auto& router : routers_) {
      if (router == process_.address()) continue;
      ++stats_.router_relays;
      process_.rpc().notify(router, tags::kMcastRelay, body);
    }
  }
}

void MulticastGroup::on_deliver(const Bytes& body) {
  auto payload = McastPayload::decode(body);
  if (!payload) return;
  if (!member_seen_.insert(payload.value().dedup_key()).second) {
    ++stats_.duplicates_dropped;
    return;
  }
  ++stats_.delivered;
  if (handler_) handler_(payload.value().origin, std::move(payload.value().body));
}

void MulticastGroup::leave() {
  left_ = true;
  process_.engine().cancel(refresh_timer_);
  refresh_timer_ = simnet::TimerId{};
  // Deregister membership from every router; a hosted router deregisters
  // its RC record so new joins stop finding it.
  if (router_) {
    process_.rc().remove(group_urn_, rcds::names::kGroupRouter, router_url(),
                         [](Result<void>) {});
  }
}

}  // namespace snipe::core
