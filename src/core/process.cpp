#include "core/process.hpp"

#include <algorithm>

#include "core/group.hpp"
#include "obs/trace.hpp"
#include "util/strings.hpp"
#include "util/uri.hpp"

namespace snipe::core {

Bytes UserMessage::encode() const {
  ByteWriter w;
  w.str(src_urn);
  w.u32(tag);
  w.blob(body);
  return std::move(w).take();
}

Result<UserMessage> UserMessage::decode(const Bytes& data) {
  ByteReader r(data);
  UserMessage m;
  auto src = r.str();
  if (!src) return src.error();
  m.src_urn = src.value();
  auto tag = r.u32();
  if (!tag) return tag.error();
  m.tag = tag.value();
  auto body = r.blob();
  if (!body) return body.error();
  m.body = std::move(body).take();
  return m;
}

SnipeProcess::SnipeProcess(simnet::Host& host, const std::string& name,
                           std::vector<simnet::Address> rc_replicas, ProcessConfig config)
    : host_(&host),
      engine_(&host.engine()),
      urn_(starts_with(name, "urn:") ? name : process_urn(name)),
      config_(config),
      rpc_(std::make_unique<transport::RpcEndpoint>(host, 0)),
      rc_(std::make_unique<rcds::RcClient>(*rpc_, std::move(rc_replicas))),
      log_("proc@" + urn_) {
  bind_handlers();
  register_in_rc();
}

SnipeProcess::~SnipeProcess() = default;

void SnipeProcess::bind_handlers() {
  rpc_->serve(tags::kDeliver,
              [this](const simnet::Address& from, const Bytes& body) -> Result<Bytes> {
                auto msg = UserMessage::decode(body);
                if (!msg) return msg.error();
                ++stats_.delivered_in;
                if (handler_)
                  handler_(msg.value().src_urn, msg.value().tag,
                           std::move(msg.value().body));
                (void)from;
                return Bytes{};
              });
  // Multicast dispatch: all three verbs carry the group URN first; route
  // to the registered MulticastGroup instance (see core/group.cpp).
  auto group_of = [](const Bytes& body) -> std::string {
    ByteReader r(body);
    auto g = r.str();
    return g ? g.value() : std::string();
  };
  rpc_->serve(tags::kMcastJoin,
              [this, group_of](const simnet::Address& from, const Bytes& body) -> Result<Bytes> {
                auto it = groups_.find(group_of(body));
                if (it == groups_.end())
                  return Result<Bytes>(Errc::not_found, "not a router for that group");
                return it->second->on_join(from, body);
              });
  rpc_->on_notify(tags::kMcastSend, [this, group_of](const simnet::Address&, const Bytes& body) {
    auto it = groups_.find(group_of(body));
    if (it != groups_.end()) it->second->on_mcast(body, /*is_relay=*/false);
  });
  rpc_->on_notify(tags::kMcastRelay, [this, group_of](const simnet::Address&, const Bytes& body) {
    auto it = groups_.find(group_of(body));
    if (it != groups_.end()) it->second->on_mcast(body, /*is_relay=*/true);
  });
  rpc_->on_notify(tags::kMcastDeliver,
                  [this, group_of](const simnet::Address&, const Bytes& body) {
                    auto it = groups_.find(group_of(body));
                    if (it != groups_.end()) it->second->on_deliver(body);
                  });
  rpc_->on_notify(tags::kMigrated, [this](const simnet::Address&, const Bytes& body) {
    // A process on whose notify list we appear has moved: refresh our
    // cached resolution immediately.
    ByteReader r(body);
    auto urn = r.str();
    auto host = r.str();
    auto port = r.u16();
    if (!urn || !host || !port) return;
    resolve_cache_[urn.value()] =
        CachedAddress{{host.value(), port.value()}, engine_->now() + config_.resolve_ttl};
    log_.debug("notified: ", urn.value(), " moved to ", host.value());
  });
}

void SnipeProcess::register_in_rc() {
  rc_->apply(urn_,
             {rcds::op_set(rcds::names::kProcAddress,
                           "snipe://" + host_->name() + ":" +
                               std::to_string(rpc_->address().port) + "/proc"),
              rcds::op_set(rcds::names::kProcHost, host_->name()),
              rcds::op_set(rcds::names::kProcState, "running")},
             [this](Result<std::vector<rcds::Assertion>> r) {
               if (!r) log_.warn("RC registration failed: ", r.error().to_string());
             });
}

void SnipeProcess::resolve(const std::string& urn,
                           std::function<void(Result<simnet::Address>)> done) {
  auto it = resolve_cache_.find(urn);
  if (it != resolve_cache_.end() && it->second.expires > engine_->now()) {
    done(it->second.address);
    return;
  }
  rc_->lookup(urn, rcds::names::kProcAddress,
              [this, urn, done = std::move(done)](Result<std::vector<std::string>> r) {
                if (!r) {
                  done(r.error());
                  return;
                }
                if (r.value().empty()) {
                  done(Error{Errc::not_found, "no address registered for " + urn});
                  return;
                }
                const std::string& value = r.value().back();
                if (starts_with(value, "urn:")) {
                  // §5.7: a pseudo-process whose address is a group URN.
                  // Signalled to attempt_send via a distinguished error.
                  done(Error{Errc::state_error, "group:" + value});
                  return;
                }
                auto uri = parse_uri(value);
                if (!uri) {
                  done(uri.error());
                  return;
                }
                simnet::Address address{uri.value().host,
                                        static_cast<std::uint16_t>(uri.value().port)};
                resolve_cache_[urn] =
                    CachedAddress{address, engine_->now() + config_.resolve_ttl};
                done(address);
              });
}

void SnipeProcess::send(const std::string& dst_urn, std::uint32_t tag, Bytes body,
                        DoneHandler done) {
  ++stats_.sent;
  UserMessage msg{urn_, tag, std::move(body)};
  attempt_send(dst_urn, msg.encode(), config_.delivery_attempts, std::move(done),
               /*resolve_fresh=*/false);
}

void SnipeProcess::attempt_send(const std::string& dst_urn, Bytes wire, int attempts_left,
                                DoneHandler done, bool resolve_fresh) {
  if (resolve_fresh) {
    invalidate_resolution(dst_urn);
    ++stats_.re_resolutions;
  }
  resolve(dst_urn, [this, dst_urn, wire = std::move(wire), attempts_left,
                    done = std::move(done)](Result<simnet::Address> addr) mutable {
    if (!addr) {
      if (addr.code() == Errc::state_error &&
          starts_with(addr.error().message, "group:")) {
        send_to_group(addr.error().message.substr(6), std::move(wire), std::move(done));
        return;
      }
      if (attempts_left > 1) {
        // The RC record may not exist *yet* (spawn racing registration);
        // retry after a beat.
        engine_->schedule(duration::milliseconds(200),
                          [this, dst_urn, wire = std::move(wire), attempts_left,
                           done = std::move(done)]() mutable {
                            attempt_send(dst_urn, std::move(wire), attempts_left - 1,
                                         std::move(done), true);
                          });
        return;
      }
      ++stats_.send_failures;
      if (done) done(addr.error());
      return;
    }
    rpc_->call(
        addr.value(), tags::kDeliver, wire,
        [this, dst_urn, wire, attempts_left, done = std::move(done)](Result<Bytes> r) mutable {
          if (r.ok()) {
            if (done) done(ok_result());
            return;
          }
          if (attempts_left > 1) {
            // No ack: the destination likely moved or died.  Re-resolve
            // through RC and retry (§5.6).
            attempt_send(dst_urn, std::move(wire), attempts_left - 1, std::move(done),
                         /*resolve_fresh=*/true);
            return;
          }
          ++stats_.send_failures;
          if (done) done(r.error());
        },
        config_.delivery_timeout);
  });
}

void SnipeProcess::send_to_group(const std::string& group_urn, Bytes wire,
                                 DoneHandler done) {
  rc_->lookup(group_urn, rcds::names::kGroupRouter,
              [this, group_urn, wire = std::move(wire),
               done = std::move(done)](Result<std::vector<std::string>> r) {
                if (!r) {
                  ++stats_.send_failures;
                  if (done) done(r.error());
                  return;
                }
                std::vector<simnet::Address> routers;
                for (const auto& url : r.value())
                  if (auto uri = parse_uri(url); uri.ok())
                    routers.push_back(simnet::Address{
                        uri.value().host, static_cast<std::uint16_t>(uri.value().port)});
                if (routers.empty()) {
                  ++stats_.send_failures;
                  if (done) done(Error{Errc::not_found, "no routers for " + group_urn});
                  return;
                }
                std::sort(routers.begin(), routers.end());
                // §5.4 again: push to more than half of the routers.
                Bytes payload = encode_group_payload(group_urn, urn_, pseudo_seq_++, wire);
                std::size_t majority = routers.size() / 2 + 1;
                for (std::size_t i = 0; i < majority; ++i)
                  rpc_->notify(routers[i], tags::kMcastSend, payload);
                if (done) done(ok_result());
              });
}

void SnipeProcess::register_pseudo_process(const std::string& pseudo_urn,
                                           const std::string& group_urn, DoneHandler done) {
  // "SNIPE metadata can then be created for the new pseudo-process ...
  // with the multicast group listed as the communications URL" (§5.7).
  rc_->set(pseudo_urn, rcds::names::kProcAddress, group_urn,
           done ? std::move(done) : [](Result<void>) {});
}

void SnipeProcess::register_group(const std::string& group_urn, MulticastGroup* group) {
  groups_[group_urn] = group;
}

void SnipeProcess::unregister_group(const std::string& group_urn) {
  groups_.erase(group_urn);
}

void SnipeProcess::add_to_notify_list(const std::string& watcher_urn, DoneHandler done) {
  notify_list_.push_back(watcher_urn);
  rc_->add(urn_, rcds::names::kProcNotify, watcher_urn,
           done ? std::move(done) : [](Result<void>) {});
}

void SnipeProcess::spawn_via_rm(const simnet::Address& rm, daemon::SpawnRequest request,
                                SpawnHandler done) {
  rpc_->call(rm, rm::tags::kAllocate, request.encode(),
             [done = std::move(done)](Result<Bytes> r) {
               if (!r) {
                 done(r.error());
                 return;
               }
               done(daemon::SpawnReply::decode(r.value()));
             });
}

void SnipeProcess::spawn_via_host(const std::string& host_name, daemon::SpawnRequest request,
                                  SpawnHandler done) {
  // §5.5: consult the host record; prefer a broker when one is listed.
  std::string uri = snipe::host_url(host_name, daemon::SnipeDaemon::kDefaultPort);
  rc_->get(uri, [this, host_name, request = std::move(request),
                 done = std::move(done)](Result<std::vector<rcds::Assertion>> r) mutable {
    simnet::Address target{host_name, daemon::SnipeDaemon::kDefaultPort};
    std::uint32_t tag = daemon::tags::kSpawn;
    if (r.ok()) {
      for (const auto& a : r.value()) {
        if (a.name == rcds::names::kHostBroker) {
          if (auto uri = parse_uri(a.value); uri.ok()) {
            target = {uri.value().host, static_cast<std::uint16_t>(uri.value().port)};
            tag = rm::tags::kAllocate;
            break;
          }
        }
      }
    }
    rpc_->call(target, tag, request.encode(), [done = std::move(done)](Result<Bytes> r2) {
      if (!r2) {
        done(r2.error());
        return;
      }
      done(daemon::SpawnReply::decode(r2.value()));
    });
  });
}

void SnipeProcess::migrate_to(simnet::Host& new_host, DoneHandler done) {
  // 1. Stand up the new incarnation's endpoint on the destination host.
  auto new_rpc = std::make_unique<transport::RpcEndpoint>(new_host, 0);
  simnet::Address new_address = new_rpc->address();

  // 2. Swap internals: this object *becomes* the migrated process; the old
  //    endpoint survives as a relay bound to the old (host, port).
  auto old_rpc = std::move(rpc_);
  simnet::Address old_address = old_rpc->address();
  simnet::Host* old_host = host_;

  host_ = &new_host;
  rpc_ = std::move(new_rpc);
  rc_ = std::make_unique<rcds::RcClient>(*rpc_, rc_->replicas());
  resolve_cache_.clear();
  // The entire service surface moves: built-in handlers *and* anything the
  // application registered directly (HTTP servers, custom tags).  The
  // adopted lambdas capture `this`, which is exactly the object that just
  // moved hosts, so they keep working untouched.
  rpc_->adopt_handlers(*old_rpc);

  // 3. Old endpoint: a generic proxy for the grace period (§5.6 "The
  //    original process maybe required to act as a relay or redirect for a
  //    short period") — requests are forwarded to the new location and
  //    their responses returned; notifications are re-sent onward.
  auto* relay_rpc = old_rpc.get();
  relay_rpc->serve_default(
      [this, relay_rpc, new_address](const simnet::Address&, std::uint32_t tag,
                                     const Bytes& body,
                                     transport::RpcEndpoint::Responder respond) {
        ++stats_.relayed;
        relay_rpc->call(new_address, tag, body,
                        [respond](Result<Bytes> r) { respond(std::move(r)); });
      });
  relay_rpc->on_notify_default(
      [this, relay_rpc, new_address](const simnet::Address&, std::uint32_t tag,
                                     const Bytes& body) {
        ++stats_.relayed;
        relay_rpc->notify(new_address, tag, body);
      });
  engine_->schedule_weak(config_.relay_grace,
                    [old = std::shared_ptr<transport::RpcEndpoint>(std::move(old_rpc))]() {
                      // Dropping the endpoint unbinds the old port.
                    });

  log_.info("migrated ", urn_, " from ", old_host->name(), ":", old_address.port, " to ",
            new_host.name(), ":", new_address.port);
  obs::Tracer::global().instant("core", "process.migrated",
                                {{"urn", urn_},
                                 {"from", old_host->name()},
                                 {"to", new_host.name()}});

  // 4. "After migration the process updates RC servers with its new
  //    location..."
  rc_->apply(urn_,
             {rcds::op_set(rcds::names::kProcAddress,
                           "snipe://" + new_host.name() + ":" +
                               std::to_string(new_address.port) + "/proc"),
              rcds::op_set(rcds::names::kProcHost, new_host.name())},
             [this, done = std::move(done), new_address](Result<std::vector<rcds::Assertion>> r) {
               if (!r) {
                 if (done) done(r.error());
                 return;
               }
               // 5. "...and also informs other SNIPE tasks on its notify
               //    list that it has moved."
               ByteWriter w;
               w.str(urn_);
               w.str(new_address.host);
               w.u16(new_address.port);
               Bytes notice = std::move(w).take();
               for (const auto& watcher : notify_list_) {
                 resolve(watcher, [this, notice](Result<simnet::Address> addr) {
                   if (addr) rpc_->notify(addr.value(), tags::kMigrated, notice);
                 });
               }
               if (done) done(ok_result());
             });
}

}  // namespace snipe::core
