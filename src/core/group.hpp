// Wide-area reliable multicast groups (§5.2.4, §5.4).
//
// "Multicast messages are sent to one or more host daemons which are
//  acting as routers for that particular multicast group. ... Whenever a
//  process joins a multicast group, its host daemon heuristically
//  determines (based on the presence or absence of other routers in the
//  group ...) whether it should become a router for that group."
//
// Implementation:
//   * routers register themselves in the group's RC metadata
//     (group:router = their URL);
//   * the join heuristic: become a router when the group has fewer than
//     `desired_routers`, or when none of the existing routers sits on a
//     network we share (the paper's "networks to which those routers are
//     attached" clause);
//   * a member registers its (urn, address) with every reachable router;
//   * a sender pushes each message to ⌊n/2⌋+1 routers ("any message sent
//     to that group is initially sent to more than half of the routers");
//   * each router delivers to its registered members and relays to the
//     other routers, with (origin, msg id) duplicate suppression at both
//     routers and members.
// Together these guarantee a delivery path to every member that can reach
// at least one live router, across any single router failure.
//
// NOTE (from the paper, kept faithfully): "this type of Multicast group is
// not designed for high performance of closely coupled processes as in
// MPI ... but rather for reliable group communication across the
// Internet."  The high-performance single-segment protocol is
// transport::EthMcastEndpoint.
#pragma once

#include <set>

#include "core/process.hpp"

namespace snipe::core {

struct GroupConfig {
  /// The election heuristic tops the group up to this many routers.
  int desired_routers = 3;
  /// Period for refreshing the router list / registrations.
  SimDuration refresh_period = duration::seconds(5);
  /// Memberships are soft state: a router forgets a member that has not
  /// re-registered within this long (dead members stop receiving
  /// deliveries instead of accumulating undeliverable traffic).
  SimDuration membership_ttl = duration::seconds(20);
  /// A member that fails to reach a router this many consecutive refreshes
  /// deregisters it from the group metadata (§5.2.4's router-set change).
  int router_prune_after = 3;
};

struct GroupStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t router_forwards = 0;
  std::uint64_t router_relays = 0;
};

/// Encodes the on-wire multicast payload (shared by group members and by
/// §5.7 pseudo-process senders, who multicast without joining).
Bytes encode_group_payload(const std::string& group, const std::string& origin,
                           std::uint64_t msg_id, const Bytes& body);

/// One process's membership of one multicast group (it may also be hosting
/// a router for the group — see `is_router`).
class MulticastGroup {
 public:
  using GroupMessageHandler =
      std::function<void(const std::string& src_urn, Bytes body)>;

  /// Joins `process` to the group named by `group_urn` (§5.2.4 "The name
  /// of the multicast group (a URN or URL)").  `ready` fires when router
  /// discovery/election and registration complete.
  MulticastGroup(SnipeProcess& process, const std::string& group_urn,
                 GroupConfig config = {},
                 std::function<void(Result<void>)> ready = nullptr);
  ~MulticastGroup();

  const std::string& group_urn() const { return group_urn_; }
  bool is_router() const { return router_; }

  void set_handler(GroupMessageHandler handler) { handler_ = std::move(handler); }

  /// Multicasts to the whole group "as if it were a single process" (§5.2.4).
  void send(Bytes body);

  /// Leaves the group (deregisters; a hosted router keeps serving until
  /// destruction so in-flight traffic drains).
  void leave();

  const GroupStats& stats() const { return stats_; }
  std::size_t known_routers() const { return routers_.size(); }

  /// Internal entry points invoked by SnipeProcess's dispatch.
  Result<Bytes> on_join(const simnet::Address& from, const Bytes& body);
  void on_mcast(const Bytes& body, bool is_relay);
  void on_deliver(const Bytes& body);

 private:
  struct Member {
    simnet::Address address;
    SimTime expires = 0;
  };
  struct RouterState {
    /// Members registered with this router (soft state): urn -> entry.
    std::map<std::string, Member> members;
    /// Other routers we relay to.
    std::set<std::string> seen;  ///< "origin#msgid" duplicate filter
  };

  void refresh(std::function<void(Result<void>)> ready);
  void maybe_elect_self(const std::vector<simnet::Address>& routers,
                        std::function<void(Result<void>)> ready);
  void register_with_routers();
  void handle_send_or_relay(const Bytes& body, bool is_relay);
  std::string router_url() const;

  SnipeProcess& process_;
  std::string group_urn_;
  GroupConfig config_;
  GroupMessageHandler handler_;
  std::vector<simnet::Address> routers_;  ///< current known routers
  std::map<simnet::Address, int> join_failures_;  ///< consecutive, per router
  bool router_ = false;
  std::string registered_router_url_;  ///< what we last wrote to RC
  RouterState router_state_;
  std::set<std::string> member_seen_;  ///< member-side duplicate filter
  std::uint64_t next_msg_id_ = 1;
  simnet::TimerId refresh_timer_;
  bool left_ = false;
  GroupStats stats_;
  Logger log_;
};

}  // namespace snipe::core
