// Resource managers (§3.5), derived from PVM's General Resource Manager
// but made *redundant*: "For the sake of redundancy, any host may be
// managed by multiple resource managers" — the contrast with PVM's
// centralized, single-point-of-failure RM that §2.2 calls out and
// bench_rm_scalability measures.
//
// Duties implemented:
//   * track a pool of managed hosts: liveness + load, polled from the
//     daemons and cross-checked against RC host metadata;
//   * allocation: satisfy a spawn request by choosing the least-loaded
//     live host matching the environment spec (§5.5);
//   * active mode ("the resource manager acts as a proxy for the
//     requester"): sign an authorization and forward the spawn to the
//     chosen daemon; passive mode: return a reservation (host + signed
//     authorization) and let the requester spawn;
//   * certificate-authority duties (§4): validate a user's signed grant
//     and the requesting host's attestation, then issue the RM's own
//     signed authorization for the daemon.
#pragma once

#include <map>

#include "crypto/identity.hpp"
#include "crypto/session.hpp"
#include "daemon/daemon.hpp"
#include "obs/metrics.hpp"
#include "rcds/client.hpp"
#include "transport/rpc.hpp"

namespace snipe::rm {

namespace tags {
inline constexpr std::uint32_t kAllocate = 140;  ///< active-mode spawn
inline constexpr std::uint32_t kReserve = 141;   ///< passive-mode reservation
inline constexpr std::uint32_t kAuthorize = 142; ///< §4 two-certificate flow
inline constexpr std::uint32_t kPing = 143;
}  // namespace tags

struct RmConfig {
  SimDuration monitor_period = duration::seconds(2);
  /// Hosts missing this many consecutive polls are considered dead.
  int dead_after_misses = 2;
  /// CPU time one allocation decision costs the RM (matching resources,
  /// policy checks, signing).  Decisions serialize on the RM — this is
  /// exactly why §2.2 calls PVM's centralized resource manager "a
  /// bottleneck for a very large virtual machine", and what redundant RMs
  /// parallelize.
  SimDuration decision_time = duration::milliseconds(2);
  /// Issuers trusted to identify users and hosts (§4).
  crypto::TrustStore trust;
};

struct RmStats {
  std::uint64_t allocations = 0;
  std::uint64_t reservations = 0;
  std::uint64_t allocation_failures = 0;
  std::uint64_t authorizations_issued = 0;
  std::uint64_t authorizations_rejected = 0;
  std::uint64_t sealed_spawns = 0;  ///< spawns sent over a §4 session
  std::uint64_t polls = 0;
};

/// A passive-mode reservation: where to spawn and the signed permission.
struct Reservation {
  std::string host;
  simnet::Address daemon;
  Bytes authorization;  ///< encoded SignedStatement for SpawnRequest

  Bytes encode() const;
  static Result<Reservation> decode(const Bytes& data);
};

class ResourceManager {
 public:
  static constexpr std::uint16_t kDefaultPort = 7300;

  ResourceManager(simnet::Host& host, std::vector<simnet::Address> rc_replicas,
                  crypto::Principal principal, std::uint16_t port = kDefaultPort,
                  RmConfig config = {});

  /// Adds a host to the managed pool and registers this RM as one of its
  /// brokers in the host metadata (§5.2.1).  Host facts (arch, cpus) are
  /// pulled from RC.
  void manage_host(const std::string& host_name, const simnet::Address& daemon);

  simnet::Address address() const { return rpc_.address(); }
  std::string url() const;
  const crypto::Principal& principal() const { return principal_; }

  /// Chooses a host for the request (shared by allocate/reserve paths).
  Result<std::string> select_host(const daemon::SpawnRequest& request) const;

  /// Signs a spawn authorization for `program` on `host` (§4).
  Bytes sign_authorization(const std::string& program, const std::string& host) const;

  /// §4's efficiency optimization: establishes an authenticated session
  /// with `host_name`'s daemon (whose public key is read from the host's
  /// RC metadata).  Once established, allocations to that host go over the
  /// session as sealed requests with *no per-spawn RSA signature*.
  void establish_session(const std::string& host_name,
                         std::function<void(Result<void>)> done);
  bool has_session(const std::string& host_name) const {
    auto it = hosts_.find(host_name);
    return it != hosts_.end() && it->second.session != nullptr;
  }

  std::size_t live_hosts() const;
  const RmStats& stats() const { return stats_; }
  transport::RpcEndpoint& rpc() { return rpc_; }

 private:
  struct HostInfo {
    simnet::Address daemon;
    simnet::Address ping;  ///< the daemon's raw health port
    std::string arch;
    int cpus = 1;
    double load = 0;
    int missed_polls = 0;
    bool alive = true;
    bool pong_seen = true;  ///< did the last probe get answered?
    /// §4 authenticated channel, when established.
    std::shared_ptr<crypto::Session> session;
  };

  /// Health polling uses single raw datagrams on the daemons' ping ports —
  /// deliberately unreliable: a retried liveness probe measures the
  /// transport's persistence, not the host's health.  Each round first
  /// scores the previous round's answers, then probes again.
  void poll_hosts();
  /// Serializes `work` behind earlier decisions, charging decision_time.
  void queue_decision(std::function<void()> work);
  void handle_allocate(const simnet::Address& from, const Bytes& body,
                       transport::RpcEndpoint::Responder respond);
  Result<Bytes> handle_reserve(const Bytes& body);
  Result<Bytes> handle_authorize(const Bytes& body);

  transport::RpcEndpoint rpc_;
  simnet::Engine& engine_;
  RmConfig config_;
  crypto::Principal principal_;
  rcds::RcClient rc_;
  std::map<std::string, HostInfo> hosts_;
  std::uint16_t ping_port_ = 0;
  SimTime busy_until_ = 0;  ///< decision queue head (see decision_time)
  Rng session_rng_{0xbeef5e551ULL};  ///< padding/key material for §4 sessions
  RmStats stats_;
  obs::Histogram* spawn_latency_ms_;  ///< global "rm.spawn_latency_ms"
  Logger log_;
  /// Declared last so sources retire before stats_ dies.
  obs::SourceGroup metrics_sources_;
};

/// Body of a kAuthorize request: the §4 two-certificate bundle.
struct AuthorizeRequest {
  crypto::Certificate user_cert;
  crypto::SignedStatement user_grant;   ///< "user X grants process P on host H"
  crypto::Certificate host_cert;
  crypto::SignedStatement host_attest;  ///< "host H requests for process P"
  std::string program;
  std::string target_host;

  Bytes encode() const;
  static Result<AuthorizeRequest> decode(const Bytes& data);
};

/// Canonical payloads the user and requesting host sign (§4).
Bytes user_grant_payload(const std::string& user, const std::string& program,
                         const std::string& requesting_host);
Bytes host_attest_payload(const std::string& host, const std::string& program);

}  // namespace snipe::rm
