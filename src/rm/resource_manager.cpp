#include "rm/resource_manager.hpp"

#include <limits>

#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "util/uri.hpp"

namespace snipe::rm {

Bytes Reservation::encode() const {
  ByteWriter w;
  w.str(host);
  w.str(daemon.host);
  w.u16(daemon.port);
  w.blob(authorization);
  return std::move(w).take();
}

Result<Reservation> Reservation::decode(const Bytes& data) {
  ByteReader r(data);
  Reservation res;
  auto host = r.str();
  if (!host) return host.error();
  res.host = host.value();
  auto dh = r.str();
  if (!dh) return dh.error();
  auto dp = r.u16();
  if (!dp) return dp.error();
  res.daemon = {dh.value(), dp.value()};
  auto auth = r.blob();
  if (!auth) return auth.error();
  res.authorization = auth.value();
  return res;
}

Bytes user_grant_payload(const std::string& user, const std::string& program,
                         const std::string& requesting_host) {
  ByteWriter w;
  w.str("snipe:user-grant");
  w.str(user);
  w.str(program);
  w.str(requesting_host);
  return std::move(w).take();
}

Bytes host_attest_payload(const std::string& host, const std::string& program) {
  ByteWriter w;
  w.str("snipe:host-attestation");
  w.str(host);
  w.str(program);
  return std::move(w).take();
}

Bytes AuthorizeRequest::encode() const {
  ByteWriter w;
  w.blob(user_cert.encode());
  w.blob(user_grant.encode());
  w.blob(host_cert.encode());
  w.blob(host_attest.encode());
  w.str(program);
  w.str(target_host);
  return std::move(w).take();
}

Result<AuthorizeRequest> AuthorizeRequest::decode(const Bytes& data) {
  ByteReader r(data);
  AuthorizeRequest req;
  auto uc = r.blob();
  if (!uc) return uc.error();
  auto user_cert = crypto::Certificate::decode(uc.value());
  if (!user_cert) return user_cert.error();
  req.user_cert = std::move(user_cert).take();
  auto ug = r.blob();
  if (!ug) return ug.error();
  auto user_grant = crypto::SignedStatement::decode(ug.value());
  if (!user_grant) return user_grant.error();
  req.user_grant = std::move(user_grant).take();
  auto hc = r.blob();
  if (!hc) return hc.error();
  auto host_cert = crypto::Certificate::decode(hc.value());
  if (!host_cert) return host_cert.error();
  req.host_cert = std::move(host_cert).take();
  auto ha = r.blob();
  if (!ha) return ha.error();
  auto host_attest = crypto::SignedStatement::decode(ha.value());
  if (!host_attest) return host_attest.error();
  req.host_attest = std::move(host_attest).take();
  auto program = r.str();
  if (!program) return program.error();
  req.program = program.value();
  auto target = r.str();
  if (!target) return target.error();
  req.target_host = target.value();
  return req;
}

ResourceManager::ResourceManager(simnet::Host& host, std::vector<simnet::Address> rc_replicas,
                                 crypto::Principal principal, std::uint16_t port,
                                 RmConfig config)
    : rpc_(host, port, {}),
      engine_(host.engine()),
      config_(std::move(config)),
      principal_(std::move(principal)),
      rc_(rpc_, std::move(rc_replicas)),
      log_("rm@" + host.name()) {
  rpc_.serve_async(tags::kAllocate,
                   [this](const simnet::Address& from, const Bytes& body,
                          transport::RpcEndpoint::Responder respond) {
                     queue_decision([this, from, body, respond = std::move(respond)] {
                       handle_allocate(from, body, std::move(respond));
                     });
                   });
  rpc_.serve_async(tags::kReserve,
                   [this](const simnet::Address&, const Bytes& body,
                          transport::RpcEndpoint::Responder respond) {
                     queue_decision([this, body, respond = std::move(respond)] {
                       respond(handle_reserve(body));
                     });
                   });
  rpc_.serve(tags::kAuthorize, [this](const simnet::Address&, const Bytes& body) {
    return handle_authorize(body);
  });
  rpc_.serve(tags::kPing,
             [](const simnet::Address&, const Bytes&) -> Result<Bytes> { return Bytes{}; });
  // Raw port for health pongs from the daemons we manage.
  ping_port_ = host.ephemeral_port();
  host.bind(ping_port_, [this](const simnet::Packet& p) {
        Payload pong = p.payload;
        pong.flatten();  // raw wire bytes; pongs are single-segment anyway
        ByteReader r(pong.data(), pong.size());
        auto load = r.f64();
        if (!load) return;
        for (auto& [name, info] : hosts_) {
          if (info.ping.host == p.src.host && info.ping.port == p.src.port) {
            info.load = load.value();
            info.pong_seen = true;
            info.missed_polls = 0;
            info.alive = true;
            return;
          }
        }
      })
      .value();
  engine_.schedule_weak(config_.monitor_period, [this] { poll_hosts(); });
  auto& registry = obs::MetricsRegistry::global();
  spawn_latency_ms_ = &registry.histogram("rm.spawn_latency_ms");
  metrics_sources_.add("rm.allocations", [this] { return stats_.allocations; });
  metrics_sources_.add("rm.reservations", [this] { return stats_.reservations; });
  metrics_sources_.add("rm.allocation_failures",
                       [this] { return stats_.allocation_failures; });
  metrics_sources_.add("rm.authorizations_issued",
                       [this] { return stats_.authorizations_issued; });
  metrics_sources_.add("rm.authorizations_rejected",
                       [this] { return stats_.authorizations_rejected; });
  metrics_sources_.add("rm.sealed_spawns", [this] { return stats_.sealed_spawns; });
  metrics_sources_.add("rm.polls", [this] { return stats_.polls; });
}

std::string ResourceManager::url() const {
  return "snipe://" + rpc_.address().host + ":" + std::to_string(rpc_.address().port) + "/rm";
}

void ResourceManager::manage_host(const std::string& host_name,
                                  const simnet::Address& daemon) {
  HostInfo info;
  info.daemon = daemon;
  info.ping = simnet::Address{
      daemon.host,
      static_cast<std::uint16_t>(daemon.port + daemon::SnipeDaemon::kPingPortOffset)};
  hosts_[host_name] = info;
  // Register as a broker in the host metadata (§5.2.1) and pull host facts.
  std::string uri = snipe::host_url(host_name, daemon.port);
  rc_.add(uri, rcds::names::kHostBroker, url(), [](Result<void>) {});
  rc_.get(uri, [this, host_name](Result<std::vector<rcds::Assertion>> r) {
    if (!r) return;
    auto it = hosts_.find(host_name);
    if (it == hosts_.end()) return;
    for (const auto& a : r.value()) {
      if (a.name == rcds::names::kHostArch) it->second.arch = a.value;
      if (a.name == rcds::names::kHostCpus) it->second.cpus = std::stoi(a.value);
    }
  });
}

void ResourceManager::queue_decision(std::function<void()> work) {
  // One decision at a time: requests queue behind the RM's CPU, which is
  // what makes a single centralized RM the §2.2 bottleneck.
  SimTime start = std::max(engine_.now(), busy_until_);
  busy_until_ = start + config_.decision_time;
  engine_.schedule_at(busy_until_, std::move(work));
}

void ResourceManager::poll_hosts() {
  engine_.schedule_weak(config_.monitor_period, [this] { poll_hosts(); });
  if (!rpc_.host().up()) return;
  simnet::Host* host = rpc_.host().world()->host(rpc_.address().host);
  for (auto& [name, info] : hosts_) {
    ++stats_.polls;
    // Score the previous round first.
    if (!info.pong_seen && ++info.missed_polls >= config_.dead_after_misses) {
      if (info.alive) {
        obs::Tracer::global().instant("rm", "rm.host_dead", {{"host", name}});
        obs::FlightRecorder::global().record(
            rpc_.address().host, "rm", "host_dead",
            "host=" + name + " misses=" + std::to_string(info.missed_polls));
      }
      info.alive = false;
    }
    info.pong_seen = false;
    simnet::SendOptions opts;
    opts.src_port = ping_port_;
    auto r = host->send(info.ping, Bytes{0x1}, opts);
    if (!r) log_.trace("probe to ", name, " failed: ", r.error().to_string());
  }
}

std::size_t ResourceManager::live_hosts() const {
  std::size_t n = 0;
  for (const auto& [name, info] : hosts_)
    if (info.alive) ++n;
  return n;
}

Result<std::string> ResourceManager::select_host(const daemon::SpawnRequest& request) const {
  // "allocating resources as needed from those available, attempting to
  // adhere to resource allocation goals" (§3.5): least-loaded live host
  // that satisfies the environment spec.
  const HostInfo* best = nullptr;
  const std::string* best_name = nullptr;
  for (const auto& [name, info] : hosts_) {
    if (!info.alive) continue;
    if (!request.require_arch.empty() && !info.arch.empty() &&
        info.arch != request.require_arch)
      continue;
    if (request.require_cpus > info.cpus) continue;
    if (best == nullptr || info.load < best->load) {
      best = &info;
      best_name = &name;
    }
  }
  if (best == nullptr)
    return Result<std::string>(Errc::unreachable, "no live host satisfies the request");
  return *best_name;
}

Bytes ResourceManager::sign_authorization(const std::string& program,
                                          const std::string& host) const {
  auto stmt = crypto::SignedStatement::make(
      principal_, daemon::authorization_payload(program, host));
  return stmt.encode();
}

void ResourceManager::establish_session(const std::string& host_name,
                                        std::function<void(Result<void>)> done) {
  auto it = hosts_.find(host_name);
  if (it == hosts_.end()) {
    done(Error{Errc::not_found, host_name + " is not managed here"});
    return;
  }
  const simnet::Address daemon = it->second.daemon;
  // The daemon's public key lives in its host metadata (§5.2.1).
  std::string uri = snipe::host_url(host_name, daemon.port);
  rc_.lookup(uri, rcds::names::kHostKey,
             [this, host_name, daemon, done = std::move(done)](
                 Result<std::vector<std::string>> r) {
               if (!r) {
                 done(r.error());
                 return;
               }
               if (r.value().empty()) {
                 done(Error{Errc::not_found, "no host key registered for " + host_name});
                 return;
               }
               auto key_bytes = hex_decode(r.value().front());
               if (!key_bytes) {
                 done(key_bytes.error());
                 return;
               }
               auto key = crypto::PublicKey::decode(key_bytes.value());
               if (!key) {
                 done(key.error());
                 return;
               }
               auto initiated = crypto::Session::initiate(key.value(), session_rng_);
               if (!initiated) {
                 done(initiated.error());
                 return;
               }
               auto session =
                   std::make_shared<crypto::Session>(std::move(initiated.value().first));
               // The hello is signed so the daemon knows it is *us* (a raw
               // encrypted key could come from anyone).
               auto hello = crypto::SignedStatement::make(
                   principal_, std::move(initiated.value().second));
               rpc_.call(daemon, daemon::tags::kSessionHello, hello.encode(),
                         [this, host_name, session, done = std::move(done)](Result<Bytes> r2) {
                           if (!r2) {
                             done(r2.error());
                             return;
                           }
                           auto it = hosts_.find(host_name);
                           if (it != hosts_.end()) it->second.session = session;
                           done(ok_result());
                         });
             });
}

void ResourceManager::handle_allocate(const simnet::Address& from, const Bytes& body,
                                      transport::RpcEndpoint::Responder respond) {
  auto request = daemon::SpawnRequest::decode(body);
  if (!request) {
    respond(request.error());
    return;
  }
  auto host = select_host(request.value());
  if (!host) {
    ++stats_.allocation_failures;
    respond(host.error());
    return;
  }
  HostInfo& info = hosts_[host.value()];
  // Active mode: proxy the spawn (§3.5 "the resource manager acts as a
  // proxy for the requester").  Over an established §4 session the request
  // goes sealed and unsigned; otherwise it carries our RSA authorization.
  daemon::SpawnRequest forwarded = request.value();
  ++stats_.allocations;
  info.load += 1.0 / std::max(1, info.cpus);  // optimistic until next poll
  // Spawn latency span: decision made -> daemon's reply in hand.
  obs::SpanId span = obs::Tracer::global().begin_span("rm", "rm.spawn");
  obs::FlightRecorder::global().record(rpc_.address().host, "rm", "spawn",
                                       "target=" + host.value() +
                                           " program=" + forwarded.program);
  SimTime spawn_start = engine_.now();
  auto completion = [respond, this, span, spawn_start,
                     target = host.value()](Result<Bytes> r) {
    spawn_latency_ms_->observe(static_cast<double>(engine_.now() - spawn_start) / 1e6);
    obs::Tracer::global().end_span(
        span, {{"host", target}, {"ok", r.ok() ? "true" : "false"}});
    if (!r) {
      ++stats_.allocation_failures;
      respond(r.error());
      return;
    }
    respond(r.value());
  };
  if (info.session != nullptr) {
    ++stats_.sealed_spawns;
    rpc_.call(info.daemon, daemon::tags::kSpawnSealed,
              info.session->seal(forwarded.encode()), completion);
  } else {
    forwarded.authorization = sign_authorization(forwarded.program, host.value());
    rpc_.call(info.daemon, daemon::tags::kSpawn, forwarded.encode(), completion);
  }
  (void)from;
}

Result<Bytes> ResourceManager::handle_reserve(const Bytes& body) {
  auto request = daemon::SpawnRequest::decode(body);
  if (!request) return request.error();
  auto host = select_host(request.value());
  if (!host) {
    ++stats_.allocation_failures;
    return host.error();
  }
  // Passive mode (§3.5): reserve and let the requester do the spawn.
  HostInfo& info = hosts_[host.value()];
  info.load += 1.0 / std::max(1, info.cpus);
  ++stats_.reservations;
  Reservation res{host.value(), info.daemon,
                  sign_authorization(request.value().program, host.value())};
  return res.encode();
}

Result<Bytes> ResourceManager::handle_authorize(const Bytes& body) {
  auto request = AuthorizeRequest::decode(body);
  if (!request) return request.error();
  const AuthorizeRequest& req = request.value();

  // §4: "One is a signed statement from the user, granting a particular
  // process on a particular host, access to the desired resources."
  auto user_ok = config_.trust.validate_statement(req.user_grant, req.user_cert,
                                                  crypto::TrustPurpose::identify_user);
  if (!user_ok) {
    ++stats_.authorizations_rejected;
    return Result<Bytes>(user_ok.error().code, "user grant: " + user_ok.error().message);
  }
  if (req.user_grant.payload !=
      user_grant_payload(req.user_cert.subject, req.program, req.host_cert.subject)) {
    ++stats_.authorizations_rejected;
    return Result<Bytes>(Errc::permission_denied, "user grant does not cover this request");
  }
  // "The second is a signed statement from the requesting host indicating
  // that the resources are requested by that process."
  auto host_ok = config_.trust.validate_statement(req.host_attest, req.host_cert,
                                                  crypto::TrustPurpose::identify_host);
  if (!host_ok) {
    ++stats_.authorizations_rejected;
    return Result<Bytes>(host_ok.error().code, "host attestation: " + host_ok.error().message);
  }
  if (req.host_attest.payload != host_attest_payload(req.host_cert.subject, req.program)) {
    ++stats_.authorizations_rejected;
    return Result<Bytes>(Errc::permission_denied, "host attestation does not match");
  }
  // "the resource manager then issues its own signed statement authorizing
  // use of the requested resources by that process".
  ++stats_.authorizations_issued;
  return sign_authorization(req.program, req.target_host);
}

}  // namespace snipe::rm
