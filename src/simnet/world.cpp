#include "simnet/world.hpp"

#include <algorithm>
#include <cassert>
#include <ctime>
#include <queue>

#include "simnet/fault.hpp"
#include "simnet/topo.hpp"

namespace snipe::simnet {

namespace {

/// Shard index of the calling thread: workers of a sharded World set this
/// for their lifetime; -1 on the coordinator (and every other) thread.
thread_local int t_current_shard = -1;

/// CPU time consumed by the calling thread.  This is what the windowed
/// driver charges per shard per window: on a box with fewer cores than
/// shards the wall clock measures scheduling luck, while the per-window
/// maximum of this is the true critical path of the parallel execution.
std::uint64_t thread_cpu_ns() {
#if defined(__linux__)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
           static_cast<std::uint64_t>(ts.tv_nsec);
#endif
  return 0;
}

SimTime sat_add(SimTime a, SimTime b) {
  return b >= Engine::kNever - a ? Engine::kNever : a + b;
}

/// Deterministic equal-cost tie-break for route resolution: FNV-1a over the
/// (src, dst, relaxed edge) names, so distinct host pairs spread across
/// parallel fabric planes while one pair always takes one path.
std::uint64_t route_tie(const std::string& src, const std::string& dst,
                        const std::string& from, const std::string& to,
                        const std::string& net) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) h = (h ^ c) * 1099511628211ULL;
    h = (h ^ 0x1f) * 1099511628211ULL;  // separator: "ab"+"c" != "a"+"bc"
  };
  mix(src);
  mix(dst);
  mix(from);
  mix(to);
  mix(net);
  return h;
}

/// Runs one about-to-fly datagram through `net`'s fault injector (if any)
/// and hands each surviving copy — the jittered duplicate first, as always
/// — to `post(arrival, packet)`.  `lane` is the transmitting node: the
/// source host on the first hop (bit-for-bit the flat behavior), the
/// forwarding router on interior hops, so every injector lane stays
/// confined to one shard's thread.  Partition boundaries are judged on the
/// packet's end-to-end (src, dst) pair regardless of the lane.
template <typename PostFn>
void judge_and_post(Network* net, const std::string& lane, SimTime arrival, Packet packet,
                    PostFn post) {
  FaultInjector* fault = net->fault();
  if (fault != nullptr) {
    FaultVerdict v = fault->judge(lane, packet.src.host, packet.dst.host);
    if (v.drop) {
      net->stats().drops_fault++;
      return;
    }
    if (v.corrupt) {
      fault->corrupt_payload(packet.payload, lane);
      net->stats().fault_corruptions++;
    }
    if (v.copies > 1) {
      net->stats().fault_duplicates += static_cast<std::uint64_t>(v.copies - 1);
      // The duplicate is posted first, as it always has been: at equal
      // arrival times post order decides delivery order.
      post(arrival + v.extra_delay + v.dup_delay, packet);
    }
    arrival += v.extra_delay;
  }
  post(arrival, std::move(packet));
}

}  // namespace

Host* Nic::host() const { return node_->is_router() ? nullptr : static_cast<Host*>(node_); }

void Nic::set_up(bool up) {
  // Routes can traverse zone-owned segments and any NIC of a router (even
  // on a zoneless network), so either kind of flap invalidates caches.
  // Host NICs on flat networks never appear inside a route's interior.
  if (up_ != up && node_->world() != nullptr &&
      (network_->zone() != nullptr || node_->is_router()))
    node_->world()->bump_route_epoch();
  up_ = up;
}

void Network::set_up(bool up) {
  if (up_ != up && world_ != nullptr) world_->bump_route_epoch();
  up_ = up;
}

Node::Node(World* world, std::string name, Rng rng, Engine* engine, std::size_t shard,
           bool is_router)
    : world_(world),
      name_(std::move(name)),
      rng_(rng),
      engine_(engine),
      shard_(shard),
      is_router_(is_router) {}

void Node::set_up(bool up) {
  if (up_ != up && is_router_ && world_ != nullptr) world_->bump_route_epoch();
  up_ = up;
}

Nic* Node::nic_on(const std::string& network) {
  for (auto& nic : nics_)
    if (nic->network()->name() == network) return nic.get();
  return nullptr;
}

void Host::schedule_delivery(World* world, Network* net, Host* target, SimTime arrival,
                             Packet packet) {
  // Copy the lane name out before the move: the order in which a call's
  // arguments are evaluated is unspecified, so passing packet.src.host by
  // reference alongside std::move(packet) could bind it to a moved-from
  // string.
  std::string lane = packet.src.host;
  judge_and_post(net, lane, arrival, std::move(packet),
                 [world, net, target](SimTime when, Packet p) {
                   world->post_delivery(net, target, when, std::move(p));
                 });
}

Host::Host(World* world, std::string name, Rng rng, Engine* engine, std::size_t shard)
    : Node(world, std::move(name), rng, engine, shard, /*is_router=*/false),
      log_("host@" + name_) {}

Result<void> Host::bind(std::uint16_t port, PacketHandler handler) {
  if (ports_.count(port))
    return Error{Errc::already_exists, name_ + " port " + std::to_string(port) + " in use"};
  ports_[port] = std::move(handler);
  return ok_result();
}

void Host::unbind(std::uint16_t port) { ports_.erase(port); }

std::uint16_t Host::ephemeral_port() {
  while (ports_.count(next_ephemeral_)) {
    ++next_ephemeral_;
    if (next_ephemeral_ == 0) next_ephemeral_ = 49152;
  }
  return next_ephemeral_++;
}

std::vector<std::string> Host::up_networks() const {
  std::vector<std::string> out;
  for (const auto& nic : nics_)
    if (nic->up() && nic->network()->up()) out.push_back(nic->network()->name());
  return out;
}

Result<std::string> Host::send(const Address& dst, Payload payload, const SendOptions& opts) {
  if (!up_) return Error{Errc::unreachable, name_ + " is down"};
  Host* dst_host = world_->host(dst.host);
  if (!dst_host) return Error{Errc::not_found, "no such host " + dst.host};

  // Candidate networks: both endpoints attached with up NICs, network up.
  // §5.3: "the message is sent using the fastest of those" — order by
  // effective bandwidth, then lower latency, then name for determinism.
  // Candidates live in inline storage and are ordered by an allocation-free
  // stable insertion sort: this runs once per datagram, and the two small
  // heap allocations the old vector + stable_sort pair made here were the
  // hottest allocation site in the simulator.
  using Candidate = std::pair<Nic*, Nic*>;  // (our nic, their nic)
  constexpr std::size_t kInlineCandidates = 16;
  Candidate inline_cand[kInlineCandidates];
  std::vector<Candidate> overflow;
  std::size_t ncand = 0;
  for (auto& nic : nics_) {
    if (!nic->up() || !nic->network()->up()) continue;
    Nic* theirs = dst_host->nic_on(nic->network()->name());
    if (theirs == nullptr) continue;
    if (ncand < kInlineCandidates && overflow.empty()) {
      inline_cand[ncand++] = {nic.get(), theirs};
    } else {
      if (overflow.empty()) overflow.assign(inline_cand, inline_cand + ncand);
      overflow.emplace_back(nic.get(), theirs);
      ++ncand;
    }
  }
  if (ncand == 0) return send_routed(dst, dst_host, std::move(payload), opts);
  Candidate* first = overflow.empty() ? inline_cand : overflow.data();
  Candidate* last = first + ncand;

  auto faster = [](const Candidate& a, const Candidate& b) {
    const MediaModel& ma = a.first->network()->model();
    const MediaModel& mb = b.first->network()->model();
    double ea = ma.bandwidth_bps * (1.0 - ma.cell_tax);
    double eb = mb.bandwidth_bps * (1.0 - mb.cell_tax);
    if (ea != eb) return ea > eb;
    if (ma.latency != mb.latency) return ma.latency < mb.latency;
    return a.first->network()->name() < b.first->network()->name();
  };
  for (Candidate* i = first + 1; i < last; ++i) {
    Candidate key = *i;
    Candidate* j = i;
    for (; j > first && faster(key, j[-1]); --j) *j = j[-1];
    *j = key;
  }
  if (!opts.preferred_network.empty()) {
    Candidate* it = std::find_if(first, last, [&](const Candidate& c) {
      return c.first->network()->name() == opts.preferred_network;
    });
    if (it != last) std::rotate(first, it, it + 1);
  }

  auto [ours, theirs] = *first;
  Network* net = ours->network();
  if (payload.size() > net->model().mtu)
    return Error{Errc::invalid_argument,
                 "datagram of " + std::to_string(payload.size()) + " bytes exceeds MTU " +
                     std::to_string(net->model().mtu) + " on " + net->name()};

  // The sender's own engine clocks serialization: a host's sends always run
  // on its shard's thread (or on the coordinator at a window barrier).
  Engine& engine = *engine_;
  SimTime start = std::max(engine.now(), ours->next_free);
  SimDuration ser = net->model().serialize_time(payload.size());
  ours->next_free = start + ser;
  ours->note_tx(payload.size(), ser);
  SimTime arrival = ours->next_free + net->model().latency;

  net->stats().packets_sent++;
  net->stats().bytes_sent += payload.size();

  bool lost = rng_.chance(net->total_loss());
  if (lost) {
    net->stats().drops_loss++;
    return net->name();  // like UDP: the sender cannot tell
  }

  Packet packet{Address{name_, opts.src_port}, dst, std::move(payload), net->name()};
  schedule_delivery(world_, net, dst_host, arrival, std::move(packet));
  return net->name();
}

Result<std::string> Host::send_routed(const Address& dst, Host* dst_host, Payload payload,
                                      const SendOptions& opts) {
  std::shared_ptr<const Route> route = world_->resolve_route(*this, dst.host);
  if (route == nullptr)
    return Error{Errc::unreachable, "no shared network between " + name_ + " and " + dst.host};
  if (payload.size() > route->mtu)
    return Error{Errc::invalid_argument,
                 "datagram of " + std::to_string(payload.size()) +
                     " bytes exceeds route MTU " + std::to_string(route->mtu) + " towards " +
                     dst.host};

  // First hop: charged against our own NIC exactly like a direct send (same
  // contention clock, same stats, same single loss draw from our RNG).
  Nic* ours = route->hops[0].tx;
  Network* net = route->hops[0].net;
  Engine& engine = *engine_;
  SimTime start = std::max(engine.now(), ours->next_free);
  SimDuration ser = net->model().serialize_time(payload.size());
  ours->next_free = start + ser;
  ours->note_tx(payload.size(), ser);
  SimTime arrival = ours->next_free + net->model().latency;

  net->stats().packets_sent++;
  net->stats().bytes_sent += payload.size();

  if (rng_.chance(net->total_loss())) {
    net->stats().drops_loss++;
    return net->name();
  }

  Packet packet{Address{name_, opts.src_port}, dst, std::move(payload), net->name()};
  if (route->hops.size() == 1) {
    schedule_delivery(world_, net, dst_host, arrival, std::move(packet));
    return net->name();
  }
  World* world = world_;
  judge_and_post(net, name_, arrival, std::move(packet),
                 [world, &route](SimTime when, Packet p) {
                   world->post_hop(route, 1, when, std::move(p));
                 });
  return net->name();
}

void Host::deliver(Packet packet, Network* network) {
  // Conditions are re-checked at delivery time: the destination may have
  // died or the link may have failed while the packet was in flight.
  Nic* nic = nic_on(network->name());
  if (!up_ || !network->up() || nic == nullptr || !nic->up()) {
    network->stats().drops_down++;
    return;
  }
  auto it = ports_.find(packet.dst.port);
  if (it == ports_.end()) {
    network->stats().drops_unbound++;
    return;
  }
  network->stats().packets_delivered++;
  it->second(packet);
}

Result<void> Host::broadcast(const std::string& network, std::uint16_t port, Payload payload,
                             std::uint16_t src_port) {
  if (!up_) return Error{Errc::unreachable, name_ + " is down"};
  Nic* ours = nic_on(network);
  if (ours == nullptr || !ours->up() || !ours->network()->up())
    return Error{Errc::unreachable, name_ + " has no up NIC on " + network};
  Network* net = ours->network();
  if (payload.size() > net->model().mtu)
    return Error{Errc::invalid_argument, "broadcast exceeds MTU on " + network};

  Engine& engine = *engine_;
  SimTime start = std::max(engine.now(), ours->next_free);
  SimDuration ser = net->model().serialize_time(payload.size());
  ours->next_free = start + ser;
  ours->note_tx(payload.size(), ser);
  SimTime arrival = ours->next_free + net->model().latency;

  // One serialization, one arrival event per receiver — shared-medium
  // broadcast, with loss drawn independently per receiver.  Routers on the
  // segment do not receive broadcasts.
  for (Nic* nic : net->nics()) {
    Host* target = nic->host();
    if (target == this || target == nullptr) continue;
    net->stats().packets_sent++;
    net->stats().bytes_sent += payload.size();
    if (rng_.chance(net->total_loss())) {
      net->stats().drops_loss++;
      continue;
    }
    Packet packet{Address{name_, src_port}, Address{target->name(), port}, payload,
                  net->name()};
    schedule_delivery(world_, net, target, arrival, std::move(packet));
  }
  return ok_result();
}

World::World(std::uint64_t seed, std::size_t shards) {
  assert(shards >= 1 && "a World needs at least one shard");
  engines_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    // Shard 0 carries the run seed: hosts fork their RNGs from it in
    // creation order, so the per-host streams are identical for every shard
    // count.  The other engines get decorrelated seeds of their own.
    engines_.push_back(
        std::make_unique<Engine>(seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i)));
  }
  if (shards > 1) {
    // Constructed last so the coordinator thread's fallback trace/log clock
    // is the control engine's.
    ctrl_engine_ = std::make_unique<Engine>(seed ^ 0xc2b2ae3d27d4eb4fULL);
    ctrl_ = ctrl_engine_.get();
  } else {
    ctrl_ = engines_[0].get();
  }
  mail_.resize(shards);
  for (auto& row : mail_) row.resize(shards);
  mail_seq_.assign(shards, 0);
  shard_busy_ns_.assign(shards, 0);
}

World::~World() {
  stop_workers();
  // Pending events may own endpoints that unbind from hosts on
  // destruction; release them while the hosts are still alive.
  if (ctrl_engine_) ctrl_engine_->clear();
  for (auto& e : engines_) e->clear();
  for (auto& row : mail_)
    for (auto& cell : row) cell.clear();
}

SimTime World::now() const {
  Engine* e = Engine::thread_engine();
  return e != nullptr ? e->now() : ctrl_->now();
}

Network& World::create_network(const std::string& name, MediaModel model) {
  assert(!networks_.count(name) && "duplicate network name");
  auto net = std::make_unique<Network>(name, std::move(model));
  net->world_ = this;
  Network& ref = *net;
  networks_[name] = std::move(net);
  return ref;
}

Host& World::create_host(const std::string& name, std::size_t shard) {
  assert(!hosts_.count(name) && "duplicate host name");
  assert(shard < engines_.size() && "shard out of range");
  auto host = std::make_unique<Host>(this, name, engines_[0]->rng().fork(),
                                     engines_[shard].get(), shard);
  Host& ref = *host;
  hosts_[name] = std::move(host);
  return ref;
}

Router& World::create_router(const std::string& name, std::size_t shard) {
  assert(!routers_.count(name) && !hosts_.count(name) && "duplicate node name");
  assert(shard < engines_.size() && "shard out of range");
  auto router = std::make_unique<Router>(this, name, engines_[0]->rng().fork(),
                                         engines_[shard].get(), shard);
  Router& ref = *router;
  routers_[name] = std::move(router);
  bump_route_epoch();
  return ref;
}

Nic& World::attach(Node& node, Network& network) {
  auto nic = std::make_unique<Nic>(&node, &network);
  Nic& ref = *nic;
  network.nics_.push_back(nic.get());
  node.nics_.push_back(std::move(nic));
  if (network.zone() != nullptr || node.is_router()) bump_route_epoch();
  return ref;
}

Nic& World::attach(const std::string& host_name, const std::string& network_name) {
  Host* h = host(host_name);
  Network* n = network(network_name);
  assert(h && n && "attach: unknown host or network");
  return attach(*h, *n);
}

Host* World::host(const std::string& name) {
  auto it = hosts_.find(name);
  return it == hosts_.end() ? nullptr : it->second.get();
}

Router* World::router(const std::string& name) {
  auto it = routers_.find(name);
  return it == routers_.end() ? nullptr : it->second.get();
}

Network* World::network(const std::string& name) {
  auto it = networks_.find(name);
  return it == networks_.end() ? nullptr : it->second.get();
}

// ---- multi-hop route resolution -------------------------------------------

std::shared_ptr<const Route> World::resolve_route(Host& src, const std::string& dst) {
  std::uint64_t epoch = route_epoch();
  auto it = src.route_cache_.find(dst);
  if (it != src.route_cache_.end() && it->second.epoch == epoch) return it->second.route;
  Host* dst_host = host(dst);
  std::shared_ptr<const Route> route =
      dst_host == nullptr || dst_host == &src ? nullptr : compute_route(src, *dst_host);
  src.route_cache_[dst] = Host::CachedRoute{epoch, route};
  return route;
}

std::shared_ptr<const Route> World::compute_route(Host& src, Host& dst) {
  // Latency-shortest path over up links.  Vertices are nodes; an up network
  // connects every pair of its up attachments at the network's propagation
  // latency (counted once per traversal).  Hosts never forward: only the
  // source expands among hosts, and only the destination terminates.  The
  // destination itself is exempt from up checks — like the direct path, a
  // packet to a down endpoint still transmits and drops at delivery, so an
  // endpoint crash never changes route structure (and never needs an epoch
  // bump: the cached route stays correct across the restart).
  // Equal-cost ties are broken by a deterministic per-(src,dst,edge) hash,
  // so distinct pairs spread across parallel fabric planes (ECMP) while the
  // choice never depends on memory layout or thread timing.
  struct State {
    SimDuration dist = 0;
    std::uint64_t tie = 0;
    Node* prev = nullptr;
    Nic* via_tx = nullptr;
    Network* via_net = nullptr;
    std::size_t mtu = static_cast<std::size_t>(-1);
    bool done = false;
  };
  struct QItem {
    SimDuration dist;
    std::uint64_t tie;
    Node* node;
  };
  auto later = [](const QItem& a, const QItem& b) {
    if (a.dist != b.dist) return a.dist > b.dist;
    if (a.tie != b.tie) return a.tie > b.tie;
    return a.node->name() > b.node->name();
  };
  std::map<Node*, State> states;  // pointer keys: lookup only, never iterated
  std::priority_queue<QItem, std::vector<QItem>, decltype(later)> queue(later);
  states[&src] = State{};
  queue.push(QItem{0, 0, &src});
  while (!queue.empty()) {
    QItem top = queue.top();
    queue.pop();
    State& su = states[top.node];
    if (su.done || top.dist != su.dist || top.tie != su.tie) continue;  // stale entry
    su.done = true;
    if (top.node == &dst) break;
    if (top.node != &src && !top.node->is_router()) continue;
    for (const auto& nic : top.node->nics()) {
      Network* net = nic->network();
      if (!nic->up() || !net->up()) continue;
      SimDuration ndist = sat_add(top.dist, net->model().latency);
      std::size_t nmtu = std::min(su.mtu, net->model().mtu);
      for (Nic* other : net->nics()) {
        if (other == nic.get()) continue;
        Node* v = other->node();
        if (!v->is_router() && v != &dst) continue;
        if (v != &dst && (!other->up() || !v->up())) continue;
        std::uint64_t tie =
            route_tie(src.name(), dst.name(), top.node->name(), v->name(), net->name());
        State& sv = states[v];  // value-initialized on first touch
        bool fresh = sv.via_net == nullptr && v != &src;
        if (sv.done) continue;
        if (!fresh && (ndist > sv.dist || (ndist == sv.dist && tie >= sv.tie))) continue;
        sv.dist = ndist;
        sv.tie = tie;
        sv.prev = top.node;
        sv.via_tx = nic.get();
        sv.via_net = net;
        sv.mtu = nmtu;
        queue.push(QItem{ndist, tie, v});
      }
    }
  }
  auto dit = states.find(&dst);
  if (dit == states.end() || !dit->second.done) return nullptr;
  auto route = std::make_shared<Route>();
  route->dst = &dst;
  route->latency = dit->second.dist;
  route->mtu = dit->second.mtu;
  for (Node* n = &dst; n != &src;) {
    const State& s = states[n];
    route->hops.push_back(RouteHop{s.via_tx, s.via_net});
    n = s.prev;
  }
  std::reverse(route->hops.begin(), route->hops.end());
  return route;
}

SimDuration World::net_distance(const std::string& a, const std::string& b) {
  if (a == b) return 0;
  Host* ha = host(a);
  Host* hb = host(b);
  if (ha == nullptr || hb == nullptr) return kUnreachable;
  // Adjacent pair: the flat model's answer (best shared-network latency),
  // kept as a fast path so replica ranking inside a rack never pays a
  // graph walk.
  SimDuration best = kUnreachable;
  for (const auto& nic : ha->nics()) {
    if (!nic->up() || !nic->network()->up()) continue;
    Nic* theirs = hb->nic_on(nic->network()->name());
    if (theirs == nullptr || !theirs->up()) continue;
    best = std::min(best, nic->network()->model().latency);
  }
  if (best != kUnreachable) return best;
  std::shared_ptr<const Route> route = resolve_route(*ha, b);
  return route != nullptr ? route->latency : kUnreachable;
}

void World::forward_hop(std::shared_ptr<const Route> route, std::size_t i, Packet packet) {
  const RouteHop& hop = route->hops[i];
  Nic* tx = hop.tx;
  Node* node = tx->node();
  Network* net = hop.net;
  // The route was valid when resolved; re-check at forward time — the
  // router, its egress NIC or the link may have died while the packet was
  // in flight (§6's route-switching scenario: the transport's retransmit
  // re-resolves against the bumped epoch and fails over).
  if (!node->up() || !tx->up() || !net->up()) {
    net->stats().drops_down++;
    return;
  }
  Engine& engine = node->engine();
  SimTime start = std::max(engine.now(), tx->next_free);
  SimDuration ser = net->model().serialize_time(packet.payload.size());
  tx->next_free = start + ser;
  tx->note_tx(packet.payload.size(), ser);
  SimTime arrival = tx->next_free + net->model().latency;

  net->stats().packets_sent++;
  net->stats().bytes_sent += packet.payload.size();

  if (node->rng().chance(net->total_loss())) {
    net->stats().drops_loss++;
    return;
  }

  packet.network = net->name();
  if (i + 1 == route->hops.size()) {
    judge_and_post(net, node->name(), arrival, std::move(packet),
                   [this, net, &route](SimTime when, Packet p) {
                     post_delivery(net, route->dst, when, std::move(p));
                   });
    return;
  }
  judge_and_post(net, node->name(), arrival, std::move(packet),
                 [this, &route, i](SimTime when, Packet p) {
                   post_hop(route, i + 1, when, std::move(p));
                 });
}

void World::post_hop(std::shared_ptr<const Route> route, std::size_t i, SimTime when,
                     Packet packet) {
  Node* node = route->hops[i].tx->node();
  Engine* engine = &node->engine();
  post_event(node->shard(), engine, when,
             [this, route = std::move(route), i, packet = std::move(packet)]() mutable {
               forward_hop(std::move(route), i, std::move(packet));
             });
}

void World::post_event(std::size_t shard, Engine* engine, SimTime arrival, EventFn fn) {
  int src = t_current_shard;
  if (src < 0 || static_cast<std::size_t>(src) == shard) {
    // Same shard, or the coordinator between windows: straight onto the
    // target's engine — the classic path.  A coordinator-initiated send can
    // race the destination clock (its shard may have simulated past the
    // arrival already), so it lands no earlier than the target's now.
    engine->schedule_at(std::max(arrival, engine->now()), std::move(fn));
    return;
  }
  // Cross-shard: park it in the mailbox until the window barrier.  The
  // conservative window guarantees arrival >= the window end, so the
  // destination has not simulated past it.
  auto s = static_cast<std::size_t>(src);
  mail_[s][shard].push_back(MailItem{arrival, mail_seq_[s]++, engine, std::move(fn)});
}

void World::post_delivery(Network* net, Host* target, SimTime arrival, Packet packet) {
  post_event(target->shard(), &target->engine(), arrival,
             [target, net, packet = std::move(packet)]() mutable {
               target->deliver(std::move(packet), net);
             });
}

void World::drain_mailboxes() {
  struct Entry {
    std::size_t src;
    MailItem item;
  };
  std::size_t total = 0;
  for (auto& row : mail_)
    for (auto& cell : row) total += cell.size();
  if (total == 0) return;
  std::vector<Entry> entries;
  entries.reserve(total);
  for (std::size_t s = 0; s < mail_.size(); ++s)
    for (auto& cell : mail_[s]) {
      for (auto& item : cell) entries.push_back(Entry{s, std::move(item)});
      cell.clear();
    }
  // Deterministic insertion order: arrival time, then source shard, then
  // the source's posting sequence.  Engine sequence numbers then preserve
  // this order among equal-time deliveries, so the destination sees the
  // same equal-time ordering for every shard count that keeps the sources
  // on distinct shards.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.item.arrival != b.item.arrival) return a.item.arrival < b.item.arrival;
    if (a.src != b.src) return a.src < b.src;
    return a.item.seq < b.item.seq;
  });
  run_stats_.cross_shard_packets += total;
  for (Entry& e : entries) {
    assert(e.item.arrival >= e.item.engine->now() && "conservative window violated");
    e.item.engine->schedule_at(e.item.arrival, std::move(e.item.fn));
  }
}

SimTime World::compute_lookahead() const {
  SimTime la = Engine::kNever;
  for (const auto& [name, net] : networks_) {
    bool cross = false;
    std::size_t first_shard = 0;
    bool seen = false;
    for (const Nic* nic : net->nics()) {
      std::size_t s = nic->node()->shard();
      if (!seen) {
        first_shard = s;
        seen = true;
      } else if (s != first_shard) {
        cross = true;
        break;
      }
    }
    if (cross) la = std::min(la, net->model().latency);
  }
  // A zero-latency cross-shard link would make windows empty; clamp to one
  // tick (such a link also voids the conservative guarantee — see
  // DESIGN.md §sharded-engine).
  return std::max<SimTime>(la, 1);
}

void World::ensure_workers() {
  if (engines_.size() == 1 || !workers_.empty()) return;
  workers_.reserve(engines_.size());
  for (std::size_t i = 0; i < engines_.size(); ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

void World::stop_workers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    quit_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
  workers_.clear();
  quit_ = false;
}

void World::worker_main(std::size_t shard) {
  Engine* eng = engines_[shard].get();
  // For this thread's whole life: trace/log clock reads this shard's
  // engine, and deliveries posted from here route through post_event's
  // shard-aware path.
  Engine::ThreadTimeScope scope(eng);
  t_current_shard = static_cast<int>(shard);
  std::uint64_t seen = 0;
  while (true) {
    SimTime end;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return quit_ || window_gen_ != seen; });
      if (quit_) return;
      seen = window_gen_;
      end = window_end_;
    }
    std::uint64_t c0 = thread_cpu_ns();
    eng->run_before(end, /*weak_too=*/true);
    std::uint64_t c1 = thread_cpu_ns();
    {
      std::lock_guard<std::mutex> lock(mu_);
      shard_busy_ns_[shard] = c1 - c0;
      if (++done_ == engines_.size()) cv_done_.notify_one();
    }
  }
}

void World::run_windows(SimTime horizon, bool stop_when_strong_drained) {
  ensure_workers();
  lookahead_ = compute_lookahead();
  const std::size_t n = engines_.size();
  while (true) {
    if (stop_when_strong_drained) {
      std::size_t strong = ctrl_->strong_pending();
      for (auto& e : engines_) strong += e->strong_pending();
      if (strong == 0) break;
    }
    SimTime ctrl_next = ctrl_->next_event_time();
    SimTime s = ctrl_next;
    for (auto& e : engines_) s = std::min(s, e->next_event_time());
    if (s == Engine::kNever || s > horizon) break;
    if (ctrl_next == s) {
      // Control actions at time s run first, on this thread, with every
      // worker idle: they may touch any host or network safely, and
      // whatever they schedule at s is picked up when the loop recomputes.
      Engine::ThreadTimeScope scope(ctrl_);
      ctrl_->run_before(sat_add(s, 1), /*weak_too=*/true);
      continue;
    }
    // Conservative window [s, e): nothing can cross shards into it.
    SimTime e = std::min({sat_add(s, lookahead_), ctrl_next, sat_add(horizon, 1)});
    {
      std::unique_lock<std::mutex> lock(mu_);
      window_end_ = e;
      done_ = 0;
      ++window_gen_;
      cv_work_.notify_all();
      cv_done_.wait(lock, [&] { return done_ == n; });
    }
    // Workers are idle again; the barrier above is the happens-before edge
    // that publishes their window's writes (mailboxes, busy times, host
    // state) to this thread.
    drain_mailboxes();
    ++run_stats_.windows;
    std::uint64_t wmax = 0;
    for (std::uint64_t b : shard_busy_ns_) {
      wmax = std::max(wmax, b);
      run_stats_.busy_ns += b;
    }
    run_stats_.critical_path_ns += wmax;
  }
}

void World::run_until(SimTime t) {
  if (engines_.size() == 1) {
    engines_[0]->run_until(t);
    return;
  }
  run_windows(t, /*stop_when_strong_drained=*/false);
  for (auto& e : engines_) e->advance_to(t);
  ctrl_->advance_to(t);
}

std::size_t World::run_all() {
  std::uint64_t before = events_run();
  if (engines_.size() == 1) {
    engines_[0]->run();
  } else {
    run_windows(Engine::kNever, /*stop_when_strong_drained=*/true);
  }
  return static_cast<std::size_t>(events_run() - before);
}

std::uint64_t World::events_run() const {
  std::uint64_t total = ctrl_engine_ ? ctrl_engine_->events_run() : 0;
  for (const auto& e : engines_) total += e->events_run();
  return total;
}

}  // namespace snipe::simnet
