#include "simnet/world.hpp"

#include <algorithm>
#include <cassert>

#include "simnet/fault.hpp"

namespace snipe::simnet {

/// Reordering is extra delivery delay; a duplicate is a second,
/// independently-jittered arrival event.
void Host::schedule_delivery(Engine& engine, Network* net, Host* target, SimTime arrival,
                             Packet packet) {
  FaultInjector* fault = net->fault();
  if (fault != nullptr) {
    FaultVerdict v = fault->judge(packet.src.host, packet.dst.host);
    if (v.drop) {
      net->stats().drops_fault++;
      return;
    }
    if (v.corrupt) {
      fault->corrupt_payload(packet.payload);
      net->stats().fault_corruptions++;
    }
    if (v.copies > 1) {
      net->stats().fault_duplicates += static_cast<std::uint64_t>(v.copies - 1);
      Packet copy = packet;
      engine.schedule_at(arrival + v.extra_delay + v.dup_delay,
                         [target, net, copy = std::move(copy)]() mutable {
                           target->deliver(std::move(copy), net);
                         });
    }
    arrival += v.extra_delay;
  }
  engine.schedule_at(arrival, [target, net, packet = std::move(packet)]() mutable {
    target->deliver(std::move(packet), net);
  });
}

Host::Host(World* world, std::string name, Rng rng)
    : world_(world), name_(std::move(name)), rng_(rng), log_("host@" + name_) {}

Result<void> Host::bind(std::uint16_t port, PacketHandler handler) {
  if (ports_.count(port))
    return Error{Errc::already_exists, name_ + " port " + std::to_string(port) + " in use"};
  ports_[port] = std::move(handler);
  return ok_result();
}

void Host::unbind(std::uint16_t port) { ports_.erase(port); }

std::uint16_t Host::ephemeral_port() {
  while (ports_.count(next_ephemeral_)) {
    ++next_ephemeral_;
    if (next_ephemeral_ == 0) next_ephemeral_ = 49152;
  }
  return next_ephemeral_++;
}

Nic* Host::nic_on(const std::string& network) {
  for (auto& nic : nics_)
    if (nic->network()->name() == network) return nic.get();
  return nullptr;
}

std::vector<std::string> Host::up_networks() const {
  std::vector<std::string> out;
  for (const auto& nic : nics_)
    if (nic->up() && nic->network()->up()) out.push_back(nic->network()->name());
  return out;
}

Result<std::string> Host::send(const Address& dst, Payload payload, const SendOptions& opts) {
  if (!up_) return Error{Errc::unreachable, name_ + " is down"};
  Host* dst_host = world_->host(dst.host);
  if (!dst_host) return Error{Errc::not_found, "no such host " + dst.host};

  // Candidate networks: both endpoints attached with up NICs, network up.
  // §5.3: "the message is sent using the fastest of those" — order by
  // effective bandwidth, then lower latency, then name for determinism.
  // Candidates live in inline storage and are ordered by an allocation-free
  // stable insertion sort: this runs once per datagram, and the two small
  // heap allocations the old vector + stable_sort pair made here were the
  // hottest allocation site in the simulator.
  using Candidate = std::pair<Nic*, Nic*>;  // (our nic, their nic)
  constexpr std::size_t kInlineCandidates = 16;
  Candidate inline_cand[kInlineCandidates];
  std::vector<Candidate> overflow;
  std::size_t ncand = 0;
  for (auto& nic : nics_) {
    if (!nic->up() || !nic->network()->up()) continue;
    Nic* theirs = dst_host->nic_on(nic->network()->name());
    if (theirs == nullptr) continue;
    if (ncand < kInlineCandidates && overflow.empty()) {
      inline_cand[ncand++] = {nic.get(), theirs};
    } else {
      if (overflow.empty()) overflow.assign(inline_cand, inline_cand + ncand);
      overflow.emplace_back(nic.get(), theirs);
      ++ncand;
    }
  }
  if (ncand == 0)
    return Error{Errc::unreachable, "no shared network between " + name_ + " and " + dst.host};
  Candidate* first = overflow.empty() ? inline_cand : overflow.data();
  Candidate* last = first + ncand;

  auto faster = [](const Candidate& a, const Candidate& b) {
    const MediaModel& ma = a.first->network()->model();
    const MediaModel& mb = b.first->network()->model();
    double ea = ma.bandwidth_bps * (1.0 - ma.cell_tax);
    double eb = mb.bandwidth_bps * (1.0 - mb.cell_tax);
    if (ea != eb) return ea > eb;
    if (ma.latency != mb.latency) return ma.latency < mb.latency;
    return a.first->network()->name() < b.first->network()->name();
  };
  for (Candidate* i = first + 1; i < last; ++i) {
    Candidate key = *i;
    Candidate* j = i;
    for (; j > first && faster(key, j[-1]); --j) *j = j[-1];
    *j = key;
  }
  if (!opts.preferred_network.empty()) {
    Candidate* it = std::find_if(first, last, [&](const Candidate& c) {
      return c.first->network()->name() == opts.preferred_network;
    });
    if (it != last) std::rotate(first, it, it + 1);
  }

  auto [ours, theirs] = *first;
  Network* net = ours->network();
  if (payload.size() > net->model().mtu)
    return Error{Errc::invalid_argument,
                 "datagram of " + std::to_string(payload.size()) + " bytes exceeds MTU " +
                     std::to_string(net->model().mtu) + " on " + net->name()};

  Engine& engine = world_->engine();
  SimTime start = std::max(engine.now(), ours->next_free);
  SimDuration ser = net->model().serialize_time(payload.size());
  ours->next_free = start + ser;
  SimTime arrival = ours->next_free + net->model().latency;

  net->stats().packets_sent++;
  net->stats().bytes_sent += payload.size();

  bool lost = rng_.chance(net->total_loss());
  if (lost) {
    net->stats().drops_loss++;
    return net->name();  // like UDP: the sender cannot tell
  }

  Packet packet{Address{name_, opts.src_port}, dst, std::move(payload), net->name()};
  schedule_delivery(engine, net, dst_host, arrival, std::move(packet));
  return net->name();
}

void Host::deliver(Packet packet, Network* network) {
  // Conditions are re-checked at delivery time: the destination may have
  // died or the link may have failed while the packet was in flight.
  Nic* nic = nic_on(network->name());
  if (!up_ || !network->up() || nic == nullptr || !nic->up()) {
    network->stats().drops_down++;
    return;
  }
  auto it = ports_.find(packet.dst.port);
  if (it == ports_.end()) {
    network->stats().drops_unbound++;
    return;
  }
  network->stats().packets_delivered++;
  it->second(packet);
}

Result<void> Host::broadcast(const std::string& network, std::uint16_t port, Payload payload,
                             std::uint16_t src_port) {
  if (!up_) return Error{Errc::unreachable, name_ + " is down"};
  Nic* ours = nic_on(network);
  if (ours == nullptr || !ours->up() || !ours->network()->up())
    return Error{Errc::unreachable, name_ + " has no up NIC on " + network};
  Network* net = ours->network();
  if (payload.size() > net->model().mtu)
    return Error{Errc::invalid_argument, "broadcast exceeds MTU on " + network};

  Engine& engine = world_->engine();
  SimTime start = std::max(engine.now(), ours->next_free);
  SimDuration ser = net->model().serialize_time(payload.size());
  ours->next_free = start + ser;
  SimTime arrival = ours->next_free + net->model().latency;

  // One serialization, one arrival event per receiver — shared-medium
  // broadcast, with loss drawn independently per receiver.
  for (Nic* nic : net->nics()) {
    if (nic->host() == this) continue;
    net->stats().packets_sent++;
    net->stats().bytes_sent += payload.size();
    if (rng_.chance(net->total_loss())) {
      net->stats().drops_loss++;
      continue;
    }
    Host* target = nic->host();
    Packet packet{Address{name_, src_port}, Address{target->name(), port}, payload,
                  net->name()};
    schedule_delivery(engine, net, target, arrival, std::move(packet));
  }
  return ok_result();
}

Network& World::create_network(const std::string& name, MediaModel model) {
  assert(!networks_.count(name) && "duplicate network name");
  auto net = std::make_unique<Network>(name, std::move(model));
  Network& ref = *net;
  networks_[name] = std::move(net);
  return ref;
}

Host& World::create_host(const std::string& name) {
  assert(!hosts_.count(name) && "duplicate host name");
  auto host = std::make_unique<Host>(this, name, engine_.rng().fork());
  Host& ref = *host;
  hosts_[name] = std::move(host);
  return ref;
}

Nic& World::attach(Host& host, Network& network) {
  auto nic = std::make_unique<Nic>(&host, &network);
  Nic& ref = *nic;
  network.nics_.push_back(nic.get());
  host.nics_.push_back(std::move(nic));
  return ref;
}

Nic& World::attach(const std::string& host_name, const std::string& network_name) {
  Host* h = host(host_name);
  Network* n = network(network_name);
  assert(h && n && "attach: unknown host or network");
  return attach(*h, *n);
}

Host* World::host(const std::string& name) {
  auto it = hosts_.find(name);
  return it == hosts_.end() ? nullptr : it->second.get();
}

Network* World::network(const std::string& name) {
  auto it = networks_.find(name);
  return it == networks_.end() ? nullptr : it->second.get();
}

}  // namespace snipe::simnet
