#include "simnet/world.hpp"

#include <algorithm>
#include <cassert>
#include <ctime>

#include "simnet/fault.hpp"

namespace snipe::simnet {

namespace {

/// Shard index of the calling thread: workers of a sharded World set this
/// for their lifetime; -1 on the coordinator (and every other) thread.
thread_local int t_current_shard = -1;

/// CPU time consumed by the calling thread.  This is what the windowed
/// driver charges per shard per window: on a box with fewer cores than
/// shards the wall clock measures scheduling luck, while the per-window
/// maximum of this is the true critical path of the parallel execution.
std::uint64_t thread_cpu_ns() {
#if defined(__linux__)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
           static_cast<std::uint64_t>(ts.tv_nsec);
#endif
  return 0;
}

SimTime sat_add(SimTime a, SimTime b) {
  return b >= Engine::kNever - a ? Engine::kNever : a + b;
}

}  // namespace

/// Reordering is extra delivery delay; a duplicate is a second,
/// independently-jittered arrival event.
void Host::schedule_delivery(World* world, Network* net, Host* target, SimTime arrival,
                             Packet packet) {
  FaultInjector* fault = net->fault();
  if (fault != nullptr) {
    FaultVerdict v = fault->judge(packet.src.host, packet.dst.host);
    if (v.drop) {
      net->stats().drops_fault++;
      return;
    }
    if (v.corrupt) {
      fault->corrupt_payload(packet.payload, packet.src.host);
      net->stats().fault_corruptions++;
    }
    if (v.copies > 1) {
      net->stats().fault_duplicates += static_cast<std::uint64_t>(v.copies - 1);
      // The duplicate is posted first, as it always has been: at equal
      // arrival times post order decides delivery order.
      world->post_delivery(net, target, arrival + v.extra_delay + v.dup_delay, packet);
    }
    arrival += v.extra_delay;
  }
  world->post_delivery(net, target, arrival, std::move(packet));
}

Host::Host(World* world, std::string name, Rng rng, Engine* engine, std::size_t shard)
    : world_(world),
      name_(std::move(name)),
      rng_(rng),
      engine_(engine),
      shard_(shard),
      log_("host@" + name_) {}

Result<void> Host::bind(std::uint16_t port, PacketHandler handler) {
  if (ports_.count(port))
    return Error{Errc::already_exists, name_ + " port " + std::to_string(port) + " in use"};
  ports_[port] = std::move(handler);
  return ok_result();
}

void Host::unbind(std::uint16_t port) { ports_.erase(port); }

std::uint16_t Host::ephemeral_port() {
  while (ports_.count(next_ephemeral_)) {
    ++next_ephemeral_;
    if (next_ephemeral_ == 0) next_ephemeral_ = 49152;
  }
  return next_ephemeral_++;
}

Nic* Host::nic_on(const std::string& network) {
  for (auto& nic : nics_)
    if (nic->network()->name() == network) return nic.get();
  return nullptr;
}

std::vector<std::string> Host::up_networks() const {
  std::vector<std::string> out;
  for (const auto& nic : nics_)
    if (nic->up() && nic->network()->up()) out.push_back(nic->network()->name());
  return out;
}

Result<std::string> Host::send(const Address& dst, Payload payload, const SendOptions& opts) {
  if (!up_) return Error{Errc::unreachable, name_ + " is down"};
  Host* dst_host = world_->host(dst.host);
  if (!dst_host) return Error{Errc::not_found, "no such host " + dst.host};

  // Candidate networks: both endpoints attached with up NICs, network up.
  // §5.3: "the message is sent using the fastest of those" — order by
  // effective bandwidth, then lower latency, then name for determinism.
  // Candidates live in inline storage and are ordered by an allocation-free
  // stable insertion sort: this runs once per datagram, and the two small
  // heap allocations the old vector + stable_sort pair made here were the
  // hottest allocation site in the simulator.
  using Candidate = std::pair<Nic*, Nic*>;  // (our nic, their nic)
  constexpr std::size_t kInlineCandidates = 16;
  Candidate inline_cand[kInlineCandidates];
  std::vector<Candidate> overflow;
  std::size_t ncand = 0;
  for (auto& nic : nics_) {
    if (!nic->up() || !nic->network()->up()) continue;
    Nic* theirs = dst_host->nic_on(nic->network()->name());
    if (theirs == nullptr) continue;
    if (ncand < kInlineCandidates && overflow.empty()) {
      inline_cand[ncand++] = {nic.get(), theirs};
    } else {
      if (overflow.empty()) overflow.assign(inline_cand, inline_cand + ncand);
      overflow.emplace_back(nic.get(), theirs);
      ++ncand;
    }
  }
  if (ncand == 0)
    return Error{Errc::unreachable, "no shared network between " + name_ + " and " + dst.host};
  Candidate* first = overflow.empty() ? inline_cand : overflow.data();
  Candidate* last = first + ncand;

  auto faster = [](const Candidate& a, const Candidate& b) {
    const MediaModel& ma = a.first->network()->model();
    const MediaModel& mb = b.first->network()->model();
    double ea = ma.bandwidth_bps * (1.0 - ma.cell_tax);
    double eb = mb.bandwidth_bps * (1.0 - mb.cell_tax);
    if (ea != eb) return ea > eb;
    if (ma.latency != mb.latency) return ma.latency < mb.latency;
    return a.first->network()->name() < b.first->network()->name();
  };
  for (Candidate* i = first + 1; i < last; ++i) {
    Candidate key = *i;
    Candidate* j = i;
    for (; j > first && faster(key, j[-1]); --j) *j = j[-1];
    *j = key;
  }
  if (!opts.preferred_network.empty()) {
    Candidate* it = std::find_if(first, last, [&](const Candidate& c) {
      return c.first->network()->name() == opts.preferred_network;
    });
    if (it != last) std::rotate(first, it, it + 1);
  }

  auto [ours, theirs] = *first;
  Network* net = ours->network();
  if (payload.size() > net->model().mtu)
    return Error{Errc::invalid_argument,
                 "datagram of " + std::to_string(payload.size()) + " bytes exceeds MTU " +
                     std::to_string(net->model().mtu) + " on " + net->name()};

  // The sender's own engine clocks serialization: a host's sends always run
  // on its shard's thread (or on the coordinator at a window barrier).
  Engine& engine = *engine_;
  SimTime start = std::max(engine.now(), ours->next_free);
  SimDuration ser = net->model().serialize_time(payload.size());
  ours->next_free = start + ser;
  SimTime arrival = ours->next_free + net->model().latency;

  net->stats().packets_sent++;
  net->stats().bytes_sent += payload.size();

  bool lost = rng_.chance(net->total_loss());
  if (lost) {
    net->stats().drops_loss++;
    return net->name();  // like UDP: the sender cannot tell
  }

  Packet packet{Address{name_, opts.src_port}, dst, std::move(payload), net->name()};
  schedule_delivery(world_, net, dst_host, arrival, std::move(packet));
  return net->name();
}

void Host::deliver(Packet packet, Network* network) {
  // Conditions are re-checked at delivery time: the destination may have
  // died or the link may have failed while the packet was in flight.
  Nic* nic = nic_on(network->name());
  if (!up_ || !network->up() || nic == nullptr || !nic->up()) {
    network->stats().drops_down++;
    return;
  }
  auto it = ports_.find(packet.dst.port);
  if (it == ports_.end()) {
    network->stats().drops_unbound++;
    return;
  }
  network->stats().packets_delivered++;
  it->second(packet);
}

Result<void> Host::broadcast(const std::string& network, std::uint16_t port, Payload payload,
                             std::uint16_t src_port) {
  if (!up_) return Error{Errc::unreachable, name_ + " is down"};
  Nic* ours = nic_on(network);
  if (ours == nullptr || !ours->up() || !ours->network()->up())
    return Error{Errc::unreachable, name_ + " has no up NIC on " + network};
  Network* net = ours->network();
  if (payload.size() > net->model().mtu)
    return Error{Errc::invalid_argument, "broadcast exceeds MTU on " + network};

  Engine& engine = *engine_;
  SimTime start = std::max(engine.now(), ours->next_free);
  SimDuration ser = net->model().serialize_time(payload.size());
  ours->next_free = start + ser;
  SimTime arrival = ours->next_free + net->model().latency;

  // One serialization, one arrival event per receiver — shared-medium
  // broadcast, with loss drawn independently per receiver.
  for (Nic* nic : net->nics()) {
    if (nic->host() == this) continue;
    net->stats().packets_sent++;
    net->stats().bytes_sent += payload.size();
    if (rng_.chance(net->total_loss())) {
      net->stats().drops_loss++;
      continue;
    }
    Host* target = nic->host();
    Packet packet{Address{name_, src_port}, Address{target->name(), port}, payload,
                  net->name()};
    schedule_delivery(world_, net, target, arrival, std::move(packet));
  }
  return ok_result();
}

World::World(std::uint64_t seed, std::size_t shards) {
  assert(shards >= 1 && "a World needs at least one shard");
  engines_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    // Shard 0 carries the run seed: hosts fork their RNGs from it in
    // creation order, so the per-host streams are identical for every shard
    // count.  The other engines get decorrelated seeds of their own.
    engines_.push_back(
        std::make_unique<Engine>(seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i)));
  }
  if (shards > 1) {
    // Constructed last so the coordinator thread's fallback trace/log clock
    // is the control engine's.
    ctrl_engine_ = std::make_unique<Engine>(seed ^ 0xc2b2ae3d27d4eb4fULL);
    ctrl_ = ctrl_engine_.get();
  } else {
    ctrl_ = engines_[0].get();
  }
  mail_.resize(shards);
  for (auto& row : mail_) row.resize(shards);
  mail_seq_.assign(shards, 0);
  shard_busy_ns_.assign(shards, 0);
}

World::~World() {
  stop_workers();
  // Pending events may own endpoints that unbind from hosts on
  // destruction; release them while the hosts are still alive.
  if (ctrl_engine_) ctrl_engine_->clear();
  for (auto& e : engines_) e->clear();
  for (auto& row : mail_)
    for (auto& cell : row) cell.clear();
}

SimTime World::now() const {
  Engine* e = Engine::thread_engine();
  return e != nullptr ? e->now() : ctrl_->now();
}

Network& World::create_network(const std::string& name, MediaModel model) {
  assert(!networks_.count(name) && "duplicate network name");
  auto net = std::make_unique<Network>(name, std::move(model));
  Network& ref = *net;
  networks_[name] = std::move(net);
  return ref;
}

Host& World::create_host(const std::string& name, std::size_t shard) {
  assert(!hosts_.count(name) && "duplicate host name");
  assert(shard < engines_.size() && "shard out of range");
  auto host = std::make_unique<Host>(this, name, engines_[0]->rng().fork(),
                                     engines_[shard].get(), shard);
  Host& ref = *host;
  hosts_[name] = std::move(host);
  return ref;
}

Nic& World::attach(Host& host, Network& network) {
  auto nic = std::make_unique<Nic>(&host, &network);
  Nic& ref = *nic;
  network.nics_.push_back(nic.get());
  host.nics_.push_back(std::move(nic));
  return ref;
}

Nic& World::attach(const std::string& host_name, const std::string& network_name) {
  Host* h = host(host_name);
  Network* n = network(network_name);
  assert(h && n && "attach: unknown host or network");
  return attach(*h, *n);
}

Host* World::host(const std::string& name) {
  auto it = hosts_.find(name);
  return it == hosts_.end() ? nullptr : it->second.get();
}

Network* World::network(const std::string& name) {
  auto it = networks_.find(name);
  return it == networks_.end() ? nullptr : it->second.get();
}

void World::post_delivery(Network* net, Host* target, SimTime arrival, Packet packet) {
  int src = t_current_shard;
  if (src < 0 || static_cast<std::size_t>(src) == target->shard()) {
    // Same shard, or the coordinator between windows: straight onto the
    // target's engine — the classic path.  A coordinator-initiated send can
    // race the destination clock (its host's shard may have simulated past
    // the arrival already), so it lands no earlier than the target's now.
    SimTime when = std::max(arrival, target->engine().now());
    target->engine().schedule_at(when, [target, net, packet = std::move(packet)]() mutable {
      target->deliver(std::move(packet), net);
    });
    return;
  }
  // Cross-shard: park it in the mailbox until the window barrier.  The
  // conservative window guarantees arrival >= the window end, so the
  // destination has not simulated past it.
  auto s = static_cast<std::size_t>(src);
  mail_[s][target->shard()].push_back(
      MailItem{arrival, mail_seq_[s]++, net, target, std::move(packet)});
}

void World::drain_mailboxes() {
  struct Entry {
    std::size_t src;
    MailItem item;
  };
  std::size_t total = 0;
  for (auto& row : mail_)
    for (auto& cell : row) total += cell.size();
  if (total == 0) return;
  std::vector<Entry> entries;
  entries.reserve(total);
  for (std::size_t s = 0; s < mail_.size(); ++s)
    for (auto& cell : mail_[s]) {
      for (auto& item : cell) entries.push_back(Entry{s, std::move(item)});
      cell.clear();
    }
  // Deterministic insertion order: arrival time, then source shard, then
  // the source's posting sequence.  Engine sequence numbers then preserve
  // this order among equal-time deliveries, so the destination sees the
  // same equal-time ordering for every shard count that keeps the sources
  // on distinct shards.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.item.arrival != b.item.arrival) return a.item.arrival < b.item.arrival;
    if (a.src != b.src) return a.src < b.src;
    return a.item.seq < b.item.seq;
  });
  run_stats_.cross_shard_packets += total;
  for (Entry& e : entries) {
    Host* target = e.item.target;
    Network* net = e.item.net;
    assert(e.item.arrival >= target->engine().now() && "conservative window violated");
    target->engine().schedule_at(e.item.arrival,
                                 [target, net, packet = std::move(e.item.packet)]() mutable {
                                   target->deliver(std::move(packet), net);
                                 });
  }
}

SimTime World::compute_lookahead() const {
  SimTime la = Engine::kNever;
  for (const auto& [name, net] : networks_) {
    bool cross = false;
    std::size_t first_shard = 0;
    bool seen = false;
    for (const Nic* nic : net->nics()) {
      std::size_t s = nic->host()->shard();
      if (!seen) {
        first_shard = s;
        seen = true;
      } else if (s != first_shard) {
        cross = true;
        break;
      }
    }
    if (cross) la = std::min(la, net->model().latency);
  }
  // A zero-latency cross-shard link would make windows empty; clamp to one
  // tick (such a link also voids the conservative guarantee — see
  // DESIGN.md §sharded-engine).
  return std::max<SimTime>(la, 1);
}

void World::ensure_workers() {
  if (engines_.size() == 1 || !workers_.empty()) return;
  workers_.reserve(engines_.size());
  for (std::size_t i = 0; i < engines_.size(); ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

void World::stop_workers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    quit_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
  workers_.clear();
  quit_ = false;
}

void World::worker_main(std::size_t shard) {
  Engine* eng = engines_[shard].get();
  // For this thread's whole life: trace/log clock reads this shard's
  // engine, and deliveries posted from here route through post_delivery's
  // shard-aware path.
  Engine::ThreadTimeScope scope(eng);
  t_current_shard = static_cast<int>(shard);
  std::uint64_t seen = 0;
  while (true) {
    SimTime end;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return quit_ || window_gen_ != seen; });
      if (quit_) return;
      seen = window_gen_;
      end = window_end_;
    }
    std::uint64_t c0 = thread_cpu_ns();
    eng->run_before(end, /*weak_too=*/true);
    std::uint64_t c1 = thread_cpu_ns();
    {
      std::lock_guard<std::mutex> lock(mu_);
      shard_busy_ns_[shard] = c1 - c0;
      if (++done_ == engines_.size()) cv_done_.notify_one();
    }
  }
}

void World::run_windows(SimTime horizon, bool stop_when_strong_drained) {
  ensure_workers();
  lookahead_ = compute_lookahead();
  const std::size_t n = engines_.size();
  while (true) {
    if (stop_when_strong_drained) {
      std::size_t strong = ctrl_->strong_pending();
      for (auto& e : engines_) strong += e->strong_pending();
      if (strong == 0) break;
    }
    SimTime ctrl_next = ctrl_->next_event_time();
    SimTime s = ctrl_next;
    for (auto& e : engines_) s = std::min(s, e->next_event_time());
    if (s == Engine::kNever || s > horizon) break;
    if (ctrl_next == s) {
      // Control actions at time s run first, on this thread, with every
      // worker idle: they may touch any host or network safely, and
      // whatever they schedule at s is picked up when the loop recomputes.
      Engine::ThreadTimeScope scope(ctrl_);
      ctrl_->run_before(sat_add(s, 1), /*weak_too=*/true);
      continue;
    }
    // Conservative window [s, e): nothing can cross shards into it.
    SimTime e = std::min({sat_add(s, lookahead_), ctrl_next, sat_add(horizon, 1)});
    {
      std::unique_lock<std::mutex> lock(mu_);
      window_end_ = e;
      done_ = 0;
      ++window_gen_;
      cv_work_.notify_all();
      cv_done_.wait(lock, [&] { return done_ == n; });
    }
    // Workers are idle again; the barrier above is the happens-before edge
    // that publishes their window's writes (mailboxes, busy times, host
    // state) to this thread.
    drain_mailboxes();
    ++run_stats_.windows;
    std::uint64_t wmax = 0;
    for (std::uint64_t b : shard_busy_ns_) {
      wmax = std::max(wmax, b);
      run_stats_.busy_ns += b;
    }
    run_stats_.critical_path_ns += wmax;
  }
}

void World::run_until(SimTime t) {
  if (engines_.size() == 1) {
    engines_[0]->run_until(t);
    return;
  }
  run_windows(t, /*stop_when_strong_drained=*/false);
  for (auto& e : engines_) e->advance_to(t);
  ctrl_->advance_to(t);
}

std::size_t World::run_all() {
  std::uint64_t before = events_run();
  if (engines_.size() == 1) {
    engines_[0]->run();
  } else {
    run_windows(Engine::kNever, /*stop_when_strong_drained=*/true);
  }
  return static_cast<std::size_t>(events_run() - before);
}

std::uint64_t World::events_run() const {
  std::uint64_t total = ctrl_engine_ ? ctrl_engine_->events_run() : 0;
  for (const auto& e : engines_) total += e->events_run();
  return total;
}

}  // namespace snipe::simnet
