// Routing zones and composable datacenter topologies (DESIGN.md
// §routing-zones; modeled on SimGrid's zone trees).
//
// A Zone is a named region of the topology: a rack, a site, a campus.
// Zones form a tree; leaves hold media segments (plain Networks with the
// existing MediaModels) and interior zones compose children via gateway
// *routers* joined by gateway links — which are themselves plain Networks,
// so fault actions (link_down, partitions) and per-NIC contention apply to
// them unchanged.  The builders below assemble the three shapes SNIPE's
// target environment (§3.4) is made of:
//
//   build_lan       one shared segment (Ethernet-style), all hosts plus an
//                   edge-gateway router on the medium.
//   build_star_lan  a hub router with a private point-to-point segment per
//                   host (switched LAN: per-port contention).
//   build_fat_tree  racks of hosts behind top-of-rack routers, a spine
//                   layer, dedicated ToR<->spine uplinks (ECMP across
//                   spines), a core segment and a border gateway.
//   connect_zones   a gateway link (any media — typically wan_t3 or
//                   internet_lossy) between two zones' gateway routers.
//
// Every zone carries a *shard*: hosts and routers created through the zone
// land on that shard's engine, so with shard-by-zone placement (the
// default: top-level zones round-robin across shards, children inherit)
// cross-shard traffic is exactly cross-zone traffic and the sharded
// engine's lookahead is the min inter-zone gateway latency.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "simnet/media.hpp"
#include "simnet/world.hpp"

namespace snipe::simnet {

/// One region of the topology tree.  Created only via World::create_zone
/// (or the builders); owned by the World.
class Zone {
 public:
  const std::string& name() const { return name_; }
  Zone* parent() const { return parent_; }
  const std::vector<Zone*>& children() const { return children_; }
  World& world() const { return *world_; }
  /// The shard this zone's hosts and routers are created on.
  std::size_t shard() const { return shard_; }

  /// Creates a host in this zone, on the zone's shard — the "default shard
  /// by zone" placement.  Name must be globally unique.
  Host& create_host(const std::string& name);
  /// Ditto for an interior forwarding node.
  Router& create_router(const std::string& name);
  /// Creates a media segment belonging to this zone.
  Network& create_network(const std::string& name, MediaModel model);

  /// The router external gateway links attach to (set by the builders, or
  /// explicitly via set_gateway); nullptr until one exists.
  Router* gateway() const { return gateway_; }
  void set_gateway(Router* r) { gateway_ = r; }

  const std::vector<Host*>& hosts() const { return hosts_; }
  const std::vector<Router*>& routers() const { return routers_; }
  const std::vector<Network*>& networks() const { return networks_; }

 private:
  friend class World;
  Zone(World* world, std::string name, Zone* parent, std::size_t shard)
      : world_(world), name_(std::move(name)), parent_(parent), shard_(shard) {}

  World* world_;
  std::string name_;
  Zone* parent_;
  std::size_t shard_;
  std::vector<Zone*> children_;
  Router* gateway_ = nullptr;
  std::vector<Host*> hosts_;
  std::vector<Router*> routers_;
  std::vector<Network*> networks_;
};

/// A shared-medium LAN zone: `n_hosts` hosts named `<prefix>0..` (prefix
/// defaults to "<name>/h") on one segment "<name>/lan", with an edge router
/// "<name>/gw" on the same segment as the zone gateway.
Zone& build_lan(World& world, const std::string& name, std::size_t n_hosts, MediaModel media,
                Zone* parent = nullptr, const std::string& host_prefix = "");

/// A switched (star) LAN zone: hub router "<name>/hub" (the gateway), and
/// per host a private segment "<name>/l<i>" to the hub — so each port
/// contends independently and the hub's egress NICs are the shared
/// bottleneck, as on a real switch.
Zone& build_star_lan(World& world, const std::string& name, std::size_t n_hosts,
                     MediaModel link_media, Zone* parent = nullptr,
                     const std::string& host_prefix = "");

struct FatTreeOptions {
  std::size_t racks = 2;
  std::size_t hosts_per_rack = 2;
  std::size_t spines = 2;
  /// Shared rack segment medium (hosts + ToR).
  MediaModel rack_media = ethernet100();
  /// Dedicated ToR<->spine uplink medium; make it thinner than the sum of
  /// rack bandwidth to create oversubscription.
  MediaModel uplink_media = ethernet100();
  /// Core segment (spines + border gateway) medium.
  MediaModel core_media = ethernet100();
  /// Host name prefix; hosts are "<prefix><rack>_<i>".  Empty -> "<name>/h".
  std::string host_prefix;
};

/// A two-level fat-tree cluster zone:
///   hosts "<prefix><r>_<i>" on rack segments "<name>/rack<r>" behind
///   top-of-rack routers "<name>/tor<r>"; spine routers "<name>/spine<s>"
///   reached over dedicated uplinks "<name>/up<r>_<s>" (equal-cost — route
///   resolution spreads distinct host pairs across spines); a core segment
///   "<name>/core" joining spines to the border gateway "<name>/gw".
Zone& build_fat_tree(World& world, const std::string& name, const FatTreeOptions& opt,
                     Zone* parent = nullptr);

/// Joins two zones with a gateway link between their gateway routers.
/// `name` defaults to "<a>--<b>".  Both zones must have gateways already
/// (the builders set them).  The link belongs to the zones' common parent
/// when they share one, else to `a` — either way fault actions on it bump
/// the route epoch.
Network& connect_zones(Zone& a, Zone& b, MediaModel media, const std::string& name = "");

}  // namespace snipe::simnet
