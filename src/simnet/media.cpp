#include "simnet/media.hpp"

#include <cmath>

namespace snipe::simnet {

SimDuration media_seconds_to_duration(double s) { return static_cast<SimDuration>(s * 1e9); }

SimDuration MediaModel::serialize_time(std::size_t payload) const {
  double effective_bps = bandwidth_bps * (1.0 - cell_tax);
  double bits = static_cast<double>(payload + overhead) * 8.0;
  return static_cast<SimDuration>(std::ceil(bits / effective_bps * 1e9));
}

MediaModel ethernet100() {
  MediaModel m;
  m.name = "eth100";
  m.bandwidth_bps = 100e6;
  m.latency = duration::microseconds(55);  // switch + host stack
  m.mtu = 1500;
  // preamble(8) + eth hdr(14) + FCS(4) + inter-frame gap(12) + IP(20) + UDP(8)
  m.overhead = 66;
  m.loss = 0.0;
  return m;
}

MediaModel ethernet10() {
  MediaModel m = ethernet100();
  m.name = "eth10";
  m.bandwidth_bps = 10e6;
  m.latency = duration::microseconds(100);
  return m;
}

MediaModel atm155() {
  MediaModel m;
  m.name = "atm155";
  // OC-3c: 155.52 Mb/s line rate, ~149.76 Mb/s after SONET framing.
  m.bandwidth_bps = 149.76e6;
  m.latency = duration::microseconds(110);
  m.mtu = 9180;       // classical IP over ATM default MTU (RFC 1626)
  m.overhead = 36;    // LLC/SNAP + AAL5 trailer + IP + UDP
  m.cell_tax = 5.0 / 53.0;  // 5 header bytes per 53-byte cell
  m.loss = 0.0;
  return m;
}

MediaModel myrinet() {
  MediaModel m;
  m.name = "myrinet";
  m.bandwidth_bps = 1280e6;  // 1.28 Gb/s full duplex
  m.latency = duration::microseconds(9);
  m.mtu = 8192;
  m.overhead = 16;
  m.loss = 0.0;
  return m;
}

MediaModel wan_t3() {
  MediaModel m;
  m.name = "wan_t3";
  m.bandwidth_bps = 45e6;
  m.latency = duration::milliseconds(18);  // UTK <-> Wright-Patterson scale
  m.mtu = 1500;
  m.overhead = 66;
  m.loss = 0.0005;
  return m;
}

MediaModel internet_lossy() {
  MediaModel m;
  m.name = "internet";
  m.bandwidth_bps = 10e6;
  m.latency = duration::milliseconds(45);  // transatlantic (UTK <-> Reading)
  m.mtu = 1500;
  m.overhead = 66;
  m.loss = 0.01;
  return m;
}

}  // namespace snipe::simnet
