// Media models for the link types the paper evaluates (§5.2.1, §6, Fig. 1).
//
// Each model captures what decides protocol-visible throughput: raw signal
// rate, per-packet framing overhead (which is what separates ATM's cell tax
// from Ethernet's preamble), propagation latency, MTU, and a baseline random
// loss rate.  Numbers are the standard published characteristics of each
// medium circa 1997; EXPERIMENTS.md compares the resulting curves with
// Fig. 1's.
#pragma once

#include <cstddef>
#include <string>

#include "util/time.hpp"

namespace snipe::simnet {

struct MediaModel {
  std::string name;
  double bandwidth_bps = 0;     ///< raw bit rate on the wire
  SimDuration latency = 0;      ///< one-way propagation + switch latency
  std::size_t mtu = 0;          ///< maximum payload per datagram
  std::size_t overhead = 0;     ///< per-packet framing bytes (headers etc.)
  double cell_tax = 0.0;        ///< fraction of bandwidth lost to cells
                                ///< (ATM: 5/53 header bytes per cell)
  double loss = 0.0;            ///< baseline packet loss probability

  /// Time to serialize a datagram of `payload` bytes onto this medium.
  SimDuration serialize_time(std::size_t payload) const;
};

/// 100 Mbit switched Ethernet (Fig. 1's "100M-bit ethernet").
MediaModel ethernet100();
/// 10 Mbit Ethernet, for contrast runs.
MediaModel ethernet10();
/// 155 Mbit OC-3 ATM with AAL5 (Fig. 1's "155 M-bit ATM").
MediaModel atm155();
/// Myrinet, the fast system-area network §3.4 lists among usable media.
MediaModel myrinet();
/// A T3-class wide-area path: what separates the UTK / Reading / ASC MSRC
/// testbed sites (§6); high latency, nonzero loss.
MediaModel wan_t3();
/// A lossy long-haul Internet path for robustness experiments.
MediaModel internet_lossy();

}  // namespace snipe::simnet
