#include "simnet/topo.hpp"

#include <cassert>
#include <cstdio>

namespace snipe::simnet {

Host& Zone::create_host(const std::string& name) {
  Host& h = world_->create_host(name, shard_);
  h.zone_ = this;
  hosts_.push_back(&h);
  return h;
}

Router& Zone::create_router(const std::string& name) {
  Router& r = world_->create_router(name, shard_);
  r.zone_ = this;
  routers_.push_back(&r);
  return r;
}

Network& Zone::create_network(const std::string& name, MediaModel model) {
  Network& n = world_->create_network(name, std::move(model));
  n.zone_ = this;
  networks_.push_back(&n);
  world_->bump_route_epoch();
  return n;
}

Zone& World::create_zone(const std::string& name, Zone* parent, std::size_t shard) {
  assert(!zones_by_name_.count(name) && "duplicate zone name");
  if (shard == kAutoShard)
    shard = parent != nullptr ? parent->shard() : (next_top_zone_++ % engines_.size());
  assert(shard < engines_.size() && "zone shard out of range");
  std::unique_ptr<Zone> zone(new Zone(this, name, parent, shard));
  Zone& ref = *zone;
  zones_.push_back(std::move(zone));
  zones_by_name_[name] = &ref;
  if (parent != nullptr)
    parent->children_.push_back(&ref);
  else
    top_zones_.push_back(&ref);
  return ref;
}

Zone* World::zone(const std::string& name) {
  auto it = zones_by_name_.find(name);
  return it == zones_by_name_.end() ? nullptr : it->second;
}

// ---- builders -------------------------------------------------------------

Zone& build_lan(World& world, const std::string& name, std::size_t n_hosts, MediaModel media,
                Zone* parent, const std::string& host_prefix) {
  Zone& zone = world.create_zone(name, parent);
  Network& lan = zone.create_network(name + "/lan", std::move(media));
  std::string prefix = host_prefix.empty() ? name + "/h" : host_prefix;
  for (std::size_t i = 0; i < n_hosts; ++i)
    world.attach(zone.create_host(prefix + std::to_string(i)), lan);
  Router& gw = zone.create_router(name + "/gw");
  world.attach(gw, lan);
  zone.set_gateway(&gw);
  return zone;
}

Zone& build_star_lan(World& world, const std::string& name, std::size_t n_hosts,
                     MediaModel link_media, Zone* parent, const std::string& host_prefix) {
  Zone& zone = world.create_zone(name, parent);
  Router& hub = zone.create_router(name + "/hub");
  zone.set_gateway(&hub);
  std::string prefix = host_prefix.empty() ? name + "/h" : host_prefix;
  for (std::size_t i = 0; i < n_hosts; ++i) {
    Host& host = zone.create_host(prefix + std::to_string(i));
    Network& link = zone.create_network(name + "/l" + std::to_string(i), link_media);
    world.attach(host, link);
    world.attach(hub, link);
  }
  return zone;
}

Zone& build_fat_tree(World& world, const std::string& name, const FatTreeOptions& opt,
                     Zone* parent) {
  assert(opt.racks >= 1 && opt.hosts_per_rack >= 1 && opt.spines >= 1);
  Zone& zone = world.create_zone(name, parent);
  std::string prefix = opt.host_prefix.empty() ? name + "/h" : opt.host_prefix;

  std::vector<Router*> spines;
  spines.reserve(opt.spines);
  for (std::size_t s = 0; s < opt.spines; ++s)
    spines.push_back(&zone.create_router(name + "/spine" + std::to_string(s)));

  for (std::size_t r = 0; r < opt.racks; ++r) {
    Network& rack = zone.create_network(name + "/rack" + std::to_string(r), opt.rack_media);
    Router& tor = zone.create_router(name + "/tor" + std::to_string(r));
    world.attach(tor, rack);
    for (std::size_t i = 0; i < opt.hosts_per_rack; ++i)
      world.attach(
          zone.create_host(prefix + std::to_string(r) + "_" + std::to_string(i)), rack);
    // One dedicated uplink per (ToR, spine) pair: equal cost, so route
    // resolution's deterministic tie-break spreads host pairs across the
    // spine planes (ECMP), and each uplink contends independently.
    for (std::size_t s = 0; s < opt.spines; ++s) {
      Network& up = zone.create_network(
          name + "/up" + std::to_string(r) + "_" + std::to_string(s), opt.uplink_media);
      world.attach(tor, up);
      world.attach(*spines[s], up);
    }
  }

  Network& core = zone.create_network(name + "/core", opt.core_media);
  for (Router* s : spines) world.attach(*s, core);
  Router& gw = zone.create_router(name + "/gw");
  world.attach(gw, core);
  zone.set_gateway(&gw);
  return zone;
}

Network& connect_zones(Zone& a, Zone& b, MediaModel media, const std::string& name) {
  assert(a.gateway() != nullptr && b.gateway() != nullptr &&
         "connect_zones: both zones need a gateway router");
  World& world = a.world();
  std::string link_name = name.empty() ? a.name() + "--" + b.name() : name;
  Zone* owner = a.parent() != nullptr && a.parent() == b.parent() ? a.parent() : &a;
  Network& link = owner->create_network(link_name, std::move(media));
  world.attach(*a.gateway(), link);
  world.attach(*b.gateway(), link);
  return link;
}

// ---- topology dump --------------------------------------------------------

namespace {

std::string human_bytes(std::uint64_t b) {
  char buf[32];
  if (b >= 1000000000ULL)
    std::snprintf(buf, sizeof buf, "%.1fGB", static_cast<double>(b) / 1e9);
  else if (b >= 1000000ULL)
    std::snprintf(buf, sizeof buf, "%.1fMB", static_cast<double>(b) / 1e6);
  else if (b >= 1000ULL)
    std::snprintf(buf, sizeof buf, "%.1fkB", static_cast<double>(b) / 1e3);
  else
    std::snprintf(buf, sizeof buf, "%lluB", static_cast<unsigned long long>(b));
  return buf;
}

void describe_network(const Network& net, SimTime now, const std::string& indent,
                      std::string& out) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%slink %s [%.1f Mbps, %lld ns] %s\n", indent.c_str(),
                net.name().c_str(), net.model().bandwidth_bps / 1e6,
                static_cast<long long>(net.model().latency), net.up() ? "up" : "DOWN");
  out += buf;
  for (const Nic* nic : net.nics()) {
    const Node* node = nic->node();
    double util = now > 0 ? 100.0 * static_cast<double>(nic->busy_ns()) /
                                static_cast<double>(now)
                          : 0.0;
    std::snprintf(buf, sizeof buf, "%s  %-24s %-6s %-4s tx %llu pkts %s util %.1f%%\n",
                  indent.c_str(), node->name().c_str(),
                  node->is_router() ? "router" : "host",
                  !node->up() ? "DOWN" : (nic->up() ? "up" : "nicDN"),
                  static_cast<unsigned long long>(nic->tx_packets()),
                  human_bytes(nic->tx_bytes()).c_str(), util);
    out += buf;
  }
}

void describe_zone(const Zone& zone, SimTime now, const std::string& indent,
                   std::string& out) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%szone %s [shard %zu] hosts %zu routers %zu%s%s\n",
                indent.c_str(), zone.name().c_str(), zone.shard(), zone.hosts().size(),
                zone.routers().size(), zone.gateway() != nullptr ? " gw " : "",
                zone.gateway() != nullptr ? zone.gateway()->name().c_str() : "");
  out += buf;
  for (const Network* net : zone.networks()) describe_network(*net, now, indent + "  ", out);
  for (const Zone* child : zone.children()) describe_zone(*child, now, indent + "  ", out);
}

}  // namespace

std::string World::describe_topology() const {
  SimTime t = ctrl_->now();
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "topology: %zu zones, %zu hosts, %zu routers, %zu networks, route epoch "
                "%llu, now %lld\n",
                zones_.size(), hosts_.size(), routers_.size(), networks_.size(),
                static_cast<unsigned long long>(route_epoch()), static_cast<long long>(t));
  out += buf;
  for (const Zone* zone : top_zones_) describe_zone(*zone, t, "", out);
  bool header = false;
  for (const auto& [name, net] : networks_) {
    if (net->zone() != nullptr) continue;
    if (!header) {
      out += "flat networks:\n";
      header = true;
    }
    describe_network(*net, t, "  ", out);
  }
  return out;
}

}  // namespace snipe::simnet
