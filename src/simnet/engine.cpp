#include "simnet/engine.hpp"

#include <cassert>

#include "obs/trace.hpp"
#include "util/log.hpp"

namespace snipe::simnet {

namespace {
constexpr std::size_t kHeapArity = 4;

/// The engine whose clock stamps this thread's trace/log output.  Worker
/// threads of a sharded World each scope their own engine here; on threads
/// with no scope (the common single-engine case) the clock falls back to
/// the engine that registered the global time source.
thread_local Engine* t_thread_engine = nullptr;
}  // namespace

Engine* Engine::thread_engine() { return t_thread_engine; }

Engine::ThreadTimeScope::ThreadTimeScope(Engine* engine) : prev_(t_thread_engine) {
  t_thread_engine = engine;
}

Engine::ThreadTimeScope::~ThreadTimeScope() { t_thread_engine = prev_; }

Engine::Engine(std::uint64_t seed) : rng_(seed) {
  // Give log lines and trace events the virtual clock for the lifetime of
  // this engine.  A thread-scoped engine (sharded worker) takes precedence,
  // so each worker reads only its own clock — never another thread's
  // mutating `now_`.
  set_log_time_source([this] {
    Engine* e = t_thread_engine != nullptr ? t_thread_engine : this;
    return e->now_;
  });
  obs::Tracer::global().set_clock([this] {
    Engine* e = t_thread_engine != nullptr ? t_thread_engine : this;
    return e->now_;
  });
}

Engine::~Engine() {
  clear();
  set_log_time_source(nullptr);
  obs::Tracer::global().set_clock(nullptr);
}

std::uint32_t Engine::acquire_slot() {
  if (!free_slots_.empty()) {
    std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Engine::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.armed = false;
  s.fn.reset();
  // Bumping the generation retires every outstanding TimerId and heap entry
  // naming this slot; generation 0 is reserved for null TimerIds.
  if (++s.gen == 0) s.gen = 1;
  free_slots_.push_back(slot);
}

void Engine::heap_push(HeapItem item) {
  heap_.push_back(item);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    std::size_t parent = (i - 1) / kHeapArity;
    if (!earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Engine::heap_pop() {
  assert(!heap_.empty());
  HeapItem last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  // Hole-style sift-down: shift the winning child up into the hole and only
  // write `last` once at its final position (a swap chain writes three times
  // per level, and on a large pending set every level is a cache miss).
  std::size_t i = 0;
  while (true) {
    std::size_t first = i * kHeapArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    std::size_t stop = std::min(first + kHeapArity, n);
    for (std::size_t c = first + 1; c < stop; ++c)
      if (earlier(heap_[c], heap_[best])) best = c;
    if (!earlier(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

void Engine::skim_stale() {
  // stale_ counts cancelled events whose heap entries are still buried; when
  // it is zero the top is live by construction and the slot probe (a random
  // read into a potentially huge slab) is skipped entirely.
  while (stale_ > 0 && !heap_.empty()) {
    const HeapItem& top = heap_[0];
    if (slots_[top.slot].armed && slots_[top.slot].gen == top.gen) return;
    heap_pop();
    --stale_;
  }
}

TimerId Engine::push_event(SimTime when, EventFn fn, bool weak) {
  std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.weak = weak;
  s.armed = true;
  std::uint64_t seq = next_seq_++;
  heap_push(HeapItem{when, seq, slot, s.gen});
  ++live_;
  if (!weak) ++strong_pending_;
  return TimerId{slot, s.gen};
}

TimerId Engine::schedule(SimDuration delay, EventFn fn) {
  assert(delay >= 0 && "cannot schedule into the past");
  return push_event(now_ + delay, std::move(fn), false);
}

TimerId Engine::schedule_at(SimTime when, EventFn fn) {
  assert(when >= now_ && "cannot schedule into the past");
  return push_event(when, std::move(fn), false);
}

TimerId Engine::schedule_weak(SimDuration delay, EventFn fn) {
  assert(delay >= 0 && "cannot schedule into the past");
  return push_event(now_ + delay, std::move(fn), true);
}

void Engine::cancel(TimerId id) {
  if (!id.valid() || id.slot >= slots_.size()) return;
  Slot& s = slots_[id.slot];
  if (!s.armed || s.gen != id.gen) return;  // already fired or cancelled
  if (!s.weak) --strong_pending_;
  --live_;
  ++stale_;
  // The heap entry stays behind as a stale tombstone; skim_stale drops it
  // when it reaches the top.  Destroy the callback now so event-owned
  // resources are released at cancel time, not at pop time.
  release_slot(id.slot);
}

bool Engine::step() {
  skim_stale();
  if (heap_.empty()) return false;
  HeapItem top = heap_[0];
  // Pull the slot's cache lines in while the sift-down below runs; on large
  // pending sets both are misses and this overlaps them.
  __builtin_prefetch(&slots_[top.slot], 1);
  heap_pop();
  assert(top.time >= now_);
  now_ = top.time;
  Slot& s = slots_[top.slot];
  EventFn fn = std::move(s.fn);
  if (!s.weak) --strong_pending_;
  --live_;
  release_slot(top.slot);
  ++events_run_;
  fn();
  return true;
}

std::size_t Engine::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && strong_pending_ > 0 && step()) ++n;
  return n;
}

void Engine::clear() {
  // Event destructors may re-enter cancel()/clear() (an endpoint captured
  // by one event cancels its own timers when destroyed), so detach all
  // state first and destroy the callbacks from a local vector.
  std::vector<EventFn> doomed;
  doomed.reserve(live_);
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    if (!s.armed) continue;
    doomed.push_back(std::move(s.fn));
    s.armed = false;
    s.fn.reset();
    // The slab survives clear() (only generations move on), so TimerIds
    // issued before the wipe can never collide with events scheduled after.
    if (++s.gen == 0) s.gen = 1;
    free_slots_.push_back(i);
  }
  heap_.clear();
  live_ = 0;
  stale_ = 0;
  strong_pending_ = 0;
  doomed.clear();  // runs the event destructors last
}

void Engine::run_until(SimTime t) {
  while (true) {
    skim_stale();
    if (heap_.empty() || heap_[0].time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

std::size_t Engine::run_before(SimTime end, bool weak_too) {
  std::size_t n = 0;
  while (true) {
    if (!weak_too && strong_pending_ == 0) break;
    skim_stale();
    if (heap_.empty() || heap_[0].time >= end) break;
    step();
    ++n;
  }
  return n;
}

SimTime Engine::next_event_time() {
  skim_stale();
  return heap_.empty() ? kNever : heap_[0].time;
}

}  // namespace snipe::simnet
