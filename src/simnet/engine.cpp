#include "simnet/engine.hpp"

#include <cassert>

#include "obs/trace.hpp"
#include "util/log.hpp"

namespace snipe::simnet {

Engine::Engine(std::uint64_t seed) : rng_(seed) {
  // Give log lines and trace events the virtual clock for the lifetime of
  // this engine.
  set_log_time_source([this] { return now_; });
  obs::Tracer::global().set_clock([this] { return now_; });
}

Engine::~Engine() {
  set_log_time_source(nullptr);
  obs::Tracer::global().set_clock(nullptr);
}

TimerId Engine::schedule(SimDuration delay, std::function<void()> fn) {
  assert(delay >= 0 && "cannot schedule into the past");
  return schedule_at(now_ + delay, std::move(fn));
}

TimerId Engine::schedule_at(SimTime when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule into the past");
  std::uint64_t seq = next_seq_++;
  queue_.emplace(Key{when, seq}, Entry{std::move(fn), false});
  ++strong_pending_;
  return TimerId{seq};
}

TimerId Engine::schedule_weak(SimDuration delay, std::function<void()> fn) {
  assert(delay >= 0 && "cannot schedule into the past");
  std::uint64_t seq = next_seq_++;
  queue_.emplace(Key{now_ + delay, seq}, Entry{std::move(fn), true});
  return TimerId{seq};
}

void Engine::cancel(TimerId id) {
  if (!id.valid()) return;
  // Events are keyed by (time, seq); seq alone identifies the entry, so we
  // scan. The queue is small relative to event volume and cancels are rare
  // (retransmit timers that fired normally are simply dropped), so a linear
  // scan keyed on seq is acceptable and keeps the structure simple.
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->first.second == id.seq) {
      if (!it->second.weak) --strong_pending_;
      queue_.erase(it);
      return;
    }
  }
}

bool Engine::step() {
  if (queue_.empty()) return false;
  auto it = queue_.begin();
  assert(it->first.first >= now_);
  now_ = it->first.first;
  Entry entry = std::move(it->second);
  queue_.erase(it);
  if (!entry.weak) --strong_pending_;
  ++events_run_;
  entry.fn();
  return true;
}

std::size_t Engine::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && strong_pending_ > 0 && step()) ++n;
  return n;
}

void Engine::clear() {
  queue_.clear();
  strong_pending_ = 0;
}

void Engine::run_until(SimTime t) {
  while (!queue_.empty() && queue_.begin()->first.first <= t) step();
  if (now_ < t) now_ = t;
}

// run_for is defined inline in the header in terms of run_until.

}  // namespace snipe::simnet
