// The discrete-event engine every SNIPE component runs on.
//
// This replaces the paper's multi-site Internet testbed (see DESIGN.md §2):
// hosts, daemons, protocols and applications are all callbacks scheduled on
// one virtual clock.  Determinism rules:
//   * events at equal times fire in scheduling order (monotonic sequence
//     numbers break ties);
//   * all randomness flows from the engine's seeded Rng (or forks of it).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace snipe::simnet {

/// Handle for cancelling a scheduled event.  Default-constructed handles
/// are "null" and safe to cancel.
struct TimerId {
  std::uint64_t seq = 0;
  bool valid() const { return seq != 0; }
};

class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` from now (delay >= 0).
  TimerId schedule(SimDuration delay, std::function<void()> fn);
  /// Schedules `fn` at an absolute time (>= now).
  TimerId schedule_at(SimTime when, std::function<void()> fn);
  /// Schedules a *weak* (housekeeping) event: periodic background ticks —
  /// anti-entropy rounds, load reports, router refresh — that should not
  /// keep `run()` alive on their own.  `run()` stops once only weak events
  /// remain; `run_until`/`run_for` execute them like any other event.
  TimerId schedule_weak(SimDuration delay, std::function<void()> fn);
  /// Cancels a pending event; cancelling a fired or null timer is a no-op.
  void cancel(TimerId id);

  /// Runs the earliest pending event; returns false if none are pending.
  bool step();
  /// Runs events until no *strong* events remain (weak housekeeping ticks
  /// do not count) or `max_events` have fired; returns the number run.
  std::size_t run(std::size_t max_events = static_cast<std::size_t>(-1));
  /// Runs events with time <= t, then advances the clock to exactly t.
  void run_until(SimTime t);
  /// Runs events for the next `d` of virtual time.
  void run_for(SimDuration d) { run_until(now_ + d); }

  /// The run-level RNG; components should fork() their own streams.
  Rng& rng() { return rng_; }

  /// Number of events executed so far (useful as a work metric in tests).
  std::uint64_t events_run() const { return events_run_; }

  /// Discards every pending event without running it.  World calls this in
  /// its destructor so event-owned resources (e.g. a migration relay's
  /// endpoint) are released while hosts still exist.
  void clear();

 private:
  using Key = std::pair<SimTime, std::uint64_t>;
  struct Entry {
    std::function<void()> fn;
    bool weak = false;
  };
  std::map<Key, Entry> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_run_ = 0;
  std::size_t strong_pending_ = 0;
  Rng rng_;
};

}  // namespace snipe::simnet
