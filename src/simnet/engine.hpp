// The discrete-event engine every SNIPE component runs on.
//
// This replaces the paper's multi-site Internet testbed (see DESIGN.md §2):
// hosts, daemons, protocols and applications are all callbacks scheduled on
// one virtual clock.  Determinism rules:
//   * events at equal times fire in scheduling order (monotonic sequence
//     numbers break ties);
//   * all randomness flows from the engine's seeded Rng (or forks of it).
//
// The queue is a 4-ary min-heap on (time, seq) over a slot slab, with
// generation-checked lazy cancellation: cancel() destroys the callback and
// bumps the slot's generation in O(1), and the stale heap entry is skipped
// when it surfaces.  See DESIGN.md §engine-cancellation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace snipe::simnet {

/// Move-only callable with a large inline buffer, sized so that a delivery
/// event capturing a whole Packet (two addresses, a multi-segment Payload,
/// a network name) stays on the slab — the per-event heap allocation
/// std::function would make is the engine's dominant cost at scale.
class EventFn {
 public:
  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = inline_ops<Fn>();
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = heap_ops<Fn>();
    }
  }

  EventFn(EventFn&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) ops_->relocate(storage_, o.storage_);
    o.ops_ = nullptr;
  }

  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) ops_->relocate(storage_, o.storage_);
      o.ops_ = nullptr;
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  static constexpr std::size_t kInlineBytes = 240;

  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs dst from src and destroys src (noexcept by
    /// construction: only nothrow-movable types go inline).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static const Ops* inline_ops() {
    static constexpr Ops ops{
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* dst, void* src) {
          ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
          static_cast<Fn*>(src)->~Fn();
        },
        [](void* p) { static_cast<Fn*>(p)->~Fn(); },
    };
    return &ops;
  }

  template <typename Fn>
  static const Ops* heap_ops() {
    static constexpr Ops ops{
        [](void* p) { (**static_cast<Fn**>(p))(); },
        [](void* dst, void* src) {
          ::new (dst) Fn*(*static_cast<Fn**>(src));
        },
        [](void* p) { delete *static_cast<Fn**>(p); },
    };
    return &ops;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

/// Handle for cancelling a scheduled event.  Default-constructed handles
/// are "null" and safe to cancel.  A handle names (slot, generation); once
/// the event fires or is cancelled the slot's generation moves on, so a
/// stale handle can never cancel a stranger's event.
struct TimerId {
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;
  bool valid() const { return gen != 0; }
};

class Engine {
 public:
  /// Sentinel "no pending event" time (next_event_time when the heap is
  /// empty); also the "unbounded" window end for run_before.
  static constexpr SimTime kNever = INT64_MAX;

  explicit Engine(std::uint64_t seed = 1);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` from now (delay >= 0).
  TimerId schedule(SimDuration delay, EventFn fn);
  /// Schedules `fn` at an absolute time (>= now).
  TimerId schedule_at(SimTime when, EventFn fn);
  /// Schedules a *weak* (housekeeping) event: periodic background ticks —
  /// anti-entropy rounds, load reports, router refresh — that should not
  /// keep `run()` alive on their own.  `run()` stops once only weak events
  /// remain; `run_until`/`run_for` execute them like any other event.
  TimerId schedule_weak(SimDuration delay, EventFn fn);
  /// Cancels a pending event; cancelling a fired or null timer is a no-op.
  /// The event's callback (and anything it owns) is destroyed immediately.
  void cancel(TimerId id);

  /// Runs the earliest pending event; returns false if none are pending.
  bool step();
  /// Runs events until no *strong* events remain (weak housekeeping ticks
  /// do not count) or `max_events` have fired; returns the number run.
  std::size_t run(std::size_t max_events = static_cast<std::size_t>(-1));
  /// Runs events with time <= t, then advances the clock to exactly t.
  void run_until(SimTime t);
  /// Runs events for the next `d` of virtual time.
  void run_for(SimDuration d) { run_until(now_ + d); }

  /// Runs events with time strictly < `end` (the conservative-window
  /// primitive of the sharded World driver: a shard may execute freely up
  /// to, but not into, the synchronization horizon).  Does NOT advance the
  /// clock to `end` — `now()` stays at the last executed event, so a later
  /// window (or a cross-shard arrival at exactly `end`) can still be
  /// scheduled.  With `weak_too` false, stops early once only weak
  /// housekeeping events remain (Engine::run semantics).  Returns the
  /// number of events run.
  std::size_t run_before(SimTime end, bool weak_too = true);

  /// Time of the earliest live pending event, or kNever when none.
  SimTime next_event_time();

  /// Pending non-weak events (run() keeps going while this is nonzero).
  std::size_t strong_pending() const { return strong_pending_; }

  /// Moves the clock forward to `t` without running anything (requires that
  /// no event <= t is pending); the sharded driver uses this to align every
  /// shard's clock at the end of a run_until window sweep.
  void advance_to(SimTime t) {
    if (now_ < t) now_ = t;
  }

  /// Scopes the calling thread's trace/log clock to `engine`: while alive,
  /// trace events and log lines emitted from this thread are stamped with
  /// `engine`'s virtual time instead of the most recently constructed
  /// engine's.  The sharded World driver installs one per worker thread (and
  /// around control-engine drains), so an event on shard 3 is stamped with
  /// shard 3's clock without any cross-thread read of another engine's
  /// `now_`.
  class ThreadTimeScope {
   public:
    explicit ThreadTimeScope(Engine* engine);
    ~ThreadTimeScope();
    ThreadTimeScope(const ThreadTimeScope&) = delete;
    ThreadTimeScope& operator=(const ThreadTimeScope&) = delete;

   private:
    Engine* prev_;
  };

  /// The engine scoped to the calling thread (nullptr outside any scope).
  static Engine* thread_engine();

  /// The run-level RNG; components should fork() their own streams.
  Rng& rng() { return rng_; }

  /// Number of events executed so far (useful as a work metric in tests).
  std::uint64_t events_run() const { return events_run_; }

  /// Discards every pending event without running it.  World calls this in
  /// its destructor so event-owned resources (e.g. a migration relay's
  /// endpoint) are released while hosts still exist.
  void clear();

 private:
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 1;
    bool weak = false;
    bool armed = false;
  };
  struct HeapItem {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static bool earlier(const HeapItem& a, const HeapItem& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }

  TimerId push_event(SimTime when, EventFn fn, bool weak);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void heap_push(HeapItem item);
  void heap_pop();
  /// Drops stale (cancelled) entries off the top; afterwards the top, if
  /// any, is a live event.
  void skim_stale();

  std::vector<HeapItem> heap_;       ///< 4-ary min-heap on (time, seq)
  std::vector<Slot> slots_;          ///< event slab indexed by TimerId::slot
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;             ///< armed events (strong + weak)
  std::size_t stale_ = 0;            ///< cancelled entries still in heap_
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_run_ = 0;
  std::size_t strong_pending_ = 0;
  Rng rng_;
};

}  // namespace snipe::simnet
