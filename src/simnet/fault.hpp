// Deterministic fault injection for simnet (DESIGN.md §5-fault; the paper's
// §5–6 survivability claims).
//
// Uniform per-packet loss (MediaModel::loss) is the kindest possible
// failure; the paper's testbed saw the unkind ones: loss that arrives in
// bursts, duplicated and reordered datagrams, flipped bytes, links that die
// and return, sites partitioned from each other, and hosts that crash and
// reboot mid-transfer.  Two pieces model all of that:
//
//  * FaultInjector — a per-network packet mangler consulted by Host::send /
//    Host::broadcast for every datagram: burst loss (a Gilbert–Elliott
//    two-state chain), duplication, reordering (bounded extra delay),
//    byte corruption, and host-group partitions.  Every decision draws, in
//    a fixed order, from a per-source-host lane derived from one seed, so a
//    run is replayable bit-for-bit from its seed — for every shard count of
//    a sharded World — and attaching an injector never perturbs the hosts'
//    own RNG streams (the baseline loss draw is untouched).
//
//  * FaultPlan — a schedule of timed failure windows (link down/up, NIC
//    down/up, host crash/restart, network partitions) executed on the
//    virtual-time engine.  Each action emits an obs trace instant in the
//    "fault" category, so a chaos run's timeline shows exactly when the
//    world turned hostile and traces of two same-seed runs compare equal.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/bytes.hpp"
#include "util/payload.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace snipe::simnet {

class World;

/// Gilbert–Elliott two-state burst-loss chain.  The state advances once per
/// judged packet; each state drops with its own probability.  The classic
/// parameterization: rare entry into a short-lived bad state whose loss is
/// near-total models the loss *bursts* real links exhibit, which uniform
/// loss of equal mean does not (it never kills a whole window at once).
struct GilbertElliott {
  double p_enter_bad = 0.0;  ///< per-packet P(good -> bad)
  double p_exit_bad = 0.25;  ///< per-packet P(bad -> good)
  double loss_good = 0.0;    ///< drop probability while good
  double loss_bad = 1.0;     ///< drop probability while bad

  /// Stationary mean loss rate, for sizing test expectations.
  double mean_loss() const {
    double denom = p_enter_bad + p_exit_bad;
    if (denom <= 0) return loss_good;
    double frac_bad = p_enter_bad / denom;
    return loss_good * (1.0 - frac_bad) + loss_bad * frac_bad;
  }
};

/// Stochastic per-packet fault rates.  All probabilities are independent
/// per packet (after the burst-loss chain decides survival).
struct FaultProfile {
  GilbertElliott burst;
  double duplicate = 0.0;  ///< P(deliver a second copy)
  double reorder = 0.0;    ///< P(delay this packet by extra jitter)
  SimDuration reorder_jitter = duration::milliseconds(2);  ///< max extra delay
  double corrupt = 0.0;    ///< P(flip bytes in the datagram)
  std::uint32_t corrupt_max_bytes = 4;  ///< bytes flipped per corruption, 1..n
};

/// Counters are relaxed atomics: an injector on a network that spans
/// shards is consulted from several worker threads at once, and every
/// field is a pure sum.
struct FaultStats {
  std::atomic<std::uint64_t> packets_judged{0};
  std::atomic<std::uint64_t> drops_burst{0};      ///< killed by the Gilbert–Elliott chain
  std::atomic<std::uint64_t> drops_partition{0};  ///< crossed a partition boundary
  std::atomic<std::uint64_t> duplicated{0};
  std::atomic<std::uint64_t> reordered{0};
  std::atomic<std::uint64_t> corrupted{0};
};

/// What the injector decided for one datagram.
struct FaultVerdict {
  bool drop = false;
  bool corrupt = false;
  int copies = 1;                 ///< 2 when duplicated
  SimDuration extra_delay = 0;    ///< reorder jitter for the original
  SimDuration dup_delay = 0;      ///< additional jitter for the duplicate
};

class FaultInjector {
 public:
  FaultInjector(FaultProfile profile, Rng rng)
      : profile_(profile), base_(rng) {}

  /// Judges one datagram from `src` to `dst`.  Each *source host* gets its
  /// own decision lane — an Rng stream plus a Gilbert–Elliott burst state —
  /// derived order-independently from the injector's seed and the host's
  /// name.  Draws happen in a fixed order regardless of outcome, so the
  /// sequence a source sees depends only on (seed, its own packet
  /// sequence): never on other hosts' traffic, and never on which shard of
  /// a sharded World the host runs on.  Lanes are also what make
  /// concurrent judging safe: a host's packets are judged only by its own
  /// shard's thread.
  FaultVerdict judge(const std::string& src, const std::string& dst);

  /// Routed-packet variant: `lane` names the *transmitting* node for this
  /// hop (the forwarding router on interior hops), while the partition
  /// boundary is still judged on the packet's end-to-end (src, dst) pair.
  /// With lane == src this is exactly the two-argument form — the direct
  /// delivery path keeps its bit-for-bit draw sequence.
  FaultVerdict judge(const std::string& lane, const std::string& src,
                     const std::string& dst);

  /// Flips 1..corrupt_max_bytes bytes of `wire` (no-op on empty), drawing
  /// from `src`'s lane; the two-argument forms are what the delivery path
  /// uses.  The src-less legacy forms draw from a dedicated default lane.
  void corrupt_payload(Bytes& wire, const std::string& src);
  void corrupt_payload(Bytes& wire);
  /// Payload variant: copy-on-write — shared segments are cloned before the
  /// flip so other holders of the same buffer keep the original bytes.  The
  /// RNG draw sequence is identical to the Bytes variant.
  void corrupt_payload(Payload& wire, const std::string& src);
  void corrupt_payload(Payload& wire);

  /// Splits hosts into isolated groups: packets between different groups
  /// are dropped.  Hosts not named fall into an implicit extra group (they
  /// can talk to each other, but to no named group).
  void set_partition(const std::vector<std::vector<std::string>>& groups);
  void heal_partition() { group_of_.clear(); }
  bool partition_active() const { return !group_of_.empty(); }
  /// True when a packet between `a` and `b` would cross a partition.
  bool partitioned(const std::string& a, const std::string& b) const;

  /// True when any source lane's burst chain is currently in its bad state.
  bool in_bad_state() const;
  const FaultProfile& profile() const { return profile_; }
  const FaultStats& stats() const { return stats_; }

 private:
  /// One source host's decision stream: its Rng and burst-chain state.
  struct Lane {
    Rng rng;
    bool bad = false;
  };
  /// Finds or creates `src`'s lane.  The mutex guards only the map's
  /// structure (lanes are created on first packet, possibly from several
  /// threads); the returned lane itself is mutated exclusively by the
  /// thread simulating `src`'s shard.
  Lane& lane(const std::string& src);

  FaultProfile profile_;
  Rng base_;  ///< never advanced: lanes derive from it by name hash
  mutable std::mutex lanes_mu_;
  std::map<std::string, Lane> lanes_;
  std::map<std::string, int> group_of_;  ///< empty map = no partition
  FaultStats stats_;
};

/// A seeded, replayable schedule of failures against one World.  Actions
/// registered before (or during) a run fire at their virtual times; the
/// same (world seed, plan seed, scenario) triple always produces the same
/// run.  The plan owns the injectors it creates; keep it alive for the
/// duration of the simulation.
class FaultPlan {
 public:
  FaultPlan(World& world, std::uint64_t seed);

  /// Attaches a stochastic fault profile to `network` (replacing any prior
  /// injector) and returns it.  The injector's Rng is forked from the
  /// plan's seed.
  FaultInjector& inject(const std::string& network, const FaultProfile& profile);
  /// The injector currently attached to `network` via this plan, if any.
  FaultInjector* injector(const std::string& network);

  /// Takes the whole network down at `at` and back up at `up_at`
  /// (in-flight packets to it are dropped, as with real link failure).
  void link_down(const std::string& network, SimTime at, SimTime up_at);
  /// Ditto for one host's attachment to a network.
  void nic_down(const std::string& host, const std::string& network, SimTime at,
                SimTime up_at);
  /// Crashes `host` at `at` and reboots it at `restart_at`.  Port bindings
  /// survive (simnet hosts reboot with their services, §5.6's model).
  void crash_host(const std::string& host, SimTime at, SimTime restart_at);
  /// Partitions `network` into `groups` over [at, heal_at).  Installs a
  /// default (no-op profile) injector if none is attached yet.
  void partition(const std::string& network, std::vector<std::vector<std::string>> groups,
                 SimTime at, SimTime heal_at);

  Rng& rng() { return rng_; }

 private:
  /// Schedules `fn` at `at` and emits a "fault" trace instant named `name`.
  void act(SimTime at, std::string name, std::vector<std::pair<std::string, std::string>> args,
           std::function<void()> fn);
  FaultInjector& ensure_injector(const std::string& network);

  World& world_;
  Rng rng_;
  std::vector<std::shared_ptr<FaultInjector>> owned_;
};

}  // namespace snipe::simnet
