// Hosts, routers, networks, routing zones and datagram delivery.
//
// A World is the simulated testbed: named hosts, each multi-homed onto one
// or more named networks (Ethernet segments, an ATM fabric, a WAN path).
// The only service simnet itself offers is an unreliable, MTU-limited,
// possibly-lossy datagram: exactly the substrate UDP gave the real SNIPE
// comms module.  Reliability, fragmentation, streams and multicast all live
// one layer up, in snipe::transport, as they did in the paper (§6).
//
// Topology comes in two shapes:
//
//  * Flat (the original model): hosts share media directly, and two hosts
//    can talk iff a common network is up between them.  Everything built
//    through create_network/create_host/attach behaves bit-for-bit as it
//    always has — no routes, no extra RNG draws.
//  * Zoned (simnet/topo.hpp): a tree of routing Zones whose leaves are
//    media segments and whose interior nodes are fat-tree clusters, star
//    LANs and WAN interconnects joined by gateway *routers*.  A datagram
//    between hosts with no shared medium resolves a multi-hop route
//    (cached per host pair, invalidated whenever topology state changes);
//    each hop pays serialize + propagation on its medium, and per-NIC
//    bandwidth sharing charges every flow crossing a shared link — incast
//    into a rack and thin-pipe WAN bottlenecks emerge from the model.
//
// Failure injection is first-class: hosts, routers, networks and individual
// NICs can be taken down and brought back at any virtual time; in-flight
// packets to a dead destination are dropped, which is what the transport's
// failover logic (§6: "switch routes/interfaces as links failed") must cope
// with.  Richer, adversarial failure modes — burst loss, duplication,
// reordering, corruption, partitions, crash/restart schedules — attach per
// network via simnet/fault.hpp's FaultInjector/FaultPlan.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "simnet/engine.hpp"
#include "simnet/media.hpp"
#include "util/bytes.hpp"
#include "util/log.hpp"
#include "util/payload.hpp"
#include "util/result.hpp"

namespace snipe::simnet {

class FaultInjector;  // simnet/fault.hpp
class Zone;           // simnet/topo.hpp

/// A network endpoint: host name + port.
struct Address {
  std::string host;
  std::uint16_t port = 0;

  std::string to_string() const { return host + ":" + std::to_string(port); }
  friend bool operator==(const Address&, const Address&) = default;
  friend bool operator<(const Address& a, const Address& b) {
    return a.host != b.host ? a.host < b.host : a.port < b.port;
  }
};

/// A delivered datagram.  The payload is a shared immutable view: every
/// copy of a Packet (duplication, broadcast fan-out) shares the same bytes.
struct Packet {
  Address src;
  Address dst;
  Payload payload;
  std::string network;  ///< network it arrived on (last hop for routed sends)
};

using PacketHandler = std::function<void(const Packet&)>;

class World;
class Host;
class Router;
class Node;

/// One attachment point of a node (host or router) to a network.
class Nic {
 public:
  Nic(Node* node, class Network* network) : node_(node), network_(network) {}
  /// The attached node; host() narrows and returns nullptr for routers.
  Node* node() const { return node_; }
  Host* host() const;
  Network* network() const { return network_; }
  bool up() const { return up_; }
  void set_up(bool up);  ///< bumps the world's route epoch on change
  /// Earliest time the egress side of this NIC is free to start serializing
  /// the next packet (models bandwidth sharing between flows — on hosts and
  /// on interior fat-tree / WAN gateway links alike).
  SimTime next_free = 0;

  /// Lifetime egress accounting, read cross-thread by the /topo dump.
  std::uint64_t tx_packets() const { return tx_packets_.load(std::memory_order_relaxed); }
  std::uint64_t tx_bytes() const { return tx_bytes_.load(std::memory_order_relaxed); }
  /// Virtual nanoseconds this NIC spent serializing (utilization numerator).
  std::uint64_t busy_ns() const { return busy_ns_.load(std::memory_order_relaxed); }
  void note_tx(std::size_t bytes, SimDuration ser) {
    tx_packets_.fetch_add(1, std::memory_order_relaxed);
    tx_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    busy_ns_.fetch_add(static_cast<std::uint64_t>(ser), std::memory_order_relaxed);
  }

 private:
  Node* node_;
  Network* network_;
  bool up_ = true;
  std::atomic<std::uint64_t> tx_packets_{0};
  std::atomic<std::uint64_t> tx_bytes_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
};

/// Aggregate traffic counters, kept per network and exposed by World for
/// the bench harnesses.  Fields are relaxed atomics because a network that
/// spans shards is incremented from several worker threads at once; every
/// field is a pure sum, so totals stay deterministic regardless of the
/// interleaving.
struct NetStats {
  std::atomic<std::uint64_t> packets_sent{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> packets_delivered{0};
  std::atomic<std::uint64_t> drops_loss{0};      ///< random media loss
  std::atomic<std::uint64_t> drops_down{0};      ///< host/NIC/network down at delivery
  std::atomic<std::uint64_t> drops_unbound{0};   ///< no listener on the destination port
  std::atomic<std::uint64_t> drops_fault{0};     ///< fault injector (burst loss/partition)
  std::atomic<std::uint64_t> fault_duplicates{0};  ///< extra copies injected
  std::atomic<std::uint64_t> fault_corruptions{0}; ///< datagrams delivered mangled
};

/// A shared medium: an Ethernet segment, ATM fabric, point-to-point WAN
/// path, or an interior gateway link between zones (gateway links are plain
/// networks, so link_down fault actions and per-NIC contention apply to
/// them unchanged).
class Network {
 public:
  Network(std::string name, MediaModel model) : name_(std::move(name)), model_(model) {}

  const std::string& name() const { return name_; }
  const MediaModel& model() const { return model_; }
  bool up() const { return up_; }
  void set_up(bool up);  ///< bumps the world's route epoch on change
  /// Additional loss injected on top of the media baseline (for loss
  /// sweeps); total per-packet drop probability is baseline + extra.
  void set_extra_loss(double p) { extra_loss_ = p; }
  double total_loss() const { return model_.loss + extra_loss_; }

  const std::vector<Nic*>& nics() const { return nics_; }
  NetStats& stats() { return stats_; }
  const NetStats& stats() const { return stats_; }
  /// The zone this network belongs to (nullptr in flat worlds).
  Zone* zone() const { return zone_; }

  /// Attaches (or, with nullptr, removes) a fault injector consulted for
  /// every datagram on this network — see simnet/fault.hpp.  Ownership is
  /// shared so a FaultPlan can outlive or predecease the network safely.
  void set_fault(std::shared_ptr<FaultInjector> fault) { fault_ = std::move(fault); }
  FaultInjector* fault() const { return fault_.get(); }

 private:
  friend class World;
  friend class Zone;
  std::string name_;
  MediaModel model_;
  World* world_ = nullptr;
  Zone* zone_ = nullptr;
  bool up_ = true;
  double extra_loss_ = 0.0;
  std::vector<Nic*> nics_;
  std::shared_ptr<FaultInjector> fault_;
  NetStats stats_;
};

/// Options for a single send.
struct SendOptions {
  /// If nonempty, try this network first even if a faster one is shared
  /// (direct candidates only; routed sends pick their own path).
  std::string preferred_network;
  /// Stamped into the delivered Packet's src.port so receivers can reply.
  std::uint16_t src_port = 0;
};

/// One hop of a resolved route: the transmitting attachment and the medium
/// it serializes onto.  hops[0].tx belongs to the source host; subsequent
/// hops' tx NICs belong to routers.
struct RouteHop {
  Nic* tx;
  Network* net;
};

/// A resolved multi-hop path between two hosts.  Routes are shared-owned:
/// packets in flight keep their route alive even if the cache entry is
/// invalidated mid-transfer.
struct Route {
  std::vector<RouteHop> hops;
  Host* dst = nullptr;
  SimDuration latency = 0;  ///< sum of hop propagation latencies
  std::size_t mtu = 0;      ///< min over hop MTUs
};

/// Common state of anything attached to networks: simulated machines
/// (Host) and interior forwarding elements (Router).  Every node belongs to
/// one *shard*: the engine its events run on; everything a node owns —
/// NICs, contention clocks, forwarding state — is touched only by its
/// shard's thread.
class Node {
 public:
  Node(World* world, std::string name, Rng rng, Engine* engine, std::size_t shard,
       bool is_router);
  virtual ~Node() = default;

  const std::string& name() const { return name_; }
  bool up() const { return up_; }
  /// Taking a node down atomically clears nothing: host bindings survive so
  /// the host "reboots" with its services intact (§5.6's model), and a
  /// router comes back forwarding.  Bumps the route epoch so cached routes
  /// through a dead router re-resolve.
  void set_up(bool up);

  World* world() const { return world_; }
  /// The engine this node's events run on (its shard's engine).  Transport
  /// endpoints and services bound to a host must schedule their timers
  /// here, not on World::engine(), so they stay on their shard's thread.
  Engine& engine() const { return *engine_; }
  /// Which shard this node was created on (0 in a single-shard World).
  std::size_t shard() const { return shard_; }
  /// The routing zone this node belongs to (nullptr in flat worlds).
  Zone* zone() const { return zone_; }
  bool is_router() const { return is_router_; }

  /// The NIC attaching this node to `network`, or nullptr.
  Nic* nic_on(const std::string& network);
  const std::vector<std::unique_ptr<Nic>>& nics() const { return nics_; }

  Rng& rng() { return rng_; }

 protected:
  friend class World;
  friend class Zone;

  World* world_;
  std::string name_;
  bool up_ = true;
  std::vector<std::unique_ptr<Nic>> nics_;
  Rng rng_;
  Engine* engine_;
  std::size_t shard_;
  Zone* zone_ = nullptr;
  bool is_router_;
};

/// An interior forwarding element: a top-of-rack switch, fat-tree spine, or
/// WAN border gateway.  Routers never bind ports or run protocol timers —
/// forwarding is modeled hop-by-hop on the virtual clock (serialize on the
/// egress NIC, propagate, hand to the next hop), so a router's cost is its
/// links' contention, not software.
class Router : public Node {
 public:
  Router(World* world, std::string name, Rng rng, Engine* engine, std::size_t shard)
      : Node(world, std::move(name), rng, engine, shard, /*is_router=*/true) {}
};

/// A simulated machine.  Hosts own their NICs and their port table.
class Host : public Node {
 public:
  Host(World* world, std::string name, Rng rng, Engine* engine, std::size_t shard);

  /// Registers a datagram handler on `port`.
  Result<void> bind(std::uint16_t port, PacketHandler handler);
  void unbind(std::uint16_t port);
  bool bound(std::uint16_t port) const { return ports_.count(port) > 0; }
  /// Picks an unused ephemeral port (49152+).
  std::uint16_t ephemeral_port();

  /// Sends one datagram.  With a shared up network the fastest one wins
  /// (§5.3), honouring `preferred_network` when it is available — exactly
  /// the flat model.  With no shared network and a zoned topology, the
  /// datagram takes the resolved multi-hop route, paying serialize +
  /// propagation per hop and sharing every link it crosses.  Fails with
  ///   invalid_argument  if payload exceeds the chosen network's (or the
  ///                     route's bottleneck) MTU,
  ///   unreachable       if no path exists or the host is down.
  /// On success returns the name of the first-hop network.  Loss is applied
  /// at delivery time; a lost packet still returns success here, as with
  /// UDP.
  Result<std::string> send(const Address& dst, Payload payload, const SendOptions& opts = {});

  /// Sends to every other up NIC on `network` (link-level broadcast, used
  /// by the experimental Ethernet multicast protocol of §6).  Receivers
  /// share one payload; no per-receiver copy is made.  Routers do not
  /// receive broadcasts.
  Result<void> broadcast(const std::string& network, std::uint16_t port, Payload payload,
                         std::uint16_t src_port = 0);

  /// Networks this host can currently transmit on.
  std::vector<std::string> up_networks() const;

 private:
  friend class World;
  void deliver(Packet packet, Network* network);
  /// Runs one about-to-fly datagram through `net`'s fault injector (if any)
  /// and posts the surviving copies for delivery at `target` — directly
  /// onto the target's engine when it shares the sender's shard, through
  /// the cross-shard mailbox otherwise.
  static void schedule_delivery(World* world, Network* net, Host* target,
                                SimTime arrival, Packet packet);
  /// The no-shared-network continuation of send(): resolve a route and
  /// launch the packet down it.
  Result<std::string> send_routed(const Address& dst, Host* dst_host, Payload payload,
                                  const SendOptions& opts);

  std::map<std::uint16_t, PacketHandler> ports_;
  std::uint16_t next_ephemeral_ = 49152;
  /// Resolved-route cache, keyed by destination host.  Entries carry the
  /// route epoch they were computed under; any topology change (link/NIC/
  /// router up-down, partition fault actions, new attachments) bumps the
  /// world epoch and lazily invalidates every cached route.
  struct CachedRoute {
    std::uint64_t epoch = 0;
    std::shared_ptr<const Route> route;  ///< nullptr = cached "no route"
  };
  std::map<std::string, CachedRoute> route_cache_;
  Logger log_;
};

/// The whole simulated testbed: engines + hosts + routers + networks +
/// zones.
///
/// With `shards == 1` (the default) this is exactly the classic single
/// engine World.  With `shards > 1` the hosts are partitioned across N
/// private engines, each driven by its own worker thread, and the run
/// methods below execute a conservative windowed parallel simulation:
///
///   * The *lookahead* L is the minimum media latency over networks whose
///     attachments span more than one shard (never below one tick).  In a
///     zoned world with shard-by-zone placement those are exactly the
///     inter-zone gateway links, so L is the min gateway latency.  A packet
///     sent at time t cannot arrive on another shard before t + L.
///   * Each window starts at s = the earliest pending event anywhere and
///     ends at e = min(s + L, next control event, horizon).  Every shard
///     runs its own events with time in [s, e) in parallel, touching only
///     its own nodes' state.
///   * Cross-shard sends (and multi-hop forwards) during the window land in
///     per-(src,dst) shard mailboxes; at the window barrier the coordinator
///     drains them in deterministic order — sorted by (arrival time, source
///     shard, per-source-shard sequence) — onto the destination engines.
///     Arrival times are >= e by the lookahead argument, so no shard ever
///     receives an event in its past.
///
/// World-level orchestration (FaultPlan actions, scripted workloads) runs
/// on a dedicated *control engine* between windows on the coordinator
/// thread; its next event time bounds every window, so control actions are
/// totally ordered against shard events.  With shards == 1 the control
/// engine IS the one shard engine, preserving today's behavior bit for
/// bit.  See DESIGN.md §sharded-engine for the determinism contract and
/// §routing-zones for the topology model.
class World {
 public:
  /// "No route" distance (net_distance when two hosts cannot reach each
  /// other at all).
  static constexpr SimDuration kUnreachable = INT64_MAX;

  /// Per-run accounting for the windowed driver (bench + tests).
  struct RunStats {
    std::uint64_t windows = 0;            ///< barriers executed
    std::uint64_t cross_shard_packets = 0;///< deliveries/forwards via mailboxes
    /// Sum over windows of the *maximum* per-shard thread-CPU time spent in
    /// that window: the critical path of the parallel execution.  On a
    /// machine with >= N cores this is what the wall clock converges to.
    std::uint64_t critical_path_ns = 0;
    std::uint64_t busy_ns = 0;            ///< total thread-CPU time, all shards
  };

  explicit World(std::uint64_t seed = 1, std::size_t shards = 1);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// The first shard's engine.  With one shard (the default) this is the
  /// only engine and behaves exactly as World::engine always has; sharded
  /// setups should schedule per-host work on Host::engine() and
  /// world-level orchestration on control_engine().
  Engine& engine() { return *engines_[0]; }
  /// The engine world-level orchestration (FaultPlan, scripted workload)
  /// runs on.  Identical to engine() when shards == 1.
  Engine& control_engine() { return *ctrl_; }
  /// Engine for shard `i`.
  Engine& shard_engine(std::size_t i) { return *engines_[i]; }
  std::size_t shard_count() const { return engines_.size(); }

  /// Virtual time as seen by the calling thread: a sharded worker reads its
  /// own engine's clock, the coordinator reads the control engine's.
  SimTime now() const;

  /// Runs the simulation up to and including time `t` (all engines end at
  /// exactly `t`).  Single shard: Engine::run_until.  Multi shard: the
  /// conservative window loop described above.
  void run_until(SimTime t);
  /// Runs until no *strong* events remain anywhere (Engine::run semantics
  /// lifted to all shards).  Returns the number of events executed.
  std::size_t run_all();

  /// Total events executed across all engines.
  std::uint64_t events_run() const;
  /// The lookahead of the current topology (recomputed at each run call);
  /// Engine::kNever when no network crosses shards.
  SimTime lookahead() const { return lookahead_; }
  const RunStats& run_stats() const { return run_stats_; }

  /// Creates a network; names must be unique.
  Network& create_network(const std::string& name, MediaModel model);
  /// Creates a host on shard `shard`; names must be unique.  Host RNG
  /// streams fork from the first engine's RNG in creation order, so a given
  /// creation sequence yields identical per-host streams for every shard
  /// count.  Prefer Zone::create_host in zoned worlds — it places the host
  /// on its zone's shard so cross-shard traffic is cross-zone traffic.
  Host& create_host(const std::string& name, std::size_t shard = 0);
  /// Creates an interior forwarding node on shard `shard` (Zone::
  /// create_router places it on the zone's shard).  Routers draw their loss
  /// samples from an RNG forked in creation order, like hosts.
  Router& create_router(const std::string& name, std::size_t shard = 0);
  /// Attaches a host or router to a network with a fresh NIC.
  Nic& attach(Node& node, Network& network);
  Nic& attach(const std::string& host, const std::string& network);

  Host* host(const std::string& name);
  Router* router(const std::string& name);
  Network* network(const std::string& name);

  const std::map<std::string, std::unique_ptr<Host>>& hosts() const { return hosts_; }
  const std::map<std::string, std::unique_ptr<Router>>& routers() const { return routers_; }

  // ---- routing zones (simnet/topo.hpp holds Zone and the builders) ----

  /// Creates a routing zone.  With `shard == kAutoShard`, a child zone
  /// inherits its parent's shard and a top-level zone is assigned round-
  /// robin across the world's shards — so "shard by zone" is the default
  /// placement and cross-shard traffic is cross-zone traffic.
  static constexpr std::size_t kAutoShard = static_cast<std::size_t>(-1);
  Zone& create_zone(const std::string& name, Zone* parent = nullptr,
                    std::size_t shard = kAutoShard);
  Zone* zone(const std::string& name);
  /// Top-level zones, in creation order (empty for flat worlds).
  const std::vector<Zone*>& top_zones() const { return top_zones_; }

  /// Resolves (and caches) the multi-hop route from `src` to the host named
  /// `dst`: per-hop latency-shortest path over up links, hosts never
  /// forwarding, equal-cost ties broken by a deterministic per-(src,dst)
  /// hash so distinct pairs spread across parallel fabric planes.  Returns
  /// nullptr when no path exists.  Must be called from `src`'s shard
  /// thread (or the coordinator); the cache is per-host and lock-free.
  std::shared_ptr<const Route> resolve_route(Host& src, const std::string& dst);

  /// Network distance between two hosts: 0 for the same host, the best
  /// shared-network latency for adjacent hosts (the flat model's answer),
  /// the resolved route's total latency otherwise, kUnreachable when no
  /// path exists.  Replica ranking (files/rcds/rm) runs on this.
  SimDuration net_distance(const std::string& a, const std::string& b);

  /// Monotonic topology-change counter: link/NIC/node up-down transitions,
  /// new attachments and partition fault actions bump it, lazily
  /// invalidating every cached route.
  std::uint64_t route_epoch() const { return route_epoch_.load(std::memory_order_relaxed); }
  void bump_route_epoch() { route_epoch_.fetch_add(1, std::memory_order_relaxed); }

  /// Human-readable dump of the zone tree with per-link utilization and
  /// up/down state — the console `topo` verb and the ops gateway's /topo
  /// endpoint serve this (implemented in topo.cpp).
  std::string describe_topology() const;

 private:
  friend class Host;
  friend class Zone;

  /// One cross-shard event (delivery or multi-hop forward) parked until the
  /// window barrier.
  struct MailItem {
    SimTime arrival;
    std::uint64_t seq;  ///< per-source-shard, assigned at post time
    Engine* engine;     ///< destination shard's engine
    EventFn fn;
  };

  /// Called from a node's shard thread (or the coordinator): schedules
  /// directly when `shard` is the calling thread's shard (or the caller is
  /// the coordinator), otherwise appends to mail_[calling shard][shard].
  void post_event(std::size_t shard, Engine* engine, SimTime arrival, EventFn fn);
  void post_delivery(Network* net, Host* target, SimTime arrival, Packet packet);
  /// Schedules hop `i` of `route` (a forward on the hop's tx node) at
  /// `when`, crossing shards through the mailbox when needed.
  void post_hop(std::shared_ptr<const Route> route, std::size_t i, SimTime when,
                Packet packet);
  /// Executes hop `i`: down checks, serialize on the egress NIC (sharing
  /// bandwidth with every other flow crossing it), loss, fault injection,
  /// then delivery (last hop) or the next forward.
  void forward_hop(std::shared_ptr<const Route> route, std::size_t i, Packet packet);
  /// Uncached shortest-path resolution behind resolve_route.
  std::shared_ptr<const Route> compute_route(Host& src, Host& dst);
  void drain_mailboxes();
  /// The shared window loop behind run_until/run_all.  Runs windows until
  /// the next event anywhere is past `horizon`; with
  /// `stop_when_strong_drained` also stops once no strong event remains on
  /// any engine (run_all mode).
  void run_windows(SimTime horizon, bool stop_when_strong_drained);
  SimTime compute_lookahead() const;
  void ensure_workers();
  void stop_workers();
  void worker_main(std::size_t shard);

  std::vector<std::unique_ptr<Engine>> engines_;  ///< one per shard
  std::unique_ptr<Engine> ctrl_engine_;           ///< only when shards > 1
  Engine* ctrl_;                                  ///< == engines_[0] when shards == 1
  std::map<std::string, std::unique_ptr<Host>> hosts_;
  std::map<std::string, std::unique_ptr<Router>> routers_;
  std::map<std::string, std::unique_ptr<Network>> networks_;
  std::vector<std::unique_ptr<Zone>> zones_;      ///< all zones, creation order
  std::map<std::string, Zone*> zones_by_name_;
  std::vector<Zone*> top_zones_;
  std::size_t next_top_zone_ = 0;                 ///< round-robin shard cursor
  std::atomic<std::uint64_t> route_epoch_{0};

  SimTime lookahead_ = Engine::kNever;
  RunStats run_stats_;

  // Worker pool + window barrier (multi-shard only; single shard never
  // starts threads).  All cross-thread state below is exchanged under mu_,
  // which is what gives every window a happens-before edge: whatever shard
  // i wrote during window k is visible to the coordinator at the barrier
  // and to every shard in window k+1.
  std::vector<std::vector<std::vector<MailItem>>> mail_;  ///< [src][dst]
  std::vector<std::uint64_t> mail_seq_;                   ///< per src shard
  std::vector<std::uint64_t> shard_busy_ns_;              ///< this window, per shard
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t window_gen_ = 0;
  SimTime window_end_ = 0;
  std::size_t done_ = 0;
  bool quit_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace snipe::simnet
