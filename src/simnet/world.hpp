// Hosts, networks and datagram delivery.
//
// A World is the simulated testbed: named hosts, each multi-homed onto one
// or more named networks (Ethernet segments, an ATM fabric, a WAN path).
// The only service simnet itself offers is an unreliable, MTU-limited,
// possibly-lossy datagram: exactly the substrate UDP gave the real SNIPE
// comms module.  Reliability, fragmentation, streams and multicast all live
// one layer up, in snipe::transport, as they did in the paper (§6).
//
// Failure injection is first-class: hosts, networks and individual NICs can
// be taken down and brought back at any virtual time; in-flight packets to
// a dead destination are dropped, which is what the transport's failover
// logic (§6: "switch routes/interfaces as links failed") must cope with.
// Richer, adversarial failure modes — burst loss, duplication, reordering,
// corruption, partitions, crash/restart schedules — attach per network via
// simnet/fault.hpp's FaultInjector/FaultPlan.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "simnet/engine.hpp"
#include "simnet/media.hpp"
#include "util/bytes.hpp"
#include "util/log.hpp"
#include "util/payload.hpp"
#include "util/result.hpp"

namespace snipe::simnet {

class FaultInjector;  // simnet/fault.hpp

/// A network endpoint: host name + port.
struct Address {
  std::string host;
  std::uint16_t port = 0;

  std::string to_string() const { return host + ":" + std::to_string(port); }
  friend bool operator==(const Address&, const Address&) = default;
  friend bool operator<(const Address& a, const Address& b) {
    return a.host != b.host ? a.host < b.host : a.port < b.port;
  }
};

/// A delivered datagram.  The payload is a shared immutable view: every
/// copy of a Packet (duplication, broadcast fan-out) shares the same bytes.
struct Packet {
  Address src;
  Address dst;
  Payload payload;
  std::string network;  ///< network it arrived on
};

using PacketHandler = std::function<void(const Packet&)>;

class World;
class Host;

/// One attachment point of a host to a network.
class Nic {
 public:
  Nic(Host* host, class Network* network) : host_(host), network_(network) {}
  Host* host() const { return host_; }
  Network* network() const { return network_; }
  bool up() const { return up_; }
  void set_up(bool up) { up_ = up; }
  /// Earliest time the egress side of this NIC is free to start serializing
  /// the next packet (models bandwidth sharing between flows).
  SimTime next_free = 0;

 private:
  Host* host_;
  Network* network_;
  bool up_ = true;
};

/// Aggregate traffic counters, kept per network and exposed by World for
/// the bench harnesses.
struct NetStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t drops_loss = 0;      ///< random media loss
  std::uint64_t drops_down = 0;      ///< host/NIC/network down at delivery
  std::uint64_t drops_unbound = 0;   ///< no listener on the destination port
  std::uint64_t drops_fault = 0;     ///< fault injector (burst loss/partition)
  std::uint64_t fault_duplicates = 0;  ///< extra copies injected
  std::uint64_t fault_corruptions = 0; ///< datagrams delivered mangled
};

/// A shared medium: an Ethernet segment, ATM fabric, or point-to-point WAN.
class Network {
 public:
  Network(std::string name, MediaModel model) : name_(std::move(name)), model_(model) {}

  const std::string& name() const { return name_; }
  const MediaModel& model() const { return model_; }
  bool up() const { return up_; }
  void set_up(bool up) { up_ = up; }
  /// Additional loss injected on top of the media baseline (for loss
  /// sweeps); total per-packet drop probability is baseline + extra.
  void set_extra_loss(double p) { extra_loss_ = p; }
  double total_loss() const { return model_.loss + extra_loss_; }

  const std::vector<Nic*>& nics() const { return nics_; }
  NetStats& stats() { return stats_; }
  const NetStats& stats() const { return stats_; }

  /// Attaches (or, with nullptr, removes) a fault injector consulted for
  /// every datagram on this network — see simnet/fault.hpp.  Ownership is
  /// shared so a FaultPlan can outlive or predecease the network safely.
  void set_fault(std::shared_ptr<FaultInjector> fault) { fault_ = std::move(fault); }
  FaultInjector* fault() const { return fault_.get(); }

 private:
  friend class World;
  std::string name_;
  MediaModel model_;
  bool up_ = true;
  double extra_loss_ = 0.0;
  std::vector<Nic*> nics_;
  std::shared_ptr<FaultInjector> fault_;
  NetStats stats_;
};

/// Options for a single send.
struct SendOptions {
  /// If nonempty, try this network first even if a faster one is shared.
  std::string preferred_network;
  /// Stamped into the delivered Packet's src.port so receivers can reply.
  std::uint16_t src_port = 0;
};

/// A simulated machine.  Hosts own their NICs and their port table.
class Host {
 public:
  Host(World* world, std::string name, Rng rng);

  const std::string& name() const { return name_; }
  bool up() const { return up_; }
  /// Taking a host down atomically clears nothing: bindings survive so the
  /// host "reboots" with its services intact, which is how the availability
  /// bench models crash/restart churn.
  void set_up(bool up) { up_ = up; }

  /// Registers a datagram handler on `port`.
  Result<void> bind(std::uint16_t port, PacketHandler handler);
  void unbind(std::uint16_t port);
  bool bound(std::uint16_t port) const { return ports_.count(port) > 0; }
  /// Picks an unused ephemeral port (49152+).
  std::uint16_t ephemeral_port();

  /// Sends one datagram.  Chooses the fastest shared up network (§5.3),
  /// honouring `preferred_network` when it is available.  Fails with
  ///   invalid_argument  if payload exceeds the chosen network's MTU,
  ///   unreachable       if no shared network is up or the host is down.
  /// On success returns the name of the network used.  Loss is applied at
  /// delivery time; a lost packet still returns success here, as with UDP.
  Result<std::string> send(const Address& dst, Payload payload, const SendOptions& opts = {});

  /// Sends to every other up NIC on `network` (link-level broadcast, used
  /// by the experimental Ethernet multicast protocol of §6).  Receivers
  /// share one payload; no per-receiver copy is made.
  Result<void> broadcast(const std::string& network, std::uint16_t port, Payload payload,
                         std::uint16_t src_port = 0);

  /// The NIC attaching this host to `network`, or nullptr.
  Nic* nic_on(const std::string& network);
  const std::vector<std::unique_ptr<Nic>>& nics() const { return nics_; }

  /// Networks this host can currently transmit on.
  std::vector<std::string> up_networks() const;

  World* world() const { return world_; }
  Rng& rng() { return rng_; }

 private:
  friend class World;
  void deliver(Packet packet, Network* network);
  /// Runs one about-to-fly datagram through `net`'s fault injector (if any)
  /// and schedules the surviving copies for delivery at `target`.
  static void schedule_delivery(Engine& engine, Network* net, Host* target,
                                SimTime arrival, Packet packet);

  World* world_;
  std::string name_;
  bool up_ = true;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::map<std::uint16_t, PacketHandler> ports_;
  std::uint16_t next_ephemeral_ = 49152;
  Rng rng_;
  Logger log_;
};

/// The whole simulated testbed: engine + hosts + networks.
class World {
 public:
  explicit World(std::uint64_t seed = 1) : engine_(seed) {}
  ~World() {
    // Pending events may own endpoints that unbind from hosts on
    // destruction; release them while the hosts are still alive.
    engine_.clear();
  }

  Engine& engine() { return engine_; }
  SimTime now() const { return engine_.now(); }

  /// Creates a network; names must be unique.
  Network& create_network(const std::string& name, MediaModel model);
  /// Creates a host; names must be unique.
  Host& create_host(const std::string& name);
  /// Attaches a host to a network with a fresh NIC.
  Nic& attach(Host& host, Network& network);
  Nic& attach(const std::string& host, const std::string& network);

  Host* host(const std::string& name);
  Network* network(const std::string& name);

  const std::map<std::string, std::unique_ptr<Host>>& hosts() const { return hosts_; }

 private:
  friend class Host;
  Engine engine_;
  std::map<std::string, std::unique_ptr<Host>> hosts_;
  std::map<std::string, std::unique_ptr<Network>> networks_;
};

}  // namespace snipe::simnet
