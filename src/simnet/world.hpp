// Hosts, networks and datagram delivery.
//
// A World is the simulated testbed: named hosts, each multi-homed onto one
// or more named networks (Ethernet segments, an ATM fabric, a WAN path).
// The only service simnet itself offers is an unreliable, MTU-limited,
// possibly-lossy datagram: exactly the substrate UDP gave the real SNIPE
// comms module.  Reliability, fragmentation, streams and multicast all live
// one layer up, in snipe::transport, as they did in the paper (§6).
//
// Failure injection is first-class: hosts, networks and individual NICs can
// be taken down and brought back at any virtual time; in-flight packets to
// a dead destination are dropped, which is what the transport's failover
// logic (§6: "switch routes/interfaces as links failed") must cope with.
// Richer, adversarial failure modes — burst loss, duplication, reordering,
// corruption, partitions, crash/restart schedules — attach per network via
// simnet/fault.hpp's FaultInjector/FaultPlan.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "simnet/engine.hpp"
#include "simnet/media.hpp"
#include "util/bytes.hpp"
#include "util/log.hpp"
#include "util/payload.hpp"
#include "util/result.hpp"

namespace snipe::simnet {

class FaultInjector;  // simnet/fault.hpp

/// A network endpoint: host name + port.
struct Address {
  std::string host;
  std::uint16_t port = 0;

  std::string to_string() const { return host + ":" + std::to_string(port); }
  friend bool operator==(const Address&, const Address&) = default;
  friend bool operator<(const Address& a, const Address& b) {
    return a.host != b.host ? a.host < b.host : a.port < b.port;
  }
};

/// A delivered datagram.  The payload is a shared immutable view: every
/// copy of a Packet (duplication, broadcast fan-out) shares the same bytes.
struct Packet {
  Address src;
  Address dst;
  Payload payload;
  std::string network;  ///< network it arrived on
};

using PacketHandler = std::function<void(const Packet&)>;

class World;
class Host;

/// One attachment point of a host to a network.
class Nic {
 public:
  Nic(Host* host, class Network* network) : host_(host), network_(network) {}
  Host* host() const { return host_; }
  Network* network() const { return network_; }
  bool up() const { return up_; }
  void set_up(bool up) { up_ = up; }
  /// Earliest time the egress side of this NIC is free to start serializing
  /// the next packet (models bandwidth sharing between flows).
  SimTime next_free = 0;

 private:
  Host* host_;
  Network* network_;
  bool up_ = true;
};

/// Aggregate traffic counters, kept per network and exposed by World for
/// the bench harnesses.  Fields are relaxed atomics because a network that
/// spans shards is incremented from several worker threads at once; every
/// field is a pure sum, so totals stay deterministic regardless of the
/// interleaving.
struct NetStats {
  std::atomic<std::uint64_t> packets_sent{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> packets_delivered{0};
  std::atomic<std::uint64_t> drops_loss{0};      ///< random media loss
  std::atomic<std::uint64_t> drops_down{0};      ///< host/NIC/network down at delivery
  std::atomic<std::uint64_t> drops_unbound{0};   ///< no listener on the destination port
  std::atomic<std::uint64_t> drops_fault{0};     ///< fault injector (burst loss/partition)
  std::atomic<std::uint64_t> fault_duplicates{0};  ///< extra copies injected
  std::atomic<std::uint64_t> fault_corruptions{0}; ///< datagrams delivered mangled
};

/// A shared medium: an Ethernet segment, ATM fabric, or point-to-point WAN.
class Network {
 public:
  Network(std::string name, MediaModel model) : name_(std::move(name)), model_(model) {}

  const std::string& name() const { return name_; }
  const MediaModel& model() const { return model_; }
  bool up() const { return up_; }
  void set_up(bool up) { up_ = up; }
  /// Additional loss injected on top of the media baseline (for loss
  /// sweeps); total per-packet drop probability is baseline + extra.
  void set_extra_loss(double p) { extra_loss_ = p; }
  double total_loss() const { return model_.loss + extra_loss_; }

  const std::vector<Nic*>& nics() const { return nics_; }
  NetStats& stats() { return stats_; }
  const NetStats& stats() const { return stats_; }

  /// Attaches (or, with nullptr, removes) a fault injector consulted for
  /// every datagram on this network — see simnet/fault.hpp.  Ownership is
  /// shared so a FaultPlan can outlive or predecease the network safely.
  void set_fault(std::shared_ptr<FaultInjector> fault) { fault_ = std::move(fault); }
  FaultInjector* fault() const { return fault_.get(); }

 private:
  friend class World;
  std::string name_;
  MediaModel model_;
  bool up_ = true;
  double extra_loss_ = 0.0;
  std::vector<Nic*> nics_;
  std::shared_ptr<FaultInjector> fault_;
  NetStats stats_;
};

/// Options for a single send.
struct SendOptions {
  /// If nonempty, try this network first even if a faster one is shared.
  std::string preferred_network;
  /// Stamped into the delivered Packet's src.port so receivers can reply.
  std::uint16_t src_port = 0;
};

/// A simulated machine.  Hosts own their NICs and their port table.
///
/// Every host belongs to one *shard*: the engine its events (deliveries,
/// protocol timers, handler callbacks) run on.  With a single-shard World
/// that is the World's one engine, exactly as before; with N shards the
/// engines run on parallel worker threads in conservative time windows (see
/// World below), and everything a host owns — NICs, port table, transport
/// endpoints constructed against it — is touched only by its shard's
/// thread.
class Host {
 public:
  Host(World* world, std::string name, Rng rng, Engine* engine, std::size_t shard);

  const std::string& name() const { return name_; }
  bool up() const { return up_; }
  /// Taking a host down atomically clears nothing: bindings survive so the
  /// host "reboots" with its services intact, which is how the availability
  /// bench models crash/restart churn.
  void set_up(bool up) { up_ = up; }

  /// Registers a datagram handler on `port`.
  Result<void> bind(std::uint16_t port, PacketHandler handler);
  void unbind(std::uint16_t port);
  bool bound(std::uint16_t port) const { return ports_.count(port) > 0; }
  /// Picks an unused ephemeral port (49152+).
  std::uint16_t ephemeral_port();

  /// Sends one datagram.  Chooses the fastest shared up network (§5.3),
  /// honouring `preferred_network` when it is available.  Fails with
  ///   invalid_argument  if payload exceeds the chosen network's MTU,
  ///   unreachable       if no shared network is up or the host is down.
  /// On success returns the name of the network used.  Loss is applied at
  /// delivery time; a lost packet still returns success here, as with UDP.
  Result<std::string> send(const Address& dst, Payload payload, const SendOptions& opts = {});

  /// Sends to every other up NIC on `network` (link-level broadcast, used
  /// by the experimental Ethernet multicast protocol of §6).  Receivers
  /// share one payload; no per-receiver copy is made.
  Result<void> broadcast(const std::string& network, std::uint16_t port, Payload payload,
                         std::uint16_t src_port = 0);

  /// The NIC attaching this host to `network`, or nullptr.
  Nic* nic_on(const std::string& network);
  const std::vector<std::unique_ptr<Nic>>& nics() const { return nics_; }

  /// Networks this host can currently transmit on.
  std::vector<std::string> up_networks() const;

  World* world() const { return world_; }
  Rng& rng() { return rng_; }

  /// The engine this host's events run on (its shard's engine).  Transport
  /// endpoints and services bound to this host must schedule their timers
  /// here, not on World::engine(), so they stay on their shard's thread.
  Engine& engine() const { return *engine_; }
  /// Which shard this host was created on (0 in a single-shard World).
  std::size_t shard() const { return shard_; }

 private:
  friend class World;
  void deliver(Packet packet, Network* network);
  /// Runs one about-to-fly datagram through `net`'s fault injector (if any)
  /// and posts the surviving copies for delivery at `target` — directly
  /// onto the target's engine when it shares the sender's shard, through
  /// the cross-shard mailbox otherwise.
  static void schedule_delivery(World* world, Network* net, Host* target,
                                SimTime arrival, Packet packet);

  World* world_;
  std::string name_;
  bool up_ = true;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::map<std::uint16_t, PacketHandler> ports_;
  std::uint16_t next_ephemeral_ = 49152;
  Rng rng_;
  Engine* engine_;
  std::size_t shard_;
  Logger log_;
};

/// The whole simulated testbed: engines + hosts + networks.
///
/// With `shards == 1` (the default) this is exactly the classic single
/// engine World.  With `shards > 1` the hosts are partitioned across N
/// private engines, each driven by its own worker thread, and the run
/// methods below execute a conservative windowed parallel simulation:
///
///   * The *lookahead* L is the minimum media latency over networks whose
///     NICs span more than one shard (never below one tick).  A packet sent
///     at time t cannot arrive on another shard before t + L.
///   * Each window starts at s = the earliest pending event anywhere and
///     ends at e = min(s + L, next control event, horizon).  Every shard
///     runs its own events with time in [s, e) in parallel, touching only
///     its own hosts' state.
///   * Cross-shard sends during the window land in per-(src,dst) shard
///     mailboxes; at the window barrier the coordinator drains them in
///     deterministic order — sorted by (arrival time, source shard, per-
///     source-shard sequence) — onto the destination engines.  Arrival
///     times are >= e by the lookahead argument, so no shard ever receives
///     an event in its past.
///
/// World-level orchestration (FaultPlan actions, scripted workloads) runs
/// on a dedicated *control engine* between windows on the coordinator
/// thread; its next event time bounds every window, so control actions are
/// totally ordered against shard events.  With shards == 1 the control
/// engine IS the one shard engine, preserving today's behavior bit for
/// bit.  See DESIGN.md §sharded-engine for the determinism contract.
class World {
 public:
  /// Per-run accounting for the windowed driver (bench + tests).
  struct RunStats {
    std::uint64_t windows = 0;            ///< barriers executed
    std::uint64_t cross_shard_packets = 0;///< deliveries routed via mailboxes
    /// Sum over windows of the *maximum* per-shard thread-CPU time spent in
    /// that window: the critical path of the parallel execution.  On a
    /// machine with >= N cores this is what the wall clock converges to.
    std::uint64_t critical_path_ns = 0;
    std::uint64_t busy_ns = 0;            ///< total thread-CPU time, all shards
  };

  explicit World(std::uint64_t seed = 1, std::size_t shards = 1);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// The first shard's engine.  With one shard (the default) this is the
  /// only engine and behaves exactly as World::engine always has; sharded
  /// setups should schedule per-host work on Host::engine() and
  /// world-level orchestration on control_engine().
  Engine& engine() { return *engines_[0]; }
  /// The engine world-level orchestration (FaultPlan, scripted workload)
  /// runs on.  Identical to engine() when shards == 1.
  Engine& control_engine() { return *ctrl_; }
  /// Engine for shard `i`.
  Engine& shard_engine(std::size_t i) { return *engines_[i]; }
  std::size_t shard_count() const { return engines_.size(); }

  /// Virtual time as seen by the calling thread: a sharded worker reads its
  /// own engine's clock, the coordinator reads the control engine's.
  SimTime now() const;

  /// Runs the simulation up to and including time `t` (all engines end at
  /// exactly `t`).  Single shard: Engine::run_until.  Multi shard: the
  /// conservative window loop described above.
  void run_until(SimTime t);
  /// Runs until no *strong* events remain anywhere (Engine::run semantics
  /// lifted to all shards).  Returns the number of events executed.
  std::size_t run_all();

  /// Total events executed across all engines.
  std::uint64_t events_run() const;
  /// The lookahead of the current topology (recomputed at each run call);
  /// Engine::kNever when no network crosses shards.
  SimTime lookahead() const { return lookahead_; }
  const RunStats& run_stats() const { return run_stats_; }

  /// Creates a network; names must be unique.
  Network& create_network(const std::string& name, MediaModel model);
  /// Creates a host on shard `shard`; names must be unique.  Host RNG
  /// streams fork from the first engine's RNG in creation order, so a given
  /// creation sequence yields identical per-host streams for every shard
  /// count.
  Host& create_host(const std::string& name, std::size_t shard = 0);
  /// Attaches a host to a network with a fresh NIC.
  Nic& attach(Host& host, Network& network);
  Nic& attach(const std::string& host, const std::string& network);

  Host* host(const std::string& name);
  Network* network(const std::string& name);

  const std::map<std::string, std::unique_ptr<Host>>& hosts() const { return hosts_; }

 private:
  friend class Host;

  /// One cross-shard delivery parked until the window barrier.
  struct MailItem {
    SimTime arrival;
    std::uint64_t seq;  ///< per-source-shard, assigned at post time
    Network* net;
    Host* target;
    Packet packet;
  };

  /// Called from Host::schedule_delivery: schedules directly when the
  /// target lives on the calling thread's shard (or the caller is the
  /// coordinator), otherwise appends to mail_[calling shard][target shard].
  void post_delivery(Network* net, Host* target, SimTime arrival, Packet packet);
  void drain_mailboxes();
  /// The shared window loop behind run_until/run_all.  Runs windows until
  /// the next event anywhere is past `horizon`; with
  /// `stop_when_strong_drained` also stops once no strong event remains on
  /// any engine (run_all mode).
  void run_windows(SimTime horizon, bool stop_when_strong_drained);
  SimTime compute_lookahead() const;
  void ensure_workers();
  void stop_workers();
  void worker_main(std::size_t shard);

  std::vector<std::unique_ptr<Engine>> engines_;  ///< one per shard
  std::unique_ptr<Engine> ctrl_engine_;           ///< only when shards > 1
  Engine* ctrl_;                                  ///< == engines_[0] when shards == 1
  std::map<std::string, std::unique_ptr<Host>> hosts_;
  std::map<std::string, std::unique_ptr<Network>> networks_;

  SimTime lookahead_ = Engine::kNever;
  RunStats run_stats_;

  // Worker pool + window barrier (multi-shard only; single shard never
  // starts threads).  All cross-thread state below is exchanged under mu_,
  // which is what gives every window a happens-before edge: whatever shard
  // i wrote during window k is visible to the coordinator at the barrier
  // and to every shard in window k+1.
  std::vector<std::vector<std::vector<MailItem>>> mail_;  ///< [src][dst]
  std::vector<std::uint64_t> mail_seq_;                   ///< per src shard
  std::vector<std::uint64_t> shard_busy_ns_;              ///< this window, per shard
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t window_gen_ = 0;
  SimTime window_end_ = 0;
  std::size_t done_ = 0;
  bool quit_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace snipe::simnet
