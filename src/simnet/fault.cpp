#include "simnet/fault.hpp"

#include <cassert>
#include <functional>
#include <utility>

#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "simnet/world.hpp"
#include "util/log.hpp"

namespace snipe::simnet {

FaultInjector::Lane& FaultInjector::lane(const std::string& src) {
  std::lock_guard<std::mutex> lock(lanes_mu_);
  auto it = lanes_.find(src);
  if (it == lanes_.end())
    it = lanes_.emplace(src, Lane{base_.derive(Rng::hash_name(src)), false}).first;
  return it->second;
}

bool FaultInjector::in_bad_state() const {
  std::lock_guard<std::mutex> lock(lanes_mu_);
  for (const auto& [name, ln] : lanes_)
    if (ln.bad) return true;
  return false;
}

FaultVerdict FaultInjector::judge(const std::string& src, const std::string& dst) {
  return judge(src, src, dst);
}

FaultVerdict FaultInjector::judge(const std::string& lane_name, const std::string& src,
                                  const std::string& dst) {
  ++stats_.packets_judged;
  FaultVerdict v;

  // Partition first: no randomness involved, the boundary is absolute and
  // end-to-end — a routed packet crossing a partitioned gateway drops no
  // matter which hop judges it.
  if (partitioned(src, dst)) {
    ++stats_.drops_partition;
    v.drop = true;
    return v;
  }

  // The lane's burst chain advances exactly once per judged packet.  All
  // draws happen in a fixed order (state, loss, duplicate, reorder,
  // corrupt) so the random sequence — and therefore the whole run —
  // depends only on the seed and the lane's packet sequence, never on
  // which branches were taken.
  Lane& ln = lane(lane_name);
  Rng& rng = ln.rng;
  ln.bad = ln.bad ? !rng.chance(profile_.burst.p_exit_bad)
                  : rng.chance(profile_.burst.p_enter_bad);
  bool lost = rng.chance(ln.bad ? profile_.burst.loss_bad : profile_.burst.loss_good);
  bool dup = rng.chance(profile_.duplicate);
  bool reorder = rng.chance(profile_.reorder);
  SimDuration jitter1 =
      profile_.reorder_jitter > 0
          ? static_cast<SimDuration>(rng.next_below(
                static_cast<std::uint64_t>(profile_.reorder_jitter) + 1))
          : 0;
  SimDuration jitter2 =
      profile_.reorder_jitter > 0
          ? static_cast<SimDuration>(rng.next_below(
                static_cast<std::uint64_t>(profile_.reorder_jitter) + 1))
          : 0;
  bool corrupt = rng.chance(profile_.corrupt);

  if (lost) {
    ++stats_.drops_burst;
    v.drop = true;
    return v;
  }
  if (dup) {
    ++stats_.duplicated;
    v.copies = 2;
    v.dup_delay = jitter2;
  }
  if (reorder) {
    ++stats_.reordered;
    v.extra_delay = jitter1;
  }
  if (corrupt) {
    ++stats_.corrupted;
    v.corrupt = true;
  }
  return v;
}

void FaultInjector::corrupt_payload(Bytes& wire, const std::string& src) {
  if (wire.empty()) return;
  Rng& rng = lane(src).rng;
  std::uint32_t flips = static_cast<std::uint32_t>(
      rng.next_below(std::max<std::uint32_t>(profile_.corrupt_max_bytes, 1)) + 1);
  for (std::uint32_t i = 0; i < flips; ++i) {
    std::size_t pos = static_cast<std::size_t>(rng.next_below(wire.size()));
    std::uint8_t mask = static_cast<std::uint8_t>(rng.next_below(255) + 1);  // never 0
    wire[pos] ^= mask;
  }
}

void FaultInjector::corrupt_payload(Bytes& wire) { corrupt_payload(wire, std::string()); }

void FaultInjector::corrupt_payload(Payload& wire, const std::string& src) {
  if (wire.empty()) return;
  Rng& rng = lane(src).rng;
  std::uint32_t flips = static_cast<std::uint32_t>(
      rng.next_below(std::max<std::uint32_t>(profile_.corrupt_max_bytes, 1)) + 1);
  for (std::uint32_t i = 0; i < flips; ++i) {
    std::size_t pos = static_cast<std::size_t>(rng.next_below(wire.size()));
    std::uint8_t mask = static_cast<std::uint8_t>(rng.next_below(255) + 1);  // never 0
    wire.cow_xor(pos, mask);
  }
}

void FaultInjector::corrupt_payload(Payload& wire) { corrupt_payload(wire, std::string()); }

void FaultInjector::set_partition(const std::vector<std::vector<std::string>>& groups) {
  group_of_.clear();
  int id = 0;
  for (const auto& group : groups) {
    for (const auto& host : group) group_of_[host] = id;
    ++id;
  }
}

bool FaultInjector::partitioned(const std::string& a, const std::string& b) const {
  if (group_of_.empty()) return false;
  // Unnamed hosts share an implicit extra group.
  auto ita = group_of_.find(a);
  auto itb = group_of_.find(b);
  int ga = ita == group_of_.end() ? -1 : ita->second;
  int gb = itb == group_of_.end() ? -1 : itb->second;
  return ga != gb;
}

FaultPlan::FaultPlan(World& world, std::uint64_t seed) : world_(world), rng_(seed) {}

FaultInjector& FaultPlan::inject(const std::string& network, const FaultProfile& profile) {
  Network* net = world_.network(network);
  assert(net != nullptr && "fault profile on unknown network");
  auto injector = std::make_shared<FaultInjector>(profile, rng_.fork());
  owned_.push_back(injector);
  net->set_fault(injector);
  return *injector;
}

FaultInjector* FaultPlan::injector(const std::string& network) {
  Network* net = world_.network(network);
  return net == nullptr ? nullptr : net->fault();
}

FaultInjector& FaultPlan::ensure_injector(const std::string& network) {
  FaultInjector* existing = injector(network);
  if (existing != nullptr) return *existing;
  return inject(network, FaultProfile{});
}

void FaultPlan::act(SimTime at, std::string name,
                    std::vector<std::pair<std::string, std::string>> args,
                    std::function<void()> fn) {
  // Plan actions run on the control engine: with one shard that is the
  // world's only engine (today's behavior exactly); with several it is the
  // coordinator-driven engine that fires between windows, when every
  // worker is parked and any host or network can be mutated safely.
  world_.control_engine().schedule_at(
      at, [name = std::move(name), args = std::move(args), fn = std::move(fn)] {
        obs::Tracer::global().instant("fault", name, args);
        // Mirror every injected fault into the flight recorder so a dump
        // taken when an invariant trips shows what the chaos plan just did.
        std::string detail;
        for (const auto& [k, v] : args) {
          if (!detail.empty()) detail += " ";
          detail += k + "=" + v;
        }
        obs::FlightRecorder::global().record({}, "fault", name, detail);
        fn();
      });
}

void FaultPlan::link_down(const std::string& network, SimTime at, SimTime up_at) {
  assert(up_at >= at);
  act(at, "link.down", {{"network", network}}, [this, network] {
    Network* net = world_.network(network);
    if (net != nullptr) net->set_up(false);
  });
  act(up_at, "link.up", {{"network", network}}, [this, network] {
    Network* net = world_.network(network);
    if (net != nullptr) net->set_up(true);
  });
}

void FaultPlan::nic_down(const std::string& host, const std::string& network, SimTime at,
                         SimTime up_at) {
  assert(up_at >= at);
  auto flip = [this, host, network](bool up) {
    Host* h = world_.host(host);
    Nic* nic = h == nullptr ? nullptr : h->nic_on(network);
    if (nic != nullptr) nic->set_up(up);
  };
  act(at, "nic.down", {{"host", host}, {"network", network}},
      [flip] { flip(false); });
  act(up_at, "nic.up", {{"host", host}, {"network", network}},
      [flip] { flip(true); });
}

void FaultPlan::crash_host(const std::string& host, SimTime at, SimTime restart_at) {
  assert(restart_at >= at);
  act(at, "host.crash", {{"host", host}}, [this, host] {
    Host* h = world_.host(host);
    if (h != nullptr) h->set_up(false);
  });
  act(restart_at, "host.restart", {{"host", host}}, [this, host] {
    Host* h = world_.host(host);
    if (h != nullptr) h->set_up(true);
  });
}

void FaultPlan::partition(const std::string& network,
                          std::vector<std::vector<std::string>> groups, SimTime at,
                          SimTime heal_at) {
  assert(heal_at >= at);
  ensure_injector(network);
  std::string group_desc;
  for (const auto& g : groups) {
    if (!group_desc.empty()) group_desc += " ";
    group_desc += "[";
    for (std::size_t i = 0; i < g.size(); ++i) group_desc += (i ? "," : "") + g[i];
    group_desc += "]";
  }
  act(at, "partition.start", {{"network", network}, {"groups", group_desc}},
      [this, network, groups = std::move(groups)] {
        FaultInjector* f = injector(network);
        if (f != nullptr) f->set_partition(groups);
        // Reachability changed: cached routes must re-resolve (transports
        // probing alternate paths should not keep riding a path whose
        // gateway now sits across the boundary).
        world_.bump_route_epoch();
      });
  act(heal_at, "partition.heal", {{"network", network}}, [this, network] {
    FaultInjector* f = injector(network);
    if (f != nullptr) f->heal_partition();
    world_.bump_route_epoch();
  });
}

}  // namespace snipe::simnet
