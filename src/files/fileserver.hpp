// SNIPE file servers, sinks and sources (§3.2, §5.9).
//
// Files are named by LIFNs and replicated across file servers; name-to-
// location bindings live in the RC registry ("Name-to-location binding for
// these files is maintained by metadata servers, which are informed as
// replicas are created and deleted").  I/O follows the paper's model
// exactly:
//   * a *file sink* is spawned on the server; the writer sends it ordinary
//     SNIPE messages, which the sink reassembles at explicit offsets and
//     finally stores once every byte is covered;
//   * a *file source* is spawned on the server; it reads the file and
//     sends it to a SNIPE address as a message stream.
// Replication daemons push copies to peer servers up to the configured
// redundancy and register each new replica's location.
//
// Transfers are *striped* (GridFTP-style): a read or write is split into k
// parallel chunk streams, stripe s carrying the chunks whose index is
// congruent to s modulo k.  Each data message names its absolute byte
// offset, so stripes reassemble out of order and a re-issued stripe's
// duplicate chunks are idempotent.  The client spreads stripes across the
// LIFN's live replicas — ranked by network distance (§6: "Duplicated file
// reading/access is supported via location of closest resource daemons")
// plus observed failure history — and re-issues a stalled stripe from the
// next-best replica when its per-stripe progress timer fires, so a replica
// dying mid-stream degrades a transfer instead of wedging it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "crypto/hash.hpp"
#include "obs/metrics.hpp"
#include "rcds/client.hpp"
#include "transport/rpc.hpp"

namespace snipe::files {

namespace tags {
inline constexpr std::uint32_t kStore = 120;       ///< direct whole-file store
inline constexpr std::uint32_t kFetch = 121;       ///< direct whole-file fetch
inline constexpr std::uint32_t kOpenSink = 122;    ///< spawn a file sink
inline constexpr std::uint32_t kSinkData = 123;    ///< one-way data to a sink
inline constexpr std::uint32_t kCloseSink = 124;   ///< finalize a sink
inline constexpr std::uint32_t kOpenSource = 125;  ///< spawn a file source
inline constexpr std::uint32_t kSourceData = 126;  ///< one-way data from a source
inline constexpr std::uint32_t kReplicate = 127;   ///< server-to-server copy
inline constexpr std::uint32_t kDelete = 128;
}  // namespace tags

// Wire formats (all five transfer tags carry the stripe descriptor):
//   kOpenSink   req:  str lifn, u64 total, u32 stripe_count   -> u64 sink_id
//   kSinkData   note: u64 sink_id, u64 offset, blob chunk
//   kCloseSink  req:  u64 sink_id        -> empty (error if bytes missing)
//   kOpenSource req:  str lifn, str dst_host, u16 dst_port, u64 read_id,
//                     u32 stripe_index, u32 stripe_count, u64 chunk_size
//                                        -> u64 total, u64 stripe_bytes
//   kSourceData note: u64 read_id, u64 total, u64 offset, blob chunk

struct FileServerConfig {
  /// Total replicas (including this server) the replication daemon aims
  /// for on each stored file.
  int replication_factor = 1;
  /// Chunk size for source streaming when the reader does not dictate one.
  std::size_t chunk = 64 * 1024;
  /// The replication daemon's repair period: every tick it compares each
  /// local file's registered replica count against the redundancy target
  /// and pushes fresh copies when replicas have been lost ("creating and
  /// deleting replicas of files according to local policy, redundancy
  /// requirements, and demand" — §3.2).  0 disables repair.
  SimDuration repair_period = duration::seconds(15);
  /// Idle TTL for open sinks: a sink that sees no data for this long is
  /// discarded (its writer crashed or gave up), releasing the buffered
  /// bytes.  0 keeps abandoned sinks forever (the pre-TTL leak).
  SimDuration sink_ttl = duration::seconds(60);
};

struct FileServerStats {
  std::uint64_t stores = 0;
  std::uint64_t fetches = 0;
  std::uint64_t sink_sessions = 0;
  std::uint64_t source_sessions = 0;  ///< stripe streams opened
  std::uint64_t replicas_pushed = 0;
  std::uint64_t replicas_received = 0;
  std::uint64_t repairs = 0;  ///< replicas re-created after loss (§3.2)
  std::uint64_t bytes_stored = 0;
  std::uint64_t sinks_expired = 0;      ///< idle sinks discarded by the TTL
  std::uint64_t sinks_incomplete = 0;   ///< kCloseSink with bytes missing
};

class FileServer {
 public:
  static constexpr std::uint16_t kDefaultPort = 7120;

  /// `rc_replicas`: the metadata registry to announce locations in.
  FileServer(simnet::Host& host, std::vector<simnet::Address> rc_replicas,
             std::uint16_t port = kDefaultPort, FileServerConfig config = {});

  /// Peer file servers the replication daemon may copy to.
  void set_peers(std::vector<simnet::Address> peers) { peers_ = std::move(peers); }

  simnet::Address address() const { return rpc_.address(); }
  /// The location string registered in RC for this server's replicas.
  std::string location_url() const;

  /// Direct in-process access (tests / co-located components).
  bool has(const std::string& lifn) const { return store_.count(lifn) > 0; }
  Result<Bytes> read(const std::string& lifn) const;
  void store_local(const std::string& lifn, Bytes content, bool announce = true);

  std::size_t file_count() const { return store_.size(); }
  std::size_t open_sinks() const { return sinks_.size(); }
  const FileServerStats& stats() const { return stats_; }
  transport::RpcEndpoint& rpc() { return rpc_; }

 private:
  struct Sink {
    std::string lifn;
    Bytes data;           ///< pre-sized to the declared total
    std::uint64_t total = 0;
    std::uint32_t stripes = 1;
    /// Merged coverage intervals [offset, end) of the bytes received.
    std::map<std::uint64_t, std::uint64_t> extents;
    std::uint64_t covered = 0;
    SimTime last_activity = 0;
  };

  void announce(const std::string& lifn, const Bytes& content);
  void replicate(const std::string& lifn);
  void repair_tick();
  void repair_file(const std::string& lifn);
  void sink_sweep();

  transport::RpcEndpoint rpc_;
  simnet::Engine& engine_;
  FileServerConfig config_;
  rcds::RcClient rc_;
  std::vector<simnet::Address> peers_;
  std::map<std::string, Bytes> store_;
  std::map<std::uint64_t, Sink> sinks_;
  std::uint64_t next_sink_id_ = 1;
  FileServerStats stats_;
  obs::Counter* bytes_served_;  ///< global "files.bytes_served" (fetch + source)
  Logger log_;
  /// Declared last so sources retire before stats_ dies.
  obs::SourceGroup metrics_sources_;
};

struct FileClientConfig {
  /// Chunk size dictated to sources/sinks (offset granularity).
  std::size_t chunk = 64 * 1024;
  /// Parallel stripe streams per transfer.  1 reproduces the paper's
  /// single-stream behaviour (closest replica only); larger counts spread
  /// stripes round-robin over the ranked replicas.
  std::uint32_t stripes = 1;
  /// Per-stripe progress timeout: a stripe that receives nothing for this
  /// long is re-issued from the next-best replica.
  SimDuration stripe_stall = duration::milliseconds(750);
  /// Deadline for the per-stripe kOpenSource RPC itself.
  SimDuration open_timeout = duration::seconds(2);
  /// Open attempts per stripe before the whole read fails (0 = automatic:
  /// two passes over the candidate list plus one).
  int max_attempts = 0;
};

/// Client-side file I/O: striped sink writes, striped multi-replica source
/// reads with per-stripe stall failover, integrity verification against
/// the registered SHA-256.
class FileClient {
 public:
  using ReadHandler = std::function<void(Result<Bytes>)>;
  using DoneHandler = std::function<void(Result<void>)>;

  FileClient(transport::RpcEndpoint& rpc, std::vector<simnet::Address> rc_replicas,
             FileClientConfig config = {});
  FileClient(transport::RpcEndpoint& rpc, std::vector<simnet::Address> rc_replicas,
             std::size_t chunk)
      : FileClient(rpc, std::move(rc_replicas), FileClientConfig{chunk}) {}
  ~FileClient();

  /// Writes `content` under `lifn` by spawning a sink on `server` and
  /// streaming SNIPE messages to it (§5.9's "opening a file for writing"),
  /// one offset-stamped stream per stripe.
  void write(const simnet::Address& server, const std::string& lifn, Bytes content,
             DoneHandler done);

  /// Resolves the LIFN, spreads `config.stripes` stripe streams over the
  /// live replicas (ranked by distance + failure history), reassembles the
  /// out-of-order chunks, re-issues stalled stripes, and verifies the
  /// content hash.
  void read(const std::string& lifn, ReadHandler done);

  const FileClientConfig& config() const { return config_; }

 private:
  struct Stripe {
    std::uint32_t index = 0;
    std::size_t candidate = 0;   ///< position in the ranked candidate list
    std::uint64_t expected = 0;  ///< bytes this stripe must deliver
    std::uint64_t received = 0;
    SimTime last_progress = 0;
    SimTime opened_at = 0;
    simnet::TimerId timer;
    int attempts = 0;  ///< opens issued (1 + re-issues)
    bool done = false;
  };

  struct PendingRead {
    std::string lifn;
    std::string expect_hash;
    Bytes data;
    std::uint64_t total = 0;
    bool total_known = false;
    std::vector<simnet::Address> candidates;  ///< ranked best-first
    std::vector<Stripe> stripes;
    std::set<std::uint64_t> chunks_have;  ///< offsets received (dedup)
    std::uint64_t bytes_have = 0;
    ReadHandler done;
  };

  void open_stripe(std::uint64_t read_id, std::uint32_t stripe);
  /// Stall/failure path: pick the next-best replica and re-open, or fail
  /// the whole read once the stripe's attempt budget is spent.
  void reissue_stripe(std::uint64_t read_id, std::uint32_t stripe, const char* why);
  void arm_stripe_timer(std::uint64_t read_id, std::uint32_t stripe);
  void on_total_known(PendingRead& read);
  void finish_read(std::uint64_t read_id, Result<Bytes> result);
  void note_stripe_done(PendingRead& read, Stripe& s);
  int attempt_budget(const PendingRead& read) const;

  /// Orders candidate servers by observed failure history, then network
  /// distance from our host (stable, so the RC registration order breaks
  /// ties deterministically).
  std::vector<simnet::Address> rank_candidates(std::vector<simnet::Address> servers) const;

  transport::RpcEndpoint& rpc_;
  rcds::RcClient rc_;
  FileClientConfig config_;
  std::map<std::uint64_t, PendingRead> reads_;
  std::uint64_t next_read_id_ = 1;
  /// Observed failure history per replica host: bumped on open failures and
  /// stripe stalls, halved on stripe completion.
  std::map<std::string, int> host_failures_;
  /// Liveness token weakly captured by in-flight callbacks (RC lookups,
  /// stripe opens, the kSourceData handler left on the shared endpoint):
  /// the client can be destroyed with transfers outstanding, and a late
  /// callback must not touch the freed object.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  Logger log_;
};

/// Deprecated shim: forwards to simnet::World::net_distance, which ranks
/// non-adjacent hosts by their resolved multi-hop route latency instead of
/// the old +inf.  New code should call the World method directly.
[[deprecated("use simnet::World::net_distance")]] SimDuration net_distance(
    simnet::World& world, const std::string& a, const std::string& b);

}  // namespace snipe::files
