// SNIPE file servers, sinks and sources (§3.2, §5.9).
//
// Files are named by LIFNs and replicated across file servers; name-to-
// location bindings live in the RC registry ("Name-to-location binding for
// these files is maintained by metadata servers, which are informed as
// replicas are created and deleted").  I/O follows the paper's model
// exactly:
//   * a *file sink* is spawned on the server; the writer sends it ordinary
//     SNIPE messages, which the sink appends and finally stores;
//   * a *file source* is spawned on the server; it reads the file and
//     sends it to a SNIPE address as a message stream.
// Replication daemons push copies to peer servers up to the configured
// redundancy and register each new replica's location.  Reads pick the
// *closest* replica by network distance (§6: "Duplicated file
// reading/access is supported via location of closest resource daemons").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "crypto/hash.hpp"
#include "obs/metrics.hpp"
#include "rcds/client.hpp"
#include "transport/rpc.hpp"

namespace snipe::files {

namespace tags {
inline constexpr std::uint32_t kStore = 120;       ///< direct whole-file store
inline constexpr std::uint32_t kFetch = 121;       ///< direct whole-file fetch
inline constexpr std::uint32_t kOpenSink = 122;    ///< spawn a file sink
inline constexpr std::uint32_t kSinkData = 123;    ///< one-way data to a sink
inline constexpr std::uint32_t kCloseSink = 124;   ///< finalize a sink
inline constexpr std::uint32_t kOpenSource = 125;  ///< spawn a file source
inline constexpr std::uint32_t kSourceData = 126;  ///< one-way data from a source
inline constexpr std::uint32_t kReplicate = 127;   ///< server-to-server copy
inline constexpr std::uint32_t kDelete = 128;
}  // namespace tags

struct FileServerConfig {
  /// Total replicas (including this server) the replication daemon aims
  /// for on each stored file.
  int replication_factor = 1;
  /// Chunk size for source streaming.
  std::size_t chunk = 64 * 1024;
  /// The replication daemon's repair period: every tick it compares each
  /// local file's registered replica count against the redundancy target
  /// and pushes fresh copies when replicas have been lost ("creating and
  /// deleting replicas of files according to local policy, redundancy
  /// requirements, and demand" — §3.2).  0 disables repair.
  SimDuration repair_period = duration::seconds(15);
};

struct FileServerStats {
  std::uint64_t stores = 0;
  std::uint64_t fetches = 0;
  std::uint64_t sink_sessions = 0;
  std::uint64_t source_sessions = 0;
  std::uint64_t replicas_pushed = 0;
  std::uint64_t replicas_received = 0;
  std::uint64_t repairs = 0;  ///< replicas re-created after loss (§3.2)
  std::uint64_t bytes_stored = 0;
};

class FileServer {
 public:
  static constexpr std::uint16_t kDefaultPort = 7120;

  /// `rc_replicas`: the metadata registry to announce locations in.
  FileServer(simnet::Host& host, std::vector<simnet::Address> rc_replicas,
             std::uint16_t port = kDefaultPort, FileServerConfig config = {});

  /// Peer file servers the replication daemon may copy to.
  void set_peers(std::vector<simnet::Address> peers) { peers_ = std::move(peers); }

  simnet::Address address() const { return rpc_.address(); }
  /// The location string registered in RC for this server's replicas.
  std::string location_url() const;

  /// Direct in-process access (tests / co-located components).
  bool has(const std::string& lifn) const { return store_.count(lifn) > 0; }
  Result<Bytes> read(const std::string& lifn) const;
  void store_local(const std::string& lifn, Bytes content, bool announce = true);

  std::size_t file_count() const { return store_.size(); }
  const FileServerStats& stats() const { return stats_; }
  transport::RpcEndpoint& rpc() { return rpc_; }

 private:
  struct Sink {
    std::string lifn;
    Bytes data;
  };

  void announce(const std::string& lifn, const Bytes& content);
  void replicate(const std::string& lifn);
  void repair_tick();
  void repair_file(const std::string& lifn);

  transport::RpcEndpoint rpc_;
  simnet::Engine& engine_;
  FileServerConfig config_;
  rcds::RcClient rc_;
  std::vector<simnet::Address> peers_;
  std::map<std::string, Bytes> store_;
  std::map<std::uint64_t, Sink> sinks_;
  std::uint64_t next_sink_id_ = 1;
  FileServerStats stats_;
  obs::Counter* bytes_served_;  ///< global "files.bytes_served" (fetch + source)
  Logger log_;
  /// Declared last so sources retire before stats_ dies.
  obs::SourceGroup metrics_sources_;
};

/// Client-side file I/O: sink-based writes, closest-replica source reads,
/// integrity verification against the registered SHA-256.
class FileClient {
 public:
  using ReadHandler = std::function<void(Result<Bytes>)>;
  using DoneHandler = std::function<void(Result<void>)>;

  FileClient(transport::RpcEndpoint& rpc, std::vector<simnet::Address> rc_replicas,
             std::size_t chunk = 64 * 1024);

  /// Writes `content` under `lifn` by spawning a sink on `server` and
  /// streaming SNIPE messages to it (§5.9's "opening a file for writing").
  void write(const simnet::Address& server, const std::string& lifn, Bytes content,
             DoneHandler done);

  /// Resolves the LIFN, picks the closest live replica, spawns a source
  /// aimed back at us, reassembles, and verifies the content hash.
  void read(const std::string& lifn, ReadHandler done);

 private:
  struct PendingRead {
    std::string lifn;
    std::string expect_hash;
    Bytes data;
    std::size_t total = 0;
    ReadHandler done;
  };

  void try_read_location(std::vector<simnet::Address> candidates, std::size_t index,
                         PendingRead read);
  /// Orders candidate servers by network distance from our host.
  std::vector<simnet::Address> rank_by_distance(std::vector<simnet::Address> servers) const;

  transport::RpcEndpoint& rpc_;
  rcds::RcClient rc_;
  std::size_t chunk_;
  std::map<std::uint64_t, PendingRead> reads_;
  std::uint64_t next_read_id_ = 1;
  Logger log_;
};

/// Network distance between two hosts in `world`: 0 for the same host, the
/// best shared-network latency otherwise, and +inf (max SimDuration) when
/// no network is shared.
SimDuration net_distance(simnet::World& world, const std::string& a, const std::string& b);

}  // namespace snipe::files
