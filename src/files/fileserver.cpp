#include "files/fileserver.hpp"

#include <algorithm>
#include <limits>

#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "util/uri.hpp"

namespace snipe::files {

namespace {
std::string content_hash(const Bytes& content) {
  return crypto::digest_hex(crypto::sha256(content));
}

/// Merges [offset, end) into the coverage map and returns the number of
/// *newly* covered bytes (overlap with existing extents counts zero, so a
/// re-sent chunk is idempotent).
std::uint64_t add_extent(std::map<std::uint64_t, std::uint64_t>& extents,
                         std::uint64_t offset, std::uint64_t end) {
  if (end <= offset) return 0;
  std::uint64_t fresh = end - offset;
  // Absorb every extent that overlaps or abuts [offset, end).
  auto it = extents.upper_bound(offset);
  if (it != extents.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= offset) it = prev;
  }
  while (it != extents.end() && it->first <= end) {
    std::uint64_t lo = std::min(offset, it->first);
    std::uint64_t hi = std::max(end, it->second);
    fresh -= std::min(end, it->second) - std::max(offset, it->first);
    offset = lo;
    end = hi;
    it = extents.erase(it);
  }
  extents[offset] = end;
  return fresh;
}
}  // namespace

SimDuration net_distance(simnet::World& world, const std::string& a, const std::string& b) {
  return world.net_distance(a, b);
}

FileServer::FileServer(simnet::Host& host, std::vector<simnet::Address> rc_replicas,
                       std::uint16_t port, FileServerConfig config)
    : rpc_(host, port, {}),
      engine_(host.engine()),
      config_(config),
      rc_(rpc_, std::move(rc_replicas)),
      log_("files@" + host.name() + ":" + std::to_string(rpc_.address().port)) {
  rpc_.serve(tags::kStore, [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
    ByteReader r(body);
    auto lifn = r.str();
    if (!lifn) return lifn.error();
    auto content = r.blob();
    if (!content) return content.error();
    store_local(lifn.value(), std::move(content).take());
    return Bytes{};
  });

  rpc_.serve(tags::kFetch, [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
    ByteReader r(body);
    auto lifn = r.str();
    if (!lifn) return lifn.error();
    auto it = store_.find(lifn.value());
    if (it == store_.end()) return Result<Bytes>(Errc::not_found, lifn.value());
    ++stats_.fetches;
    bytes_served_->inc(it->second.size());
    ByteWriter w;
    w.blob(it->second);
    return std::move(w).take();
  });

  rpc_.serve(tags::kOpenSink,
             [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
               ByteReader r(body);
               auto lifn = r.str();
               auto total = r.u64();
               auto stripes = r.u32();
               if (!lifn || !total || !stripes)
                 return Error{Errc::corrupt, "bad open-sink request"};
               std::uint64_t id = next_sink_id_++;
               Sink sink;
               sink.lifn = lifn.value();
               sink.total = total.value();
               sink.stripes = std::max<std::uint32_t>(1, stripes.value());
               sink.data = Bytes(total.value(), 0);
               sink.last_activity = engine_.now();
               sinks_[id] = std::move(sink);
               ++stats_.sink_sessions;
               ByteWriter w;
               w.u64(id);
               return std::move(w).take();
             });

  rpc_.on_notify(tags::kSinkData, [this](const simnet::Address&, const Bytes& body) {
    ByteReader r(body);
    auto id = r.u64();
    auto offset = r.u64();
    auto chunk = r.blob();
    if (!id || !offset || !chunk) return;
    auto it = sinks_.find(id.value());
    if (it == sinks_.end()) return;
    Sink& sink = it->second;
    std::uint64_t end = offset.value() + chunk.value().size();
    if (end > sink.total) {
      log_.warn("sink ", id.value(), ": chunk [", offset.value(), ", ", end,
                ") exceeds declared size ", sink.total);
      return;
    }
    // Still inside srudp's delivery handler: link the chunk ingest into the
    // carrying message's flow so `trace <id>` shows where the bytes landed.
    auto& tracer = obs::Tracer::global();
    if (tracer.flow_enabled() && rpc_.srudp().last_delivered_flow() != 0)
      tracer.flow(obs::TraceEvent::Phase::flow_step, "flow", "files.sink_chunk_rx",
                  rpc_.srudp().last_delivered_flow(),
                  {{"lifn", sink.lifn},
                   {"offset", std::to_string(offset.value())},
                   {"bytes", std::to_string(chunk.value().size())}});
    std::copy(chunk.value().begin(), chunk.value().end(),
              sink.data.begin() + static_cast<std::ptrdiff_t>(offset.value()));
    sink.covered += add_extent(sink.extents, offset.value(), end);
    sink.last_activity = engine_.now();
  });

  rpc_.serve(tags::kCloseSink,
             [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
               ByteReader r(body);
               auto id = r.u64();
               if (!id) return id.error();
               auto it = sinks_.find(id.value());
               if (it == sinks_.end())
                 return Result<Bytes>(Errc::not_found, "no such sink");
               Sink& sink = it->second;
               if (sink.covered != sink.total) {
                 ++stats_.sinks_incomplete;
                 std::string detail = "incomplete sink " + sink.lifn + ": " +
                                      std::to_string(sink.covered) + "/" +
                                      std::to_string(sink.total) + " bytes";
                 sinks_.erase(it);
                 return Result<Bytes>(Errc::state_error, std::move(detail));
               }
               store_local(sink.lifn, std::move(sink.data));
               sinks_.erase(it);
               return Bytes{};
             });

  rpc_.serve(tags::kOpenSource,
             [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
               ByteReader r(body);
               auto lifn = r.str();
               auto dst_host = r.str();
               auto dst_port = r.u16();
               auto read_id = r.u64();
               auto stripe_index = r.u32();
               auto stripe_count = r.u32();
               auto chunk_size = r.u64();
               if (!lifn || !dst_host || !dst_port || !read_id || !stripe_index ||
                   !stripe_count || !chunk_size)
                 return Error{Errc::corrupt, "bad open-source request"};
               const std::uint32_t stripes = std::max<std::uint32_t>(1, stripe_count.value());
               if (stripe_index.value() >= stripes)
                 return Error{Errc::invalid_argument, "stripe index out of range"};
               auto it = store_.find(lifn.value());
               if (it == store_.end()) return Result<Bytes>(Errc::not_found, lifn.value());
               ++stats_.source_sessions;
               // Stream this stripe's chunks — indices congruent to the
               // stripe modulo the stripe count — as offset-stamped one-way
               // SNIPE messages.
               const Bytes& content = it->second;
               simnet::Address dst{dst_host.value(), dst_port.value()};
               const std::uint64_t total = content.size();
               const std::uint64_t chunk =
                   chunk_size.value() != 0 ? chunk_size.value() : config_.chunk;
               std::uint64_t stripe_bytes = 0;
               auto& tracer = obs::Tracer::global();
               for (std::uint64_t ci = stripe_index.value(); ci * chunk < total;
                    ci += stripes) {
                 std::uint64_t offset = ci * chunk;
                 std::uint64_t n = std::min<std::uint64_t>(chunk, total - offset);
                 ByteWriter w;
                 w.u64(read_id.value());
                 w.u64(total);
                 w.u64(offset);
                 w.blob(Bytes(content.begin() + static_cast<std::ptrdiff_t>(offset),
                              content.begin() + static_cast<std::ptrdiff_t>(offset + n)));
                 std::uint64_t flow = rpc_.notify(dst, tags::kSourceData, std::move(w).take());
                 if (tracer.flow_enabled())
                   tracer.flow(obs::TraceEvent::Phase::flow_step, "flow", "files.source_chunk",
                               flow,
                               {{"lifn", lifn.value()},
                                {"stripe", std::to_string(stripe_index.value())},
                                {"offset", std::to_string(offset)},
                                {"bytes", std::to_string(n)}});
                 stripe_bytes += n;
               }
               bytes_served_->inc(stripe_bytes);
               ByteWriter w;
               w.u64(total);
               w.u64(stripe_bytes);
               return std::move(w).take();
             });

  rpc_.serve(tags::kReplicate,
             [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
               ByteReader r(body);
               auto lifn = r.str();
               if (!lifn) return lifn.error();
               auto content = r.blob();
               if (!content) return content.error();
               ++stats_.replicas_received;
               if (!store_.count(lifn.value())) store_[lifn.value()] = content.value();
               // (Re-)announce unconditionally: a repair push may follow a
               // crash that retracted our registration while the bytes
               // survived on disk.
               announce(lifn.value(), store_[lifn.value()]);
               return Bytes{};
             });

  if (config_.repair_period > 0)
    engine_.schedule_weak(config_.repair_period, [this] { repair_tick(); });
  if (config_.sink_ttl > 0)
    engine_.schedule_weak(std::max<SimDuration>(config_.sink_ttl / 2, 1),
                          [this] { sink_sweep(); });

  rpc_.serve(tags::kDelete, [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
    ByteReader r(body);
    auto lifn = r.str();
    if (!lifn) return lifn.error();
    if (store_.erase(lifn.value()) == 0)
      return Result<Bytes>(Errc::not_found, lifn.value());
    rc_.remove(lifn.value(), rcds::names::kLifnLocation, location_url(), [](Result<void>) {});
    return Bytes{};
  });

  bytes_served_ = &obs::MetricsRegistry::global().counter("files.bytes_served");
  metrics_sources_.add("files.stores", [this] { return stats_.stores; });
  metrics_sources_.add("files.fetches", [this] { return stats_.fetches; });
  metrics_sources_.add("files.sink_sessions", [this] { return stats_.sink_sessions; });
  metrics_sources_.add("files.source_sessions", [this] { return stats_.source_sessions; });
  metrics_sources_.add("files.replicas_pushed", [this] { return stats_.replicas_pushed; });
  metrics_sources_.add("files.replicas_received",
                       [this] { return stats_.replicas_received; });
  metrics_sources_.add("files.repairs", [this] { return stats_.repairs; });
  metrics_sources_.add("files.bytes_stored", [this] { return stats_.bytes_stored; });
  metrics_sources_.add("files.sinks_expired", [this] { return stats_.sinks_expired; });
  metrics_sources_.add("files.sinks_incomplete",
                       [this] { return stats_.sinks_incomplete; });
}

std::string FileServer::location_url() const {
  return "snipe://" + address().host + ":" + std::to_string(address().port) + "/files";
}

Result<Bytes> FileServer::read(const std::string& lifn) const {
  auto it = store_.find(lifn);
  if (it == store_.end()) return Result<Bytes>(Errc::not_found, lifn);
  return it->second;
}

void FileServer::store_local(const std::string& lifn, Bytes content, bool announce_it) {
  ++stats_.stores;
  auto it = store_.find(lifn);
  if (it != store_.end()) stats_.bytes_stored -= it->second.size();
  stats_.bytes_stored += content.size();
  store_[lifn] = std::move(content);
  if (announce_it) {
    announce(lifn, store_[lifn]);
    replicate(lifn);
  }
}

void FileServer::announce(const std::string& lifn, const Bytes& content) {
  rc_.apply(lifn,
            {rcds::op_add(rcds::names::kLifnLocation, location_url()),
             rcds::op_set(rcds::names::kLifnHash, content_hash(content))},
            [this, lifn](Result<std::vector<rcds::Assertion>> r) {
              if (!r) log_.warn("failed to announce ", lifn, ": ", r.error().to_string());
            });
}

void FileServer::sink_sweep() {
  engine_.schedule_weak(std::max<SimDuration>(config_.sink_ttl / 2, 1),
                        [this] { sink_sweep(); });
  SimTime now = engine_.now();
  for (auto it = sinks_.begin(); it != sinks_.end();) {
    Sink& sink = it->second;
    if (now - sink.last_activity < config_.sink_ttl) {
      ++it;
      continue;
    }
    ++stats_.sinks_expired;
    obs::FlightRecorder::global().record(
        rpc_.host().name(), "files", "sink_expired",
        "lifn=" + sink.lifn + " id=" + std::to_string(it->first) + " covered=" +
            std::to_string(sink.covered) + "/" + std::to_string(sink.total));
    log_.debug("expiring idle sink ", it->first, " (", sink.lifn, ")");
    it = sinks_.erase(it);
  }
}

void FileServer::repair_tick() {
  engine_.schedule_weak(config_.repair_period, [this] { repair_tick(); });
  if (!rpc_.host().up()) return;
  if (config_.replication_factor <= 1 || peers_.empty()) return;
  for (const auto& [lifn, content] : store_) repair_file(lifn);
}

void FileServer::repair_file(const std::string& lifn) {
  // Count *live* registered replicas; push fresh copies if below target.
  // Liveness here reads simulator state directly — a stand-in for the
  // health probe a production replication daemon would send; the protocol
  // consequences (retraction + re-push) are what matter.
  rc_.lookup(lifn, rcds::names::kLifnLocation,
             [this, lifn](Result<std::vector<std::string>> r) {
               if (!r) return;
               int live = 0;
               std::set<std::string> live_urls;
               simnet::World* world = rpc_.host().world();
               for (const auto& url : r.value()) {
                 auto uri = snipe::parse_uri(url);
                 if (!uri) continue;
                 simnet::Host* h = world->host(uri.value().host);
                 if (h != nullptr && h->up()) {
                   ++live;
                   live_urls.insert(url);
                 } else {
                   // Retract the dead replica's registration so readers
                   // stop trying it ("deleting replicas ... according to
                   // local policy", §3.2).
                   rc_.remove(lifn, rcds::names::kLifnLocation, url, [](Result<void>) {});
                 }
               }
               if (live >= config_.replication_factor) return;
               auto it = store_.find(lifn);
               if (it == store_.end()) return;
               log_.debug("repairing ", lifn, ": ", live, "/",
                          config_.replication_factor, " live replicas");
               ByteWriter w;
               w.str(lifn);
               w.blob(it->second);
               Bytes body = std::move(w).take();
               int needed = config_.replication_factor - live;
               for (const auto& peer : peers_) {
                 if (needed <= 0) break;
                 // A peer that is already a live registered replica gains
                 // nothing from another copy — pushing to it every tick is
                 // repair churn with no replica-count progress.
                 std::string peer_url = "snipe://" + peer.host + ":" +
                                        std::to_string(peer.port) + "/files";
                 if (live_urls.count(peer_url)) continue;
                 simnet::Host* peer_host = world->host(peer.host);
                 if (peer_host == nullptr || !peer_host->up()) continue;
                 ++stats_.repairs;
                 --needed;
                 std::uint64_t flow =
                     rpc_.call(peer, tags::kReplicate, body, [](Result<Bytes>) {});
                 auto& tracer = obs::Tracer::global();
                 if (tracer.flow_enabled())
                   tracer.flow(obs::TraceEvent::Phase::flow_step, "flow",
                               "files.repair_push", flow,
                               {{"lifn", lifn}, {"peer", peer.to_string()}});
               }
             });
}

void FileServer::replicate(const std::string& lifn) {
  int copies_needed = config_.replication_factor - 1;
  if (copies_needed <= 0 || peers_.empty()) return;
  auto it = store_.find(lifn);
  if (it == store_.end()) return;
  ByteWriter w;
  w.str(lifn);
  w.blob(it->second);
  Bytes body = std::move(w).take();
  auto& tracer = obs::Tracer::global();
  for (int i = 0; i < copies_needed && i < static_cast<int>(peers_.size()); ++i) {
    ++stats_.replicas_pushed;
    std::uint64_t flow =
        rpc_.call(peers_[i], tags::kReplicate, body, [this, lifn](Result<Bytes> r) {
          if (!r) log_.warn("replication of ", lifn, " failed: ", r.error().to_string());
        });
    if (tracer.flow_enabled())
      tracer.flow(obs::TraceEvent::Phase::flow_step, "flow", "files.replicate_push", flow,
                  {{"lifn", lifn}, {"peer", peers_[i].to_string()}});
  }
}

// ---------- FileClient ----------

FileClient::FileClient(transport::RpcEndpoint& rpc, std::vector<simnet::Address> rc_replicas,
                       FileClientConfig config)
    : rpc_(rpc),
      rc_(rpc, std::move(rc_replicas)),
      config_(config),
      log_("fileclient@" + rpc.host().name()) {
  if (config_.stripes == 0) config_.stripes = 1;
  if (config_.chunk == 0) config_.chunk = 64 * 1024;
  rpc_.on_notify(files::tags::kSourceData, [this, alive = std::weak_ptr<char>(alive_)](
                                               const simnet::Address&, const Bytes& body) {
    if (alive.expired()) return;  // endpoint outlived this client
    ByteReader r(body);
    auto id = r.u64();
    auto total = r.u64();
    auto offset = r.u64();
    auto chunk = r.blob();
    if (!id || !total || !offset || !chunk) return;
    auto it = reads_.find(id.value());
    if (it == reads_.end()) return;
    PendingRead& read = it->second;
    auto& tracer = obs::Tracer::global();
    if (tracer.flow_enabled() && rpc_.srudp().last_delivered_flow() != 0)
      tracer.flow(obs::TraceEvent::Phase::flow_step, "flow", "files.source_chunk_rx",
                  rpc_.srudp().last_delivered_flow(),
                  {{"lifn", read.lifn},
                   {"offset", std::to_string(offset.value())},
                   {"bytes", std::to_string(chunk.value().size())}});
    if (!read.total_known) {
      read.total = total.value();
      on_total_known(read);
    }
    const std::uint64_t end = offset.value() + chunk.value().size();
    if (end > read.total || chunk.value().empty()) return;
    const std::uint64_t ci = offset.value() / config_.chunk;
    const std::uint32_t s = static_cast<std::uint32_t>(ci % read.stripes.size());
    Stripe& stripe = read.stripes[s];
    stripe.last_progress = rpc_.engine().now();
    if (read.chunks_have.insert(offset.value()).second) {
      std::copy(chunk.value().begin(), chunk.value().end(),
                read.data.begin() + static_cast<std::ptrdiff_t>(offset.value()));
      read.bytes_have += chunk.value().size();
      stripe.received += chunk.value().size();
    }
    if (!stripe.done && stripe.received >= stripe.expected) note_stripe_done(read, stripe);
    if (read.bytes_have >= read.total) finish_read(id.value(), std::move(read.data));
  });
}

FileClient::~FileClient() {
  for (auto& [id, read] : reads_)
    for (auto& s : read.stripes) rpc_.engine().cancel(s.timer);
}

void FileClient::write(const simnet::Address& server, const std::string& lifn, Bytes content,
                       DoneHandler done) {
  ByteWriter open;
  open.str(lifn);
  open.u64(content.size());
  open.u32(config_.stripes);
  rpc_.call(server, tags::kOpenSink, std::move(open).take(),
            [this, alive = std::weak_ptr<char>(alive_), server,
             content = std::move(content), done = std::move(done)](Result<Bytes> r) mutable {
              if (alive.expired()) {
                done(Error{Errc::cancelled, "file client destroyed"});
                return;
              }
              if (!r) {
                done(r.error());
                return;
              }
              ByteReader rr(r.value());
              auto id = rr.u64();
              if (!id) {
                done(id.error());
                return;
              }
              // Stream the content as offset-stamped SNIPE messages to the
              // sink (§5.9), one stripe's chunk sequence at a time.  The
              // offsets make the order irrelevant and let kCloseSink verify
              // completeness before storing.
              auto& tracer = obs::Tracer::global();
              const std::uint64_t total = content.size();
              const std::uint64_t chunk = config_.chunk;
              for (std::uint32_t s = 0; s < config_.stripes; ++s) {
                for (std::uint64_t ci = s; ci * chunk < total; ci += config_.stripes) {
                  std::uint64_t offset = ci * chunk;
                  std::uint64_t n = std::min<std::uint64_t>(chunk, total - offset);
                  ByteWriter w;
                  w.u64(id.value());
                  w.u64(offset);
                  w.blob(Bytes(content.begin() + static_cast<std::ptrdiff_t>(offset),
                               content.begin() + static_cast<std::ptrdiff_t>(offset + n)));
                  std::uint64_t flow =
                      rpc_.notify(server, tags::kSinkData, std::move(w).take());
                  if (tracer.flow_enabled())
                    tracer.flow(obs::TraceEvent::Phase::flow_step, "flow",
                                "files.sink_chunk", flow,
                                {{"sink", std::to_string(id.value())},
                                 {"stripe", std::to_string(s)},
                                 {"offset", std::to_string(offset)},
                                 {"bytes", std::to_string(n)}});
                }
              }
              ByteWriter close;
              close.u64(id.value());
              rpc_.call(server, tags::kCloseSink, std::move(close).take(),
                        [done = std::move(done)](Result<Bytes> r2) {
                          if (!r2)
                            done(r2.error());
                          else
                            done(ok_result());
                        });
            });
}

std::vector<simnet::Address> FileClient::rank_candidates(
    std::vector<simnet::Address> servers) const {
  simnet::World* world = rpc_.host().world();
  const std::string& me = rpc_.host().name();
  auto failures = [this](const simnet::Address& a) {
    auto it = host_failures_.find(a.host);
    return it == host_failures_.end() ? 0 : it->second;
  };
  std::stable_sort(servers.begin(), servers.end(),
                   [&](const simnet::Address& a, const simnet::Address& b) {
                     int fa = failures(a), fb = failures(b);
                     if (fa != fb) return fa < fb;
                     return world->net_distance(me, a.host) < world->net_distance(me, b.host);
                   });
  return servers;
}

void FileClient::read(const std::string& lifn, ReadHandler done) {
  rc_.get(lifn, [this, alive = std::weak_ptr<char>(alive_), lifn, done = std::move(done)](
                    Result<std::vector<rcds::Assertion>> r) mutable {
    if (alive.expired()) {
      done(Error{Errc::cancelled, "file client destroyed"});
      return;
    }
    if (!r) {
      done(r.error());
      return;
    }
    std::vector<simnet::Address> locations;
    std::string hash;
    for (const auto& a : r.value()) {
      if (a.name == rcds::names::kLifnLocation) {
        if (auto uri = snipe::parse_uri(a.value); uri.ok())
          locations.push_back(simnet::Address{
              uri.value().host, static_cast<std::uint16_t>(uri.value().port)});
      } else if (a.name == rcds::names::kLifnHash) {
        hash = a.value;
      }
    }
    if (locations.empty()) {
      done(Error{Errc::not_found, "no replicas registered for " + lifn});
      return;
    }
    std::uint64_t id = next_read_id_++;
    PendingRead read;
    read.lifn = lifn;
    read.expect_hash = hash;
    read.done = std::move(done);
    read.candidates = rank_candidates(std::move(locations));
    read.stripes.resize(config_.stripes);
    for (std::uint32_t s = 0; s < config_.stripes; ++s) {
      read.stripes[s].index = s;
      read.stripes[s].candidate = s % read.candidates.size();
    }
    reads_[id] = std::move(read);
    for (std::uint32_t s = 0; s < config_.stripes; ++s) open_stripe(id, s);
  });
}

int FileClient::attempt_budget(const PendingRead& read) const {
  if (config_.max_attempts > 0) return config_.max_attempts;
  return static_cast<int>(read.candidates.size()) * 2 + 1;
}

void FileClient::open_stripe(std::uint64_t read_id, std::uint32_t stripe) {
  auto it = reads_.find(read_id);
  if (it == reads_.end()) return;
  PendingRead& read = it->second;
  Stripe& st = read.stripes[stripe];
  const simnet::Address server = read.candidates[st.candidate];
  ++st.attempts;
  const int attempt = st.attempts;
  const SimTime now = rpc_.engine().now();
  st.opened_at = now;
  st.last_progress = now;
  obs::MetricsRegistry::global().counter("files.stripe_opens").inc();
  ByteWriter w;
  w.str(read.lifn);
  w.str(rpc_.address().host);
  w.u16(rpc_.address().port);
  w.u64(read_id);
  w.u32(stripe);
  w.u32(static_cast<std::uint32_t>(read.stripes.size()));
  w.u64(config_.chunk);
  std::uint64_t flow = rpc_.call(
      server, tags::kOpenSource, std::move(w).take(),
      [this, alive = std::weak_ptr<char>(alive_), read_id, stripe,
       attempt](Result<Bytes> r) {
        if (alive.expired()) return;
        auto rit = reads_.find(read_id);
        if (rit == reads_.end()) return;
        PendingRead& read = rit->second;
        Stripe& st = read.stripes[stripe];
        if (st.done || st.attempts != attempt) return;  // superseded
        if (!r) {
          ++host_failures_[read.candidates[st.candidate].host];
          log_.debug("stripe ", stripe, " of ", read.lifn, " open failed at ",
                     read.candidates[st.candidate].to_string(), ": ",
                     r.error().to_string());
          reissue_stripe(read_id, stripe, "open_failed");
          return;
        }
        ByteReader rr(r.value());
        auto total = rr.u64();
        if (!total) return;
        st.last_progress = rpc_.engine().now();
        if (!read.total_known) {
          read.total = total.value();
          on_total_known(read);
        }
        // A stripe that owns no bytes (or an empty file) completes on the
        // open response alone; chunks, when there are any, were queued
        // ahead of this response and have usually landed already.
        if (!st.done && st.received >= st.expected) note_stripe_done(read, st);
        if (read.bytes_have >= read.total) finish_read(read_id, std::move(read.data));
      },
      config_.open_timeout);
  auto& tracer = obs::Tracer::global();
  if (tracer.flow_enabled())
    tracer.flow(obs::TraceEvent::Phase::flow_step, "flow", "files.stripe_open", flow,
                {{"lifn", read.lifn},
                 {"stripe", std::to_string(stripe)},
                 {"replica", server.to_string()},
                 {"attempt", std::to_string(attempt)}});
  arm_stripe_timer(read_id, stripe);
}

void FileClient::arm_stripe_timer(std::uint64_t read_id, std::uint32_t stripe) {
  auto it = reads_.find(read_id);
  if (it == reads_.end()) return;
  Stripe& st = it->second.stripes[stripe];
  rpc_.engine().cancel(st.timer);
  st.timer = rpc_.engine().schedule(config_.stripe_stall, [this, read_id, stripe] {
    auto rit = reads_.find(read_id);
    if (rit == reads_.end()) return;
    PendingRead& read = rit->second;
    Stripe& st = read.stripes[stripe];
    st.timer = simnet::TimerId{};
    if (st.done) return;
    const SimTime now = rpc_.engine().now();
    const SimDuration idle = now - st.last_progress;
    if (idle < config_.stripe_stall) {
      // Progress since the timer was armed: wait out the remainder.
      st.timer = rpc_.engine().schedule(
          config_.stripe_stall - idle,
          [this, read_id, stripe] { arm_stripe_timer(read_id, stripe); });
      return;
    }
    const std::string replica = read.candidates[st.candidate].to_string();
    ++host_failures_[read.candidates[st.candidate].host];
    obs::MetricsRegistry::global().counter("files.stripe_stalls").inc();
    obs::FlightRecorder::global().record(
        rpc_.host().name(), "files", "stripe_stall",
        "lifn=" + read.lifn + " stripe=" + std::to_string(stripe) + " replica=" + replica +
            " got=" + std::to_string(st.received) + "/" + std::to_string(st.expected));
    log_.debug("stripe ", stripe, " of ", read.lifn, " stalled at ", replica);
    reissue_stripe(read_id, stripe, "stall");
  });
}

void FileClient::reissue_stripe(std::uint64_t read_id, std::uint32_t stripe,
                                const char* why) {
  auto it = reads_.find(read_id);
  if (it == reads_.end()) return;
  PendingRead& read = it->second;
  Stripe& st = read.stripes[stripe];
  if (st.done) return;
  rpc_.engine().cancel(st.timer);
  st.timer = simnet::TimerId{};
  if (st.attempts >= attempt_budget(read)) {
    finish_read(read_id,
                Error{Errc::unreachable, "stripe " + std::to_string(stripe) + " of " +
                                             read.lifn + " unrecoverable (" + why + ")"});
    return;
  }
  // Next-best replica: fewest observed failures, ranked order breaking
  // ties, avoiding the one that just failed when there is a choice.
  auto failures = [this](const simnet::Address& a) {
    auto fit = host_failures_.find(a.host);
    return fit == host_failures_.end() ? 0 : fit->second;
  };
  std::size_t best = st.candidate;
  int best_score = std::numeric_limits<int>::max();
  for (std::size_t j = 0; j < read.candidates.size(); ++j) {
    if (j == st.candidate && read.candidates.size() > 1) continue;
    int score = failures(read.candidates[j]);
    if (score < best_score) {
      best_score = score;
      best = j;
    }
  }
  st.candidate = best;
  obs::MetricsRegistry::global().counter("files.stripe_reissues").inc();
  obs::FlightRecorder::global().record(
      rpc_.host().name(), "files", "stripe_reissue",
      "lifn=" + read.lifn + " stripe=" + std::to_string(stripe) + " to=" +
          read.candidates[best].to_string() + " attempt=" + std::to_string(st.attempts + 1) +
          " why=" + why);
  open_stripe(read_id, stripe);
}

void FileClient::on_total_known(PendingRead& read) {
  read.total_known = true;
  read.data.resize(read.total);
  const std::uint64_t chunk = config_.chunk;
  const std::size_t k = read.stripes.size();
  for (std::uint64_t ci = 0; ci * chunk < read.total; ++ci) {
    std::uint64_t n = std::min<std::uint64_t>(chunk, read.total - ci * chunk);
    read.stripes[ci % k].expected += n;
  }
}

void FileClient::note_stripe_done(PendingRead& read, Stripe& s) {
  s.done = true;
  rpc_.engine().cancel(s.timer);
  s.timer = simnet::TimerId{};
  obs::MetricsRegistry::global()
      .histogram("files.stripe_ms")
      .observe(static_cast<double>(rpc_.engine().now() - s.opened_at) / 1e6);
  // The serving replica finished a stripe: decay its failure score so a
  // healed host climbs back up the ranking.
  auto it = host_failures_.find(read.candidates[s.candidate].host);
  if (it != host_failures_.end()) it->second /= 2;
}

void FileClient::finish_read(std::uint64_t read_id, Result<Bytes> result) {
  auto it = reads_.find(read_id);
  if (it == reads_.end()) return;
  PendingRead read = std::move(it->second);
  for (auto& s : read.stripes) rpc_.engine().cancel(s.timer);
  reads_.erase(it);
  if (result.ok() && !read.expect_hash.empty() &&
      content_hash(result.value()) != read.expect_hash) {
    read.done(Error{Errc::corrupt, "content hash mismatch"});
    return;
  }
  read.done(std::move(result));
}

}  // namespace snipe::files
