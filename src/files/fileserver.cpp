#include "files/fileserver.hpp"

#include <algorithm>
#include <limits>

#include "obs/trace.hpp"
#include "util/uri.hpp"

namespace snipe::files {

namespace {
std::string content_hash(const Bytes& content) {
  return crypto::digest_hex(crypto::sha256(content));
}
}  // namespace

SimDuration net_distance(simnet::World& world, const std::string& a, const std::string& b) {
  if (a == b) return 0;
  simnet::Host* ha = world.host(a);
  simnet::Host* hb = world.host(b);
  if (ha == nullptr || hb == nullptr) return std::numeric_limits<SimDuration>::max();
  SimDuration best = std::numeric_limits<SimDuration>::max();
  for (const auto& nic : ha->nics()) {
    if (!nic->up() || !nic->network()->up()) continue;
    auto* theirs = hb->nic_on(nic->network()->name());
    if (theirs == nullptr || !theirs->up()) continue;
    best = std::min(best, nic->network()->model().latency);
  }
  return best;
}

FileServer::FileServer(simnet::Host& host, std::vector<simnet::Address> rc_replicas,
                       std::uint16_t port, FileServerConfig config)
    : rpc_(host, port, {}),
      engine_(host.world()->engine()),
      config_(config),
      rc_(rpc_, std::move(rc_replicas)),
      log_("files@" + host.name() + ":" + std::to_string(rpc_.address().port)) {
  rpc_.serve(tags::kStore, [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
    ByteReader r(body);
    auto lifn = r.str();
    if (!lifn) return lifn.error();
    auto content = r.blob();
    if (!content) return content.error();
    store_local(lifn.value(), std::move(content).take());
    return Bytes{};
  });

  rpc_.serve(tags::kFetch, [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
    ByteReader r(body);
    auto lifn = r.str();
    if (!lifn) return lifn.error();
    auto it = store_.find(lifn.value());
    if (it == store_.end()) return Result<Bytes>(Errc::not_found, lifn.value());
    ++stats_.fetches;
    bytes_served_->inc(it->second.size());
    ByteWriter w;
    w.blob(it->second);
    return std::move(w).take();
  });

  rpc_.serve(tags::kOpenSink,
             [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
               ByteReader r(body);
               auto lifn = r.str();
               if (!lifn) return lifn.error();
               std::uint64_t id = next_sink_id_++;
               sinks_[id] = Sink{lifn.value(), {}};
               ++stats_.sink_sessions;
               ByteWriter w;
               w.u64(id);
               return std::move(w).take();
             });

  rpc_.on_notify(tags::kSinkData, [this](const simnet::Address&, const Bytes& body) {
    ByteReader r(body);
    auto id = r.u64();
    auto chunk = r.blob();
    if (!id || !chunk) return;
    auto it = sinks_.find(id.value());
    if (it == sinks_.end()) return;
    // Still inside srudp's delivery handler: link the chunk ingest into the
    // carrying message's flow so `trace <id>` shows where the bytes landed.
    auto& tracer = obs::Tracer::global();
    if (tracer.flow_enabled() && rpc_.srudp().last_delivered_flow() != 0)
      tracer.flow(obs::TraceEvent::Phase::flow_step, "flow", "files.sink_chunk_rx",
                  rpc_.srudp().last_delivered_flow(),
                  {{"lifn", it->second.lifn}, {"bytes", std::to_string(chunk.value().size())}});
    it->second.data.insert(it->second.data.end(), chunk.value().begin(), chunk.value().end());
  });

  rpc_.serve(tags::kCloseSink,
             [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
               ByteReader r(body);
               auto id = r.u64();
               if (!id) return id.error();
               auto it = sinks_.find(id.value());
               if (it == sinks_.end())
                 return Result<Bytes>(Errc::not_found, "no such sink");
               store_local(it->second.lifn, std::move(it->second.data));
               sinks_.erase(it);
               return Bytes{};
             });

  rpc_.serve(tags::kOpenSource,
             [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
               ByteReader r(body);
               auto lifn = r.str();
               auto dst_host = r.str();
               auto dst_port = r.u16();
               auto read_id = r.u64();
               if (!lifn || !dst_host || !dst_port || !read_id)
                 return Error{Errc::corrupt, "bad open-source request"};
               auto it = store_.find(lifn.value());
               if (it == store_.end()) return Result<Bytes>(Errc::not_found, lifn.value());
               ++stats_.source_sessions;
               bytes_served_->inc(it->second.size());
               // Stream the file as a sequence of one-way SNIPE messages.
               const Bytes& content = it->second;
               simnet::Address dst{dst_host.value(), dst_port.value()};
               std::size_t total = content.size();
               std::size_t offset = 0;
               auto& tracer = obs::Tracer::global();
               do {
                 std::size_t n = std::min(config_.chunk, total - offset);
                 ByteWriter w;
                 w.u64(read_id.value());
                 w.u64(total);
                 w.blob(Bytes(content.begin() + offset, content.begin() + offset + n));
                 std::uint64_t flow = rpc_.notify(dst, tags::kSourceData, std::move(w).take());
                 if (tracer.flow_enabled())
                   tracer.flow(obs::TraceEvent::Phase::flow_step, "flow", "files.source_chunk",
                               flow,
                               {{"lifn", lifn.value()},
                                {"offset", std::to_string(offset)},
                                {"bytes", std::to_string(n)}});
                 offset += n;
               } while (offset < total);
               ByteWriter w;
               w.u64(total);
               return std::move(w).take();
             });

  rpc_.serve(tags::kReplicate,
             [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
               ByteReader r(body);
               auto lifn = r.str();
               if (!lifn) return lifn.error();
               auto content = r.blob();
               if (!content) return content.error();
               ++stats_.replicas_received;
               if (!store_.count(lifn.value())) store_[lifn.value()] = content.value();
               // (Re-)announce unconditionally: a repair push may follow a
               // crash that retracted our registration while the bytes
               // survived on disk.
               announce(lifn.value(), store_[lifn.value()]);
               return Bytes{};
             });

  if (config_.repair_period > 0)
    engine_.schedule_weak(config_.repair_period, [this] { repair_tick(); });

  rpc_.serve(tags::kDelete, [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
    ByteReader r(body);
    auto lifn = r.str();
    if (!lifn) return lifn.error();
    if (store_.erase(lifn.value()) == 0)
      return Result<Bytes>(Errc::not_found, lifn.value());
    rc_.remove(lifn.value(), rcds::names::kLifnLocation, location_url(), [](Result<void>) {});
    return Bytes{};
  });

  bytes_served_ = &obs::MetricsRegistry::global().counter("files.bytes_served");
  metrics_sources_.add("files.stores", [this] { return stats_.stores; });
  metrics_sources_.add("files.fetches", [this] { return stats_.fetches; });
  metrics_sources_.add("files.sink_sessions", [this] { return stats_.sink_sessions; });
  metrics_sources_.add("files.source_sessions", [this] { return stats_.source_sessions; });
  metrics_sources_.add("files.replicas_pushed", [this] { return stats_.replicas_pushed; });
  metrics_sources_.add("files.replicas_received",
                       [this] { return stats_.replicas_received; });
  metrics_sources_.add("files.repairs", [this] { return stats_.repairs; });
  metrics_sources_.add("files.bytes_stored", [this] { return stats_.bytes_stored; });
}

std::string FileServer::location_url() const {
  return "snipe://" + address().host + ":" + std::to_string(address().port) + "/files";
}

Result<Bytes> FileServer::read(const std::string& lifn) const {
  auto it = store_.find(lifn);
  if (it == store_.end()) return Result<Bytes>(Errc::not_found, lifn);
  return it->second;
}

void FileServer::store_local(const std::string& lifn, Bytes content, bool announce_it) {
  ++stats_.stores;
  stats_.bytes_stored += content.size();
  store_[lifn] = std::move(content);
  if (announce_it) {
    announce(lifn, store_[lifn]);
    replicate(lifn);
  }
}

void FileServer::announce(const std::string& lifn, const Bytes& content) {
  rc_.apply(lifn,
            {rcds::op_add(rcds::names::kLifnLocation, location_url()),
             rcds::op_set(rcds::names::kLifnHash, content_hash(content))},
            [this, lifn](Result<std::vector<rcds::Assertion>> r) {
              if (!r) log_.warn("failed to announce ", lifn, ": ", r.error().to_string());
            });
}

void FileServer::repair_tick() {
  engine_.schedule_weak(config_.repair_period, [this] { repair_tick(); });
  if (!rpc_.host().up()) return;
  if (config_.replication_factor <= 1 || peers_.empty()) return;
  for (const auto& [lifn, content] : store_) repair_file(lifn);
}

void FileServer::repair_file(const std::string& lifn) {
  // Count *live* registered replicas; push fresh copies if below target.
  // Liveness here reads simulator state directly — a stand-in for the
  // health probe a production replication daemon would send; the protocol
  // consequences (retraction + re-push) are what matter.
  rc_.lookup(lifn, rcds::names::kLifnLocation,
             [this, lifn](Result<std::vector<std::string>> r) {
               if (!r) return;
               int live = 0;
               simnet::World* world = rpc_.host().world();
               for (const auto& url : r.value()) {
                 auto uri = snipe::parse_uri(url);
                 if (!uri) continue;
                 simnet::Host* h = world->host(uri.value().host);
                 if (h != nullptr && h->up()) {
                   ++live;
                 } else {
                   // Retract the dead replica's registration so readers
                   // stop trying it ("deleting replicas ... according to
                   // local policy", §3.2).
                   rc_.remove(lifn, rcds::names::kLifnLocation, url, [](Result<void>) {});
                 }
               }
               if (live >= config_.replication_factor) return;
               auto it = store_.find(lifn);
               if (it == store_.end()) return;
               log_.debug("repairing ", lifn, ": ", live, "/",
                          config_.replication_factor, " live replicas");
               ByteWriter w;
               w.str(lifn);
               w.blob(it->second);
               Bytes body = std::move(w).take();
               int needed = config_.replication_factor - live;
               for (const auto& peer : peers_) {
                 if (needed <= 0) break;
                 simnet::Host* peer_host = world->host(peer.host);
                 if (peer_host == nullptr || !peer_host->up()) continue;
                 ++stats_.repairs;
                 --needed;
                 std::uint64_t flow =
                     rpc_.call(peer, tags::kReplicate, body, [](Result<Bytes>) {});
                 auto& tracer = obs::Tracer::global();
                 if (tracer.flow_enabled())
                   tracer.flow(obs::TraceEvent::Phase::flow_step, "flow",
                               "files.repair_push", flow,
                               {{"lifn", lifn}, {"peer", peer.to_string()}});
               }
             });
}

void FileServer::replicate(const std::string& lifn) {
  int copies_needed = config_.replication_factor - 1;
  if (copies_needed <= 0 || peers_.empty()) return;
  auto it = store_.find(lifn);
  if (it == store_.end()) return;
  ByteWriter w;
  w.str(lifn);
  w.blob(it->second);
  Bytes body = std::move(w).take();
  auto& tracer = obs::Tracer::global();
  for (int i = 0; i < copies_needed && i < static_cast<int>(peers_.size()); ++i) {
    ++stats_.replicas_pushed;
    std::uint64_t flow =
        rpc_.call(peers_[i], tags::kReplicate, body, [this, lifn](Result<Bytes> r) {
          if (!r) log_.warn("replication of ", lifn, " failed: ", r.error().to_string());
        });
    if (tracer.flow_enabled())
      tracer.flow(obs::TraceEvent::Phase::flow_step, "flow", "files.replicate_push", flow,
                  {{"lifn", lifn}, {"peer", peers_[i].to_string()}});
  }
}

// ---------- FileClient ----------

FileClient::FileClient(transport::RpcEndpoint& rpc, std::vector<simnet::Address> rc_replicas,
                       std::size_t chunk)
    : rpc_(rpc),
      rc_(rpc, std::move(rc_replicas)),
      chunk_(chunk),
      log_("fileclient@" + rpc.host().name()) {
  rpc_.on_notify(files::tags::kSourceData, [this](const simnet::Address&, const Bytes& body) {
    ByteReader r(body);
    auto id = r.u64();
    auto total = r.u64();
    auto chunk = r.blob();
    if (!id || !total || !chunk) return;
    auto it = reads_.find(id.value());
    if (it == reads_.end()) return;
    auto& tracer = obs::Tracer::global();
    if (tracer.flow_enabled() && rpc_.srudp().last_delivered_flow() != 0)
      tracer.flow(obs::TraceEvent::Phase::flow_step, "flow", "files.source_chunk_rx",
                  rpc_.srudp().last_delivered_flow(),
                  {{"lifn", it->second.lifn}, {"bytes", std::to_string(chunk.value().size())}});
    PendingRead& read = it->second;
    read.total = total.value();
    read.data.insert(read.data.end(), chunk.value().begin(), chunk.value().end());
    if (read.data.size() >= read.total) {
      auto done = std::move(read.done);
      Bytes data = std::move(read.data);
      std::string expect = read.expect_hash;
      reads_.erase(it);
      if (!expect.empty() && content_hash(data) != expect) {
        done(Error{Errc::corrupt, "content hash mismatch"});
        return;
      }
      done(std::move(data));
    }
  });
}

void FileClient::write(const simnet::Address& server, const std::string& lifn, Bytes content,
                       DoneHandler done) {
  ByteWriter open;
  open.str(lifn);
  rpc_.call(server, tags::kOpenSink, std::move(open).take(),
            [this, server, content = std::move(content),
             done = std::move(done)](Result<Bytes> r) mutable {
              if (!r) {
                done(r.error());
                return;
              }
              ByteReader rr(r.value());
              auto id = rr.u64();
              if (!id) {
                done(id.error());
                return;
              }
              // Stream the content as SNIPE messages to the sink (§5.9).
              auto& tracer = obs::Tracer::global();
              std::size_t offset = 0;
              do {
                std::size_t n = std::min(chunk_, content.size() - offset);
                ByteWriter w;
                w.u64(id.value());
                w.blob(Bytes(content.begin() + offset, content.begin() + offset + n));
                std::uint64_t flow =
                    rpc_.notify(server, tags::kSinkData, std::move(w).take());
                if (tracer.flow_enabled())
                  tracer.flow(obs::TraceEvent::Phase::flow_step, "flow", "files.sink_chunk",
                              flow,
                              {{"sink", std::to_string(id.value())},
                               {"offset", std::to_string(offset)},
                               {"bytes", std::to_string(n)}});
                offset += n;
              } while (offset < content.size());
              ByteWriter close;
              close.u64(id.value());
              rpc_.call(server, tags::kCloseSink, std::move(close).take(),
                        [done = std::move(done)](Result<Bytes> r2) {
                          if (!r2)
                            done(r2.error());
                          else
                            done(ok_result());
                        });
            });
}

std::vector<simnet::Address> FileClient::rank_by_distance(
    std::vector<simnet::Address> servers) const {
  simnet::World* world = rpc_.host().world();
  const std::string& me = rpc_.host().name();
  std::stable_sort(servers.begin(), servers.end(),
                   [&](const simnet::Address& a, const simnet::Address& b) {
                     return net_distance(*world, me, a.host) < net_distance(*world, me, b.host);
                   });
  return servers;
}

void FileClient::read(const std::string& lifn, ReadHandler done) {
  rc_.get(lifn, [this, lifn, done = std::move(done)](
                    Result<std::vector<rcds::Assertion>> r) mutable {
    if (!r) {
      done(r.error());
      return;
    }
    std::vector<simnet::Address> locations;
    std::string hash;
    for (const auto& a : r.value()) {
      if (a.name == rcds::names::kLifnLocation) {
        if (auto uri = snipe::parse_uri(a.value); uri.ok())
          locations.push_back(simnet::Address{
              uri.value().host, static_cast<std::uint16_t>(uri.value().port)});
      } else if (a.name == rcds::names::kLifnHash) {
        hash = a.value;
      }
    }
    if (locations.empty()) {
      done(Error{Errc::not_found, "no replicas registered for " + lifn});
      return;
    }
    PendingRead read;
    read.lifn = lifn;
    read.expect_hash = hash;
    read.done = std::move(done);
    try_read_location(rank_by_distance(std::move(locations)), 0, std::move(read));
  });
}

void FileClient::try_read_location(std::vector<simnet::Address> candidates, std::size_t index,
                                   PendingRead read) {
  if (index >= candidates.size()) {
    read.done(Error{Errc::unreachable, "all replicas of " + read.lifn + " unreachable"});
    return;
  }
  std::uint64_t id = next_read_id_++;
  ByteWriter w;
  w.str(read.lifn);
  w.str(rpc_.address().host);
  w.u16(rpc_.address().port);
  w.u64(id);
  simnet::Address server = candidates[index];
  std::string lifn = read.lifn;
  reads_[id] = std::move(read);
  rpc_.call(server, tags::kOpenSource, std::move(w).take(),
            [this, candidates = std::move(candidates), index, id](Result<Bytes> r) mutable {
              auto it = reads_.find(id);
              if (it == reads_.end()) return;  // already completed
              if (!r) {
                // This replica failed; fall over to the next closest.
                PendingRead read = std::move(it->second);
                reads_.erase(it);
                read.data.clear();
                try_read_location(std::move(candidates), index + 1, std::move(read));
                return;
              }
              // Source opened; data flows via kSourceData notifications.
              // Zero-length files produce no data messages: finish here.
              ByteReader rr(r.value());
              auto total = rr.u64();
              if (total && total.value() == 0) {
                PendingRead read = std::move(it->second);
                reads_.erase(it);
                read.done(Bytes{});
              }
            },
            duration::seconds(2));
  (void)lifn;
}

}  // namespace snipe::files
