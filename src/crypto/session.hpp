// Authenticated sessions (§4's efficiency optimization).
//
// "Rather than having the resource manager separately sign each resource
//  authorization ... the resource manager may instead maintain an
//  authenticated connection with each of its managed resources, which is
//  able to detect connection hijacking, and transmit the resource
//  authorization without signatures."
//
// A Session is established by shipping a fresh symmetric key, RSA-encrypted
// to the responder's public key.  After that every message in either
// direction carries HMAC-SHA256(key, direction || sequence || payload):
// per-message signatures are replaced by one MAC, and the monotonically
// checked sequence numbers make splicing/replay (connection hijacking)
// detectable.  This is the paper's pre-TLS stand-in; the handshake shape
// matches what §4 describes rather than the full TLS 1.0 state machine.
#pragma once

#include <cstdint>

#include "crypto/hash.hpp"
#include "crypto/rsa.hpp"

namespace snipe::crypto {

class Session {
 public:
  /// Initiator side: generates a session key and the hello blob to send.
  /// The hello is bound to the responder's key — only they can open it.
  static Result<std::pair<Session, Bytes>> initiate(const PublicKey& responder, Rng& rng);

  /// Responder side: opens a hello produced by `initiate`.
  static Result<Session> accept(const PrivateKey& own_key, const Bytes& hello);

  /// Wraps a payload for sending: appends sequence number + MAC.
  Bytes seal(const Bytes& payload);

  /// Verifies and unwraps a received message.  Fails with Errc::corrupt on
  /// a bad MAC and Errc::permission_denied on a sequence rollback/replay —
  /// the "connection hijacking" detections of §4.
  Result<Bytes> open(const Bytes& sealed);

  std::uint64_t sent() const { return send_seq_; }
  std::uint64_t received() const { return recv_seq_; }

 private:
  Session(Bytes key, bool initiator) : key_(std::move(key)), initiator_(initiator) {}
  Digest256 mac(bool from_initiator, std::uint64_t seq, const Bytes& payload) const;

  Bytes key_;
  bool initiator_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
};

}  // namespace snipe::crypto
