#include "crypto/hash.hpp"

#include <cstring>

namespace snipe::crypto {

namespace {

std::uint32_t rotl32(std::uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }
std::uint32_t rotr32(std::uint32_t x, int k) { return (x >> k) | (x << (32 - k)); }

std::uint32_t load_le32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | std::uint32_t{p[1]} << 8 | std::uint32_t{p[2]} << 16 |
         std::uint32_t{p[3]} << 24;
}

std::uint32_t load_be32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} << 24 | std::uint32_t{p[1]} << 16 | std::uint32_t{p[2]} << 8 |
         std::uint32_t{p[3]};
}

void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

// MD5 per-round constants (RFC 1321 §3.4): T[i] = floor(2^32 * |sin(i+1)|).
constexpr std::uint32_t kMd5T[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
    0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
    0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
    0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
    0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
    0xeb86d391};

constexpr int kMd5Shift[64] = {7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
                               5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
                               4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
                               6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// SHA-256 round constants (FIPS 180-4 §4.2.2).
constexpr std::uint32_t kShaK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

}  // namespace

Md5::Md5() {
  state_[0] = 0x67452301;
  state_[1] = 0xefcdab89;
  state_[2] = 0x98badcfe;
  state_[3] = 0x10325476;
}

void Md5::process_block(const std::uint8_t* block) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) m[i] = load_le32(block + i * 4);
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + rotl32(a + f + kMd5T[i] + m[g], kMd5Shift[i]);
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::update(const std::uint8_t* data, std::size_t len) {
  total_ += len;
  while (len > 0) {
    std::size_t take = std::min(len, sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, data, take);
    buffered_ += take;
    data += take;
    len -= take;
    if (buffered_ == sizeof(buffer_)) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
}

Digest128 Md5::finish() {
  std::uint64_t bit_len = total_ * 8;
  const std::uint8_t one = 0x80;
  update(&one, 1);
  const std::uint8_t zero = 0;
  while (buffered_ != 56) update(&zero, 1);
  std::uint8_t len_le[8];
  for (int i = 0; i < 8; ++i) len_le[i] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  update(len_le, 8);
  Digest128 out;
  for (int i = 0; i < 4; ++i) store_le32(out.data() + i * 4, state_[i]);
  return out;
}

Sha256::Sha256() {
  static constexpr std::uint32_t init[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                                            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  std::memcpy(state_, init, sizeof(state_));
}

void Sha256::process_block(const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + i * 4);
  for (int i = 16; i < 64; ++i) {
    std::uint32_t s0 = rotr32(w[i - 15], 7) ^ rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3);
    std::uint32_t s1 = rotr32(w[i - 2], 17) ^ rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    std::uint32_t s1 = rotr32(e, 6) ^ rotr32(e, 11) ^ rotr32(e, 25);
    std::uint32_t ch = (e & f) ^ (~e & g);
    std::uint32_t t1 = h + s1 + ch + kShaK[i] + w[i];
    std::uint32_t s0 = rotr32(a, 2) ^ rotr32(a, 13) ^ rotr32(a, 22);
    std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(const std::uint8_t* data, std::size_t len) {
  total_ += len;
  while (len > 0) {
    std::size_t take = std::min(len, sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, data, take);
    buffered_ += take;
    data += take;
    len -= take;
    if (buffered_ == sizeof(buffer_)) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
}

Digest256 Sha256::finish() {
  std::uint64_t bit_len = total_ * 8;
  const std::uint8_t one = 0x80;
  update(&one, 1);
  const std::uint8_t zero = 0;
  while (buffered_ != 56) update(&zero, 1);
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) len_be[i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  update(len_be, 8);
  Digest256 out;
  for (int i = 0; i < 8; ++i) store_be32(out.data() + i * 4, state_[i]);
  return out;
}

Digest128 md5(const Bytes& data) {
  Md5 h;
  h.update(data);
  return h.finish();
}

Digest128 md5(const std::string& data) {
  Md5 h;
  h.update(data);
  return h.finish();
}

Digest256 sha256(const Bytes& data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

Digest256 sha256(const std::string& data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

Digest256 hmac_sha256(const Bytes& key, const Bytes& message) {
  Bytes k = key;
  if (k.size() > 64) {
    auto d = sha256(k);
    k.assign(d.begin(), d.end());
  }
  k.resize(64, 0);
  Bytes ipad(64), opad(64);
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  auto inner_digest = inner.finish();
  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finish();
}

}  // namespace snipe::crypto
