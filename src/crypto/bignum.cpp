#include "crypto/bignum.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace snipe::crypto {

namespace {
int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

BigUInt::BigUInt(std::uint64_t v) {
  if (v) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void BigUInt::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUInt BigUInt::from_hex(const std::string& hex) {
  BigUInt out;
  for (char c : hex) {
    int v = hex_value(c);
    if (v < 0) throw std::invalid_argument("bad hex digit in bignum");
    // out = out * 16 + v
    std::uint64_t carry = static_cast<std::uint64_t>(v);
    for (auto& limb : out.limbs_) {
      std::uint64_t cur = (std::uint64_t{limb} << 4) | carry;
      limb = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  }
  out.normalize();
  return out;
}

std::string BigUInt::to_hex() const {
  if (is_zero()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4)
      out.push_back(digits[(limbs_[i] >> shift) & 0xf]);
  }
  auto first = out.find_first_not_of('0');
  return out.substr(first);
}

BigUInt BigUInt::from_bytes(const std::vector<std::uint8_t>& be) {
  BigUInt out;
  std::size_t n = be.size();
  out.limbs_.resize((n + 3) / 4, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t byte_index = n - 1 - i;  // little-endian byte position
    out.limbs_[i / 4] |= std::uint32_t{be[byte_index]} << (8 * (i % 4));
  }
  out.normalize();
  return out;
}

std::vector<std::uint8_t> BigUInt::to_bytes() const {
  std::vector<std::uint8_t> out;
  if (is_zero()) return out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    out.push_back(static_cast<std::uint8_t>(limbs_[i] >> 24));
    out.push_back(static_cast<std::uint8_t>(limbs_[i] >> 16));
    out.push_back(static_cast<std::uint8_t>(limbs_[i] >> 8));
    out.push_back(static_cast<std::uint8_t>(limbs_[i]));
  }
  auto first = std::find_if(out.begin(), out.end(), [](std::uint8_t b) { return b != 0; });
  out.erase(out.begin(), first);
  return out;
}

std::size_t BigUInt::bit_length() const {
  if (is_zero()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUInt::bit(std::size_t i) const {
  std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

int BigUInt::compare(const BigUInt& a, const BigUInt& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigUInt BigUInt::add(const BigUInt& a, const BigUInt& b) {
  BigUInt out;
  std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigUInt BigUInt::sub(const BigUInt& a, const BigUInt& b) {
  assert(compare(a, b) >= 0 && "BigUInt::sub requires a >= b");
  BigUInt out;
  out.limbs_.resize(a.limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a.limbs_[i]) - borrow -
                        (i < b.limbs_.size() ? b.limbs_[i] : 0);
    if (diff < 0) {
      diff += std::int64_t{1} << 32;
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.normalize();
  return out;
}

BigUInt BigUInt::mul(const BigUInt& a, const BigUInt& b) {
  if (a.is_zero() || b.is_zero()) return BigUInt();
  BigUInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      std::uint64_t cur = std::uint64_t{a.limbs_[i]} * b.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    out.limbs_[i + b.limbs_.size()] = static_cast<std::uint32_t>(carry);
  }
  out.normalize();
  return out;
}

BigUInt BigUInt::shifted_left(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    BigUInt out = *this;
    return out;
  }
  std::size_t limb_shift = bits / 32, bit_shift = bits % 32;
  BigUInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift)
      out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(
          std::uint64_t{limbs_[i]} >> (32 - bit_shift));
  }
  out.normalize();
  return out;
}

BigUInt BigUInt::shifted_right(std::size_t bits) const {
  std::size_t limb_shift = bits / 32, bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigUInt();
  BigUInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size())
      out.limbs_[i] |= static_cast<std::uint32_t>(std::uint64_t{limbs_[i + limb_shift + 1]}
                                                  << (32 - bit_shift));
  }
  out.normalize();
  return out;
}

void BigUInt::divmod(const BigUInt& a, const BigUInt& b, BigUInt& q, BigUInt& r) {
  assert(!b.is_zero() && "division by zero");
  if (compare(a, b) < 0) {
    q = BigUInt();
    r = a;
    return;
  }
  // Binary long division: shift the divisor up to align with the dividend's
  // top bit, then subtract down.  O(bits * limbs) — fine at RSA test sizes.
  std::size_t shift = a.bit_length() - b.bit_length();
  BigUInt divisor = b.shifted_left(shift);
  BigUInt quotient;
  quotient.limbs_.assign((shift / 32) + 1, 0);
  BigUInt rem = a;
  for (std::size_t i = shift + 1; i-- > 0;) {
    if (compare(rem, divisor) >= 0) {
      rem = sub(rem, divisor);
      quotient.limbs_[i / 32] |= std::uint32_t{1} << (i % 32);
    }
    divisor = divisor.shifted_right(1);
  }
  quotient.normalize();
  q = std::move(quotient);
  r = std::move(rem);
}

BigUInt BigUInt::mod(const BigUInt& a, const BigUInt& m) {
  BigUInt q, r;
  divmod(a, m, q, r);
  return r;
}

BigUInt BigUInt::mod_pow(const BigUInt& base, const BigUInt& exp, const BigUInt& m) {
  assert(!m.is_zero());
  if (m == BigUInt(1)) return BigUInt();
  BigUInt result(1);
  BigUInt b = mod(base, m);
  std::size_t bits = exp.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = mod(mul(result, b), m);
    b = mod(mul(b, b), m);
  }
  return result;
}

BigUInt BigUInt::gcd(BigUInt a, BigUInt b) {
  while (!b.is_zero()) {
    BigUInt r = mod(a, b);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigUInt BigUInt::mod_inverse(const BigUInt& a, const BigUInt& m) {
  // Extended Euclid, tracking only the coefficient of `a`.  Coefficients can
  // go negative, so keep them as (magnitude, sign) pairs.
  BigUInt r0 = m, r1 = mod(a, m);
  BigUInt t0, t1(1);
  bool t0_neg = false, t1_neg = false;
  while (!r1.is_zero()) {
    BigUInt q, r2;
    divmod(r0, r1, q, r2);
    // t2 = t0 - q * t1  (signed)
    BigUInt qt1 = mul(q, t1);
    BigUInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // Same sign: subtraction may flip the sign.
      if (compare(t0, qt1) >= 0) {
        t2 = sub(t0, qt1);
        t2_neg = t0_neg;
      } else {
        t2 = sub(qt1, t0);
        t2_neg = !t0_neg;
      }
    } else {
      t2 = add(t0, qt1);
      t2_neg = t0_neg;
    }
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
    r0 = std::move(r1);
    r1 = std::move(r2);
  }
  if (r0 != BigUInt(1)) return BigUInt();  // not invertible
  if (t0_neg) return sub(m, mod(t0, m));
  return mod(t0, m);
}

BigUInt BigUInt::random_bits(Rng& rng, std::size_t bits) {
  assert(bits >= 2);
  BigUInt out;
  out.limbs_.assign((bits + 31) / 32, 0);
  for (auto& limb : out.limbs_) limb = static_cast<std::uint32_t>(rng.next_u64());
  std::size_t top_bit = (bits - 1) % 32;
  out.limbs_.back() &= (top_bit == 31) ? ~std::uint32_t{0}
                                       : ((std::uint32_t{1} << (top_bit + 1)) - 1);
  out.limbs_.back() |= std::uint32_t{1} << top_bit;
  out.normalize();
  return out;
}

bool BigUInt::is_probable_prime(const BigUInt& n, Rng& rng, int rounds) {
  if (n < BigUInt(2)) return false;
  static const std::uint64_t small_primes[] = {2,  3,  5,  7,  11, 13, 17, 19,
                                               23, 29, 31, 37, 41, 43, 47};
  for (std::uint64_t p : small_primes) {
    BigUInt bp(p);
    if (n == bp) return true;
    if (mod(n, bp).is_zero()) return false;
  }
  // Write n-1 = d * 2^s with d odd.
  BigUInt n_minus_1 = sub(n, BigUInt(1));
  BigUInt d = n_minus_1;
  std::size_t s = 0;
  while (!d.is_odd()) {
    d = d.shifted_right(1);
    ++s;
  }
  for (int round = 0; round < rounds; ++round) {
    // Random base in [2, n-2]: draw bit_length-1 bits and reduce.
    BigUInt a = mod(random_bits(rng, n.bit_length()), sub(n, BigUInt(3)));
    a = add(a, BigUInt(2));
    BigUInt x = mod_pow(a, d, n);
    if (x == BigUInt(1) || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 1; i < s; ++i) {
      x = mod(mul(x, x), n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigUInt BigUInt::random_prime(Rng& rng, std::size_t bits, int rounds) {
  while (true) {
    BigUInt candidate = random_bits(rng, bits);
    if (!candidate.is_odd()) candidate = add(candidate, BigUInt(1));
    if (is_probable_prime(candidate, rng, rounds)) return candidate;
  }
}

std::uint64_t BigUInt::to_u64() const {
  std::uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= std::uint64_t{limbs_[1]} << 32;
  return v;
}

}  // namespace snipe::crypto
