#include "crypto/session.hpp"

namespace snipe::crypto {

namespace {
constexpr std::size_t kSessionKeyBytes = 32;
}

Result<std::pair<Session, Bytes>> Session::initiate(const PublicKey& responder, Rng& rng) {
  Bytes key(kSessionKeyBytes);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
  auto hello = encrypt(responder, key, rng);
  if (!hello) return hello.error();
  return std::make_pair(Session(std::move(key), /*initiator=*/true),
                        std::move(hello).take());
}

Result<Session> Session::accept(const PrivateKey& own_key, const Bytes& hello) {
  auto key = decrypt(own_key, hello);
  if (!key) return key.error();
  if (key.value().size() != kSessionKeyBytes)
    return Error{Errc::corrupt, "unexpected session key size"};
  return Session(std::move(key).take(), /*initiator=*/false);
}

Digest256 Session::mac(bool from_initiator, std::uint64_t seq, const Bytes& payload) const {
  ByteWriter w;
  w.u8(from_initiator ? 1 : 0);
  w.u64(seq);
  w.blob(payload);
  return hmac_sha256(key_, w.bytes());
}

Bytes Session::seal(const Bytes& payload) {
  std::uint64_t seq = ++send_seq_;
  auto digest = mac(initiator_, seq, payload);
  ByteWriter w;
  w.u64(seq);
  w.blob(payload);
  w.raw(digest.data(), digest.size());
  return std::move(w).take();
}

Result<Bytes> Session::open(const Bytes& sealed) {
  ByteReader r(sealed);
  auto seq = r.u64();
  if (!seq) return seq.error();
  auto payload = r.blob();
  if (!payload) return payload.error();
  auto received_mac = r.raw(32);
  if (!received_mac) return received_mac.error();

  // MAC first: an attacker must not learn whether the sequence was right.
  auto expected = mac(!initiator_, seq.value(), payload.value());
  if (!std::equal(expected.begin(), expected.end(), received_mac.value().begin()))
    return Error{Errc::corrupt, "session MAC mismatch"};
  if (seq.value() <= recv_seq_)
    return Error{Errc::permission_denied, "session replay or rollback detected"};
  recv_seq_ = seq.value();
  return std::move(payload).take();
}

}  // namespace snipe::crypto
