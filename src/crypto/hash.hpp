// Cryptographic hash functions, implemented from scratch.
//
// The paper authenticates resources "by the use of cryptographic hash
// functions (such as MD5 or SHA)" (§2.1) and the 1998 RC servers used
// "MD5 hashed shared secrets" (§6).  We provide both MD5 (RFC 1321) and
// SHA-256 (FIPS 180-4); new code should use SHA-256, MD5 exists for
// fidelity to the paper's RC-server authenticator.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace snipe::crypto {

using Digest128 = std::array<std::uint8_t, 16>;
using Digest256 = std::array<std::uint8_t, 32>;

/// Incremental MD5 (RFC 1321).
class Md5 {
 public:
  Md5();
  void update(const std::uint8_t* data, std::size_t len);
  void update(const Bytes& data) { update(data.data(), data.size()); }
  void update(const std::string& data) {
    update(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  }
  /// Finishes the hash; the object must not be updated afterwards.
  Digest128 finish();

 private:
  void process_block(const std::uint8_t* block);
  std::uint32_t state_[4];
  std::uint64_t total_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
};

/// Incremental SHA-256 (FIPS 180-4).
class Sha256 {
 public:
  Sha256();
  void update(const std::uint8_t* data, std::size_t len);
  void update(const Bytes& data) { update(data.data(), data.size()); }
  void update(const std::string& data) {
    update(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  }
  /// Finishes the hash; the object must not be updated afterwards.
  Digest256 finish();

 private:
  void process_block(const std::uint8_t* block);
  std::uint32_t state_[8];
  std::uint64_t total_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
};

/// One-shot helpers.
Digest128 md5(const Bytes& data);
Digest128 md5(const std::string& data);
Digest256 sha256(const Bytes& data);
Digest256 sha256(const std::string& data);

/// Lowercase hex of a digest.
template <std::size_t N>
std::string digest_hex(const std::array<std::uint8_t, N>& d) {
  return hex_encode(d.data(), d.size());
}

/// HMAC-SHA256 (RFC 2104); used for authenticated RM<->resource channels
/// (§4's "authenticated connection ... without signatures" optimization).
Digest256 hmac_sha256(const Bytes& key, const Bytes& message);

}  // namespace snipe::crypto
