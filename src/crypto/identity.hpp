// Principals, key certificates, and trust policy (paper §4).
//
// "Each principal's public key is stored as an attribute of that
//  principal's RC metadata.  A signed subset of RC metadata serves as a key
//  certificate.  Before a client will consider a signed statement to be
//  valid, the key certificate must itself be signed by a party whom that
//  client trusts for that particular purpose."
//
// Certificate here is exactly that: a (subject URI, subject key, purposes)
// triple signed by an issuer.  TrustStore captures the per-purpose trust
// decisions of a client or service.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "crypto/rsa.hpp"
#include "util/result.hpp"

namespace snipe::crypto {

/// The purposes a certificate can be trusted for; a party may be trusted
/// for some purposes and not others (§4).
enum class TrustPurpose {
  identify_host,     ///< attest that a key belongs to a host
  identify_user,     ///< attest that a key belongs to a user
  grant_resources,   ///< authorize use of managed resources (RM role)
  sign_mobile_code,  ///< vouch for mobile code integrity (§3.6)
};

const char* trust_purpose_name(TrustPurpose p);

/// A principal: a named key holder (user, host, RM, code signer).
struct Principal {
  std::string uri;  ///< the principal's distinguished URI
  KeyPair keys;

  static Principal create(const std::string& uri, Rng& rng, std::size_t bits = 512);
};

/// A key certificate: a signed binding of subject URI -> public key for a
/// set of purposes.  The canonical encoding (what gets signed) covers every
/// field except the signature.
struct Certificate {
  std::string subject;  ///< subject's URI
  PublicKey subject_key;
  std::vector<TrustPurpose> purposes;
  std::string issuer;  ///< issuer's URI
  Bytes signature;

  /// The byte string the issuer signs.
  Bytes canonical_bytes() const;
  /// Issues a certificate for `subject` signed by `issuer`.
  static Certificate issue(const Principal& issuer, const std::string& subject,
                           const PublicKey& subject_key,
                           std::vector<TrustPurpose> purposes);
  /// Verifies the signature against the claimed issuer's key.
  bool verify_with(const PublicKey& issuer_key) const;
  bool covers(TrustPurpose p) const;

  Bytes encode() const;
  static Result<Certificate> decode(const Bytes& data);
};

/// A generic signed statement: arbitrary payload + signer URI + signature.
/// Used for §4's user grants and host attestations, and for signed mobile
/// code descriptions (§3.1).
struct SignedStatement {
  Bytes payload;
  std::string signer;
  Bytes signature;

  static SignedStatement make(const Principal& signer, Bytes payload);
  bool verify_with(const PublicKey& signer_key) const;

  Bytes encode() const;
  static Result<SignedStatement> decode(const Bytes& data);
};

/// Per-client trust policy: which (issuer URI, key) pairs are trusted for
/// which purposes, plus certificate-chain evaluation of depth one (issuer
/// signs subject), which is all §4's flows need.
class TrustStore {
 public:
  /// Trusts `issuer_key` (held by `issuer_uri`) for `purpose`.
  void trust(const std::string& issuer_uri, const PublicKey& issuer_key, TrustPurpose purpose);

  /// True if the issuer is trusted for the purpose.
  bool is_trusted(const std::string& issuer_uri, TrustPurpose purpose) const;

  /// Full §4 check: the certificate must carry the purpose, its issuer must
  /// be trusted for that purpose, and the signature must verify with the
  /// trusted issuer key (not a key supplied by the presenter).
  Result<void> validate(const Certificate& cert, TrustPurpose purpose) const;

  /// Validates a signed statement: finds a certificate binding the signer's
  /// key, validates it for `identity_purpose`, then checks the signature.
  Result<void> validate_statement(const SignedStatement& stmt, const Certificate& signer_cert,
                                  TrustPurpose identity_purpose) const;

  /// Validates a statement signed *directly* by a trusted issuer (no
  /// certificate chain) — the common case for RM-issued resource
  /// authorizations, since "a resource manager must be trusted by the
  /// resources that it manages" (§4).
  Result<void> validate_direct(const SignedStatement& stmt, TrustPurpose purpose) const;

 private:
  struct IssuerKey {
    PublicKey key;
    std::set<TrustPurpose> purposes;
  };
  std::map<std::string, IssuerKey> issuers_;
};

}  // namespace snipe::crypto
