#include "crypto/identity.hpp"

namespace snipe::crypto {

const char* trust_purpose_name(TrustPurpose p) {
  switch (p) {
    case TrustPurpose::identify_host: return "identify_host";
    case TrustPurpose::identify_user: return "identify_user";
    case TrustPurpose::grant_resources: return "grant_resources";
    case TrustPurpose::sign_mobile_code: return "sign_mobile_code";
  }
  return "unknown";
}

Principal Principal::create(const std::string& uri, Rng& rng, std::size_t bits) {
  return Principal{uri, generate_keypair(rng, bits)};
}

Bytes Certificate::canonical_bytes() const {
  ByteWriter w;
  w.str(subject);
  w.blob(subject_key.encode());
  w.u32(static_cast<std::uint32_t>(purposes.size()));
  for (auto p : purposes) w.u8(static_cast<std::uint8_t>(p));
  w.str(issuer);
  return std::move(w).take();
}

Certificate Certificate::issue(const Principal& issuer, const std::string& subject,
                               const PublicKey& subject_key,
                               std::vector<TrustPurpose> purposes) {
  Certificate cert;
  cert.subject = subject;
  cert.subject_key = subject_key;
  cert.purposes = std::move(purposes);
  cert.issuer = issuer.uri;
  cert.signature = sign(issuer.keys.priv, cert.canonical_bytes());
  return cert;
}

bool Certificate::verify_with(const PublicKey& issuer_key) const {
  return verify(issuer_key, canonical_bytes(), signature);
}

bool Certificate::covers(TrustPurpose p) const {
  for (auto purpose : purposes)
    if (purpose == p) return true;
  return false;
}

Bytes Certificate::encode() const {
  ByteWriter w;
  w.blob(canonical_bytes());
  w.blob(signature);
  return std::move(w).take();
}

Result<Certificate> Certificate::decode(const Bytes& data) {
  ByteReader outer(data);
  auto canonical = outer.blob();
  if (!canonical) return canonical.error();
  auto signature = outer.blob();
  if (!signature) return signature.error();

  ByteReader r(canonical.value());
  Certificate cert;
  auto subject = r.str();
  if (!subject) return subject.error();
  cert.subject = subject.value();
  auto key_bytes = r.blob();
  if (!key_bytes) return key_bytes.error();
  auto key = PublicKey::decode(key_bytes.value());
  if (!key) return key.error();
  cert.subject_key = key.value();
  auto count = r.u32();
  if (!count) return count.error();
  if (count.value() > 16) return Error{Errc::corrupt, "too many purposes"};
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto p = r.u8();
    if (!p) return p.error();
    cert.purposes.push_back(static_cast<TrustPurpose>(p.value()));
  }
  auto issuer = r.str();
  if (!issuer) return issuer.error();
  cert.issuer = issuer.value();
  cert.signature = signature.value();
  return cert;
}

SignedStatement SignedStatement::make(const Principal& signer, Bytes payload) {
  SignedStatement stmt;
  stmt.payload = std::move(payload);
  stmt.signer = signer.uri;
  stmt.signature = sign(signer.keys.priv, stmt.payload);
  return stmt;
}

bool SignedStatement::verify_with(const PublicKey& signer_key) const {
  return verify(signer_key, payload, signature);
}

Bytes SignedStatement::encode() const {
  ByteWriter w;
  w.blob(payload);
  w.str(signer);
  w.blob(signature);
  return std::move(w).take();
}

Result<SignedStatement> SignedStatement::decode(const Bytes& data) {
  ByteReader r(data);
  SignedStatement stmt;
  auto payload = r.blob();
  if (!payload) return payload.error();
  stmt.payload = payload.value();
  auto signer = r.str();
  if (!signer) return signer.error();
  stmt.signer = signer.value();
  auto signature = r.blob();
  if (!signature) return signature.error();
  stmt.signature = signature.value();
  return stmt;
}

Result<void> TrustStore::validate_direct(const SignedStatement& stmt,
                                         TrustPurpose purpose) const {
  auto it = issuers_.find(stmt.signer);
  if (it == issuers_.end() || it->second.purposes.count(purpose) == 0)
    return Error{Errc::permission_denied,
                 "signer " + stmt.signer + " not trusted for " + trust_purpose_name(purpose)};
  if (!stmt.verify_with(it->second.key))
    return Error{Errc::corrupt, "bad signature on statement from " + stmt.signer};
  return ok_result();
}

void TrustStore::trust(const std::string& issuer_uri, const PublicKey& issuer_key,
                       TrustPurpose purpose) {
  auto& entry = issuers_[issuer_uri];
  entry.key = issuer_key;
  entry.purposes.insert(purpose);
}

bool TrustStore::is_trusted(const std::string& issuer_uri, TrustPurpose purpose) const {
  auto it = issuers_.find(issuer_uri);
  return it != issuers_.end() && it->second.purposes.count(purpose) > 0;
}

Result<void> TrustStore::validate(const Certificate& cert, TrustPurpose purpose) const {
  if (!cert.covers(purpose))
    return Error{Errc::permission_denied,
                 "certificate for " + cert.subject + " does not cover " +
                     trust_purpose_name(purpose)};
  auto it = issuers_.find(cert.issuer);
  if (it == issuers_.end() || it->second.purposes.count(purpose) == 0)
    return Error{Errc::permission_denied,
                 "issuer " + cert.issuer + " not trusted for " + trust_purpose_name(purpose)};
  if (!cert.verify_with(it->second.key))
    return Error{Errc::corrupt, "bad signature on certificate for " + cert.subject};
  return ok_result();
}

Result<void> TrustStore::validate_statement(const SignedStatement& stmt,
                                            const Certificate& signer_cert,
                                            TrustPurpose identity_purpose) const {
  if (signer_cert.subject != stmt.signer)
    return Error{Errc::permission_denied, "certificate subject does not match signer"};
  if (auto cert_ok = validate(signer_cert, identity_purpose); !cert_ok) return cert_ok;
  if (!stmt.verify_with(signer_cert.subject_key))
    return Error{Errc::corrupt, "bad signature on statement from " + stmt.signer};
  return ok_result();
}

}  // namespace snipe::crypto
