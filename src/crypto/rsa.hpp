// RSA signatures over SHA-256, from scratch.
//
// SNIPE's §4 trust flows sign three kinds of statement: key certificates
// (signed RC metadata subsets), user grants, and host attestations.  All
// use this primitive.  Padding is the deterministic EMSA-PKCS1-v1_5 shape
// (00 01 FF..FF 00 || digest) without the ASN.1 DigestInfo wrapper — the
// verifier reconstructs the same encoding, so interop with external tools
// is not a goal and the omission is safe here.
//
// Key sizes default to 512 bits: large enough to exercise every code path,
// small enough that keygen inside unit tests stays fast.  This is a
// simulation fidelity trade-off, not a recommendation.
#pragma once

#include <string>

#include "crypto/bignum.hpp"
#include "crypto/hash.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace snipe::crypto {

/// Public half of a key pair; safe to publish as RC metadata (§3.1).
struct PublicKey {
  BigUInt n;  ///< modulus
  BigUInt e;  ///< public exponent (65537)

  bool empty() const { return n.is_zero(); }
  /// Stable serialization for hashing, storage and wire transfer.
  Bytes encode() const;
  static Result<PublicKey> decode(const Bytes& data);
  /// SHA-256 of the encoding — the key's fingerprint, used as a compact
  /// identity in metadata.
  std::string fingerprint() const;
  friend bool operator==(const PublicKey&, const PublicKey&);
};

/// Private half; never serialized by SNIPE components ("a host's public key
/// is never transmitted to any other host" — §4 says even exposure of the
/// *public* key is minimized; the private key certainly never leaves).
struct PrivateKey {
  BigUInt n;
  BigUInt d;
};

struct KeyPair {
  PublicKey pub;
  PrivateKey priv;
};

/// Generates an RSA key pair with a `bits`-bit modulus (e = 65537).
KeyPair generate_keypair(Rng& rng, std::size_t bits = 512);

/// Signs SHA-256(message).
Bytes sign(const PrivateKey& key, const Bytes& message);
Bytes sign(const PrivateKey& key, const std::string& message);

/// Verifies a signature made by `sign`.
bool verify(const PublicKey& key, const Bytes& message, const Bytes& signature);
bool verify(const PublicKey& key, const std::string& message, const Bytes& signature);

/// Public-key encryption of a short message (<= modulus bytes - 11), with
/// RSAES-PKCS1-v1_5 style random padding.  SNIPE uses this only to ship
/// session keys for the §4 authenticated-channel optimization; bulk data
/// is never RSA-encrypted.
Result<Bytes> encrypt(const PublicKey& key, const Bytes& message, Rng& rng);
Result<Bytes> decrypt(const PrivateKey& key, const Bytes& ciphertext);

}  // namespace snipe::crypto
