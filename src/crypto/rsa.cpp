#include "crypto/rsa.hpp"

namespace snipe::crypto {

Bytes PublicKey::encode() const {
  ByteWriter w;
  auto n_bytes = n.to_bytes();
  auto e_bytes = e.to_bytes();
  w.blob(Bytes(n_bytes.begin(), n_bytes.end()));
  w.blob(Bytes(e_bytes.begin(), e_bytes.end()));
  return std::move(w).take();
}

Result<PublicKey> PublicKey::decode(const Bytes& data) {
  ByteReader r(data);
  auto n_bytes = r.blob();
  if (!n_bytes) return n_bytes.error();
  auto e_bytes = r.blob();
  if (!e_bytes) return e_bytes.error();
  PublicKey key;
  key.n = BigUInt::from_bytes(n_bytes.value());
  key.e = BigUInt::from_bytes(e_bytes.value());
  if (key.n.is_zero() || key.e.is_zero())
    return Error{Errc::corrupt, "zero RSA parameter"};
  return key;
}

std::string PublicKey::fingerprint() const {
  return digest_hex(sha256(encode())).substr(0, 16);
}

bool operator==(const PublicKey& a, const PublicKey& b) { return a.n == b.n && a.e == b.e; }

KeyPair generate_keypair(Rng& rng, std::size_t bits) {
  const BigUInt e(65537);
  while (true) {
    BigUInt p = BigUInt::random_prime(rng, bits / 2);
    BigUInt q = BigUInt::random_prime(rng, bits - bits / 2);
    if (p == q) continue;
    BigUInt n = BigUInt::mul(p, q);
    BigUInt phi = BigUInt::mul(BigUInt::sub(p, BigUInt(1)), BigUInt::sub(q, BigUInt(1)));
    if (BigUInt::gcd(e, phi) != BigUInt(1)) continue;
    BigUInt d = BigUInt::mod_inverse(e, phi);
    if (d.is_zero()) continue;
    KeyPair kp;
    kp.pub = PublicKey{n, e};
    kp.priv = PrivateKey{n, d};
    return kp;
  }
}

namespace {
// EMSA-PKCS1-v1_5 shape: 00 01 FF..FF 00 || SHA-256 digest, sized to the
// modulus byte length.
Bytes encode_digest(const Digest256& digest, std::size_t modulus_bytes) {
  Bytes em(modulus_bytes, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  em[modulus_bytes - digest.size() - 1] = 0x00;
  std::copy(digest.begin(), digest.end(), em.end() - digest.size());
  return em;
}
}  // namespace

Bytes sign(const PrivateKey& key, const Bytes& message) {
  auto digest = sha256(message);
  std::size_t modulus_bytes = (key.n.bit_length() + 7) / 8;
  Bytes em = encode_digest(digest, modulus_bytes);
  BigUInt m = BigUInt::from_bytes(std::vector<std::uint8_t>(em.begin(), em.end()));
  BigUInt s = BigUInt::mod_pow(m, key.d, key.n);
  auto sig = s.to_bytes();
  // Left-pad to the modulus size so signatures are fixed-width.
  Bytes out(modulus_bytes - sig.size(), 0);
  out.insert(out.end(), sig.begin(), sig.end());
  return out;
}

Bytes sign(const PrivateKey& key, const std::string& message) {
  return sign(key, to_bytes(message));
}

bool verify(const PublicKey& key, const Bytes& message, const Bytes& signature) {
  if (key.empty() || signature.empty()) return false;
  std::size_t modulus_bytes = (key.n.bit_length() + 7) / 8;
  if (signature.size() != modulus_bytes) return false;
  BigUInt s = BigUInt::from_bytes(std::vector<std::uint8_t>(signature.begin(), signature.end()));
  if (s >= key.n) return false;
  BigUInt m = BigUInt::mod_pow(s, key.e, key.n);
  auto em_bytes = m.to_bytes();
  Bytes em(modulus_bytes - em_bytes.size(), 0);
  em.insert(em.end(), em_bytes.begin(), em_bytes.end());
  auto digest = sha256(message);
  Bytes expected = encode_digest(digest, modulus_bytes);
  return em == expected;
}

bool verify(const PublicKey& key, const std::string& message, const Bytes& signature) {
  return verify(key, to_bytes(message), signature);
}

Result<Bytes> encrypt(const PublicKey& key, const Bytes& message, Rng& rng) {
  std::size_t modulus_bytes = (key.n.bit_length() + 7) / 8;
  if (modulus_bytes < 11 || message.size() > modulus_bytes - 11)
    return Error{Errc::invalid_argument,
                 "message too long for " + std::to_string(modulus_bytes * 8) + "-bit RSA"};
  // EME-PKCS1-v1_5: 00 02 <nonzero random> 00 <message>.
  Bytes em(modulus_bytes);
  em[0] = 0x00;
  em[1] = 0x02;
  std::size_t pad_len = modulus_bytes - message.size() - 3;
  for (std::size_t i = 0; i < pad_len; ++i) {
    std::uint8_t b;
    do {
      b = static_cast<std::uint8_t>(rng.next_u64());
    } while (b == 0);
    em[2 + i] = b;
  }
  em[2 + pad_len] = 0x00;
  std::copy(message.begin(), message.end(), em.begin() + 3 + pad_len);
  BigUInt m = BigUInt::from_bytes(std::vector<std::uint8_t>(em.begin(), em.end()));
  BigUInt c = BigUInt::mod_pow(m, key.e, key.n);
  auto cipher = c.to_bytes();
  Bytes out(modulus_bytes - cipher.size(), 0);
  out.insert(out.end(), cipher.begin(), cipher.end());
  return out;
}

Result<Bytes> decrypt(const PrivateKey& key, const Bytes& ciphertext) {
  std::size_t modulus_bytes = (key.n.bit_length() + 7) / 8;
  if (ciphertext.size() != modulus_bytes)
    return Error{Errc::corrupt, "ciphertext size mismatch"};
  BigUInt c =
      BigUInt::from_bytes(std::vector<std::uint8_t>(ciphertext.begin(), ciphertext.end()));
  if (c >= key.n) return Error{Errc::corrupt, "ciphertext out of range"};
  BigUInt m = BigUInt::mod_pow(c, key.d, key.n);
  auto em_bytes = m.to_bytes();
  Bytes em(modulus_bytes - em_bytes.size(), 0);
  em.insert(em.end(), em_bytes.begin(), em_bytes.end());
  if (em.size() < 11 || em[0] != 0x00 || em[1] != 0x02)
    return Error{Errc::corrupt, "bad encryption padding"};
  std::size_t sep = 2;
  while (sep < em.size() && em[sep] != 0x00) ++sep;
  if (sep == em.size() || sep < 10) return Error{Errc::corrupt, "bad encryption padding"};
  return Bytes(em.begin() + sep + 1, em.end());
}

}  // namespace snipe::crypto
