// Arbitrary-precision unsigned integers, sized for RSA at test scale.
//
// The SNIPE security model (§4) rests on public-key signatures; rather than
// stub them we implement RSA over this bignum type.  Limbs are 32-bit,
// little-endian, always normalized (no high zero limbs).  Schoolbook
// multiplication and binary long division are plenty for the 256–1024 bit
// moduli the tests and benches use.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace snipe::crypto {

class BigUInt {
 public:
  BigUInt() = default;
  explicit BigUInt(std::uint64_t v);

  /// Parses lowercase/uppercase hex (no 0x prefix); empty string is zero.
  static BigUInt from_hex(const std::string& hex);
  /// Big-endian byte import/export (leading zeros stripped on import).
  static BigUInt from_bytes(const std::vector<std::uint8_t>& be);
  std::vector<std::uint8_t> to_bytes() const;
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;

  /// Three-way comparison: -1, 0, +1.
  static int compare(const BigUInt& a, const BigUInt& b);
  friend bool operator==(const BigUInt& a, const BigUInt& b) { return compare(a, b) == 0; }
  friend bool operator!=(const BigUInt& a, const BigUInt& b) { return compare(a, b) != 0; }
  friend bool operator<(const BigUInt& a, const BigUInt& b) { return compare(a, b) < 0; }
  friend bool operator<=(const BigUInt& a, const BigUInt& b) { return compare(a, b) <= 0; }
  friend bool operator>(const BigUInt& a, const BigUInt& b) { return compare(a, b) > 0; }
  friend bool operator>=(const BigUInt& a, const BigUInt& b) { return compare(a, b) >= 0; }

  static BigUInt add(const BigUInt& a, const BigUInt& b);
  /// Requires a >= b.
  static BigUInt sub(const BigUInt& a, const BigUInt& b);
  static BigUInt mul(const BigUInt& a, const BigUInt& b);
  /// Quotient and remainder; divisor must be nonzero.
  static void divmod(const BigUInt& a, const BigUInt& b, BigUInt& q, BigUInt& r);
  static BigUInt mod(const BigUInt& a, const BigUInt& m);

  BigUInt shifted_left(std::size_t bits) const;
  BigUInt shifted_right(std::size_t bits) const;

  /// (base ^ exp) mod m, square-and-multiply.  m must be nonzero.
  static BigUInt mod_pow(const BigUInt& base, const BigUInt& exp, const BigUInt& m);

  /// Greatest common divisor.
  static BigUInt gcd(BigUInt a, BigUInt b);

  /// Multiplicative inverse of a modulo m; returns zero if none exists.
  static BigUInt mod_inverse(const BigUInt& a, const BigUInt& m);

  /// Uniform value with exactly `bits` bits (top bit set).  bits >= 2.
  static BigUInt random_bits(Rng& rng, std::size_t bits);

  /// Miller–Rabin with `rounds` random bases.
  static bool is_probable_prime(const BigUInt& n, Rng& rng, int rounds = 24);

  /// Random odd prime with exactly `bits` bits.
  static BigUInt random_prime(Rng& rng, std::size_t bits, int rounds = 24);

  std::uint64_t to_u64() const;

 private:
  void normalize();
  std::vector<std::uint32_t> limbs_;
};

}  // namespace snipe::crypto
