// Task model shared by the SNIPE daemon, resource managers and client
// library.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace snipe::daemon {

/// Lifecycle states the daemon reports to RC and to interested parties
/// ("monitoring those tasks for state changes ... informing interested
/// parties of changes to the status of those tasks (exit, suspend,
/// checkpoint)" — §3.3).
enum class TaskState : std::uint8_t {
  starting = 0,
  running = 1,
  suspended = 2,
  exited = 3,
  failed = 4,    ///< trapped / quota violation / spawn failure
  killed = 5,
  migrated = 6,  ///< checkpointed and resumed elsewhere (§5.6)
};

const char* task_state_name(TaskState s);

/// Signals a daemon can deliver to a local task (§3.3 "delivery of signals
/// to local tasks").
enum class TaskSignal : std::uint8_t {
  kill = 1,
  suspend = 2,
  resume = 3,
};

/// A request to spawn a process (§5.5): the program, its environment
/// requirements, and optionally an RM-signed authorization (§4).
struct SpawnRequest {
  /// A program name registered with the daemon, or a code LIFN
  /// ("lifn://...") to run in the playground.
  std::string program;
  /// Instance name; the daemon derives the process URN from it (a fresh
  /// name is generated when empty).
  std::string name;
  /// Initial inputs (VM input queue / native task arguments).
  std::vector<std::int64_t> args;
  /// Environment specification (§5.5): requirements the host must satisfy.
  std::string require_arch;  ///< "" = any
  int require_cpus = 0;      ///< minimum CPUs
  /// Restore-from-checkpoint: LIFN of a VM snapshot on a file server.  Set
  /// by the migration/restart machinery; empty for fresh spawns.
  std::string restore_lifn;
  /// Encoded crypto::SignedStatement authorizing this spawn, issued by a
  /// resource manager the daemon trusts (§4).  May be empty if the daemon
  /// does not require authorization.
  Bytes authorization;

  Bytes encode() const;
  static Result<SpawnRequest> decode(const Bytes& data);
};

/// What a daemon returns from a successful spawn.
struct SpawnReply {
  std::string urn;        ///< the process's distinguished URN (§5.2.3)
  std::string host;       ///< where it runs
  std::uint16_t port = 0; ///< the task's communication endpoint, 0 if none

  Bytes encode() const;
  static Result<SpawnReply> decode(const Bytes& data);
};

/// Callbacks a running task uses to tell its daemon about itself.
class TaskHandle {
 public:
  virtual ~TaskHandle() = default;
  /// The task's URN (available from construction).
  virtual const std::string& urn() const = 0;
  /// Reports normal completion.
  virtual void exited(std::int64_t code) = 0;
  /// Reports abnormal termination (trap, quota, internal error).
  virtual void failed(const std::string& why) = 0;
  /// Publishes the task's communication address in its RC metadata.
  virtual void set_comm_port(std::uint16_t port) = 0;
};

/// The daemon-side interface every managed task implements.  Native C++
/// service tasks subclass this directly; mobile code runs through the
/// playground's VmTask behind the same interface.
class ManagedTask {
 public:
  virtual ~ManagedTask() = default;
  virtual void start() = 0;
  virtual void suspend() {}
  virtual void resume() {}
  virtual void kill() = 0;
  /// Serializes enough state to resume elsewhere; tasks that cannot be
  /// checkpointed return state_error (native code without playground
  /// support — exactly the paper's situation).
  virtual Result<Bytes> checkpoint() {
    return Result<Bytes>(Errc::state_error, "task is not checkpointable");
  }
  /// Feeds an input value (used to deliver data to VM tasks).
  virtual void push_input(std::int64_t) {}
};

/// Factory for native programs registered with a daemon.
using TaskFactory =
    std::function<Result<std::unique_ptr<ManagedTask>>(const SpawnRequest&, TaskHandle&)>;

}  // namespace snipe::daemon
