#include "daemon/telemetry.hpp"

#include "obs/trace.hpp"

namespace snipe::daemon {

TelemetryExporter::TelemetryExporter(transport::RpcEndpoint& rpc, TelemetryConfig config,
                                     obs::MetricsRegistry* registry,
                                     obs::FlightRecorder* flight)
    : rpc_(rpc),
      engine_(rpc.engine()),
      config_(std::move(config)),
      builder_({rpc.host().name(), config_.period, config_.full_every,
                config_.max_flight, registry, flight}) {
  obs::MetricsRegistry& r =
      registry != nullptr ? *registry : obs::MetricsRegistry::global();
  beacons_counter_ = &r.counter("telemetry.beacons_sent");
  bytes_counter_ = &r.counter("telemetry.beacon_bytes");
}

void TelemetryExporter::start() {
  if (running_ || config_.collectors.empty() || config_.period <= 0) return;
  running_ = true;
  engine_.schedule_weak(config_.period, [this] { tick(); });
}

void TelemetryExporter::tick() {
  if (!running_) return;
  engine_.schedule_weak(config_.period, [this] { tick(); });
  // A crashed host exports nothing; the deltas keep accumulating and ride
  // the first beacon after revival (the collector sees an in-sequence
  // delta, so nothing is lost but time).
  if (!rpc_.host().up()) return;

  auto& tracer = obs::Tracer::global();
  obs::TelemetryBeacon beacon = builder_.build(tracer.now());
  Bytes wire = beacon.encode();
  for (const simnet::Address& collector : config_.collectors)
    rpc_.notify(collector, tags::kTelemetryBeacon, wire);
  ++beacons_sent_;
  beacons_counter_->inc();
  bytes_counter_->inc(wire.size() * config_.collectors.size());
  // "telemetry" is its own trace category, excluded from replay digests the
  // way "flow" is — the beacon must be observable without being part of the
  // replay contract.
  tracer.instant("telemetry", "telemetry.beacon",
                 {{"host", beacon.host},
                  {"seq", std::to_string(beacon.seq)},
                  {"bytes", std::to_string(wire.size())},
                  {"full", beacon.full ? "1" : "0"}});
}

TelemetryCollector::TelemetryCollector(transport::RpcEndpoint& rpc,
                                       obs::FleetStore::Options options)
    : rpc_(rpc), store_(options), log_("telemetry@" + rpc.host().name()) {
  rpc_.on_notify(tags::kTelemetryBeacon, [this](const simnet::Address& from,
                                                const Bytes& body) {
    auto beacon = obs::TelemetryBeacon::decode(body);
    if (!beacon) {
      ++beacons_malformed_;
      log_.warn("malformed beacon from ", from.to_string(), ": ",
                beacon.error().to_string());
      return;
    }
    ++beacons_received_;
    auto& tracer = obs::Tracer::global();
    store_.apply(beacon.value(), tracer.now());
    tracer.instant("telemetry", "telemetry.beacon_rx",
                   {{"host", beacon.value().host},
                    {"seq", std::to_string(beacon.value().seq)}});
  });
}

}  // namespace snipe::daemon
