// In-band fleet telemetry: the networked half of the telemetry plane
// (obs/fleet.hpp holds the transport-free data structures).
//
// Every SNIPE process can run a TelemetryExporter — a weak periodic timer
// that builds a delta-compressed TelemetryBeacon from its registry and
// flight recorder and publishes it as an ordinary one-way RPC notification
// to one or more collectors.  Riding the real transports is deliberate: the
// paper's daemons "monitor hosts and processes" with the same messaging
// they manage them with, and the chaos harness then exercises the telemetry
// path for free.  A TelemetryCollector serves the beacon tag and folds every
// beacon into an obs::FleetStore, which the ops gateway and console query
// (/fleet/*).  Staleness is evaluated lazily at query time, so a partitioned
// exporter shows up as stale without the collector doing any per-host work.
//
// Determinism contract: exporter traffic emits trace events only in the
// dedicated "telemetry" category (excluded from chaos replay digests, like
// "flow"), never draws host or fault RNG on loss-free management networks
// (Rng::chance(0) consumes nothing), and never perturbs other components'
// timestamps — seeded digests are bit-identical with the exporter on or
// off (ChaosTrace.TelemetryExporterPreservesReplayDigests).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/fleet.hpp"
#include "transport/rpc.hpp"

namespace snipe::daemon {

namespace tags {
inline constexpr std::uint32_t kTelemetryBeacon = 140;  ///< one-way beacon
}  // namespace tags

struct TelemetryConfig {
  /// Collector addresses to publish to; empty disables the exporter.
  std::vector<simnet::Address> collectors;
  /// Export cadence (the "default cadence" the bench overhead guard pins).
  SimDuration period = duration::seconds(1);
  /// Every Nth beacon is a full snapshot (resync point after loss).
  std::uint32_t full_every = 16;
  /// Flight entries per beacon, newest win.
  std::size_t max_flight = 64;
};

/// Periodically publishes this process's telemetry to the configured
/// collectors.  The timer is weak (housekeeping must not keep a simulation
/// alive); ticks are skipped while the host is down and resume after a
/// revival, with the accumulated deltas riding the next beacon.
class TelemetryExporter {
 public:
  /// `registry`/`flight` default to the process-wide globals; a simulation
  /// hosting many exporters in one process passes per-host instances.
  TelemetryExporter(transport::RpcEndpoint& rpc, TelemetryConfig config,
                    obs::MetricsRegistry* registry = nullptr,
                    obs::FlightRecorder* flight = nullptr);

  /// Schedules the first tick one period out.  Idempotent.
  void start();
  void stop() { running_ = false; }
  bool running() const { return running_; }

  std::uint64_t beacons_sent() const { return beacons_sent_; }

 private:
  void tick();

  transport::RpcEndpoint& rpc_;
  simnet::Engine& engine_;
  TelemetryConfig config_;
  obs::BeaconBuilder builder_;
  obs::Counter* beacons_counter_;  ///< "telemetry.beacons_sent"
  obs::Counter* bytes_counter_;    ///< "telemetry.beacon_bytes"
  bool running_ = false;
  std::uint64_t beacons_sent_ = 0;
};

/// Serves the beacon tag on an RPC endpoint and folds every beacon into a
/// FleetStore.  Purely reactive: no timers, no per-host state machines — a
/// silent host costs nothing and is reported stale at query time.
class TelemetryCollector {
 public:
  explicit TelemetryCollector(transport::RpcEndpoint& rpc,
                              obs::FleetStore::Options options = {});

  obs::FleetStore& store() { return store_; }
  const obs::FleetStore& store() const { return store_; }

  std::uint64_t beacons_received() const { return beacons_received_; }
  std::uint64_t beacons_malformed() const { return beacons_malformed_; }

 private:
  transport::RpcEndpoint& rpc_;
  obs::FleetStore store_;
  std::uint64_t beacons_received_ = 0;
  std::uint64_t beacons_malformed_ = 0;
  Logger log_;
};

}  // namespace snipe::daemon
