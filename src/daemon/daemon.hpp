// The per-host SNIPE daemon (§3.3, §5.5).
//
// "Each SNIPE daemon mediates the use of resources on its particular host.
//  SNIPE daemons are responsible for authenticating requests, enforcing
//  access restrictions, management of local tasks, delivery of signals to
//  local tasks, monitoring machine load and other local resources, and
//  name-to-address lookup of local tasks."
//
// Responsibilities implemented here:
//   * publish the host's distinguished metadata at startup (§5.2.1);
//   * spawn native programs (registered factories) and mobile code (LIFNs,
//     loaded through the playground with full verification), including
//     restore-from-checkpoint spawns used by migration (§5.6);
//   * verify RM-signed spawn authorizations when configured (§4);
//   * enforce the environment specification (arch / CPU requirements);
//   * track task state, publish it as process metadata, and notify the
//     spawner and any registered watchers of state changes;
//   * deliver signals (kill/suspend/resume) and serve checkpoint-to-file-
//     server requests;
//   * report load, both on demand and periodically into RC.
#pragma once

#include <map>
#include <memory>

#include "crypto/identity.hpp"
#include "crypto/session.hpp"
#include "daemon/task.hpp"
#include "daemon/telemetry.hpp"
#include "files/fileserver.hpp"
#include "obs/metrics.hpp"
#include "playground/playground.hpp"
#include "rcds/client.hpp"
#include "transport/rpc.hpp"

namespace snipe::daemon {

namespace tags {
inline constexpr std::uint32_t kSpawn = 130;
inline constexpr std::uint32_t kSignal = 131;
inline constexpr std::uint32_t kTaskInfo = 132;
inline constexpr std::uint32_t kListTasks = 133;
inline constexpr std::uint32_t kCheckpointTo = 134;  ///< checkpoint to a file server
inline constexpr std::uint32_t kTaskEvent = 135;     ///< one-way state-change notice
inline constexpr std::uint32_t kLoad = 136;
inline constexpr std::uint32_t kPing = 137;
inline constexpr std::uint32_t kSessionHello = 138;  ///< §4 authenticated channel setup
inline constexpr std::uint32_t kSpawnSealed = 139;   ///< spawn over the session, unsigned
}  // namespace tags

struct DaemonConfig {
  std::string arch = "sparc-sunos";  ///< advertised host architecture
  int cpus = 1;
  /// Optional host identity; when set, the host's public key is published
  /// in its metadata ("Authentication credentials – public keys and key
  /// certificates to be used to authenticate the host", §5.2.1).
  std::shared_ptr<crypto::Principal> host_principal;
  SimDuration load_report_period = duration::seconds(2);
  /// Require an RM-signed authorization on every spawn (§4).
  bool require_authorization = false;
  /// Issuers trusted for grant_resources (spawn auth) and sign_mobile_code
  /// (playground verification).
  crypto::TrustStore trust;
  playground::PlaygroundConfig playground;
  /// Fleet telemetry export (off unless collectors are configured): the
  /// daemon publishes beacons for its whole process — "each SNIPE daemon
  /// mediates ... monitoring machine load and other local resources".
  TelemetryConfig telemetry;
  /// Serve the beacon tag and maintain a fleet store on this daemon (the
  /// collector role; any daemon can take it).
  bool telemetry_collector = false;
};

struct DaemonStats {
  std::uint64_t spawns_ok = 0;
  std::uint64_t spawns_rejected = 0;
  std::uint64_t signals_delivered = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t events_sent = 0;
};

/// Canonical payload of an RM spawn authorization (§4): what the RM signs.
Bytes authorization_payload(const std::string& program, const std::string& host);

class SnipeDaemon {
 public:
  static constexpr std::uint16_t kDefaultPort = 7201;

  SnipeDaemon(simnet::Host& host, std::vector<simnet::Address> rc_replicas,
              std::uint16_t port = kDefaultPort, DaemonConfig config = {});

  /// Registers a native program (§3.3 task management).
  void register_program(const std::string& name, TaskFactory factory);

  simnet::Address address() const { return rpc_.address(); }
  /// The host's distinguished URL (§5.2.1).
  std::string host_url() const;

  /// Raw-datagram health port: any datagram sent here is answered with a
  /// single unreliable pong carrying (load, running task count).  Health
  /// probes deliberately bypass the reliable transport — a retried
  /// liveness probe measures the transport, not the host.
  static constexpr std::uint16_t kPingPortOffset = 1000;
  std::uint16_t ping_port() const { return static_cast<std::uint16_t>(address().port + kPingPortOffset); }

  /// Spawns locally (async: mobile code requires network fetches).
  void spawn(const SpawnRequest& request, const simnet::Address& spawner,
             std::function<void(Result<SpawnReply>)> done);

  std::size_t active_sessions() const { return sessions_.size(); }

  /// Local queries used by tests and co-located components.
  Result<TaskState> task_state(const std::string& urn) const;
  std::size_t running_tasks() const;
  double load() const;

  const DaemonStats& stats() const { return stats_; }
  transport::RpcEndpoint& rpc() { return rpc_; }
  rcds::RcClient& rc() { return rc_; }

  /// Lets an embedding component (the RM) add itself as a broker for this
  /// host in the host metadata (§5.2.1 "The URLs of any brokers which
  /// manage this host's resources").
  void add_broker(const std::string& broker_url);

  /// Telemetry roles (nullptr when not configured).
  TelemetryExporter* telemetry_exporter() { return telemetry_exporter_.get(); }
  TelemetryCollector* telemetry_collector() { return telemetry_collector_.get(); }
  const TelemetryCollector* telemetry_collector() const {
    return telemetry_collector_.get();
  }

 private:
  struct TaskEntry final : TaskHandle {
    SnipeDaemon* daemon = nullptr;
    std::string task_urn;
    TaskState state = TaskState::starting;
    std::unique_ptr<ManagedTask> task;
    simnet::Address spawner;
    std::uint16_t comm_port = 0;
    std::int64_t exit_code = 0;

    const std::string& urn() const override { return task_urn; }
    void exited(std::int64_t code) override;
    void failed(const std::string& why) override;
    void set_comm_port(std::uint16_t port) override;
  };

  void publish_host_metadata();
  void publish_load();
  Result<void> check_environment(const SpawnRequest& request) const;
  Result<void> check_authorization(const SpawnRequest& request) const;
  void set_state(TaskEntry& entry, TaskState state, const std::string& detail = "");
  void finish_spawn(std::shared_ptr<TaskEntry> entry,
                    std::function<void(Result<SpawnReply>)> done);
  void spawn_vm(const SpawnRequest& request, std::shared_ptr<TaskEntry> entry,
                std::function<void(Result<SpawnReply>)> done);
  /// Spawn whose authorization was already established (session channel).
  void spawn_preauthorized(const SpawnRequest& request, const simnet::Address& spawner,
                           std::function<void(Result<SpawnReply>)> done);

  simnet::Host& host_;
  transport::RpcEndpoint rpc_;
  simnet::Engine& engine_;
  DaemonConfig config_;
  rcds::RcClient rc_;
  files::FileClient files_;
  playground::Playground playground_;
  std::map<std::string, TaskFactory> programs_;
  std::map<std::string, std::shared_ptr<TaskEntry>> tasks_;
  /// §4 authenticated channels, keyed by the RM endpoint that opened them.
  std::map<simnet::Address, crypto::Session> sessions_;
  std::uint64_t next_task_seq_ = 1;
  std::unique_ptr<TelemetryExporter> telemetry_exporter_;
  std::unique_ptr<TelemetryCollector> telemetry_collector_;
  DaemonStats stats_;
  obs::Counter* heartbeats_;  ///< global "daemon.heartbeats" (pongs answered)
  Logger log_;
  /// Declared last so sources retire before stats_ dies.
  obs::SourceGroup metrics_sources_;
};

}  // namespace snipe::daemon
