#include "daemon/task.hpp"

namespace snipe::daemon {

const char* task_state_name(TaskState s) {
  switch (s) {
    case TaskState::starting: return "starting";
    case TaskState::running: return "running";
    case TaskState::suspended: return "suspended";
    case TaskState::exited: return "exited";
    case TaskState::failed: return "failed";
    case TaskState::killed: return "killed";
    case TaskState::migrated: return "migrated";
  }
  return "unknown";
}

Bytes SpawnRequest::encode() const {
  ByteWriter w;
  w.str(program);
  w.str(name);
  w.u32(static_cast<std::uint32_t>(args.size()));
  for (auto a : args) w.i64(a);
  w.str(require_arch);
  w.i32(require_cpus);
  w.str(restore_lifn);
  w.blob(authorization);
  return std::move(w).take();
}

Result<SpawnRequest> SpawnRequest::decode(const Bytes& data) {
  ByteReader r(data);
  SpawnRequest req;
  auto program = r.str();
  if (!program) return program.error();
  req.program = program.value();
  auto name = r.str();
  if (!name) return name.error();
  req.name = name.value();
  auto count = r.u32();
  if (!count) return count.error();
  if (count.value() > 1 << 16) return Error{Errc::corrupt, "absurd arg count"};
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto a = r.i64();
    if (!a) return a.error();
    req.args.push_back(a.value());
  }
  auto arch = r.str();
  if (!arch) return arch.error();
  req.require_arch = arch.value();
  auto cpus = r.i32();
  if (!cpus) return cpus.error();
  req.require_cpus = cpus.value();
  auto restore = r.str();
  if (!restore) return restore.error();
  req.restore_lifn = restore.value();
  auto auth = r.blob();
  if (!auth) return auth.error();
  req.authorization = auth.value();
  return req;
}

Bytes SpawnReply::encode() const {
  ByteWriter w;
  w.str(urn);
  w.str(host);
  w.u16(port);
  return std::move(w).take();
}

Result<SpawnReply> SpawnReply::decode(const Bytes& data) {
  ByteReader r(data);
  SpawnReply reply;
  auto urn = r.str();
  if (!urn) return urn.error();
  reply.urn = urn.value();
  auto host = r.str();
  if (!host) return host.error();
  reply.host = host.value();
  auto port = r.u16();
  if (!port) return port.error();
  reply.port = port.value();
  return reply;
}

}  // namespace snipe::daemon
