#include "daemon/daemon.hpp"

#include "obs/trace.hpp"
#include "util/strings.hpp"
#include "util/uri.hpp"

namespace snipe::daemon {

namespace {

/// Adapter running a playground VmTask behind the ManagedTask interface.
class VmManagedTask final : public ManagedTask {
 public:
  VmManagedTask(simnet::Engine& engine, playground::Vm vm, TaskHandle& handle)
      : task_(engine, std::move(vm)), handle_(handle) {
    task_.set_exit_handler([this](playground::VmStatus status, std::int64_t code) {
      if (status == playground::VmStatus::halted)
        handle_.exited(code);
      else
        handle_.failed(std::string("vm ") + playground::vm_status_name(status) + ": " +
                       task_.vm().fault());
    });
  }

  void start() override { task_.start(); }
  void suspend() override { task_.suspend(); }
  void resume() override { task_.resume(); }
  void kill() override { task_.suspend(); }
  Result<Bytes> checkpoint() override { return task_.checkpoint(); }
  void push_input(std::int64_t v) override { task_.push_input(v); }

  playground::VmTask& vm_task() { return task_; }

 private:
  playground::VmTask task_;
  TaskHandle& handle_;
};

}  // namespace

Bytes authorization_payload(const std::string& program, const std::string& host) {
  ByteWriter w;
  w.str("snipe:spawn-authorization");
  w.str(program);
  w.str(host);
  return std::move(w).take();
}

SnipeDaemon::SnipeDaemon(simnet::Host& host, std::vector<simnet::Address> rc_replicas,
                         std::uint16_t port, DaemonConfig config)
    : host_(host),
      rpc_(host, port, {}),
      engine_(host.engine()),
      config_(std::move(config)),
      rc_(rpc_, rc_replicas),
      files_(rpc_, rc_replicas),
      playground_(rc_, files_, config_.trust, config_.playground),
      log_("daemon@" + host.name()) {
  rpc_.serve_async(tags::kSpawn, [this](const simnet::Address& from, const Bytes& body,
                                        transport::RpcEndpoint::Responder respond) {
    auto request = SpawnRequest::decode(body);
    if (!request) {
      respond(request.error());
      return;
    }
    spawn(request.value(), from, [respond](Result<SpawnReply> r) {
      if (!r) {
        respond(r.error());
        return;
      }
      respond(r.value().encode());
    });
  });

  rpc_.serve(tags::kSignal, [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
    ByteReader r(body);
    auto urn = r.str();
    auto signal = r.u8();
    if (!urn || !signal) return Error{Errc::corrupt, "bad signal request"};
    auto it = tasks_.find(urn.value());
    if (it == tasks_.end()) return Result<Bytes>(Errc::not_found, urn.value());
    TaskEntry& entry = *it->second;
    ++stats_.signals_delivered;
    switch (static_cast<TaskSignal>(signal.value())) {
      case TaskSignal::kill:
        entry.task->kill();
        set_state(entry, TaskState::killed);
        break;
      case TaskSignal::suspend:
        entry.task->suspend();
        set_state(entry, TaskState::suspended);
        break;
      case TaskSignal::resume:
        entry.task->resume();
        set_state(entry, TaskState::running);
        break;
      default:
        return Error{Errc::invalid_argument, "unknown signal"};
    }
    return Bytes{};
  });

  rpc_.serve(tags::kTaskInfo,
             [this](const simnet::Address&, const Bytes& body) -> Result<Bytes> {
               ByteReader r(body);
               auto urn = r.str();
               if (!urn) return urn.error();
               auto it = tasks_.find(urn.value());
               if (it == tasks_.end()) return Result<Bytes>(Errc::not_found, urn.value());
               ByteWriter w;
               w.u8(static_cast<std::uint8_t>(it->second->state));
               w.u16(it->second->comm_port);
               w.i64(it->second->exit_code);
               return std::move(w).take();
             });

  rpc_.serve(tags::kListTasks,
             [this](const simnet::Address&, const Bytes&) -> Result<Bytes> {
               ByteWriter w;
               w.u32(static_cast<std::uint32_t>(tasks_.size()));
               for (const auto& [urn, entry] : tasks_) {
                 w.str(urn);
                 w.u8(static_cast<std::uint8_t>(entry->state));
               }
               return std::move(w).take();
             });

  rpc_.serve_async(tags::kCheckpointTo,
                   [this](const simnet::Address&, const Bytes& body,
                          transport::RpcEndpoint::Responder respond) {
                     ByteReader r(body);
                     auto urn = r.str();
                     auto lifn = r.str();
                     auto fs_host = r.str();
                     auto fs_port = r.u16();
                     if (!urn || !lifn || !fs_host || !fs_port) {
                       respond(Error{Errc::corrupt, "bad checkpoint request"});
                       return;
                     }
                     auto it = tasks_.find(urn.value());
                     if (it == tasks_.end()) {
                       respond(Result<Bytes>(Errc::not_found, urn.value()));
                       return;
                     }
                     auto snapshot = it->second->task->checkpoint();
                     if (!snapshot) {
                       respond(snapshot.error());
                       return;
                     }
                     ++stats_.checkpoints;
                     // §5.6: "Temporary storage of state is provided by the
                     // SNIPE file servers."
                     files_.write(simnet::Address{fs_host.value(), fs_port.value()},
                                  lifn.value(), snapshot.value(),
                                  [respond, lifn = lifn.value()](Result<void> wrote) {
                                    if (!wrote) {
                                      respond(wrote.error());
                                      return;
                                    }
                                    ByteWriter w;
                                    w.str(lifn);
                                    respond(std::move(w).take());
                                  });
                   });

  rpc_.serve(tags::kLoad, [this](const simnet::Address&, const Bytes&) -> Result<Bytes> {
    ByteWriter w;
    w.f64(load());
    w.u32(static_cast<std::uint32_t>(running_tasks()));
    return std::move(w).take();
  });

  rpc_.serve(tags::kPing,
             [](const simnet::Address&, const Bytes&) -> Result<Bytes> { return Bytes{}; });

  // §4 authenticated channel: an RM we trust for grant_resources signs a
  // session hello encrypted to our host key; afterwards its spawns arrive
  // sealed (MAC'd, sequence-checked) instead of individually RSA-signed.
  rpc_.serve(tags::kSessionHello,
             [this](const simnet::Address& from, const Bytes& body) -> Result<Bytes> {
               if (config_.host_principal == nullptr)
                 return Result<Bytes>(Errc::state_error, "host has no key pair");
               auto stmt = crypto::SignedStatement::decode(body);
               if (!stmt) return stmt.error();
               if (auto v = config_.trust.validate_direct(
                       stmt.value(), crypto::TrustPurpose::grant_resources);
                   !v)
                 return Result<Bytes>(v.error().code, v.error().message);
               auto session = crypto::Session::accept(config_.host_principal->keys.priv,
                                                      stmt.value().payload);
               if (!session) return session.error();
               sessions_.erase(from);
               sessions_.emplace(from, std::move(session).take());
               log_.debug("authenticated session established with ", stmt.value().signer);
               return Bytes{};
             });

  rpc_.serve_async(tags::kSpawnSealed, [this](const simnet::Address& from, const Bytes& body,
                                              transport::RpcEndpoint::Responder respond) {
    auto it = sessions_.find(from);
    if (it == sessions_.end()) {
      respond(Result<Bytes>(Errc::permission_denied, "no session with " + from.to_string()));
      return;
    }
    auto opened = it->second.open(body);
    if (!opened) {
      // Bad MAC or replay: the §4 hijack detections.  Log and refuse.
      log_.warn("sealed spawn from ", from.to_string(), " rejected: ",
                opened.error().to_string());
      respond(opened.error());
      return;
    }
    auto request = SpawnRequest::decode(opened.value());
    if (!request) {
      respond(request.error());
      return;
    }
    // The channel itself carries the RM's authority — no per-spawn
    // signature to verify.
    spawn_preauthorized(request.value(), from, [respond](Result<SpawnReply> r) {
      if (!r) {
        respond(r.error());
        return;
      }
      respond(r.value().encode());
    });
  });

  // Unreliable health responder (see ping_port()).
  host_.bind(ping_port(), [this](const simnet::Packet& p) {
            heartbeats_->inc();
            ByteWriter w;
            w.f64(load());
            w.u32(static_cast<std::uint32_t>(running_tasks()));
            simnet::SendOptions opts;
            opts.src_port = ping_port();
            auto r = host_.send(simnet::Address{p.src.host, p.src.port}, std::move(w).take(),
                                opts);
            if (!r) log_.trace("pong failed: ", r.error().to_string());
          })
      .value();

  // Fleet telemetry roles (DESIGN.md "fleet telemetry plane"): collector
  // first so a daemon that is both can receive its own beacons.
  if (config_.telemetry_collector)
    telemetry_collector_ = std::make_unique<TelemetryCollector>(rpc_);
  if (!config_.telemetry.collectors.empty()) {
    telemetry_exporter_ = std::make_unique<TelemetryExporter>(rpc_, config_.telemetry);
    telemetry_exporter_->start();
  }

  publish_host_metadata();
  engine_.schedule_weak(config_.load_report_period, [this] { publish_load(); });
  heartbeats_ = &obs::MetricsRegistry::global().counter("daemon.heartbeats");
  metrics_sources_.add("daemon.spawns_ok", [this] { return stats_.spawns_ok; });
  metrics_sources_.add("daemon.spawns_rejected", [this] { return stats_.spawns_rejected; });
  metrics_sources_.add("daemon.signals_delivered",
                       [this] { return stats_.signals_delivered; });
  metrics_sources_.add("daemon.checkpoints", [this] { return stats_.checkpoints; });
  metrics_sources_.add("daemon.events_sent", [this] { return stats_.events_sent; });
}

std::string SnipeDaemon::host_url() const {
  return snipe::host_url(host_.name(), rpc_.address().port);
}

void SnipeDaemon::register_program(const std::string& name, TaskFactory factory) {
  programs_[name] = std::move(factory);
}

void SnipeDaemon::publish_host_metadata() {
  // §5.2.1: the distinguished host record.
  std::vector<rcds::Op> ops = {
      rcds::op_set(rcds::names::kHostDaemon, host_url()),
      rcds::op_set(rcds::names::kHostArch, config_.arch),
      rcds::op_set(rcds::names::kHostCpus, std::to_string(config_.cpus)),
      rcds::op_set(rcds::names::kHostLoad, "0"),
  };
  if (config_.host_principal != nullptr)
    ops.push_back(rcds::op_set(rcds::names::kHostKey,
                               hex_encode(config_.host_principal->keys.pub.encode())));
  for (const auto& nic : host_.nics()) {
    const auto& m = nic->network()->model();
    // §5.2.1: per-interface protocol/latency/bandwidth metadata, used by
    // route selection and multicast router placement.
    ops.push_back(rcds::op_add(
        rcds::names::kHostInterface,
        nic->network()->name() + ";" + m.name + ";bw=" + std::to_string(m.bandwidth_bps) +
            ";lat_ns=" + std::to_string(m.latency)));
  }
  rc_.apply(host_url(), ops, [this](Result<std::vector<rcds::Assertion>> r) {
    if (!r) log_.warn("host metadata publish failed: ", r.error().to_string());
  });
}

void SnipeDaemon::publish_load() {
  engine_.schedule_weak(config_.load_report_period, [this] { publish_load(); });
  if (!host_.up()) return;  // a dead host reports nothing
  rc_.set(host_url(), rcds::names::kHostLoad, std::to_string(load()),
          [](Result<void>) {});
}

void SnipeDaemon::add_broker(const std::string& broker_url) {
  rc_.add(host_url(), rcds::names::kHostBroker, broker_url, [this](Result<void> r) {
    if (!r) log_.warn("broker registration failed: ", r.error().to_string());
  });
}

double SnipeDaemon::load() const {
  return static_cast<double>(running_tasks()) / std::max(1, config_.cpus);
}

std::size_t SnipeDaemon::running_tasks() const {
  std::size_t n = 0;
  for (const auto& [urn, entry] : tasks_)
    if (entry->state == TaskState::running || entry->state == TaskState::starting) ++n;
  return n;
}

Result<TaskState> SnipeDaemon::task_state(const std::string& urn) const {
  auto it = tasks_.find(urn);
  if (it == tasks_.end()) return Result<TaskState>(Errc::not_found, urn);
  return it->second->state;
}

Result<void> SnipeDaemon::check_environment(const SpawnRequest& request) const {
  // §5.5: "the program ... may run only on certain CPU types, it may
  // require a certain amount of memory or CPU time".
  if (!request.require_arch.empty() && request.require_arch != config_.arch)
    return Error{Errc::invalid_argument,
                 "host arch " + config_.arch + " != required " + request.require_arch};
  if (request.require_cpus > config_.cpus)
    return Error{Errc::invalid_argument, "not enough CPUs"};
  return ok_result();
}

Result<void> SnipeDaemon::check_authorization(const SpawnRequest& request) const {
  if (!config_.require_authorization) return ok_result();
  if (request.authorization.empty())
    return Error{Errc::permission_denied, "spawn authorization required"};
  auto stmt = crypto::SignedStatement::decode(request.authorization);
  if (!stmt) return Error{Errc::permission_denied, "undecodable authorization"};
  if (auto v = config_.trust.validate_direct(stmt.value(),
                                             crypto::TrustPurpose::grant_resources);
      !v)
    return v;
  // The statement must authorize *this* program on *this* host.
  if (stmt.value().payload != authorization_payload(request.program, host_.name()))
    return Error{Errc::permission_denied, "authorization does not cover this spawn"};
  return ok_result();
}

void SnipeDaemon::set_state(TaskEntry& entry, TaskState state, const std::string& detail) {
  if (entry.state == state) return;
  entry.state = state;
  obs::Tracer::global().instant(
      "daemon", std::string("task.") + task_state_name(state),
      detail.empty()
          ? std::vector<std::pair<std::string, std::string>>{{"urn", entry.task_urn}}
          : std::vector<std::pair<std::string, std::string>>{{"urn", entry.task_urn},
                                                             {"detail", detail}});
  log_.debug(entry.task_urn, " -> ", task_state_name(state),
             detail.empty() ? "" : (": " + detail));
  // Publish as process metadata (§5.2.3) ...
  rc_.set(entry.task_urn, rcds::names::kProcState, task_state_name(state),
          [](Result<void>) {});
  // ... and notify the spawner directly (§3.3 "informing interested
  // parties of changes to the status of those tasks").
  if (entry.spawner.port != 0) {
    ByteWriter w;
    w.str(entry.task_urn);
    w.u8(static_cast<std::uint8_t>(state));
    w.i64(entry.exit_code);
    rpc_.notify(entry.spawner, tags::kTaskEvent, std::move(w).take());
    ++stats_.events_sent;
  }
}

void SnipeDaemon::TaskEntry::exited(std::int64_t code) {
  exit_code = code;
  daemon->set_state(*this, TaskState::exited);
}

void SnipeDaemon::TaskEntry::failed(const std::string& why) {
  daemon->set_state(*this, TaskState::failed, why);
}

void SnipeDaemon::TaskEntry::set_comm_port(std::uint16_t port) {
  comm_port = port;
  daemon->rc_.add(task_urn, rcds::names::kProcAddress,
                  "snipe://" + daemon->host_.name() + ":" + std::to_string(port) + "/task",
                  [](Result<void>) {});
}

void SnipeDaemon::spawn(const SpawnRequest& request, const simnet::Address& spawner,
                        std::function<void(Result<SpawnReply>)> done) {
  if (auto auth = check_authorization(request); !auth) {
    ++stats_.spawns_rejected;
    log_.warn("spawn of ", request.program, " rejected: ", auth.error().to_string());
    done(auth.error());
    return;
  }
  spawn_preauthorized(request, spawner, std::move(done));
}

void SnipeDaemon::spawn_preauthorized(const SpawnRequest& request,
                                      const simnet::Address& spawner,
                                      std::function<void(Result<SpawnReply>)> done) {
  if (auto env = check_environment(request); !env) {
    ++stats_.spawns_rejected;
    done(env.error());
    return;
  }

  auto entry = std::make_shared<TaskEntry>();
  entry->daemon = this;
  std::string instance = request.name.empty()
                             ? host_.name() + "-" + std::to_string(next_task_seq_++)
                             : request.name;
  entry->task_urn = process_urn(instance);
  entry->spawner = spawner;
  if (tasks_.count(entry->task_urn)) {
    ++stats_.spawns_rejected;
    done(Error{Errc::already_exists, entry->task_urn});
    return;
  }

  const bool is_mobile_code =
      starts_with(request.program, "lifn://") || !request.restore_lifn.empty();
  if (is_mobile_code) {
    spawn_vm(request, std::move(entry), std::move(done));
    return;
  }

  auto it = programs_.find(request.program);
  if (it == programs_.end()) {
    ++stats_.spawns_rejected;
    done(Error{Errc::not_found, "no such program " + request.program});
    return;
  }
  auto task = it->second(request, *entry);
  if (!task) {
    ++stats_.spawns_rejected;
    done(task.error());
    return;
  }
  entry->task = std::move(task).take();
  finish_spawn(std::move(entry), std::move(done));
}

void SnipeDaemon::spawn_vm(const SpawnRequest& request, std::shared_ptr<TaskEntry> entry,
                           std::function<void(Result<SpawnReply>)> done) {
  auto instantiate = [this, entry, done, args = request.args](
                         Result<playground::Vm> vm) mutable {
    if (!vm) {
      ++stats_.spawns_rejected;
      done(vm.error());
      return;
    }
    auto task = std::make_unique<VmManagedTask>(engine_, std::move(vm).take(), *entry);
    for (auto a : args) task->push_input(a);
    entry->task = std::move(task);
    finish_spawn(entry, std::move(done));
  };

  if (!request.restore_lifn.empty()) {
    // Restart / migration arrival: state comes from a checkpoint file.
    files_.read(request.restore_lifn,
                [instantiate = std::move(instantiate)](Result<Bytes> snapshot) mutable {
                  if (!snapshot) {
                    instantiate(snapshot.error());
                    return;
                  }
                  auto vm = playground::Vm::restore(snapshot.value());
                  if (!vm) {
                    instantiate(vm.error());
                    return;
                  }
                  instantiate(std::move(vm).take());
                });
    return;
  }
  playground_.load(request.program, std::move(instantiate));
}

void SnipeDaemon::finish_spawn(std::shared_ptr<TaskEntry> entry,
                               std::function<void(Result<SpawnReply>)> done) {
  tasks_[entry->task_urn] = entry;
  ++stats_.spawns_ok;
  // Register the process metadata (§5.5: "create a distinguished URL for
  // the process and associate the per-process RC metadata with that URL.
  // This makes the new process globally visible").
  rc_.apply(entry->task_urn,
            {rcds::op_set(rcds::names::kProcHost, host_.name()),
             rcds::op_set(rcds::names::kProcState, task_state_name(TaskState::starting)),
             rcds::op_set(rcds::names::kProcSupervisor, host_url())},
            [](Result<std::vector<rcds::Assertion>>) {});
  // §3.7: "the SNIPE processes which were initiated by the SNIPE daemon on
  // any particular host are registered in metadata associated with that
  // host" — what consoles enumerate.
  rc_.add(host_url(), rcds::names::kHostTask, entry->task_urn, [](Result<void>) {});
  entry->task->start();
  set_state(*entry, TaskState::running);
  done(SpawnReply{entry->task_urn, host_.name(), entry->comm_port});
}

}  // namespace snipe::daemon
