#include "util/uri.hpp"

#include <cctype>

namespace snipe {

namespace {
bool valid_scheme(const std::string& s) {
  if (s.empty() || !std::isalpha(static_cast<unsigned char>(s[0]))) return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '+' && c != '-' && c != '.')
      return false;
  }
  return true;
}
}  // namespace

Result<Uri> parse_uri(const std::string& text) {
  auto colon = text.find(':');
  if (colon == std::string::npos || colon == 0)
    return Error{Errc::invalid_argument, "no scheme in '" + text + "'"};
  Uri uri;
  uri.scheme = text.substr(0, colon);
  for (auto& c : uri.scheme) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (!valid_scheme(uri.scheme))
    return Error{Errc::invalid_argument, "bad scheme in '" + text + "'"};

  std::string rest = text.substr(colon + 1);
  if (uri.scheme == "urn") {
    if (rest.empty()) return Error{Errc::invalid_argument, "empty URN body"};
    uri.path = rest;
    return uri;
  }

  if (rest.rfind("//", 0) != 0)
    return Error{Errc::invalid_argument, "expected '//' after scheme in '" + text + "'"};
  rest = rest.substr(2);

  auto slash = rest.find('/');
  std::string authority = slash == std::string::npos ? rest : rest.substr(0, slash);
  uri.path = slash == std::string::npos ? "" : rest.substr(slash + 1);

  auto port_colon = authority.rfind(':');
  if (port_colon != std::string::npos) {
    std::string port_text = authority.substr(port_colon + 1);
    if (port_text.empty())
      return Error{Errc::invalid_argument, "empty port in '" + text + "'"};
    int port = 0;
    for (char c : port_text) {
      if (!std::isdigit(static_cast<unsigned char>(c)))
        return Error{Errc::invalid_argument, "non-numeric port in '" + text + "'"};
      port = port * 10 + (c - '0');
      if (port > 65535) return Error{Errc::invalid_argument, "port out of range"};
    }
    uri.port = port;
    uri.host = authority.substr(0, port_colon);
  } else {
    uri.host = authority;
  }
  if (uri.host.empty()) return Error{Errc::invalid_argument, "empty host in '" + text + "'"};
  return uri;
}

std::string Uri::to_string() const {
  if (is_urn()) return "urn:" + path;
  std::string out = scheme + "://" + host;
  if (port != 0) out += ":" + std::to_string(port);
  if (!path.empty()) out += "/" + path;
  return out;
}

std::string host_url(const std::string& hostname, int port) {
  return "snipe://" + hostname + ":" + std::to_string(port) + "/daemon";
}

std::string process_urn(const std::string& name) { return "urn:snipe:proc:" + name; }

std::string group_urn(const std::string& name) { return "urn:snipe:group:" + name; }

std::string service_lifn(const std::string& authority, const std::string& name) {
  return "lifn://" + authority + "/" + name;
}

}  // namespace snipe
