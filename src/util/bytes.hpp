// Byte buffers and the SNIPE on-wire encoding.
//
// All SNIPE messages, RC assertions, checkpoints and certificates are
// serialized with this one encoder/decoder pair.  The encoding is the
// XDR-style network byte order (big-endian) scheme the paper's client
// library uses for "data conversion (e.g. between different host
// architectures)" (§3.4): fixed-width big-endian integers, IEEE-754 doubles
// transported as their bit pattern, and length-prefixed strings/blobs.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace snipe {

using Bytes = std::vector<std::uint8_t>;

/// Converts a string to raw bytes (no terminator).
Bytes to_bytes(const std::string& s);
/// Converts raw bytes to a string.
std::string to_string(const Bytes& b);

/// Appends primitives to a byte vector in network (big-endian) order.
///
/// Writer never fails: it grows the target buffer as needed.
class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  /// Length-prefixed (u32) string.
  void str(const std::string& s);
  /// Length-prefixed (u32) blob.
  void blob(const Bytes& b);
  /// Raw bytes, no length prefix (caller knows the framing).
  void raw(const std::uint8_t* p, std::size_t n) { buf_.insert(buf_.end(), p, p + n); }
  void raw(const Bytes& b) { raw(b.data(), b.size()); }

  const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Reads primitives back out of a byte span, in the same order they were
/// written.  All reads are bounds-checked; a short buffer yields
/// Errc::corrupt rather than undefined behaviour, because wire data is
/// untrusted (§4).
class ByteReader {
 public:
  explicit ByteReader(const Bytes& b) : p_(b.data()), n_(b.size()) {}
  ByteReader(const std::uint8_t* p, std::size_t n) : p_(p), n_(n) {}

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  Result<std::int32_t> i32();
  Result<std::int64_t> i64();
  Result<double> f64();
  Result<std::string> str();
  Result<Bytes> blob();
  /// Reads exactly n raw bytes.
  Result<Bytes> raw(std::size_t n);

  std::size_t remaining() const { return n_ - off_; }
  bool done() const { return off_ == n_; }

 private:
  bool need(std::size_t n) { return n_ - off_ >= n; }
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t off_ = 0;
};

/// Hex encoding of a byte string, lowercase.
std::string hex_encode(const Bytes& b);
std::string hex_encode(const std::uint8_t* p, std::size_t n);
/// Decodes lowercase/uppercase hex; fails on odd length or non-hex chars.
Result<Bytes> hex_decode(const std::string& s);

}  // namespace snipe
