#include "util/payload.hpp"

#include <algorithm>
#include <cstring>

namespace snipe {

namespace {

// ---------------------------------------------------------------------------
// Pooled scratch buffers for PayloadWriter headers.
//
// The pool keeps one reference to every buffer it has handed out; a buffer
// is free for reuse exactly when the pool's reference is the only one left
// (use_count() == 1), i.e. every Payload that viewed it has been dropped.
// This also means an in-flight pooled buffer always has use_count() >= 2,
// so Payload::cow_xor never mutates pooled bytes in place — the pool can
// recycle them without tearing someone's view.
// The pool must cover the headers of everything in flight at once: a 1 MiB
// message alone keeps ~65 chunks referenced while its fragments sit in the
// media queue, so a 64-chunk pool thrashed (full scan + fresh allocation
// per packet).  320 chunks (~160 KiB per thread) covers several in-flight
// large messages; the probe is bounded so a saturated pool degrades to a
// handful of use_count loads, not a full sweep.
constexpr std::size_t kPoolBuffers = 320;
constexpr std::size_t kChunkCapacity = 512;
constexpr std::size_t kPoolProbes = 32;

struct ChunkPool {
  std::vector<std::shared_ptr<Bytes>> buffers;
  std::size_t cursor = 0;

  std::shared_ptr<Bytes> acquire(std::size_t need) {
    std::size_t want = std::max(need, kChunkCapacity);
    std::size_t probes = std::min(buffers.size(), kPoolProbes);
    for (std::size_t i = 0; i < probes; ++i) {
      auto& b = buffers[cursor];
      cursor = (cursor + 1) % buffers.size();
      if (b.use_count() == 1 && b->capacity() >= want) {
        b->clear();
        return b;
      }
    }
    auto fresh = std::make_shared<Bytes>();
    fresh->reserve(want);
    if (buffers.size() < kPoolBuffers) buffers.push_back(fresh);
    return fresh;
  }
};

ChunkPool& pool() {
  thread_local ChunkPool p;
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// Payload

Payload::Payload(Bytes bytes) {
  std::size_t n = bytes.size();
  if (n == 0) return;
  push_segment(std::make_shared<const Bytes>(std::move(bytes)), 0, n);
}

Payload::Payload(Buffer buf, std::size_t off, std::size_t len) {
  assert(buf != nullptr && off + len <= buf->size());
  if (len == 0) return;
  push_segment(std::move(buf), off, len);
}

Payload::Payload(Buffer buf) {
  if (buf == nullptr || buf->empty()) return;
  std::size_t n = buf->size();
  push_segment(std::move(buf), 0, n);
}

void Payload::push_segment(Buffer buf, std::size_t off, std::size_t len) {
  if (len == 0) return;
  // Coalesce: a segment that continues the previous window of the same
  // buffer extends it instead of growing the list.
  if (nsegs_ > 0) {
    Segment& last = seg_at(nsegs_ - 1);
    if (last.buf == buf && last.off + last.len == off) {
      last.len += len;
      size_ += len;
      return;
    }
  }
  if (nsegs_ < kInlineSegments) {
    inline_[nsegs_] = Segment{std::move(buf), off, len};
  } else {
    more_.push_back(Segment{std::move(buf), off, len});
  }
  ++nsegs_;
  size_ += len;
}

Payload Payload::slice(std::size_t off, std::size_t len) const {
  assert(off + len <= size_);
  Payload out;
  std::size_t skip = off;
  for (std::size_t i = 0; i < nsegs_ && len > 0; ++i) {
    const Segment& s = segment(i);
    if (skip >= s.len) {
      skip -= s.len;
      continue;
    }
    std::size_t take = std::min(len, s.len - skip);
    out.push_segment(s.buf, s.off + skip, take);
    skip = 0;
    len -= take;
  }
  return out;
}

void Payload::append(const Payload& p) {
  for (std::size_t i = 0; i < p.nsegs_; ++i) {
    const Segment& s = p.segment(i);
    push_segment(s.buf, s.off, s.len);
  }
}

void Payload::append(Payload&& p) {
  if (nsegs_ == 0) {
    *this = std::move(p);
    return;
  }
  for (std::size_t i = 0; i < p.nsegs_; ++i) {
    Segment& s = p.seg_at(i);
    push_segment(std::move(s.buf), s.off, s.len);
  }
  p.more_.clear();
  p.nsegs_ = 0;
  p.size_ = 0;
}

void Payload::flatten() {
  if (nsegs_ <= 1) return;
  Bytes flat(size_);
  copy_to(flat.data());
  std::size_t n = flat.size();
  more_.clear();
  nsegs_ = 0;
  size_ = 0;
  inline_[0] = Segment{};
  inline_[1] = Segment{};
  push_segment(std::make_shared<const Bytes>(std::move(flat)), 0, n);
}

std::uint8_t Payload::operator[](std::size_t i) const {
  assert(i < size_);
  for (std::size_t s = 0; s < nsegs_; ++s) {
    const Segment& seg = segment(s);
    if (i < seg.len) return seg.data()[i];
    i -= seg.len;
  }
  return 0;  // unreachable given the assert
}

void Payload::copy_to(std::uint8_t* out) const {
  for (std::size_t i = 0; i < nsegs_; ++i) {
    const Segment& s = segment(i);
    std::memcpy(out, s.data(), s.len);
    out += s.len;
  }
}

Bytes Payload::to_bytes() const {
  Bytes out(size_);
  copy_to(out.data());
  return out;
}

void Payload::cow_xor(std::size_t pos, std::uint8_t mask) {
  assert(pos < size_);
  for (std::size_t i = 0; i < nsegs_; ++i) {
    Segment& s = seg_at(i);
    if (pos >= s.len) {
      pos -= s.len;
      continue;
    }
    if (s.buf.use_count() != 1) {
      // Shared bytes (another payload, a retransmit buffer, or the writer
      // pool still references them): clone just this segment.
      auto clone = std::make_shared<Bytes>(s.buf->begin() + static_cast<std::ptrdiff_t>(s.off),
                                           s.buf->begin() + static_cast<std::ptrdiff_t>(s.off + s.len));
      s.buf = clone;
      s.off = 0;
    }
    // Sole owner now; mutating in place is invisible to everyone else.
    const_cast<Bytes&>(*s.buf)[s.off + pos] ^= mask;
    return;
  }
}

bool Payload::operator==(const Payload& o) const {
  if (size_ != o.size_) return false;
  std::size_t i = 0, j = 0, ioff = 0, joff = 0;
  std::size_t left = size_;
  while (left > 0) {
    const Segment& a = segment(i);
    const Segment& b = o.segment(j);
    std::size_t n = std::min({a.len - ioff, b.len - joff, left});
    if (std::memcmp(a.data() + ioff, b.data() + joff, n) != 0) return false;
    ioff += n;
    joff += n;
    left -= n;
    if (ioff == a.len) { ++i; ioff = 0; }
    if (joff == b.len) { ++j; joff = 0; }
  }
  return true;
}

bool Payload::operator==(const Bytes& o) const {
  if (size_ != o.size()) return false;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < nsegs_; ++i) {
    const Segment& s = segment(i);
    if (std::memcmp(s.data(), o.data() + pos, s.len) != 0) return false;
    pos += s.len;
  }
  return true;
}

std::string to_string(const Payload& p) {
  std::string out(p.size(), '\0');
  p.copy_to(reinterpret_cast<std::uint8_t*>(out.data()));
  return out;
}

// ---------------------------------------------------------------------------
// PayloadWriter

void PayloadWriter::ensure_chunk(std::size_t need) {
  if (chunk_ != nullptr && chunk_->size() + need <= chunk_->capacity()) return;
  freeze_pending();
  chunk_ = pool().acquire(need);
  chunk_base_ = chunk_->size();
}

void PayloadWriter::freeze_pending() {
  if (pending_ == 0) return;
  out_.append(Payload(Payload::Buffer(chunk_), chunk_base_, pending_));
  chunk_base_ += pending_;
  pending_ = 0;
}

void PayloadWriter::raw(const std::uint8_t* p, std::size_t n) {
  if (n == 0) return;
  ensure_chunk(n);
  chunk_->insert(chunk_->end(), p, p + n);
  pending_ += n;
}

void PayloadWriter::u8(std::uint8_t v) { raw(&v, 1); }

void PayloadWriter::u16(std::uint16_t v) {
  std::uint8_t b[2] = {static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
  raw(b, 2);
}

void PayloadWriter::u32(std::uint32_t v) {
  std::uint8_t b[4] = {static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
                       static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
  raw(b, 4);
}

void PayloadWriter::u64(std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
  raw(b, 8);
}

void PayloadWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void PayloadWriter::append(const Payload& p) {
  if (p.empty()) return;
  freeze_pending();
  out_.append(p);
}

Payload PayloadWriter::take() && {
  freeze_pending();
  chunk_.reset();
  return std::move(out_);
}

// ---------------------------------------------------------------------------
// PayloadCursor

bool PayloadCursor::read(std::uint8_t* out, std::size_t n) {
  if (remaining() < n) return false;
  while (n > 0) {
    const Payload::Segment& s = p_.segment(seg_);
    std::size_t in_seg = off_ - seg_off_;
    if (in_seg == s.len) {
      seg_off_ += s.len;
      ++seg_;
      continue;
    }
    std::size_t take = std::min(n, s.len - in_seg);
    std::memcpy(out, s.data() + in_seg, take);
    out += take;
    off_ += take;
    n -= take;
  }
  return true;
}

namespace {
Error short_read() { return Error{Errc::corrupt, "short read"}; }
}  // namespace

Result<std::uint8_t> PayloadCursor::u8() {
  std::uint8_t b;
  if (!read(&b, 1)) return short_read();
  return b;
}

Result<std::uint16_t> PayloadCursor::u16() {
  std::uint8_t b[2];
  if (!read(b, 2)) return short_read();
  return static_cast<std::uint16_t>((b[0] << 8) | b[1]);
}

Result<std::uint32_t> PayloadCursor::u32() {
  std::uint8_t b[4];
  if (!read(b, 4)) return short_read();
  return (static_cast<std::uint32_t>(b[0]) << 24) | (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) | b[3];
}

Result<std::uint64_t> PayloadCursor::u64() {
  std::uint8_t b[8];
  if (!read(b, 8)) return short_read();
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | b[i];
  return v;
}

Result<std::string> PayloadCursor::str() {
  auto n = u32();
  if (!n) return n.error();
  if (remaining() < n.value()) return short_read();
  std::string s(n.value(), '\0');
  read(reinterpret_cast<std::uint8_t*>(s.data()), n.value());
  return s;
}

Result<Payload> PayloadCursor::view(std::size_t n) {
  if (remaining() < n) return short_read();
  Payload out = p_.slice(off_, n);
  off_ += n;
  // Re-sync the segment cursor by walking forward.
  while (seg_ < p_.segment_count()) {
    const Payload::Segment& s = p_.segment(seg_);
    if (off_ - seg_off_ <= s.len) break;
    seg_off_ += s.len;
    ++seg_;
  }
  return out;
}

Result<Payload> PayloadCursor::blob() {
  auto n = u32();
  if (!n) return n.error();
  return view(n.value());
}

}  // namespace snipe
