#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace snipe {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

double Rng::next_double() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = next_double();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::next_range(double lo, double hi) { return lo + (hi - lo) * next_double(); }

Rng Rng::fork() { return Rng(next_u64()); }

Rng Rng::derive(std::uint64_t key) const {
  // Collapse the parent's full 256-bit state with the key through one more
  // splitmix pass, then reseed from scratch.  Reading (not advancing) the
  // state keeps derivation order-independent; folding all four words in
  // keeps distinct parents from colliding on equal keys.
  std::uint64_t sm = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 43);
  sm ^= key * 0x9e3779b97f4a7c15ULL;
  return Rng(splitmix64(sm));
}

std::uint64_t Rng::hash_name(const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace snipe
