#include "util/bytes.hpp"

#include <bit>

namespace snipe {

Bytes to_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }
std::string to_string(const Bytes& b) { return std::string(b.begin(), b.end()); }

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  u64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void ByteWriter::blob(const Bytes& b) {
  u32(static_cast<std::uint32_t>(b.size()));
  raw(b);
}

Result<std::uint8_t> ByteReader::u8() {
  if (!need(1)) return Error{Errc::corrupt, "short read (u8)"};
  return p_[off_++];
}

Result<std::uint16_t> ByteReader::u16() {
  if (!need(2)) return Error{Errc::corrupt, "short read (u16)"};
  std::uint16_t v = static_cast<std::uint16_t>(p_[off_] << 8 | p_[off_ + 1]);
  off_ += 2;
  return v;
}

Result<std::uint32_t> ByteReader::u32() {
  if (!need(4)) return Error{Errc::corrupt, "short read (u32)"};
  std::uint32_t v = (std::uint32_t{p_[off_]} << 24) | (std::uint32_t{p_[off_ + 1]} << 16) |
                    (std::uint32_t{p_[off_ + 2]} << 8) | std::uint32_t{p_[off_ + 3]};
  off_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::u64() {
  auto hi = u32();
  if (!hi) return hi.error();
  auto lo = u32();
  if (!lo) return lo.error();
  return (std::uint64_t{hi.value()} << 32) | lo.value();
}

Result<std::int32_t> ByteReader::i32() {
  auto v = u32();
  if (!v) return v.error();
  return static_cast<std::int32_t>(v.value());
}

Result<std::int64_t> ByteReader::i64() {
  auto v = u64();
  if (!v) return v.error();
  return static_cast<std::int64_t>(v.value());
}

Result<double> ByteReader::f64() {
  auto v = u64();
  if (!v) return v.error();
  return std::bit_cast<double>(v.value());
}

Result<std::string> ByteReader::str() {
  auto len = u32();
  if (!len) return len.error();
  if (!need(len.value())) return Error{Errc::corrupt, "short read (str body)"};
  std::string s(reinterpret_cast<const char*>(p_ + off_), len.value());
  off_ += len.value();
  return s;
}

Result<Bytes> ByteReader::blob() {
  auto len = u32();
  if (!len) return len.error();
  return raw(len.value());
}

Result<Bytes> ByteReader::raw(std::size_t n) {
  if (!need(n)) return Error{Errc::corrupt, "short read (raw)"};
  Bytes b(p_ + off_, p_ + off_ + n);
  off_ += n;
  return b;
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string hex_encode(const std::uint8_t* p, std::size_t n) {
  std::string out;
  out.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(kHexDigits[p[i] >> 4]);
    out.push_back(kHexDigits[p[i] & 0xf]);
  }
  return out;
}

std::string hex_encode(const Bytes& b) { return hex_encode(b.data(), b.size()); }

Result<Bytes> hex_decode(const std::string& s) {
  if (s.size() % 2 != 0) return Error{Errc::invalid_argument, "odd hex length"};
  Bytes out;
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    int hi = hex_value(s[i]), lo = hex_value(s[i + 1]);
    if (hi < 0 || lo < 0) return Error{Errc::invalid_argument, "non-hex character"};
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

}  // namespace snipe
