// Small string helpers shared across modules.
#pragma once

#include <string>
#include <vector>

namespace snipe {

/// Splits on a single character; adjacent separators yield empty fields.
std::vector<std::string> split(const std::string& s, char sep);

/// Strips ASCII whitespace from both ends.
std::string trim(const std::string& s);

/// True if `s` begins with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// Joins fields with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

}  // namespace snipe
