#include "util/log.hpp"

#include <cstdio>

#include "util/time.hpp"

namespace snipe {

namespace log_detail {

LogLevel& threshold() {
  static LogLevel level = LogLevel::warn;
  return level;
}

std::function<std::int64_t()>& time_source() {
  static std::function<std::int64_t()> source;
  return source;
}

void emit(LogLevel level, const std::string& component, const std::string& text) {
  static const char* names[] = {"TRACE", "DEBUG", "INFO ", "WARN ", "ERROR", "OFF"};
  std::string stamp = "--";
  if (auto& src = time_source(); src) stamp = format_time(src());
  std::fprintf(stderr, "[%s] %s %-20s %s\n", stamp.c_str(),
               names[static_cast<int>(level)], component.c_str(), text.c_str());
}

}  // namespace log_detail

LogLevel set_log_level(LogLevel level) {
  LogLevel old = log_detail::threshold();
  log_detail::threshold() = level;
  return old;
}

void set_log_time_source(std::function<std::int64_t()> source) {
  log_detail::time_source() = std::move(source);
}

std::string format_time(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%06llds", static_cast<long long>(t / 1'000'000'000),
                static_cast<long long>((t % 1'000'000'000) / 1'000));
  return buf;
}

}  // namespace snipe
