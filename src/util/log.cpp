#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/time.hpp"

namespace snipe {

namespace log_detail {

namespace {

/// Serializes emit() and guards the sink pointer: log lines from different
/// threads (or a -DSNIPE_SANITIZE=thread run) must not interleave.
std::mutex& emit_mutex() {
  static std::mutex mu;
  return mu;
}

LogSink& sink() {
  static LogSink s;  // nullptr = stderr
  return s;
}

LogLevel initial_threshold() {
  const char* env = std::getenv("SNIPE_LOG_LEVEL");
  return parse_log_level(env == nullptr ? "" : env, LogLevel::warn);
}

}  // namespace

LogLevel& threshold() {
  static LogLevel level = initial_threshold();
  return level;
}

std::function<std::int64_t()>& time_source() {
  static std::function<std::int64_t()> source;
  return source;
}

void emit(LogLevel level, const std::string& component, const std::string& text) {
  static const char* names[] = {"TRACE", "DEBUG", "INFO ", "WARN ", "ERROR", "OFF"};
  std::lock_guard<std::mutex> lock(emit_mutex());
  if (auto& s = sink(); s) {
    s(level, component, text);
    return;
  }
  std::string stamp = "--";
  if (auto& src = time_source(); src) stamp = format_time(src());
  std::fprintf(stderr, "[%s] %s %-20s %s\n", stamp.c_str(),
               names[static_cast<int>(level)], component.c_str(), text.c_str());
}

}  // namespace log_detail

LogLevel set_log_level(LogLevel level) {
  LogLevel old = log_detail::threshold();
  log_detail::threshold() = level;
  return old;
}

void set_log_time_source(std::function<std::int64_t()> source) {
  log_detail::time_source() = std::move(source);
}

LogSink set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(log_detail::emit_mutex());
  LogSink old = std::move(log_detail::sink());
  log_detail::sink() = std::move(sink);
  return old;
}

LogLevel parse_log_level(const std::string& name, LogLevel fallback) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower += static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  if (lower == "trace") return LogLevel::trace;
  if (lower == "debug") return LogLevel::debug;
  if (lower == "info") return LogLevel::info;
  if (lower == "warn" || lower == "warning") return LogLevel::warn;
  if (lower == "error") return LogLevel::error;
  if (lower == "off" || lower == "none") return LogLevel::off;
  return fallback;
}

std::string format_time(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%06llds", static_cast<long long>(t / 1'000'000'000),
                static_cast<long long>((t % 1'000'000'000) / 1'000));
  return buf;
}

}  // namespace snipe
