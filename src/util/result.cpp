#include "util/result.hpp"

namespace snipe {

const char* errc_name(Errc c) {
  switch (c) {
    case Errc::ok: return "ok";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::permission_denied: return "permission_denied";
    case Errc::unreachable: return "unreachable";
    case Errc::timeout: return "timeout";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::quota_exceeded: return "quota_exceeded";
    case Errc::state_error: return "state_error";
    case Errc::corrupt: return "corrupt";
    case Errc::io_error: return "io_error";
    case Errc::cancelled: return "cancelled";
  }
  return "unknown";
}

}  // namespace snipe
