// Ref-counted immutable buffer views for the zero-copy data plane.
//
// A Payload is an ordered list of segments, each a [offset, len) window into
// a shared immutable byte buffer.  Slicing and concatenation never copy
// bytes — a wire packet is a small pooled header segment plus a slice of the
// sender's original message buffer, and receiver-side reassembly of adjacent
// slices of one buffer coalesces back into a single segment aliasing that
// buffer.  The only copies left on the data path are the ones that change
// bytes: the fault injector's corruption (copy-on-write, see cow_xor) and
// flattening a payload that could not be coalesced (e.g. after a corrupted
// fragment was cloned).
//
// Ownership rule (DESIGN.md §data-plane): whoever holds a Payload may read
// it forever and mutate it never.  Producers hand buffers over by value
// (`Payload(Bytes)`) and must not retain a mutable reference.  The one
// sanctioned mutation, cow_xor, writes in place only when the segment's
// buffer has a single owner; otherwise it clones that segment first.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace snipe {

class Payload {
 public:
  using Buffer = std::shared_ptr<const Bytes>;

  /// One window into a shared buffer.
  struct Segment {
    Buffer buf;
    std::size_t off = 0;
    std::size_t len = 0;
    const std::uint8_t* data() const { return buf->data() + off; }
  };

  Payload() = default;
  /// Wraps a byte vector (moved, not copied) as a single-segment payload.
  /// Implicit on purpose: every legacy `send(addr, Bytes{...})` call site
  /// stays valid.
  Payload(Bytes bytes);  // NOLINT(google-explicit-constructor)
  /// Views [off, off+len) of an existing shared buffer.
  Payload(Buffer buf, std::size_t off, std::size_t len);
  explicit Payload(Buffer buf);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of segments (0 for an empty payload).
  std::size_t segment_count() const { return nsegs_; }
  const Segment& segment(std::size_t i) const {
    assert(i < nsegs_);
    return i < kInlineSegments ? inline_[i] : more_[i - kInlineSegments];
  }
  bool contiguous() const { return nsegs_ <= 1; }

  /// Pointer to the bytes; only valid when contiguous() (callers on the
  /// delivery path flatten first — see flatten()).
  const std::uint8_t* data() const {
    assert(contiguous());
    return nsegs_ == 0 ? nullptr : inline_[0].data();
  }

  /// A view of [off, off+len); shares buffers, copies nothing.
  /// Requires off + len <= size().
  Payload slice(std::size_t off, std::size_t len) const;

  /// Appends another payload's segments.  A segment that continues the
  /// previous one (same buffer, adjacent offsets) is coalesced, so
  /// reassembling fragments sliced from one message buffer yields a single
  /// contiguous segment again.
  void append(const Payload& p);
  void append(Payload&& p);

  /// Collapses a multi-segment payload into one freshly-owned segment
  /// (no-op when already contiguous).  The only copy on the receive path,
  /// and only taken when coalescing failed.
  void flatten();

  std::uint8_t operator[](std::size_t i) const;

  /// Copies all bytes to `out` (which must hold size() bytes).
  void copy_to(std::uint8_t* out) const;
  /// Materializes a fresh byte vector (test/diagnostic convenience).
  Bytes to_bytes() const;

  /// XORs the byte at `pos` with `mask`, cloning the containing segment
  /// first unless this payload holds the buffer's only reference — the
  /// fault injector's copy-on-write hook.  Everyone else sharing the bytes
  /// keeps seeing the original.
  void cow_xor(std::size_t pos, std::uint8_t mask);

  bool operator==(const Payload& o) const;
  bool operator==(const Bytes& o) const;

 private:
  static constexpr std::size_t kInlineSegments = 2;

  void push_segment(Buffer buf, std::size_t off, std::size_t len);
  Segment& seg_at(std::size_t i) {
    return i < kInlineSegments ? inline_[i] : more_[i - kInlineSegments];
  }

  Segment inline_[kInlineSegments];
  std::vector<Segment> more_;  ///< segments beyond the inline pair (rare)
  std::size_t nsegs_ = 0;
  std::size_t size_ = 0;
};

/// String view of a payload's bytes (mirror of to_string(const Bytes&)).
std::string to_string(const Payload& p);

/// Builds a Payload from header fields plus existing payloads without
/// copying the latter: primitive writes go to a small pooled scratch buffer
/// (reused across packets once every reference to it drops), append()
/// splices in shared segments.  Produces exactly the byte sequence a
/// ByteWriter would — the wire format is unchanged, only its ownership is.
class PayloadWriter {
 public:
  PayloadWriter() = default;
  PayloadWriter(const PayloadWriter&) = delete;
  PayloadWriter& operator=(const PayloadWriter&) = delete;
  PayloadWriter(PayloadWriter&&) = default;
  PayloadWriter& operator=(PayloadWriter&&) = default;

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void raw(const std::uint8_t* p, std::size_t n);
  /// Length-prefixed (u32) string, as ByteWriter::str.
  void str(const std::string& s);
  /// Length-prefixed (u32) blob, spliced in by reference.
  void blob(const Payload& p) {
    u32(static_cast<std::uint32_t>(p.size()));
    append(p);
  }
  /// Length-prefixed (u32) blob copied into the scratch buffer — for small
  /// freshly-built byte vectors (bitmaps) not worth sharing.
  void blob(const Bytes& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b.data(), b.size());
  }
  /// Splices `p`'s segments into the output without copying.
  void append(const Payload& p);

  std::size_t size() const { return out_.size() + pending_; }
  Payload take() &&;

 private:
  void ensure_chunk(std::size_t need);
  void freeze_pending();

  std::shared_ptr<Bytes> chunk_;   ///< pooled scratch buffer being filled
  std::size_t chunk_base_ = 0;     ///< start of the unfrozen tail in chunk_
  std::size_t pending_ = 0;        ///< bytes written to chunk_ since freeze
  Payload out_;
};

/// Bounds-checked big-endian reads over a (possibly multi-segment) payload,
/// mirroring ByteReader.  The fast path reads straight from the current
/// segment; fields straddling a segment boundary take a byte-at-a-time
/// fallback.  view(n) returns a zero-copy sub-slice.
class PayloadCursor {
 public:
  explicit PayloadCursor(const Payload& p) : p_(p) {}

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  Result<std::string> str();
  /// Length-prefixed (u32) blob as a zero-copy slice.
  Result<Payload> blob();
  /// The next n bytes as a zero-copy slice.
  Result<Payload> view(std::size_t n);

  std::size_t remaining() const { return p_.size() - off_; }

 private:
  bool read(std::uint8_t* out, std::size_t n);

  const Payload& p_;
  std::size_t off_ = 0;
  std::size_t seg_ = 0;      ///< segment containing off_
  std::size_t seg_off_ = 0;  ///< offset of seg_'s first byte in the payload
};

}  // namespace snipe
