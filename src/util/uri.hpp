// URI / URL / URN / LIFN handling.
//
// SNIPE names everything — hosts, processes, files, multicast groups,
// services — with URIs resolved through the RC registry (§3.1, §5.2):
//
//   * URLs  like  snipe://hostA:7201/daemon        (location-full)
//   * URNs  like  urn:snipe:proc:weather-ingest-17  (location-independent)
//   * LIFNs like  lifn://utk.edu/ckpt/job42/3       (Location-Independent
//     File Names, per Browne et al. [13] — stable names for file contents
//     that may be replicated at many locations)
//
// This parser covers the subset of RFC 2396 those forms need.
#pragma once

#include <string>

#include "util/result.hpp"

namespace snipe {

/// A parsed URI.  For `urn:` names, `scheme` is "urn" and `path` carries the
/// namespace-specific string ("snipe:proc:weather-ingest-17").
struct Uri {
  std::string scheme;  ///< "snipe", "urn", "lifn", "http", ...
  std::string host;    ///< authority host (empty for URNs)
  int port = 0;        ///< authority port, 0 if absent
  std::string path;    ///< path without leading '/', or the URN NSS

  /// Reassembles the canonical text form.
  std::string to_string() const;

  bool is_urn() const { return scheme == "urn"; }
  bool is_lifn() const { return scheme == "lifn"; }

  friend bool operator==(const Uri&, const Uri&) = default;
};

/// Parses a URI; fails with Errc::invalid_argument on malformed input.
Result<Uri> parse_uri(const std::string& text);

/// Builders for the distinguished names the paper assigns to entities.
/// (§5.2.1: "The distinguished URL for the host", §5.2.3: "The
/// distinguished URN for that process".)
std::string host_url(const std::string& hostname, int port = 7201);
std::string process_urn(const std::string& name);
std::string group_urn(const std::string& name);
std::string service_lifn(const std::string& authority, const std::string& name);

}  // namespace snipe
