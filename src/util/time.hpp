// Simulated-time primitives.
//
// The whole of SNIPE runs on a discrete-event simulator with a virtual
// clock (see DESIGN.md §5.1).  Time is an integral count of nanoseconds so
// that event ordering is exact and runs are bit-reproducible.
#pragma once

#include <cstdint>
#include <string>

namespace snipe {

/// A point in simulated time, in nanoseconds since the start of the run.
using SimTime = std::int64_t;

/// A span of simulated time, in nanoseconds.
using SimDuration = std::int64_t;

namespace duration {
constexpr SimDuration nanoseconds(std::int64_t n) { return n; }
constexpr SimDuration microseconds(std::int64_t n) { return n * 1'000; }
constexpr SimDuration milliseconds(std::int64_t n) { return n * 1'000'000; }
constexpr SimDuration seconds(std::int64_t n) { return n * 1'000'000'000; }
constexpr SimDuration minutes(std::int64_t n) { return seconds(n * 60); }
constexpr SimDuration hours(std::int64_t n) { return minutes(n * 60); }
}  // namespace duration

/// Converts a simulated duration to fractional seconds (for reporting only;
/// never used for event ordering).
constexpr double to_seconds(SimDuration d) { return static_cast<double>(d) * 1e-9; }

/// Converts fractional seconds to a simulated duration, truncating toward
/// zero.  Intended for configuration values, not for arithmetic on times.
constexpr SimDuration from_seconds(double s) {
  return static_cast<SimDuration>(s * 1e9);
}

/// Renders a time as "12.345678s" for logs and reports.
std::string format_time(SimTime t);

}  // namespace snipe
