#include "util/strings.hpp"

#include <cctype>

namespace snipe {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    auto pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace snipe
