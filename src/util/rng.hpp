// Deterministic random number generation.
//
// Every stochastic element of the simulation (packet loss, host failures,
// jitter, workload arrival) draws from an explicitly seeded Rng so that
// runs are reproducible.  The generator is xoshiro256** seeded through
// SplitMix64, the standard recipe for expanding a 64-bit seed.
#pragma once

#include <cstdint>
#include <string>

namespace snipe {

class Rng {
 public:
  /// Seeds the stream.  Identical seeds produce identical sequences on all
  /// platforms (no dependence on libstdc++ distribution internals).
  explicit Rng(std::uint64_t seed = 0x5a1fe5eedULL);

  /// Uniform over all 64-bit values.
  std::uint64_t next_u64();

  /// Uniform in [0, bound).  bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed with the given mean (> 0); used for
  /// failure inter-arrival times (MTBF/MTTR churn in bench_availability).
  double next_exponential(double mean);

  /// Uniform double in [lo, hi).
  double next_range(double lo, double hi);

  /// Derives an independent child stream; used to give each simulated host
  /// its own RNG from one run-level seed.  Advances this stream (successive
  /// forks differ), so fork order matters for reproducibility.
  Rng fork();

  /// Derives an independent child stream keyed by `key` WITHOUT advancing
  /// this stream: the same (parent state, key) pair always yields the same
  /// child, no matter how many other keys were derived before it.  This is
  /// what makes per-entity random streams placement-invariant — the sharded
  /// fault injector derives one lane per source host by name hash, so the
  /// decision sequence a host sees does not depend on which shard it (or
  /// any other host) runs on.
  Rng derive(std::uint64_t key) const;

  /// FNV-1a of a string, the stable name hash used as a derive() key.
  static std::uint64_t hash_name(const std::string& name);

 private:
  std::uint64_t s_[4];
};

}  // namespace snipe
