// Leveled, component-tagged logging, aware of simulated time.
//
// The simulator installs a time source so that log lines carry the virtual
// clock, which is what makes distributed traces (spawn on host A, message
// at t, migration at t') readable.  Logging defaults to `warn` so tests and
// benches stay quiet; examples turn on `info`.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace snipe {

enum class LogLevel { trace = 0, debug, info, warn, error, off };

/// Receives every emitted record (already threshold-filtered).  Installed
/// by tests that capture output; nullptr restores the stderr sink.
using LogSink = std::function<void(LogLevel level, const std::string& component,
                                   const std::string& text)>;

namespace log_detail {
/// Global minimum level; messages below it are discarded cheaply.  First
/// use honors the SNIPE_LOG_LEVEL environment variable (trace, debug,
/// info, warn, error, off).
LogLevel& threshold();
/// Source of the current simulated time, installed by the event engine.
std::function<std::int64_t()>& time_source();
/// Emits one formatted line (serialized by an internal mutex); exposed for
/// tests that capture output.
void emit(LogLevel level, const std::string& component, const std::string& text);
}  // namespace log_detail

/// Sets the global log threshold; returns the previous one.
LogLevel set_log_level(LogLevel level);

/// Installs the virtual-clock source (nullptr restores "no timestamp").
void set_log_time_source(std::function<std::int64_t()> source);

/// Routes records to `sink` instead of stderr; returns the previous sink
/// (nullptr meaning stderr) so tests can restore it.
LogSink set_log_sink(LogSink sink);

/// Parses a level name ("warn", "DEBUG", ...); returns `fallback` when the
/// name is unknown or empty.
LogLevel parse_log_level(const std::string& name, LogLevel fallback);

/// A named logger; cheap to construct, typically one per component instance
/// ("daemon@hostA", "rcds@catalog2", ...).
class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  template <typename... Args>
  void trace(const Args&... args) const { write(LogLevel::trace, args...); }
  template <typename... Args>
  void debug(const Args&... args) const { write(LogLevel::debug, args...); }
  template <typename... Args>
  void info(const Args&... args) const { write(LogLevel::info, args...); }
  template <typename... Args>
  void warn(const Args&... args) const { write(LogLevel::warn, args...); }
  template <typename... Args>
  void error(const Args&... args) const { write(LogLevel::error, args...); }

  const std::string& component() const { return component_; }

 private:
  template <typename... Args>
  void write(LogLevel level, const Args&... args) const {
    if (level < log_detail::threshold()) return;
    std::ostringstream os;
    (os << ... << args);
    log_detail::emit(level, component_, os.str());
  }

  std::string component_;
};

}  // namespace snipe
