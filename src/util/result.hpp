// A small result type used across the SNIPE libraries.
//
// C++20 has no std::expected, and exceptions are a poor fit for the
// high-frequency failure paths of a networked system (lookup misses, lost
// packets, permission denials), so every fallible SNIPE API returns a
// Result<T>.  Errors carry a code plus a human-readable message.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace snipe {

/// Machine-readable failure categories shared by all SNIPE components.
enum class Errc {
  ok = 0,
  not_found,          ///< name/URI/replica/task does not exist
  already_exists,     ///< duplicate registration
  permission_denied,  ///< failed authentication or authorization (§4)
  unreachable,        ///< no route / all links down / host dead
  timeout,            ///< operation exceeded its deadline
  invalid_argument,   ///< malformed URI, bad message, bad parameter
  quota_exceeded,     ///< playground or daemon resource quota hit (§3.6)
  state_error,        ///< operation illegal in current state
  corrupt,            ///< integrity check (hash/signature) failed
  io_error,           ///< file server or sink/source failure
  cancelled,          ///< task killed or migrated away mid-operation
};

/// Returns the canonical short name for an error code ("not_found", ...).
const char* errc_name(Errc c);

/// An error: a category code plus context.
struct Error {
  Errc code = Errc::ok;
  std::string message;

  std::string to_string() const {
    return std::string(errc_name(code)) + (message.empty() ? "" : ": " + message);
  }
};

/// Result<T> holds either a value or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Result(Error err) : state_(std::in_place_index<1>, std::move(err)) {}
  Result(Errc code, std::string message)
      : state_(std::in_place_index<1>, Error{code, std::move(message)}) {}

  bool ok() const { return state_.index() == 0; }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<0>(state_);
  }
  T& value() & {
    assert(ok());
    return std::get<0>(state_);
  }
  T&& take() && {
    assert(ok());
    return std::get<0>(std::move(state_));
  }
  /// Returns the value, or `fallback` on error.
  T value_or(T fallback) const& { return ok() ? std::get<0>(state_) : std::move(fallback); }

  const Error& error() const {
    assert(!ok());
    return std::get<1>(state_);
  }
  Errc code() const { return ok() ? Errc::ok : error().code; }

 private:
  std::variant<T, Error> state_;
};

/// Specialization for operations that produce no value.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error err) : err_(std::move(err)), failed_(true) {}
  Result(Errc code, std::string message)
      : err_{code, std::move(message)}, failed_(true) {}

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  /// Asserts success; mirrors Result<T>::value() so call sites can uniformly
  /// write `op().value()` to mean "must succeed".
  void value() const { assert(ok()); }
  const Error& error() const {
    assert(failed_);
    return err_;
  }
  Errc code() const { return failed_ ? err_.code : Errc::ok; }

 private:
  Error err_;
  bool failed_ = false;
};

/// Convenience constructor for the common "no value" success.
inline Result<void> ok_result() { return Result<void>(); }

}  // namespace snipe
