#include "obs/flight.hpp"

#include <csignal>
#include <cstdio>
#include <cstdlib>

#include "obs/trace.hpp"
#include "util/time.hpp"

namespace snipe::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

std::size_t FlightRecorder::capacity_from_env(const char* value) {
  if (value == nullptr || *value == '\0') return kDefaultCapacity;
  char* end = nullptr;
  unsigned long long v = std::strtoull(value, &end, 0);
  if (end == value || v == 0) return kDefaultCapacity;
  return static_cast<std::size_t>(v);
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* instance = [] {  // intentionally leaked
    return new FlightRecorder(capacity_from_env(std::getenv("SNIPE_FLIGHT_CAPACITY")));
  }();
  return *instance;
}

void FlightRecorder::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = enabled;
}

bool FlightRecorder::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  size_ = 0;
  dropped_ = 0;
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(capacity_);
  next_ = 0;
  size_ = 0;
  dropped_ = 0;
}

std::size_t FlightRecorder::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void FlightRecorder::record(std::string host, std::string cat, std::string what,
                            std::string detail) {
  // Timestamp with the tracer's clock so flight lines line up with trace
  // events (virtual time inside a simulation, wall time outside).
  std::int64_t ts = Tracer::global().now();
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  FlightEvent e{ts, std::move(host), std::move(cat), std::move(what), std::move(detail)};
  if (size_ < capacity_) {
    ring_.push_back(std::move(e));
    ++size_;
    next_ = size_ % capacity_;
  } else {
    ring_[next_] = std::move(e);
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
  }
}

std::vector<FlightEvent> FlightRecorder::events(const std::string& host) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightEvent> out;
  out.reserve(size_);
  std::size_t start = size_ < capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < size_; ++i) {
    const FlightEvent& e = ring_[(start + i) % size_];
    if (!host.empty() && !e.host.empty() && e.host != host) continue;
    out.push_back(e);
  }
  return out;
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

std::uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::uint64_t>(size_) + dropped_;
}

std::string FlightRecorder::dump(const std::string& host) const {
  std::vector<FlightEvent> all = events(host);
  if (all.empty())
    return host.empty() ? "(flight recorder empty)"
                        : "(no flight events for host " + host + ")";
  std::string out = "flight recorder (" + std::to_string(all.size()) + " events";
  std::uint64_t lost = dropped();
  if (lost > 0) out += ", " + std::to_string(lost) + " older dropped";
  out += "):\n";
  for (const auto& e : all) {
    out += format_time(e.ts);
    out += " [";
    out += e.host.empty() ? "*" : e.host;
    out += "] ";
    out += e.cat;
    out += '/';
    out += e.what;
    if (!e.detail.empty()) {
      out += ' ';
      out += e.detail;
    }
    out += '\n';
  }
  return out;
}

namespace {
void (*previous_abort_handler)(int) = nullptr;

// Best-effort by design: string formatting is not async-signal-safe, but a
// SIGABRT from a sanitizer or assert is already past the point of graceful
// recovery — a garbled dump beats no postmortem at all.
void abort_with_dump(int sig) {
  std::string dump = FlightRecorder::global().dump();
  std::fputs("\n=== flight recorder dump (SIGABRT) ===\n", stderr);
  std::fputs(dump.c_str(), stderr);
  std::fputs("=== end flight recorder dump ===\n", stderr);
  std::fflush(stderr);
  std::signal(sig, previous_abort_handler == nullptr ? SIG_DFL : previous_abort_handler);
  std::raise(sig);
}
}  // namespace

void FlightRecorder::install_abort_handler() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  auto prev = std::signal(SIGABRT, abort_with_dump);
  if (prev != SIG_ERR && prev != SIG_DFL && prev != SIG_IGN && prev != abort_with_dump)
    previous_abort_handler = prev;
}

}  // namespace snipe::obs
