// Per-host flight recorder: a bounded, mutex-guarded ring of recent
// structured events (protocol state transitions, RTO fires, route switches,
// fault injections, RCDS anti-entropy rounds, RM liveness decisions) kept
// alongside the tracer so a failed run carries its own postmortem.
//
// The tracer answers "show me the whole timeline"; the flight recorder
// answers "what were the last N notable things before the crash".  It is
// always on (recording never perturbs the simulation — no RNG draws, no
// timers, no wire bytes), deliberately small, and dumpable as plain text:
// automatically when a chaos invariant trips (the chaos suite's failure
// listener), when a sanitizer aborts (install_abort_handler), or on demand
// from the console (`flight [host]`).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace snipe::obs {

struct FlightEvent {
  std::int64_t ts = 0;  ///< trace-clock nanoseconds (virtual inside a sim)
  std::string host;     ///< originating host ("" = whole-world event)
  std::string cat;      ///< component: "srudp", "stream", "fault", "rm", ...
  std::string what;     ///< event kind: "rto", "route_switch", "crash", ...
  std::string detail;   ///< free-form context
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder every component reports into.  Its ring
  /// capacity is kDefaultCapacity unless SNIPE_FLIGHT_CAPACITY is set in
  /// the environment (any strtoull base; read once, at first use).
  static FlightRecorder& global();

  /// Parses a SNIPE_FLIGHT_CAPACITY value: any strtoull base, falling back
  /// to kDefaultCapacity on null/empty/non-numeric/zero.  Exposed so the
  /// env contract is unit-testable without racing global()'s one-shot read.
  static std::size_t capacity_from_env(const char* value);

  void set_enabled(bool enabled);
  bool enabled() const;

  /// Drops every recorded event and resets the dropped count.
  void clear();
  /// Changing capacity also clears.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  /// Appends one event, timestamped with the tracer's clock (virtual time
  /// inside a simulation).  Oldest events are overwritten when full.
  void record(std::string host, std::string cat, std::string what,
              std::string detail = {});

  /// Events oldest-first, optionally filtered to one host ("" = all;
  /// world-level events with an empty host always match).
  std::vector<FlightEvent> events(const std::string& host = {}) const;
  std::size_t size() const;
  std::uint64_t dropped() const;
  /// Events ever recorded (size() + dropped()); the telemetry exporter's
  /// cursor for "what is new since the last beacon".
  std::uint64_t total_recorded() const;

  /// Human-readable dump, one "12.345678s [host] cat/what detail" line per
  /// event, newest last; says so when empty.
  std::string dump(const std::string& host = {}) const;

  /// Installs a SIGABRT handler that dumps the global recorder to stderr —
  /// the hook that turns a sanitizer abort or failed assert into a
  /// postmortem.  Idempotent; chains to the previously installed handler.
  static void install_abort_handler();

 private:
  mutable std::mutex mu_;
  bool enabled_ = true;
  std::vector<FlightEvent> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace snipe::obs
