#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace snipe::obs {

void Gauge::add(double delta) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

std::vector<double> Histogram::default_bounds() {
  // Milliseconds, 0.01 .. 60000, roughly 1-2-5 per decade: covers a Myrinet
  // RTT and a 30 s anti-entropy lag in one instrument.
  return {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1,    2,    5,     10,   20,
          50,   100,  200,  500, 1000, 2000, 5000, 10000, 30000, 60000};
}

Histogram::Histogram(const std::atomic<bool>* enabled, std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1), enabled_(enabled) {}

void Histogram::observe(double v) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  std::size_t i = std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

double Histogram::quantile(double q) const {
  std::uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based), then walk the buckets.
  double rank = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    std::uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      double lo = i == 0 ? 0 : bounds_[i - 1];
      // The +inf bucket has no upper edge; report its lower edge.
      if (i == bounds_.size()) return lo;
      double hi = bounds_[i];
      double into = (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(into, 0.0, 1.0);
    }
    seen += in_bucket;
  }
  return bounds_.empty() ? 0 : bounds_.back();
}

SourceHandle& SourceHandle::operator=(SourceHandle&& other) noexcept {
  if (this != &other) {
    release();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void SourceHandle::release() {
  if (registry_ != nullptr) registry_->retire_source(id_);
  registry_ = nullptr;
  id_ = 0;
}

void SourceGroup::add(MetricsRegistry& registry, std::string name,
                      std::function<std::uint64_t()> fn) {
  handles_.push_back(registry.add_source(std::move(name), std::move(fn)));
}

void SourceGroup::add(std::string name, std::function<std::uint64_t()> fn) {
  add(MetricsRegistry::global(), std::move(name), std::move(fn));
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = new MetricsRegistry();  // intentionally leaked
  return *instance;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(&enabled_))).first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(&enabled_))).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = Histogram::default_bounds();
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(
                                new Histogram(&enabled_, std::move(bounds))))
             .first;
  }
  return *it->second;
}

SourceHandle MetricsRegistry::add_source(std::string name,
                                         std::function<std::uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t id = next_source_id_++;
  sources_[id] = Source{std::move(name), std::move(fn)};
  return SourceHandle(this, id);
}

void MetricsRegistry::retire_source(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(id);
  if (it == sources_.end()) return;
  retained_[it->second.name] += it->second.fn();
  sources_.erase(it);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->v_.store(0, std::memory_order_relaxed);
  for (auto& [name, g] : gauges_) g->v_.store(0, std::memory_order_relaxed);
  for (auto& [name, h] : histograms_) {
    for (auto& b : h->buckets_) b.store(0, std::memory_order_relaxed);
    h->count_.store(0, std::memory_order_relaxed);
    h->sum_.store(0, std::memory_order_relaxed);
  }
  retained_.clear();
}

Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, MetricValue> merged;

  auto counter_entry = [&merged](const std::string& name) -> MetricValue& {
    auto [it, inserted] = merged.try_emplace(name);
    if (inserted) {
      it->second.kind = MetricValue::Kind::counter;
      it->second.name = name;
    }
    return it->second;
  };

  for (const auto& [name, c] : counters_)
    counter_entry(name).value += static_cast<double>(c->value());
  for (const auto& [name, total] : retained_)
    counter_entry(name).value += static_cast<double>(total);
  for (const auto& [id, source] : sources_)
    counter_entry(source.name).value += static_cast<double>(source.fn());

  for (const auto& [name, g] : gauges_) {
    MetricValue v;
    v.kind = MetricValue::Kind::gauge;
    v.name = name;
    v.value = g->value();
    merged[name] = v;
  }
  for (const auto& [name, h] : histograms_) {
    MetricValue v;
    v.kind = MetricValue::Kind::histogram;
    v.name = name;
    v.count = h->count();
    v.sum = h->sum();
    v.p50 = h->quantile(0.50);
    v.p95 = h->quantile(0.95);
    v.p99 = h->quantile(0.99);
    merged[name] = v;
  }

  Snapshot out;
  out.reserve(merged.size());
  for (auto& [name, v] : merged) out.push_back(std::move(v));
  return out;
}

std::vector<HistogramBuckets> MetricsRegistry::histogram_buckets() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramBuckets> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramBuckets b;
    b.name = name;
    b.bounds = h->bounds_;
    b.buckets.reserve(h->buckets_.size());
    for (const auto& bucket : h->buckets_)
      b.buckets.push_back(bucket.load(std::memory_order_relaxed));
    b.count = h->count();
    b.sum = h->sum();
    out.push_back(std::move(b));
  }
  return out;
}

std::string MetricsRegistry::format_text() const {
  std::string out;
  char line[256];
  for (const MetricValue& m : snapshot()) {
    switch (m.kind) {
      case MetricValue::Kind::counter:
        std::snprintf(line, sizeof(line), "%-36s %.0f\n", m.name.c_str(), m.value);
        break;
      case MetricValue::Kind::gauge:
        std::snprintf(line, sizeof(line), "%-36s %g\n", m.name.c_str(), m.value);
        break;
      case MetricValue::Kind::histogram:
        std::snprintf(line, sizeof(line),
                      "%-36s count=%llu sum=%.3f p50=%.3f p95=%.3f p99=%.3f\n",
                      m.name.c_str(), static_cast<unsigned long long>(m.count), m.sum,
                      m.p50, m.p95, m.p99);
        break;
    }
    out += line;
  }
  return out;
}

}  // namespace snipe::obs
