// Virtual-time tracing: span and instant events recorded into a bounded
// ring buffer and exportable as Chrome `trace_event` JSON, so a spawn on
// host A -> SRUDP retransmit -> multipath failover -> migration sequence
// renders as one timeline in chrome://tracing or https://ui.perfetto.dev.
//
// Timestamps come from an installed clock — the simnet Engine installs its
// virtual clock for its lifetime (the same pattern as set_log_time_source
// in util/log.hpp) — and fall back to a wall clock so the tracer also
// works outside a simulation.  Each event carries a category ("transport",
// "rcds", "rm", "daemon", "core", ...) which becomes a named track in the
// exported trace.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace snipe::obs {

struct TraceEvent {
  enum class Phase : char {
    complete = 'X',  ///< span with start + duration
    instant = 'i',
    flow_start = 's',  ///< first hop of a cross-host causal flow
    flow_step = 't',   ///< intermediate hop (tx, retransmit, rx, ...)
    flow_end = 'f',    ///< final delivery hop
  };
  Phase phase = Phase::instant;
  std::string cat;
  std::string name;
  std::int64_t ts = 0;   ///< nanoseconds (virtual or wall)
  std::int64_t dur = 0;  ///< nanoseconds, complete events only
  std::uint64_t id = 0;  ///< flow binding id (flow_* phases), 0 = none
  std::vector<std::pair<std::string, std::string>> args;
};

/// Handle for an in-flight span; 0 is "null" (e.g. tracer disabled at
/// begin time) and safe to end.
using SpanId = std::uint64_t;

class Tracer {
 public:
  using Args = std::vector<std::pair<std::string, std::string>>;

  explicit Tracer(std::size_t capacity = 16384);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer every component reports into.
  static Tracer& global();

  void set_enabled(bool enabled);
  bool enabled() const;

  /// Flow recording is a separate, off-by-default switch: the trace context
  /// is always minted and carried on the wire (so enabling it cannot change
  /// packet bytes or virtual timestamps — the replay contract), but the
  /// per-fragment flow events are only recorded when this is on.  The check
  /// is one relaxed atomic load, cheap enough for the per-fragment path.
  void set_flow_enabled(bool enabled) {
    flow_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool flow_enabled() const { return flow_enabled_.load(std::memory_order_relaxed); }

  /// Installs the time source (nullptr restores the wall clock).
  void set_clock(std::function<std::int64_t()> clock);
  /// Current trace time: installed clock, else nanoseconds of wall time
  /// since the process started.
  std::int64_t now() const;

  /// Drops every recorded event (open spans survive) and resets the
  /// dropped-event count.  `set_capacity` also clears.
  void clear();
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  /// Records a zero-duration event.
  void instant(std::string cat, std::string name, Args args = {});

  /// Records one hop of a causal flow (Chrome phases 's'/'t'/'f', bound by
  /// `id`).  No-op unless both enabled() and flow_enabled(); call sites on
  /// hot paths should check flow_enabled() before building args.
  void flow(TraceEvent::Phase phase, std::string cat, std::string name, std::uint64_t id,
            Args args = {});

  /// Starts a span; `end_span` records it as a complete event stamped with
  /// the begin time and the elapsed duration.  Spans may cross async
  /// callbacks — carry the SpanId in the completion.
  SpanId begin_span(std::string cat, std::string name);
  void end_span(SpanId id, Args args = {});

  /// Records a pre-measured complete event.
  void complete(std::string cat, std::string name, std::int64_t ts, std::int64_t dur,
                Args args = {});

  /// Events in record order, oldest first (the buffer keeps the newest
  /// `capacity()` events; `dropped()` counts the overwritten ones).
  std::vector<TraceEvent> events() const;
  /// Events in *canonical* order: stably sorted by (ts, cat, name, phase,
  /// id, dur).  Record order interleaves nondeterministically when several
  /// shard threads trace concurrently; the canonical order is a pure
  /// function of the per-timestamp event multiset, which the sharded
  /// engine's determinism contract preserves across shard counts — digest
  /// this, not events(), to compare sharded runs (see DESIGN.md
  /// §sharded-engine).
  std::vector<TraceEvent> events_canonical() const;
  std::uint64_t dropped() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}); timestamps in
  /// microseconds, one named track per category.
  std::string chrome_json() const;
  /// Writes chrome_json() to `path`; returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  struct OpenSpan {
    std::string cat;
    std::string name;
    std::int64_t start = 0;
  };

  void push(TraceEvent event);

  mutable std::mutex mu_;
  bool enabled_ = true;
  std::atomic<bool> flow_enabled_{false};
  std::function<std::int64_t()> clock_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;  ///< ring write index
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  std::map<SpanId, OpenSpan> open_;
  SpanId next_span_ = 1;
};

}  // namespace snipe::obs
