#include "obs/fleet.hpp"

#include <algorithm>
#include <cstdio>
#include <string_view>

#include "util/time.hpp"

namespace snipe::obs {

namespace {

/// Upper bound on any decoded element count: wire data is untrusted, and a
/// corrupt length prefix must not turn into a multi-gigabyte allocation.
constexpr std::uint32_t kMaxWireElements = 1u << 20;

Error corrupt(const char* what) { return Error{Errc::corrupt, what}; }

}  // namespace

// ---------- HistogramSketch ----------

bool HistogramSketch::merge(const HistogramSketch& other) {
  if (other.buckets.size() != other.bounds.size() + 1) return false;
  if (bounds.empty() && buckets.empty()) {
    *this = other;
    return true;
  }
  if (bounds != other.bounds || buckets.size() != other.buckets.size()) return false;
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
  return true;
}

double HistogramSketch::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      double lo = i == 0 ? 0 : bounds[i - 1];
      if (i == bounds.size()) return lo;
      double hi = bounds[i];
      double into = (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(into, 0.0, 1.0);
    }
    seen += in_bucket;
  }
  return bounds.empty() ? 0 : bounds.back();
}

void HistogramSketch::encode(ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(bounds.size()));
  for (double b : bounds) w.f64(b);
  w.u32(static_cast<std::uint32_t>(buckets.size()));
  for (std::uint64_t b : buckets) w.u64(b);
  w.u64(count);
  w.f64(sum);
}

Result<HistogramSketch> HistogramSketch::decode(ByteReader& r) {
  HistogramSketch s;
  auto nb = r.u32();
  if (!nb) return nb.error();
  if (nb.value() > kMaxWireElements) return corrupt("sketch bounds count");
  s.bounds.reserve(nb.value());
  for (std::uint32_t i = 0; i < nb.value(); ++i) {
    auto v = r.f64();
    if (!v) return v.error();
    s.bounds.push_back(v.value());
  }
  auto nk = r.u32();
  if (!nk) return nk.error();
  if (nk.value() != nb.value() + 1) return corrupt("sketch bucket count");
  s.buckets.reserve(nk.value());
  for (std::uint32_t i = 0; i < nk.value(); ++i) {
    auto v = r.u64();
    if (!v) return v.error();
    s.buckets.push_back(v.value());
  }
  auto count = r.u64();
  if (!count) return count.error();
  s.count = count.value();
  auto sum = r.f64();
  if (!sum) return sum.error();
  s.sum = sum.value();
  return s;
}

// ---------- TelemetryBeacon ----------

namespace {

constexpr std::uint8_t kBeaconVersion = 1;

void encode_flight(ByteWriter& w, const FlightEvent& e) {
  w.i64(e.ts);
  w.str(e.host);
  w.str(e.cat);
  w.str(e.what);
  w.str(e.detail);
}

Result<FlightEvent> decode_flight(ByteReader& r) {
  FlightEvent e;
  auto ts = r.i64();
  if (!ts) return ts.error();
  e.ts = ts.value();
  for (std::string* field : {&e.host, &e.cat, &e.what, &e.detail}) {
    auto s = r.str();
    if (!s) return s.error();
    *field = std::move(s).take();
  }
  return e;
}

Result<std::uint32_t> read_count(ByteReader& r, const char* what) {
  auto n = r.u32();
  if (!n) return n.error();
  if (n.value() > kMaxWireElements) return corrupt(what);
  return n.value();
}

}  // namespace

Bytes TelemetryBeacon::encode() const {
  ByteWriter w;
  w.u8(kBeaconVersion);
  w.str(host);
  w.u64(seq);
  w.i64(ts);
  w.i64(period_ns);
  w.u8(full ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(counters.size()));
  for (const auto& [name, v] : counters) {
    w.str(name);
    w.f64(v);
  }
  w.u32(static_cast<std::uint32_t>(gauges.size()));
  for (const auto& [name, v] : gauges) {
    w.str(name);
    w.f64(v);
  }
  w.u32(static_cast<std::uint32_t>(sketches.size()));
  for (const auto& [name, sketch] : sketches) {
    w.str(name);
    sketch.encode(w);
  }
  w.u32(static_cast<std::uint32_t>(flight.size()));
  for (const auto& e : flight) encode_flight(w, e);
  return std::move(w).take();
}

Result<TelemetryBeacon> TelemetryBeacon::decode(const Bytes& wire) {
  ByteReader r(wire);
  auto version = r.u8();
  if (!version) return version.error();
  if (version.value() != kBeaconVersion) return corrupt("beacon version");
  TelemetryBeacon b;
  auto host = r.str();
  if (!host) return host.error();
  b.host = std::move(host).take();
  auto seq = r.u64();
  if (!seq) return seq.error();
  b.seq = seq.value();
  auto ts = r.i64();
  if (!ts) return ts.error();
  b.ts = ts.value();
  auto period = r.i64();
  if (!period) return period.error();
  b.period_ns = period.value();
  auto full = r.u8();
  if (!full) return full.error();
  b.full = full.value() != 0;

  auto nc = read_count(r, "beacon counter count");
  if (!nc) return nc.error();
  b.counters.reserve(nc.value());
  for (std::uint32_t i = 0; i < nc.value(); ++i) {
    auto name = r.str();
    if (!name) return name.error();
    auto v = r.f64();
    if (!v) return v.error();
    b.counters.emplace_back(std::move(name).take(), v.value());
  }
  auto ng = read_count(r, "beacon gauge count");
  if (!ng) return ng.error();
  b.gauges.reserve(ng.value());
  for (std::uint32_t i = 0; i < ng.value(); ++i) {
    auto name = r.str();
    if (!name) return name.error();
    auto v = r.f64();
    if (!v) return v.error();
    b.gauges.emplace_back(std::move(name).take(), v.value());
  }
  auto ns = read_count(r, "beacon sketch count");
  if (!ns) return ns.error();
  b.sketches.reserve(ns.value());
  for (std::uint32_t i = 0; i < ns.value(); ++i) {
    auto name = r.str();
    if (!name) return name.error();
    auto sketch = HistogramSketch::decode(r);
    if (!sketch) return sketch.error();
    b.sketches.emplace_back(std::move(name).take(), std::move(sketch).take());
  }
  auto nf = read_count(r, "beacon flight count");
  if (!nf) return nf.error();
  b.flight.reserve(nf.value());
  for (std::uint32_t i = 0; i < nf.value(); ++i) {
    auto e = decode_flight(r);
    if (!e) return e.error();
    b.flight.push_back(std::move(e).take());
  }
  if (!r.done()) return corrupt("trailing beacon bytes");
  return b;
}

// ---------- BeaconBuilder ----------

BeaconBuilder::BeaconBuilder(Options options) : options_(std::move(options)) {
  if (options_.full_every == 0) options_.full_every = 1;
}

MetricsRegistry& BeaconBuilder::registry() const {
  return options_.registry != nullptr ? *options_.registry : MetricsRegistry::global();
}

FlightRecorder& BeaconBuilder::flight() const {
  return options_.flight != nullptr ? *options_.flight : FlightRecorder::global();
}

TelemetryBeacon BeaconBuilder::build(std::int64_t now_ns) {
  ++seq_;
  TelemetryBeacon b;
  b.host = options_.host;
  b.seq = seq_;
  b.ts = now_ns;
  b.period_ns = options_.period_ns;
  b.full = seq_ == 1 || seq_ % options_.full_every == 0;

  // Counters and gauges from the snapshot (which folds pull sources and
  // retained totals into counter entries, exactly what should be exported).
  for (const MetricValue& m : registry().snapshot()) {
    if (m.kind == MetricValue::Kind::counter) {
      double last = 0;
      if (auto it = last_counters_.find(m.name); it != last_counters_.end())
        last = it->second;
      // A value below the baseline means the registry was reset mid-run;
      // re-export from zero and let the next full beacon reconcile.
      double delta = m.value >= last ? m.value - last : m.value;
      if (b.full)
        b.counters.emplace_back(m.name, m.value);
      else if (delta != 0)
        b.counters.emplace_back(m.name, delta);
      last_counters_[m.name] = m.value;
    } else if (m.kind == MetricValue::Kind::gauge) {
      auto it = last_gauges_.find(m.name);
      bool changed = it == last_gauges_.end() || it->second != m.value;
      if (b.full || changed) b.gauges.emplace_back(m.name, m.value);
      last_gauges_[m.name] = m.value;
    }
  }

  // Histograms as raw bucket arrays — the mergeable form.
  for (const auto& h : registry().histogram_buckets()) {
    HistogramSketch abs;
    abs.bounds = h.bounds;
    abs.buckets = h.buckets;
    abs.count = h.count;
    abs.sum = h.sum;
    auto it = last_sketches_.find(h.name);
    if (b.full) {
      b.sketches.emplace_back(h.name, abs);
    } else {
      HistogramSketch delta = abs;
      if (it != last_sketches_.end() && it->second.bounds == abs.bounds &&
          abs.count >= it->second.count) {
        for (std::size_t i = 0; i < delta.buckets.size(); ++i)
          delta.buckets[i] -= it->second.buckets[i];
        delta.count -= it->second.count;
        delta.sum -= it->second.sum;
      }
      if (delta.count > 0) b.sketches.emplace_back(h.name, std::move(delta));
    }
    last_sketches_[h.name] = std::move(abs);
  }

  // Flight entries recorded since the last beacon.  The cursor counts total
  // ever recorded, so entries that rotated out of the ring unseen are simply
  // lost (bounded memory beats completeness here).
  std::uint64_t total = flight().total_recorded();
  if (total > flight_cursor_) {
    std::vector<FlightEvent> window = flight().events();
    std::uint64_t fresh = total - flight_cursor_;
    std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(fresh, window.size()));
    for (std::size_t i = window.size() - take; i < window.size(); ++i) {
      FlightEvent& e = window[i];
      if (!options_.host.empty() && !e.host.empty() && e.host != options_.host) continue;
      b.flight.push_back(std::move(e));
    }
    if (b.flight.size() > options_.max_flight)
      b.flight.erase(b.flight.begin(),
                     b.flight.end() - static_cast<std::ptrdiff_t>(options_.max_flight));
  }
  flight_cursor_ = total;
  return b;
}

// ---------- FleetStore ----------

FleetStore::FleetStore() : FleetStore(Options{}) {}

FleetStore::FleetStore(Options options) : options_(options) {
  if (options_.stale_after_beacons <= 0) options_.stale_after_beacons = 3.0;
  if (options_.max_flight_per_host == 0) options_.max_flight_per_host = 1;
}

void FleetStore::apply(const TelemetryBeacon& beacon, std::int64_t arrival_ns) {
  HostState& s = hosts_[beacon.host];
  bool in_seq = s.beacons > 0 && beacon.seq == s.last_seq + 1;

  if (beacon.full) {
    s.counters.clear();
    s.gauges.clear();
    s.sketches.clear();
    for (const auto& [name, v] : beacon.counters) s.counters[name] = v;
    for (const auto& [name, v] : beacon.gauges) s.gauges[name] = v;
    for (const auto& [name, sketch] : beacon.sketches) s.sketches[name] = sketch;
    s.awaiting_full = false;
    ++beacons_applied_;
  } else if (!s.awaiting_full && in_seq) {
    for (const auto& [name, v] : beacon.counters) s.counters[name] += v;
    for (const auto& [name, v] : beacon.gauges) s.gauges[name] = v;
    for (const auto& [name, sketch] : beacon.sketches) {
      if (!s.sketches[name].merge(sketch)) s.sketches[name] = sketch;
    }
    ++beacons_applied_;
  } else {
    // Sequence gap (or no baseline yet): the delta cannot be trusted, so
    // drop its metric content and wait for the exporter's next full beacon
    // — receiver-passive recovery, no extra fan-in traffic.
    if (!s.awaiting_full) ++s.resyncs;
    s.awaiting_full = true;
    ++beacons_dropped_;
  }

  // Flight entries are append-only context, not deltas: keep them even
  // around a resync.
  for (const FlightEvent& e : beacon.flight) {
    s.flight.push_back(e);
    if (s.flight.size() > options_.max_flight_per_host) s.flight.pop_front();
  }

  // Liveness updates on every beacon, applied or dropped.
  s.last_seq = beacon.seq;
  s.last_ts = beacon.ts;
  s.last_arrival = arrival_ns;
  s.period_ns = beacon.period_ns;
  ++s.beacons;
}

std::vector<std::string> FleetStore::hosts() const {
  std::vector<std::string> out;
  out.reserve(hosts_.size());
  for (const auto& [name, s] : hosts_) out.push_back(name);
  return out;
}

bool FleetStore::stale(const std::string& host, std::int64_t now_ns) const {
  auto it = hosts_.find(host);
  if (it == hosts_.end() || it->second.period_ns <= 0) return false;
  return static_cast<double>(now_ns - it->second.last_arrival) >
         options_.stale_after_beacons * static_cast<double>(it->second.period_ns);
}

std::vector<FleetStore::HostHealth> FleetStore::health(std::int64_t now_ns) const {
  std::vector<HostHealth> out;
  out.reserve(hosts_.size());
  for (const auto& [name, s] : hosts_) {
    HostHealth h;
    h.host = name;
    h.beacons = s.beacons;
    h.resyncs = s.resyncs;
    h.seq = s.last_seq;
    h.last_ts = s.last_ts;
    h.last_arrival = s.last_arrival;
    h.period_ns = s.period_ns;
    if (s.period_ns > 0)
      h.missed = static_cast<double>(now_ns - s.last_arrival) /
                 static_cast<double>(s.period_ns);
    h.stale = s.period_ns > 0 &&
              h.missed > options_.stale_after_beacons;
    out.push_back(std::move(h));
  }
  return out;
}

Snapshot FleetStore::merged_snapshot() const {
  std::map<std::string, MetricValue> merged;
  std::map<std::string, HistogramSketch> sketches;
  for (const auto& [host, s] : hosts_) {
    for (const auto& [name, v] : s.counters) {
      MetricValue& m = merged[name];
      m.kind = MetricValue::Kind::counter;
      m.name = name;
      m.value += v;
    }
    for (const auto& [name, v] : s.gauges) {
      MetricValue& m = merged[name];
      m.kind = MetricValue::Kind::gauge;
      m.name = name;
      m.value += v;
    }
    for (const auto& [name, sketch] : s.sketches) sketches[name].merge(sketch);
  }
  for (const auto& [name, sketch] : sketches) {
    MetricValue& m = merged[name];
    m.kind = MetricValue::Kind::histogram;
    m.name = name;
    m.count = sketch.count;
    m.sum = sketch.sum;
    m.p50 = sketch.quantile(0.50);
    m.p95 = sketch.quantile(0.95);
    m.p99 = sketch.quantile(0.99);
  }
  Snapshot out;
  out.reserve(merged.size());
  for (auto& [name, v] : merged) out.push_back(std::move(v));
  return out;
}

HistogramSketch FleetStore::merged_sketch(const std::string& name) const {
  HistogramSketch out;
  for (const auto& [host, s] : hosts_)
    if (auto it = s.sketches.find(name); it != s.sketches.end()) out.merge(it->second);
  return out;
}

double FleetStore::merged_value(const std::string& name) const {
  double out = 0;
  for (const auto& [host, s] : hosts_) {
    if (auto it = s.counters.find(name); it != s.counters.end()) out += it->second;
    if (auto it = s.gauges.find(name); it != s.gauges.end()) out += it->second;
  }
  return out;
}

double FleetStore::host_value(const std::string& host, const std::string& name) const {
  auto hit = hosts_.find(host);
  if (hit == hosts_.end()) return 0;
  if (auto it = hit->second.counters.find(name); it != hit->second.counters.end())
    return it->second;
  if (auto it = hit->second.gauges.find(name); it != hit->second.gauges.end())
    return it->second;
  return 0;
}

std::vector<FlightEvent> FleetStore::flight(const std::string& host) const {
  std::vector<FlightEvent> out;
  for (const auto& [name, s] : hosts_) {
    if (!host.empty() && name != host) continue;
    out.insert(out.end(), s.flight.begin(), s.flight.end());
  }
  // Hosts were visited in name order, so a stable sort on the timestamp
  // yields one deterministic fleet timeline with name-ordered ties.
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEvent& a, const FlightEvent& b) { return a.ts < b.ts; });
  return out;
}

std::vector<FleetStore::HostRank> FleetStore::top_by_retransmit(std::size_t n) const {
  std::vector<HostRank> out;
  for (const auto& [name, s] : hosts_) {
    auto num = s.counters.find("srudp.fragments_retransmitted");
    auto den = s.counters.find("srudp.fragments_sent");
    if (den == s.counters.end() || den->second <= 0) continue;
    HostRank r;
    r.host = name;
    double retx = num == s.counters.end() ? 0 : num->second;
    r.value = retx / den->second;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "(retx=%.0f sent=%.0f)", retx, den->second);
    r.detail = buf;
    out.push_back(std::move(r));
  }
  std::stable_sort(out.begin(), out.end(), [](const HostRank& a, const HostRank& b) {
    return a.value > b.value;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

std::vector<FleetStore::HostRank> FleetStore::top_by_delivery_p99(std::size_t n) const {
  constexpr std::string_view suffix = ".delivery_ms";
  std::vector<HostRank> out;
  for (const auto& [name, s] : hosts_) {
    HostRank r;
    r.host = name;
    bool any = false;
    for (const auto& [metric, sketch] : s.sketches) {
      if (metric.size() <= suffix.size() ||
          metric.compare(metric.size() - suffix.size(), suffix.size(), suffix) != 0)
        continue;
      if (sketch.empty()) continue;
      double p99 = sketch.quantile(0.99);
      if (!any || p99 > r.value) {
        r.value = p99;
        r.detail = "(" + metric + ")";
        any = true;
      }
    }
    if (any) out.push_back(std::move(r));
  }
  std::stable_sort(out.begin(), out.end(), [](const HostRank& a, const HostRank& b) {
    return a.value > b.value;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

std::string FleetStore::format_metrics(const std::string& prefix) const {
  std::string out;
  char line[256];
  for (const MetricValue& m : merged_snapshot()) {
    if (!prefix.empty() && m.name.rfind(prefix, 0) != 0) continue;
    switch (m.kind) {
      case MetricValue::Kind::counter:
        std::snprintf(line, sizeof(line), "%-36s %.0f\n", m.name.c_str(), m.value);
        break;
      case MetricValue::Kind::gauge:
        std::snprintf(line, sizeof(line), "%-36s %g\n", m.name.c_str(), m.value);
        break;
      case MetricValue::Kind::histogram:
        std::snprintf(line, sizeof(line),
                      "%-36s count=%llu sum=%.3f p50=%.3f p95=%.3f p99=%.3f\n",
                      m.name.c_str(), static_cast<unsigned long long>(m.count), m.sum,
                      m.p50, m.p95, m.p99);
        break;
    }
    out += line;
  }
  return out;
}

std::string FleetStore::format_flight(const std::string& host) const {
  std::vector<FlightEvent> timeline = flight(host);
  if (timeline.empty())
    return host.empty() ? "(fleet flight empty)"
                        : "(no fleet flight events for host " + host + ")";
  std::string out =
      "fleet flight (" + std::to_string(timeline.size()) + " events):\n";
  for (const auto& e : timeline) {
    out += format_time(e.ts);
    out += " [";
    out += e.host.empty() ? "*" : e.host;
    out += "] ";
    out += e.cat;
    out += '/';
    out += e.what;
    if (!e.detail.empty()) {
      out += ' ';
      out += e.detail;
    }
    out += '\n';
  }
  return out;
}

std::string FleetStore::format_top(std::size_t n) const {
  char buf[160];
  std::string out = "top retransmit_ratio:\n";
  auto retx = top_by_retransmit(n);
  if (retx.empty()) out += "  (none)\n";
  for (const auto& r : retx) {
    std::snprintf(buf, sizeof(buf), "  %-16s %.4f %s\n", r.host.c_str(), r.value,
                  r.detail.c_str());
    out += buf;
  }
  out += "top delivery_p99_ms:\n";
  auto p99 = top_by_delivery_p99(n);
  if (p99.empty()) out += "  (none)\n";
  for (const auto& r : p99) {
    std::snprintf(buf, sizeof(buf), "  %-16s %.3f %s\n", r.host.c_str(), r.value,
                  r.detail.c_str());
    out += buf;
  }
  return out;
}

}  // namespace snipe::obs
