// The fleet telemetry plane: data structures for in-band metric/health/
// flight fan-in (DESIGN.md "fleet telemetry plane").
//
// The local ops surface (PR 1/4) answers for one process; at the scale the
// paper targets, "the fleet view is the only usable view".  Every SNIPE
// process therefore runs a telemetry *exporter* that periodically publishes
// a delta-compressed snapshot of its registry, health fields and recent
// flight-recorder entries over the ordinary simulated transports to one or
// more *collector* processes (src/daemon/telemetry.hpp).  This header holds
// the transport-free half of that plane so it can live in obs (which links
// only util) and be unit-tested without a simulation:
//
//   * HistogramSketch  — a histogram as its raw bucket array.  Sketches
//     merge by adding buckets, so fleet p50/p95/p99 computed from a merged
//     sketch are *exact* with respect to the union of the per-host buckets
//     (identical quantile math to obs::Histogram, not an approximation over
//     pre-computed per-host percentiles).
//   * TelemetryBeacon  — one export: counter/gauge deltas, sketch bucket
//     deltas, new flight entries, plus (seq, ts, period) for gap detection
//     and staleness accounting.  XDR-style wire codec (util/bytes.hpp).
//   * BeaconBuilder    — exporter-side delta state: remembers what the last
//     beacon carried and emits only what changed; every Nth beacon is a
//     full snapshot so a collector that missed a delta can resynchronise
//     without any receiver-driven chatter (the SRM lesson: recovery must
//     not add fan-in traffic).
//   * FleetStore       — collector-side state: per-host accumulations,
//     missed-beacon staleness, merged metric/health views, a flight
//     timeline merge-sorted by virtual time, and worst-N rankings.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "util/bytes.hpp"

namespace snipe::obs {

/// A histogram reduced to its mergeable form: bucket occupancy counts (one
/// per bound plus the +inf tail), total count and sum.  Two sketches over
/// the same bounds merge losslessly; quantiles over the merged sketch equal
/// quantiles over a single histogram fed the union of the samples.
struct HistogramSketch {
  std::vector<double> bounds;           ///< ascending upper bounds
  std::vector<std::uint64_t> buckets;   ///< bounds.size() + 1 (+inf last)
  std::uint64_t count = 0;
  double sum = 0;

  bool empty() const { return count == 0; }

  /// Adds `other` bucket-wise; false (and no change) when the bound arrays
  /// differ — merging across unequal bucketings would silently corrupt the
  /// percentiles the fleet view promises are exact.  An empty sketch adopts
  /// the other's bounds.
  bool merge(const HistogramSketch& other);

  /// Identical algorithm to obs::Histogram::quantile — 1-based rank q*count
  /// walked over cumulative buckets with linear interpolation inside the
  /// bucket — so a merged sketch reports exactly what one big histogram
  /// would.
  double quantile(double q) const;

  void encode(ByteWriter& w) const;
  static Result<HistogramSketch> decode(ByteReader& r);
};

/// One telemetry export.  Deltas are with respect to the previous beacon of
/// the same incarnation; a `full` beacon carries absolute values and is the
/// resynchronisation point after loss or collector restart.
struct TelemetryBeacon {
  std::string host;           ///< exporting host name
  std::uint64_t seq = 0;      ///< 1-based per exporter incarnation
  std::int64_t ts = 0;        ///< exporter clock at build time (virtual ns)
  std::int64_t period_ns = 0; ///< export cadence, for missed-beacon math
  bool full = false;          ///< absolute snapshot vs delta
  /// Counter deltas since the previous beacon (totals when `full`); only
  /// changed counters are carried — the delta compression.
  std::vector<std::pair<std::string, double>> counters;
  /// Gauge values (absolute either way — a gauge has no meaningful delta);
  /// only changed gauges are carried unless `full`.
  std::vector<std::pair<std::string, double>> gauges;
  /// Sketch bucket deltas (totals when `full`); only sketches with new
  /// observations are carried.
  std::vector<std::pair<std::string, HistogramSketch>> sketches;
  /// Flight-recorder entries recorded since the previous beacon.
  std::vector<FlightEvent> flight;

  Bytes encode() const;
  static Result<TelemetryBeacon> decode(const Bytes& wire);
};

/// Exporter-side delta state.  Bound to one registry + flight recorder
/// (defaulting to the process-wide globals) so a simulation can give each
/// simulated host a private registry and still share one process.
class BeaconBuilder {
 public:
  struct Options {
    std::string host;              ///< name stamped on every beacon
    std::int64_t period_ns = 0;    ///< advertised cadence
    std::uint32_t full_every = 16; ///< every Nth beacon is full (>=1)
    std::size_t max_flight = 64;   ///< flight entries per beacon, newest win
    MetricsRegistry* registry = nullptr;  ///< nullptr = global()
    FlightRecorder* flight = nullptr;     ///< nullptr = global()
  };

  explicit BeaconBuilder(Options options);

  /// Builds the next beacon (stamps `now_ns`, advances seq and the delta
  /// baselines).  The first beacon and every full_every-th one are full.
  TelemetryBeacon build(std::int64_t now_ns);

  std::uint64_t seq() const { return seq_; }

 private:
  MetricsRegistry& registry() const;
  FlightRecorder& flight() const;

  Options options_;
  std::uint64_t seq_ = 0;
  std::map<std::string, double> last_counters_;
  std::map<std::string, double> last_gauges_;
  std::map<std::string, HistogramSketch> last_sketches_;
  std::uint64_t flight_cursor_ = 0;  ///< total_recorded() already exported
};

/// Collector-side fleet state.  Applying a beacon is the only mutation;
/// every view (health, merged metrics, timeline, rankings) is computed at
/// query time, so a silent host costs nothing and cannot wedge the
/// collector — it simply shows up as stale when asked about.
class FleetStore {
 public:
  struct Options {
    /// A host is stale once this many beacon periods elapse with nothing
    /// received ("flag a partitioned host within 3 missed beacons").
    double stale_after_beacons = 3.0;
    std::size_t max_flight_per_host = 1024;
  };

  /// Per-host liveness summary as of one instant.
  struct HostHealth {
    std::string host;
    std::uint64_t beacons = 0;      ///< beacons applied
    std::uint64_t resyncs = 0;      ///< seq gaps seen (full-beacon recoveries)
    std::uint64_t seq = 0;          ///< last beacon seq
    std::int64_t last_ts = 0;       ///< exporter clock of last beacon
    std::int64_t last_arrival = 0;  ///< collector clock at last beacon
    std::int64_t period_ns = 0;
    double missed = 0;              ///< beacon periods elapsed since last
    bool stale = false;
  };

  FleetStore();
  explicit FleetStore(Options options);

  /// Applies one received beacon; `arrival_ns` is the collector's clock.
  /// Out-of-sequence deltas are dropped (liveness still updates) and the
  /// host is marked awaiting-full until the next full beacon resyncs it.
  void apply(const TelemetryBeacon& beacon, std::int64_t arrival_ns);

  std::vector<std::string> hosts() const;
  std::size_t host_count() const { return hosts_.size(); }
  bool stale(const std::string& host, std::int64_t now_ns) const;
  std::vector<HostHealth> health(std::int64_t now_ns) const;

  /// Fleet-merged registry view: counters and gauges summed across hosts,
  /// sketches bucket-merged (quantiles exact w.r.t. the union).  Sorted by
  /// name, same shape the local registry's snapshot() has so the existing
  /// health rollup runs unchanged over the fleet.
  Snapshot merged_snapshot() const;
  /// Merged sketch for one metric name (empty sketch when unknown).
  HistogramSketch merged_sketch(const std::string& name) const;
  /// Fleet-summed counter/gauge value (0 when unknown).
  double merged_value(const std::string& name) const;
  /// Per-host counter/gauge value (0 when unknown) — test hook.
  double host_value(const std::string& host, const std::string& name) const;

  /// Flight entries merge-sorted by virtual timestamp into one fleet
  /// timeline ("" = all hosts); ties keep host-name order, so the merge is
  /// deterministic.
  std::vector<FlightEvent> flight(const std::string& host = {}) const;

  /// Worst-N host rankings: srudp retransmit ratio and delivery p99.
  struct HostRank {
    std::string host;
    double value = 0;
    std::string detail;
  };
  std::vector<HostRank> top_by_retransmit(std::size_t n) const;
  std::vector<HostRank> top_by_delivery_p99(std::size_t n) const;

  /// Text renders for the console verbs and /fleet/* endpoints.
  std::string format_metrics(const std::string& prefix) const;
  std::string format_flight(const std::string& host) const;
  std::string format_top(std::size_t n) const;

  std::uint64_t beacons_applied() const { return beacons_applied_; }
  std::uint64_t beacons_dropped() const { return beacons_dropped_; }

 private:
  struct HostState {
    std::map<std::string, double> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSketch> sketches;
    std::deque<FlightEvent> flight;
    std::uint64_t last_seq = 0;
    std::int64_t last_ts = 0;
    std::int64_t last_arrival = 0;
    std::int64_t period_ns = 0;
    std::uint64_t beacons = 0;
    std::uint64_t resyncs = 0;
    bool awaiting_full = true;  ///< no trustworthy baseline yet
  };

  Options options_;
  std::map<std::string, HostState> hosts_;
  std::uint64_t beacons_applied_ = 0;
  std::uint64_t beacons_dropped_ = 0;
};

}  // namespace snipe::obs
