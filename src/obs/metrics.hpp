// Unified metrics for every SNIPE component (consoles "monitor" daemons,
// resource managers and migrating tasks — §3, §5 — which presumes the
// system can report on itself).
//
// Three instrument kinds live in a MetricsRegistry:
//   * Counter  — monotonically increasing event count ("srudp.retransmits");
//   * Gauge    — a value that goes up and down ("rm.live_hosts");
//   * Histogram — fixed-bucket distribution with p50/p95/p99 extraction
//     ("srudp.rtt_ms", "rcds.replication_lag_ms").
//
// Components that already keep a per-instance stats struct (SrudpStats,
// RcServerStats, ...) do not double-count: their fields stay the single
// point of increment (as obs::Cell, a thin counter cell) and the instance
// registers *pull sources* into the registry.  At snapshot time the
// registry sums every live source with the same name, so ten SRUDP
// endpoints show up as one "srudp.messages_sent" total.  When an instance
// dies, its final values are folded into a retained total so a snapshot
// after the fact still reports the whole run.
//
// Everything is dependency-free, cheap when disabled (one relaxed atomic
// load), and safe to call from multiple threads (registration takes a
// mutex; increments are lock-free atomics; the simulator itself is
// single-threaded, but tests built with -DSNIPE_SANITIZE=thread exercise
// the concurrent paths).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace snipe::obs {

/// A plain counter cell for per-instance stats structs.  Deliberately a
/// trivial, copyable value type so existing `stats()` accessors keep their
/// exact semantics (comparisons, tuples, streaming) while the registry
/// reads the cell through a registered source.
struct Cell {
  std::uint64_t v = 0;

  constexpr operator std::uint64_t() const { return v; }
  Cell& operator++() {
    ++v;
    return *this;
  }
  Cell& operator+=(std::uint64_t n) {
    v += n;
    return *this;
  }
};

class MetricsRegistry;

/// Monotonic event counter.  Stable address for the registry's lifetime.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  std::atomic<std::uint64_t> v_{0};
  const std::atomic<bool>* enabled_;
};

/// A value that can go up and down (loads, queue depths).
class Gauge {
 public:
  void set(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(double delta);
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  std::atomic<double> v_{0};
  const std::atomic<bool>* enabled_;
};

/// Fixed-bucket histogram.  Bucket upper bounds are set at creation (the
/// default spans 10 µs .. 60 s expressed in milliseconds, wide enough for
/// SRUDP RTTs and RCDS replication lag alike); an implicit +inf bucket
/// catches the tail.  Quantiles interpolate linearly inside the bucket.
class Histogram {
 public:
  void observe(double v);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// q in [0,1]; returns 0 when empty.
  double quantile(double q) const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative count at or below bounds()[i].
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  static std::vector<double> default_bounds();

 private:
  friend class MetricsRegistry;
  Histogram(const std::atomic<bool>* enabled, std::vector<double> bounds);
  std::vector<double> bounds_;                       ///< ascending upper bounds
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds_.size() + 1 (+inf)
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
  const std::atomic<bool>* enabled_;
};

/// RAII registration of one pull source; unregistering folds the source's
/// final value into the registry's retained totals.
class SourceHandle {
 public:
  SourceHandle() = default;
  SourceHandle(SourceHandle&& other) noexcept { *this = std::move(other); }
  SourceHandle& operator=(SourceHandle&& other) noexcept;
  SourceHandle(const SourceHandle&) = delete;
  SourceHandle& operator=(const SourceHandle&) = delete;
  ~SourceHandle() { release(); }

  void release();

 private:
  friend class MetricsRegistry;
  SourceHandle(MetricsRegistry* registry, std::uint64_t id)
      : registry_(registry), id_(id) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint64_t id_ = 0;
};

/// A bundle of sources owned by one component instance.  Declare it *after*
/// the stats struct it reads so it unregisters first on destruction.
class SourceGroup {
 public:
  void add(MetricsRegistry& registry, std::string name,
           std::function<std::uint64_t()> fn);
  /// Registers against the global registry.
  void add(std::string name, std::function<std::uint64_t()> fn);
  void clear() { handles_.clear(); }

 private:
  std::vector<SourceHandle> handles_;
};

/// One entry of a registry snapshot.
struct MetricValue {
  enum class Kind { counter, gauge, histogram };
  Kind kind = Kind::counter;
  std::string name;
  double value = 0;         ///< counter total or gauge value
  std::uint64_t count = 0;  ///< histogram only
  double sum = 0;           ///< histogram only
  double p50 = 0, p95 = 0, p99 = 0;
};

using Snapshot = std::vector<MetricValue>;

/// Raw bucket view of one histogram — the mergeable form the fleet
/// telemetry exporter ships (obs/fleet.hpp).  `buckets` has
/// bounds.size() + 1 entries, the +inf tail last.
struct HistogramBuckets {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every component reports into.
  static MetricsRegistry& global();

  /// Disabling makes every increment/observe a no-op (the opt-out knob the
  /// benches use to measure instrumentation overhead).  Pull sources are
  /// free either way — they cost nothing until snapshot().
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Named instruments; the same name always returns the same object.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  /// Registers a pull source summed into `name` at snapshot time.
  [[nodiscard]] SourceHandle add_source(std::string name,
                                        std::function<std::uint64_t()> fn);

  /// Zeroes counters, gauges, histograms and retained source totals.  Live
  /// sources are *not* reset (they mirror component stats structs); benches
  /// that want a clean slate should scope component lifetimes accordingly.
  void reset();

  /// Consistent view of every instrument, sorted by name.  Sources and
  /// retained totals merge into counter entries.
  Snapshot snapshot() const;

  /// Every histogram as its raw bucket array, sorted by name (the form a
  /// telemetry beacon carries so collectors can merge exactly).
  std::vector<HistogramBuckets> histogram_buckets() const;

  /// Plain-text scrape format for consoles: one "name value" line per
  /// counter/gauge, one "name count=N sum=S p50=.. p95=.. p99=.." line per
  /// histogram.
  std::string format_text() const;

 private:
  friend class SourceHandle;
  void retire_source(std::uint64_t id);

  struct Source {
    std::string name;
    std::function<std::uint64_t()> fn;
  };

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{true};
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::uint64_t, Source> sources_;
  std::map<std::string, std::uint64_t> retained_;  ///< totals of dead sources
  std::uint64_t next_source_id_ = 1;
};

}  // namespace snipe::obs
