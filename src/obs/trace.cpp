#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <tuple>

namespace snipe::obs {

namespace {

std::int64_t wall_now() {
  // Nanoseconds since the first call, so wall traces start near zero like
  // virtual ones.
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void json_escape(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_event_json(std::string& out, const TraceEvent& e, int tid) {
  char buf[64];
  out += "{\"name\":\"";
  json_escape(out, e.name);
  out += "\",\"cat\":\"";
  json_escape(out, e.cat);
  out += "\",\"ph\":\"";
  out += static_cast<char>(e.phase);
  out += "\",\"pid\":1,\"tid\":";
  std::snprintf(buf, sizeof(buf), "%d", tid);
  out += buf;
  // Chrome's ts unit is microseconds; keep sub-µs precision as a fraction.
  std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f", static_cast<double>(e.ts) / 1e3);
  out += buf;
  if (e.phase == TraceEvent::Phase::complete) {
    std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", static_cast<double>(e.dur) / 1e3);
    out += buf;
  }
  if (e.phase == TraceEvent::Phase::instant) out += ",\"s\":\"t\"";
  if (e.id != 0) {
    // Flow binding id; hex keeps 64 bits exact (JSON numbers would not).
    std::snprintf(buf, sizeof(buf), ",\"id\":\"0x%llx\"",
                  static_cast<unsigned long long>(e.id));
    out += buf;
  }
  // Bind flow arrows to the enclosing slice at both ends.
  if (e.phase == TraceEvent::Phase::flow_end) out += ",\"bp\":\"e\"";
  if (!e.args.empty()) {
    out += ",\"args\":{";
    bool first = true;
    for (const auto& [k, v] : e.args) {
      if (!first) out += ',';
      first = false;
      out += '"';
      json_escape(out, k);
      out += "\":\"";
      json_escape(out, v);
      out += '"';
    }
    out += '}';
  }
  out += '}';
}

}  // namespace

Tracer::Tracer(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();  // intentionally leaked
  return *instance;
}

void Tracer::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = enabled;
}

bool Tracer::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void Tracer::set_clock(std::function<std::int64_t()> clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = std::move(clock);
}

std::int64_t Tracer::now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_ ? clock_() : wall_now();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  size_ = 0;
  dropped_ = 0;
}

void Tracer::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(capacity_);
  next_ = 0;
  size_ = 0;
  dropped_ = 0;
}

std::size_t Tracer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void Tracer::push(TraceEvent event) {
  if (size_ < capacity_) {
    ring_.push_back(std::move(event));
    ++size_;
    next_ = size_ % capacity_;
  } else {
    ring_[next_] = std::move(event);
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
  }
}

void Tracer::instant(std::string cat, std::string name, Args args) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::instant;
  e.cat = std::move(cat);
  e.name = std::move(name);
  e.ts = clock_ ? clock_() : wall_now();
  e.args = std::move(args);
  push(std::move(e));
}

void Tracer::flow(TraceEvent::Phase phase, std::string cat, std::string name,
                  std::uint64_t id, Args args) {
  if (!flow_enabled_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  TraceEvent e;
  e.phase = phase;
  e.cat = std::move(cat);
  e.name = std::move(name);
  e.ts = clock_ ? clock_() : wall_now();
  e.id = id;
  e.args = std::move(args);
  push(std::move(e));
}

SpanId Tracer::begin_span(std::string cat, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return 0;
  SpanId id = next_span_++;
  open_[id] = OpenSpan{std::move(cat), std::move(name), clock_ ? clock_() : wall_now()};
  return id;
}

void Tracer::end_span(SpanId id, Args args) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(id);
  if (it == open_.end()) return;
  OpenSpan span = std::move(it->second);
  open_.erase(it);
  if (!enabled_) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::complete;
  e.cat = std::move(span.cat);
  e.name = std::move(span.name);
  e.ts = span.start;
  e.dur = (clock_ ? clock_() : wall_now()) - span.start;
  if (e.dur < 0) e.dur = 0;
  e.args = std::move(args);
  push(std::move(e));
}

void Tracer::complete(std::string cat, std::string name, std::int64_t ts, std::int64_t dur,
                      Args args) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::complete;
  e.cat = std::move(cat);
  e.name = std::move(name);
  e.ts = ts;
  e.dur = dur;
  e.args = std::move(args);
  push(std::move(e));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest first: when the ring has wrapped, the oldest entry is at next_.
  std::size_t start = size_ < capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < size_; ++i) out.push_back(ring_[(start + i) % size_]);
  return out;
}

std::vector<TraceEvent> Tracer::events_canonical() const {
  std::vector<TraceEvent> out = events();
  auto key = [](const TraceEvent& e) {
    return std::tie(e.ts, e.cat, e.name, e.phase, e.id, e.dur);
  };
  std::stable_sort(out.begin(), out.end(),
                   [&](const TraceEvent& a, const TraceEvent& b) { return key(a) < key(b); });
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string Tracer::chrome_json() const {
  std::vector<TraceEvent> all = events();
  // Stable category -> tid mapping, in order of first appearance.
  std::map<std::string, int> tids;
  std::vector<std::string> cats;
  for (const auto& e : all) {
    if (tids.emplace(e.cat, static_cast<int>(tids.size()) + 1).second)
      cats.push_back(e.cat);
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata so each category renders as a labelled track.
  for (const auto& cat : cats) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(tids[cat]);
    out += ",\"args\":{\"name\":\"";
    json_escape(out, cat);
    out += "\"}}";
  }
  for (const auto& e : all) {
    if (!first) out += ',';
    first = false;
    append_event_json(out, e, tids[e.cat]);
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::string json = chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace snipe::obs
