#include "rcds/client.hpp"

#include <algorithm>
#include <cassert>

#include "obs/trace.hpp"

namespace snipe::rcds {

namespace {
Bytes encode_get(const std::string& uri) {
  ByteWriter w;
  w.str(uri);
  return std::move(w).take();
}

Bytes encode_apply(const std::string& uri, const std::vector<Op>& ops) {
  ByteWriter w;
  w.str(uri);
  w.u32(static_cast<std::uint32_t>(ops.size()));
  for (const auto& op : ops) op.encode(w);
  return std::move(w).take();
}

/// Parses the master address out of a single-master referral error
/// ("single-master: write at host:port").
Result<simnet::Address> referral_target(const std::string& message) {
  auto at = message.rfind(" at ");
  if (at == std::string::npos) return Error{Errc::corrupt, "no referral address"};
  std::string hostport = message.substr(at + 4);
  auto colon = hostport.rfind(':');
  if (colon == std::string::npos) return Error{Errc::corrupt, "no referral port"};
  return simnet::Address{hostport.substr(0, colon),
                         static_cast<std::uint16_t>(std::stoi(hostport.substr(colon + 1)))};
}
}  // namespace

RcClient::RcClient(transport::RpcEndpoint& rpc, std::vector<simnet::Address> replicas,
                   RcClientConfig config)
    : rpc_(rpc), replicas_(std::move(replicas)), config_(config) {
  assert(!replicas_.empty() && "RcClient needs at least one replica");
  fails_.assign(replicas_.size(), 0);
  metrics_sources_.add("rcds.client.lookups", [this] { return stats_.lookups; });
  metrics_sources_.add("rcds.client.writes", [this] { return stats_.writes; });
  metrics_sources_.add("rcds.client.failovers", [this] { return stats_.failovers; });
  metrics_sources_.add("rcds.client.failures", [this] { return stats_.failures; });
}

std::size_t RcClient::healthiest() const {
  std::size_t best = preferred_ % replicas_.size();
  int best_fails = fails_[best];
  for (std::size_t i = 0; i < replicas_.size(); ++i)
    if (fails_[i] < best_fails) {
      best = i;
      best_fails = fails_[i];
    }
  return best;
}

void RcClient::get(const std::string& uri, AssertionsHandler done) {
  ++stats_.lookups;
  attempt(tags::kGet, encode_get(uri), healthiest(), static_cast<int>(replicas_.size()),
          std::move(done));
}

void RcClient::apply(const std::string& uri, std::vector<Op> ops, AssertionsHandler done) {
  ++stats_.writes;
  attempt(tags::kApply, encode_apply(uri, ops), healthiest(),
          static_cast<int>(replicas_.size()), std::move(done));
}

void RcClient::attempt(std::uint32_t tag, Bytes body, std::size_t replica_index,
                       int tries_left, AssertionsHandler done) {
  const simnet::Address replica = replicas_[replica_index % replicas_.size()];
  std::weak_ptr<char> alive = alive_;
  rpc_.call(
      replica, tag, body,
      [this, alive, tag, body, replica_index, tries_left,
       done](Result<Bytes> response) mutable {
        if (alive.expired()) {
          // The client died mid-call (owner migrated/shut down).  Deliver
          // the outcome — `done` owns everything it needs — but touch no
          // member and never retry through the dead endpoint.
          if (!response) {
            done(response.error());
          } else if (auto update = decode_update(response.value()); !update) {
            done(update.error());
          } else {
            done(std::move(update.value().second));
          }
          return;
        }
        const std::size_t idx = replica_index % replicas_.size();
        if (!response) {
          if (response.code() == Errc::state_error) {
            // Single-master referral: retry once directly at the master.
            // (Not a health strike — the follower answered promptly.)
            if (auto master = referral_target(response.error().message); master.ok()) {
              rpc_.call(
                  master.value(), tag, body,
                  [this, alive, done](Result<Bytes> r2) {
                    if (!r2) {
                      if (!alive.expired()) ++stats_.failures;
                      done(r2.error());
                      return;
                    }
                    auto update = decode_update(r2.value());
                    if (!update) {
                      done(update.error());
                      return;
                    }
                    done(std::move(update.value().second));
                  },
                  config_.try_timeout);
              return;
            }
          }
          fails_[idx] = std::min(fails_[idx] + 1, 8);
          if (tries_left > 1) {
            ++stats_.failovers;
            obs::Tracer::global().instant(
                "rcds", "rcds.client_failover",
                {{"from", replicas_[idx].to_string()}});
            preferred_ = (replica_index + 1) % replicas_.size();
            attempt(tag, std::move(body), replica_index + 1, tries_left - 1, std::move(done));
          } else {
            ++stats_.failures;
            done(response.error());
          }
          return;
        }
        // Success: this replica is healthy and sticky; decay the others'
        // strikes so a recovered replica is re-probed eventually.
        preferred_ = idx;
        fails_[idx] = 0;
        for (std::size_t i = 0; i < fails_.size(); ++i)
          if (i != idx && fails_[i] > 0) --fails_[i];
        auto update = decode_update(response.value());
        if (!update) {
          done(update.error());
          return;
        }
        done(std::move(update.value().second));
      },
      config_.try_timeout);
}

void RcClient::lookup(const std::string& uri, const std::string& name, ValuesHandler done) {
  get(uri, [name, done](Result<std::vector<Assertion>> r) {
    if (!r) {
      done(r.error());
      return;
    }
    std::vector<std::string> values;
    for (const auto& a : r.value())
      if (a.name == name) values.push_back(a.value);
    done(std::move(values));
  });
}

namespace {
RcClient::AssertionsHandler discard_to(RcClient::DoneHandler done) {
  return [done = std::move(done)](Result<std::vector<Assertion>> r) {
    if (!r)
      done(r.error());
    else
      done(ok_result());
  };
}
}  // namespace

void RcClient::set(const std::string& uri, const std::string& name, const std::string& value,
                   DoneHandler done) {
  apply(uri, {op_set(name, value)}, discard_to(std::move(done)));
}

void RcClient::add(const std::string& uri, const std::string& name, const std::string& value,
                   DoneHandler done) {
  apply(uri, {op_add(name, value)}, discard_to(std::move(done)));
}

void RcClient::remove(const std::string& uri, const std::string& name,
                      const std::string& value, DoneHandler done) {
  apply(uri, {op_remove(name, value)}, discard_to(std::move(done)));
}

}  // namespace snipe::rcds
