#include "rcds/signed.hpp"

#include <algorithm>

namespace snipe::rcds {

Bytes SignedSubset::canonical_bytes() const {
  auto sorted = entries;
  std::sort(sorted.begin(), sorted.end());
  ByteWriter w;
  w.str(uri);
  w.u32(static_cast<std::uint32_t>(sorted.size()));
  for (const auto& [name, value] : sorted) {
    w.str(name);
    w.str(value);
  }
  w.str(signer);
  return std::move(w).take();
}

SignedSubset SignedSubset::sign(const crypto::Principal& signer, std::string uri,
                                std::vector<std::pair<std::string, std::string>> entries) {
  SignedSubset s;
  s.uri = std::move(uri);
  s.entries = std::move(entries);
  s.signer = signer.uri;
  s.signature = crypto::sign(signer.keys.priv, s.canonical_bytes());
  return s;
}

bool SignedSubset::verify_with(const crypto::PublicKey& signer_key) const {
  return crypto::verify(signer_key, canonical_bytes(), signature);
}

Bytes SignedSubset::encode() const {
  ByteWriter w;
  w.str(uri);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [name, value] : entries) {
    w.str(name);
    w.str(value);
  }
  w.str(signer);
  w.blob(signature);
  return std::move(w).take();
}

Result<SignedSubset> SignedSubset::decode(const Bytes& data) {
  ByteReader r(data);
  SignedSubset s;
  auto uri = r.str();
  if (!uri) return uri.error();
  s.uri = uri.value();
  auto count = r.u32();
  if (!count) return count.error();
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto name = r.str();
    if (!name) return name.error();
    auto value = r.str();
    if (!value) return value.error();
    s.entries.emplace_back(name.value(), value.value());
  }
  auto signer = r.str();
  if (!signer) return signer.error();
  s.signer = signer.value();
  auto signature = r.blob();
  if (!signature) return signature.error();
  s.signature = signature.value();
  return s;
}

Op SignedSubset::to_op(const std::string& label) const {
  return op_set("rcds:sig:" + label, hex_encode(encode()));
}

Result<SignedSubset> SignedSubset::from_assertion_value(const std::string& hex_value) {
  auto bytes = hex_decode(hex_value);
  if (!bytes) return bytes.error();
  return decode(bytes.value());
}

}  // namespace snipe::rcds
