// RCDS assertions: the unit of SNIPE metadata (§2.1, §5.2).
//
// "the metadata for a resource (a list of attribute 'name=value' pairs
//  called assertions) are maintained in a separate distributed and
//  replicated registry, which is indexed by the resource's URI".
//
// Names are multi-valued (a process has many communication addresses, a
// LIFN many locations), so each (name, value) pair is an independent
// last-writer-wins register with a tombstone for removal.  Servers stamp
// every write with the virtual time and their own identity ("Automatic
// time stamping of metadata by the RC servers", §3.1); (timestamp, origin,
// value) ordering makes replica merges commutative, associative and
// idempotent — the master–master model §7 contrasts with LDAP.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/time.hpp"

namespace snipe::rcds {

/// One replicated (name, value) register for some URI.
struct Assertion {
  std::string name;
  std::string value;
  SimTime timestamp = 0;   ///< stamped by the accepting server
  std::string origin;      ///< id of the accepting server
  bool tombstone = false;  ///< true if this pair has been removed

  void encode(ByteWriter& w) const;
  static Result<Assertion> decode(ByteReader& r);

  /// Replica-merge ordering: a write dominates another iff it is strictly
  /// newer by (timestamp, origin).  Equal keys are the same write.
  static bool newer(const Assertion& a, const Assertion& b) {
    if (a.timestamp != b.timestamp) return a.timestamp > b.timestamp;
    if (a.origin != b.origin) return a.origin > b.origin;
    return a.tombstone && !b.tombstone;  // removal wins a perfect tie
  }
};

/// All assertions of one resource, keyed by (name, value).
class Record {
 public:
  /// Merges an assertion; returns true if the record changed (i.e., the
  /// incoming write was new or dominated the stored one).
  bool merge(const Assertion& a);

  /// Live (non-tombstoned) assertions, sorted by (name, value).
  std::vector<Assertion> live() const;
  /// All registers including tombstones, for replication.
  std::vector<Assertion> all() const;
  /// Live values for one name.
  std::vector<std::string> values(const std::string& name) const;
  /// First live value for a name, if any (single-valued convention).
  std::optional<std::string> value(const std::string& name) const;
  /// Latest write timestamp across all registers (for anti-entropy digests).
  SimTime latest() const { return latest_; }

  bool empty() const { return map_.empty(); }
  std::size_t size() const { return map_.size(); }

 private:
  std::map<std::pair<std::string, std::string>, Assertion> map_;
  SimTime latest_ = 0;
};

/// A mutation requested by a client (before the server stamps it).
struct Op {
  enum class Kind : std::uint8_t {
    add = 1,     ///< assert (name, value)
    remove = 2,  ///< retract (name, value)
    set = 3,     ///< retract every current value of `name`, then assert
  };
  Kind kind = Kind::add;
  std::string name;
  std::string value;

  void encode(ByteWriter& w) const;
  static Result<Op> decode(ByteReader& r);
};

/// Convenience builders.
inline Op op_add(std::string name, std::string value) {
  return Op{Op::Kind::add, std::move(name), std::move(value)};
}
inline Op op_remove(std::string name, std::string value) {
  return Op{Op::Kind::remove, std::move(name), std::move(value)};
}
inline Op op_set(std::string name, std::string value) {
  return Op{Op::Kind::set, std::move(name), std::move(value)};
}

/// Well-known assertion names used across SNIPE (§5.2).
namespace names {
inline constexpr const char* kHostDaemon = "host:daemon";        ///< daemon URL
inline constexpr const char* kHostCpus = "host:cpus";
inline constexpr const char* kHostArch = "host:arch";
inline constexpr const char* kHostBroker = "host:broker";        ///< RM URLs
inline constexpr const char* kHostInterface = "host:interface";  ///< per NIC
inline constexpr const char* kHostKey = "host:pubkey";
inline constexpr const char* kHostLoad = "host:load";
inline constexpr const char* kHostTask = "host:task";            ///< tasks started here (§3.7)
inline constexpr const char* kProcAddress = "proc:address";      ///< comm URL
inline constexpr const char* kProcHost = "proc:host";
inline constexpr const char* kProcState = "proc:state";
inline constexpr const char* kProcNotify = "proc:notify";        ///< notify list
inline constexpr const char* kProcSupervisor = "proc:supervisor";
inline constexpr const char* kGroupRouter = "group:router";      ///< multicast
inline constexpr const char* kGroupNotify = "group:notify";
inline constexpr const char* kLifnLocation = "lifn:location";    ///< replicas
inline constexpr const char* kLifnHash = "lifn:sha256";
inline constexpr const char* kCodeSignature = "code:signature";
inline constexpr const char* kServiceLocation = "service:location";
}  // namespace names

}  // namespace snipe::rcds
