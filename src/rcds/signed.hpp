// Signed metadata subsets (§2.1, §4).
//
// "Subsets of metadata can also be cryptographically signed ... A signed
//  subset of RC metadata serves as a key certificate."
//
// A SignedSubset binds a URI plus a chosen set of (name, value) assertions
// to a signer.  The canonical form sorts the pairs, so signing is
// insensitive to assertion order.  Helpers store/load the subset as a
// regular RC assertion, which is how playgrounds fetch code signatures and
// clients fetch key certificates from the same registry as everything else.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "crypto/identity.hpp"
#include "rcds/assertion.hpp"

namespace snipe::rcds {

struct SignedSubset {
  std::string uri;  ///< the resource the metadata describes
  std::vector<std::pair<std::string, std::string>> entries;
  std::string signer;  ///< signer's URI
  Bytes signature;

  /// The byte string that is signed (uri + sorted entries + signer).
  Bytes canonical_bytes() const;

  static SignedSubset sign(const crypto::Principal& signer, std::string uri,
                           std::vector<std::pair<std::string, std::string>> entries);
  bool verify_with(const crypto::PublicKey& signer_key) const;

  Bytes encode() const;
  static Result<SignedSubset> decode(const Bytes& data);

  /// Stores/loads as the RC assertion ("rcds:sig:<label>", hex(encode)).
  Op to_op(const std::string& label) const;
  static Result<SignedSubset> from_assertion_value(const std::string& hex_value);
};

}  // namespace snipe::rcds
