#include "rcds/server.hpp"

#include <algorithm>

#include "obs/flight.hpp"
#include "obs/trace.hpp"

namespace snipe::rcds {

Bytes encode_update(const std::string& uri, const std::vector<Assertion>& assertions) {
  ByteWriter w;
  w.str(uri);
  w.u32(static_cast<std::uint32_t>(assertions.size()));
  for (const auto& a : assertions) a.encode(w);
  return std::move(w).take();
}

Result<std::pair<std::string, std::vector<Assertion>>> decode_update(const Bytes& body) {
  ByteReader r(body);
  auto uri = r.str();
  if (!uri) return uri.error();
  auto count = r.u32();
  if (!count) return count.error();
  std::vector<Assertion> assertions;
  assertions.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto a = Assertion::decode(r);
    if (!a) return a.error();
    assertions.push_back(std::move(a).take());
  }
  return std::make_pair(uri.value(), std::move(assertions));
}

RcServer::RcServer(simnet::Host& host, std::uint16_t port, RcServerConfig config)
    : rpc_(host, port,
           transport::RpcConfig{duration::seconds(5), config.shared_secret, {}}),
      engine_(host.engine()),
      config_(std::move(config)),
      server_id_(host.name() + ":" + std::to_string(rpc_.address().port)),
      log_("rcds@" + server_id_) {
  rpc_.serve(tags::kGet,
             [this](const simnet::Address&, const Bytes& body) { return handle_get(body); });
  rpc_.serve(tags::kApply, [this](const simnet::Address& from, const Bytes& body) {
    return handle_apply(from, body);
  });
  rpc_.on_notify(tags::kReplicate,
                 [this](const simnet::Address&, const Bytes& body) { handle_replicate(body); });
  rpc_.serve(tags::kSyncDigest, [this](const simnet::Address&, const Bytes& body) {
    return handle_sync_digest(body);
  });
  rpc_.serve(tags::kPing, [](const simnet::Address&, const Bytes&) -> Result<Bytes> {
    return Bytes{};
  });
  if (config_.anti_entropy_period > 0) {
    engine_.schedule_weak(config_.anti_entropy_period, [this] { anti_entropy_tick(); });
  }
  auto& registry = obs::MetricsRegistry::global();
  replication_lag_ms_ = &registry.histogram("rcds.replication_lag_ms");
  catalog_hits_ = &registry.counter("rcds.catalog_hits");
  catalog_misses_ = &registry.counter("rcds.catalog_misses");
  metrics_sources_.add("rcds.gets", [this] { return stats_.gets; });
  metrics_sources_.add("rcds.applies", [this] { return stats_.applies; });
  metrics_sources_.add("rcds.replicated_in", [this] { return stats_.replicated_in; });
  metrics_sources_.add("rcds.replicated_out", [this] { return stats_.replicated_out; });
  metrics_sources_.add("rcds.anti_entropy_rounds",
                       [this] { return stats_.anti_entropy_rounds; });
  metrics_sources_.add("rcds.anti_entropy_repairs",
                       [this] { return stats_.anti_entropy_repairs; });
  metrics_sources_.add("rcds.forwards", [this] { return stats_.forwards; });
}

void RcServer::set_peers(std::vector<simnet::Address> peers) { peers_ = std::move(peers); }

std::vector<Assertion> RcServer::get(const std::string& uri) const {
  auto it = store_.find(uri);
  if (it == store_.end()) return {};
  return it->second.live();
}

std::vector<Assertion> RcServer::apply(const std::string& uri, const std::vector<Op>& ops) {
  // Automatic timestamping (§3.1): strictly monotone per server so that
  // (timestamp, origin) totally orders this server's writes.
  SimTime stamp = std::max(engine_.now(), last_stamp_ + 1);
  last_stamp_ = stamp;

  Record& record = store_[uri];
  std::vector<Assertion> written;
  for (const auto& op : ops) {
    if (op.kind == Op::Kind::set) {
      for (const auto& old_value : record.values(op.name)) {
        if (old_value == op.value) continue;
        Assertion tomb{op.name, old_value, stamp, server_id_, true};
        record.merge(tomb);
        written.push_back(std::move(tomb));
      }
      Assertion a{op.name, op.value, stamp, server_id_, false};
      record.merge(a);
      written.push_back(std::move(a));
    } else {
      Assertion a{op.name, op.value, stamp, server_id_, op.kind == Op::Kind::remove};
      record.merge(a);
      written.push_back(std::move(a));
    }
  }
  ++stats_.applies;
  obs::Tracer::global().instant(
      "rcds", "rcds.apply",
      {{"uri", uri}, {"assertions", std::to_string(written.size())}});
  if (!written.empty()) broadcast_update(uri, written);
  return written;
}

void RcServer::broadcast_update(const std::string& uri,
                                const std::vector<Assertion>& assertions) {
  if (peers_.empty()) return;
  Bytes update = encode_update(uri, assertions);
  auto& tracer = obs::Tracer::global();
  for (const auto& peer : peers_) {
    std::uint64_t flow = rpc_.notify(peer, tags::kReplicate, update);
    if (tracer.flow_enabled())
      tracer.flow(obs::TraceEvent::Phase::flow_step, "flow", "rcds.replicate", flow,
                  {{"uri", uri},
                   {"peer", peer.to_string()},
                   {"assertions", std::to_string(assertions.size())}});
    ++stats_.replicated_out;
  }
}

Result<Bytes> RcServer::handle_get(const Bytes& body) {
  ByteReader r(body);
  auto uri = r.str();
  if (!uri) return uri.error();
  ++stats_.gets;
  auto it = store_.find(uri.value());
  if (it == store_.end())
    catalog_misses_->inc();
  else
    catalog_hits_->inc();
  std::vector<Assertion> live = it == store_.end() ? std::vector<Assertion>{} : it->second.live();
  return encode_update(uri.value(), live);
}

Result<Bytes> RcServer::handle_apply(const simnet::Address& from, const Bytes& body) {
  ByteReader r(body);
  auto uri = r.str();
  if (!uri) return uri.error();
  auto count = r.u32();
  if (!count) return count.error();
  std::vector<Op> ops;
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto op = Op::decode(r);
    if (!op) return op.error();
    ops.push_back(std::move(op).take());
  }
  (void)from;
  if (config_.single_master && !peers_.empty() && !(peers_.front() == rpc_.address())) {
    // LDAP-style referral mode: only peers().front() — the master — accepts
    // writes; every other replica refers the writer there.  For the
    // ablation bench only.
    ++stats_.forwards;
    // A synchronous forward is not possible in the event loop; reject with
    // state_error carrying the master's address — RcClient retries there.
    return Result<Bytes>(Errc::state_error,
                         "single-master: write at " + peers_.front().to_string());
  }
  auto written = apply(uri.value(), ops);
  return encode_update(uri.value(), written);
}

void RcServer::handle_replicate(const Bytes& body) {
  auto update = decode_update(body);
  if (!update) {
    log_.warn("malformed replicate payload");
    return;
  }
  // Inside srudp's delivery handler: link the merge into the carrying
  // message's flow so a `trace` of the write shows the replica fan-out land.
  auto& tracer = obs::Tracer::global();
  if (tracer.flow_enabled() && rpc_.srudp().last_delivered_flow() != 0)
    tracer.flow(obs::TraceEvent::Phase::flow_step, "flow", "rcds.replicate_rx",
                rpc_.srudp().last_delivered_flow(),
                {{"uri", update.value().first},
                 {"assertions", std::to_string(update.value().second.size())}});
  Record& record = store_[update.value().first];
  // Replication lag: virtual time from the originating server's stamp to
  // this replica merging the assertion.
  SimTime now = engine_.now();
  for (const auto& a : update.value().second) {
    record.merge(a);
    if (a.timestamp <= now)
      replication_lag_ms_->observe(static_cast<double>(now - a.timestamp) / 1e6);
  }
  ++stats_.replicated_in;
}

Result<Bytes> RcServer::handle_sync_digest(const Bytes& body) {
  // Request: list of (uri, latest timestamp) the peer holds.  Response:
  // every assertion in any of our records that is newer than the peer's
  // digest for that URI, plus whole records the peer does not know.
  ByteReader r(body);
  auto count = r.u32();
  if (!count) return count.error();
  std::map<std::string, SimTime> peer_digest;
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto uri = r.str();
    if (!uri) return uri.error();
    auto ts = r.i64();
    if (!ts) return ts.error();
    peer_digest[uri.value()] = ts.value();
  }

  ByteWriter w;
  std::uint32_t records = 0;
  ByteWriter payload;
  for (const auto& [uri, record] : store_) {
    auto it = peer_digest.find(uri);
    SimTime peer_latest = it == peer_digest.end() ? -1 : it->second;
    if (record.latest() <= peer_latest) continue;
    std::vector<Assertion> newer;
    for (const auto& a : record.all())
      if (a.timestamp > peer_latest) newer.push_back(a);
    if (newer.empty()) continue;
    Bytes update = encode_update(uri, newer);
    payload.blob(update);
    ++records;
  }
  w.u32(records);
  w.raw(payload.bytes());
  return std::move(w).take();
}

void RcServer::anti_entropy_tick() {
  engine_.schedule_weak(config_.anti_entropy_period, [this] { anti_entropy_tick(); });
  if (!rpc_.host().up()) return;  // dead replicas sync on reboot instead
  if (peers_.empty()) return;
  ++stats_.anti_entropy_rounds;
  const simnet::Address peer = peers_[next_sync_peer_++ % peers_.size()];
  obs::FlightRecorder::global().record(
      rpc_.host().name(), "rcds", "anti_entropy",
      "peer=" + peer.to_string() + " uris=" + std::to_string(store_.size()));

  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(store_.size()));
  for (const auto& [uri, record] : store_) {
    w.str(uri);
    w.i64(record.latest());
  }
  std::uint64_t flow =
      rpc_.call(peer, tags::kSyncDigest, std::move(w).take(), [this](Result<Bytes> response) {
        if (!response) return;  // peer down; next round will try another
        ByteReader r(response.value());
        auto count = r.u32();
        if (!count) return;
        std::uint64_t repaired = 0;
        for (std::uint32_t i = 0; i < count.value(); ++i) {
          auto blob = r.blob();
          if (!blob) return;
          auto update = decode_update(blob.value());
          if (!update) return;
          Record& record = store_[update.value().first];
          for (const auto& a : update.value().second)
            if (record.merge(a)) ++stats_.anti_entropy_repairs, ++repaired;
        }
        auto& tracer = obs::Tracer::global();
        if (repaired > 0 && tracer.flow_enabled() &&
            rpc_.srudp().last_delivered_flow() != 0)
          tracer.flow(obs::TraceEvent::Phase::flow_step, "flow", "rcds.anti_entropy_repair",
                      rpc_.srudp().last_delivered_flow(),
                      {{"assertions", std::to_string(repaired)}});
      });
  auto& tracer = obs::Tracer::global();
  if (tracer.flow_enabled())
    tracer.flow(obs::TraceEvent::Phase::flow_step, "flow", "rcds.anti_entropy", flow,
                {{"peer", peer.to_string()}, {"uris", std::to_string(store_.size())}});
}

}  // namespace snipe::rcds
