// RC resolver client (§3.4 "Resource location").
//
// Wraps any RpcEndpoint with the metadata operations every SNIPE component
// needs, with replica failover: requests go to a preferred replica and
// rotate to the others on timeout — replication is what gave the UTK
// testbed its "almost perfect level of availability" (§6), and
// bench_availability measures this client against failing replicas.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "rcds/assertion.hpp"
#include "rcds/server.hpp"
#include "transport/rpc.hpp"

namespace snipe::rcds {

struct RcClientConfig {
  /// Per-replica attempt timeout; total worst case is this times replicas.
  SimDuration try_timeout = duration::milliseconds(800);
};

struct RcClientStats {
  std::uint64_t lookups = 0;
  std::uint64_t writes = 0;
  std::uint64_t failovers = 0;   ///< attempts that moved to another replica
  std::uint64_t failures = 0;    ///< operations that exhausted all replicas
};

class RcClient {
 public:
  using AssertionsHandler = std::function<void(Result<std::vector<Assertion>>)>;
  using ValuesHandler = std::function<void(Result<std::vector<std::string>>)>;
  using DoneHandler = std::function<void(Result<void>)>;

  RcClient(transport::RpcEndpoint& rpc, std::vector<simnet::Address> replicas,
           RcClientConfig config = {});

  /// Full metadata for a URI.
  void get(const std::string& uri, AssertionsHandler done);
  /// Applies a batch of mutations.
  void apply(const std::string& uri, std::vector<Op> ops, AssertionsHandler done);

  // Sugar over get/apply.
  void lookup(const std::string& uri, const std::string& name, ValuesHandler done);
  void set(const std::string& uri, const std::string& name, const std::string& value,
           DoneHandler done);
  void add(const std::string& uri, const std::string& name, const std::string& value,
           DoneHandler done);
  void remove(const std::string& uri, const std::string& name, const std::string& value,
              DoneHandler done);

  const std::vector<simnet::Address>& replicas() const { return replicas_; }
  const RcClientStats& stats() const { return stats_; }

 private:
  void attempt(std::uint32_t tag, Bytes body, std::size_t replica_index, int tries_left,
               AssertionsHandler done);
  /// Replica new operations start at: fewest recent failures, the sticky
  /// preference and then list order breaking ties.
  std::size_t healthiest() const;

  transport::RpcEndpoint& rpc_;
  std::vector<simnet::Address> replicas_;
  RcClientConfig config_;
  std::size_t preferred_ = 0;
  /// Recent failure count per replica (capped).  Bumped when an attempt at
  /// that replica fails, zeroed on success; the *other* replicas decay by
  /// one per success so a recovered replica eventually gets re-probed
  /// instead of being shunned forever.
  std::vector<int> fails_;
  /// Liveness token captured (weakly) by in-flight RPC callbacks: a client
  /// can be destroyed with operations outstanding (process migration tears
  /// the owning SnipeProcess down mid-call), and a late response must not
  /// touch the freed client.  The result is still delivered to `done`,
  /// which is captured by value; only the bookkeeping is skipped.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  RcClientStats stats_;
  /// Pull sources "rcds.client.*" in the global registry; declared last so
  /// they retire (fold into retained totals) before stats_ dies.
  obs::SourceGroup metrics_sources_;
};

}  // namespace snipe::rcds
