// The RC / metadata server (§3.1, §5.2).
//
// Each RcServer is a full master: it accepts reads and writes, stamps
// writes with the virtual time and its own identity, pushes updates to its
// replica peers, and runs periodic anti-entropy so a replica that was down
// longer than the transport's buffering window converges anyway.  This is
// the "true master-master update data model" §7 credits for RCDS being
// "inherently more scalable" than the LDAP-based MDS — bench_rcds_replication
// measures exactly that contrast (see SingleMasterRegistry below).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "rcds/assertion.hpp"
#include "transport/rpc.hpp"

namespace snipe::rcds {

/// RPC tags used by the metadata service.
namespace tags {
inline constexpr std::uint32_t kGet = 110;
inline constexpr std::uint32_t kApply = 111;
inline constexpr std::uint32_t kReplicate = 112;  ///< one-way peer update
inline constexpr std::uint32_t kSyncDigest = 113;
inline constexpr std::uint32_t kPing = 114;
inline constexpr std::uint32_t kForward = 115;  ///< single-master mode only
}  // namespace tags

struct RcServerConfig {
  /// Anti-entropy period (0 disables).  Each round picks one peer
  /// round-robin and exchanges digests.
  SimDuration anti_entropy_period = duration::seconds(10);
  /// MD5 shared secret for request authentication ("" disables) — the
  /// authenticator the 1998 implementation used (§6).
  std::string shared_secret;
  /// Single-master mode: if true and this server is not peers().front(),
  /// writes are forwarded to the first peer (the master) instead of being
  /// applied locally.  Models the LDAP/X.500-style MDS §7 compares against;
  /// used only by the ablation bench.
  bool single_master = false;
};

struct RcServerStats {
  std::uint64_t gets = 0;
  std::uint64_t applies = 0;
  std::uint64_t replicated_in = 0;
  std::uint64_t replicated_out = 0;
  std::uint64_t anti_entropy_rounds = 0;
  std::uint64_t anti_entropy_repairs = 0;
  std::uint64_t forwards = 0;
};

class RcServer {
 public:
  static constexpr std::uint16_t kDefaultPort = 7100;

  RcServer(simnet::Host& host, std::uint16_t port = kDefaultPort, RcServerConfig config = {});

  /// Declares the other replicas of this registry.  Symmetric: every
  /// replica should list every other.
  void set_peers(std::vector<simnet::Address> peers);
  const std::vector<simnet::Address>& peers() const { return peers_; }

  simnet::Address address() const { return rpc_.address(); }
  /// The identity stamped into assertions this server accepts.
  const std::string& server_id() const { return server_id_; }

  /// Direct (in-process) accessors, used by tests and by co-located
  /// components; remote access goes through RcClient.
  std::vector<Assertion> get(const std::string& uri) const;
  std::vector<Assertion> apply(const std::string& uri, const std::vector<Op>& ops);

  std::size_t resource_count() const { return store_.size(); }
  const RcServerStats& stats() const { return stats_; }
  transport::RpcEndpoint& rpc() { return rpc_; }

 private:
  Result<Bytes> handle_get(const Bytes& body);
  Result<Bytes> handle_apply(const simnet::Address& from, const Bytes& body);
  void handle_replicate(const Bytes& body);
  Result<Bytes> handle_sync_digest(const Bytes& body);
  void broadcast_update(const std::string& uri, const std::vector<Assertion>& assertions);
  void anti_entropy_tick();

  transport::RpcEndpoint rpc_;
  simnet::Engine& engine_;
  RcServerConfig config_;
  std::string server_id_;
  std::vector<simnet::Address> peers_;
  std::size_t next_sync_peer_ = 0;
  std::map<std::string, Record> store_;
  /// Monotonic stamp: never reuse a (timestamp, origin) pair even if two
  /// writes land in the same event-time instant.
  SimTime last_stamp_ = 0;
  RcServerStats stats_;
  obs::Histogram* replication_lag_ms_;  ///< global "rcds.replication_lag_ms"
  obs::Counter* catalog_hits_;          ///< global "rcds.catalog_hits"
  obs::Counter* catalog_misses_;        ///< global "rcds.catalog_misses"
  Logger log_;
  /// Declared last so sources retire before stats_ dies.
  obs::SourceGroup metrics_sources_;
};

/// Encodes a batch of assertions for one URI (shared by replicate/sync).
Bytes encode_update(const std::string& uri, const std::vector<Assertion>& assertions);
Result<std::pair<std::string, std::vector<Assertion>>> decode_update(const Bytes& body);

}  // namespace snipe::rcds
