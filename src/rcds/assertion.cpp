#include "rcds/assertion.hpp"

#include <algorithm>

namespace snipe::rcds {

void Assertion::encode(ByteWriter& w) const {
  w.str(name);
  w.str(value);
  w.i64(timestamp);
  w.str(origin);
  w.u8(tombstone ? 1 : 0);
}

Result<Assertion> Assertion::decode(ByteReader& r) {
  Assertion a;
  auto name = r.str();
  if (!name) return name.error();
  a.name = name.value();
  auto value = r.str();
  if (!value) return value.error();
  a.value = value.value();
  auto ts = r.i64();
  if (!ts) return ts.error();
  a.timestamp = ts.value();
  auto origin = r.str();
  if (!origin) return origin.error();
  a.origin = origin.value();
  auto tomb = r.u8();
  if (!tomb) return tomb.error();
  a.tombstone = tomb.value() != 0;
  return a;
}

bool Record::merge(const Assertion& a) {
  latest_ = std::max(latest_, a.timestamp);
  auto key = std::make_pair(a.name, a.value);
  auto it = map_.find(key);
  if (it == map_.end()) {
    map_.emplace(std::move(key), a);
    return true;
  }
  if (Assertion::newer(a, it->second)) {
    it->second = a;
    return true;
  }
  return false;
}

std::vector<Assertion> Record::live() const {
  std::vector<Assertion> out;
  for (const auto& [key, a] : map_)
    if (!a.tombstone) out.push_back(a);
  return out;
}

std::vector<Assertion> Record::all() const {
  std::vector<Assertion> out;
  out.reserve(map_.size());
  for (const auto& [key, a] : map_) out.push_back(a);
  return out;
}

std::vector<std::string> Record::values(const std::string& name) const {
  std::vector<std::string> out;
  for (auto it = map_.lower_bound({name, ""}); it != map_.end() && it->first.first == name;
       ++it)
    if (!it->second.tombstone) out.push_back(it->second.value);
  return out;
}

std::optional<std::string> Record::value(const std::string& name) const {
  auto v = values(name);
  if (v.empty()) return std::nullopt;
  return v.front();
}

void Op::encode(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  w.str(name);
  w.str(value);
}

Result<Op> Op::decode(ByteReader& r) {
  Op op;
  auto kind = r.u8();
  if (!kind) return kind.error();
  if (kind.value() < 1 || kind.value() > 3)
    return Error{Errc::corrupt, "bad op kind"};
  op.kind = static_cast<Op::Kind>(kind.value());
  auto name = r.str();
  if (!name) return name.error();
  op.name = name.value();
  auto value = r.str();
  if (!value) return value.error();
  op.value = value.value();
  return op;
}

}  // namespace snipe::rcds
