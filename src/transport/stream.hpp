// A TCP-like reliable byte-stream protocol.
//
// SNIPE's comms module offered TCP alongside its own selective re-send
// protocol (§6), and Fig. 1 compares the two on each medium.  To make that
// comparison on the simulator we implement the relevant TCP mechanics from
// scratch: three-way handshake, MSS segmentation, cumulative ACKs, sliding
// window bounded by min(cwnd, receiver window), slow start / congestion
// avoidance (Reno-style), fast retransmit on three duplicate ACKs, and RTO
// with exponential backoff.  Messages ride on the stream with a 4-byte
// length prefix, so both protocols present the same message API to the
// layers above.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "obs/metrics.hpp"
#include "simnet/world.hpp"
#include "transport/wire.hpp"
#include "util/log.hpp"

namespace snipe::transport {

struct StreamConfig {
  std::size_t rwnd = 256 * 1024;  ///< advertised receive window
  std::size_t initial_cwnd_segments = 4;
  SimDuration initial_rto = duration::milliseconds(100);
  SimDuration min_rto = duration::milliseconds(2);
  SimDuration max_rto = duration::seconds(4);
  SimDuration connect_timeout = duration::seconds(10);
};

struct StreamStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_retransmitted = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t rto_events = 0;
  std::uint64_t fast_retransmits = 0;
};

class StreamEndpoint;

/// One direction-pair of an established (or establishing) connection.
class StreamConnection {
 public:
  /// Messages are delivered as contiguous Payloads; on a clean path the
  /// bytes alias the sender's original message buffer (segments are slices
  /// of the send buffer, which itself splices in the callers' buffers).
  using MessageHandler = std::function<void(Payload message)>;
  using ConnectHandler = std::function<void(Result<void>)>;

  /// Queues a length-prefixed message onto the stream (by reference — the
  /// message buffer is shared, not copied, until the wire).
  void send_message(Payload message);
  void set_message_handler(MessageHandler h) { on_message_ = std::move(h); }
  /// Fires once when the handshake completes (client side).
  void set_connect_handler(ConnectHandler h) { on_connect_ = std::move(h); }

  bool established() const { return state_ == State::established; }
  /// Bytes accepted by send_message but not yet cumulatively acked.
  std::size_t unacked_bytes() const { return send_buffer_.size(); }
  const simnet::Address& peer() const { return peer_; }
  const StreamStats& stats() const { return stats_; }

 private:
  friend class StreamEndpoint;
  enum class State { syn_sent, syn_received, established, closed };

  StreamConnection(StreamEndpoint* endpoint, simnet::Address peer, std::uint32_t conn_id,
                   bool initiator);

  void start_connect();
  void on_packet(PacketType type, const StreamPacket& p);
  void on_data_segment(const StreamPacket& p);
  void on_ack(const StreamPacket& p);
  void pump();
  void send_segment(std::uint64_t seq, std::size_t len, bool retransmission);
  void send_control(PacketType type);
  void arm_rto();
  void on_rto();
  void deliver_contiguous();
  void parse_messages();
  std::size_t mss() const;

  StreamEndpoint* endpoint_;
  simnet::Address peer_;
  std::uint32_t conn_id_;
  bool initiator_;
  State state_ = State::closed;

  /// One queued message's byte range on the stream, for trace threading:
  /// segments look up the flow of the message containing their first byte,
  /// and the span retires (observing delivery latency) once fully acked.
  struct MsgSpan {
    std::uint64_t end = 0;  ///< absolute stream offset one past the frame
    std::uint64_t flow = 0;
    SimTime enqueued = 0;
  };

  // --- send side ---
  Payload send_buffer_;  ///< bytes [snd_una, end); segments alias messages
  std::deque<MsgSpan> msg_spans_;  ///< unacked messages, ascending by end
  std::uint64_t next_msg_seq_ = 1;
  std::uint64_t snd_una = 0;
  std::uint64_t snd_nxt = 0;
  double cwnd = 0;
  double ssthresh = 0;
  std::size_t peer_window_ = 0;
  int dup_acks_ = 0;
  SimDuration srtt_ = 0;
  SimDuration rttvar_ = 0;
  SimDuration rto_ = 0;
  simnet::TimerId rto_timer_;
  /// Outstanding RTT probe: (sequence that must be acked, send time).
  std::uint64_t rtt_seq_ = 0;
  SimTime rtt_sent_at_ = -1;

  // --- receive side ---
  std::uint64_t rcv_nxt = 0;
  std::map<std::uint64_t, Payload> out_of_order_;
  Payload receive_buffer_;  ///< contiguous bytes not yet parsed into messages

  MessageHandler on_message_;
  ConnectHandler on_connect_;
  StreamStats stats_;
  /// Global "stream.delivery_ms": send_message() to cumulative ack of the
  /// whole frame (the stream's sender-side delivery latency).
  obs::Histogram* delivery_ms_ = nullptr;
  /// Declared after stats_ so the sources unregister (folding into the
  /// registry's retained totals) before the fields they read are destroyed.
  obs::SourceGroup metrics_sources_;
};

/// Owns the port and demultiplexes connections, like a socket table.
class StreamEndpoint {
 public:
  using AcceptHandler = std::function<void(std::shared_ptr<StreamConnection>)>;

  StreamEndpoint(simnet::Host& host, std::uint16_t port, StreamConfig config = {});
  ~StreamEndpoint();

  StreamEndpoint(const StreamEndpoint&) = delete;
  StreamEndpoint& operator=(const StreamEndpoint&) = delete;

  /// Accepts incoming connections (server role).
  void listen(AcceptHandler handler) { on_accept_ = std::move(handler); }

  /// Initiates a connection to a listening StreamEndpoint.
  std::shared_ptr<StreamConnection> connect(const simnet::Address& dst);

  std::uint16_t port() const { return port_; }
  simnet::Address address() const { return {host_.name(), port_}; }
  simnet::Host& host() { return host_; }
  simnet::Engine& engine() { return engine_; }
  const StreamConfig& config() const { return config_; }

 private:
  friend class StreamConnection;
  void on_packet(const simnet::Packet& packet);
  void raw_send(const simnet::Address& dst, Payload wire);

  simnet::Host& host_;
  simnet::Engine& engine_;
  std::uint16_t port_;
  StreamConfig config_;
  AcceptHandler on_accept_;
  /// Keyed by (peer address, connection id).
  std::map<std::pair<simnet::Address, std::uint32_t>,
           std::shared_ptr<StreamConnection>>
      connections_;
  std::uint32_t next_conn_id_ = 1;
  Logger log_;
};

}  // namespace snipe::transport
