// The "experimental multicast protocol for ethernet" (§6).
//
// Distinct from §5.4's router-based wide-area multicast (which lives in
// snipe_core), this is the high-performance single-segment protocol the
// paper says was tested: the sender broadcasts fragments once on the shared
// medium; each receiver that detects a hole unicasts a NACK listing the
// missing fragments; the sender re-broadcasts just those.  One transmission
// serves every receiver, so goodput is nearly independent of group size —
// the property bench_multicast compares against unicast fan-out.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "obs/metrics.hpp"
#include "simnet/world.hpp"
#include "transport/wire.hpp"
#include "util/log.hpp"

namespace snipe::transport {

struct EthMcastConfig {
  SimDuration nack_delay = duration::microseconds(500);  ///< gap -> NACK
  SimDuration nack_retry = duration::milliseconds(20);   ///< while incomplete
  SimDuration sender_hold = duration::seconds(5);  ///< keep data for repairs
};

/// Cells double as pull sources in the global obs::MetricsRegistry
/// ("ethmcast.nacks_sent", "ethmcast.repairs_sent", ...).
struct EthMcastStats {
  obs::Cell messages_sent;
  obs::Cell messages_delivered;
  obs::Cell fragments_broadcast;
  obs::Cell repairs_sent;
  obs::Cell nacks_sent;
};

/// One endpoint of the Ethernet multicast protocol: both a sender and a
/// receiver for a given (network segment, group, port).
class EthMcastEndpoint {
 public:
  /// Delivered messages are contiguous Payloads; on a clean path the bytes
  /// alias the sender's original buffer (fragments coalesce on reassembly).
  using MessageHandler =
      std::function<void(const simnet::Address& src, Payload message)>;

  EthMcastEndpoint(simnet::Host& host, const std::string& network, const std::string& group,
                   std::uint16_t port, EthMcastConfig config = {});
  ~EthMcastEndpoint();

  /// Broadcasts `message` to every other endpoint of this group on the
  /// segment.  Reliability is NACK-driven.
  void send(Payload message);
  void set_handler(MessageHandler handler) { handler_ = std::move(handler); }

  const EthMcastStats& stats() const { return stats_; }

 private:
  struct OutMessage {
    Payload data;  ///< the whole message; fragments are slices of it
    std::uint32_t frag_count = 0;
    std::size_t frag_size = 0;
    std::uint64_t flow = 0;  ///< trace context carried by every fragment
    SimTime born = 0;        ///< send time, carried on the wire for latency
  };
  struct InMessage {
    std::vector<Payload> frags;  ///< slices of the sender's buffer
    Bytes have;
    std::uint32_t have_count = 0;
    std::uint32_t frag_count = 0;
    std::uint32_t total_len = 0;
    std::uint64_t flow = 0;
    SimTime born = 0;
    simnet::TimerId nack_timer;
  };

  void on_packet(const simnet::Packet& packet);
  void broadcast_fragment(const OutMessage& msg, std::uint64_t msg_id, std::uint32_t index,
                          bool repair);
  void schedule_nack(const simnet::Address& sender, std::uint64_t msg_id, SimDuration delay);

  simnet::Host& host_;
  simnet::Engine& engine_;
  std::string network_;
  std::string group_;
  std::uint16_t port_;
  EthMcastConfig config_;
  std::size_t frag_payload_;
  MessageHandler handler_;
  std::uint64_t next_msg_id_ = 1;
  std::map<std::uint64_t, OutMessage> sent_;  ///< held for repair requests
  std::map<std::pair<std::string, std::uint64_t>, InMessage> in_;  ///< by (sender, id)
  std::map<std::string, std::uint64_t> delivered_up_to_;
  EthMcastStats stats_;
  /// Global "ethmcast.delivery_ms": wire `born` stamp to reassembly on the
  /// receiver (valid because the simulation clock is shared).
  obs::Histogram* delivery_ms_;
  Logger log_;
  /// Declared after stats_ so retirement reads live cells.
  obs::SourceGroup metrics_sources_;
};

}  // namespace snipe::transport
