#include "transport/ethmcast.hpp"

#include <algorithm>

#include "obs/flight.hpp"
#include "obs/trace.hpp"

namespace snipe::transport {

EthMcastEndpoint::EthMcastEndpoint(simnet::Host& host, const std::string& network,
                                   const std::string& group, std::uint16_t port,
                                   EthMcastConfig config)
    : host_(host),
      engine_(host.engine()),
      network_(network),
      group_(group),
      port_(port),
      config_(config),
      log_("ethmcast@" + host.name() + "/" + group) {
  auto* nic = host_.nic_on(network_);
  assert(nic != nullptr && "host not attached to multicast segment");
  // Leave room for the group name in the header; clamp before subtracting
  // so a tiny MTU cannot wrap the budget to a huge value.
  std::size_t mtu = nic->network()->model().mtu;
  // mdata = DATA header fields + born stamp (8) + length-prefixed group.
  std::size_t header = kDataHeaderBytes + 8 + 4 + group.size();
  frag_payload_ = std::max<std::size_t>(1, mtu - std::min(mtu, header));
  host_.bind(port_, [this](const simnet::Packet& p) { on_packet(p); }).value();
  delivery_ms_ = &obs::MetricsRegistry::global().histogram("ethmcast.delivery_ms");
  metrics_sources_.add("ethmcast.messages_sent", [this] { return stats_.messages_sent.v; });
  metrics_sources_.add("ethmcast.messages_delivered",
                       [this] { return stats_.messages_delivered.v; });
  metrics_sources_.add("ethmcast.fragments_broadcast",
                       [this] { return stats_.fragments_broadcast.v; });
  metrics_sources_.add("ethmcast.repairs_sent", [this] { return stats_.repairs_sent.v; });
  metrics_sources_.add("ethmcast.nacks_sent", [this] { return stats_.nacks_sent.v; });
}

EthMcastEndpoint::~EthMcastEndpoint() {
  host_.unbind(port_);
  for (auto& [key, msg] : in_) engine_.cancel(msg.nack_timer);
}

void EthMcastEndpoint::send(Payload message) {
  OutMessage msg;
  msg.frag_size = frag_payload_;
  msg.frag_count =
      message.empty() ? 1
                      : static_cast<std::uint32_t>((message.size() + frag_payload_ - 1) /
                                                   frag_payload_);
  msg.data = std::move(message);
  std::uint64_t msg_id = next_msg_id_++;
  // The group plays the peer-host role in the mint: a multicast flow has
  // one sender and many receivers, all sharing the same id.
  msg.flow = mint_flow(host_.name(), port_, group_, port_, msg_id);
  msg.born = engine_.now();
  auto& tracer = obs::Tracer::global();
  if (tracer.flow_enabled())
    tracer.flow(obs::TraceEvent::Phase::flow_start, "flow", "ethmcast.send", msg.flow,
                {{"group", group_},
                 {"msg", std::to_string(msg_id)},
                 {"bytes", std::to_string(msg.data.size())}});
  for (std::uint32_t i = 0; i < msg.frag_count; ++i)
    broadcast_fragment(msg, msg_id, i, /*repair=*/false);
  ++stats_.messages_sent;
  sent_[msg_id] = std::move(msg);
  // Hold the buffer long enough for repair requests, then let it go.
  engine_.schedule_weak(config_.sender_hold, [this, msg_id] { sent_.erase(msg_id); });
}

void EthMcastEndpoint::broadcast_fragment(const OutMessage& msg, std::uint64_t msg_id,
                                          std::uint32_t index, bool repair) {
  McastDataPacket p;
  p.group = group_;
  p.msg_id = msg_id;
  p.frag_index = index;
  p.frag_count = msg.frag_count;
  p.total_len = static_cast<std::uint32_t>(msg.data.size());
  p.flow = msg.flow;
  p.born = msg.born;
  std::size_t begin = static_cast<std::size_t>(index) * msg.frag_size;
  std::size_t end = std::min(msg.data.size(), begin + msg.frag_size);
  if (begin < end) p.payload = msg.data.slice(begin, end - begin);
  ++stats_.fragments_broadcast;
  auto& tracer = obs::Tracer::global();
  if (tracer.flow_enabled())
    tracer.flow(obs::TraceEvent::Phase::flow_step, "flow",
                repair ? "ethmcast.repair" : "ethmcast.tx", msg.flow,
                {{"frag", std::to_string(index)}});
  auto r = host_.broadcast(network_, port_, encode_mcast_data(port_, p), port_);
  if (!r) log_.trace("broadcast failed: ", r.error().to_string());
}

void EthMcastEndpoint::on_packet(const simnet::Packet& packet) {
  auto head = decode_head(packet.payload);
  if (!head) return;

  if (head.value().type == PacketType::mnack) {
    auto p = decode_mcast_nack(packet.payload);
    if (!p || p.value().group != group_) return;
    auto it = sent_.find(p.value().msg_id);
    if (it == sent_.end()) return;  // repair window closed
    obs::FlightRecorder::global().record(
        host_.name(), "ethmcast", "repair",
        "group=" + group_ + " msg=" + std::to_string(p.value().msg_id) +
            " missing=" + std::to_string(p.value().missing.size()));
    for (std::uint32_t index : p.value().missing) {
      if (index >= it->second.frag_count) continue;
      broadcast_fragment(it->second, p.value().msg_id, index, /*repair=*/true);
      ++stats_.repairs_sent;
    }
    return;
  }
  if (head.value().type != PacketType::mdata) return;
  auto decoded = decode_mcast_data(packet.payload);
  if (!decoded || decoded.value().group != group_) return;
  const McastDataPacket& p = decoded.value();
  simnet::Address sender{packet.src.host, head.value().src_port};

  auto key = std::make_pair(sender.host, p.msg_id);
  // Duplicate-after-delivery guard.  Only applies when no reassembly is in
  // flight: repairs for an older message may arrive after a newer one
  // completed (repair latency), and dropping them would wedge it forever.
  if (!in_.count(key) && delivered_up_to_[sender.host] >= p.msg_id) return;

  auto [it, inserted] = in_.try_emplace(key);
  InMessage& msg = it->second;
  if (inserted) {
    msg.frag_count = p.frag_count;
    msg.total_len = p.total_len;
    msg.flow = p.flow;
    msg.born = p.born;
    msg.frags.resize(p.frag_count);
    msg.have = make_bitmap(p.frag_count);
  } else if (msg.frag_count != p.frag_count || msg.total_len != p.total_len) {
    // A corrupted or hostile fragment disagreeing with the first one seen:
    // indexing frags/have with the packet's own frag_count would write out
    // of bounds, so drop it (repairs re-send the authentic fragment).
    log_.warn("inconsistent fragment metadata for msg ", p.msg_id, " from ",
              sender.host);
    return;
  }
  if (!bitmap_get(msg.have, p.frag_index)) {
    bitmap_set(msg.have, p.frag_index);
    msg.frags[p.frag_index] = p.payload;
    ++msg.have_count;
  }

  if (msg.have_count == msg.frag_count) {
    Payload assembled;
    for (auto& frag : msg.frags) assembled.append(std::move(frag));
    assembled.flatten();  // no-op when the fragments coalesced
    auto& tracer = obs::Tracer::global();
    if (tracer.flow_enabled())
      tracer.flow(obs::TraceEvent::Phase::flow_end, "flow", "ethmcast.deliver", msg.flow,
                  {{"host", host_.name()}, {"bytes", std::to_string(assembled.size())}});
    delivery_ms_->observe(static_cast<double>(engine_.now() - msg.born) / 1e6);
    engine_.cancel(msg.nack_timer);
    in_.erase(it);
    auto& up_to = delivered_up_to_[sender.host];
    up_to = std::max(up_to, p.msg_id);
    ++stats_.messages_delivered;
    if (handler_) handler_(sender, std::move(assembled));
    return;
  }
  // Hole detected (fragment beyond the first missing one arrived)?  Arm a
  // short NACK; otherwise rely on the periodic retry.
  bool gap = false;
  for (std::uint32_t i = 0; i < p.frag_index; ++i)
    if (!bitmap_get(msg.have, i)) {
      gap = true;
      break;
    }
  if (!msg.nack_timer.valid())
    schedule_nack(sender, p.msg_id, gap ? config_.nack_delay : config_.nack_retry);
}

void EthMcastEndpoint::schedule_nack(const simnet::Address& sender, std::uint64_t msg_id,
                                     SimDuration delay) {
  auto key = std::make_pair(sender.host, msg_id);
  auto it = in_.find(key);
  if (it == in_.end()) return;
  it->second.nack_timer = engine_.schedule(delay, [this, sender, msg_id] {
    auto key = std::make_pair(sender.host, msg_id);
    auto it = in_.find(key);
    if (it == in_.end()) return;
    InMessage& msg = it->second;
    msg.nack_timer = simnet::TimerId{};
    McastNackPacket nack;
    nack.group = group_;
    nack.msg_id = msg_id;
    for (std::uint32_t i = 0; i < msg.frag_count; ++i)
      if (!bitmap_get(msg.have, i)) nack.missing.push_back(i);
    if (nack.missing.empty()) return;
    ++stats_.nacks_sent;
    auto& tracer = obs::Tracer::global();
    if (tracer.flow_enabled())
      tracer.flow(obs::TraceEvent::Phase::flow_step, "flow", "ethmcast.nack", msg.flow,
                  {{"host", host_.name()},
                   {"missing", std::to_string(nack.missing.size())}});
    obs::FlightRecorder::global().record(
        host_.name(), "ethmcast", "nack",
        "group=" + group_ + " msg=" + std::to_string(msg_id) +
            " missing=" + std::to_string(nack.missing.size()));
    simnet::SendOptions opts;
    opts.src_port = port_;
    opts.preferred_network = network_;
    auto r = host_.send(sender, encode_mcast_nack(port_, nack), opts);
    if (!r) log_.trace("nack failed: ", r.error().to_string());
    schedule_nack(sender, msg_id, config_.nack_retry);
  });
}

}  // namespace snipe::transport
