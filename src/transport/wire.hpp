// On-wire packet formats for the SNIPE communications module.
//
// The 1998 SNIPE comms module (§6) spoke three protocols over raw
// datagrams: a selective re-send UDP protocol ("SRUDP" here), TCP, and an
// experimental Ethernet multicast.  Every packet starts with a one-byte
// type and the sender's reply port; the rest is protocol-specific.
//
// Encoders produce a Payload whose byte sequence is exactly what the old
// ByteWriter emitted: a small pooled header segment followed by the data
// segments spliced in by reference.  A DATA fragment therefore *aliases*
// the sender's message buffer instead of copying its slice, and decoders
// return payload fields as zero-copy slices of the received packet.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/bytes.hpp"
#include "util/payload.hpp"
#include "util/result.hpp"

namespace snipe::transport {

enum class PacketType : std::uint8_t {
  // SRUDP (selective re-send datagram protocol)
  data = 1,     ///< one fragment of a message
  msg_ack = 2,  ///< whole message received
  status = 3,   ///< receiver's fragment bitmap (drives selective re-send)
  probe = 4,    ///< sender asking for a status report
  data_ck = 5,  ///< DATA with an FNV-1a payload checksum (SrudpConfig::checksum)
  // Stream (TCP-like)
  syn = 10,
  syn_ack = 11,
  ack = 12,
  seg = 13,
  fin = 14,
  rst = 15,
  // Experimental Ethernet multicast
  mdata = 20,
  mnack = 21,
};

/// Common prefix of every transport packet.
struct PacketHead {
  PacketType type;
  std::uint16_t src_port = 0;  ///< sender's transport endpoint port
};

/// SRUDP DATA fragment.  `payload` is a slice of the received datagram (or,
/// on the send side, of the message being fragmented) — never a copy.
struct DataPacket {
  std::uint64_t msg_id = 0;
  std::uint32_t frag_index = 0;
  std::uint32_t frag_count = 0;
  std::uint32_t total_len = 0;  ///< full message length, for sanity checks
  std::uint64_t flow = 0;       ///< trace context (mint_flow); 0 = untraced
  Payload payload;
  bool has_checksum = false;    ///< wire type was data_ck
  bool checksum_ok = true;      ///< checksum verified (always true for data)
};

/// SRUDP STATUS: which fragments of `msg_id` the receiver holds.
struct StatusPacket {
  std::uint64_t msg_id = 0;
  std::uint32_t frag_count = 0;
  Bytes bitmap;  ///< frag_count bits, little-endian within bytes
};

/// SRUDP MSG_ACK / PROBE carry just the message id.
struct MsgIdPacket {
  std::uint64_t msg_id = 0;
};

/// Stream segment (also used, payload-less, for SYN/SYN_ACK/ACK/FIN/RST).
struct StreamPacket {
  std::uint32_t conn_id = 0;   ///< initiator-chosen connection id
  std::uint64_t seq = 0;       ///< first payload byte's stream offset
  std::uint64_t ack = 0;       ///< cumulative ack (next expected offset)
  std::uint32_t window = 0;    ///< receiver's advertised window
  Payload payload;
};

/// Multicast data: like DataPacket plus the group it belongs to.
struct McastDataPacket {
  std::string group;
  std::uint64_t msg_id = 0;
  std::uint32_t frag_index = 0;
  std::uint32_t frag_count = 0;
  std::uint32_t total_len = 0;
  std::uint64_t flow = 0;    ///< trace context (mint_flow); 0 = untraced
  std::int64_t born = 0;     ///< sender's virtual send time (multicast has no
                             ///< acks, so receivers compute delivery latency
                             ///< from the shared virtual clock)
  Payload payload;
};

/// Multicast NACK: fragments a receiver is missing.
struct McastNackPacket {
  std::string group;
  std::uint64_t msg_id = 0;
  std::vector<std::uint32_t> missing;
};

/// Upper bound on the fragment count any decoder will accept.  Wire data
/// is untrusted (§4): without a bound, a single hostile or bit-flipped
/// header could make a receiver allocate gigabytes of reassembly state.
/// 2^20 fragments at the minimum fragment size is already a ~256 MB
/// message, far beyond anything the testbed moves.
constexpr std::uint32_t kMaxWireFragments = 1u << 20;

/// Number of bytes the SRUDP DATA header occupies on the wire; used to
/// compute fragment payload budgets from the MTU.  The +8 is the trace
/// context (flow id), always present so tracing on/off cannot change packet
/// sizes (and therefore serialization delays — the replay contract).
constexpr std::size_t kDataHeaderBytes = 1 + 2 + 8 + 4 + 4 + 4 + 8 + 4;  // +4 blob len
/// DATA with checksum (data_ck) carries an extra u32 before the blob.
constexpr std::size_t kDataCkHeaderBytes = kDataHeaderBytes + 4;
/// Ditto for stream segments.
constexpr std::size_t kStreamHeaderBytes = 1 + 2 + 4 + 8 + 8 + 4 + 4;
/// Stream messages ride the byte stream framed as [u32 len][u64 flow][bytes]
/// — the flow id travels in the reliable framing, exactly once and in
/// order, so the receiver can close the flow at parse time.
constexpr std::size_t kStreamFrameHeaderBytes = 4 + 8;

/// Deterministic 64-bit trace-context id (FNV-1a over the endpoints and
/// per-destination message id).  Minting draws no randomness and both ends
/// of an RPC can recompute it, which is what keeps seeded chaos replays
/// bit-identical with tracing on or off.
std::uint64_t mint_flow(std::string_view src_host, std::uint16_t src_port,
                        std::string_view dst_host, std::uint16_t dst_port,
                        std::uint64_t msg_id);

/// FNV-1a (32-bit) over a payload's bytes — the opt-in SRUDP fragment
/// checksum.  The 1998 wire format had none; see SrudpConfig::checksum.
std::uint32_t payload_checksum(const Payload& p);

/// `with_checksum` emits PacketType::data_ck and the payload checksum; the
/// default emits the bare 1998 format byte-for-byte.
Payload encode_data(std::uint16_t src_port, const DataPacket& p, bool with_checksum = false);
Payload encode_status(std::uint16_t src_port, const StatusPacket& p);
Payload encode_msg_id(PacketType type, std::uint16_t src_port, const MsgIdPacket& p);
Payload encode_stream(PacketType type, std::uint16_t src_port, const StreamPacket& p);
Payload encode_mcast_data(std::uint16_t src_port, const McastDataPacket& p);
Payload encode_mcast_nack(std::uint16_t src_port, const McastNackPacket& p);

/// Peeks the packet type + reply port; fails on an empty/unknown packet.
Result<PacketHead> decode_head(const Payload& wire);
/// Accepts both data and data_ck; for data_ck the checksum is verified and
/// reported via DataPacket::checksum_ok (the caller decides whether to
/// reject, so it can count rejects separately from undecodable packets).
Result<DataPacket> decode_data(const Payload& wire);
Result<StatusPacket> decode_status(const Payload& wire);
Result<MsgIdPacket> decode_msg_id(const Payload& wire);
Result<StreamPacket> decode_stream(const Payload& wire);
Result<McastDataPacket> decode_mcast_data(const Payload& wire);
Result<McastNackPacket> decode_mcast_nack(const Payload& wire);

/// Fragment bitmap helpers.
bool bitmap_get(const Bytes& bitmap, std::uint32_t index);
void bitmap_set(Bytes& bitmap, std::uint32_t index);
Bytes make_bitmap(std::uint32_t bits);

}  // namespace snipe::transport
