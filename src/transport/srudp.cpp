#include "transport/srudp.hpp"

#include <algorithm>
#include <cassert>

namespace snipe::transport {

namespace {
constexpr std::size_t kMinFragPayload = 256;
}

SrudpEndpoint::SrudpEndpoint(simnet::Host& host, std::uint16_t port, SrudpConfig config)
    : host_(host),
      engine_(host.engine()),
      port_(port == 0 ? host.ephemeral_port() : port),
      config_(config),
      log_("srudp@" + host.name() + ":" + std::to_string(port_)) {
  // Fragment to the smallest MTU among all attached interfaces so a mid-
  // message route switch never produces an oversize datagram.
  std::size_t budget = 65535;
  for (const auto& nic : host_.nics())
    budget = std::min(budget, nic->network()->model().mtu);
  assert(!host_.nics().empty() && "SRUDP endpoint on an unattached host");
  // Clamp before subtracting: an MTU at or below the header size would
  // otherwise wrap the unsigned difference to a huge fragment budget.
  std::size_t header = config_.checksum ? kDataCkHeaderBytes : kDataHeaderBytes;
  frag_payload_ = std::max(kMinFragPayload, budget - std::min(budget, header));
  host_.bind(port_, [this](const simnet::Packet& p) { on_packet(p); }).value();

  auto& registry = obs::MetricsRegistry::global();
  rtt_ms_ = &registry.histogram("srudp.rtt_ms");
  delivery_ms_ = &registry.histogram("srudp.delivery_ms");
  metrics_sources_.add("srudp.messages_sent", [this] { return stats_.messages_sent.v; });
  metrics_sources_.add("srudp.messages_delivered",
                       [this] { return stats_.messages_delivered.v; });
  metrics_sources_.add("srudp.messages_expired",
                       [this] { return stats_.messages_expired.v; });
  metrics_sources_.add("srudp.messages_skipped",
                       [this] { return stats_.messages_skipped.v; });
  metrics_sources_.add("srudp.fragments_sent", [this] { return stats_.fragments_sent.v; });
  metrics_sources_.add("srudp.retransmits",
                       [this] { return stats_.fragments_retransmitted.v; });
  metrics_sources_.add("srudp.duplicate_fragments",
                       [this] { return stats_.duplicate_fragments.v; });
  metrics_sources_.add("srudp.status_sent", [this] { return stats_.status_sent.v; });
  metrics_sources_.add("srudp.rto_events", [this] { return stats_.rto_events.v; });
  metrics_sources_.add("srudp.bytes_delivered",
                       [this] { return stats_.bytes_delivered.v; });
  metrics_sources_.add("srudp.route_switches", [this] { return stats_.route_switches.v; });
  metrics_sources_.add("srudp.route_probes", [this] { return stats_.route_probes.v; });
  metrics_sources_.add("srudp.checksum_rejects",
                       [this] { return stats_.checksum_rejects.v; });
}

SrudpEndpoint::~SrudpEndpoint() {
  host_.unbind(port_);
  for (auto& [peer, out] : out_) engine_.cancel(out.rto_timer);
  for (auto& [peer, in] : in_) {
    engine_.cancel(in.hol_timer);
    for (auto& [id, msg] : in.partial) engine_.cancel(msg.status_timer);
  }
}

SrudpEndpoint::PeerOut& SrudpEndpoint::ensure_out(const simnet::Address& peer) {
  auto [it, inserted] = out_.try_emplace(peer);
  if (inserted)
    it->second.path =
        MultipathPolicy(config_.failover_threshold, config_.route_probe_quiet);
  return it->second;
}

void SrudpEndpoint::note_route_success(const simnet::Address& peer, PeerOut& out) {
  if (out.path.on_success(engine_.now())) {
    ++stats_.route_probes;
    obs::FlightRecorder::global().record(host_.name(), "multipath", "route_probe",
                                         "peer=" + peer.to_string());
    log_.debug("re-probing default route to ", peer.to_string());
  }
}

std::uint64_t SrudpEndpoint::send(const simnet::Address& dst, Payload message) {
  auto& out = ensure_out(dst);
  if (out.rto == 0) out.rto = config_.initial_rto;

  OutMessage msg;
  msg.msg_id = out.next_msg_id++;
  // Trace context: deterministic (no RNG draw) and carried by every
  // fragment, so enabling flow recording cannot perturb the simulation.
  msg.flow = mint_flow(host_.name(), port_, dst.host, dst.port, msg.msg_id);
  msg.enqueued = engine_.now();
  msg.frag_size = frag_payload_;
  msg.frag_count = message.empty()
                       ? 1
                       : static_cast<std::uint32_t>((message.size() + frag_payload_ - 1) /
                                                    frag_payload_);
  msg.data = std::move(message);
  msg.acked = make_bitmap(msg.frag_count);
  msg.deadline = engine_.now() + config_.msg_ttl;
  std::uint64_t msg_id = msg.msg_id;
  auto& tracer = obs::Tracer::global();
  if (tracer.flow_enabled()) {
    tracer.flow(obs::TraceEvent::Phase::flow_start, "flow", "srudp.send", msg.flow,
                {{"peer", dst.to_string()},
                 {"msg", std::to_string(msg.msg_id)},
                 {"bytes", std::to_string(msg.data.size())}});
    tracer.flow(obs::TraceEvent::Phase::flow_step, "flow", "srudp.frag", msg.flow,
                {{"frags", std::to_string(msg.frag_count)}});
  }
  out.queue.push_back(std::move(msg));
  ++stats_.messages_sent;
  // pump() may expire the message just queued (a zero/tiny msg_ttl) or any
  // other head, so out.queue.back() is not safe to touch afterwards.
  pump(dst);
  return msg_id;
}

std::size_t SrudpEndpoint::pending() const {
  std::size_t n = 0;
  for (const auto& [peer, out] : out_) n += out.queue.size();
  return n;
}

void SrudpEndpoint::pump(const simnet::Address& peer) {
  auto it = out_.find(peer);
  if (it == out_.end()) return;
  PeerOut& out = it->second;

  // Drop messages whose TTL passed (front of queue first; ordering means
  // later messages cannot have expired earlier).
  while (!out.queue.empty() && out.queue.front().deadline <= engine_.now())
    expire_head(peer, out);

  for (auto& msg : out.queue) {
    // Requested retransmissions first: they unblock the receiver.
    while (out.inflight < config_.window && !msg.retransmit.empty()) {
      std::uint32_t index = msg.retransmit.front();
      msg.retransmit.pop_front();
      if (bitmap_get(msg.acked, index)) continue;  // acked since the request
      send_fragment(peer, out, msg, index, /*retransmission=*/true);
    }
    while (out.inflight < config_.window && msg.next_unsent < msg.frag_count) {
      send_fragment(peer, out, msg, msg.next_unsent, /*retransmission=*/false);
      ++msg.next_unsent;
    }
    if (out.inflight >= config_.window) break;
  }
  // The retransmission timer runs whenever anything is unacknowledged, even
  // if the inflight *estimate* reads zero — it is our only recovery path
  // when every ack was lost.
  if (!out.queue.empty()) arm_rto(peer);
}

void SrudpEndpoint::send_fragment(const simnet::Address& peer, PeerOut& out, OutMessage& msg,
                                  std::uint32_t index, bool retransmission) {
  DataPacket p;
  p.msg_id = msg.msg_id;
  p.frag_index = index;
  p.frag_count = msg.frag_count;
  p.total_len = static_cast<std::uint32_t>(msg.data.size());
  p.flow = msg.flow;
  std::size_t begin = static_cast<std::size_t>(index) * msg.frag_size;
  std::size_t end = std::min(msg.data.size(), begin + msg.frag_size);
  // A fragment is a *slice* of the message buffer, not a copy of it.
  if (begin < end) p.payload = msg.data.slice(begin, end - begin);

  if (msg.first_sent < 0) msg.first_sent = engine_.now();
  if (retransmission) {
    msg.retransmitted = true;
    ++stats_.fragments_retransmitted;
  }
  ++stats_.fragments_sent;
  auto& tracer = obs::Tracer::global();
  if (tracer.flow_enabled()) {
    const std::string& path = out.path.preferred();
    tracer.flow(obs::TraceEvent::Phase::flow_step, "flow",
                retransmission ? "srudp.retransmit" : "srudp.tx", msg.flow,
                {{"frag", std::to_string(index)}, {"path", path.empty() ? "auto" : path}});
  }
  ++out.inflight;
  raw_send(peer, &out, encode_data(port_, p, config_.checksum));
}

void SrudpEndpoint::raw_send(const simnet::Address& peer, PeerOut* out, Payload wire) {
  simnet::SendOptions opts;
  opts.src_port = port_;
  if (out != nullptr) opts.preferred_network = out->path.preferred();
  auto r = host_.send(peer, std::move(wire), opts);
  if (!r) log_.trace("send to ", peer.to_string(), " failed: ", r.error().to_string());
}

void SrudpEndpoint::arm_rto(const simnet::Address& peer) {
  PeerOut& out = ensure_out(peer);
  if (out.rto_timer.valid()) return;
  out.rto_timer = engine_.schedule(out.rto, [this, peer] {
    out_[peer].rto_timer = simnet::TimerId{};
    on_rto(peer);
  });
}

void SrudpEndpoint::on_rto(const simnet::Address& peer) {
  auto it = out_.find(peer);
  if (it == out_.end()) return;
  PeerOut& out = it->second;
  while (!out.queue.empty() && out.queue.front().deadline <= engine_.now())
    expire_head(peer, out);
  if (out.queue.empty()) return;

  ++stats_.rto_events;
  obs::FlightRecorder::global().record(
      host_.name(), "srudp", "rto",
      "peer=" + peer.to_string() + " rto=" + format_time(out.rto) +
          " queued=" + std::to_string(out.queue.size()));
  // The window's worth of fragments we sent may all be gone; reset the
  // inflight estimate, re-probe, and let STATUS rebuild our picture.
  out.inflight = 0;
  if (out.path.on_timeout(host_)) {
    ++stats_.route_switches;
    auto& tracer = obs::Tracer::global();
    if (out.failover_span == 0)
      out.failover_span = tracer.begin_span("transport", "srudp.failover");
    tracer.instant("transport", "srudp.route_switch",
                   {{"peer", peer.to_string()}, {"to", out.path.preferred()}});
    // The route choice is per-peer; attribute it to the head message's flow
    // so the switch shows up inside the affected cross-host trace.
    if (tracer.flow_enabled())
      tracer.flow(obs::TraceEvent::Phase::flow_step, "flow", "srudp.route_switch",
                  out.queue.front().flow, {{"to", out.path.preferred()}});
    obs::FlightRecorder::global().record(
        host_.name(), "srudp", "route_switch",
        "peer=" + peer.to_string() + " to=" + out.path.preferred());
    log_.debug("route to ", peer.to_string(), " switched to ", out.path.preferred());
  }
  // Resend every sent-but-unacked fragment of every queued message (up to
  // one window).  Covering all messages matters: a later short message
  // whose single fragment was lost leaves no trace at the receiver (so no
  // STATUS can name it) and must not starve behind the head.  Tail loss of
  // the head is covered the same way.  A probe for the head asks the
  // receiver to resynchronize us with a STATUS.
  for (auto& msg : out.queue) {
    if (out.inflight >= config_.window) break;
    for (std::uint32_t i = 0; i < msg.next_unsent && out.inflight < config_.window; ++i) {
      if (!bitmap_get(msg.acked, i))
        send_fragment(peer, out, msg, i, /*retransmission=*/true);
    }
  }
  raw_send(peer, &out,
           encode_msg_id(PacketType::probe, port_, {out.queue.front().msg_id}));
  out.rto = std::min(out.rto * 2, config_.max_rto);
  arm_rto(peer);
}

void SrudpEndpoint::expire_head(const simnet::Address& peer, PeerOut& out) {
  log_.warn("message ", out.queue.front().msg_id, " to ", peer.to_string(),
            " expired unacknowledged");
  obs::Tracer::global().instant(
      "transport", "srudp.expire",
      {{"peer", peer.to_string()}, {"msg", std::to_string(out.queue.front().msg_id)}});
  obs::FlightRecorder::global().record(
      host_.name(), "srudp", "expire",
      "peer=" + peer.to_string() + " msg=" + std::to_string(out.queue.front().msg_id));
  out.queue.pop_front();
  out.inflight = 0;  // conservative: counted fragments belonged to the head
  ++stats_.messages_expired;
}

void SrudpEndpoint::on_packet(const simnet::Packet& packet) {
  auto head = decode_head(packet.payload);
  if (!head) return;
  simnet::Address peer{packet.src.host, head.value().src_port};
  switch (head.value().type) {
    case PacketType::data:
    case PacketType::data_ck: {
      auto p = decode_data(packet.payload);
      if (!p) break;
      if (!p.value().checksum_ok) {
        // Corrupt payload caught by the opt-in checksum: drop the fragment;
        // selective re-send recovers it like any other loss.
        ++stats_.checksum_rejects;
        obs::FlightRecorder::global().record(
            host_.name(), "srudp", "checksum_reject",
            "peer=" + peer.to_string() + " msg=" + std::to_string(p.value().msg_id));
        break;
      }
      on_data(peer, p.value());
      break;
    }
    case PacketType::status: {
      auto p = decode_status(packet.payload);
      if (p) on_status(peer, p.value());
      break;
    }
    case PacketType::msg_ack: {
      auto p = decode_msg_id(packet.payload);
      if (p) on_msg_ack(peer, p.value().msg_id);
      break;
    }
    case PacketType::probe: {
      auto p = decode_msg_id(packet.payload);
      if (p) on_probe(peer, p.value().msg_id);
      break;
    }
    default:
      log_.trace("ignoring non-SRUDP packet type ",
                 static_cast<int>(head.value().type));
  }
}

void SrudpEndpoint::on_data(const simnet::Address& peer, const DataPacket& p) {
  PeerIn& in = in_[peer];
  if (p.msg_id < in.next_deliver) {
    // Already delivered (or skipped): the MSG_ACK was lost; repeat it.
    raw_send(peer, nullptr, encode_msg_id(PacketType::msg_ack, port_, {p.msg_id}));
    ++stats_.duplicate_fragments;
    return;
  }
  if (in.complete.count(p.msg_id)) {
    raw_send(peer, nullptr, encode_msg_id(PacketType::msg_ack, port_, {p.msg_id}));
    ++stats_.duplicate_fragments;
    return;
  }

  auto [it, inserted] = in.partial.try_emplace(p.msg_id);
  InMessage& msg = it->second;
  if (inserted) {
    msg.frag_count = p.frag_count;
    msg.total_len = p.total_len;
    msg.flow = p.flow;
    msg.frags.resize(p.frag_count);
    msg.have = make_bitmap(p.frag_count);
  } else if (msg.frag_count != p.frag_count || msg.total_len != p.total_len) {
    log_.warn("inconsistent fragment metadata for msg ", p.msg_id, " from ",
              peer.to_string());
    return;
  }
  auto& tracer = obs::Tracer::global();
  if (tracer.flow_enabled())
    tracer.flow(obs::TraceEvent::Phase::flow_step, "flow", "srudp.rx", p.flow,
                {{"frag", std::to_string(p.frag_index)}});
  if (bitmap_get(msg.have, p.frag_index)) {
    ++stats_.duplicate_fragments;
  } else {
    bitmap_set(msg.have, p.frag_index);
    msg.frags[p.frag_index] = p.payload;
    ++msg.have_count;
    msg.last_progress = engine_.now();
  }
  ++msg.since_status;

  if (msg.have_count == msg.frag_count) {
    // Complete: splice the fragment slices back together.  On a clean path
    // they are adjacent windows of the sender's original buffer, so append
    // coalesces them into one segment and no bytes move at all.
    Payload assembled;
    for (auto& frag : msg.frags) assembled.append(std::move(frag));
    std::uint64_t flow = msg.flow;
    engine_.cancel(msg.status_timer);
    in.partial.erase(it);
    if (assembled.size() != p.total_len) {
      log_.warn("reassembled length mismatch for msg ", p.msg_id);
      return;
    }
    if (tracer.flow_enabled())
      tracer.flow(obs::TraceEvent::Phase::flow_step, "flow", "srudp.reassemble", flow,
                  {{"msg", std::to_string(p.msg_id)},
                   {"bytes", std::to_string(assembled.size())}});
    raw_send(peer, nullptr, encode_msg_id(PacketType::msg_ack, port_, {p.msg_id}));
    in.complete[p.msg_id] = CompleteMsg{std::move(assembled), flow};
    try_deliver(peer);
    return;
  }

  // Cross-message gap detection: fragments of message N arriving while an
  // *older* message is still incomplete mean the older message's missing
  // fragments were lost (delivery is ordered per peer, so the sender has
  // moved on).  Report their bitmaps promptly — without this, a link
  // failure that kills a whole batch of in-flight messages would wait out
  // the periodic status backoff, because the sender's RTO keeps being
  // refreshed by the progress of newer messages.
  for (auto& [older_id, older] : in.partial) {
    if (older_id >= p.msg_id) break;
    if (older.last_status_sent >= 0 &&
        engine_.now() - older.last_status_sent < config_.status_interval / 2)
      continue;  // rate-limit repeats
    send_status(peer, older_id, older);
    older.last_status_sent = engine_.now();
  }

  // Incomplete.  Two triggers for a STATUS report: enough new fragments to
  // slide the sender's window, or a detected gap (selective re-send).
  if (msg.since_status >= config_.status_every) {
    send_status(peer, p.msg_id, msg);
    msg.last_status_sent = engine_.now();
    msg.since_status = 0;
    return;
  }
  bool gap = false;
  for (std::uint32_t i = 0; i < p.frag_index; ++i) {
    if (!bitmap_get(msg.have, i)) {
      gap = true;
      break;
    }
  }
  if (!msg.status_timer.valid())
    schedule_status(peer, p.msg_id, gap ? config_.gap_status_delay : config_.status_interval);
}

void SrudpEndpoint::schedule_status(const simnet::Address& peer, std::uint64_t msg_id,
                                    SimDuration delay) {
  PeerIn& in = in_[peer];
  auto it = in.partial.find(msg_id);
  if (it == in.partial.end()) return;
  it->second.status_timer = engine_.schedule(delay, [this, peer, msg_id] {
    auto pit = in_.find(peer);
    if (pit == in_.end()) return;
    auto mit = pit->second.partial.find(msg_id);
    if (mit == pit->second.partial.end()) return;
    InMessage& msg = mit->second;
    msg.status_timer = simnet::TimerId{};
    if (engine_.now() - msg.last_progress > config_.partial_ttl) {
      log_.warn("dropping stalled partial message ", msg_id, " from ", peer.to_string());
      pit->second.partial.erase(mit);
      return;
    }
    send_status(peer, msg_id, msg);
    msg.last_status_sent = engine_.now();
    msg.since_status = 0;
    // Periodic re-report with backoff while still incomplete.
    msg.status_backoff = std::min<SimDuration>(
        msg.status_backoff == 0 ? config_.status_interval : msg.status_backoff * 2,
        duration::seconds(1));
    schedule_status(peer, msg_id, msg.status_backoff);
  });
}

void SrudpEndpoint::send_status(const simnet::Address& peer, std::uint64_t msg_id,
                                const InMessage& msg) {
  StatusPacket p;
  p.msg_id = msg_id;
  p.frag_count = msg.frag_count;
  p.bitmap = msg.have;
  ++stats_.status_sent;
  raw_send(peer, nullptr, encode_status(port_, p));
}

void SrudpEndpoint::try_deliver(const simnet::Address& peer) {
  PeerIn& in = in_[peer];
  while (true) {
    auto it = in.complete.find(in.next_deliver);
    if (it == in.complete.end()) break;
    Payload payload = std::move(it->second.data);
    std::uint64_t flow = it->second.flow;
    in.complete.erase(it);
    auto& tracer = obs::Tracer::global();
    if (tracer.flow_enabled())
      tracer.flow(obs::TraceEvent::Phase::flow_end, "flow", "srudp.deliver", flow,
                  {{"peer", peer.to_string()},
                   {"msg", std::to_string(in.next_deliver)},
                   {"bytes", std::to_string(payload.size())}});
    ++in.next_deliver;
    ++stats_.messages_delivered;
    stats_.bytes_delivered += payload.size();
    // Handlers are promised contiguous bytes; flatten() only copies when
    // coalescing failed (e.g. a corrupted fragment was cloned mid-message).
    payload.flatten();
    last_delivered_flow_ = flow;
    if (handler_) handler_(peer, std::move(payload));
    last_delivered_flow_ = 0;
  }
  if (!in.complete.empty()) {
    arm_hol_skip(peer);
  } else {
    engine_.cancel(in.hol_timer);
    in.hol_timer = simnet::TimerId{};
    in.hol_since = -1;
  }
}

void SrudpEndpoint::arm_hol_skip(const simnet::Address& peer) {
  PeerIn& in = in_[peer];
  if (in.hol_timer.valid()) return;
  in.hol_since = engine_.now();
  in.hol_timer = engine_.schedule(config_.hol_skip, [this, peer] {
    PeerIn& in = in_[peer];
    in.hol_timer = simnet::TimerId{};
    if (in.complete.empty()) return;
    // The sender evidently abandoned the gap message(s); skip forward.
    std::uint64_t first_complete = in.complete.begin()->first;
    stats_.messages_skipped += first_complete - in.next_deliver;
    obs::FlightRecorder::global().record(
        host_.name(), "srudp", "hol_skip",
        "peer=" + peer.to_string() + " msgs=" + std::to_string(in.next_deliver) + ".." +
            std::to_string(first_complete - 1));
    log_.warn("skipping undeliverable messages ", in.next_deliver, "..",
              first_complete - 1, " from ", peer.to_string());
    in.next_deliver = first_complete;
    try_deliver(peer);
  });
}

void SrudpEndpoint::on_status(const simnet::Address& peer, const StatusPacket& p) {
  auto it = out_.find(peer);
  if (it == out_.end()) return;
  PeerOut& out = it->second;
  for (auto& msg : out.queue) {
    if (msg.msg_id != p.msg_id) continue;
    // Fragments above the highest index the receiver reports may simply
    // still be in flight; only holes *below* it are known losses (SACK-style
    // selective re-send).  Tail losses are covered by the RTO probe.
    std::int64_t highest = -1;
    for (std::uint32_t i = 0; i < msg.frag_count; ++i)
      if (bitmap_get(p.bitmap, i)) highest = i;
    std::deque<std::uint32_t> missing;
    std::uint32_t newly_acked = 0;
    for (std::uint32_t i = 0; i < msg.frag_count; ++i) {
      if (bitmap_get(p.bitmap, i)) {
        if (!bitmap_get(msg.acked, i)) {
          bitmap_set(msg.acked, i);
          ++msg.acked_count;
          ++newly_acked;
        }
      } else if ((static_cast<std::int64_t>(i) < highest || highest < 0) &&
                 i < msg.next_unsent && !bitmap_get(msg.acked, i)) {
        // highest < 0: the receiver has nothing at all (it restarted or the
        // whole window was lost) — resend everything we had sent.
        missing.push_back(i);
      }
    }
    msg.retransmit = std::move(missing);
    out.inflight -= std::min<std::size_t>(out.inflight, newly_acked);
    if (newly_acked > 0) msg.implied_retx = false;  // progress re-arms the signal
    if (newly_acked > 0) {
      // Real progress: the current route works.  (A STATUS that acks
      // nothing is a receiver stall report and must NOT reset the failover
      // counter — it can arrive over a different interface than the one
      // our data is dying on.)  Restart the retransmission timer too.
      note_route_success(peer, out);
      if (out.failover_span != 0) {
        obs::Tracer::global().end_span(out.failover_span,
                                       {{"route", out.path.preferred()}});
        out.failover_span = 0;
      }
      engine_.cancel(out.rto_timer);
      out.rto_timer = simnet::TimerId{};
    }
    pump(peer);
    return;
  }
  // Unknown message (already fully acked): nothing to do.
}

void SrudpEndpoint::on_msg_ack(const simnet::Address& peer, std::uint64_t msg_id) {
  auto it = out_.find(peer);
  if (it == out_.end()) return;
  PeerOut& out = it->second;

  // Implied loss: the receiver completed message `msg_id`, so every fully
  // sent but unacknowledged *older* message must have lost fragments the
  // receiver cannot even name (it may never have seen any of them — e.g. a
  // link failure that swallowed the whole message).  Requeue their unacked
  // fragments once; without this, recovery of wholly-lost messages waits
  // on the RTO, which newer messages' progress keeps pushing out.
  bool queued_implied = false;
  for (auto& msg : out.queue) {
    if (msg.msg_id >= msg_id) break;
    if (msg.implied_retx || msg.next_unsent < msg.frag_count) continue;
    for (std::uint32_t i = 0; i < msg.frag_count; ++i)
      if (!bitmap_get(msg.acked, i)) msg.retransmit.push_back(i);
    msg.implied_retx = true;
    queued_implied = true;
  }

  for (auto qit = out.queue.begin(); qit != out.queue.end(); ++qit) {
    if (qit->msg_id != msg_id) continue;
    // Sender-side delivery latency: send() to whole-message MSG_ACK.  This
    // needs no extra wire bytes and, unlike the RTT sample, deliberately
    // includes retransmitted messages — the health rollup's p99 should show
    // what loss recovery costs.
    delivery_ms_->observe(static_cast<double>(engine_.now() - qit->enqueued) / 1e6);
    // RTT sample per Karn's rule: only from never-retransmitted messages.
    if (!qit->retransmitted && qit->first_sent >= 0) {
      SimDuration sample = engine_.now() - qit->first_sent;
      rtt_ms_->observe(static_cast<double>(sample) / 1e6);
      if (out.srtt == 0) {
        out.srtt = sample;
        out.rttvar = sample / 2;
      } else {
        SimDuration err = sample > out.srtt ? sample - out.srtt : out.srtt - sample;
        out.rttvar = (3 * out.rttvar + err) / 4;
        out.srtt = (7 * out.srtt + sample) / 8;
      }
      out.rto = std::clamp(out.srtt + 4 * out.rttvar, config_.min_rto, config_.max_rto);
    }
    std::uint32_t unacked_inflight = 0;
    for (std::uint32_t i = 0; i < qit->frag_count; ++i)
      if (!bitmap_get(qit->acked, i) && i < qit->next_unsent) ++unacked_inflight;
    out.inflight -= std::min<std::size_t>(out.inflight, unacked_inflight);
    out.queue.erase(qit);
    note_route_success(peer, out);
    if (out.failover_span != 0) {
      obs::Tracer::global().end_span(out.failover_span,
                                     {{"route", out.path.preferred()}});
      out.failover_span = 0;
    }
    engine_.cancel(out.rto_timer);
    out.rto_timer = simnet::TimerId{};
    if (out.queue.empty()) {
      out.inflight = 0;
    } else {
      pump(peer);  // re-arms the timer
    }
    return;
  }
  // Duplicate ack for an already-retired message: if the implied-loss scan
  // queued retransmissions above, push them out now.
  if (queued_implied) pump(peer);
}

void SrudpEndpoint::on_probe(const simnet::Address& peer, std::uint64_t msg_id) {
  PeerIn& in = in_[peer];
  if (msg_id < in.next_deliver || in.complete.count(msg_id)) {
    raw_send(peer, nullptr, encode_msg_id(PacketType::msg_ack, port_, {msg_id}));
    return;
  }
  auto it = in.partial.find(msg_id);
  if (it != in.partial.end()) {
    send_status(peer, msg_id, it->second);
    it->second.since_status = 0;
  } else {
    // Never seen: report an empty bitmap so the sender restarts the message.
    StatusPacket p;
    p.msg_id = msg_id;
    p.frag_count = 0;
    ++stats_.status_sent;
    raw_send(peer, nullptr, encode_status(port_, p));
  }
}

}  // namespace snipe::transport
