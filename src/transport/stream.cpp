#include "transport/stream.hpp"

#include <algorithm>
#include <cassert>

#include "obs/flight.hpp"
#include "obs/trace.hpp"

namespace snipe::transport {

// ---------- StreamEndpoint ----------

StreamEndpoint::StreamEndpoint(simnet::Host& host, std::uint16_t port, StreamConfig config)
    : host_(host),
      engine_(host.engine()),
      port_(port == 0 ? host.ephemeral_port() : port),
      config_(config),
      log_("stream@" + host.name() + ":" + std::to_string(port_)) {
  host_.bind(port_, [this](const simnet::Packet& p) { on_packet(p); }).value();
}

StreamEndpoint::~StreamEndpoint() {
  host_.unbind(port_);
  for (auto& [key, conn] : connections_) {
    engine_.cancel(conn->rto_timer_);
    conn->state_ = StreamConnection::State::closed;
    conn->endpoint_ = nullptr;
  }
}

std::shared_ptr<StreamConnection> StreamEndpoint::connect(const simnet::Address& dst) {
  std::uint32_t conn_id = next_conn_id_++;
  auto conn = std::shared_ptr<StreamConnection>(
      new StreamConnection(this, dst, conn_id, /*initiator=*/true));
  connections_[{dst, conn_id}] = conn;
  conn->start_connect();
  return conn;
}

void StreamEndpoint::on_packet(const simnet::Packet& packet) {
  auto head = decode_head(packet.payload);
  if (!head) return;
  auto type = head.value().type;
  if (type != PacketType::syn && type != PacketType::syn_ack && type != PacketType::ack &&
      type != PacketType::seg && type != PacketType::fin && type != PacketType::rst)
    return;
  auto p = decode_stream(packet.payload);
  if (!p) return;
  simnet::Address peer{packet.src.host, head.value().src_port};
  auto key = std::make_pair(peer, p.value().conn_id);
  auto it = connections_.find(key);
  if (it == connections_.end()) {
    if (type != PacketType::syn) return;  // stray packet for a dead conn
    auto conn = std::shared_ptr<StreamConnection>(
        new StreamConnection(this, peer, p.value().conn_id, /*initiator=*/false));
    connections_[key] = conn;
    conn->state_ = StreamConnection::State::syn_received;
    conn->rcv_nxt = 0;
    conn->peer_window_ = p.value().window;
    conn->send_control(PacketType::syn_ack);
    if (on_accept_) on_accept_(conn);
    return;
  }
  it->second->on_packet(type, p.value());
}

void StreamEndpoint::raw_send(const simnet::Address& dst, Payload wire) {
  simnet::SendOptions opts;
  opts.src_port = port_;
  auto r = host_.send(dst, std::move(wire), opts);
  if (!r) log_.trace("send failed: ", r.error().to_string());
}

// ---------- StreamConnection ----------

StreamConnection::StreamConnection(StreamEndpoint* endpoint, simnet::Address peer,
                                   std::uint32_t conn_id, bool initiator)
    : endpoint_(endpoint), peer_(std::move(peer)), conn_id_(conn_id), initiator_(initiator) {
  const auto& cfg = endpoint_->config();
  rto_ = cfg.initial_rto;
  peer_window_ = cfg.rwnd;
  cwnd = static_cast<double>(cfg.initial_cwnd_segments) * static_cast<double>(mss());
  ssthresh = static_cast<double>(cfg.rwnd);

  delivery_ms_ = &obs::MetricsRegistry::global().histogram("stream.delivery_ms");
  metrics_sources_.add("stream.segments_sent", [this] { return stats_.segments_sent; });
  metrics_sources_.add("stream.segments_retransmitted",
                       [this] { return stats_.segments_retransmitted; });
  metrics_sources_.add("stream.bytes_sent", [this] { return stats_.bytes_sent; });
  metrics_sources_.add("stream.messages_delivered",
                       [this] { return stats_.messages_delivered; });
  metrics_sources_.add("stream.bytes_delivered", [this] { return stats_.bytes_delivered; });
  metrics_sources_.add("stream.rto_events", [this] { return stats_.rto_events; });
  metrics_sources_.add("stream.fast_retransmits",
                       [this] { return stats_.fast_retransmits; });
}

std::size_t StreamConnection::mss() const {
  std::size_t budget = 65535;
  for (const auto& nic : endpoint_->host().nics())
    budget = std::min(budget, nic->network()->model().mtu);
  return budget - kStreamHeaderBytes;
}

void StreamConnection::start_connect() {
  state_ = State::syn_sent;
  send_control(PacketType::syn);
  arm_rto();
}

void StreamConnection::send_control(PacketType type) {
  StreamPacket p;
  p.conn_id = conn_id_;
  p.seq = snd_nxt;
  p.ack = rcv_nxt;
  p.window = static_cast<std::uint32_t>(endpoint_->config().rwnd);
  endpoint_->raw_send(peer_, encode_stream(type, endpoint_->port(), p));
}

void StreamConnection::send_message(Payload message) {
  // Trace context rides the reliable framing itself — [u32 len][u64 flow]
  // [bytes] — so it crosses retransmissions and resegmentation exactly
  // once, in order, and the receiver closes the flow at parse time.
  std::uint64_t flow = mint_flow(endpoint_->host().name(), endpoint_->port(), peer_.host,
                                 peer_.port, next_msg_seq_++);
  auto& tracer = obs::Tracer::global();
  if (tracer.flow_enabled())
    tracer.flow(obs::TraceEvent::Phase::flow_start, "flow", "stream.send", flow,
                {{"peer", peer_.to_string()},
                 {"bytes", std::to_string(message.size())}});
  // Splice the frame header (pooled scratch) and the caller's message
  // buffer into the send buffer without copying either.
  PayloadWriter w;
  w.u32(static_cast<std::uint32_t>(message.size()));
  w.u64(flow);
  w.append(message);
  send_buffer_.append(std::move(w).take());
  msg_spans_.push_back(
      MsgSpan{snd_una + send_buffer_.size(), flow, endpoint_->engine().now()});
  if (state_ == State::established) pump();
}

void StreamConnection::pump() {
  if (state_ != State::established) return;
  std::uint64_t buffered_end = snd_una + send_buffer_.size();
  std::uint64_t window_limit =
      snd_una + std::min<std::uint64_t>(static_cast<std::uint64_t>(cwnd), peer_window_);
  while (snd_nxt < buffered_end && snd_nxt < window_limit) {
    std::size_t len = std::min<std::uint64_t>(
        {static_cast<std::uint64_t>(mss()), buffered_end - snd_nxt, window_limit - snd_nxt});
    if (len == 0) break;
    send_segment(snd_nxt, len, /*retransmission=*/false);
    snd_nxt += len;
  }
  if (snd_una < snd_nxt) arm_rto();
}

void StreamConnection::send_segment(std::uint64_t seq, std::size_t len, bool retransmission) {
  StreamPacket p;
  p.conn_id = conn_id_;
  p.seq = seq;
  p.ack = rcv_nxt;
  p.window = static_cast<std::uint32_t>(endpoint_->config().rwnd);
  std::size_t offset = static_cast<std::size_t>(seq - snd_una);
  p.payload = send_buffer_.slice(offset, len);

  if (retransmission) {
    ++stats_.segments_retransmitted;
    if (rtt_seq_ > seq) rtt_sent_at_ = -1;  // Karn: discard the probe
  } else if (rtt_sent_at_ < 0) {
    rtt_seq_ = seq + len;
    rtt_sent_at_ = endpoint_->engine().now();
  }
  ++stats_.segments_sent;
  stats_.bytes_sent += len;
  auto& tracer = obs::Tracer::global();
  if (tracer.flow_enabled()) {
    // Attribute the segment to the message containing its first byte:
    // spans are ascending by end offset, so the first span ending past
    // `seq` owns it.
    std::uint64_t flow = 0;
    for (const auto& span : msg_spans_) {
      if (span.end > seq) {
        flow = span.flow;
        break;
      }
    }
    if (flow != 0)
      tracer.flow(obs::TraceEvent::Phase::flow_step, "flow",
                  retransmission ? "stream.retransmit" : "stream.tx", flow,
                  {{"seq", std::to_string(seq)}, {"len", std::to_string(len)}});
  }
  endpoint_->raw_send(peer_, encode_stream(PacketType::seg, endpoint_->port(), p));
}

void StreamConnection::arm_rto() {
  if (rto_timer_.valid()) return;
  rto_timer_ = endpoint_->engine().schedule(rto_, [this] {
    rto_timer_ = simnet::TimerId{};
    on_rto();
  });
}

void StreamConnection::on_rto() {
  if (state_ == State::closed || endpoint_ == nullptr) return;
  if (state_ == State::syn_sent) {
    send_control(PacketType::syn);
    rto_ = std::min(rto_ * 2, endpoint_->config().max_rto);
    arm_rto();
    return;
  }
  if (snd_una == snd_nxt) return;  // everything acked in the meantime
  ++stats_.rto_events;
  obs::FlightRecorder::global().record(
      endpoint_->host().name(), "stream", "rto",
      "peer=" + peer_.to_string() + " una=" + std::to_string(snd_una) +
          " nxt=" + std::to_string(snd_nxt));
  // Reno on timeout: collapse to one segment and retransmit the hole.
  ssthresh = std::max(cwnd / 2, 2.0 * static_cast<double>(mss()));
  cwnd = static_cast<double>(mss());
  dup_acks_ = 0;
  std::size_t len =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(mss()), snd_nxt - snd_una);
  send_segment(snd_una, len, /*retransmission=*/true);
  rto_ = std::min(rto_ * 2, endpoint_->config().max_rto);
  arm_rto();
}

void StreamConnection::on_packet(PacketType type, const StreamPacket& p) {
  switch (type) {
    case PacketType::syn:
      // Retransmitted SYN for an existing connection: repeat SYN-ACK.
      if (state_ == State::syn_received) send_control(PacketType::syn_ack);
      break;
    case PacketType::syn_ack:
      if (state_ == State::syn_sent) {
        state_ = State::established;
        peer_window_ = p.window;
        endpoint_->engine().cancel(rto_timer_);
        rto_timer_ = simnet::TimerId{};
        rto_ = endpoint_->config().initial_rto;
        send_control(PacketType::ack);
        if (on_connect_) on_connect_(ok_result());
        pump();
      } else if (state_ == State::established) {
        send_control(PacketType::ack);  // our ACK was lost
      }
      break;
    case PacketType::ack:
      if (state_ == State::syn_received) {
        state_ = State::established;
        peer_window_ = p.window;
        pump();
      } else {
        on_ack(p);
      }
      break;
    case PacketType::seg:
      if (state_ == State::syn_received) {
        // Our SYN-ACK arrived and the peer is already sending: promote.
        state_ = State::established;
      }
      on_data_segment(p);
      on_ack(p);
      break;
    case PacketType::fin:
      state_ = State::closed;
      send_control(PacketType::ack);
      break;
    case PacketType::rst:
      state_ = State::closed;
      break;
    default:
      break;
  }
}

void StreamConnection::on_data_segment(const StreamPacket& p) {
  if (p.payload.empty()) return;
  if (p.seq + p.payload.size() <= rcv_nxt) {
    send_control(PacketType::ack);  // stale retransmission; re-ack
    return;
  }
  if (p.seq > rcv_nxt) {
    out_of_order_.emplace(p.seq, p.payload);
    send_control(PacketType::ack);  // duplicate ack signals the gap
    return;
  }
  // Accept [rcv_nxt, ...) — the segment may partially overlap old data.
  std::size_t skip = static_cast<std::size_t>(rcv_nxt - p.seq);
  receive_buffer_.append(p.payload.slice(skip, p.payload.size() - skip));
  rcv_nxt += p.payload.size() - skip;
  deliver_contiguous();
  send_control(PacketType::ack);
  parse_messages();
}

void StreamConnection::deliver_contiguous() {
  while (!out_of_order_.empty()) {
    auto it = out_of_order_.begin();
    if (it->first > rcv_nxt) break;
    const Payload& seg = it->second;
    if (it->first + seg.size() > rcv_nxt) {
      std::size_t skip = static_cast<std::size_t>(rcv_nxt - it->first);
      receive_buffer_.append(seg.slice(skip, seg.size() - skip));
      rcv_nxt += seg.size() - skip;
    }
    out_of_order_.erase(it);
  }
}

void StreamConnection::parse_messages() {
  while (true) {
    if (receive_buffer_.size() < kStreamFrameHeaderBytes) return;
    PayloadCursor r(receive_buffer_);
    std::uint32_t len = r.u32().value();
    std::uint64_t flow = r.u64().value();
    if (receive_buffer_.size() < kStreamFrameHeaderBytes + len) return;
    Payload message = receive_buffer_.slice(kStreamFrameHeaderBytes, len);
    receive_buffer_ =
        receive_buffer_.slice(kStreamFrameHeaderBytes + len,
                              receive_buffer_.size() - kStreamFrameHeaderBytes - len);
    ++stats_.messages_delivered;
    stats_.bytes_delivered += message.size();
    auto& tracer = obs::Tracer::global();
    if (tracer.flow_enabled())
      tracer.flow(obs::TraceEvent::Phase::flow_end, "flow", "stream.deliver", flow,
                  {{"peer", peer_.to_string()}, {"bytes", std::to_string(len)}});
    // Segments that were sliced from one original message buffer coalesced
    // back during reassembly, making this a no-op on the clean path.
    message.flatten();
    if (on_message_) on_message_(std::move(message));
  }
}

void StreamConnection::on_ack(const StreamPacket& p) {
  if (state_ != State::established) return;
  peer_window_ = p.window;
  if (p.ack > snd_una) {
    std::uint64_t acked = p.ack - snd_una;
    std::size_t drop = static_cast<std::size_t>(
        std::min<std::uint64_t>(acked, send_buffer_.size()));
    send_buffer_ = send_buffer_.slice(drop, send_buffer_.size() - drop);
    snd_una = p.ack;
    if (snd_nxt < snd_una) snd_nxt = snd_una;
    dup_acks_ = 0;

    // Messages whose whole frame is now acked are delivered as far as the
    // sender can observe; record their latency and retire the spans.
    while (!msg_spans_.empty() && msg_spans_.front().end <= snd_una) {
      delivery_ms_->observe(
          static_cast<double>(endpoint_->engine().now() - msg_spans_.front().enqueued) /
          1e6);
      msg_spans_.pop_front();
    }

    // RTT sample (Karn-filtered).
    if (rtt_sent_at_ >= 0 && p.ack >= rtt_seq_) {
      SimDuration sample = endpoint_->engine().now() - rtt_sent_at_;
      if (srtt_ == 0) {
        srtt_ = sample;
        rttvar_ = sample / 2;
      } else {
        SimDuration err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
        rttvar_ = (3 * rttvar_ + err) / 4;
        srtt_ = (7 * srtt_ + sample) / 8;
      }
      rto_ = std::clamp(srtt_ + 4 * rttvar_, endpoint_->config().min_rto,
                        endpoint_->config().max_rto);
      rtt_sent_at_ = -1;
    }

    // Congestion control: slow start then congestion avoidance.
    double m = static_cast<double>(mss());
    if (cwnd < ssthresh)
      cwnd += m;
    else
      cwnd += m * m / cwnd;

    // Forward progress collapses any RTO backoff (as in RFC 6298 §5.7):
    // Karn's rule can starve the RTT estimator for a long stretch of
    // retransmissions, and without this the timer stays pinned at max_rto,
    // turning each further loss into a multi-second stall.
    if (srtt_ != 0)
      rto_ = std::clamp(srtt_ + 4 * rttvar_, endpoint_->config().min_rto,
                        endpoint_->config().max_rto);
    endpoint_->engine().cancel(rto_timer_);
    rto_timer_ = simnet::TimerId{};
    if (snd_una < snd_nxt) arm_rto();
    pump();
  } else if (p.ack == snd_una && snd_una < snd_nxt) {
    if (++dup_acks_ == 3) {
      ++stats_.fast_retransmits;
      obs::FlightRecorder::global().record(
          endpoint_->host().name(), "stream", "fast_retransmit",
          "peer=" + peer_.to_string() + " una=" + std::to_string(snd_una));
      ssthresh = std::max(cwnd / 2, 2.0 * static_cast<double>(mss()));
      cwnd = ssthresh;
      std::size_t len =
          std::min<std::uint64_t>(static_cast<std::uint64_t>(mss()), snd_nxt - snd_una);
      send_segment(snd_una, len, /*retransmission=*/true);
    }
  }
}

}  // namespace snipe::transport
