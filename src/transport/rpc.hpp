// Request/response messaging over SRUDP.
//
// The RC servers used SUN RPC (§6); the SNIPE daemons, resource managers
// and file servers all follow the same request/response pattern.  This
// endpoint multiplexes tagged requests over one SrudpEndpoint, matches
// responses by id, applies per-call deadlines, and optionally stamps each
// request with the MD5 shared-secret authenticator the 1998 RC servers
// used ("authentication based on MD5 hashed shared secrets").
//
// All completion is callback-based: there is no blocking in a discrete-
// event simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "crypto/hash.hpp"
#include "transport/srudp.hpp"

namespace snipe::transport {

struct RpcConfig {
  SimDuration default_timeout = duration::seconds(5);
  /// If nonempty, requests carry (and servers require) an MD5 authenticator
  /// keyed with this secret.
  std::string shared_secret;
  SrudpConfig srudp;
};

struct RpcStats {
  std::uint64_t calls_sent = 0;
  std::uint64_t calls_ok = 0;
  std::uint64_t calls_timeout = 0;
  std::uint64_t calls_error = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t requests_rejected_auth = 0;
  std::uint64_t notifications_sent = 0;
  std::uint64_t notifications_received = 0;
};

class RpcEndpoint {
 public:
  using ResponseHandler = std::function<void(Result<Bytes>)>;
  /// Server-side handler: return the response body or an Error that is
  /// propagated to the caller.
  using RequestHandler =
      std::function<Result<Bytes>(const simnet::Address& from, const Bytes& body)>;
  /// Deferred-response variant: the handler must eventually invoke the
  /// responder exactly once.  Used when serving needs further network round
  /// trips (e.g. a daemon fetching mobile code before answering a spawn).
  using Responder = std::function<void(Result<Bytes>)>;
  using AsyncRequestHandler =
      std::function<void(const simnet::Address& from, const Bytes& body, Responder respond)>;
  /// One-way notification handler.
  using NotifyHandler =
      std::function<void(const simnet::Address& from, const Bytes& body)>;

  RpcEndpoint(simnet::Host& host, std::uint16_t port, RpcConfig config = {});

  /// Registers the handler for request tag `tag` (replacing any previous).
  void serve(std::uint32_t tag, RequestHandler handler) { handlers_[tag] = std::move(handler); }
  /// Registers a deferred-response handler for `tag`.
  void serve_async(std::uint32_t tag, AsyncRequestHandler handler) {
    async_handlers_[tag] = std::move(handler);
  }

  /// Catch-all for requests with no registered handler; used by migration
  /// relays (§5.6) to proxy *any* request to the process's new location.
  using DefaultRequestHandler = std::function<void(
      const simnet::Address& from, std::uint32_t tag, const Bytes& body, Responder respond)>;
  using DefaultNotifyHandler = std::function<void(const simnet::Address& from,
                                                  std::uint32_t tag, const Bytes& body)>;
  void serve_default(DefaultRequestHandler handler) { default_handler_ = std::move(handler); }
  void on_notify_default(DefaultNotifyHandler handler) {
    default_notify_ = std::move(handler);
  }

  /// Takes over every handler registration from `other` (which is left
  /// with none).  A migrating process moves its service surface to the new
  /// endpoint this way; the captured lambdas keep pointing at the owning
  /// component, which survives the move.
  void adopt_handlers(RpcEndpoint& other) {
    handlers_ = std::move(other.handlers_);
    async_handlers_ = std::move(other.async_handlers_);
    notify_handlers_ = std::move(other.notify_handlers_);
    other.handlers_.clear();
    other.async_handlers_.clear();
    other.notify_handlers_.clear();
    other.default_handler_ = nullptr;
    other.default_notify_ = nullptr;
  }
  /// Registers a handler for one-way notifications with tag `tag`.
  void on_notify(std::uint32_t tag, NotifyHandler handler) {
    notify_handlers_[tag] = std::move(handler);
  }

  /// Issues a request; `done` fires exactly once with the response body,
  /// a server-reported error, or Errc::timeout.  Returns the transport flow
  /// id of the request message so callers can link their own trace steps to
  /// the causal flow (`trace <id>` on the console).
  std::uint64_t call(const simnet::Address& dst, std::uint32_t tag, Bytes body,
                     ResponseHandler done, SimDuration timeout = 0);

  /// Fire-and-forget (still reliably transported) notification.  Returns
  /// the flow id of the carrying message, same as call().
  std::uint64_t notify(const simnet::Address& dst, std::uint32_t tag, Bytes body);

  simnet::Address address() const { return srudp_.address(); }
  simnet::Host& host() { return srudp_.host(); }
  simnet::Engine& engine() { return engine_; }
  SrudpEndpoint& srudp() { return srudp_; }
  const RpcStats& stats() const { return stats_; }

 private:
  enum class Kind : std::uint8_t { request = 1, response = 2, error = 3, oneway = 4 };

  void on_message(const simnet::Address& src, Payload msg);
  void send_reply(const simnet::Address& src, std::uint64_t id, std::uint32_t tag,
                  const Result<Bytes>& result);
  Bytes authenticator(const Bytes& payload) const;

  SrudpEndpoint srudp_;
  simnet::Engine& engine_;
  RpcConfig config_;
  std::map<std::uint32_t, RequestHandler> handlers_;
  std::map<std::uint32_t, AsyncRequestHandler> async_handlers_;
  std::map<std::uint32_t, NotifyHandler> notify_handlers_;
  DefaultRequestHandler default_handler_;
  DefaultNotifyHandler default_notify_;
  struct PendingCall {
    ResponseHandler done;
    simnet::TimerId timeout;
  };
  std::map<std::uint64_t, PendingCall> pending_;
  std::uint64_t next_call_id_ = 1;
  RpcStats stats_;
  Logger log_;
};

}  // namespace snipe::transport
