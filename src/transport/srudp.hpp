// SRUDP: SNIPE's selective re-send datagram protocol (§6).
//
// The 1998 comms module "supported a selective re-send UDP protocol as well
// as TCP/IP", buffered messages so "migrating or temporarily unavailable
// tasks did not result in lost messages", and could "switch
// routes/interfaces as links failed without user applications
// intervention".  SrudpEndpoint reproduces all three properties:
//
//  * Messages of any size are fragmented to the smallest MTU among the
//    host's interfaces and reassembled at the receiver.
//  * Reliability is receiver-driven and *selective*: the receiver reports a
//    fragment bitmap (STATUS) when it sees gaps or is probed; the sender
//    retransmits exactly the missing fragments.  A whole-message MSG_ACK
//    retires the send buffer.  This is the design difference from TCP's
//    cumulative-ACK stream that Fig. 1 quantifies.
//  * No connection handshake: the first data fragment can carry payload,
//    so short messages complete in a single round trip.
//  * Messages are buffered and retransmitted until acknowledged or their
//    TTL expires, so a receiver that is briefly down (rebooting, migrating)
//    gets them on return.
//  * Per-peer MultipathPolicy rotates interfaces after repeated timeouts.
//
// Delivery is in-order per (sender, receiver) endpoint pair, matching the
// PVM message-passing semantics SNIPE inherited; a head-of-line gap left by
// an expired message is skipped after `hol_skip`.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simnet/world.hpp"
#include "transport/multipath.hpp"
#include "transport/wire.hpp"
#include "util/log.hpp"

namespace snipe::transport {

struct SrudpConfig {
  std::size_t window = 128;  ///< max unacked fragments in flight per peer
  SimDuration initial_rto = duration::milliseconds(50);
  SimDuration min_rto = duration::milliseconds(2);
  SimDuration max_rto = duration::seconds(2);
  /// Receiver: delay between noticing a gap and sending a STATUS, letting
  /// slightly-reordered fragments land first.
  SimDuration gap_status_delay = duration::milliseconds(1);
  /// Receiver: periodic STATUS interval for incomplete messages (doubles
  /// each repetition up to 1 s).
  SimDuration status_interval = duration::milliseconds(20);
  /// Receiver: also push a STATUS every N fragments of a large message so
  /// the sender's window keeps sliding without waiting for gaps.
  std::uint32_t status_every = 32;
  /// Sender: how long to keep retrying an unacknowledged message.  This is
  /// the "system buffering" that protects migrating/rebooting receivers.
  SimDuration msg_ttl = duration::seconds(30);
  /// Receiver: head-of-line gap skip (only reached if a sender expired a
  /// message or died mid-send).
  SimDuration hol_skip = duration::seconds(10);
  /// Receiver: drop a partially-received message if no new fragment arrives
  /// for this long (the sender evidently gave up or died).
  SimDuration partial_ttl = duration::seconds(60);
  int failover_threshold = 2;  ///< consecutive RTOs before switching routes
  /// How long a failover route must stay timeout-free before the policy
  /// re-probes the default (fastest) route; <= 0 pins the detour forever.
  SimDuration route_probe_quiet = duration::seconds(10);
  /// Adds an FNV-1a payload checksum to every DATA fragment (wire type
  /// data_ck) and rejects fragments whose checksum does not verify.  Off by
  /// default: the 1998 wire format had none, and the unchecked path is the
  /// ablation baseline for the corruption chaos scenarios.  Both ends must
  /// agree only in the sense that a checksumming receiver still accepts
  /// plain DATA — the wire type is self-describing.
  bool checksum = false;
};

/// Per-endpoint counters.  The cells are the single point of increment;
/// each endpoint registers them as pull sources in the global
/// obs::MetricsRegistry (names "srudp.messages_sent", "srudp.retransmits",
/// ...), so `stats()` stays a thin per-instance view while the registry
/// reports fleet-wide totals.
struct SrudpStats {
  obs::Cell messages_sent;
  obs::Cell messages_delivered;
  obs::Cell messages_expired;   ///< sender gave up (TTL)
  obs::Cell messages_skipped;   ///< receiver skipped a HOL gap
  obs::Cell fragments_sent;
  obs::Cell fragments_retransmitted;
  obs::Cell duplicate_fragments;
  obs::Cell status_sent;
  obs::Cell rto_events;
  obs::Cell bytes_delivered;
  obs::Cell route_switches;
  obs::Cell route_probes;      ///< probe resets back to the default route
  obs::Cell checksum_rejects;  ///< data_ck fragments failing verification
};

/// A reliable, message-oriented endpoint bound to one (host, port).
class SrudpEndpoint {
 public:
  /// Delivered messages arrive as a contiguous Payload that, on a clean
  /// path, aliases the sender's original message buffer (fragments coalesce
  /// back during reassembly — no copy was ever made).
  using MessageHandler =
      std::function<void(const simnet::Address& src, Payload message)>;

  /// Binds `port` on `host` (0 picks an ephemeral port).  Asserts that the
  /// port was free.
  SrudpEndpoint(simnet::Host& host, std::uint16_t port, SrudpConfig config = {});
  ~SrudpEndpoint();

  SrudpEndpoint(const SrudpEndpoint&) = delete;
  SrudpEndpoint& operator=(const SrudpEndpoint&) = delete;

  /// Queues `message` for reliable in-order delivery to `dst` (another
  /// SrudpEndpoint's address).  Returns the message id, which increases per
  /// destination.  Never blocks; failure surfaces as expiry in stats.
  std::uint64_t send(const simnet::Address& dst, Payload message);

  /// Installs the delivery callback.
  void set_handler(MessageHandler handler) { handler_ = std::move(handler); }

  std::uint16_t port() const { return port_; }
  simnet::Address address() const { return {host_.name(), port_}; }
  simnet::Host& host() { return host_; }

  /// Unacknowledged messages still buffered across all peers; a migrating
  /// process drains this to zero before moving (§5.6's no-loss guarantee).
  std::size_t pending() const;

  const SrudpStats& stats() const { return stats_; }
  const SrudpConfig& config() const { return config_; }

  /// Flow id of the message most recently handed to the delivery handler
  /// (valid inside the handler call).  Layers above srudp — rpc notably —
  /// use it to link their own trace steps into the message's flow without
  /// any extra wire bytes.
  std::uint64_t last_delivered_flow() const { return last_delivered_flow_; }

 private:
  struct OutMessage {
    std::uint64_t msg_id = 0;
    std::uint64_t flow = 0;   ///< trace context carried by every fragment
    SimTime enqueued = 0;     ///< send() time; delivery latency = ack - this
    Payload data;  ///< the whole message; fragments are slices of it
    std::uint32_t frag_count = 0;
    std::size_t frag_size = 0;
    Bytes acked;                    ///< bitmap of fragments the peer has
    std::uint32_t acked_count = 0;
    std::uint32_t next_unsent = 0;  ///< first never-transmitted fragment
    std::deque<std::uint32_t> retransmit;  ///< fragments requested again
    SimTime first_sent = -1;
    SimTime deadline = 0;
    bool retransmitted = false;  ///< poisons the RTT sample (Karn's rule)
    bool implied_retx = false;   ///< one implied-loss resend already queued
  };

  struct PeerOut {
    std::uint64_t next_msg_id = 1;
    std::deque<OutMessage> queue;
    std::size_t inflight = 0;  ///< fragments sent and not known received
    SimDuration srtt = 0;
    SimDuration rttvar = 0;
    SimDuration rto;
    simnet::TimerId rto_timer;
    MultipathPolicy path;
    /// Open "srudp.failover" span: starts at the route switch, ends at the
    /// first acknowledged progress on the new route.
    obs::SpanId failover_span = 0;
  };

  struct InMessage {
    std::vector<Payload> frags;  ///< slices of the sender's buffer
    std::uint64_t flow = 0;      ///< trace context from the fragments
    Bytes have;  ///< bitmap
    std::uint32_t have_count = 0;
    std::uint32_t frag_count = 0;
    std::uint32_t total_len = 0;
    std::uint32_t since_status = 0;
    simnet::TimerId status_timer;
    SimDuration status_backoff = 0;
    SimTime last_progress = 0;
    SimTime last_status_sent = -1;
  };

  /// A reassembled message waiting its turn in the in-order queue; the flow
  /// id rides along so delivery can close the cross-host trace.
  struct CompleteMsg {
    Payload data;
    std::uint64_t flow = 0;
  };

  struct PeerIn {
    std::uint64_t next_deliver = 1;
    std::map<std::uint64_t, InMessage> partial;
    std::map<std::uint64_t, CompleteMsg> complete;  ///< awaiting in-order delivery
    simnet::TimerId hol_timer;
    SimTime hol_since = -1;
  };

  /// out_[peer] with the MultipathPolicy configured from SrudpConfig on
  /// first touch (failover threshold + probe-quiet period).
  PeerOut& ensure_out(const simnet::Address& peer);
  /// on_success with the probe-after-quiet bookkeeping (flight + stats).
  void note_route_success(const simnet::Address& peer, PeerOut& out);

  void on_packet(const simnet::Packet& packet);
  void on_data(const simnet::Address& peer, const DataPacket& p);
  void on_status(const simnet::Address& peer, const StatusPacket& p);
  void on_msg_ack(const simnet::Address& peer, std::uint64_t msg_id);
  void on_probe(const simnet::Address& peer, std::uint64_t msg_id);

  /// Sends fragments for `peer` while the window has room.
  void pump(const simnet::Address& peer);
  void send_fragment(const simnet::Address& peer, PeerOut& out, OutMessage& msg,
                     std::uint32_t index, bool retransmission);
  void arm_rto(const simnet::Address& peer);
  void on_rto(const simnet::Address& peer);
  void expire_head(const simnet::Address& peer, PeerOut& out);

  void send_status(const simnet::Address& peer, std::uint64_t msg_id, const InMessage& msg);
  void schedule_status(const simnet::Address& peer, std::uint64_t msg_id,
                       SimDuration delay);
  void try_deliver(const simnet::Address& peer);
  void arm_hol_skip(const simnet::Address& peer);

  void raw_send(const simnet::Address& peer, PeerOut* out, Payload wire);

  simnet::Host& host_;
  simnet::Engine& engine_;
  std::uint16_t port_;
  SrudpConfig config_;
  std::size_t frag_payload_;  ///< min over attached NICs' MTU - header
  MessageHandler handler_;
  std::map<simnet::Address, PeerOut> out_;
  std::map<simnet::Address, PeerIn> in_;
  std::uint64_t last_delivered_flow_ = 0;
  SrudpStats stats_;
  obs::Histogram* rtt_ms_;  ///< global "srudp.rtt_ms" (Karn-filtered samples)
  /// Global "srudp.delivery_ms": send() to MSG_ACK per message, the
  /// sender-side delivery latency the console's health rollup reports.
  obs::Histogram* delivery_ms_;
  Logger log_;
  /// Declared after stats_ so the sources unregister (and fold into the
  /// registry's retained totals) before the cells they read are destroyed.
  obs::SourceGroup metrics_sources_;
};

}  // namespace snipe::transport
