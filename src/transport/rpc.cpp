#include "transport/rpc.hpp"

#include "obs/trace.hpp"

namespace snipe::transport {

RpcEndpoint::RpcEndpoint(simnet::Host& host, std::uint16_t port, RpcConfig config)
    : srudp_(host, port, config.srudp),
      engine_(host.engine()),
      config_(std::move(config)),
      log_("rpc@" + host.name() + ":" + std::to_string(srudp_.port())) {
  srudp_.set_handler([this](const simnet::Address& src, Payload msg) {
    on_message(src, std::move(msg));
  });
}

Bytes RpcEndpoint::authenticator(const Bytes& payload) const {
  if (config_.shared_secret.empty()) return {};
  Bytes keyed = to_bytes(config_.shared_secret);
  keyed.insert(keyed.end(), payload.begin(), payload.end());
  auto digest = crypto::md5(keyed);
  return Bytes(digest.begin(), digest.end());
}

std::uint64_t RpcEndpoint::call(const simnet::Address& dst, std::uint32_t tag, Bytes body,
                                ResponseHandler done, SimDuration timeout) {
  if (timeout <= 0) timeout = config_.default_timeout;
  std::uint64_t id = next_call_id_++;

  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Kind::request));
  w.u64(id);
  w.u32(tag);
  w.blob(body);
  w.blob(authenticator(body));

  ++stats_.calls_sent;
  auto timer = engine_.schedule(timeout, [this, id, dst, tag] {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    auto handler = std::move(it->second.done);
    pending_.erase(it);
    ++stats_.calls_timeout;
    handler(Error{Errc::timeout, "rpc tag " + std::to_string(tag) + " to " + dst.to_string()});
  });
  pending_[id] = PendingCall{std::move(done), timer};
  std::uint64_t msg_id = srudp_.send(dst, std::move(w).take());
  // Link the rpc layer into the request message's transport flow: the flow
  // id is deterministic, so recomputing it here matches what srudp minted.
  std::uint64_t flow =
      mint_flow(srudp_.address().host, srudp_.port(), dst.host, dst.port, msg_id);
  auto& tracer = obs::Tracer::global();
  if (tracer.flow_enabled())
    tracer.flow(obs::TraceEvent::Phase::flow_step, "flow", "rpc.call", flow,
                {{"tag", std::to_string(tag)}, {"id", std::to_string(id)}});
  return flow;
}

std::uint64_t RpcEndpoint::notify(const simnet::Address& dst, std::uint32_t tag, Bytes body) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Kind::oneway));
  w.u64(0);
  w.u32(tag);
  w.blob(body);
  w.blob(authenticator(body));
  ++stats_.notifications_sent;
  std::uint64_t msg_id = srudp_.send(dst, std::move(w).take());
  return mint_flow(srudp_.address().host, srudp_.port(), dst.host, dst.port, msg_id);
}

void RpcEndpoint::send_reply(const simnet::Address& src, std::uint64_t id, std::uint32_t tag,
                             const Result<Bytes>& result) {
  ByteWriter w;
  if (result.ok()) {
    w.u8(static_cast<std::uint8_t>(Kind::response));
    w.u64(id);
    w.u32(tag);
    w.blob(result.value());
  } else {
    w.u8(static_cast<std::uint8_t>(Kind::error));
    w.u64(id);
    w.u32(tag);
    ByteWriter e;
    e.u8(static_cast<std::uint8_t>(result.error().code));
    e.str(result.error().message);
    w.blob(e.bytes());
  }
  srudp_.send(src, std::move(w).take());
}

void RpcEndpoint::on_message(const simnet::Address& src, Payload msg) {
  // SRUDP delivers contiguous payloads, so ByteReader can run over the
  // shared bytes directly; blob() below copies only the body it keeps.
  ByteReader r(msg.data(), msg.size());
  auto kind_raw = r.u8();
  auto id = r.u64();
  auto tag = r.u32();
  auto body = r.blob();
  if (!kind_raw || !id || !tag || !body) {
    log_.warn("malformed rpc message from ", src.to_string());
    return;
  }
  Kind kind = static_cast<Kind>(kind_raw.value());

  // We are inside srudp's delivery handler, so the transport exposes the
  // flow id of the message being delivered — link rpc dispatch into it.
  auto& tracer = obs::Tracer::global();
  if (tracer.flow_enabled() && srudp_.last_delivered_flow() != 0)
    tracer.flow(obs::TraceEvent::Phase::flow_step, "flow",
                kind == Kind::request || kind == Kind::oneway ? "rpc.serve" : "rpc.complete",
                srudp_.last_delivered_flow(),
                {{"tag", std::to_string(tag.value())}, {"id", std::to_string(id.value())}});

  if (kind == Kind::request || kind == Kind::oneway) {
    auto auth = r.blob();
    if (!auth) return;
    if (!config_.shared_secret.empty() && auth.value() != authenticator(body.value())) {
      ++stats_.requests_rejected_auth;
      log_.warn("rejecting request from ", src.to_string(), ": bad authenticator");
      if (kind == Kind::request) {
        ByteWriter w;
        w.u8(static_cast<std::uint8_t>(Kind::error));
        w.u64(id.value());
        w.u32(tag.value());
        ByteWriter e;
        e.u8(static_cast<std::uint8_t>(Errc::permission_denied));
        e.str("bad authenticator");
        w.blob(e.bytes());
        srudp_.send(src, std::move(w).take());
      }
      return;
    }
    if (kind == Kind::oneway) {
      ++stats_.notifications_received;
      auto it = notify_handlers_.find(tag.value());
      if (it != notify_handlers_.end()) {
        it->second(src, body.value());
      } else if (default_notify_) {
        default_notify_(src, tag.value(), body.value());
      }
      return;
    }
    ++stats_.requests_served;
    if (auto ait = async_handlers_.find(tag.value()); ait != async_handlers_.end()) {
      std::uint64_t req_id = id.value();
      std::uint32_t req_tag = tag.value();
      ait->second(src, body.value(), [this, src, req_id, req_tag](Result<Bytes> result) {
        send_reply(src, req_id, req_tag, result);
      });
      return;
    }
    auto it = handlers_.find(tag.value());
    if (it == handlers_.end() && default_handler_) {
      std::uint64_t req_id = id.value();
      std::uint32_t req_tag = tag.value();
      default_handler_(src, req_tag, body.value(),
                       [this, src, req_id, req_tag](Result<Bytes> result) {
                         send_reply(src, req_id, req_tag, result);
                       });
      return;
    }
    Result<Bytes> result =
        it == handlers_.end()
            ? Result<Bytes>(Errc::not_found, "no handler for tag " + std::to_string(tag.value()))
            : it->second(src, body.value());
    send_reply(src, id.value(), tag.value(), result);
    return;
  }

  // Response or error to one of our calls.
  auto it = pending_.find(id.value());
  if (it == pending_.end()) return;  // late response after timeout
  engine_.cancel(it->second.timeout);
  auto handler = std::move(it->second.done);
  pending_.erase(it);
  if (kind == Kind::response) {
    ++stats_.calls_ok;
    handler(std::move(body).take());
  } else {
    ++stats_.calls_error;
    ByteReader er(body.value());
    auto code = er.u8();
    auto text = er.str();
    handler(Error{code ? static_cast<Errc>(code.value()) : Errc::corrupt,
                  text ? text.value() : "malformed error"});
  }
}

}  // namespace snipe::transport
