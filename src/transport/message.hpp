// Tagged application messages.
//
// The SNIPE client library presents PVM-style tagged messages (§3.4): a
// small integer tag for dispatch plus an XDR-encoded body.  Components
// above the transport exchange TaggedMessage values; the tag spaces of the
// daemon, RC server, RM and user applications are disjoint by convention
// (see each component's header).
#pragma once

#include <cstdint>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace snipe::transport {

struct TaggedMessage {
  std::uint32_t tag = 0;
  Bytes body;

  Bytes encode() const {
    ByteWriter w;
    w.u32(tag);
    w.blob(body);
    return std::move(w).take();
  }

  static Result<TaggedMessage> decode(const Bytes& wire) {
    ByteReader r(wire);
    auto tag = r.u32();
    if (!tag) return tag.error();
    auto body = r.blob();
    if (!body) return body.error();
    return TaggedMessage{tag.value(), std::move(body).take()};
  }
};

}  // namespace snipe::transport
