#include "transport/multipath.hpp"

#include <algorithm>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace snipe::transport {

bool MultipathPolicy::on_success(SimTime now) {
  consecutive_timeouts_ = 0;
  if (preferred_.empty() || probe_quiet_ <= 0 || now < 0) return false;
  if (last_timeout_ >= 0 && now - last_timeout_ < probe_quiet_) return false;
  // The detour has been quiet long enough: drop the explicit preference so
  // the next send re-probes the default (fastest) route.
  preferred_.clear();
  ++probes_;
  obs::MetricsRegistry::global().counter("multipath.route_probes").inc();
  return true;
}

bool MultipathPolicy::on_timeout(simnet::Host& host) {
  last_timeout_ = host.engine().now();
  ++consecutive_timeouts_;
  if (consecutive_timeouts_ < failover_threshold_) return false;
  consecutive_timeouts_ = 0;

  std::vector<std::string> ups = host.up_networks();
  if (ups.empty()) return false;
  std::sort(ups.begin(), ups.end());

  std::string next;
  if (preferred_.empty()) {
    // We were on the default (fastest) route; any explicit alternative that
    // differs from what simnet would pick is fine — take the first, and if
    // there is only one network there is nowhere to go.
    if (ups.size() < 2) return false;
    // The fastest network is simnet's default; prefer the *other* one so
    // the switch actually changes the path.  Rank by effective bandwidth.
    auto* fastest_nic = host.nic_on(ups[0]);
    std::string fastest = ups[0];
    double best = 0;
    for (const auto& name : ups) {
      auto* nic = host.nic_on(name);
      const auto& m = nic->network()->model();
      double rate = m.bandwidth_bps * (1.0 - m.cell_tax);
      if (rate > best) {
        best = rate;
        fastest = name;
      }
    }
    (void)fastest_nic;
    for (const auto& name : ups) {
      if (name != fastest) {
        next = name;
        break;
      }
    }
    if (next.empty()) return false;
  } else {
    // Rotate to the next up network after the current preference.
    auto it = std::find(ups.begin(), ups.end(), preferred_);
    std::size_t start = it == ups.end() ? 0 : (it - ups.begin() + 1) % ups.size();
    next = ups[start];
    if (next == preferred_) return false;
  }
  preferred_ = next;
  ++switches_;
  obs::MetricsRegistry::global().counter("multipath.route_switches").inc();
  obs::FlightRecorder::global().record(host.name(), "multipath", "route_switch",
                                       "to=" + preferred_);
  return true;
}

}  // namespace snipe::transport
