// Multi-path route management (§3.4, §6).
//
// "The system also provided the ability to switch routes/interfaces as
//  links failed without user applications intervention."
//
// Each endpoint keeps one MultipathPolicy per peer.  The policy starts on
// the fastest shared network (that choice is simnet's, per §5.3) and reacts
// to evidence of failure — consecutive retransmission timeouts — by
// rotating the preferred interface among the local host's up networks.
// Successful acknowledgements reset the failure count and pin the current
// route.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/world.hpp"

namespace snipe::transport {

class MultipathPolicy {
 public:
  /// `failover_threshold`: consecutive timeouts on one route before
  /// switching.  The paper's module switched automatically; 2 keeps the
  /// reaction fast without flapping on a single lost status packet.
  explicit MultipathPolicy(int failover_threshold = 2)
      : failover_threshold_(failover_threshold) {}

  /// The network to prefer right now ("" = let simnet pick the fastest).
  const std::string& preferred() const { return preferred_; }

  /// Record a successful round trip on the current route.
  void on_success() { consecutive_timeouts_ = 0; }

  /// Record a retransmission timeout.  When the threshold is reached the
  /// policy rotates to the next up network on `host` (wrapping, skipping
  /// the current one).  Returns true if the route changed.
  bool on_timeout(simnet::Host& host);

  /// Number of route switches performed (exposed for tests/benches).
  int switches() const { return switches_; }

 private:
  std::string preferred_;
  int consecutive_timeouts_ = 0;
  int failover_threshold_;
  int switches_ = 0;
};

}  // namespace snipe::transport
