// Multi-path route management (§3.4, §6).
//
// "The system also provided the ability to switch routes/interfaces as
//  links failed without user applications intervention."
//
// Each endpoint keeps one MultipathPolicy per peer.  The policy starts on
// the fastest shared network (that choice is simnet's, per §5.3) and reacts
// to evidence of failure — consecutive retransmission timeouts — by
// rotating the preferred interface among the local host's up networks.
// Successful acknowledgements reset the failure count; once a failover
// route has been *quiet* (no timeouts) for `probe_quiet`, the policy drops
// its explicit preference and re-probes the default (fastest) path, so a
// healed fast network is re-adopted instead of the detour being pinned
// forever.  If the fast path is still broken the next timeout pair simply
// rotates away again — the probe costs at most one failover threshold's
// worth of RTOs per quiet period.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/world.hpp"
#include "util/time.hpp"

namespace snipe::transport {

class MultipathPolicy {
 public:
  /// `failover_threshold`: consecutive timeouts on one route before
  /// switching.  The paper's module switched automatically; 2 keeps the
  /// reaction fast without flapping on a single lost status packet.
  /// `probe_quiet`: how long a failover route must stay timeout-free before
  /// the policy re-probes the default (fastest) route; <= 0 disables
  /// probing (the pre-probe pin-forever behaviour).
  explicit MultipathPolicy(int failover_threshold = 2,
                           SimDuration probe_quiet = duration::seconds(10))
      : failover_threshold_(failover_threshold), probe_quiet_(probe_quiet) {}

  /// The network to prefer right now ("" = let simnet pick the fastest).
  const std::string& preferred() const { return preferred_; }

  /// Record a successful round trip on the current route.  `now` is the
  /// caller's clock (virtual time); when a failover route has been quiet
  /// for `probe_quiet`, the preference resets to the default route and this
  /// returns true (a *probe*).  Callers without a clock can omit `now`,
  /// which only resets the failure count.
  bool on_success(SimTime now = -1);

  /// Record a retransmission timeout.  When the threshold is reached the
  /// policy rotates to the next up network on `host` (wrapping, skipping
  /// the current one).  Returns true if the route changed.
  bool on_timeout(simnet::Host& host);

  /// Number of route switches performed (exposed for tests/benches).
  int switches() const { return switches_; }
  /// Number of probe resets back to the default route.
  int probes() const { return probes_; }

 private:
  std::string preferred_;
  int consecutive_timeouts_ = 0;
  int failover_threshold_;
  SimDuration probe_quiet_;
  SimTime last_timeout_ = -1;  ///< clock of the most recent timeout
  int switches_ = 0;
  int probes_ = 0;
};

}  // namespace snipe::transport
