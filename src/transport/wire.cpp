#include "transport/wire.hpp"

namespace snipe::transport {

namespace {
PayloadWriter begin(PacketType type, std::uint16_t src_port) {
  PayloadWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(src_port);
  return w;
}

Result<PayloadCursor> open(const Payload& wire) {
  PayloadCursor r(wire);
  auto type = r.u8();
  if (!type) return type.error();
  auto port = r.u16();
  if (!port) return port.error();
  return r;
}

// A flipped length field can shrink a blob and leave stray bytes after the
// last field; a decoder that ignores them would accept a structurally
// mangled packet, so every decode_* ends with this check.
Error trailing_bytes() { return Error{Errc::corrupt, "trailing bytes"}; }
}  // namespace

std::uint64_t mint_flow(std::string_view src_host, std::uint16_t src_port,
                        std::string_view dst_host, std::uint16_t dst_port,
                        std::uint64_t msg_id) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64-bit offset basis
  auto mix = [&h](std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) h = (h ^ ((v >> (8 * i)) & 0xff)) * 1099511628211ull;
  };
  for (char c : src_host) mix(static_cast<unsigned char>(c), 1);
  mix(src_port, 2);
  for (char c : dst_host) mix(static_cast<unsigned char>(c), 1);
  mix(dst_port, 2);
  mix(msg_id, 8);
  return h == 0 ? 1 : h;  // 0 means "untraced" on the wire
}

std::uint32_t payload_checksum(const Payload& p) {
  std::uint32_t h = 2166136261u;  // FNV-1a offset basis
  for (std::size_t i = 0; i < p.segment_count(); ++i) {
    const Payload::Segment& s = p.segment(i);
    const std::uint8_t* d = s.data();
    for (std::size_t j = 0; j < s.len; ++j) h = (h ^ d[j]) * 16777619u;
  }
  return h;
}

Payload encode_data(std::uint16_t src_port, const DataPacket& p, bool with_checksum) {
  auto w = begin(with_checksum ? PacketType::data_ck : PacketType::data, src_port);
  w.u64(p.msg_id);
  w.u32(p.frag_index);
  w.u32(p.frag_count);
  w.u32(p.total_len);
  w.u64(p.flow);
  if (with_checksum) w.u32(payload_checksum(p.payload));
  w.blob(p.payload);
  return std::move(w).take();
}

Payload encode_status(std::uint16_t src_port, const StatusPacket& p) {
  auto w = begin(PacketType::status, src_port);
  w.u64(p.msg_id);
  w.u32(p.frag_count);
  w.blob(p.bitmap);
  return std::move(w).take();
}

Payload encode_msg_id(PacketType type, std::uint16_t src_port, const MsgIdPacket& p) {
  auto w = begin(type, src_port);
  w.u64(p.msg_id);
  return std::move(w).take();
}

Payload encode_stream(PacketType type, std::uint16_t src_port, const StreamPacket& p) {
  auto w = begin(type, src_port);
  w.u32(p.conn_id);
  w.u64(p.seq);
  w.u64(p.ack);
  w.u32(p.window);
  w.blob(p.payload);
  return std::move(w).take();
}

Payload encode_mcast_data(std::uint16_t src_port, const McastDataPacket& p) {
  auto w = begin(PacketType::mdata, src_port);
  w.str(p.group);
  w.u64(p.msg_id);
  w.u32(p.frag_index);
  w.u32(p.frag_count);
  w.u32(p.total_len);
  w.u64(p.flow);
  w.u64(static_cast<std::uint64_t>(p.born));
  w.blob(p.payload);
  return std::move(w).take();
}

Payload encode_mcast_nack(std::uint16_t src_port, const McastNackPacket& p) {
  auto w = begin(PacketType::mnack, src_port);
  w.str(p.group);
  w.u64(p.msg_id);
  w.u32(static_cast<std::uint32_t>(p.missing.size()));
  for (auto idx : p.missing) w.u32(idx);
  return std::move(w).take();
}

Result<PacketHead> decode_head(const Payload& wire) {
  PayloadCursor r(wire);
  auto type = r.u8();
  if (!type) return type.error();
  auto port = r.u16();
  if (!port) return port.error();
  return PacketHead{static_cast<PacketType>(type.value()), port.value()};
}

Result<DataPacket> decode_data(const Payload& wire) {
  PayloadCursor r(wire);
  auto type = r.u8();
  if (!type) return type.error();
  auto port = r.u16();
  if (!port) return port.error();
  DataPacket p;
  p.has_checksum = static_cast<PacketType>(type.value()) == PacketType::data_ck;
  auto msg_id = r.u64();
  if (!msg_id) return msg_id.error();
  p.msg_id = msg_id.value();
  auto frag_index = r.u32();
  if (!frag_index) return frag_index.error();
  p.frag_index = frag_index.value();
  auto frag_count = r.u32();
  if (!frag_count) return frag_count.error();
  p.frag_count = frag_count.value();
  auto total_len = r.u32();
  if (!total_len) return total_len.error();
  p.total_len = total_len.value();
  auto flow = r.u64();
  if (!flow) return flow.error();
  p.flow = flow.value();
  std::uint32_t wire_sum = 0;
  if (p.has_checksum) {
    auto sum = r.u32();
    if (!sum) return sum.error();
    wire_sum = sum.value();
  }
  auto payload = r.blob();
  if (!payload) return payload.error();
  p.payload = std::move(payload).take();
  if (p.frag_count == 0 || p.frag_index >= p.frag_count)
    return Error{Errc::corrupt, "bad fragment indices"};
  if (p.frag_count > kMaxWireFragments)
    return Error{Errc::corrupt, "absurd fragment count"};
  if (p.frag_count > 1 && p.total_len == 0)
    return Error{Errc::corrupt, "multi-fragment message with zero length"};
  if (r.remaining() != 0) return trailing_bytes();
  if (p.has_checksum) p.checksum_ok = payload_checksum(p.payload) == wire_sum;
  return p;
}

Result<StatusPacket> decode_status(const Payload& wire) {
  auto r = open(wire);
  if (!r) return r.error();
  StatusPacket p;
  auto msg_id = r.value().u64();
  if (!msg_id) return msg_id.error();
  p.msg_id = msg_id.value();
  auto frag_count = r.value().u32();
  if (!frag_count) return frag_count.error();
  p.frag_count = frag_count.value();
  auto bitmap = r.value().blob();
  if (!bitmap) return bitmap.error();
  p.bitmap = bitmap.value().to_bytes();
  if (p.frag_count > kMaxWireFragments)
    return Error{Errc::corrupt, "absurd status fragment count"};
  if (p.bitmap.size() * 8 < p.frag_count)
    return Error{Errc::corrupt, "status bitmap too small"};
  if (r.value().remaining() != 0) return trailing_bytes();
  return p;
}

Result<MsgIdPacket> decode_msg_id(const Payload& wire) {
  auto r = open(wire);
  if (!r) return r.error();
  auto msg_id = r.value().u64();
  if (!msg_id) return msg_id.error();
  if (r.value().remaining() != 0) return trailing_bytes();
  return MsgIdPacket{msg_id.value()};
}

Result<StreamPacket> decode_stream(const Payload& wire) {
  auto r = open(wire);
  if (!r) return r.error();
  StreamPacket p;
  auto conn_id = r.value().u32();
  if (!conn_id) return conn_id.error();
  p.conn_id = conn_id.value();
  auto seq = r.value().u64();
  if (!seq) return seq.error();
  p.seq = seq.value();
  auto ack = r.value().u64();
  if (!ack) return ack.error();
  p.ack = ack.value();
  auto window = r.value().u32();
  if (!window) return window.error();
  p.window = window.value();
  auto payload = r.value().blob();
  if (!payload) return payload.error();
  p.payload = std::move(payload).take();
  if (r.value().remaining() != 0) return trailing_bytes();
  return p;
}

Result<McastDataPacket> decode_mcast_data(const Payload& wire) {
  auto r = open(wire);
  if (!r) return r.error();
  McastDataPacket p;
  auto group = r.value().str();
  if (!group) return group.error();
  p.group = group.value();
  auto msg_id = r.value().u64();
  if (!msg_id) return msg_id.error();
  p.msg_id = msg_id.value();
  auto frag_index = r.value().u32();
  if (!frag_index) return frag_index.error();
  p.frag_index = frag_index.value();
  auto frag_count = r.value().u32();
  if (!frag_count) return frag_count.error();
  p.frag_count = frag_count.value();
  auto total_len = r.value().u32();
  if (!total_len) return total_len.error();
  p.total_len = total_len.value();
  auto flow = r.value().u64();
  if (!flow) return flow.error();
  p.flow = flow.value();
  auto born = r.value().u64();
  if (!born) return born.error();
  p.born = static_cast<std::int64_t>(born.value());
  auto payload = r.value().blob();
  if (!payload) return payload.error();
  p.payload = std::move(payload).take();
  if (p.frag_count == 0 || p.frag_index >= p.frag_count)
    return Error{Errc::corrupt, "bad multicast fragment indices"};
  if (p.frag_count > kMaxWireFragments)
    return Error{Errc::corrupt, "absurd multicast fragment count"};
  if (p.frag_count > 1 && p.total_len == 0)
    return Error{Errc::corrupt, "multi-fragment multicast with zero length"};
  if (r.value().remaining() != 0) return trailing_bytes();
  return p;
}

Result<McastNackPacket> decode_mcast_nack(const Payload& wire) {
  auto r = open(wire);
  if (!r) return r.error();
  McastNackPacket p;
  auto group = r.value().str();
  if (!group) return group.error();
  p.group = group.value();
  auto msg_id = r.value().u64();
  if (!msg_id) return msg_id.error();
  p.msg_id = msg_id.value();
  auto count = r.value().u32();
  if (!count) return count.error();
  if (count.value() > kMaxWireFragments) return Error{Errc::corrupt, "absurd NACK count"};
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto idx = r.value().u32();
    if (!idx) return idx.error();
    p.missing.push_back(idx.value());
  }
  if (r.value().remaining() != 0) return trailing_bytes();
  return p;
}

bool bitmap_get(const Bytes& bitmap, std::uint32_t index) {
  std::size_t byte = index / 8;
  if (byte >= bitmap.size()) return false;
  return (bitmap[byte] >> (index % 8)) & 1;
}

void bitmap_set(Bytes& bitmap, std::uint32_t index) {
  std::size_t byte = index / 8;
  if (byte >= bitmap.size()) bitmap.resize(byte + 1, 0);
  bitmap[byte] |= static_cast<std::uint8_t>(1u << (index % 8));
}

Bytes make_bitmap(std::uint32_t bits) { return Bytes((bits + 7) / 8, 0); }

}  // namespace snipe::transport
