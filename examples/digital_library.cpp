// Indexing a distributed digital library.
//
// The paper's first motivating application (§1): "Indexing and cataloging
// the worldwide digital library, which will have hundreds of millions of
// documents, produced at millions of different locations."  Scaled to a
// simulation-sized library, this example exercises:
//
//   * replicated file servers holding documents under LIFNs (§3.2, §5.9),
//     with locations registered in RC;
//   * indexer processes spawned across hosts by a resource manager (§3.5),
//     each reading documents from the *closest* replica;
//   * an index stored back as RC metadata, queried through a console;
//   * a file-server failure mid-run: reads fail over to surviving
//     replicas and indexing completes anyway (§6's availability story).
//
//   $ ./digital_library
#include <cstdio>
#include <set>

#include "core/console.hpp"
#include "core/process.hpp"
#include "files/fileserver.hpp"
#include "rcds/server.hpp"

using namespace snipe;

namespace {

/// Generates a pseudo-document: words drawn from a small vocabulary.
Bytes make_document(int id) {
  static const char* vocabulary[] = {"matrix", "solver", "weather", "network",
                                     "protocol", "library", "archive", "catalog"};
  Rng rng(9000 + static_cast<std::uint64_t>(id));
  std::string text;
  for (int w = 0; w < 60; ++w) {
    text += vocabulary[rng.next_below(8)];
    text += ' ';
  }
  return to_bytes(text);
}

/// Counts occurrences of `word` in a document body.
int count_word(const Bytes& body, const std::string& word) {
  std::string text = to_string(body);
  int n = 0;
  for (std::size_t pos = text.find(word); pos != std::string::npos;
       pos = text.find(word, pos + 1))
    ++n;
  return n;
}

}  // namespace

int main() {
  simnet::World world(11);
  auto& lan_east = world.create_network("east-lan", simnet::ethernet100());
  auto& lan_west = world.create_network("west-lan", simnet::ethernet100());
  auto& wan = world.create_network("wan", simnet::wan_t3());
  auto add_host = [&](const std::string& name, simnet::Network& lan) -> simnet::Host& {
    auto& h = world.create_host(name);
    world.attach(h, lan);
    world.attach(h, wan);
    return h;
  };
  add_host("rc-east", lan_east);
  add_host("rc-west", lan_west);
  add_host("fs-east", lan_east);
  add_host("fs-west", lan_west);
  add_host("ix-east", lan_east);
  add_host("ix-west", lan_west);
  add_host("reader", lan_east);

  rcds::RcServer rc_east(*world.host("rc-east"));
  rcds::RcServer rc_west(*world.host("rc-west"));
  rc_east.set_peers({rc_west.address()});
  rc_west.set_peers({rc_east.address()});
  std::vector<simnet::Address> rc = {rc_east.address(), rc_west.address()};

  files::FileServerConfig fs_cfg;
  fs_cfg.replication_factor = 2;  // every document on both servers
  files::FileServer fs_east(*world.host("fs-east"), rc, files::FileServer::kDefaultPort,
                            fs_cfg);
  files::FileServer fs_west(*world.host("fs-west"), rc, files::FileServer::kDefaultPort,
                            fs_cfg);
  fs_east.set_peers({fs_west.address()});
  fs_west.set_peers({fs_east.address()});

  std::printf("== distributed digital library ==\n");

  // Publish the collection through a SNIPE process on the east coast;
  // replication pushes copies west automatically.
  core::SnipeProcess librarian(*world.host("reader"), "librarian", rc);
  files::FileClient lib_files(librarian.rpc(), rc);
  const int kDocs = 40;
  int published = 0;
  for (int d = 0; d < kDocs; ++d) {
    lib_files.write(fs_east.address(), "lifn://library/doc/" + std::to_string(d),
                    make_document(d), [&](Result<void> r) { published += r.ok(); });
  }
  world.engine().run();
  std::printf("published %d documents (east=%zu files, west=%zu files after replication)\n",
              published, fs_east.file_count(), fs_west.file_count());

  // Two indexers, one per site, split the collection and count the word
  // "weather", storing results in RC under an index URI.
  struct Indexer {
    Indexer(simnet::World& world, const std::string& host, const std::string& name,
            std::vector<simnet::Address> rc)
        : process(*world.host(host), name, rc), files(process.rpc(), rc) {}
    void index_range(int begin, int end, int* failures) {
      for (int d = begin; d < end; ++d) {
        files.read("lifn://library/doc/" + std::to_string(d),
                   [this, d, failures](Result<Bytes> r) {
                     if (!r) {
                       ++*failures;
                       return;
                     }
                     int hits = count_word(r.value(), "weather");
                     process.rc().set("urn:snipe:index:weather",
                                      "doc:" + std::to_string(d), std::to_string(hits),
                                      [](Result<void>) {});
                     ++indexed;
                   });
      }
    }
    core::SnipeProcess process;
    files::FileClient files;
    int indexed = 0;
  };

  Indexer east(world, "ix-east", "indexer-east", rc);
  Indexer west(world, "ix-west", "indexer-west", rc);
  world.engine().run();

  int failures = 0;
  east.index_range(0, kDocs / 2, &failures);
  // Mid-run, the west file server dies: the west indexer's closest replica
  // vanishes and every read must fail over to the east server over the WAN.
  west.index_range(kDocs / 2, kDocs * 3 / 4, &failures);
  world.engine().run();
  std::printf("first wave indexed: east=%d west=%d (failures=%d)\n", east.indexed,
              west.indexed, failures);

  std::printf("killing fs-west; indexing the remaining quarter from the west site\n");
  world.host("fs-west")->set_up(false);
  west.index_range(kDocs * 3 / 4, kDocs, &failures);
  world.engine().run_for(duration::seconds(30));

  std::printf("after failover: west indexed %d documents total, failures=%d\n",
              west.indexed, failures);

  // A console tallies the index from RC metadata.
  core::SnipeProcess console_proc(*world.host("reader"), "console", rc);
  core::Console console(console_proc);
  int total_hits = 0, docs_indexed = 0;
  console.query("urn:snipe:index:weather", [&](Result<std::vector<rcds::Assertion>> r) {
    if (!r) return;
    for (const auto& a : r.value()) {
      ++docs_indexed;
      total_hits += std::stoi(a.value);
    }
  });
  world.engine().run();

  std::printf("== index complete: %d/%d documents, %d total occurrences of "
              "\"weather\", t=%s ==\n",
              docs_indexed, kDocs, total_hits, format_time(world.now()).c_str());
  return docs_indexed == kDocs && failures == 0 ? 0 : 1;
}
