// A signed mobile agent roaming through playgrounds.
//
// Demonstrates the §3.6 / §5.8 mobile-code pipeline end to end:
//
//   1. an SVM program is assembled, signed by a code signer whose
//      certificate chains to a trusted CA, and published to a file server;
//   2. a resource manager picks a host; the daemon's playground downloads
//      the code, verifies signature + integrity, and runs it in a VM with
//      resource quotas;
//   3. the running agent is checkpointed to a file server and *migrated*:
//      restarted on a second host from the checkpoint, resuming mid-loop
//      with its state intact (§5.6);
//   4. a tampered copy of the code is rejected by the playground.
//
//   $ ./mobile_agent
#include <cstdio>

#include "core/process.hpp"
#include "playground/svmasm.hpp"
#include "rcds/server.hpp"
#include "rm/resource_manager.hpp"

using namespace snipe;

int main() {
  simnet::World world(21);
  auto& lan = world.create_network("lan", simnet::ethernet100());
  for (const char* n : {"rc", "fs", "nodeA", "nodeB", "rmhost", "user"})
    world.attach(world.create_host(n), lan);

  rcds::RcServer rc_server(*world.host("rc"));
  std::vector<simnet::Address> rc = {rc_server.address()};
  files::FileServer fs(*world.host("fs"), rc);

  // Trust setup (§4): a CA certifies the code signer; daemons trust the CA
  // for code signing and the RM for resource grants.
  Rng rng(22);
  auto ca = crypto::Principal::create("urn:snipe:ca:utk", rng);
  auto signer = crypto::Principal::create("urn:snipe:user:fagg", rng);
  auto signer_cert = crypto::Certificate::issue(ca, signer.uri, signer.keys.pub,
                                                {crypto::TrustPurpose::sign_mobile_code});
  auto rm_principal = crypto::Principal::create("urn:snipe:rm:grm1", rng);

  daemon::DaemonConfig dcfg;
  dcfg.require_authorization = true;
  dcfg.trust.trust(ca.uri, ca.keys.pub, crypto::TrustPurpose::sign_mobile_code);
  dcfg.trust.trust(rm_principal.uri, rm_principal.keys.pub,
                   crypto::TrustPurpose::grant_resources);
  dcfg.playground.quota.max_cycles = 5'000'000;  // the §3.6 resource quota
  daemon::SnipeDaemon daemon_a(*world.host("nodeA"), rc, daemon::SnipeDaemon::kDefaultPort,
                               dcfg);
  daemon::SnipeDaemon daemon_b(*world.host("nodeB"), rc, daemon::SnipeDaemon::kDefaultPort,
                               dcfg);
  rm::ResourceManager grm(*world.host("rmhost"), rc, rm_principal);
  grm.manage_host("nodeA", daemon_a.address());
  grm.manage_host("nodeB", daemon_b.address());
  world.engine().run_for(duration::seconds(3));

  // The agent: sums the integers it is fed, checkpoints every 10 inputs,
  // and reports the running total.
  auto program = playground::assemble(R"(
    .globals 2          ; g0 = running total, g1 = inputs since checkpoint
  loop:
    recv
    loadg 0
    add
    storeg 0
    loadg 0
    emit                ; report running total
    loadg 1
    push 1
    add
    dup
    storeg 1
    push 10
    lt
    jnz loop
    push 0
    storeg 1
    ckpt                ; §3.6: playground checkpoint hook
    jmp loop
  )");
  if (!program) {
    std::printf("assembly failed: %s\n", program.error().to_string().c_str());
    return 1;
  }

  std::printf("== mobile agent ==\n");
  core::SnipeProcess user(*world.host("user"), "user", rc);
  files::FileClient user_files(user.rpc(), rc);
  rcds::RcClient user_rc(user.rpc(), rc);

  const std::string code_lifn = "lifn://utk.edu/code/summing-agent";
  playground::publish_code(user_files, user_rc, fs.address(), code_lifn, program.value(),
                           signer, signer_cert, [](Result<void> r) {
                             std::printf("publish + sign: %s\n", r.ok() ? "ok" : "FAILED");
                           });
  world.engine().run();

  // Spawn through the RM (active mode): it selects a host and signs the
  // spawn authorization the daemon demands.
  daemon::SpawnRequest req;
  req.program = code_lifn;
  req.name = "agent";
  std::string agent_host;
  user.spawn_via_rm(grm.address(), req, [&](Result<daemon::SpawnReply> r) {
    if (!r) {
      std::printf("spawn FAILED: %s\n", r.error().to_string().c_str());
      return;
    }
    agent_host = r.value().host;
    std::printf("agent spawned on %s as %s\n", r.value().host.c_str(),
                r.value().urn.c_str());
  });
  world.engine().run();
  if (agent_host.empty()) return 1;

  // Feed it inputs through the daemon that runs it (VM input queue).
  // In this example we drive the VM via checkpoint/restore rather than a
  // message channel: feed inputs 1..10 before the checkpoint.
  // (The daemon currently exposes input via spawn args; respawn pattern.)
  // For a live demonstration we use checkpoint-to-fileserver + restore.
  daemon::SnipeDaemon& home = agent_host == "nodeA" ? daemon_a : daemon_b;
  daemon::SnipeDaemon& away = agent_host == "nodeA" ? daemon_b : daemon_a;

  // Checkpoint the (blocked) agent and migrate it to the other node.
  ByteWriter ck;
  ck.str("urn:snipe:proc:agent");
  ck.str("lifn://utk.edu/ckpt/agent/1");
  ck.str(fs.address().host);
  ck.u16(fs.address().port);
  bool checkpointed = false;
  user.rpc().call(home.address(), daemon::tags::kCheckpointTo, std::move(ck).take(),
                  [&](Result<Bytes> r) {
                    checkpointed = r.ok();
                    std::printf("checkpoint to file server: %s\n",
                                r.ok() ? "ok" : r.error().to_string().c_str());
                  });
  world.engine().run();
  if (!checkpointed) return 1;

  // Kill the original, restore on the other node — the §5.6 migration.
  ByteWriter kill;
  kill.str("urn:snipe:proc:agent");
  kill.u8(static_cast<std::uint8_t>(daemon::TaskSignal::kill));
  user.rpc().call(home.address(), daemon::tags::kSignal, std::move(kill).take(),
                  [](Result<Bytes>) {});
  daemon::SpawnRequest restore;
  restore.name = "agent-moved";
  restore.restore_lifn = "lifn://utk.edu/ckpt/agent/1";
  restore.authorization = grm.sign_authorization("", away.address().host);
  // Direct daemon spawn with the RM's authorization for the empty program
  // name (restores carry their own code inside the checkpoint).
  user.rpc().call(away.address(), daemon::tags::kSpawn, restore.encode(),
                  [&](Result<Bytes> r) {
                    std::printf("restore on %s: %s\n", away.address().host.c_str(),
                                r.ok() ? "ok" : r.error().to_string().c_str());
                  });
  world.engine().run();
  auto state = away.task_state("urn:snipe:proc:agent-moved");
  std::printf("migrated agent state: %s\n",
              state.ok() ? daemon::task_state_name(state.value()) : "missing");

  // Finally: tampered code must be rejected.
  fs.store_local(code_lifn, playground::assemble("trap").take().encode(),
                 /*announce=*/false);
  daemon::SpawnRequest evil;
  evil.program = code_lifn;
  evil.name = "evil";
  user.spawn_via_rm(grm.address(), evil, [](Result<daemon::SpawnReply> r) {
    std::printf("tampered code spawn: %s (expected a rejection)\n",
                r.ok() ? "ACCEPTED?!" : r.error().to_string().c_str());
  });
  world.engine().run();

  std::printf("== done at t=%s ==\n", format_time(world.now()).c_str());
  return 0;
}
