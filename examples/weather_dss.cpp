// Weather monitoring decision-support network.
//
// One of the paper's motivating applications (§1): "Monitoring of weather
// and prediction of catastrophic conditions to provide planning and
// decision support for emergency relief."  This example exercises the
// whole stack the way that application would:
//
//   * 6 sensor stations on three different sites (two LANs + a WAN),
//     publishing readings into a multicast group (§5.4);
//   * 2 analysis processes subscribed to the group, maintaining running
//     statistics and raising alarms;
//   * a console process watching process state through RC (§3.7);
//   * mid-run, one analysis process *migrates* to another host without
//     losing readings (§5.6);
//   * mid-run, one sensor site's router host fails — the group keeps
//     delivering through the surviving routers (graceful degradation, §1).
//
//   $ ./weather_dss
#include <cstdio>
#include <map>
#include <memory>
#include <set>

#include "core/console.hpp"
#include "core/group.hpp"
#include "core/process.hpp"
#include "rcds/server.hpp"
#include "util/uri.hpp"

using namespace snipe;

namespace {

/// A sensor station: publishes a pseudo-temperature every second.
struct Sensor {
  Sensor(simnet::World& world, const std::string& host, int id,
         const std::vector<simnet::Address>& rc, const std::string& group)
      : process(*world.host(host), "sensor-" + std::to_string(id), rc),
        member(process, group),
        id(id),
        rng(1000 + static_cast<std::uint64_t>(id)) {}

  void start(simnet::Engine& engine, SimTime stop_at) {
    stop_at_ = stop_at;
    tick(engine);
  }
  void tick(simnet::Engine& engine) {
    if (engine.now() >= stop_at_) return;  // observation campaign over
    // A slow warm front plus noise; sensor 3 sits in a storm cell.
    double base = 15.0 + 0.002 * to_seconds(engine.now()) * 60.0;
    if (id == 3) base += 25.0;
    std::int64_t reading = static_cast<std::int64_t>(base + rng.next_range(-2, 2));
    ByteWriter w;
    w.i32(id);
    w.i64(reading);
    member.send(std::move(w).take());
    ++sent;
    engine.schedule(duration::seconds(1), [this, &engine] { tick(engine); });
  }
  SimTime stop_at_ = 0;

  core::SnipeProcess process;
  core::MulticastGroup member;
  int id;
  Rng rng;
  int sent = 0;
};

/// An analysis node: aggregates readings, raises alarms over 35 degrees.
struct Analyzer {
  Analyzer(simnet::World& world, const std::string& host, const std::string& name,
           const std::vector<simnet::Address>& rc, const std::string& group)
      : process(*world.host(host), name, rc), member(process, group) {
    member.set_handler([this](const std::string&, Bytes body) {
      ByteReader r(body);
      auto id = r.i32();
      auto reading = r.i64();
      if (!id || !reading) return;
      ++received;
      auto& s = per_sensor[id.value()];
      s.count++;
      s.sum += reading.value();
      if (reading.value() > 35 && !alarmed.count(id.value())) {
        alarmed.insert(id.value());
        std::printf("  [%s] ALARM: sensor %d reports %lld degrees\n",
                    process.urn().c_str(), id.value(),
                    static_cast<long long>(reading.value()));
      }
    });
  }

  struct Stat {
    int count = 0;
    std::int64_t sum = 0;
  };
  core::SnipeProcess process;
  core::MulticastGroup member;
  std::map<int, Stat> per_sensor;
  std::set<int> alarmed;
  int received = 0;
};

}  // namespace

int main() {
  simnet::World world(7);
  // Three sites: two campus LANs joined by a WAN.
  auto& utk = world.create_network("utk-lan", simnet::ethernet100());
  auto& reading_uk = world.create_network("reading-lan", simnet::ethernet100());
  auto& wan = world.create_network("wan", simnet::wan_t3());

  auto add_host = [&](const std::string& name, simnet::Network& lan) -> simnet::Host& {
    auto& h = world.create_host(name);
    world.attach(h, lan);
    world.attach(h, wan);
    return h;
  };
  // Replicated registry: one RC server per site (availability, §6).
  add_host("rc-utk", utk);
  add_host("rc-reading", reading_uk);
  rcds::RcServer rc1(*world.host("rc-utk"));
  rcds::RcServer rc2(*world.host("rc-reading"));
  rc1.set_peers({rc2.address()});
  rc2.set_peers({rc1.address()});
  std::vector<simnet::Address> rc = {rc1.address(), rc2.address()};

  for (int i = 0; i < 3; ++i) add_host("utk-s" + std::to_string(i), utk);
  for (int i = 0; i < 3; ++i) add_host("rdg-s" + std::to_string(i), reading_uk);
  add_host("utk-compute", utk);
  add_host("rdg-compute", reading_uk);
  add_host("spare-compute", utk);
  add_host("ops-console", reading_uk);

  const std::string group = group_urn("weather-feed");

  std::printf("== weather decision-support network ==\n");
  // Analyzers join first (they become the group's routers).
  Analyzer utk_analysis(world, "utk-compute", "analysis-utk", rc, group);
  Analyzer rdg_analysis(world, "rdg-compute", "analysis-rdg", rc, group);
  world.engine().run();

  std::vector<std::unique_ptr<Sensor>> sensors;
  for (int i = 0; i < 3; ++i)
    sensors.push_back(
        std::make_unique<Sensor>(world, "utk-s" + std::to_string(i), i, rc, group));
  for (int i = 3; i < 6; ++i)
    sensors.push_back(
        std::make_unique<Sensor>(world, "rdg-s" + std::to_string(i - 3), i, rc, group));
  world.engine().run();
  for (auto& s : sensors) s->start(world.engine(), duration::seconds(90));

  core::SnipeProcess console_proc(*world.host("ops-console"), "ops", rc);
  core::Console console(console_proc);

  // Phase 1: 30 seconds of normal operation.
  world.engine().run_until(duration::seconds(30));
  std::printf("t=30s  readings received: utk=%d rdg=%d\n", utk_analysis.received,
              rdg_analysis.received);

  // Phase 2: the UTK analysis process migrates to the spare host (§5.6) —
  // no readings may be lost while it moves.
  int before_migration = utk_analysis.received;
  std::printf("t=30s  migrating analysis-utk -> spare-compute\n");
  utk_analysis.process.migrate_to(*world.host("spare-compute"), [](Result<void> r) {
    std::printf("       migration %s\n", r.ok() ? "complete" : "FAILED");
  });
  world.engine().run_until(duration::seconds(60));
  std::printf("t=60s  analysis-utk received %d more readings after migrating\n",
              utk_analysis.received - before_migration);

  // Phase 3: a sensor host dies; the system degrades gracefully.
  std::printf("t=60s  killing host utk-s1 (sensor 1 goes dark)\n");
  world.host("utk-s1")->set_up(false);
  world.engine().run_until(duration::seconds(90));

  std::printf("t=90s  final per-sensor means at analysis-rdg:\n");
  for (const auto& [id, stat] : rdg_analysis.per_sensor) {
    std::printf("         sensor %d: %4d readings, mean %.1f\n", id, stat.count,
                static_cast<double>(stat.sum) / stat.count);
  }

  // The console checks the migrated process's whereabouts through RC.
  console.query(utk_analysis.process.urn(), [](Result<std::vector<rcds::Assertion>> r) {
    if (!r) return;
    for (const auto& a : r.value())
      if (a.name == rcds::names::kProcHost)
        std::printf("console: analysis-utk now reported on host '%s'\n", a.value.c_str());
  });
  world.engine().run();

  bool alarm_seen = !utk_analysis.alarmed.empty() || !rdg_analysis.alarmed.empty();
  std::printf("== done: %d+%d readings processed, alarms %s, t=%s ==\n",
              utk_analysis.received, rdg_analysis.received,
              alarm_seen ? "raised" : "none", format_time(world.now()).c_str());
  return alarm_seen ? 0 : 1;
}
