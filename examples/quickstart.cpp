// Quickstart: the smallest complete SNIPE system.
//
// Builds a simulated testbed (one Ethernet LAN), starts a replicated RC
// metadata registry, creates two globally named processes, and exchanges
// messages by URN — no virtual machine, no configuration files, just the
// global name space (paper §3.1).
//
//   $ ./quickstart
#include <cstdio>

#include "core/process.hpp"
#include "rcds/server.hpp"

using namespace snipe;

int main() {
  // 1. A simulated testbed: three hosts on a 100 Mb Ethernet segment.
  simnet::World world(/*seed=*/2026);
  auto& lan = world.create_network("lan", simnet::ethernet100());
  for (const char* name : {"registry", "alpha", "beta"})
    world.attach(world.create_host(name), lan);

  // 2. One RC metadata server — the registry everything else names
  //    itself in.  (Production runs several replicas; see weather_dss.)
  rcds::RcServer registry(*world.host("registry"));
  std::vector<simnet::Address> rc = {registry.address()};

  // 3. Two SNIPE processes.  Each gets a distinguished URN and registers
  //    its communication address as RC metadata.
  core::SnipeProcess alice(*world.host("alpha"), "alice", rc);
  core::SnipeProcess bob(*world.host("beta"), "bob", rc);

  // 4. Bob handles tagged messages; tag 1 is "greeting" by convention.
  bob.set_message_handler([&](const std::string& src, std::uint32_t tag, Bytes body) {
    std::printf("[bob]   got tag %u from %s: \"%s\"\n", tag, src.c_str(),
                to_string(body).c_str());
    bob.send(src, 2, to_bytes("hi alice, bob here"));
  });
  alice.set_message_handler([&](const std::string& src, std::uint32_t tag, Bytes body) {
    std::printf("[alice] got tag %u from %s: \"%s\"\n", tag, src.c_str(),
                to_string(body).c_str());
  });

  // 5. Alice addresses Bob purely by URN; the library resolves the URN
  //    through RC, then delivers over the reliable SRUDP transport.
  world.engine().run();  // let registrations settle
  std::printf("sending to %s ...\n", bob.urn().c_str());
  alice.send(bob.urn(), 1, to_bytes("hello from the global name space"),
             [](Result<void> r) {
               std::printf("[alice] delivery %s\n", r.ok() ? "acknowledged" : "FAILED");
             });

  // 6. Run the virtual clock until the system goes quiet.
  world.engine().run();
  std::printf("done at t=%s (simulated)\n", format_time(world.now()).c_str());
  return 0;
}
