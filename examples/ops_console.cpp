// An operator's console session (§3.7).
//
// "A SNIPE console is any SNIPE process which communicates with humans.
//  Communication can be via a character-based or graphical user
//  interface."  This example stands up a small SNIPE site — registry,
//  daemon, resource manager, one running task, one multicast group — and
//  then replays the kind of character-based session an operator would
//  type, evaluating each command against live RC metadata.  Because
//  "there is no SNIPE virtual machine apart from the entire Internet",
//  every query starts from a name: a host URL, a process URN, a group URN.
//
//  The session ends with the observability view of the same run: the
//  operator's `metrics` command, a full metrics snapshot, and a Chrome
//  trace dumped to ops_console_trace.json (open it at ui.perfetto.dev).
//
//   $ ./ops_console
#include <cstdio>

#include "core/console.hpp"
#include "core/group.hpp"
#include "core/process.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rcds/server.hpp"
#include "rm/resource_manager.hpp"
#include "util/uri.hpp"

using namespace snipe;

namespace {

/// A long-running native service for the console to inspect.
class Service final : public daemon::ManagedTask {
 public:
  explicit Service(daemon::TaskHandle&) {}
  void start() override {}
  void kill() override {}
};

}  // namespace

int main() {
  simnet::World world(77);
  auto& lan = world.create_network("lan", simnet::ethernet100());
  for (const char* n : {"rc", "node", "rmhost", "opsdesk"})
    world.attach(world.create_host(n), lan);

  rcds::RcServer rc(*world.host("rc"));
  std::vector<simnet::Address> replicas = {rc.address()};

  Rng rng(78);
  auto rm_principal = crypto::Principal::create("urn:snipe:rm:grm1", rng);
  daemon::DaemonConfig dcfg;
  dcfg.arch = "alpha-osf1";
  dcfg.cpus = 4;
  daemon::SnipeDaemon d(*world.host("node"), replicas, daemon::SnipeDaemon::kDefaultPort,
                        dcfg);
  d.register_program("weather-service",
                     [](const daemon::SpawnRequest&, daemon::TaskHandle& h)
                         -> Result<std::unique_ptr<daemon::ManagedTask>> {
                       return std::unique_ptr<daemon::ManagedTask>(new Service(h));
                     });
  rm::ResourceManager grm(*world.host("rmhost"), replicas, rm_principal);
  grm.manage_host("node", d.address());
  world.engine().run_for(duration::seconds(3));

  // Something to look at: a task and a group member.
  core::SnipeProcess operator_proc(*world.host("opsdesk"), "operator", replicas);
  daemon::SpawnRequest req;
  req.program = "weather-service";
  req.name = "wsvc-1";
  operator_proc.spawn_via_host("node", req, [](Result<daemon::SpawnReply> r) {
    if (!r) std::printf("spawn failed: %s\n", r.error().to_string().c_str());
  });
  world.engine().run();
  core::MulticastGroup membership(operator_proc, group_urn("ops-alerts"));
  world.engine().run();

  // The scripted console session.
  core::Console console(operator_proc);
  std::string host_uri = d.host_url();
  std::vector<std::string> commands = {
      "ps " + host_uri,
      "state urn:snipe:proc:wsvc-1",
      "where urn:snipe:proc:wsvc-1",
      "meta " + host_uri,
      "routers " + group_urn("ops-alerts"),
      "state urn:snipe:proc:does-not-exist",
      "metrics rcds.",
      "help",
  };
  for (const auto& line : commands) {
    std::printf("snipe> %s\n", line.c_str());
    console.interpret(line, [](std::string reply) {
      // Indent multi-line replies like a terminal would.
      std::string out = "  ";
      for (char c : reply) {
        out += c;
        if (c == '\n') out += "  ";
      }
      std::printf("%s\n", out.c_str());
    });
    world.engine().run();
  }
  std::printf("== session over at t=%s ==\n", format_time(world.now()).c_str());

  // What the whole run looked like to the observability subsystem.
  std::printf("\n== metrics snapshot ==\n%s",
              obs::MetricsRegistry::global().format_text().c_str());
  const char* trace_path = "ops_console_trace.json";
  if (obs::Tracer::global().write_chrome_json(trace_path))
    std::printf("== trace: %zu events -> %s (load in ui.perfetto.dev) ==\n",
                obs::Tracer::global().events().size(), trace_path);
  return 0;
}
