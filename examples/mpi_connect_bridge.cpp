// MPI_Connect: coupling two MPPs' MPI applications through SNIPE (§6.1).
//
// Reproduces the PVMPI/MPI_Connect scenario: an "ocean" model on MPP A and
// an "atmosphere" model on MPP B, each running in its own vendor-MPI world
// on a private myrinet fabric, exchanging boundary data across the WAN
// every timestep.  The exchange runs twice — once bridged by PVMPI (via
// PVM daemons) and once by MPI_Connect (via SNIPE) — and reports both
// coupled-timestep rates, showing MPI_Connect's point-to-point edge.
//
//   $ ./mpi_connect_bridge
#include <cstdio>

#include "mpi/bridge.hpp"
#include "rcds/server.hpp"

using namespace snipe;
using namespace snipe::mpi;

namespace {

std::vector<simnet::Host*> make_mpp(simnet::World& world, const std::string& name, int n) {
  auto& fabric = world.create_network(name + "-fabric", simnet::myrinet());
  std::vector<simnet::Host*> hosts;
  for (int i = 0; i < n; ++i) {
    auto& h = world.create_host(name + "-n" + std::to_string(i));
    world.attach(h, fabric);
    world.attach(h, *world.network("wan"));
    hosts.push_back(&h);
  }
  return hosts;
}

/// One coupled model: every timestep, rank 0 gathers a local reduction,
/// exchanges the boundary value with the peer application through the
/// bridge, then broadcasts the remote value to its ranks.
struct CoupledModel {
  CoupledModel(MpiWorld& world, InterPort& port, std::string peer, int peer_rank)
      : world(world), port(port), peer(std::move(peer)), peer_rank(peer_rank) {
    port.set_handler([this](InterMessage m) {
      ByteReader r(m.data);
      remote_boundary = r.i64().value_or(0);
      got_remote = true;
      maybe_finish_step();
    });
  }

  void run_steps(int n, std::function<void()> done) {
    steps_left = n;
    on_all_done = std::move(done);
    step();
  }

  void step() {
    got_remote = false;
    reduced = false;
    // Local physics: each rank contributes rank+step to the boundary sum.
    for (int r = 0; r < world.size(); ++r) {
      world.rank(r).allreduce_sum(r + steps_left, [this, r](std::int64_t total) {
        if (r != 0) return;
        local_boundary = total;
        reduced = true;
        ByteWriter w;
        w.i64(total);
        port.send(peer, peer_rank, 0, std::move(w).take());
        maybe_finish_step();
      });
    }
  }

  void maybe_finish_step() {
    if (!reduced || !got_remote) return;
    coupling_sum += remote_boundary;
    if (--steps_left > 0) {
      step();
    } else if (on_all_done) {
      on_all_done();
    }
  }

  MpiWorld& world;
  InterPort& port;
  std::string peer;
  int peer_rank;
  int steps_left = 0;
  bool reduced = false, got_remote = false;
  std::int64_t local_boundary = 0, remote_boundary = 0, coupling_sum = 0;
  std::function<void()> on_all_done;
};

}  // namespace

int main() {
  const int kSteps = 50;
  std::printf("== coupled ocean/atmosphere across two MPPs ==\n");

  auto run_coupled = [&](bool use_mpi_connect) -> double {
    simnet::World world(33);
    world.create_network("wan", simnet::wan_t3());
    auto hosts_a = make_mpp(world, "ocean", 4);
    auto hosts_b = make_mpp(world, "atmos", 4);
    MpiWorld ocean("ocean", hosts_a);
    MpiWorld atmos("atmos", hosts_b);

    std::unique_ptr<rcds::RcServer> rc;
    std::unique_ptr<pvm::PvmDaemon> pvmd_a, pvmd_b;
    std::unique_ptr<InterPort> port_a, port_b;

    if (use_mpi_connect) {
      auto& rc_host = world.create_host("rc");
      world.attach(rc_host, *world.network("wan"));
      rc = std::make_unique<rcds::RcServer>(rc_host);
      port_a = std::make_unique<MpiConnectPort>(
          ocean.rank(0), "ocean", std::vector<simnet::Address>{rc->address()},
          [](Result<void>) {});
      port_b = std::make_unique<MpiConnectPort>(
          atmos.rank(0), "atmos", std::vector<simnet::Address>{rc->address()},
          [](Result<void>) {});
    } else {
      pvmd_a = std::make_unique<pvm::PvmDaemon>(*hosts_a[0]);
      pvmd_b = std::make_unique<pvm::PvmDaemon>(*hosts_b[0], pvmd_a->address());
      world.engine().run();
      port_a = std::make_unique<PvmpiPort>(ocean.rank(0), "ocean", *pvmd_a,
                                           [](Result<void>) {});
      port_b = std::make_unique<PvmpiPort>(atmos.rank(0), "atmos", *pvmd_b,
                                           [](Result<void>) {});
    }
    world.engine().run();

    CoupledModel ocean_model(ocean, *port_a, "atmos", 0);
    CoupledModel atmos_model(atmos, *port_b, "ocean", 0);

    SimTime start = world.now();
    int done = 0;
    ocean_model.run_steps(kSteps, [&] { ++done; });
    atmos_model.run_steps(kSteps, [&] { ++done; });
    world.engine().run();
    double seconds = to_seconds(world.now() - start);

    if (done != 2 || ocean_model.coupling_sum != atmos_model.coupling_sum) {
      // Symmetric workload: both sides must agree on what they exchanged.
      std::printf("  WARNING: coupling mismatch (done=%d, %lld vs %lld)\n", done,
                  static_cast<long long>(ocean_model.coupling_sum),
                  static_cast<long long>(atmos_model.coupling_sum));
    }
    return kSteps / seconds;
  };

  double pvmpi_rate = run_coupled(false);
  double connect_rate = run_coupled(true);
  std::printf("  PVMPI       : %7.1f coupled steps/s (via pvmd store-and-forward)\n",
              pvmpi_rate);
  std::printf("  MPI_Connect : %7.1f coupled steps/s (direct over SNIPE)\n", connect_rate);
  std::printf("  speedup     : %.2fx — \"a slightly higher point-to-point "
              "communication performance\" (§6.1)\n",
              connect_rate / pvmpi_rate);
  return connect_rate > pvmpi_rate ? 0 : 1;
}
