// Unit tests for snipe_util: byte encoding, URIs, RNG, results, strings.
#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/log.hpp"
#include "util/payload.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"
#include "util/uri.hpp"

namespace snipe {
namespace {

TEST(Bytes, RoundTripAllPrimitives) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i32(-42);
  w.i64(-9'000'000'000LL);
  w.f64(3.14159);
  w.str("hello snipe");
  w.blob({1, 2, 3});

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32().value(), -42);
  EXPECT_EQ(r.i64().value(), -9'000'000'000LL);
  EXPECT_DOUBLE_EQ(r.f64().value(), 3.14159);
  EXPECT_EQ(r.str().value(), "hello snipe");
  EXPECT_EQ(r.blob().value(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.done());
}

TEST(Bytes, NetworkByteOrderIsBigEndian) {
  ByteWriter w;
  w.u32(0x01020304);
  EXPECT_EQ(w.bytes(), (Bytes{1, 2, 3, 4}));
}

TEST(Bytes, ShortReadsFailWithCorrupt) {
  Bytes two{1, 2};
  ByteReader r(two);
  auto v = r.u32();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.code(), Errc::corrupt);
}

TEST(Bytes, TruncatedStringBodyFails) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow
  w.raw(to_bytes("short"));
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str().code(), Errc::corrupt);
}

TEST(Bytes, EmptyStringAndBlobRoundTrip) {
  ByteWriter w;
  w.str("");
  w.blob({});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str().value(), "");
  EXPECT_TRUE(r.blob().value().empty());
}

TEST(Hex, EncodeDecodeRoundTrip) {
  Bytes data{0x00, 0xff, 0x10, 0xab};
  EXPECT_EQ(hex_encode(data), "00ff10ab");
  EXPECT_EQ(hex_decode("00ff10ab").value(), data);
  EXPECT_EQ(hex_decode("00FF10AB").value(), data);
}

TEST(Hex, RejectsBadInput) {
  EXPECT_EQ(hex_decode("abc").code(), Errc::invalid_argument);
  EXPECT_EQ(hex_decode("zz").code(), Errc::invalid_argument);
}

TEST(Result, ValueAndError) {
  Result<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);
  EXPECT_EQ(good.value_or(0), 7);

  Result<int> bad(Errc::timeout, "too slow");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), Errc::timeout);
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_EQ(bad.error().to_string(), "timeout: too slow");
}

TEST(Result, VoidSpecialization) {
  Result<void> good = ok_result();
  EXPECT_TRUE(good.ok());
  Result<void> bad(Errc::not_found, "gone");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), Errc::not_found);
}

TEST(Uri, ParsesSnipeUrl) {
  auto uri = parse_uri("snipe://nodeA.utk.edu:7201/daemon").value();
  EXPECT_EQ(uri.scheme, "snipe");
  EXPECT_EQ(uri.host, "nodeA.utk.edu");
  EXPECT_EQ(uri.port, 7201);
  EXPECT_EQ(uri.path, "daemon");
  EXPECT_EQ(uri.to_string(), "snipe://nodeA.utk.edu:7201/daemon");
}

TEST(Uri, ParsesUrn) {
  auto uri = parse_uri("urn:snipe:proc:weather-17").value();
  EXPECT_TRUE(uri.is_urn());
  EXPECT_EQ(uri.path, "snipe:proc:weather-17");
  EXPECT_EQ(uri.to_string(), "urn:snipe:proc:weather-17");
}

TEST(Uri, ParsesLifn) {
  auto uri = parse_uri("lifn://utk.edu/ckpt/job42/3").value();
  EXPECT_TRUE(uri.is_lifn());
  EXPECT_EQ(uri.host, "utk.edu");
  EXPECT_EQ(uri.path, "ckpt/job42/3");
}

TEST(Uri, NoPortDefaultsToZero) {
  auto uri = parse_uri("http://www.netlib.org/SNIPE").value();
  EXPECT_EQ(uri.port, 0);
  EXPECT_EQ(uri.to_string(), "http://www.netlib.org/SNIPE");
}

TEST(Uri, SchemeIsCaseInsensitive) {
  EXPECT_EQ(parse_uri("SNIPE://a/b").value().scheme, "snipe");
}

TEST(Uri, RejectsMalformed) {
  EXPECT_FALSE(parse_uri("").ok());
  EXPECT_FALSE(parse_uri("nocolon").ok());
  EXPECT_FALSE(parse_uri(":leading").ok());
  EXPECT_FALSE(parse_uri("snipe:/missing-slash").ok());
  EXPECT_FALSE(parse_uri("snipe://").ok());
  EXPECT_FALSE(parse_uri("snipe://host:/x").ok());
  EXPECT_FALSE(parse_uri("snipe://host:abc/x").ok());
  EXPECT_FALSE(parse_uri("snipe://host:99999/x").ok());
  EXPECT_FALSE(parse_uri("urn:").ok());
  EXPECT_FALSE(parse_uri("9bad://x/y").ok());
}

TEST(Uri, Builders) {
  EXPECT_EQ(host_url("nodeA"), "snipe://nodeA:7201/daemon");
  EXPECT_EQ(process_urn("p1"), "urn:snipe:proc:p1");
  EXPECT_EQ(group_urn("g1"), "urn:snipe:group:g1");
  EXPECT_EQ(service_lifn("utk.edu", "svc"), "lifn://utk.edu/svc");
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    double r = rng.next_range(5.0, 6.0);
    EXPECT_GE(r, 5.0);
    EXPECT_LT(r, 6.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 100000; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, ForkIndependence) {
  Rng parent(9);
  Rng child = parent.fork();
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, TrimAndJoin) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(join({"a", "b"}, "::"), "a::b");
  EXPECT_TRUE(starts_with("snipe://x", "snipe://"));
  EXPECT_FALSE(starts_with("sn", "snipe"));
}

TEST(Log, SinkCapturesFilteredRecords) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  LogLevel old_level = set_log_level(LogLevel::info);
  LogSink old_sink = set_log_sink([&](LogLevel level, const std::string& component,
                                      const std::string& text) {
    captured.emplace_back(level, component + ": " + text);
  });

  Logger log("util_test");
  log.debug("below threshold, dropped");
  log.info("value=", 42);
  log.error("boom");

  set_log_sink(old_sink);
  set_log_level(old_level);

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::info);
  EXPECT_EQ(captured[0].second, "util_test: value=42");
  EXPECT_EQ(captured[1].first, LogLevel::error);
}

TEST(Log, ParseLevelNames) {
  EXPECT_EQ(parse_log_level("debug", LogLevel::warn), LogLevel::debug);
  EXPECT_EQ(parse_log_level("ERROR", LogLevel::warn), LogLevel::error);
  EXPECT_EQ(parse_log_level("off", LogLevel::warn), LogLevel::off);
  EXPECT_EQ(parse_log_level("nonsense", LogLevel::warn), LogLevel::warn);
  EXPECT_EQ(parse_log_level("", LogLevel::info), LogLevel::info);
}

TEST(Time, DurationsCompose) {
  EXPECT_EQ(duration::seconds(1), 1'000'000'000);
  EXPECT_EQ(duration::milliseconds(1500), duration::seconds(1) + duration::milliseconds(500));
  EXPECT_DOUBLE_EQ(to_seconds(duration::milliseconds(250)), 0.25);
  EXPECT_EQ(from_seconds(0.25), duration::milliseconds(250));
  EXPECT_EQ(format_time(duration::milliseconds(1500)), "1.500000s");
}

TEST(Payload, SliceSharesTheBufferWithoutCopying) {
  Bytes b(1000);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = static_cast<std::uint8_t>(i);
  Payload whole(std::move(b));
  ASSERT_EQ(whole.segment_count(), 1u);
  const std::uint8_t* base = whole.segment(0).data();

  Payload mid = whole.slice(100, 300);
  EXPECT_EQ(mid.size(), 300u);
  ASSERT_TRUE(mid.contiguous());
  // The slice points into the original buffer — no bytes moved.
  EXPECT_EQ(mid.data(), base + 100);
  EXPECT_EQ(mid[0], static_cast<std::uint8_t>(100));
  EXPECT_EQ(mid[299], static_cast<std::uint8_t>(399 & 0xFF));

  Payload empty = whole.slice(1000, 0);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.segment_count(), 0u);
}

TEST(Payload, AppendCoalescesAdjacentSlicesOfOneBuffer) {
  Bytes b(256);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = static_cast<std::uint8_t>(i);
  Payload whole(std::move(b));

  // Reassemble the message from its fragments, as a receiver would.
  Payload assembled;
  for (std::size_t off = 0; off < 256; off += 64) assembled.append(whole.slice(off, 64));

  // Adjacent slices of one buffer coalesce back into a single segment, so
  // flatten() on the delivery path is a no-op (no copy).
  EXPECT_EQ(assembled.size(), 256u);
  ASSERT_EQ(assembled.segment_count(), 1u);
  EXPECT_EQ(assembled.data(), whole.data());
  assembled.flatten();
  EXPECT_EQ(assembled.data(), whole.data());
}

TEST(Payload, FlattenCopiesOnlyWhenSegmentsCannotCoalesce) {
  Payload a(Bytes{1, 2, 3});
  Payload b(Bytes{4, 5, 6});
  Payload joined;
  joined.append(a);
  joined.append(b);
  EXPECT_EQ(joined.segment_count(), 2u);
  EXPECT_FALSE(joined.contiguous());

  joined.flatten();
  ASSERT_TRUE(joined.contiguous());
  EXPECT_EQ(joined.to_bytes(), (Bytes{1, 2, 3, 4, 5, 6}));
  // Flattening materialized a fresh buffer; the sources are untouched.
  EXPECT_NE(joined.data(), a.data());
  EXPECT_EQ(a.to_bytes(), (Bytes{1, 2, 3}));
}

TEST(Payload, CowXorClonesWhenSharedAndWritesInPlaceWhenUnique) {
  Payload original(Bytes{10, 20, 30, 40});
  Payload copy = original.slice(0, 4);  // shares the buffer
  EXPECT_EQ(copy.data(), original.data());

  // Shared buffer: corruption must clone, leaving the original pristine.
  copy.cow_xor(1, 0xFF);
  EXPECT_NE(copy.data(), original.data());
  EXPECT_EQ(copy[1], static_cast<std::uint8_t>(20 ^ 0xFF));
  EXPECT_EQ(original[1], 20);

  // `copy` now holds its buffer's only reference: a second corruption may
  // write in place (no further clone).
  const std::uint8_t* before = copy.data();
  copy.cow_xor(2, 0x0F);
  EXPECT_EQ(copy.data(), before);
  EXPECT_EQ(copy[2], static_cast<std::uint8_t>(30 ^ 0x0F));
}

TEST(Payload, WriterMatchesByteWriterByteForByte) {
  // The zero-copy wire codec must produce exactly the bytes the old
  // copying codec did — this is what keeps chaos trace digests stable.
  ByteWriter bw;
  bw.u8(7);
  bw.u16(0xBEEF);
  bw.u32(0xDEADBEEF);
  bw.u64(0x0123456789ABCDEFULL);
  bw.str("snipe");
  Bytes body{9, 8, 7, 6};
  bw.blob(body);

  PayloadWriter pw;
  pw.u8(7);
  pw.u16(0xBEEF);
  pw.u32(0xDEADBEEF);
  pw.u64(0x0123456789ABCDEFULL);
  pw.str("snipe");
  pw.blob(Payload(Bytes{9, 8, 7, 6}));  // spliced by reference, not copied

  Payload p = std::move(pw).take();
  EXPECT_EQ(p.to_bytes(), bw.bytes());
}

TEST(Payload, CursorRoundTripsAndSlicesBlobsZeroCopy) {
  Bytes big(512);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i * 3);
  Payload blob_src(std::move(big));
  const std::uint8_t* blob_base = blob_src.data();

  PayloadWriter pw;
  pw.u32(42);
  pw.str("hello");
  pw.blob(blob_src);
  pw.u16(0xCAFE);
  Payload wire = std::move(pw).take();

  PayloadCursor r(wire);
  ASSERT_TRUE(r.u32().ok());
  auto s = r.str();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value(), "hello");
  auto blob = r.blob();
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob.value().size(), 512u);
  // The blob read is a view into the spliced-in source buffer.
  ASSERT_TRUE(blob.value().contiguous());
  EXPECT_EQ(blob.value().data(), blob_base);
  auto tail = r.u16();
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail.value(), 0xCAFE);
  EXPECT_EQ(r.remaining(), 0u);

  // Short reads fail cleanly instead of running off the end.
  EXPECT_FALSE(r.u8().ok());
}

TEST(Payload, CursorReadsFieldsStraddlingSegmentBoundaries) {
  // Build a payload whose u32 spans two segments (2 bytes in each).
  Payload left(Bytes{0xAA, 0xBB, 0x01, 0x02});
  Payload right(Bytes{0x03, 0x04, 0xCC});
  Payload joined;
  joined.append(left);
  joined.append(right);
  ASSERT_EQ(joined.segment_count(), 2u);

  PayloadCursor r(joined);
  ASSERT_TRUE(r.u16().ok());
  auto v = r.u32();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 0x01020304u);
  auto last = r.u8();
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last.value(), 0xCC);
}

}  // namespace
}  // namespace snipe
