// Tests for the SNIPE communications module: SRUDP reliability/ordering/
// fragmentation/failover, the TCP-like stream, wire codecs, multipath
// policy, and the experimental Ethernet multicast.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "simnet/fault.hpp"
#include "transport/ethmcast.hpp"
#include "transport/message.hpp"
#include "transport/multipath.hpp"
#include "transport/srudp.hpp"
#include "transport/stream.hpp"
#include "transport/wire.hpp"

namespace snipe::transport {
namespace {

using simnet::Address;
using simnet::World;

Bytes pattern_bytes(std::size_t n, std::uint32_t seed = 1) {
  Bytes b(n);
  std::uint32_t x = seed;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    b[i] = static_cast<std::uint8_t>(x >> 24);
  }
  return b;
}

// ---- wire codecs ----

TEST(Wire, DataRoundTrip) {
  DataPacket p{77, 3, 9, 12345, /*flow=*/0xfeedbeefu, pattern_bytes(100)};
  auto wire = encode_data(4242, p);
  auto head = decode_head(wire).value();
  EXPECT_EQ(head.type, PacketType::data);
  EXPECT_EQ(head.src_port, 4242);
  auto q = decode_data(wire).value();
  EXPECT_EQ(q.msg_id, 77u);
  EXPECT_EQ(q.frag_index, 3u);
  EXPECT_EQ(q.frag_count, 9u);
  EXPECT_EQ(q.total_len, 12345u);
  EXPECT_EQ(q.flow, 0xfeedbeefu);
  EXPECT_EQ(q.payload, p.payload);
}

TEST(Wire, DataChecksumRoundTripAndDetectsCorruption) {
  DataPacket p{77, 3, 9, 12345, 0, pattern_bytes(100)};
  auto wire = encode_data(4242, p, /*with_checksum=*/true);
  EXPECT_EQ(decode_head(wire).value().type, PacketType::data_ck);
  auto q = decode_data(wire).value();
  EXPECT_TRUE(q.has_checksum);
  EXPECT_TRUE(q.checksum_ok);
  EXPECT_EQ(q.payload, p.payload);

  // Flip one payload byte: the packet still decodes (the caller decides
  // whether to drop), but the mismatch is flagged.
  Bytes mangled = wire.to_bytes();
  mangled.back() ^= 0x01;
  auto bad = decode_data(Payload(std::move(mangled))).value();
  EXPECT_TRUE(bad.has_checksum);
  EXPECT_FALSE(bad.checksum_ok);
}

TEST(Wire, PlainDataCarriesNoChecksum) {
  DataPacket p{1, 0, 1, 4, 0, pattern_bytes(4)};
  auto q = decode_data(encode_data(1, p)).value();
  EXPECT_FALSE(q.has_checksum);
  EXPECT_TRUE(q.checksum_ok);  // vacuously: nothing to verify
}

TEST(Wire, DataRejectsBadIndices) {
  DataPacket p{1, 5, 5, 10, 0, {}};  // index == count
  EXPECT_FALSE(decode_data(encode_data(1, p)).ok());
}

TEST(Wire, StatusRoundTripAndBitmapCheck) {
  StatusPacket p{9, 10, make_bitmap(10)};
  bitmap_set(p.bitmap, 0);
  bitmap_set(p.bitmap, 9);
  auto q = decode_status(encode_status(7, p)).value();
  EXPECT_TRUE(bitmap_get(q.bitmap, 0));
  EXPECT_FALSE(bitmap_get(q.bitmap, 5));
  EXPECT_TRUE(bitmap_get(q.bitmap, 9));

  StatusPacket bad{9, 100, make_bitmap(10)};  // bitmap too small for count
  EXPECT_FALSE(decode_status(encode_status(7, bad)).ok());
}

TEST(Wire, StreamRoundTrip) {
  StreamPacket p{5, 1000, 2000, 65536, pattern_bytes(64)};
  auto q = decode_stream(encode_stream(PacketType::seg, 9, p)).value();
  EXPECT_EQ(q.conn_id, 5u);
  EXPECT_EQ(q.seq, 1000u);
  EXPECT_EQ(q.ack, 2000u);
  EXPECT_EQ(q.window, 65536u);
  EXPECT_EQ(q.payload, p.payload);
}

TEST(Wire, McastRoundTrip) {
  McastDataPacket p{"urn:snipe:group:g", 3,    1, 4, 999, /*flow=*/0xabcdef12u,
                    /*born=*/123456789,  pattern_bytes(32)};
  auto q = decode_mcast_data(encode_mcast_data(1, p)).value();
  EXPECT_EQ(q.group, p.group);
  EXPECT_EQ(q.payload, p.payload);
  EXPECT_EQ(q.flow, p.flow);
  EXPECT_EQ(q.born, p.born);

  McastNackPacket n{"urn:snipe:group:g", 3, {0, 2, 5}};
  auto m = decode_mcast_nack(encode_mcast_nack(1, n)).value();
  EXPECT_EQ(m.missing, n.missing);
}

TEST(Wire, HeaderSizeConstantsMatchReality) {
  DataPacket p{1, 0, 1, 0, 0, {}};
  EXPECT_EQ(encode_data(1, p).size(), kDataHeaderBytes);
  StreamPacket s{1, 0, 0, 0, {}};
  EXPECT_EQ(encode_stream(PacketType::seg, 1, s).size(), kStreamHeaderBytes);
}

TEST(Wire, RejectsAbsurdFragmentCounts) {
  // Hostile-input bound (kMaxWireFragments): a forged count must be
  // rejected before any receiver sizes buffers from it.
  DataPacket d{1, 0, kMaxWireFragments + 1, 10, 0, pattern_bytes(4)};
  EXPECT_FALSE(decode_data(encode_data(1, d)).ok());

  StatusPacket s{1, kMaxWireFragments + 1, make_bitmap(8)};
  EXPECT_FALSE(decode_status(encode_status(1, s)).ok());

  McastDataPacket m{"g", 1, 0, kMaxWireFragments + 1, 10, 0, 0, pattern_bytes(4)};
  EXPECT_FALSE(decode_mcast_data(encode_mcast_data(1, m)).ok());

  // A multi-fragment message claiming zero total length is equally bogus.
  DataPacket z{1, 0, 3, 0, 0, pattern_bytes(4)};
  EXPECT_FALSE(decode_data(encode_data(1, z)).ok());

  // NACK with a forged element count (hand-built: the encoder cannot
  // produce one without allocating the giant vector first).
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(PacketType::mnack));
  w.u16(1);
  w.str("g");
  w.u64(3);
  w.u32(kMaxWireFragments + 1);
  EXPECT_FALSE(decode_mcast_nack(std::move(w).take()).ok());
}

TEST(Wire, BitmapHelpers) {
  Bytes bm = make_bitmap(17);
  EXPECT_EQ(bm.size(), 3u);
  for (std::uint32_t i = 0; i < 17; ++i) EXPECT_FALSE(bitmap_get(bm, i));
  bitmap_set(bm, 16);
  EXPECT_TRUE(bitmap_get(bm, 16));
  EXPECT_FALSE(bitmap_get(bm, 100));  // out of range reads as unset
}

TEST(Message, TaggedRoundTrip) {
  TaggedMessage m{42, pattern_bytes(10)};
  auto d = TaggedMessage::decode(m.encode()).value();
  EXPECT_EQ(d.tag, 42u);
  EXPECT_EQ(d.body, m.body);
  EXPECT_FALSE(TaggedMessage::decode(Bytes{1}).ok());
}

// ---- SRUDP ----

struct SrudpPair {
  explicit SrudpPair(std::uint64_t seed = 1, simnet::MediaModel media = simnet::ethernet100(),
                     SrudpConfig cfg = {})
      : world(seed) {
    world.create_network("net", media);
    auto& ha = world.create_host("a");
    auto& hb = world.create_host("b");
    world.attach(ha, *world.network("net"));
    world.attach(hb, *world.network("net"));
    a = std::make_unique<SrudpEndpoint>(ha, 7001, cfg);
    b = std::make_unique<SrudpEndpoint>(hb, 7002, cfg);
    b->set_handler([this](const Address& src, Payload msg) {
      received.emplace_back(src, msg.to_bytes());
    });
  }
  World world;
  std::unique_ptr<SrudpEndpoint> a, b;
  std::vector<std::pair<Address, Bytes>> received;
};

TEST(Srudp, SmallMessageDelivered) {
  SrudpPair p;
  p.a->send(p.b->address(), to_bytes("hello"));
  p.world.engine().run();
  ASSERT_EQ(p.received.size(), 1u);
  EXPECT_EQ(to_string(p.received[0].second), "hello");
  EXPECT_EQ(p.received[0].first, p.a->address());
  EXPECT_EQ(p.a->pending(), 0u);
  EXPECT_EQ(p.a->stats().fragments_retransmitted, 0u);
}

TEST(Srudp, EmptyMessageDelivered) {
  SrudpPair p;
  p.a->send(p.b->address(), Bytes{});
  p.world.engine().run();
  ASSERT_EQ(p.received.size(), 1u);
  EXPECT_TRUE(p.received[0].second.empty());
}

TEST(Srudp, LargeMessageFragmentsAndReassembles) {
  SrudpPair p;
  Bytes big = pattern_bytes(1 << 20);  // 1 MiB over 1500-MTU Ethernet
  p.a->send(p.b->address(), big);
  p.world.engine().run();
  ASSERT_EQ(p.received.size(), 1u);
  EXPECT_EQ(p.received[0].second, big);
  // ~1 MiB / ~1473 B per fragment.
  EXPECT_GT(p.a->stats().fragments_sent, 700u);
  EXPECT_EQ(p.a->stats().messages_delivered, 0u);  // a received nothing
  EXPECT_EQ(p.b->stats().messages_delivered, 1u);
}

TEST(Srudp, ManyMessagesDeliveredInOrder) {
  SrudpPair p;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    ByteWriter w;
    w.i32(i);
    p.a->send(p.b->address(), std::move(w).take());
  }
  p.world.engine().run();
  ASSERT_EQ(p.received.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ByteReader r(p.received[i].second);
    EXPECT_EQ(r.i32().value(), i);
  }
}

TEST(Srudp, SurvivesHeavyLoss) {
  SrudpPair p(99);
  p.world.network("net")->set_extra_loss(0.20);
  Bytes big = pattern_bytes(200'000);
  p.a->send(p.b->address(), big);
  for (int i = 0; i < 30; ++i) {
    ByteWriter w;
    w.i32(i);
    p.a->send(p.b->address(), std::move(w).take());
  }
  p.world.engine().run();
  ASSERT_EQ(p.received.size(), 31u);
  EXPECT_EQ(p.received[0].second, big);
  EXPECT_GT(p.a->stats().fragments_retransmitted, 0u);
  EXPECT_EQ(p.a->stats().messages_expired, 0u);
  EXPECT_EQ(p.b->stats().messages_skipped, 0u);
}

TEST(Srudp, ChecksumRejectsCorruptFragmentsYetDeliveryConverges) {
  SrudpConfig cfg;
  cfg.checksum = true;
  SrudpPair p(1234, simnet::ethernet100(), cfg);
  simnet::FaultProfile prof;
  prof.corrupt = 0.05;
  prof.corrupt_max_bytes = 8;
  simnet::FaultPlan plan(p.world, 4321);
  plan.inject("net", prof);

  Bytes big = pattern_bytes(400'000);
  p.a->send(p.b->address(), big);
  p.world.engine().run();

  // Corrupt fragments were caught and dropped, the sender's RTO resent
  // them, and the message still arrived byte-identical.
  ASSERT_EQ(p.received.size(), 1u);
  EXPECT_EQ(p.received[0].second, big);
  EXPECT_GT(p.b->stats().checksum_rejects.v, 0u);
  EXPECT_GT(p.a->stats().fragments_retransmitted.v, 0u);
  EXPECT_EQ(p.a->stats().messages_expired.v, 0u);
}

TEST(Srudp, ChecksummingReceiverAcceptsPlainData) {
  // One side upgraded, the other not: a checksumming receiver must still
  // accept legacy DATA fragments (the feature is per-sender opt-in).
  World world(77);
  world.create_network("net", simnet::ethernet100());
  auto& ha = world.create_host("a");
  auto& hb = world.create_host("b");
  world.attach(ha, *world.network("net"));
  world.attach(hb, *world.network("net"));
  SrudpConfig plain;
  SrudpConfig checked;
  checked.checksum = true;
  SrudpEndpoint a(ha, 7001, plain);
  SrudpEndpoint b(hb, 7002, checked);
  std::vector<Bytes> got;
  b.set_handler([&](const Address&, Payload msg) { got.push_back(msg.to_bytes()); });

  Bytes msg = pattern_bytes(50'000);
  a.send(b.address(), msg);
  world.engine().run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], msg);
  EXPECT_EQ(b.stats().checksum_rejects.v, 0u);
}

TEST(Srudp, ChecksumIsOffByDefault) {
  EXPECT_FALSE(SrudpConfig{}.checksum);
  SrudpPair p;
  p.a->send(p.b->address(), pattern_bytes(10'000));
  p.world.engine().run();
  ASSERT_EQ(p.received.size(), 1u);
  EXPECT_EQ(p.b->stats().checksum_rejects.v, 0u);
}

TEST(Srudp, ExactlyOnceUnderLossAndDuplicates) {
  SrudpPair p(7);
  p.world.network("net")->set_extra_loss(0.3);
  const int n = 50;
  for (int i = 0; i < n; ++i) p.a->send(p.b->address(), pattern_bytes(5000, i + 1));
  p.world.engine().run();
  ASSERT_EQ(p.received.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(p.received[i].second, pattern_bytes(5000, i + 1));
}

TEST(Srudp, BuffersWhileReceiverTemporarilyDown) {
  // §6: "migrating or temporarily unavailable tasks did not result in lost
  // messages".
  SrudpPair p;
  p.world.host("b")->set_up(false);
  p.a->send(p.b->address(), to_bytes("patience"));
  p.world.engine().run_for(duration::seconds(2));
  EXPECT_TRUE(p.received.empty());
  EXPECT_EQ(p.a->pending(), 1u);
  p.world.host("b")->set_up(true);
  p.world.engine().run();
  ASSERT_EQ(p.received.size(), 1u);
  EXPECT_EQ(to_string(p.received[0].second), "patience");
  EXPECT_EQ(p.a->pending(), 0u);
}

TEST(Srudp, ExpiresAfterTtlWhenReceiverGone) {
  SrudpConfig cfg;
  cfg.msg_ttl = duration::seconds(3);
  SrudpPair p(1, simnet::ethernet100(), cfg);
  p.world.host("b")->set_up(false);
  p.a->send(p.b->address(), to_bytes("doomed"));
  p.world.engine().run();
  EXPECT_EQ(p.a->pending(), 0u);
  EXPECT_EQ(p.a->stats().messages_expired, 1u);
  EXPECT_TRUE(p.received.empty());
}

TEST(Srudp, HeadOfLineGapSkippedAfterSenderGivesUp) {
  SrudpConfig cfg;
  cfg.msg_ttl = duration::seconds(2);
  cfg.hol_skip = duration::seconds(1);
  SrudpPair p(1, simnet::ethernet100(), cfg);
  // Message 1 dies (receiver down past the sender's TTL; the expiry fires
  // on the first retransmission timeout after the deadline)...
  p.world.host("b")->set_up(false);
  p.a->send(p.b->address(), to_bytes("first"));
  p.world.engine().run_for(duration::seconds(5));
  EXPECT_EQ(p.a->stats().messages_expired, 1u);
  // ...then message 2 arrives and must not be blocked forever.
  p.world.host("b")->set_up(true);
  p.a->send(p.b->address(), to_bytes("second"));
  p.world.engine().run();
  ASSERT_EQ(p.received.size(), 1u);
  EXPECT_EQ(to_string(p.received[0].second), "second");
  EXPECT_EQ(p.b->stats().messages_skipped, 1u);
}

TEST(Srudp, BidirectionalEcho) {
  SrudpPair p;
  p.b->set_handler([&](const Address& src, Payload msg) {
    p.b->send(src, msg);  // echo
  });
  std::vector<Bytes> echoes;
  p.a->set_handler([&](const Address&, Payload msg) { echoes.push_back(msg.to_bytes()); });
  for (int i = 0; i < 10; ++i) p.a->send(p.b->address(), pattern_bytes(3000, i));
  p.world.engine().run();
  ASSERT_EQ(echoes.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(echoes[i], pattern_bytes(3000, i));
}

TEST(Srudp, FailsOverToSecondNetworkWhenLinkDies) {
  // Dual-homed hosts: ATM is fastest and chosen first; killing it mid-
  // transfer must switch the route to Ethernet without losing the message.
  World world(5);
  world.create_network("atm", simnet::atm155());
  world.create_network("eth", simnet::ethernet100());
  auto& ha = world.create_host("a");
  auto& hb = world.create_host("b");
  for (auto* h : {&ha, &hb}) {
    world.attach(*h, *world.network("atm"));
    world.attach(*h, *world.network("eth"));
  }
  SrudpEndpoint a(ha, 7001), b(hb, 7002);
  std::vector<Bytes> got;
  b.set_handler([&](const Address&, Payload msg) { got.push_back(msg.to_bytes()); });

  Bytes big = pattern_bytes(2 << 20);
  a.send(b.address(), big);
  // Let a few fragments flow on ATM, then silently kill the *receiver's*
  // ATM interface: the sender cannot see that, keeps transmitting into a
  // black hole, and must discover the failure through timeouts — the case
  // MultipathPolicy exists for.  (A network the sender can see down is
  // routed around at send time without the policy.)
  world.engine().run_for(duration::milliseconds(5));
  hb.nic_on("atm")->set_up(false);
  world.engine().run();

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], big);
  EXPECT_GE(a.stats().route_switches, 1);
  EXPECT_GT(world.network("eth")->stats().packets_delivered, 0u);
}

TEST(Srudp, MtuRespectedPerNetwork) {
  // Fragments must fit the *smallest* attached MTU so failover never
  // produces an oversize datagram.
  World world(5);
  world.create_network("atm", simnet::atm155());   // MTU 9180
  world.create_network("eth", simnet::ethernet100());  // MTU 1500
  auto& ha = world.create_host("a");
  auto& hb = world.create_host("b");
  for (auto* h : {&ha, &hb}) {
    world.attach(*h, *world.network("atm"));
    world.attach(*h, *world.network("eth"));
  }
  SrudpEndpoint a(ha, 7001), b(hb, 7002);
  int count = 0;
  b.set_handler([&](const Address&, Payload) { ++count; });
  a.send(b.address(), pattern_bytes(100'000));
  world.engine().run();
  EXPECT_EQ(count, 1);
  // ~100000/1473 fragments — i.e. sized for Ethernet, not ATM.
  EXPECT_GT(a.stats().fragments_sent, 60u);
}

TEST(Srudp, ThroughputApproachesMediaLimitOnEthernet) {
  SrudpPair p;
  Bytes big = pattern_bytes(4 << 20);
  SimTime start = p.world.now();
  p.a->send(p.b->address(), big);
  p.world.engine().run();
  ASSERT_EQ(p.received.size(), 1u);
  double secs = to_seconds(p.world.now() - start);
  double mbps = static_cast<double>(big.size()) / secs / 1e6;
  // 100 Mb/s Ethernet tops out at 12.5 MB/s; headers cost a few percent.
  EXPECT_GT(mbps, 10.0);
  EXPECT_LT(mbps, 12.5);
}

TEST(Srudp, InterleavedPeersDoNotInterfere) {
  World world(3);
  world.create_network("net", simnet::ethernet100());
  auto& ha = world.create_host("a");
  auto& hb = world.create_host("b");
  auto& hc = world.create_host("c");
  for (auto* h : {&ha, &hb, &hc}) world.attach(*h, *world.network("net"));
  SrudpEndpoint a(ha, 7001), b(hb, 7002), c(hc, 7003);
  std::vector<Bytes> from_a_at_b, from_c_at_b;
  b.set_handler([&](const Address& src, Payload msg) {
    (src.host == "a" ? from_a_at_b : from_c_at_b).push_back(msg.to_bytes());
  });
  for (int i = 0; i < 20; ++i) {
    a.send(b.address(), pattern_bytes(2000, 100 + i));
    c.send(b.address(), pattern_bytes(2000, 200 + i));
  }
  world.engine().run();
  ASSERT_EQ(from_a_at_b.size(), 20u);
  ASSERT_EQ(from_c_at_b.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(from_a_at_b[i], pattern_bytes(2000, 100 + i));
    EXPECT_EQ(from_c_at_b[i], pattern_bytes(2000, 200 + i));
  }
}

TEST(Srudp, DeterministicUnderSeed) {
  auto run_once = [] {
    SrudpConfig cfg;
    SrudpPair p(42, simnet::internet_lossy(), cfg);
    for (int i = 0; i < 20; ++i) p.a->send(p.b->address(), pattern_bytes(10'000, i));
    p.world.engine().run();
    return std::make_tuple(p.world.now(), p.a->stats().fragments_retransmitted,
                           p.received.size());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Srudp, SendReturnsIdEvenWhenMessageExpiresImmediately) {
  // Regression: send() used to read out.queue.back().msg_id *after* pump(),
  // but pump() expires TTL-dead messages — with msg_ttl == 0 the queue is
  // already empty again and back() was a dangling read.
  SrudpConfig cfg;
  cfg.msg_ttl = 0;
  SrudpPair p(1, simnet::ethernet100(), cfg);
  EXPECT_EQ(p.a->send(p.b->address(), pattern_bytes(100)), 1u);
  EXPECT_EQ(p.a->send(p.b->address(), pattern_bytes(100)), 2u);
  EXPECT_EQ(p.a->stats().messages_expired.v, 2u);
  EXPECT_EQ(p.a->pending(), 0u);
}

TEST(Srudp, TinyMtuInterfaceDoesNotWreckFragmentation) {
  // Regression: an attached network with MTU <= kDataHeaderBytes wrapped
  // the unsigned fragment budget to ~2^64, which in turn overflowed the
  // frag_count computation to zero — the message was silently unsendable
  // even though a perfectly good Ethernet was also attached.
  World world(5);
  world.create_network("fat", simnet::ethernet100());
  auto tiny = simnet::ethernet10();
  tiny.mtu = kDataHeaderBytes - 1;
  world.create_network("tiny", tiny);
  auto& ha = world.create_host("a");
  auto& hb = world.create_host("b");
  for (auto* h : {&ha, &hb}) {
    world.attach(*h, *world.network("fat"));
    world.attach(*h, *world.network("tiny"));
  }
  SrudpEndpoint a(ha, 7001), b(hb, 7002);
  std::vector<Bytes> received;
  b.set_handler([&](const Address&, Payload m) { received.push_back(m.to_bytes()); });
  Bytes msg = pattern_bytes(1000);
  a.send(b.address(), msg);
  world.engine().run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], msg);
  // The clamped budget still fragments finely enough for every interface.
  EXPECT_GE(a.stats().fragments_sent.v, 4u);
}

// ---- MultipathPolicy ----

TEST(Multipath, SwitchesAfterThresholdAndResetsOnSuccess) {
  World world(1);
  world.create_network("atm", simnet::atm155());
  world.create_network("eth", simnet::ethernet100());
  auto& h = world.create_host("h");
  world.attach(h, *world.network("atm"));
  world.attach(h, *world.network("eth"));

  MultipathPolicy policy(2);
  EXPECT_EQ(policy.preferred(), "");
  EXPECT_FALSE(policy.on_timeout(h));  // 1st timeout: below threshold
  policy.on_success();                 // resets the counter
  EXPECT_FALSE(policy.on_timeout(h));
  EXPECT_TRUE(policy.on_timeout(h));  // 2nd consecutive: switch
  // Fastest is atm; the switch must move us off it.
  EXPECT_EQ(policy.preferred(), "eth");
  EXPECT_EQ(policy.switches(), 1);
  // Next failure pair rotates again (wraps to atm).
  EXPECT_FALSE(policy.on_timeout(h));
  EXPECT_TRUE(policy.on_timeout(h));
  EXPECT_EQ(policy.preferred(), "atm");
}

TEST(Multipath, ProbesDefaultRouteAfterQuietPeriod) {
  // A failover route must not be pinned forever: once the detour has been
  // timeout-free for the quiet period, on_success drops the preference so
  // the next send re-probes the default (fastest) route.
  World world(1);
  world.create_network("atm", simnet::atm155());
  world.create_network("eth", simnet::ethernet100());
  auto& h = world.create_host("h");
  world.attach(h, *world.network("atm"));
  world.attach(h, *world.network("eth"));

  MultipathPolicy policy(1, duration::seconds(1));
  EXPECT_TRUE(policy.on_timeout(h));  // threshold 1: switch immediately
  EXPECT_EQ(policy.preferred(), "eth");
  const SimTime switched_at = world.engine().now();
  // Successes inside the quiet window keep the detour.
  EXPECT_FALSE(policy.on_success(switched_at + duration::milliseconds(500)));
  EXPECT_EQ(policy.preferred(), "eth");
  // After a full timeout-free quiet period the preference resets.
  EXPECT_TRUE(policy.on_success(switched_at + duration::seconds(2)));
  EXPECT_EQ(policy.preferred(), "");
  EXPECT_EQ(policy.probes(), 1);
  // The legacy no-argument form only clears the failure streak.
  EXPECT_TRUE(policy.on_timeout(h));
  EXPECT_EQ(policy.preferred(), "eth");
  policy.on_success();
  EXPECT_EQ(policy.preferred(), "eth");
}

TEST(Multipath, SingleNetworkHasNowhereToGo) {
  World world(1);
  world.create_network("eth", simnet::ethernet100());
  auto& h = world.create_host("h");
  world.attach(h, *world.network("eth"));
  MultipathPolicy policy(1);
  EXPECT_FALSE(policy.on_timeout(h));
  EXPECT_EQ(policy.switches(), 0);
}

// ---- Stream (TCP-like) ----

struct StreamPair {
  explicit StreamPair(std::uint64_t seed = 1, simnet::MediaModel media = simnet::ethernet100())
      : world(seed) {
    world.create_network("net", media);
    auto& ha = world.create_host("a");
    auto& hb = world.create_host("b");
    world.attach(ha, *world.network("net"));
    world.attach(hb, *world.network("net"));
    client_ep = std::make_unique<StreamEndpoint>(ha, 8001);
    server_ep = std::make_unique<StreamEndpoint>(hb, 8002);
    server_ep->listen([this](std::shared_ptr<StreamConnection> conn) {
      server_conn = conn;
      conn->set_message_handler([this](Payload msg) { received.push_back(msg.to_bytes()); });
    });
  }
  World world;
  std::unique_ptr<StreamEndpoint> client_ep, server_ep;
  std::shared_ptr<StreamConnection> server_conn;
  std::vector<Bytes> received;
};

TEST(Stream, HandshakeEstablishesBothSides) {
  StreamPair p;
  auto conn = p.client_ep->connect(p.server_ep->address());
  bool connected = false;
  conn->set_connect_handler([&](Result<void> r) { connected = r.ok(); });
  p.world.engine().run();
  EXPECT_TRUE(connected);
  EXPECT_TRUE(conn->established());
  ASSERT_NE(p.server_conn, nullptr);
}

TEST(Stream, MessagesDeliveredInOrder) {
  StreamPair p;
  auto conn = p.client_ep->connect(p.server_ep->address());
  for (int i = 0; i < 50; ++i) conn->send_message(pattern_bytes(500, i));
  p.world.engine().run();
  ASSERT_EQ(p.received.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(p.received[i], pattern_bytes(500, i));
}

TEST(Stream, LargeTransferIntact) {
  StreamPair p;
  auto conn = p.client_ep->connect(p.server_ep->address());
  Bytes big = pattern_bytes(2 << 20);
  conn->send_message(big);
  p.world.engine().run();
  ASSERT_EQ(p.received.size(), 1u);
  EXPECT_EQ(p.received[0], big);
  EXPECT_EQ(conn->unacked_bytes(), 0u);
}

TEST(Stream, ServerCanSendBack) {
  StreamPair p;
  auto conn = p.client_ep->connect(p.server_ep->address());
  std::vector<Bytes> client_got;
  conn->set_message_handler([&](Payload m) { client_got.push_back(m.to_bytes()); });
  p.world.engine().run();
  ASSERT_NE(p.server_conn, nullptr);
  p.server_conn->send_message(to_bytes("pong"));
  p.world.engine().run();
  ASSERT_EQ(client_got.size(), 1u);
  EXPECT_EQ(to_string(client_got[0]), "pong");
}

TEST(Stream, RecoversFromLoss) {
  StreamPair p(17, simnet::internet_lossy());
  p.world.network("net")->set_extra_loss(0.04);  // total 5%
  auto conn = p.client_ep->connect(p.server_ep->address());
  Bytes big = pattern_bytes(300'000);
  conn->send_message(big);
  p.world.engine().run();
  ASSERT_EQ(p.received.size(), 1u);
  EXPECT_EQ(p.received[0], big);
  EXPECT_GT(conn->stats().segments_retransmitted, 0u);
}

TEST(Stream, SynRetriesUntilServerExists) {
  // SYN loss: the connect must retry and eventually succeed.
  StreamPair p(3);
  p.world.network("net")->set_extra_loss(0.5);
  auto conn = p.client_ep->connect(p.server_ep->address());
  conn->send_message(to_bytes("eventually"));
  p.world.engine().run_for(duration::seconds(60));
  ASSERT_EQ(p.received.size(), 1u);
}

TEST(Stream, ThroughputReasonableOnEthernet) {
  StreamPair p;
  auto conn = p.client_ep->connect(p.server_ep->address());
  Bytes big = pattern_bytes(4 << 20);
  SimTime start = p.world.now();
  conn->send_message(big);
  p.world.engine().run();
  ASSERT_EQ(p.received.size(), 1u);
  double secs = to_seconds(p.world.now() - start);
  double mbps = static_cast<double>(big.size()) / secs / 1e6;
  EXPECT_GT(mbps, 8.0);
  EXPECT_LT(mbps, 12.5);
}

// ---- Ethernet multicast ----

TEST(EthMcast, AllMembersReceive) {
  World world(4);
  world.create_network("seg", simnet::ethernet100());
  std::vector<std::unique_ptr<EthMcastEndpoint>> members;
  std::map<std::string, std::vector<Bytes>> got;
  for (const char* name : {"a", "b", "c", "d", "e"}) {
    auto& h = world.create_host(name);
    world.attach(h, *world.network("seg"));
    auto ep = std::make_unique<EthMcastEndpoint>(h, "seg", "grp", 9000);
    ep->set_handler([&got, name](const Address&, Payload m) { got[name].push_back(m.to_bytes()); });
    members.push_back(std::move(ep));
  }
  Bytes msg = pattern_bytes(50'000);
  members[0]->send(msg);
  world.engine().run();
  EXPECT_TRUE(got["a"].empty());  // sender does not receive its own
  for (const char* name : {"b", "c", "d", "e"}) {
    ASSERT_EQ(got[name].size(), 1u) << name;
    EXPECT_EQ(got[name][0], msg) << name;
  }
  // One broadcast serves all four receivers: fragment count is independent
  // of group size (modulo repairs).
  EXPECT_LT(members[0]->stats().fragments_broadcast, 50'000u / 1400 + 10);
}

TEST(EthMcast, NackRepairsLoss) {
  World world(11);
  world.create_network("seg", simnet::ethernet100());
  world.network("seg")->set_extra_loss(0.1);
  std::vector<std::unique_ptr<EthMcastEndpoint>> members;
  int delivered = 0;
  for (const char* name : {"a", "b", "c"}) {
    auto& h = world.create_host(name);
    world.attach(h, *world.network("seg"));
    auto ep = std::make_unique<EthMcastEndpoint>(h, "seg", "grp", 9000);
    ep->set_handler([&](const Address&, Payload) { ++delivered; });
    members.push_back(std::move(ep));
  }
  members[0]->send(pattern_bytes(100'000));
  world.engine().run();
  EXPECT_EQ(delivered, 2);
  EXPECT_GT(members[0]->stats().repairs_sent, 0u);
  std::uint64_t nacks = members[1]->stats().nacks_sent + members[2]->stats().nacks_sent;
  EXPECT_GT(nacks, 0u);
}

TEST(EthMcast, RejectsFragmentsDisagreeingWithFirstSeenMetadata) {
  // Regression: a fragment whose frag_count/total_len disagreed with the
  // first-seen fragment of the same message indexed the reassembly buffers
  // with its *own* frag_count — an out-of-bounds write under ASan.  Now it
  // is dropped and the genuine fragments still complete the message.
  World world(3);
  world.create_network("seg", simnet::ethernet100());
  auto& evil = world.create_host("evil");
  auto& good = world.create_host("good");
  world.attach(evil, *world.network("seg"));
  world.attach(good, *world.network("seg"));
  EthMcastEndpoint receiver(good, "seg", "grp", 9000);
  std::vector<Bytes> got;
  receiver.set_handler([&](const Address&, Payload m) { got.push_back(m.to_bytes()); });

  auto raw = [&](const McastDataPacket& p) {
    simnet::SendOptions opts;
    opts.src_port = 9000;
    evil.send({"good", 9000}, encode_mcast_data(9000, p), opts).value();
  };
  raw({"grp", /*msg_id=*/1, /*frag_index=*/0, /*frag_count=*/2, /*total_len=*/6,
       /*flow=*/0, /*born=*/0, to_bytes("abc")});
  // Same message, wildly different metadata: frags/have only hold 2 slots.
  raw({"grp", 1, 7, 8, 6, 0, 0, to_bytes("x")});
  raw({"grp", 1, 1, 2, 6, 0, 0, to_bytes("def")});
  world.engine().run();

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(to_string(got[0]), "abcdef");
}

}  // namespace
}  // namespace snipe::transport
