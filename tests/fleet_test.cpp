// Fleet telemetry plane tests: sketch merge exactness, the beacon wire
// codec, delta/resync semantics, and an 8-host simulated world whose
// collector must report exact merged per-transport delivery percentiles
// and flag a partitioned host stale within 3 missed beacons (the ISSUE
// acceptance scenario).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/console.hpp"
#include "daemon/telemetry.hpp"
#include "obs/fleet.hpp"
#include "simnet/world.hpp"
#include "transport/rpc.hpp"

namespace snipe {
namespace {

using simnet::World;

// ---- sketch merge exactness ------------------------------------------------

TEST(FleetSketch, MergedQuantilesAreExactWrtUnion) {
  // 8 per-host registries, each with a different sample mix; one union
  // histogram fed every sample.  The fleet-merged sketch must report the
  // union's quantiles *exactly* — same buckets, same interpolation.
  constexpr int kHosts = 8;
  obs::MetricsRegistry union_registry;
  auto& union_hist = union_registry.histogram("srudp.delivery_ms");

  obs::FleetStore store;
  std::vector<std::unique_ptr<obs::MetricsRegistry>> registries;
  std::vector<std::unique_ptr<obs::FlightRecorder>> flights;
  std::vector<std::unique_ptr<obs::BeaconBuilder>> builders;
  for (int h = 0; h < kHosts; ++h) {
    registries.push_back(std::make_unique<obs::MetricsRegistry>());
    flights.push_back(std::make_unique<obs::FlightRecorder>(16));
    auto& hist = registries.back()->histogram("srudp.delivery_ms");
    for (int k = 0; k <= 10 + h; ++k) {
      double v = 0.07 * (k + 1) * (h + 1);  // spans several buckets per host
      hist.observe(v);
      union_hist.observe(v);
    }
    registries.back()->counter("srudp.fragments_sent").inc(100 * (h + 1));
    obs::BeaconBuilder::Options opt;
    opt.host = "h" + std::to_string(h);
    opt.period_ns = 1'000'000'000;
    opt.registry = registries[h].get();
    opt.flight = flights[h].get();
    builders.push_back(std::make_unique<obs::BeaconBuilder>(opt));
    store.apply(builders.back()->build(1'000'000'000), 1'000'000'000);
  }

  obs::HistogramSketch merged = store.merged_sketch("srudp.delivery_ms");
  ASSERT_EQ(merged.count, union_hist.count());
  EXPECT_DOUBLE_EQ(merged.sum, union_hist.sum());
  for (double q : {0.5, 0.9, 0.95, 0.99})
    EXPECT_DOUBLE_EQ(merged.quantile(q), union_hist.quantile(q)) << "q=" << q;
  EXPECT_DOUBLE_EQ(store.merged_value("srudp.fragments_sent"),
                   100.0 * kHosts * (kHosts + 1) / 2);

  // Second round of deltas: new samples on some hosts only; exactness must
  // survive delta application, not just the full first beacon.
  for (int h = 0; h < kHosts; h += 2) {
    auto& hist = registries[h]->histogram("srudp.delivery_ms");
    for (int k = 0; k < 5; ++k) {
      double v = 3.1 + 0.41 * k * (h + 1);
      hist.observe(v);
      union_hist.observe(v);
    }
  }
  for (int h = 0; h < kHosts; ++h)
    store.apply(builders[h]->build(2'000'000'000), 2'000'000'000);

  merged = store.merged_sketch("srudp.delivery_ms");
  ASSERT_EQ(merged.count, union_hist.count());
  for (double q : {0.5, 0.95, 0.99})
    EXPECT_DOUBLE_EQ(merged.quantile(q), union_hist.quantile(q)) << "q=" << q;
}

TEST(FleetSketch, MergeRejectsMismatchedBoundsAndAdoptsIntoEmpty) {
  obs::HistogramSketch a;
  a.bounds = {1, 2};
  a.buckets = {3, 0, 1};
  a.count = 4;
  a.sum = 5.5;

  obs::HistogramSketch other_bounds;
  other_bounds.bounds = {1, 2, 4};
  other_bounds.buckets = {0, 0, 0, 1};
  other_bounds.count = 1;
  other_bounds.sum = 8;
  EXPECT_FALSE(a.merge(other_bounds));
  EXPECT_EQ(a.count, 4u);  // unchanged on rejection

  obs::HistogramSketch empty;
  EXPECT_TRUE(empty.merge(a));  // empty adopts the other's bucketing
  EXPECT_EQ(empty.count, 4u);
  EXPECT_EQ(empty.bounds, a.bounds);

  obs::HistogramSketch b = a;
  EXPECT_TRUE(a.merge(b));
  EXPECT_EQ(a.count, 8u);
  EXPECT_DOUBLE_EQ(a.sum, 11.0);
  EXPECT_EQ(a.buckets[0], 6u);
}

// ---- beacon wire codec -----------------------------------------------------

TEST(FleetBeacon, CodecRoundTripsEveryField) {
  obs::TelemetryBeacon b;
  b.host = "nine";
  b.seq = 17;
  b.ts = 123'456'789;
  b.period_ns = 1'000'000'000;
  b.full = true;
  b.counters = {{"a.x", 3.0}, {"b.y", 0.5}};
  b.gauges = {{"load", 1.25}};
  obs::HistogramSketch s;
  s.bounds = {1, 10};
  s.buckets = {2, 1, 0};
  s.count = 3;
  s.sum = 7.5;
  b.sketches = {{"a.delivery_ms", s}};
  b.flight.push_back({42, "nine", "srudp", "rto", "peer=b"});

  auto decoded = obs::TelemetryBeacon::decode(b.encode());
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  const auto& d = decoded.value();
  EXPECT_EQ(d.host, "nine");
  EXPECT_EQ(d.seq, 17u);
  EXPECT_EQ(d.ts, 123'456'789);
  EXPECT_EQ(d.period_ns, 1'000'000'000);
  EXPECT_TRUE(d.full);
  ASSERT_EQ(d.counters.size(), 2u);
  EXPECT_EQ(d.counters[1].first, "b.y");
  EXPECT_DOUBLE_EQ(d.counters[1].second, 0.5);
  ASSERT_EQ(d.gauges.size(), 1u);
  ASSERT_EQ(d.sketches.size(), 1u);
  EXPECT_EQ(d.sketches[0].second.buckets, s.buckets);
  ASSERT_EQ(d.flight.size(), 1u);
  EXPECT_EQ(d.flight[0].what, "rto");
  EXPECT_EQ(d.flight[0].ts, 42);
}

TEST(FleetBeacon, DecodeRejectsMalformedWire) {
  obs::TelemetryBeacon b;
  b.host = "h";
  b.seq = 1;
  Bytes wire = b.encode();

  // Truncations at every byte must error, never crash or mis-parse.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes truncated(wire.begin(), wire.begin() + cut);
    EXPECT_FALSE(obs::TelemetryBeacon::decode(truncated).ok()) << "cut=" << cut;
  }
  // Trailing garbage is rejected too (a beacon is exactly one message).
  Bytes padded = wire;
  padded.push_back(0);
  EXPECT_FALSE(obs::TelemetryBeacon::decode(padded).ok());
  EXPECT_FALSE(obs::TelemetryBeacon::decode(Bytes{}).ok());
}

// ---- delta / resync semantics ----------------------------------------------

TEST(FleetStore, GapDropsDeltasUntilNextFullBeacon) {
  obs::MetricsRegistry registry;
  obs::FlightRecorder flight(16);
  auto& sent = registry.counter("srudp.fragments_sent");
  obs::BeaconBuilder::Options opt;
  opt.host = "h0";
  opt.period_ns = 1'000'000'000;
  opt.full_every = 4;  // seq 1 full, 2-3 delta, 4 full, ...
  opt.registry = &registry;
  opt.flight = &flight;
  obs::BeaconBuilder builder(opt);
  obs::FleetStore store;

  sent.inc(10);
  store.apply(builder.build(1), 1);  // seq 1, full
  sent.inc(5);
  store.apply(builder.build(2), 2);  // seq 2, delta (+5)
  EXPECT_DOUBLE_EQ(store.host_value("h0", "srudp.fragments_sent"), 15);

  sent.inc(7);
  obs::TelemetryBeacon lost = builder.build(3);  // seq 3 never arrives
  EXPECT_FALSE(lost.full);
  sent.inc(2);
  store.apply(builder.build(4), 4);  // seq 4 IS full: immediate resync

  // The lost delta's increments are not missing — the full beacon carries
  // absolute totals.
  EXPECT_DOUBLE_EQ(store.host_value("h0", "srudp.fragments_sent"), 24);
  EXPECT_EQ(store.beacons_dropped(), 0u);

  // Now lose a delta where the next beacon is also a delta: it must be
  // dropped (counted), and the store must hold the last consistent value
  // until the following full beacon resynchronises.
  sent.inc(1);
  builder.build(5);  // seq 5, delta, lost
  sent.inc(1);
  store.apply(builder.build(6), 6);  // seq 6, delta after a gap -> dropped
  EXPECT_EQ(store.beacons_dropped(), 1u);
  EXPECT_DOUBLE_EQ(store.host_value("h0", "srudp.fragments_sent"), 24);
  sent.inc(1);
  store.apply(builder.build(7), 7);  // in-seq delta but still awaiting full
  EXPECT_EQ(store.beacons_dropped(), 2u);
  sent.inc(3);
  store.apply(builder.build(8), 8);  // seq 8, full: caught up again
  EXPECT_DOUBLE_EQ(store.host_value("h0", "srudp.fragments_sent"), 30);

  auto health = store.health(8);
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].resyncs, 1u);  // one gap episode, counted once
  EXPECT_EQ(health[0].seq, 8u);
}

TEST(FleetStore, FlightTimelineMergeSortsAcrossHosts) {
  obs::FleetStore store;
  obs::TelemetryBeacon a;
  a.host = "a";
  a.seq = 1;
  a.full = true;
  a.flight.push_back({30, "a", "t", "e3", ""});
  a.flight.push_back({10, "a", "t", "e1", ""});
  obs::TelemetryBeacon b;
  b.host = "b";
  b.seq = 1;
  b.full = true;
  b.flight.push_back({20, "b", "t", "e2", ""});
  store.apply(a, 1);
  store.apply(b, 2);

  auto timeline = store.flight();
  ASSERT_EQ(timeline.size(), 3u);
  EXPECT_EQ(timeline[0].what, "e1");
  EXPECT_EQ(timeline[1].what, "e2");
  EXPECT_EQ(timeline[2].what, "e3");
  EXPECT_EQ(store.flight("b").size(), 1u);
}

// ---- the acceptance scenario: 8 exporters, 1 collector, 1 partition --------

TEST(FleetIntegration, EightHostWorldExactPercentilesAndStaleness) {
  constexpr int kHosts = 8;
  World world(4242);
  world.create_network("mgmt", simnet::ethernet100());
  world.attach(world.create_host("coll"), *world.network("mgmt"));
  transport::RpcEndpoint collector_rpc(*world.host("coll"), 7300);
  daemon::TelemetryCollector collector(collector_rpc);

  obs::MetricsRegistry union_registry;
  auto& union_hist = union_registry.histogram("srudp.delivery_ms");

  std::vector<std::unique_ptr<obs::MetricsRegistry>> registries;
  std::vector<std::unique_ptr<obs::FlightRecorder>> flights;
  std::vector<std::unique_ptr<transport::RpcEndpoint>> rpcs;
  std::vector<std::unique_ptr<daemon::TelemetryExporter>> exporters;
  double fleet_sent = 0;
  for (int h = 0; h < kHosts; ++h) {
    std::string name = "h" + std::to_string(h);
    world.attach(world.create_host(name), *world.network("mgmt"));
    rpcs.push_back(
        std::make_unique<transport::RpcEndpoint>(*world.host(name), 7400));
    registries.push_back(std::make_unique<obs::MetricsRegistry>());
    flights.push_back(std::make_unique<obs::FlightRecorder>(32));
    auto& hist = registries.back()->histogram("srudp.delivery_ms");
    for (int k = 0; k <= 12 + h; ++k) {
      double v = 0.05 * (k + 1) * (h + 1);
      hist.observe(v);
      union_hist.observe(v);
    }
    registries.back()->counter("srudp.fragments_sent").inc(50 * (h + 1));
    registries.back()->counter("srudp.fragments_retransmitted").inc(h);
    fleet_sent += 50.0 * (h + 1);
    flights.back()->record(name, "test", "boot", "n=" + std::to_string(h));

    daemon::TelemetryConfig cfg;
    cfg.collectors = {collector_rpc.address()};
    cfg.period = duration::seconds(1);
    exporters.push_back(std::make_unique<daemon::TelemetryExporter>(
        *rpcs.back(), cfg, registries.back().get(), flights.back().get()));
    exporters.back()->start();
  }

  world.engine().run_until(duration::seconds(4));
  const obs::FleetStore& store = collector.store();
  ASSERT_EQ(store.host_count(), static_cast<std::size_t>(kHosts));

  // Exact merged per-transport delivery percentiles w.r.t. the union.
  obs::HistogramSketch merged = store.merged_sketch("srudp.delivery_ms");
  ASSERT_EQ(merged.count, union_hist.count());
  for (double q : {0.5, 0.95, 0.99})
    EXPECT_DOUBLE_EQ(merged.quantile(q), union_hist.quantile(q)) << "q=" << q;
  EXPECT_DOUBLE_EQ(store.merged_value("srudp.fragments_sent"), fleet_sent);

  // The health rollup renders those exact percentiles through the same
  // formatter the local health verb uses.
  std::string report =
      core::fleet_health_report(store, world.engine().now());
  EXPECT_NE(report.find("fleet hosts: 8 (0 stale)"), std::string::npos) << report;
  EXPECT_NE(report.find("srudp delivery_ms"), std::string::npos) << report;

  // Per-host flight entries arrived host-stamped and merge into a timeline.
  EXPECT_EQ(store.flight().size(), static_cast<std::size_t>(kHosts));
  EXPECT_EQ(store.flight("h3").size(), 1u);

  // Worst-host rankings answer from the per-host counters.
  auto worst = store.top_by_retransmit(3);
  ASSERT_EQ(worst.size(), 3u);
  EXPECT_EQ(worst[0].host, "h7");  // highest retransmit ratio: 7/400

  // Partition h0's management NIC; the collector must keep serving and
  // flag h0 stale within 3 missed beacons while everyone else stays fresh.
  world.host("h0")->nic_on("mgmt")->set_up(false);
  std::uint64_t beacons_before = store.beacons_applied();
  world.engine().run_until(duration::seconds(8));  // 4 periods later
  EXPECT_GT(store.beacons_applied(), beacons_before);  // others kept landing
  EXPECT_TRUE(store.stale("h0", world.engine().now()));
  for (const auto& hh : store.health(world.engine().now())) {
    if (hh.host == "h0") {
      EXPECT_TRUE(hh.stale);
      EXPECT_GE(hh.missed, 3.0);
    } else {
      EXPECT_FALSE(hh.stale) << hh.host;
    }
  }
  std::string stale_report =
      core::fleet_health_report(store, world.engine().now());
  EXPECT_NE(stale_report.find("fleet hosts: 8 (1 stale)"), std::string::npos)
      << stale_report;
  EXPECT_NE(stale_report.find("STALE"), std::string::npos);

  // Healing the partition un-stales the host on the next beacon.
  world.host("h0")->nic_on("mgmt")->set_up(true);
  world.engine().run_until(duration::seconds(10));
  EXPECT_FALSE(store.stale("h0", world.engine().now()));
}

}  // namespace
}  // namespace snipe
