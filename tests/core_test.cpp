// Tests for the SNIPE client library: URN messaging, migration with
// no-loss delivery and relays, notify lists, multicast groups with router
// election and failure, consoles, and the migrating HTTP server.
#include <gtest/gtest.h>

#include "core/console.hpp"
#include "core/group.hpp"
#include "core/process.hpp"
#include "obs/flight.hpp"
#include "rcds/server.hpp"
#include "util/uri.hpp"

namespace snipe::core {
namespace {

using simnet::Address;
using simnet::World;

struct CoreFixture : ::testing::Test {
  CoreFixture() : world(91) {
    world.create_network("lan", simnet::ethernet100());
    world.create_network("wan", simnet::wan_t3());
    for (const char* n : {"rc1", "rc2", "hostA", "hostB", "hostC"}) {
      auto& h = world.create_host(n);
      world.attach(h, *world.network("lan"));
      world.attach(h, *world.network("wan"));
    }
    rc1 = std::make_unique<rcds::RcServer>(*world.host("rc1"));
    rc2 = std::make_unique<rcds::RcServer>(*world.host("rc2"));
    rc1->set_peers({rc2->address()});
    rc2->set_peers({rc1->address()});
  }

  std::vector<Address> replicas() { return {rc1->address(), rc2->address()}; }

  std::unique_ptr<SnipeProcess> make_process(const std::string& host,
                                             const std::string& name) {
    auto p = std::make_unique<SnipeProcess>(*world.host(host), name, replicas());
    world.engine().run();  // let registration settle
    return p;
  }

  World world;
  std::unique_ptr<rcds::RcServer> rc1, rc2;
};

TEST_F(CoreFixture, UrnMessagingBetweenProcesses) {
  auto alice = make_process("hostA", "alice");
  auto bob = make_process("hostB", "bob");
  std::vector<std::tuple<std::string, std::uint32_t, std::string>> got;
  bob->set_message_handler([&](const std::string& src, std::uint32_t tag, Bytes body) {
    got.emplace_back(src, tag, to_string(body));
  });
  Result<void> sent(Errc::state_error, "unset");
  alice->send(bob->urn(), 7, to_bytes("hello bob"), [&](Result<void> r) { sent = r; });
  world.engine().run();
  ASSERT_TRUE(sent.ok());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(std::get<0>(got[0]), "urn:snipe:proc:alice");
  EXPECT_EQ(std::get<1>(got[0]), 7u);
  EXPECT_EQ(std::get<2>(got[0]), "hello bob");
}

TEST_F(CoreFixture, ProcessRegistersItsMetadata) {
  auto alice = make_process("hostA", "alice");
  auto record = rc1->get(alice->urn());
  std::map<std::string, std::string> meta;
  for (const auto& a : record) meta[a.name] = a.value;
  EXPECT_EQ(meta[rcds::names::kProcHost], "hostA");
  EXPECT_EQ(meta[rcds::names::kProcState], "running");
  EXPECT_NE(meta[rcds::names::kProcAddress].find("hostA"), std::string::npos);
}

TEST_F(CoreFixture, SendToUnknownUrnFails) {
  auto alice = make_process("hostA", "alice");
  Result<void> sent(Errc::state_error, "unset");
  alice->send("urn:snipe:proc:ghost", 1, {}, [&](Result<void> r) { sent = r; });
  world.engine().run();
  EXPECT_FALSE(sent.ok());
  EXPECT_EQ(alice->stats().send_failures, 1u);
}

TEST_F(CoreFixture, MigrationKeepsMessagesFlowing) {
  auto sender = make_process("hostA", "sender");
  auto roamer = make_process("hostB", "roamer");
  std::vector<std::string> got;
  roamer->set_message_handler(
      [&](const std::string&, std::uint32_t, Bytes body) { got.push_back(to_string(body)); });

  sender->send(roamer->urn(), 1, to_bytes("before"), nullptr);
  world.engine().run();

  // §5.6: the process initiates its own migration.
  Result<void> moved(Errc::state_error, "unset");
  roamer->migrate_to(*world.host("hostC"), [&](Result<void> r) { moved = r; });
  world.engine().run();
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(roamer->host().name(), "hostC");

  // The sender still holds the OLD cached address; the relay forwards, so
  // nothing is lost even before re-resolution.
  Result<void> sent(Errc::state_error, "unset");
  sender->send(roamer->urn(), 1, to_bytes("during"), [&](Result<void> r) { sent = r; });
  world.engine().run();
  ASSERT_TRUE(sent.ok());

  // After the relay grace expires the old address is gone; delivery must
  // recover via RC re-resolution.
  world.engine().run_for(duration::seconds(15));
  sender->send(roamer->urn(), 1, to_bytes("after"), nullptr);
  world.engine().run();

  EXPECT_EQ(got, (std::vector<std::string>{"before", "during", "after"}));
  EXPECT_GE(roamer->stats().relayed, 1u);
  EXPECT_GE(sender->stats().re_resolutions, 1u);
}

TEST_F(CoreFixture, NotifyListGetsDirectMigrationNotice) {
  auto watcher = make_process("hostA", "watcher");
  auto roamer = make_process("hostB", "roamer");
  roamer->add_to_notify_list(watcher->urn());
  world.engine().run();

  roamer->migrate_to(*world.host("hostC"), nullptr);
  world.engine().run();

  // The watcher's resolution cache was refreshed by the direct notice:
  // sending needs no re-resolution round.
  std::uint64_t re_res_before = watcher->stats().re_resolutions;
  bool delivered = false;
  roamer->set_message_handler([&](const std::string&, std::uint32_t, Bytes) {
    delivered = true;
  });
  watcher->send(roamer->urn(), 1, to_bytes("found you"), nullptr);
  world.engine().run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(watcher->stats().re_resolutions, re_res_before);
}

TEST_F(CoreFixture, SpawnViaHostPrefersBroker) {
  // §5.5: a host with registered brokers gets spawn requests via the
  // broker.  Registering a bogus broker and watching the spawn fail with
  // timeout at that address (instead of not_found from the daemon) proves
  // the redirect happened; the RM integration test covers the happy path.
  auto alice = make_process("hostA", "alice");
  std::string uri = snipe::host_url("hostB", daemon::SnipeDaemon::kDefaultPort);
  bool broker_called = false;
  auto& broker_host = world.create_host("broker");
  world.attach(broker_host, *world.network("lan"));
  transport::RpcEndpoint broker_rpc(broker_host, rm::ResourceManager::kDefaultPort);
  broker_rpc.serve(rm::tags::kAllocate,
                   [&](const Address&, const Bytes&) -> Result<Bytes> {
                     broker_called = true;
                     return Result<Bytes>(Errc::unreachable, "no hosts");
                   });
  alice->rc().add(uri, rcds::names::kHostBroker,
                  "snipe://broker:" + std::to_string(rm::ResourceManager::kDefaultPort) + "/rm",
                  [](Result<void>) {});
  world.engine().run();

  Result<daemon::SpawnReply> reply(Errc::state_error, "unset");
  daemon::SpawnRequest req;
  req.program = "anything";
  alice->spawn_via_host("hostB", req, [&](Result<daemon::SpawnReply> r) { reply = r; });
  world.engine().run();
  EXPECT_TRUE(broker_called);
  EXPECT_EQ(reply.code(), Errc::unreachable);
}

// ---- multicast groups ----

TEST_F(CoreFixture, GroupElectionAndDelivery) {
  auto p1 = make_process("hostA", "m1");
  auto p2 = make_process("hostB", "m2");
  auto p3 = make_process("hostC", "m3");

  std::string g = snipe::group_urn("weather");
  GroupConfig cfg;
  cfg.desired_routers = 2;
  MulticastGroup g1(*p1, g, cfg);
  world.engine().run();
  MulticastGroup g2(*p2, g, cfg);
  world.engine().run();
  MulticastGroup g3(*p3, g, cfg);
  world.engine().run();

  // First two members elected themselves; the third found enough routers.
  EXPECT_TRUE(g1.is_router());
  EXPECT_TRUE(g2.is_router());
  EXPECT_FALSE(g3.is_router());

  std::map<std::string, std::vector<std::string>> got;
  g1.set_handler([&](const std::string& src, Bytes b) { got["m1"].push_back(src); (void)b; });
  g2.set_handler([&](const std::string& src, Bytes b) { got["m2"].push_back(src); (void)b; });
  g3.set_handler([&](const std::string& src, Bytes b) { got["m3"].push_back(src); (void)b; });

  g3.send(to_bytes("storm warning"));
  world.engine().run();

  // Everyone (including the sender, via its membership) hears it once.
  for (const char* m : {"m1", "m2", "m3"}) {
    ASSERT_EQ(got[m].size(), 1u) << m;
    EXPECT_EQ(got[m][0], p3->urn()) << m;
  }
}

TEST_F(CoreFixture, GroupSurvivesRouterFailure) {
  std::string g = snipe::group_urn("resilient");
  GroupConfig cfg;
  cfg.desired_routers = 3;
  std::vector<std::unique_ptr<SnipeProcess>> procs;
  std::vector<std::unique_ptr<MulticastGroup>> groups;
  int delivered = 0;
  for (const char* host : {"hostA", "hostB", "hostC"}) {
    procs.push_back(make_process(host, std::string("r-") + host));
    groups.push_back(std::make_unique<MulticastGroup>(*procs.back(), g, cfg));
    world.engine().run();
    groups.back()->set_handler([&](const std::string&, Bytes) { ++delivered; });
  }
  ASSERT_TRUE(groups[0]->is_router());
  ASSERT_TRUE(groups[1]->is_router());
  ASSERT_TRUE(groups[2]->is_router());

  // Kill one router host outright; >half of the routers still get sends.
  world.host("hostB")->set_up(false);
  groups[0]->send(to_bytes("still here"));
  world.engine().run_for(duration::seconds(5));
  // hostA and hostC members both hear it (hostB is dead).
  EXPECT_EQ(delivered, 2);
}

TEST_F(CoreFixture, GroupDuplicatesSuppressed) {
  std::string g = snipe::group_urn("dedup");
  auto p1 = make_process("hostA", "d1");
  auto p2 = make_process("hostB", "d2");
  GroupConfig cfg;
  cfg.desired_routers = 3;  // both members host routers
  MulticastGroup g1(*p1, g, cfg);
  world.engine().run();
  MulticastGroup g2(*p2, g, cfg);
  world.engine().run();
  // Let the periodic refresh run so both members discover *both* routers
  // (only then does the send fan out redundantly).
  world.engine().run_for(duration::seconds(6));
  ASSERT_EQ(g1.known_routers(), 2u);
  int count = 0;
  g2.set_handler([&](const std::string&, Bytes) { ++count; });
  for (int i = 0; i < 5; ++i) g1.send(to_bytes("x"));
  world.engine().run();
  EXPECT_EQ(count, 5);  // exactly once each, despite multi-router fanout
  EXPECT_GT(g2.stats().duplicates_dropped + g1.stats().duplicates_dropped, 0u);
}

// ---- console + HTTP gateway ----

TEST_F(CoreFixture, ConsoleQueriesProcessState) {
  auto alice = make_process("hostA", "alice");
  auto console_proc = make_process("hostC", "console");
  Console console(*console_proc);
  Result<std::string> state(Errc::state_error, "unset");
  console.process_state(alice->urn(), [&](Result<std::string> r) { state = r; });
  world.engine().run();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state.value(), "running");
}

TEST_F(CoreFixture, ConsoleCommandInterpreter) {
  auto alice = make_process("hostA", "alice");
  auto console_proc = make_process("hostC", "console");
  Console console(*console_proc);

  auto run_command = [&](const std::string& line) {
    std::string out;
    console.interpret(line, [&](std::string reply) { out = std::move(reply); });
    world.engine().run();
    return out;
  };

  EXPECT_EQ(run_command("state " + alice->urn()), alice->urn() + ": running");
  EXPECT_EQ(run_command("where " + alice->urn()), alice->urn() + " is on hostA");
  EXPECT_NE(run_command("meta " + alice->urn()).find("proc:host = hostA"),
            std::string::npos);
  EXPECT_NE(run_command("state urn:snipe:proc:ghost").find("not_found"),
            std::string::npos);
  EXPECT_NE(run_command("bogus"), "");  // usage text
  EXPECT_NE(run_command(""), "");

  // `routers` against a live group.
  MulticastGroup group(*alice, snipe::group_urn("console-test"));
  world.engine().run();
  EXPECT_NE(run_command("routers " + snipe::group_urn("console-test"))
                .find(rcds::names::kGroupRouter),
            std::string::npos);
}

TEST_F(CoreFixture, HttpGatewayFollowsMigratingServer) {
  // §3.7: "allowing a web browser to find it even though it may migrate
  // from one host to another".
  auto server_proc = make_process("hostA", "webserver");
  HttpServer server(*server_proc, "http://status.utk.edu/", [&](const HttpRequest& req) {
    HttpResponse res;
    res.status = 200;
    res.body = to_bytes("host=" + server_proc->host().name() + " path=" + req.path);
    return res;
  });
  auto browser_proc = make_process("hostB", "browser");
  HttpGateway gateway(*browser_proc);
  world.engine().run();

  auto fetch = [&](const std::string& path) {
    Result<HttpResponse> out(Errc::state_error, "unset");
    HttpRequest req;
    req.path = path;
    gateway.request("http://status.utk.edu/", req,
                    [&](Result<HttpResponse> r) { out = r; });
    world.engine().run();
    return out;
  };

  auto first = fetch("/a");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(to_string(first.value().body), "host=hostA path=/a");

  // Migrate the server; let the relay grace period fully expire so the
  // gateway is forced through RC re-resolution.
  server_proc->migrate_to(*world.host("hostC"), nullptr);
  world.engine().run_for(duration::seconds(15));

  auto second = fetch("/b");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(to_string(second.value().body), "host=hostC path=/b");
}

TEST_F(CoreFixture, ConsoleListsProcessesStartedByDaemon) {
  // The §3.7 "processes ... initiated by the SNIPE daemon on any
  // particular host" query, against a real daemon.
  daemon::DaemonConfig dcfg;
  dcfg.playground.require_signature = false;
  daemon::SnipeDaemon d(*world.host("hostB"), replicas(), daemon::SnipeDaemon::kDefaultPort,
                        dcfg);
  d.register_program("noop", [&](const daemon::SpawnRequest&, daemon::TaskHandle& h)
                                 -> Result<std::unique_ptr<daemon::ManagedTask>> {
    class Noop final : public daemon::ManagedTask {
     public:
      explicit Noop(daemon::TaskHandle& handle) : handle_(handle) {}
      void start() override { handle_.exited(0); }
      void kill() override {}

     private:
      daemon::TaskHandle& handle_;
    };
    return std::unique_ptr<daemon::ManagedTask>(new Noop(h));
  });
  world.engine().run();

  auto console_proc = make_process("hostC", "console2");
  daemon::SpawnRequest req;
  req.program = "noop";
  req.name = "listed-task";
  bool spawned = false;
  console_proc->spawn_via_host("hostB", req,
                               [&](Result<daemon::SpawnReply> r) { spawned = r.ok(); });
  world.engine().run();
  ASSERT_TRUE(spawned);

  Console console(*console_proc);
  Result<std::vector<std::string>> tasks(Errc::state_error, "unset");
  console.processes_on_host(d.host_url(),
                            [&](Result<std::vector<std::string>> r) { tasks = r; });
  world.engine().run();
  ASSERT_TRUE(tasks.ok());
  ASSERT_EQ(tasks.value().size(), 1u);
  EXPECT_EQ(tasks.value()[0], "urn:snipe:proc:listed-task");
}

// ---- observability reports (free functions over synthetic inputs) ----------

TEST(ConsoleReports, HealthReportOnEmptySnapshotSaysSo) {
  EXPECT_EQ(health_report({}), "(no health data)");
}

TEST(ConsoleReports, HealthReportRollsUpLatencyRetransmitsAndFailovers) {
  obs::Snapshot snap;
  obs::MetricValue lat;
  lat.kind = obs::MetricValue::Kind::histogram;
  lat.name = "srudp.delivery_ms";
  lat.count = 10;
  lat.p50 = 1.5;
  lat.p95 = 4;
  lat.p99 = 9;
  snap.push_back(lat);
  auto counter = [&](const std::string& name, double v) {
    obs::MetricValue m;
    m.name = name;
    m.value = v;
    snap.push_back(m);
  };
  counter("srudp.fragments_sent", 200);
  counter("srudp.fragments_retransmitted", 20);
  counter("stream.segments_sent", 0);  // idle transport: no ratio line
  counter("multipath.route_switches", 4);

  std::string out = health_report(snap);
  EXPECT_NE(out.find("srudp delivery_ms p50=1.500 p95=4.000 p99=9.000 n=10"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("srudp retransmit_ratio 0.100"), std::string::npos) << out;
  EXPECT_EQ(out.find("stream retransmit_ratio"), std::string::npos) << out;
  EXPECT_NE(out.find("route_failovers 4"), std::string::npos) << out;
}

TEST(ConsoleReports, TraceReportResolvesFlowIdsAndMsgIds) {
  std::vector<obs::TraceEvent> events;
  auto add = [&](obs::TraceEvent::Phase phase, const std::string& name,
                 std::uint64_t id, obs::Tracer::Args args = {}) {
    obs::TraceEvent e;
    e.phase = phase;
    e.cat = "flow";
    e.name = name;
    e.id = id;
    e.args = std::move(args);
    events.push_back(std::move(e));
  };
  add(obs::TraceEvent::Phase::flow_start, "srudp.send", 0x123, {{"msg", "7"}});
  add(obs::TraceEvent::Phase::flow_step, "srudp.tx", 0x123);
  add(obs::TraceEvent::Phase::flow_end, "srudp.deliver", 0x123);
  add(obs::TraceEvent::Phase::flow_start, "srudp.send", 0x456, {{"msg", "8"}});

  std::string by_flow = trace_report(events, "0x123");
  EXPECT_NE(by_flow.find("srudp.send"), std::string::npos);
  EXPECT_NE(by_flow.find("srudp.tx"), std::string::npos);
  EXPECT_NE(by_flow.find("srudp.deliver"), std::string::npos);
  EXPECT_EQ(by_flow.find("0x456"), std::string::npos);

  // A message id from a log line resolves through the "msg" argument.
  std::string by_msg = trace_report(events, "7");
  EXPECT_NE(by_msg.find("flow 0x123"), std::string::npos) << by_msg;
  EXPECT_NE(by_msg.find("srudp.deliver"), std::string::npos);

  EXPECT_NE(trace_report(events, "999").find("no flow events"), std::string::npos);
  EXPECT_NE(trace_report({}, "0x123").find("no flow events"), std::string::npos);
}

// ---- console verbs over the live registries --------------------------------

TEST_F(CoreFixture, ConsoleObservabilityVerbs) {
  auto console_proc = make_process("hostC", "console");
  Console console(*console_proc);
  auto run_command = [&](const std::string& line) {
    std::string out;
    console.interpret(line, [&](std::string reply) { out = std::move(reply); });
    world.engine().run();
    return out;
  };

  // metrics: unknown prefix filters everything out.
  EXPECT_EQ(run_command("metrics zzz.no_such_prefix."), "(no metrics recorded)");
  // metrics: a prefix keeps only its own lines (the fixture's RPC traffic
  // guarantees both srudp.* and rcds.* entries exist).
  std::string filtered = run_command("metrics rcds.");
  EXPECT_NE(filtered.find("rcds."), std::string::npos);
  EXPECT_EQ(filtered.find("srudp."), std::string::npos);

  // health: the fixture's srudp traffic registered delivery histograms.
  std::string health = run_command("health");
  EXPECT_NE(health.find("srudp delivery_ms"), std::string::npos) << health;
  EXPECT_NE(health.find("retransmit_ratio"), std::string::npos) << health;

  // flight: recorded events surface, filtered by host.
  obs::FlightRecorder::global().record("hostC", "test", "console_probe", "x=1");
  EXPECT_NE(run_command("flight hostC").find("test/console_probe x=1"),
            std::string::npos);

  // trace: unknown ids say so; recorded flows print their trail and are
  // reachable both by flow id and by message id.
  EXPECT_NE(run_command("trace 0xdeadbeef").find("no flow events"), std::string::npos);
  auto& tracer = obs::Tracer::global();
  tracer.set_flow_enabled(true);
  tracer.flow(obs::TraceEvent::Phase::flow_start, "flow", "srudp.send", 0x7177,
              {{"msg", "424242"}});
  tracer.flow(obs::TraceEvent::Phase::flow_end, "flow", "srudp.deliver", 0x7177);
  tracer.set_flow_enabled(false);
  EXPECT_NE(run_command("trace 0x7177").find("srudp.deliver"), std::string::npos);
  EXPECT_NE(run_command("trace 424242").find("srudp.send"), std::string::npos);

  // topo: dumps the zone tree — the fixture's world is flat, so the header
  // counts land in the "flat networks" section with per-NIC state.
  std::string topo = run_command("topo");
  EXPECT_EQ(topo.rfind("topology:", 0), 0u) << topo;
  EXPECT_NE(topo.find("flat networks:"), std::string::npos) << topo;
  EXPECT_NE(topo.find("hostC"), std::string::npos) << topo;

  // The usage line advertises the new verbs.
  std::string usage = run_command("bogus");
  EXPECT_NE(usage.find("trace <id>"), std::string::npos);
  EXPECT_NE(usage.find("flight [host]"), std::string::npos);
  EXPECT_NE(usage.find("health"), std::string::npos);
  EXPECT_NE(usage.find("topo"), std::string::npos);
}

// ---- the ops gateway: observability over SNIPE's own HTTP machinery --------

TEST_F(CoreFixture, OpsGatewayServesMetricsHealthFlightAndTrace) {
  auto ops_proc = make_process("hostA", "ops");
  OpsGateway ops(*ops_proc, "http://ops.utk.edu/");
  auto browser_proc = make_process("hostB", "browser");
  HttpGateway gateway(*browser_proc);
  world.engine().run();

  auto fetch = [&](const std::string& path) {
    Result<HttpResponse> out(Errc::state_error, "unset");
    HttpRequest req;
    req.path = path;
    gateway.request("http://ops.utk.edu/", req,
                    [&](Result<HttpResponse> r) { out = r; });
    world.engine().run();
    return out;
  };

  auto metrics = fetch("/metrics?prefix=srudp.");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics.value().status, 200);
  std::string body = to_string(metrics.value().body);
  EXPECT_NE(body.find("srudp."), std::string::npos);
  EXPECT_EQ(body.find("rcds."), std::string::npos);

  auto health = fetch("/health");
  ASSERT_TRUE(health.ok());
  EXPECT_NE(to_string(health.value().body).find("delivery_ms"), std::string::npos);

  obs::FlightRecorder::global().record("hostA", "test", "gateway_probe");
  auto flight = fetch("/flight?host=hostA");
  ASSERT_TRUE(flight.ok());
  EXPECT_NE(to_string(flight.value().body).find("test/gateway_probe"),
            std::string::npos);

  // /topo: the zone-tree dump over HTTP — flat fixture world, so the
  // networks land in the trailing flat section with per-NIC rows.
  auto topo = fetch("/topo");
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo.value().status, 200);
  std::string topo_body = to_string(topo.value().body);
  EXPECT_EQ(topo_body.rfind("topology:", 0), 0u) << topo_body;
  EXPECT_NE(topo_body.find("flat networks:"), std::string::npos) << topo_body;
  EXPECT_NE(topo_body.find("hostA"), std::string::npos) << topo_body;

  auto bad_trace = fetch("/trace");
  ASSERT_TRUE(bad_trace.ok());
  EXPECT_EQ(bad_trace.value().status, 400);

  auto missing = fetch("/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status, 404);

  // Non-GET methods are refused at the dispatcher.
  HttpRequest post;
  post.method = "POST";
  post.path = "/metrics";
  EXPECT_EQ(ops.handle(post).status, 400);

  // The HTTP/1.0 text renderer — what a real browser would be handed.
  std::string text = to_http_text(missing.value());
  EXPECT_EQ(text.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u) << text;
  EXPECT_NE(text.find("Content-Type: text/plain\r\n"), std::string::npos);
  EXPECT_NE(text.find("Content-Length: "), std::string::npos);
  EXPECT_NE(text.find("\r\n\r\nnot found: /nope"), std::string::npos);
}

TEST_F(CoreFixture, OpsGatewayParsingEdgeCasesAndFleetRoutes) {
  auto ops_proc = make_process("hostA", "ops");
  OpsGateway ops(*ops_proc, "http://ops2.utk.edu/");
  world.engine().run();

  auto get = [&](const std::string& path) {
    HttpRequest req;
    req.path = path;
    return ops.handle(req);
  };

  // "?prefix=" with an empty value is the unfiltered scrape, not an error.
  auto all = get("/metrics?prefix=");
  EXPECT_EQ(all.status, 200);
  EXPECT_NE(to_string(all.body).find("srudp."), std::string::npos);

  // Unknown host filter: 200 with the says-so text, not a 404.
  auto ghost = get("/flight?host=no-such-host");
  EXPECT_EQ(ghost.status, 200);
  EXPECT_NE(to_string(ghost.body).find("no flight events"), std::string::npos);

  // Malformed ?id=: missing and empty both yield the usage 400; a
  // non-numeric id is a legal msg-id query that matches nothing.
  EXPECT_EQ(get("/trace?id=").status, 400);
  EXPECT_EQ(get("/trace").status, 400);
  auto noflow = get("/trace?id=bogus");
  EXPECT_EQ(noflow.status, 200);
  EXPECT_NE(to_string(noflow.body).find("no flow events"), std::string::npos);

  // /fleet/* before a collector is attached: 404 saying so.
  auto unattached = get("/fleet/health");
  EXPECT_EQ(unattached.status, 404);
  EXPECT_NE(to_string(unattached.body).find("no fleet collector"), std::string::npos);

  // With a store attached the fleet surface answers from collected beacons.
  obs::FleetStore store;
  obs::TelemetryBeacon beacon;
  beacon.host = "hostX";
  beacon.seq = 1;
  beacon.ts = 1'000'000'000;
  beacon.period_ns = 1'000'000'000;
  beacon.full = true;
  beacon.counters = {{"srudp.fragments_sent", 10}};
  store.apply(beacon, beacon.ts);
  ops.set_fleet(&store);

  auto fleet_metrics = get("/fleet/metrics?prefix=srudp.");
  EXPECT_EQ(fleet_metrics.status, 200);
  EXPECT_NE(to_string(fleet_metrics.body).find("srudp.fragments_sent"),
            std::string::npos);
  auto fleet_filtered = get("/fleet/metrics?prefix=zzz.");
  EXPECT_EQ(fleet_filtered.status, 200);
  EXPECT_NE(to_string(fleet_filtered.body).find("no fleet metrics"), std::string::npos);
  auto fleet_health = get("/fleet/health");
  EXPECT_EQ(fleet_health.status, 200);
  EXPECT_NE(to_string(fleet_health.body).find("fleet hosts: 1"), std::string::npos)
      << to_string(fleet_health.body);
  // Unknown host filter and malformed ?n= degrade gracefully, not 4xx.
  auto fleet_ghost = get("/fleet/flight?host=no-such-host");
  EXPECT_EQ(fleet_ghost.status, 200);
  EXPECT_NE(to_string(fleet_ghost.body).find("no fleet flight events"),
            std::string::npos);
  EXPECT_EQ(get("/fleet/top?n=bogus").status, 200);
  EXPECT_EQ(get("/fleet/nope").status, 404);
}

TEST_F(CoreFixture, ConsoleFleetVerbs) {
  auto console_proc = make_process("hostC", "console");
  Console console(*console_proc);
  auto run_command = [&](const std::string& line) {
    std::string out;
    console.interpret(line, [&](std::string reply) { out = std::move(reply); });
    world.engine().run();
    return out;
  };

  EXPECT_NE(run_command("fleet health").find("no collector"), std::string::npos);

  obs::FleetStore store;
  obs::TelemetryBeacon beacon;
  beacon.host = "hostX";
  beacon.seq = 1;
  beacon.ts = 2'000'000'000;
  beacon.period_ns = 1'000'000'000;
  beacon.full = true;
  beacon.counters = {{"srudp.fragments_sent", 8}, {"srudp.fragments_retransmitted", 2}};
  store.apply(beacon, beacon.ts);
  console.set_fleet(&store);

  EXPECT_NE(run_command("fleet metrics srudp.").find("srudp.fragments_sent"),
            std::string::npos);
  EXPECT_NE(run_command("fleet health").find("fleet hosts: 1"), std::string::npos);
  EXPECT_NE(run_command("fleet flight").find("fleet flight empty"), std::string::npos);
  EXPECT_NE(run_command("fleet top").find("retransmit_ratio"), std::string::npos);
  EXPECT_NE(run_command("fleet bogus").find("usage"), std::string::npos);
  EXPECT_NE(run_command("bogus").find("fleet <sub>"), std::string::npos);
}

}  // namespace
}  // namespace snipe::core
